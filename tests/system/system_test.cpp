// Integration tests of the full chip: budgeting epochs run end to end,
// grants respect the chip budget, DVFS reacts, throughput is measured.
#include "system/manycore_system.hpp"

#include <gtest/gtest.h>

#include "common/json.hpp"
#include "workload/application.hpp"

namespace htpb::system {
namespace {

std::vector<workload::Application> small_apps(int nodes, int mix_index = 0) {
  auto apps = workload::instantiate_mix(
      workload::standard_mixes().at(static_cast<std::size_t>(mix_index)),
      nodes / 4);
  workload::map_threads_round_robin(apps, nodes);
  return apps;
}

SystemConfig small_cfg() {
  SystemConfig cfg = SystemConfig::with_size(64);
  cfg.epoch_cycles = 1500;
  return cfg;
}

TEST(ManyCoreSystem, BuildsAndResolvesGmPlacement) {
  ManyCoreSystem center(small_cfg(), small_apps(64));
  EXPECT_EQ(center.gm_node(),
            center.geometry().id_of(center.geometry().center()));

  SystemConfig cfg = small_cfg();
  cfg.gm_placement = GmPlacement::kCorner;
  ManyCoreSystem corner(cfg, small_apps(64));
  EXPECT_EQ(corner.gm_node(), 0U);

  cfg.gm_node = 17;
  ManyCoreSystem pinned(cfg, small_apps(64));
  EXPECT_EQ(pinned.gm_node(), 17U);
}

TEST(ManyCoreSystem, RejectsUnmappedApps) {
  auto apps = workload::instantiate_mix(workload::standard_mixes()[0], 16);
  EXPECT_THROW(ManyCoreSystem(small_cfg(), apps), std::invalid_argument);
}

TEST(ManyCoreSystem, RejectsDoubleMappedCore) {
  auto apps = small_apps(64);
  apps[1].cores = apps[0].cores;  // collide
  EXPECT_THROW(ManyCoreSystem(small_cfg(), apps), std::invalid_argument);
}

TEST(ManyCoreSystem, EveryCoreMappedEveryTileHasL2) {
  ManyCoreSystem sys(small_cfg(), small_apps(64));
  int cores = 0;
  for (NodeId n = 0; n < 64; ++n) {
    if (sys.core(n) != nullptr) ++cores;
    EXPECT_NE(sys.l2(n), nullptr);
  }
  EXPECT_EQ(cores, 64);
}

TEST(ManyCoreSystem, BudgetIsScarceButCoversFloors) {
  ManyCoreSystem sys(small_cfg(), small_apps(64));
  const auto max_demand =
      64ULL * sys.config().power_model.milliwatts_at(
                  sys.config().freqs, sys.config().freqs.max_level());
  EXPECT_LT(sys.total_budget_mw(), max_demand);
  EXPECT_GE(sys.total_budget_mw(), 64ULL * sys.floor_mw());
}

TEST(ManyCoreSystem, EpochsProduceGrantsWithinBudget) {
  ManyCoreSystem sys(small_cfg(), small_apps(64));
  sys.run_epochs(3);
  const auto& history = sys.gm().history();
  ASSERT_GE(history.size(), 2U);
  for (const auto& rec : history) {
    EXPECT_GT(rec.requests_received, 0U);
    EXPECT_LE(rec.granted_mw, rec.budget_mw);
  }
  // All 64 cores' requests arrive within the collection window.
  EXPECT_EQ(history[1].requests_received, 64U);
}

TEST(ManyCoreSystem, DvfsLevelsReactToGrants) {
  ManyCoreSystem sys(small_cfg(), small_apps(64));
  sys.run_epochs(4);
  // Under a 50% budget not everyone can sit at the top level; under the
  // floor guarantee nobody is parked below level 0 with zero duty.
  int top = 0;
  for (NodeId n = 0; n < 64; ++n) {
    const auto* core = sys.core(n);
    ASSERT_NE(core, nullptr);
    if (core->level() == sys.config().freqs.max_level()) ++top;
    EXPECT_GT(core->duty(), 0.0);
  }
  EXPECT_LT(top, 64);
}

TEST(ManyCoreSystem, ThroughputPositiveAndMeasured) {
  ManyCoreSystem sys(small_cfg(), small_apps(64));
  sys.run_epochs(2);
  sys.reset_measurement();
  sys.run_epochs(3);
  for (const auto& app : sys.apps()) {
    EXPECT_GT(sys.app_throughput(app.id), 0.0) << app.profile.name;
  }
}

TEST(ManyCoreSystem, ComputeBoundAppsMoreSensitive) {
  // Def. 4/5: blackscholes (compute-bound) must report a higher Phi than
  // canneal (memory-bound) -- the spread the attack model depends on.
  ManyCoreSystem sys(small_cfg(), small_apps(64, /*mix*/ 0));
  sys.run_epochs(3);
  double phi_blackscholes = -1.0;
  double phi_canneal = -1.0;
  for (const auto& app : sys.apps()) {
    if (app.profile.name == "blackscholes") {
      phi_blackscholes = sys.app_sensitivity(app.id);
    }
    if (app.profile.name == "canneal") {
      phi_canneal = sys.app_sensitivity(app.id);
    }
  }
  ASSERT_GE(phi_blackscholes, 0.0);
  ASSERT_GE(phi_canneal, 0.0);
  EXPECT_GT(phi_blackscholes, 2.0 * phi_canneal);
}

TEST(ManyCoreSystem, InfectionRateZeroWithoutTrojans) {
  ManyCoreSystem sys(small_cfg(), small_apps(64));
  sys.run_epochs(2);
  sys.reset_measurement();
  sys.run_epochs(2);
  EXPECT_DOUBLE_EQ(sys.measured_infection_rate(), 0.0);
}

TEST(ManyCoreSystem, MemoryTrafficFlowsThroughNoc) {
  ManyCoreSystem sys(small_cfg(), small_apps(64));
  sys.run_epochs(3);
  EXPECT_GT(sys.network().stats().latency_mem.count(), 0U);
  EXPECT_GT(sys.network().total_router_stats().flits_forwarded, 0U);
}

TEST(ManyCoreSystem, WithSizePresetsMatchPaperSizes) {
  for (const int n : {64, 128, 256, 512}) {
    const SystemConfig cfg = SystemConfig::with_size(n);
    EXPECT_EQ(cfg.node_count(), n);
  }
  EXPECT_THROW(SystemConfig::with_size(100), std::invalid_argument);
}

TEST(ManyCoreSystem, WithMeshAcceptsArbitraryShapes) {
  const SystemConfig wide = SystemConfig::with_mesh(10, 3);
  EXPECT_EQ(wide.width, 10);
  EXPECT_EQ(wide.height, 3);
  EXPECT_EQ(wide.node_count(), 30);
  // with_size delegates: the paper presets are the same objects.
  const SystemConfig preset = SystemConfig::with_size(128);
  EXPECT_EQ(preset.width, 16);
  EXPECT_EQ(preset.height, 8);

  EXPECT_THROW(SystemConfig::with_mesh(1, 8), std::invalid_argument);
  EXPECT_THROW(SystemConfig::with_mesh(8, 0), std::invalid_argument);
  EXPECT_THROW(SystemConfig::with_mesh(-4, 4), std::invalid_argument);
}

TEST(ManyCoreSystem, ValidateCatchesGmOutsideMesh) {
  SystemConfig cfg = SystemConfig::with_mesh(6, 4);
  cfg.gm_node = 23;  // last node: fine
  EXPECT_NO_THROW(cfg.validate());
  cfg.gm_node = 24;  // one past the end
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ManyCoreSystem, NonSquareMeshRunsEpochsWithCenteredGm) {
  // A 12x4 mesh: GM placement presets and the collect window must derive
  // from width/height, not an assumed square side.
  SystemConfig cfg = SystemConfig::with_mesh(12, 4);
  cfg.epoch_cycles = 1500;
  auto apps = workload::instantiate_mix(workload::standard_mixes()[0], 12);
  workload::map_threads_round_robin(apps, cfg.node_count());
  ManyCoreSystem sys(cfg, apps);
  EXPECT_EQ(sys.gm_node(), sys.geometry().id_of(Coord{6, 2}));
  sys.run_epochs(3);
  const auto& history = sys.gm().history();
  ASSERT_GE(history.size(), 2U);
  EXPECT_EQ(history[1].requests_received, 48U);
  EXPECT_LE(history[1].granted_mw, history[1].budget_mw);
}

TEST(ManyCoreSystem, CollectWindowAutoScalesWithDiameter) {
  const SystemConfig small = SystemConfig::with_size(64);
  const SystemConfig large = SystemConfig::with_size(512);
  EXPECT_GT(large.resolved_collect_window(),
            small.resolved_collect_window());
  SystemConfig manual = small;
  manual.collect_window = 123;
  EXPECT_EQ(manual.resolved_collect_window(), 123U);
}

// Snapshot layer: run-to-cycle-N, save, restore into a FRESH system of
// the same construction, run-to-end -- bit-identical to the
// uninterrupted run, throughput and snapshot dump included.
TEST(ManyCoreSystem, SaveRestoreIntoFreshSystemBitIdentical) {
  const SystemConfig cfg = small_cfg();
  const auto apps = small_apps(64);

  ManyCoreSystem straight(cfg, apps);
  straight.run_epochs(5);

  ManyCoreSystem first(cfg, apps);
  first.run_epochs(3);
  // Through text, like the disk path: a field the dump loses shows here.
  const std::string snapshot = json::dump(first.save_state());

  ManyCoreSystem resumed(cfg, apps);
  resumed.load_state(json::parse(snapshot));
  resumed.run_epochs(2);

  EXPECT_EQ(json::dump(resumed.save_state()),
            json::dump(straight.save_state()));
  for (const auto& app : apps) {
    EXPECT_EQ(resumed.app_throughput(app.id), straight.app_throughput(app.id))
        << "app " << app.id;
  }
  EXPECT_EQ(resumed.measured_infection_rate(),
            straight.measured_infection_rate());
  ASSERT_EQ(resumed.gm().history().size(), straight.gm().history().size());
}

// Restoring a checkpoint from a different construction must throw, not
// silently mix two chips' state.
TEST(ManyCoreSystem, LoadStateRejectsMismatchedConstruction) {
  ManyCoreSystem small(small_cfg(), small_apps(64));
  small.run_epochs(1);
  const json::Value snap = small.save_state();

  SystemConfig other_cfg = SystemConfig::with_size(256);
  other_cfg.epoch_cycles = 1500;
  ManyCoreSystem other(other_cfg, small_apps(256));
  EXPECT_THROW(other.load_state(snap), std::invalid_argument);
}

}  // namespace
}  // namespace htpb::system
