// Fixture for the float-unordered-reduce rule. A double accumulator fed
// from a range-for over an unordered container fires, as does a
// std::accumulate with a floating-point init over unordered iterators;
// the allow()-marked copy is suppressed; the integer accumulators are
// silent (integer addition is associative, the sum is order-invariant).
// The loops themselves are allow()-marked for unordered-iter so this
// fixture isolates the reduce rule.
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp -- keep the
// layout stable.
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace fix {

class PowerMap {
 public:
  double total() const {
    double sum = 0.0;
    // htpb-lint: allow(unordered-iter) fixture: isolate the reduce rule
    for (const auto& [node, w] : weights_) {
      sum += w;  // fires: line 22
    }
    return sum;
  }

  double total_allowed() const {
    double sum = 0.0;
    // htpb-lint: allow(unordered-iter) fixture: isolate the reduce rule
    for (const auto& [node, w] : weights_) {
      // htpb-lint: allow(float-unordered-reduce) fixture: tolerance-checked sum
      sum += w;
    }
    return sum;
  }

  int count_set() const {
    int n = 0;
    // htpb-lint: allow(unordered-iter) fixture: isolate the reduce rule
    for (const auto& [node, w] : weights_) {
      n += 1;  // silent: integer accumulator
    }
    return n;
  }

  double sum_costs() const {
    return std::accumulate(costs_.begin(), costs_.end(), 0.0);  // fires: 47
  }

  long count_units() const {
    return std::accumulate(units_.begin(), units_.end(), 0L);  // silent
  }

 private:
  std::unordered_map<int, double> weights_;
  std::unordered_set<int> costs_;
  std::unordered_set<long> units_;
};

}  // namespace fix
