// Bottom-layer header with no includes; legal target for everyone.
#pragma once

namespace fix {
inline int ok() { return 1; }
}  // namespace fix
