// Back-edge: common (layer 0) must not include noc (layer 1).
#pragma once

#include "noc/router.hpp"  // fires layer-violation: line 4

namespace fix {
inline int bad() { return router(); }
}  // namespace fix
