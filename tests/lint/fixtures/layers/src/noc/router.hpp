// Legal downward include: noc (layer 1) -> common (layer 0).
#pragma once

#include "common/ok.hpp"

namespace fix {
inline int router() { return ok(); }
}  // namespace fix
