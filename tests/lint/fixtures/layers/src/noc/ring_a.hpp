// Half of a deliberate include cycle inside one module.
#pragma once

#include "noc/ring_b.hpp"

namespace fix {
inline int ring_a() { return 0; }
}  // namespace fix
