// Other half of the include cycle: fires layer-cycle.
#pragma once

#include "noc/ring_a.hpp"

namespace fix {
inline int ring_b() { return 0; }
}  // namespace fix
