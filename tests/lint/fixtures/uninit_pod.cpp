// Fixture for the uninit-pod-member rule: a snapshot-bearing class must
// not carry uninitialized trivial members -- a restored object would
// inherit garbage for anything load_state misses.
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp.
#include <cstdint>
#include <vector>

namespace fix {

class Counter {
 public:
  int save_state() const;
  void load_state(int v);

 private:
  int bad_count_;                   // fires: line 16
  double* bad_samples_;             // fires: line 17
  int good_count_ = 0;
  std::uint64_t good_cycles_{0};
  std::vector<int> not_pod_;
  int ctor_inited_;

 public:
  Counter() : ctor_inited_(0) {}
};

}  // namespace fix
