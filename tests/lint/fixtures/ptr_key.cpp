// Fixture for the ptr-key-container rule: ordered containers keyed by a
// pointer iterate in allocation-address order, which varies run to run.
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp.
#include <map>
#include <set>
#include <string>

namespace fix {

struct Thing {
  int id = 0;
};

class Registry {
 private:
  std::map<Thing*, int> rank_;  // fires: line 16
  std::set<const Thing*> live_;  // fires: line 17
  // htpb-lint: allow(ptr-key-container) fixture: debug-only diagnostics
  std::map<Thing*, std::string> labels_;
  std::map<int, Thing*> by_id_;  // pointer VALUES are fine, keys are ids
};

}  // namespace fix
