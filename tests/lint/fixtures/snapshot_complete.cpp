// Fixture for the snapshot-complete rule: every data member of a class
// with save_state/load_state must be referenced in the snapshot bodies
// or carry a snapshot-exempt annotation. `dropped_` is deliberately
// omitted from both bodies and must fire.
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp.

namespace fix {

class Snap {
 public:
  int save_state() const { return saved_a_ + saved_b_; }
  void load_state(int v) {
    saved_a_ = v;
    saved_b_ = v;
  }

 private:
  int saved_a_ = 0;
  int saved_b_ = 0;
  int dropped_ = 0;  // fires: line 20
  int wiring_ = 0;  // snapshot-exempt: fixture: derived at construction
};

}  // namespace fix
