// Fixture for the unordered-iter rule. The bare range-for over an
// unordered_map member must fire; the annotated copy must be silenced.
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp -- keep the
// layout stable.
#include <unordered_map>
#include <unordered_set>

namespace fix {

class Tally {
 public:
  int total() const {
    int n = 0;
    for (const auto& [node, count] : by_node_) n += count;  // fires: line 14
    return n;
  }

  int total_allowed() const {
    int n = 0;
    // htpb-lint: allow(unordered-iter) fixture: order-insensitive sum
    for (const auto& [node, count] : by_node_) n += count;
    return n;
  }

  bool touched() const {
    for (const int node : seen_) {  // fires: line 26
      if (node >= 0) return true;
    }
    return false;
  }

 private:
  std::unordered_map<int, int> by_node_;
  std::unordered_set<int> seen_;
};

}  // namespace fix
