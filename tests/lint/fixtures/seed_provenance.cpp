// Fixture for the seed-provenance rule. The literal-seeded generators
// fire; the allow()-marked one is suppressed; the one whose constructor
// argument visibly involves a seed is silent. The 300'000 literal is a
// lexer regression guard: a digit separator mis-lexed as a char-literal
// quote used to swallow the rest of the file and hide the second site.
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp -- keep the
// layout stable.

namespace fix {

struct Rng {
  explicit Rng(unsigned long long s) : s_(s) {}
  unsigned long long s_ = 0;
};

Rng make_default() {
  Rng rng(12345);  // fires: line 17
  return rng;
}

unsigned long long make_std() {
  const long budget = 300'000;  // digit separator, must not eat the file
  std::mt19937 gen(42);  // fires: line 23
  return gen.x + budget;
}

Rng make_allowed() {
  // htpb-lint: allow(seed-provenance) fixture: pinned demo seed
  Rng rng(4242);
  return rng;
}

Rng make_derived(unsigned long long seed) {
  Rng rng(seed * 2 + 1);  // silent: visibly derived from a seed
  return rng;
}

}  // namespace fix
