// Fixture for the spec-field-parity rule. `retries` is written by
// to_json but never read back (fires); `derived_mask` appears on neither
// side but carries a json-exempt marker (suppressed); `width` / `load`
// round-trip on both sides (silent).
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp -- keep the
// layout stable.

namespace fix {

struct Val {};

class LinkSpec {
 public:
  Val to_json() const;
  static LinkSpec from_json(const Val& v);

 private:
  int width = 0;
  double load = 0.0;
  int retries = 0;  // fires: line 20
  // json-exempt: fixture: recomputed from width after parsing
  int derived_mask = 0;
};

Val LinkSpec::to_json() const {
  (void)width;
  (void)load;
  (void)retries;
  return Val{};
}

LinkSpec LinkSpec::from_json(const Val& v) {
  (void)v;
  LinkSpec s;
  (void)s.width;
  (void)s.load;
  return s;
}

}  // namespace fix
