// Fixture for the nondet-call rule: every wall-clock / libc-randomness
// source must fire; the annotated timing block must be silenced.
// Line numbers are asserted by tests/lint/htpb_lint_test.cpp.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fix {

inline unsigned bad_seed() {
  std::random_device rd;                    // fires: line 12
  return rd() + static_cast<unsigned>(std::rand());  // fires: line 13
}

inline long bad_stamp() {
  return std::time(nullptr);                // fires: line 17
}

inline long bad_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // fires: line 21
}

inline long allowed_clock() {
  // htpb-lint: allow(nondet-call) fixture: timing helper, not results
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fix
