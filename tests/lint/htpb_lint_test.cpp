// End-to-end tests for tools/htpb_lint: every rule fires at the expected
// line on its fixture, suppression comments/files silence it, and the
// real tree lints clean (the same gate CI enforces).
//
// The binary path, fixture dir and repo root are baked in by CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace {

using htpb::json::Value;

struct LintRun {
  int exit_code = -1;
  Value report;  // parsed --json output
};

/// Runs htpb_lint with `args` plus `--json -`, captures stdout, returns
/// the exit code and the parsed JSON report. Human-readable violation
/// lines precede the JSON blob on stdout; the report starts at the first
/// '{' at column 0.
LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(HTPB_LINT_BINARY) + " --json - " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  LintRun r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  const std::size_t brace = out.find("\n{");
  const std::size_t start =
      !out.empty() && out[0] == '{' ? 0
      : brace == std::string::npos  ? std::string::npos
                                    : brace + 1;
  EXPECT_NE(start, std::string::npos) << "no JSON report in output of " << cmd;
  if (start != std::string::npos) {
    r.report = htpb::json::parse(
        std::string_view(out).substr(start));
  }
  return r;
}

const Value& get(const htpb::json::Object& o, std::string_view key) {
  const Value* v = o.find(key);
  EXPECT_NE(v, nullptr) << "missing report key " << key;
  static const Value null;
  return v ? *v : null;
}

/// (file, line, rule) triples from a report.
std::set<std::tuple<std::string, int, std::string>> violations(
    const LintRun& r) {
  std::set<std::tuple<std::string, int, std::string>> v;
  for (const Value& o : get(r.report.as_object(), "violations").as_array()) {
    const auto& obj = o.as_object();
    v.emplace(get(obj, "file").as_string(),
              static_cast<int>(get(obj, "line").as_int()),
              get(obj, "rule").as_string());
  }
  return v;
}

int suppressed(const LintRun& r) {
  return static_cast<int>(get(r.report.as_object(), "suppressed").as_int());
}

std::string fixture_args(const std::string& file) {
  return std::string("--root ") + HTPB_LINT_FIXTURE_DIR +
         " --no-default-suppressions " + file;
}

TEST(HtpbLint, UnorderedIterFiresAndInlineAllowSilences) {
  const LintRun r = run_lint(fixture_args("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"unordered_iter.cpp", 14, "unordered-iter"},
                {"unordered_iter.cpp", 26, "unordered-iter"}}));
  EXPECT_EQ(suppressed(r), 1);  // the allow()-marked loop
}

TEST(HtpbLint, NondetCallFiresOnEverySourceKind) {
  const LintRun r = run_lint(fixture_args("nondet_call.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"nondet_call.cpp", 12, "nondet-call"},   // random_device
                {"nondet_call.cpp", 13, "nondet-call"},   // rand()
                {"nondet_call.cpp", 17, "nondet-call"},   // time()
                {"nondet_call.cpp", 21, "nondet-call"}}));  // clock::now()
  EXPECT_EQ(suppressed(r), 1);  // the allow()-marked timing helper
}

TEST(HtpbLint, PtrKeyContainerFiresOnPointerKeysOnly) {
  const LintRun r = run_lint(fixture_args("ptr_key.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // by_id_ (pointer VALUES, id keys) must not fire.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"ptr_key.cpp", 16, "ptr-key-container"},
                {"ptr_key.cpp", 17, "ptr-key-container"}}));
  EXPECT_EQ(suppressed(r), 1);
}

TEST(HtpbLint, UninitPodFiresOnlyWithoutAnyInitializer) {
  const LintRun r = run_lint(fixture_args("uninit_pod.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // good_count_ (= init), good_cycles_ ({} init), not_pod_ (vector) and
  // ctor_inited_ (mem-init list) must all stay silent.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"uninit_pod.cpp", 16, "uninit-pod-member"},
                {"uninit_pod.cpp", 17, "uninit-pod-member"}}));
}

TEST(HtpbLint, SnapshotCompleteCatchesDeliberatelyOmittedMember) {
  const LintRun r = run_lint(fixture_args("snapshot_complete.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // saved_a_/saved_b_ appear in the bodies; wiring_ is snapshot-exempt;
  // only the deliberately omitted dropped_ fires.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"snapshot_complete.cpp", 20, "snapshot-complete"}}));
  EXPECT_EQ(suppressed(r), 1);
}

TEST(HtpbLint, SuppressionFileSilencesByPathWithReason) {
  const std::string supp =
      std::string(HTPB_LINT_TEST_TMPDIR) + "/fixture_supp.txt";
  {
    std::ofstream f(supp);
    f << "nondet-call nondet_call.cpp fixture: whole file is a timing "
         "fixture\n";
  }
  const LintRun r = run_lint(fixture_args("nondet_call.cpp") +
                             " --suppressions " + supp);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(violations(r).empty());
  EXPECT_EQ(suppressed(r), 5);  // 4 file-suppressed + 1 inline allow
}

TEST(HtpbLint, SuppressionWithoutReasonIsConfigError) {
  const std::string supp =
      std::string(HTPB_LINT_TEST_TMPDIR) + "/fixture_supp_bad.txt";
  {
    std::ofstream f(supp);
    f << "nondet-call nondet_call.cpp\n";  // reason missing
  }
  const LintRun r = run_lint(fixture_args("nondet_call.cpp") +
                             " --suppressions " + supp);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(get(r.report.as_object(), "errors").as_array().empty());
}

/// The gate CI enforces: the real tree, with the checked-in suppression
/// file, is clean. A regression here means a new violation slipped in
/// without a reasoned suppression.
TEST(HtpbLint, RealTreeIsClean) {
  const LintRun r =
      run_lint(std::string("--root ") + HTPB_REPO_ROOT);
  EXPECT_EQ(r.exit_code, 0) << htpb::json::dump(r.report, 2);
  EXPECT_TRUE(violations(r).empty());
  EXPECT_GT(suppressed(r), 0);  // the reasoned exemptions are in effect
}

}  // namespace
