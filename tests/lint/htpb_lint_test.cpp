// End-to-end tests for tools/htpb_lint: every rule fires at the expected
// line on its fixture, suppression comments/files silence it, and the
// real tree lints clean (the same gate CI enforces).
//
// The binary path, fixture dir and repo root are baked in by CMake.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/json.hpp"

namespace {

using htpb::json::Value;

struct LintRun {
  int exit_code = -1;
  Value report;  // parsed --json output
};

/// Runs htpb_lint with `args` plus `--json -`, captures stdout, returns
/// the exit code and the parsed JSON report. Human-readable violation
/// lines precede the JSON blob on stdout; the report starts at the first
/// '{' at column 0.
LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(HTPB_LINT_BINARY) + " --json - " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  LintRun r;
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  const std::size_t brace = out.find("\n{");
  const std::size_t start =
      !out.empty() && out[0] == '{' ? 0
      : brace == std::string::npos  ? std::string::npos
                                    : brace + 1;
  EXPECT_NE(start, std::string::npos) << "no JSON report in output of " << cmd;
  if (start != std::string::npos) {
    r.report = htpb::json::parse(
        std::string_view(out).substr(start));
  }
  return r;
}

const Value& get(const htpb::json::Object& o, std::string_view key) {
  const Value* v = o.find(key);
  EXPECT_NE(v, nullptr) << "missing report key " << key;
  static const Value null;
  return v ? *v : null;
}

/// (file, line, rule) triples from a report.
std::set<std::tuple<std::string, int, std::string>> violations(
    const LintRun& r) {
  std::set<std::tuple<std::string, int, std::string>> v;
  for (const Value& o : get(r.report.as_object(), "violations").as_array()) {
    const auto& obj = o.as_object();
    v.emplace(get(obj, "file").as_string(),
              static_cast<int>(get(obj, "line").as_int()),
              get(obj, "rule").as_string());
  }
  return v;
}

int suppressed(const LintRun& r) {
  return static_cast<int>(get(r.report.as_object(), "suppressed").as_int());
}

std::string fixture_args(const std::string& file) {
  return std::string("--root ") + HTPB_LINT_FIXTURE_DIR +
         " --no-default-suppressions " + file;
}

int baseline_matched(const LintRun& r) {
  return static_cast<int>(
      get(r.report.as_object(), "baseline_matched").as_int());
}

/// Runs htpb_lint capturing raw stdout bytes (human lines + `--json -`
/// report); stderr goes to `stderr_path` so cache statistics can be
/// asserted without perturbing the report bytes.
std::string run_raw(const std::string& args, const std::string& stderr_path) {
  const std::string cmd = std::string(HTPB_LINT_BINARY) + " --json - " + args +
                          " 2>" + stderr_path;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  std::string out;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    out.append(buf.data(), n);
  }
  pclose(pipe);
  return out;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Exit code of htpb_lint run via system(), stdout/stderr discarded.
int run_status(const std::string& args) {
  const std::string cmd =
      std::string(HTPB_LINT_BINARY) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(HtpbLint, UnorderedIterFiresAndInlineAllowSilences) {
  const LintRun r = run_lint(fixture_args("unordered_iter.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"unordered_iter.cpp", 14, "unordered-iter"},
                {"unordered_iter.cpp", 26, "unordered-iter"}}));
  EXPECT_EQ(suppressed(r), 1);  // the allow()-marked loop
}

TEST(HtpbLint, NondetCallFiresOnEverySourceKind) {
  const LintRun r = run_lint(fixture_args("nondet_call.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"nondet_call.cpp", 12, "nondet-call"},   // random_device
                {"nondet_call.cpp", 13, "nondet-call"},   // rand()
                {"nondet_call.cpp", 17, "nondet-call"},   // time()
                {"nondet_call.cpp", 21, "nondet-call"}}));  // clock::now()
  EXPECT_EQ(suppressed(r), 1);  // the allow()-marked timing helper
}

TEST(HtpbLint, PtrKeyContainerFiresOnPointerKeysOnly) {
  const LintRun r = run_lint(fixture_args("ptr_key.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // by_id_ (pointer VALUES, id keys) must not fire.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"ptr_key.cpp", 16, "ptr-key-container"},
                {"ptr_key.cpp", 17, "ptr-key-container"}}));
  EXPECT_EQ(suppressed(r), 1);
}

TEST(HtpbLint, UninitPodFiresOnlyWithoutAnyInitializer) {
  const LintRun r = run_lint(fixture_args("uninit_pod.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // good_count_ (= init), good_cycles_ ({} init), not_pod_ (vector) and
  // ctor_inited_ (mem-init list) must all stay silent.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"uninit_pod.cpp", 16, "uninit-pod-member"},
                {"uninit_pod.cpp", 17, "uninit-pod-member"}}));
}

TEST(HtpbLint, SnapshotCompleteCatchesDeliberatelyOmittedMember) {
  const LintRun r = run_lint(fixture_args("snapshot_complete.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // saved_a_/saved_b_ appear in the bodies; wiring_ is snapshot-exempt;
  // only the deliberately omitted dropped_ fires.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"snapshot_complete.cpp", 20, "snapshot-complete"}}));
  EXPECT_EQ(suppressed(r), 1);
}

TEST(HtpbLint, SuppressionFileSilencesByPathWithReason) {
  const std::string supp =
      std::string(HTPB_LINT_TEST_TMPDIR) + "/fixture_supp.txt";
  {
    std::ofstream f(supp);
    f << "nondet-call nondet_call.cpp fixture: whole file is a timing "
         "fixture\n";
  }
  const LintRun r = run_lint(fixture_args("nondet_call.cpp") +
                             " --suppressions " + supp);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_TRUE(violations(r).empty());
  EXPECT_EQ(suppressed(r), 5);  // 4 file-suppressed + 1 inline allow
}

TEST(HtpbLint, SuppressionWithoutReasonIsConfigError) {
  const std::string supp =
      std::string(HTPB_LINT_TEST_TMPDIR) + "/fixture_supp_bad.txt";
  {
    std::ofstream f(supp);
    f << "nondet-call nondet_call.cpp\n";  // reason missing
  }
  const LintRun r = run_lint(fixture_args("nondet_call.cpp") +
                             " --suppressions " + supp);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_FALSE(get(r.report.as_object(), "errors").as_array().empty());
}

TEST(HtpbLint, SpecFieldParityFiresAndJsonExemptSilences) {
  const LintRun r = run_lint(fixture_args("spec_field_parity.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // retries is written by to_json but never read back; width/load
  // round-trip; derived_mask is json-exempt with a reason.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"spec_field_parity.cpp", 20, "spec-field-parity"}}));
  EXPECT_EQ(suppressed(r), 1);
}

TEST(HtpbLint, SeedProvenanceFiresAcrossDigitSeparators) {
  const LintRun r = run_lint(fixture_args("seed_provenance.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // Line 23 sits after a 300'000 literal: the digit separator used to be
  // mis-lexed as a char-literal quote, swallowing the rest of the file
  // and hiding this site. The seed-derived constructor stays silent.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"seed_provenance.cpp", 17, "seed-provenance"},
                {"seed_provenance.cpp", 23, "seed-provenance"}}));
  EXPECT_EQ(suppressed(r), 1);  // the allow()-marked pinned demo seed
}

TEST(HtpbLint, FloatUnorderedReduceRequiresFloatEvidence) {
  const LintRun r = run_lint(fixture_args("float_reduce.cpp"));
  EXPECT_EQ(r.exit_code, 1);
  // The double `+=` and the 0.0-seeded accumulate fire; the integer
  // accumulators are silent.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"float_reduce.cpp", 22, "float-unordered-reduce"},
                {"float_reduce.cpp", 47, "float-unordered-reduce"}}));
  // 3 unordered-iter allows on the loops + 1 float-unordered-reduce.
  EXPECT_EQ(suppressed(r), 4);
}

TEST(HtpbLint, LayeringBackEdgeAndCycleFire) {
  const std::string dir = std::string(HTPB_LINT_FIXTURE_DIR) + "/layers";
  const LintRun r = run_lint("--root " + dir + " --layers " + dir +
                             "/layers.txt --no-default-suppressions");
  EXPECT_EQ(r.exit_code, 1);
  // common -> noc is a back-edge; ring_a <-> ring_b is a cycle; the
  // legal downward include noc -> common stays silent.
  EXPECT_EQ(violations(r),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"src/common/bad.hpp", 4, "layer-violation"},
                {"src/noc/ring_b.hpp", 4, "layer-cycle"}}));
}

TEST(HtpbLint, CacheDirWarmRunIsByteIdentical) {
  namespace fs = std::filesystem;
  const fs::path tmp(HTPB_LINT_TEST_TMPDIR);
  const fs::path cache = tmp / "lint_cache";
  fs::remove_all(cache);
  const std::string args = fixture_args("spec_field_parity.cpp") +
                           " seed_provenance.cpp --cache-dir " +
                           cache.string();
  const std::string cold = run_raw(args, (tmp / "cache_err1.txt").string());
  const std::string warm = run_raw(args, (tmp / "cache_err2.txt").string());
  EXPECT_FALSE(cold.empty());
  EXPECT_EQ(cold, warm);  // warm report is byte-identical to the cold one
  EXPECT_NE(read_file(tmp / "cache_err1.txt").find("0 hits, 2 misses"),
            std::string::npos);
  EXPECT_NE(read_file(tmp / "cache_err2.txt").find("2 hits, 0 misses"),
            std::string::npos);
}

TEST(HtpbLint, BaselineSilencesKnownFindingsButFailsOnNew) {
  const std::string base =
      std::string(HTPB_LINT_TEST_TMPDIR) + "/lint_baseline.json";
  ASSERT_EQ(run_status("--json " + base + " " +
                       fixture_args("seed_provenance.cpp")),
            1);  // the report written here becomes the baseline
  const LintRun clean = run_lint(fixture_args("seed_provenance.cpp") +
                                 " --baseline " + base);
  EXPECT_EQ(clean.exit_code, 0);
  EXPECT_TRUE(violations(clean).empty());
  EXPECT_EQ(baseline_matched(clean), 2);
  // A finding not in the baseline still fails the run.
  const LintRun dirty = run_lint(fixture_args("seed_provenance.cpp") +
                                 " spec_field_parity.cpp --baseline " + base);
  EXPECT_EQ(dirty.exit_code, 1);
  EXPECT_EQ(violations(dirty),
            (std::set<std::tuple<std::string, int, std::string>>{
                {"spec_field_parity.cpp", 20, "spec-field-parity"}}));
  EXPECT_EQ(baseline_matched(dirty), 2);
}

TEST(HtpbLint, FixScaffoldsAreIdempotentAndCompile) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(HTPB_LINT_TEST_TMPDIR) / "fix_root";
  fs::remove_all(root);
  fs::create_directories(root);
  fs::copy_file(fs::path(HTPB_LINT_FIXTURE_DIR) / "unordered_iter.cpp",
                root / "unordered_iter.cpp");
  const std::string args = "--root " + root.string() +
                           " --no-default-suppressions unordered_iter.cpp";
  EXPECT_EQ(run_status(args), 1);          // both loops fire pre-fix
  EXPECT_EQ(run_status(args + " --fix"), 0);
  const LintRun after = run_lint(args);
  EXPECT_EQ(after.exit_code, 0);           // scaffolds silence the findings
  EXPECT_TRUE(violations(after).empty());
  EXPECT_EQ(suppressed(after), 3);         // 1 original allow + 2 inserted
  const std::string fixed_once = read_file(root / "unordered_iter.cpp");
  EXPECT_NE(fixed_once.find("FIXME: justify"), std::string::npos);
  EXPECT_EQ(run_status(args + " --fix"), 0);  // idempotent: nothing left
  EXPECT_EQ(read_file(root / "unordered_iter.cpp"), fixed_once);
  const int cc = std::system(("g++ -std=c++17 -fsyntax-only " +
                              (root / "unordered_iter.cpp").string() +
                              " >/dev/null 2>&1")
                                 .c_str());
  EXPECT_EQ(cc, 0);  // the scaffolded file still compiles
}

/// The gate CI enforces: the real tree, with the checked-in suppression
/// file, is clean. A regression here means a new violation slipped in
/// without a reasoned suppression.
TEST(HtpbLint, RealTreeIsClean) {
  const LintRun r =
      run_lint(std::string("--root ") + HTPB_REPO_ROOT);
  EXPECT_EQ(r.exit_code, 0) << htpb::json::dump(r.report, 2);
  EXPECT_TRUE(violations(r).empty());
  EXPECT_GT(suppressed(r), 0);  // the reasoned exemptions are in effect
}

}  // namespace
