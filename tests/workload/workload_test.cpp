#include <gtest/gtest.h>

#include <set>

#include "workload/application.hpp"
#include "workload/benchmark_profile.hpp"

namespace htpb::workload {
namespace {

TEST(BenchmarkTable, ContainsAllTableTwoBenchmarks) {
  // Table II: 9 PARSEC + 2 SPLASH-2 benchmarks.
  const auto table = benchmark_table();
  EXPECT_EQ(table.size(), 11U);
  int parsec = 0;
  int splash = 0;
  for (const auto& b : table) {
    if (b.suite == "PARSEC") ++parsec;
    if (b.suite == "SPLASH-2") ++splash;
  }
  EXPECT_EQ(parsec, 9);
  EXPECT_EQ(splash, 2);
  for (const char* name :
       {"streamcluster", "swaptions", "ferret", "fluidanimate",
        "blackscholes", "freqmine", "dedup", "canneal", "vips", "barnes",
        "raytrace"}) {
    EXPECT_TRUE(find_benchmark(name).has_value()) << name;
  }
}

TEST(BenchmarkTable, ParametersSane) {
  for (const auto& b : benchmark_table()) {
    EXPECT_GT(b.cpi_base, 0.0) << b.name;
    EXPECT_GT(b.apki, 0.0) << b.name;
    EXPECT_GT(b.working_set_lines, 0U) << b.name;
    EXPECT_GE(b.shared_fraction, 0.0) << b.name;
    EXPECT_LE(b.shared_fraction, 1.0) << b.name;
    EXPECT_GE(b.write_fraction, 0.0) << b.name;
    EXPECT_LE(b.write_fraction, 1.0) << b.name;
  }
}

TEST(BenchmarkTable, ComputeVsMemoryBoundSpread) {
  // The attack analysis relies on a sensitivity spread: blackscholes must
  // be far more compute-bound than canneal.
  const auto& bs = benchmark("blackscholes");
  const auto& cn = benchmark("canneal");
  EXPECT_LT(bs.apki, cn.apki / 4.0);
  EXPECT_LT(bs.working_set_lines, cn.working_set_lines / 8);
}

TEST(BenchmarkTable, UnknownNameThrows) {
  EXPECT_THROW((void)benchmark("doom"), std::out_of_range);
  EXPECT_FALSE(find_benchmark("doom").has_value());
}

TEST(StandardMixes, MatchesTableThree) {
  const auto& mixes = standard_mixes();
  ASSERT_EQ(mixes.size(), 4U);
  EXPECT_EQ(mixes[0].name, "mix-1");
  EXPECT_EQ(mixes[0].attackers, (std::vector<std::string>{"barnes", "canneal"}));
  EXPECT_EQ(mixes[0].victims,
            (std::vector<std::string>{"blackscholes", "raytrace"}));
  EXPECT_EQ(mixes[1].attackers,
            (std::vector<std::string>{"freqmine", "swaptions"}));
  EXPECT_EQ(mixes[1].victims, (std::vector<std::string>{"raytrace", "vips"}));
  EXPECT_EQ(mixes[2].attackers, (std::vector<std::string>{"canneal"}));
  EXPECT_EQ(mixes[2].victims,
            (std::vector<std::string>{"barnes", "vips", "dedup"}));
  EXPECT_EQ(mixes[3].attackers,
            (std::vector<std::string>{"barnes", "streamcluster", "freqmine"}));
  EXPECT_EQ(mixes[3].victims, (std::vector<std::string>{"raytrace"}));
  // Paper: attacker/victim counts are 1..3 per side, 4 apps total.
  for (const auto& mix : mixes) {
    EXPECT_EQ(mix.app_count(), 4);
    EXPECT_GE(mix.attackers.size(), 1U);
    EXPECT_LE(mix.attackers.size(), 3U);
  }
}

TEST(InstantiateMix, RolesAndIdsAssigned) {
  const auto apps = instantiate_mix(standard_mixes()[0], 16);
  ASSERT_EQ(apps.size(), 4U);
  EXPECT_TRUE(apps[0].is_attacker());
  EXPECT_TRUE(apps[1].is_attacker());
  EXPECT_FALSE(apps[2].is_attacker());
  EXPECT_FALSE(apps[3].is_attacker());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    EXPECT_EQ(apps[i].id, i);
    EXPECT_EQ(apps[i].threads, 16);
  }
}

TEST(InstantiateMix, RejectsNonPositiveThreads) {
  EXPECT_THROW((void)instantiate_mix(standard_mixes()[0], 0),
               std::invalid_argument);
}

TEST(MapRoundRobin, InterleavesAcrossDie) {
  auto apps = instantiate_mix(standard_mixes()[0], 16);
  map_threads_round_robin(apps, 64);
  std::set<NodeId> used;
  for (const auto& app : apps) {
    ASSERT_EQ(app.cores.size(), 16U);
    for (const NodeId c : app.cores) {
      EXPECT_TRUE(used.insert(c).second) << "core assigned twice";
    }
  }
  EXPECT_EQ(used.size(), 64U);
  // Interleaving: app 0 holds nodes 0, 4, 8, ...
  EXPECT_EQ(apps[0].cores[0], 0U);
  EXPECT_EQ(apps[1].cores[0], 1U);
  EXPECT_EQ(apps[0].cores[1], 4U);
}

TEST(MapBlocked, ContiguousBands) {
  auto apps = instantiate_mix(standard_mixes()[0], 8);
  map_threads_blocked(apps, 64);
  EXPECT_EQ(apps[0].cores.front(), 0U);
  EXPECT_EQ(apps[0].cores.back(), 7U);
  EXPECT_EQ(apps[1].cores.front(), 8U);
  EXPECT_EQ(apps[3].cores.back(), 31U);
}

TEST(MapThreads, TooManyThreadsThrow) {
  auto apps = instantiate_mix(standard_mixes()[0], 32);  // 128 threads
  EXPECT_THROW(map_threads_round_robin(apps, 64), std::invalid_argument);
  EXPECT_THROW(map_threads_blocked(apps, 64), std::invalid_argument);
}

}  // namespace
}  // namespace htpb::workload
