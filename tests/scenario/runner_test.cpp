// The scenario runner's acceptance contract:
//  1. Bit-identity with the legacy bench path -- executing the registry's
//     "fig3" and "defense-roc" specs at --quick produces, double for
//     double, the numbers the hand-rolled bench mains produced before the
//     port (their config-assembly code is replicated inline here as the
//     reference).
//  2. Seed determinism -- same seed, same result tree; different seed,
//     different tree (no stochastic entry point hides a default Rng).
//  3. Thread invariance -- the tree is identical at 1 and N threads.
//  4. Trace record/replay -- the scenario-level trace surface agrees with
//     power::replay_detector, including through disk persistence.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "core/defense_sweep.hpp"
#include "core/infection.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "power/request_trace.hpp"
#include "scenario/registry.hpp"
#include "workload/application.hpp"

namespace htpb::scenario {
namespace {

json::Value run_quick(const char* name, int threads = 0) {
  RunOptions opts;
  opts.quick = true;
  opts.threads = threads;
  return run_scenario(scenario_or_throw(name), opts);
}

/// Wall-clock seconds are the one non-deterministic part of a result.
json::Value without_timing(json::Value v) {
  v.as_object()["timing"] = json::Value();
  v.as_object()["threads"] = json::Value();
  return v;
}

// ---------------------------------------------------------------- fig3

TEST(ScenarioRunner, Fig3QuickBitIdenticalToLegacyBenchPath) {
  const json::Value result = run_quick("fig3");
  const json::Array& arms = result.as_object().find("arms")->as_array();

  // The pre-port bench_fig3 main, verbatim (HTPB_QUICK=1 constants:
  // 2 seeds, 1 warmup + 2 measure epochs, Rng(1000 + s*77 + hts)).
  const int seeds = 2;
  struct Arm {
    int nodes;
    std::vector<int> ht_counts;
  };
  const std::vector<Arm> legacy_arms = {
      {64, {2, 5, 10, 15, 20, 25, 30}},
      {512, {5, 10, 20, 30, 40, 50, 60}},
  };
  ASSERT_EQ(arms.size(), legacy_arms.size());

  for (std::size_t a = 0; a < legacy_arms.size(); ++a) {
    const Arm& arm = legacy_arms[a];
    const json::Object& arm_out = arms[a].as_object();
    EXPECT_EQ(arm_out.find("nodes")->as_int(), arm.nodes);
    const json::Array& rows = arm_out.find("rows")->as_array();
    ASSERT_EQ(rows.size(), arm.ht_counts.size());
    for (std::size_t h = 0; h < arm.ht_counts.size(); ++h) {
      const int hts = arm.ht_counts[h];
      const json::Array& cells = rows[h].as_object().find("cells")->as_array();
      ASSERT_EQ(cells.size(), 2U);
      const system::GmPlacement placements[2] = {
          system::GmPlacement::kCenter, system::GmPlacement::kCorner};
      for (int p = 0; p < 2; ++p) {
        core::CampaignConfig cfg;
        cfg.system = system::SystemConfig::with_size(arm.nodes);
        cfg.system.epoch_cycles = 1500;
        cfg.system.gm_placement = placements[p];
        cfg.mix = std::nullopt;
        cfg.warmup_epochs = 1;
        cfg.measure_epochs = 2;
        core::AttackCampaign campaign(cfg);
        const MeshGeometry geom(cfg.system.width, cfg.system.height);
        const core::InfectionAnalyzer analyzer(geom, campaign.gm_node());
        double sim_rate = 0.0;
        double ana_rate = 0.0;
        for (int s = 0; s < seeds; ++s) {
          Rng rng(1000 + static_cast<std::uint64_t>(s) * 77 + hts);
          const auto nodes =
              core::random_placement(geom, hts, rng, campaign.gm_node());
          sim_rate += campaign.run_infection_only(nodes);
          ana_rate += analyzer.predicted_rate(nodes);
        }
        const json::Object& cell = cells[p].as_object();
        EXPECT_EQ(cell.find("simulated")->as_double(), sim_rate / seeds)
            << arm.nodes << " nodes, " << hts << " HTs, placement " << p;
        EXPECT_EQ(cell.find("analytic")->as_double(), ana_rate / seeds);
      }
    }
  }
}

// ---------------------------------------------------------- defense-roc

TEST(ScenarioRunner, DefenseRocQuickBitIdenticalToLegacyBenchPath) {
  const json::Value result = run_quick("defense-roc");
  const json::Object& root = result.as_object();

  // The pre-port bench_defense_sweep main, verbatim (HTPB_QUICK=1
  // constants: 2 bands, 2 placements, measure 4, ROC periods {2},
  // factors {0.10, 0.60}, 1 ROC placement).
  core::DefenseSweepConfig sweep_cfg;
  sweep_cfg.base.system = system::SystemConfig::with_size(64);
  sweep_cfg.base.system.epoch_cycles = 2000;
  sweep_cfg.base.mix = workload::standard_mixes().at(0);
  sweep_cfg.base.trojan.victim_scale = 0.10;
  sweep_cfg.base.trojan.attacker_boost = 8.0;
  sweep_cfg.base.trojan.active = false;
  sweep_cfg.base.toggle_period_epochs = 3;
  sweep_cfg.base.warmup_epochs = 2;
  sweep_cfg.base.measure_epochs = 4;
  for (const auto& [lo, hi] : {std::pair{0.6, 1.6}, std::pair{0.3, 3.0}}) {
    power::DetectorConfig d;
    d.low_ratio = lo;
    d.high_ratio = hi;
    sweep_cfg.detectors.push_back(d);
  }
  const core::AttackCampaign probe(sweep_cfg.base);
  const MeshGeometry geom(8, 8);
  sweep_cfg.placements.push_back(core::clustered_placement(
      geom, 8, geom.coord_of(probe.gm_node()), probe.gm_node()));
  sweep_cfg.placements.push_back(core::clustered_placement(
      geom, 8, Coord{geom.width() / 4, geom.height() / 4}, probe.gm_node()));

  const core::ParallelSweepRunner runner;
  const auto curve = core::DefenseSweep(sweep_cfg).run(runner);

  const json::Array& points =
      root.find("curve")->as_object().find("points")->as_array();
  ASSERT_EQ(points.size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const json::Object& pt = points[i].as_object();
    EXPECT_EQ(pt.find("low")->as_double(), curve[i].detector.low_ratio);
    EXPECT_EQ(pt.find("high")->as_double(), curve[i].detector.high_ratio);
    EXPECT_EQ(pt.find("detection_rate")->as_double(),
              curve[i].detection_rate);
    EXPECT_EQ(pt.find("victim_flag_rate")->as_double(),
              curve[i].victim_flag_rate);
    EXPECT_EQ(pt.find("attacker_flag_rate")->as_double(),
              curve[i].attacker_flag_rate);
    EXPECT_EQ(pt.find("false_positive_rate")->as_double(),
              curve[i].false_positive_rate);
    EXPECT_EQ(pt.find("mean_detection_latency")->as_double(),
              curve[i].mean_detection_latency);
    EXPECT_EQ(pt.find("mean_q_plain")->as_double(), curve[i].mean_q_plain);
    EXPECT_EQ(pt.find("mean_q_guarded")->as_double(),
              curve[i].mean_q_guarded);
  }

  // ROC grid (legacy quick: one dynamics axis point per period/factor,
  // detector grid = 2 kinds x 2 bands, 1 placement).
  const std::vector<int> periods = {2};
  const std::vector<double> factors = {0.10, 0.60};
  std::vector<power::DetectorConfig> roc_detectors;
  for (const auto kind :
       {power::DetectorKind::kSelfEwma, power::DetectorKind::kCohortMedian}) {
    for (const auto& [lo, hi] : {std::pair{0.6, 1.6}, std::pair{0.3, 3.0}}) {
      power::DetectorConfig d;
      d.kind = kind;
      d.low_ratio = lo;
      d.high_ratio = hi;
      roc_detectors.push_back(d);
    }
  }
  const std::vector<std::vector<NodeId>> roc_placements(
      sweep_cfg.placements.begin(), sweep_cfg.placements.begin() + 1);
  int monitored = 0;
  for (const auto& app : probe.apps()) {
    monitored += static_cast<int>(app.cores.size());
  }
  const auto roc_config = [&](int period, double factor) {
    core::CampaignConfig cfg = sweep_cfg.base;
    cfg.detector.reset();
    cfg.trojan.victim_scale = factor;
    cfg.trojan.active = false;
    cfg.toggle_period_epochs = period;
    return cfg;
  };
  const std::size_t dyn_count = periods.size() * factors.size();
  std::vector<power::RequestTrace> traces;
  for (std::size_t dyn = 0; dyn < dyn_count; ++dyn) {
    for (std::size_t p = 0; p < roc_placements.size(); ++p) {
      core::AttackCampaign campaign(
          roc_config(periods[dyn / factors.size()],
                     factors[dyn % factors.size()]));
      traces.push_back(campaign.record_trace(roc_placements[p]));
    }
  }
  core::CampaignConfig clean_cfg = sweep_cfg.base;
  clean_cfg.trojan.active = false;
  clean_cfg.toggle_period_epochs = 0;
  core::AttackCampaign clean_campaign(clean_cfg);
  const power::RequestTrace clean_trace =
      clean_campaign.record_trace(roc_placements.front());

  const json::Array& roc_points =
      root.find("roc")->as_object().find("points")->as_array();
  ASSERT_EQ(roc_points.size(), dyn_count * roc_detectors.size());
  std::size_t i = 0;
  for (std::size_t dyn = 0; dyn < dyn_count; ++dyn) {
    for (std::size_t d = 0; d < roc_detectors.size(); ++d, ++i) {
      const json::Object& pt = roc_points[i].as_object();
      double detect = 0.0;
      double latency_sum = 0.0;
      int latency_n = 0;
      for (std::size_t p = 0; p < roc_placements.size(); ++p) {
        const auto rep = power::replay_detector(
            traces[dyn * roc_placements.size() + p], roc_detectors[d]);
        detect += static_cast<double>(rep.unique_flagged()) / monitored;
        if (rep.first_flag_epoch >= 0) {
          latency_sum += rep.first_flag_epoch;
          ++latency_n;
        }
      }
      detect /= static_cast<double>(roc_placements.size());
      const auto clean_rep =
          power::replay_detector(clean_trace, roc_detectors[d]);
      EXPECT_EQ(pt.find("period")->as_int(),
                periods[dyn / factors.size()]);
      EXPECT_EQ(pt.find("factor")->as_double(),
                factors[dyn % factors.size()]);
      EXPECT_EQ(pt.find("kind")->as_string(),
                to_string(roc_detectors[d].kind));
      EXPECT_EQ(pt.find("detect")->as_double(), detect);
      EXPECT_EQ(pt.find("fp")->as_double(),
                static_cast<double>(clean_rep.unique_flagged()) / monitored);
      EXPECT_EQ(pt.find("latency")->as_double(),
                latency_n > 0 ? latency_sum / latency_n : -1.0);
    }
  }
}

// ----------------------------------------------- seeds, threads, traces

/// A deliberately small stochastic scenario (one mix, one coverage
/// target) so the determinism properties are cheap to assert.
ScenarioSpec small_attack_spec() {
  ScenarioBuilder b("small-attack", ScenarioKind::kAttackEffect);
  b.title("t").paper_ref("p").expectation("e");
  b.size(64)
      .epoch_cycles(1500)
      .victim_scale(0.10)
      .attacker_boost(8.0)
      .warmup_epochs(1)
      .measure_epochs(2);
  b.workload().mixes = {"mix-1"};
  b.axes().infection_targets = {0.5};
  b.axes().placement_max_hts = 16;
  return b.build();
}

TEST(ScenarioRunner, SameSeedSameResultDifferentSeedDiffers) {
  const ScenarioSpec spec = small_attack_spec();
  const json::Value a = without_timing(run_scenario(spec));
  const json::Value b = without_timing(run_scenario(spec));
  EXPECT_EQ(json::dump(a, 0), json::dump(b, 0));

  RunOptions reseeded;
  reseeded.seed = 999;
  const json::Value c = without_timing(run_scenario(spec, reseeded));
  EXPECT_NE(json::dump(a, 0), json::dump(c, 0));
}

TEST(ScenarioRunner, ResultIsThreadCountInvariant) {
  const ScenarioSpec spec = small_attack_spec();
  RunOptions one;
  one.threads = 1;
  RunOptions four;
  four.threads = 4;
  EXPECT_EQ(json::dump(without_timing(run_scenario(spec, one)), 0),
            json::dump(without_timing(run_scenario(spec, four)), 0));
}

// ------------------------------------------------- defense-closed-loop

TEST(ScenarioRunner, ClosedLoopDeterministicAndThreadCountInvariant) {
  const ScenarioSpec& spec = scenario_or_throw("defense-closed-loop");
  RunOptions one;
  one.quick = true;
  one.threads = 1;
  RunOptions four;
  four.quick = true;
  four.threads = 4;
  const json::Value a = without_timing(run_scenario(spec, one));
  const json::Value b = without_timing(run_scenario(spec, one));
  const json::Value c = without_timing(run_scenario(spec, four));
  // Same seed -> bit-identical tree, including every response and
  // adaptation outcome; and the arm fan-out must not leak thread count.
  EXPECT_EQ(json::dump(a, 0), json::dump(b, 0));
  EXPECT_EQ(json::dump(a, 0), json::dump(c, 0));
}

TEST(ScenarioRunner, ClosedLoopAdaptiveTrojanEvadesAtEqualMeanDuty) {
  const json::Value result = run_quick("defense-closed-loop");
  const json::Object& root = result.as_object();

  // The headline: grant-feedback duty control beats the EWMA detector
  // that catches a blind duty cycle of the same mean exposure.
  const json::Object& cmp = root.find("duty_comparison")->as_object();
  const json::Object& fixed = cmp.find("static")->as_object();
  const json::Object& adaptive = cmp.find("adaptive")->as_object();
  EXPECT_NEAR(fixed.find("duty")->as_double(), 0.5, 0.1);
  EXPECT_NEAR(adaptive.find("duty")->as_double(), 0.5, 0.1);
  EXPECT_LT(adaptive.find("detection_rate")->as_double(),
            fixed.find("detection_rate")->as_double());
  EXPECT_GT(fixed.find("detection_rate")->as_double(), 0.5);

  // Quick trims to one placement: 2 Trojan modes x (no response + 3
  // policies), every response arm carrying its tradeoff surface.
  const json::Array& arms = root.find("arms")->as_array();
  ASSERT_EQ(arms.size(), 8U);
  int with_response = 0;
  int adaptive_arms = 0;
  for (const auto& v : arms) {
    const json::Object& row = v.as_object();
    EXPECT_GE(row.find("detection_rate")->as_double(), 0.0);
    EXPECT_LE(row.find("detection_rate")->as_double(), 1.0);
    if (row.find("response")->as_string() != "none") {
      ++with_response;
      ASSERT_NE(row.find("victim_grant_recovery"), nullptr);
      ASSERT_NE(row.find("epochs_to_recovery"), nullptr);
      ASSERT_NE(row.find("collateral"), nullptr);
    }
    if (row.find("trojan")->as_string() == "adaptive") {
      ++adaptive_arms;
      ASSERT_NE(row.find("duty"), nullptr);
    }
  }
  EXPECT_EQ(with_response, 6);
  EXPECT_EQ(adaptive_arms, 4);
}

TEST(ScenarioRunner, TraceRecordReplayAgreesThroughDisk) {
  const ScenarioSpec spec = small_attack_spec();
  const power::RequestTrace trace = record_scenario_trace(spec);
  ASSERT_FALSE(trace.empty());

  const std::string path = "scenario_trace_roundtrip.htpbtrc";
  trace.save(path);
  const power::RequestTrace loaded = power::RequestTrace::load(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded, trace);

  // Scenario-level replay agrees with the raw power-layer replay, off
  // the in-memory trace and the loaded one alike.
  const json::Value a = replay_scenario_detectors(spec, trace);
  const json::Value b = replay_scenario_detectors(spec, loaded);
  EXPECT_EQ(json::dump(a, 0), json::dump(b, 0));
  const json::Array& reports = a.as_object().find("reports")->as_array();
  ASSERT_FALSE(reports.empty());
  const power::DetectorReport direct =
      power::replay_detector(trace, power::DetectorConfig{});
  EXPECT_EQ(static_cast<std::size_t>(
                reports[0].as_object().find("unique_flagged")->as_int()),
            direct.unique_flagged());
}

}  // namespace
}  // namespace htpb::scenario
