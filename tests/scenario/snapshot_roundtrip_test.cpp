// Checkpointing correctness lock (the PR-8 acceptance bar): for EVERY
// registered scenario, running at --quick with the snapshot self-test
// armed -- ManyCoreSystem::run_epochs interrupts each multi-epoch run at
// a near-boundary cut and a mid-epoch cut and round-trips the whole
// system (engine, NoC, tiles, caches, manager, RNG streams) through its
// JSON snapshot at each cut -- must produce a result tree bit-identical
// to the uninterrupted run, "timing"/"threads" excepted. Any state a
// layer forgets to save (or restores in a different iteration order)
// shows up here as a double-for-double diff.
#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "system/manycore_system.hpp"

namespace htpb::scenario {
namespace {

/// Wall-clock seconds and the pool size are the non-deterministic parts.
json::Value without_timing(json::Value v) {
  v.as_object()["timing"] = json::Value();
  v.as_object()["threads"] = json::Value();
  return v;
}

/// RAII so a failing scenario cannot leave the hook armed for the rest
/// of the process.
class SelfTestGuard {
 public:
  SelfTestGuard() { system::set_snapshot_self_test(true); }
  ~SelfTestGuard() { system::set_snapshot_self_test(false); }
};

TEST(SnapshotRoundtrip, EveryRegistryScenarioBitIdenticalThroughSnapshots) {
  RunOptions opts;
  opts.quick = true;
  for (const ScenarioSpec& spec : registry()) {
    ASSERT_FALSE(system::snapshot_self_test());
    const json::Value plain = without_timing(run_scenario(spec, opts));
    json::Value cut;
    {
      SelfTestGuard armed;
      cut = without_timing(run_scenario(spec, opts));
    }
    EXPECT_EQ(json::dump(plain, 0), json::dump(cut, 0))
        << "scenario \"" << spec.name
        << "\": snapshot/restore diverged from the straight-through run";
  }
}

}  // namespace
}  // namespace htpb::scenario
