// The ScenarioSpec serialization contract: exact JSON round trips,
// unknown-key rejection, schema versioning, exhaustive enum <-> string
// maps, the quick overlay, the --set override grammar and the builder.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include "scenario/registry.hpp"

namespace htpb::scenario {
namespace {

/// A spec exercising every section and most axis fields with non-default
/// values (the round trip must preserve each one).
ScenarioSpec full_spec() {
  ScenarioBuilder b("kitchen-sink", ScenarioKind::kDefenseSweep);
  b.title("t").paper_ref("p").expectation("e");
  b.mesh(10, 6)
      .epoch_cycles(1234)
      .first_epoch_cycle(77)
      .budget_fraction(0.37)
      .budgeter(power::BudgeterKind::kMarket)
      .guard_requests(true)
      .gm_placement(system::GmPlacement::kCorner)
      .mix("mix-2")
      .threads_per_app(4)
      .trojan_active(false)
      .victim_scale(0.21)
      .attacker_boost(5.5)
      .toggle_period(3)
      .warmup_epochs(1)
      .measure_epochs(4)
      .seed(987654321)
      .threads(3)
      .quick(R"({"epochs": {"measure": 2}})");
  DetectorSpec det;
  det.kind = power::DetectorKind::kCohortMedian;
  det.low_ratio = 0.5;
  det.high_ratio = 1.9;
  det.history_alpha = 0.3;
  det.warmup_epochs = 1;
  det.confirm_epochs = 3;
  b.detector(det);
  ResponseSpec resp;
  resp.kind = power::ResponseKind::kThrottle;
  resp.trigger = power::ResponseTrigger::kBoth;
  resp.sanction_epochs = 5;
  resp.recovery_threshold = 0.8;
  b.response(resp);
  AdaptationSpec adapt;  // parameters without the switch: enabled stays off
  adapt.alpha = 0.25;
  adapt.backoff_ratio = 0.5;
  adapt.max_on_epochs = 2;
  adapt.hold_off_epochs = 3;
  b.adaptation(adapt);
  b.system().seed = 17;
  b.axes().responses = {power::ResponseKind::kThrottle,
                        power::ResponseKind::kMigrate};
  b.axes().bands = {{0.7, 1.4}, {0.33, 2.9}};
  b.axes().placements = {{ClusterSpec::At::kQuarter, 6},
                         {ClusterSpec::At::kCorner, 4}};
  b.axes().roc.periods = {0, 2};
  b.axes().roc.factors = {0.25, 0.75};
  b.axes().roc.placements = 1;
  b.axes().roc.epoch0_first_epoch_cycle = 555;
  return b.build();
}

TEST(ScenarioSpec, RoundTripIsExact) {
  const ScenarioSpec spec = full_spec();
  const json::Value j = spec.to_json();
  const ScenarioSpec back = ScenarioSpec::from_json(j);
  EXPECT_EQ(back, spec);
  // Text-level stability: dump -> parse -> dump is a fixed point.
  const std::string text = json::dump(j, 2);
  EXPECT_EQ(json::dump(json::parse(text), 2), text);
}

TEST(ScenarioSpec, RejectsUnknownKeysEverywhere) {
  const auto corrupt = [](const char* path, const char* key) {
    json::Value j = full_spec().to_json();
    json::Value* node = &j;
    if (path[0] != '\0') node = node->as_object().find(path);
    ASSERT_NE(node, nullptr) << path;
    node->as_object()[key] = json::Value(1);
    EXPECT_THROW((void)ScenarioSpec::from_json(j), std::runtime_error)
        << path << "." << key;
  };
  corrupt("", "victim_scale");      // top level (belongs under trojan)
  corrupt("system", "epochCycles"); // typo'd casing
  corrupt("trojan", "scale");
  corrupt("epochs", "cooldown");
  corrupt("axes", "band");          // singular typo of "bands"
  corrupt("detector", "threshold");
  corrupt("response", "duration");  // belongs nowhere (sanction_epochs)

  // Nested one deeper: the adaptation block under trojan.
  json::Value j = full_spec().to_json();
  json::Value* trojan = j.as_object().find("trojan");
  ASSERT_NE(trojan, nullptr);
  json::Value* adaptation = trojan->as_object().find("adaptation");
  ASSERT_NE(adaptation, nullptr);
  adaptation->as_object()["aggressiveness"] = json::Value(1);
  EXPECT_THROW((void)ScenarioSpec::from_json(j), std::runtime_error);
}

TEST(ScenarioSpec, RejectsWrongSchemaVersion) {
  json::Value j = full_spec().to_json();
  j.as_object()["schema_version"] = json::Value(2);
  EXPECT_THROW((void)ScenarioSpec::from_json(j), std::runtime_error);
  j.as_object()["schema_version"] = json::Value(0);
  EXPECT_THROW((void)ScenarioSpec::from_json(j), std::runtime_error);
}

TEST(ScenarioSpec, EnumStringMapsAreCompleteAndInvertible) {
  for (int i = 0; i < kScenarioKindCount; ++i) {
    const auto kind = static_cast<ScenarioKind>(i);
    EXPECT_STRNE(to_string(kind), "?");
    EXPECT_EQ(scenario_kind_from_string(to_string(kind)), kind);
  }
  for (const auto p : {system::GmPlacement::kCenter,
                       system::GmPlacement::kCorner}) {
    EXPECT_EQ(gm_placement_from_string(to_string(p)), p);
  }
  for (const auto k : {power::DetectorKind::kSelfEwma,
                       power::DetectorKind::kCohortMedian}) {
    EXPECT_EQ(detector_kind_from_string(to_string(k)), k);
  }
  for (int i = 0; i < ClusterSpec::kAtCount; ++i) {
    const auto at = static_cast<ClusterSpec::At>(i);
    EXPECT_STRNE(to_string(at), "?");
    EXPECT_EQ(cluster_at_from_string(to_string(at)), at);
  }
  for (const auto b :
       {power::BudgeterKind::kUniform, power::BudgeterKind::kGreedy,
        power::BudgeterKind::kProportional,
        power::BudgeterKind::kDynamicProgramming,
        power::BudgeterKind::kMarket}) {
    EXPECT_EQ(budgeter_kind_from_string(power::to_string(b)), b);
  }
  for (const auto k :
       {power::ResponseKind::kQuarantine, power::ResponseKind::kThrottle,
        power::ResponseKind::kMigrate}) {
    EXPECT_EQ(power::response_kind_from_string(power::to_string(k)), k);
  }
  for (const auto t :
       {power::ResponseTrigger::kHigh, power::ResponseTrigger::kLow,
        power::ResponseTrigger::kBoth}) {
    EXPECT_EQ(power::response_trigger_from_string(power::to_string(t)), t);
  }
  EXPECT_THROW((void)scenario_kind_from_string("fig99"),
               std::invalid_argument);
  EXPECT_THROW((void)gm_placement_from_string("middle"),
               std::invalid_argument);
  EXPECT_THROW((void)detector_kind_from_string("oracle"),
               std::invalid_argument);
  EXPECT_THROW((void)budgeter_kind_from_string("fair"),
               std::invalid_argument);
  EXPECT_THROW((void)cluster_at_from_string("edge"), std::invalid_argument);
  EXPECT_THROW((void)power::response_kind_from_string("exile"),
               std::invalid_argument);
  EXPECT_THROW((void)power::response_trigger_from_string("medium"),
               std::invalid_argument);
}

TEST(ScenarioSpec, DetectorSpecBridgesDetectorConfigExactly) {
  DetectorSpec spec;
  spec.kind = power::DetectorKind::kCohortMedian;
  spec.low_ratio = 0.31;
  spec.high_ratio = 2.7;
  spec.history_alpha = 0.4;
  spec.warmup_epochs = 5;
  spec.confirm_epochs = 1;
  EXPECT_EQ(DetectorSpec::from_config(spec.to_config()), spec);
}

TEST(ScenarioSpec, QuickOverlayMergesObjectsAndReplacesArrays) {
  const ScenarioSpec spec = full_spec();
  const ScenarioSpec quick = spec.with_quick();
  EXPECT_EQ(quick.epochs.measure, 2);   // patched
  EXPECT_EQ(quick.epochs.warmup, 1);    // sibling untouched
  EXPECT_EQ(quick.axes.bands, spec.axes.bands);
  EXPECT_TRUE(quick.quick.is_null());   // overlay consumed

  // Arrays replace wholesale.
  ScenarioSpec arr = spec;
  arr.quick = json::parse(R"({"axes": {"bands": [{"low": 0.5,
                                                  "high": 2.0}]}})");
  const ScenarioSpec arr_quick = arr.with_quick();
  ASSERT_EQ(arr_quick.axes.bands.size(), 1U);
  EXPECT_DOUBLE_EQ(arr_quick.axes.bands[0].low, 0.5);

  // A typo'd overlay key is rejected, not ignored.
  ScenarioSpec bad = spec;
  bad.quick = json::parse(R"({"epochs": {"measur": 2}})");
  EXPECT_THROW((void)bad.with_quick(), std::runtime_error);

  // No overlay = unchanged.
  ScenarioSpec none = spec;
  none.quick = json::Value();
  EXPECT_EQ(none.with_quick(), none);
}

TEST(ScenarioSpec, ApplyOverrideGrammar) {
  json::Value j = full_spec().to_json();
  apply_override(j, "trojan.victim_scale", "0.5");
  apply_override(j, "epochs.measure", "7");
  apply_override(j, "workload.mix", "mix-3");  // bare string
  apply_override(j, "axes.bands", R"([{"low": 0.4, "high": 2.5}])");
  const ScenarioSpec spec = ScenarioSpec::from_json(j);
  EXPECT_DOUBLE_EQ(spec.trojan.victim_scale, 0.5);
  EXPECT_EQ(spec.epochs.measure, 7);
  EXPECT_EQ(spec.workload.mix, "mix-3");
  ASSERT_EQ(spec.axes.bands.size(), 1U);
  EXPECT_DOUBLE_EQ(spec.axes.bands[0].high, 2.5);

  // Paths crossing a scalar are an error, not a silent overwrite.
  EXPECT_THROW(apply_override(j, "name.sub", "1"), std::runtime_error);
  EXPECT_THROW(apply_override(j, "a..b", "1"), std::runtime_error);
  // Unknown keys introduced by --set surface at parse time.
  apply_override(j, "trojan.scale", "0.5");
  EXPECT_THROW((void)ScenarioSpec::from_json(j), std::runtime_error);
}

TEST(ScenarioSpec, ValidateCatchesBadSpecs) {
  ScenarioSpec spec = full_spec();
  spec.trojan.victim_scale = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = full_spec();
  spec.axes.bands.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = full_spec();
  spec.workload.mix = "mix-9";
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = full_spec();
  spec.axes.roc.placements = 99;  // exceeds axes.placements
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = full_spec();
  spec.system.width = 1;  // below the 2x2 mesh floor
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpec, BuilderValidatesAtBuildTime) {
  ScenarioBuilder b("bad", ScenarioKind::kDefenseSweep);
  EXPECT_THROW((void)b.build(), std::invalid_argument);  // no bands

  ScenarioBuilder typo("typo", ScenarioKind::kBudgeterAblation);
  typo.mix("mix-1");
  typo.axes().budgeters = {power::BudgeterKind::kGreedy};
  typo.quick(R"({"epoch": {"measure": 2}})");  // typo'd section
  EXPECT_THROW((void)typo.build(), std::runtime_error);
}

// Robustness property: every mutation of the closed-loop spec's JSON --
// unknown keys at each new nesting level, type confusion, out-of-range
// values, bad enum strings -- is rejected with a thrown std::exception.
// Parse-then-validate must never crash or silently accept.
TEST(ScenarioSpec, ResponseMutationCorpusIsCleanlyRejected) {
  const json::Value base =
      scenario_or_throw("defense-closed-loop").to_json();

  // Mutators navigate with dotted paths; a missing intermediate object is
  // created so sparse-emitted sections can still be corrupted.
  const auto mutate = [&](const char* path, json::Value v) {
    json::Value j = base;
    json::Value* node = &j;
    std::string key;
    for (const char* c = path;; ++c) {
      if (*c == '.' || *c == '\0') {
        if (*c == '\0') {
          node->as_object()[key] = std::move(v);
          return j;
        }
        json::Value* next = node->as_object().find(key);
        if (next == nullptr) {
          node->as_object()[key] = json::Value(json::Object{});
          next = node->as_object().find(key);
        }
        node = next;
        key.clear();
      } else {
        key += *c;
      }
    }
  };
  const auto rejected = [](const json::Value& j, const char* what) {
    try {
      const ScenarioSpec spec = ScenarioSpec::from_json(j);
      spec.validate();
      ADD_FAILURE() << "mutation accepted: " << what;
    } catch (const std::exception&) {
      // Clean rejection -- the property under test.
    }
  };

  // The un-mutated base must survive both steps (the corpus is live).
  EXPECT_NO_THROW(ScenarioSpec::from_json(base).validate());

  // Unknown keys at every new nesting level.
  rejected(mutate("response.duration", json::Value(3)), "response unknown");
  rejected(mutate("trojan.adaptation.aggressiveness", json::Value(2)),
           "adaptation unknown");
  rejected(mutate("axes.response", json::Value(json::Array{})),
           "axes singular typo");

  // Type confusion.
  rejected(mutate("response.kind", json::Value(5)), "kind as int");
  rejected(mutate("response.trigger", json::Value(json::Array{})),
           "trigger as array");
  rejected(mutate("response.sanction_epochs", json::Value("three")),
           "sanction_epochs as string");
  rejected(mutate("trojan.adaptation.alpha", json::Value("high")),
           "alpha as string");
  rejected(mutate("trojan.adaptation.enabled", json::Value(1)),
           "enabled as int");
  rejected(mutate("axes.responses", json::Value(3)), "responses as int");
  {
    json::Array mixed;
    mixed.push_back(json::Value("quarantine"));
    mixed.push_back(json::Value(7));
    rejected(mutate("axes.responses", json::Value(std::move(mixed))),
             "responses mixed-type array");
  }

  // Bad enum strings.
  rejected(mutate("response.kind", json::Value("exile")), "bad kind");
  rejected(mutate("response.trigger", json::Value("medium")), "bad trigger");

  // Out-of-range values (parse fine, validate must throw).
  rejected(mutate("response.sanction_epochs", json::Value(0)),
           "sanction_epochs 0");
  rejected(mutate("response.sanction_epochs", json::Value(-3)),
           "sanction_epochs negative");
  rejected(mutate("response.recovery_threshold", json::Value(0.0)),
           "recovery_threshold 0");
  rejected(mutate("response.recovery_threshold", json::Value(3.5)),
           "recovery_threshold 3.5");
  rejected(mutate("trojan.adaptation.alpha", json::Value(0.0)), "alpha 0");
  rejected(mutate("trojan.adaptation.alpha", json::Value(1.5)), "alpha 1.5");
  rejected(mutate("trojan.adaptation.backoff_ratio", json::Value(1.0)),
           "backoff_ratio 1");
  rejected(mutate("trojan.adaptation.max_on_epochs", json::Value(0)),
           "max_on_epochs 0");
  rejected(mutate("trojan.adaptation.hold_off_epochs", json::Value(0)),
           "hold_off_epochs 0");
  // Rival duty controllers: grant feedback AND a blind toggle.
  rejected(mutate("trojan.adaptation.enabled", json::Value(true)),
           "adaptation enabled under a toggle period");
  // An empty response axis on a closed-loop scenario has nothing to run.
  rejected(mutate("axes.responses", json::Value(json::Array{})),
           "responses empty");
}

TEST(ScenarioSpec, MeshForSizeCoversPaperPresetsOnly) {
  EXPECT_EQ(mesh_for_size(64), (std::pair<int, int>{8, 8}));
  EXPECT_EQ(mesh_for_size(128), (std::pair<int, int>{16, 8}));
  EXPECT_EQ(mesh_for_size(256), (std::pair<int, int>{16, 16}));
  EXPECT_EQ(mesh_for_size(512), (std::pair<int, int>{32, 16}));
  EXPECT_THROW((void)mesh_for_size(100), std::invalid_argument);
}

}  // namespace
}  // namespace htpb::scenario
