// The registry contract: the expected scenario set, spec validity, exact
// JSON round trips for every registered spec (an acceptance criterion of
// the scenario API), and valid quick overlays.
#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace htpb::scenario {
namespace {

TEST(ScenarioRegistry, RegistersEveryPaperExperiment) {
  std::vector<std::string> names;
  for (const ScenarioSpec& spec : registry()) names.push_back(spec.name);
  const std::vector<std::string> expected = {
      "fig3",           "fig4",
      "fig5",           "fig6",
      "table1",         "table2",
      "secIIID-area-power", "secVC-placement",
      "defense-roc",    "defense-evaluation",
      "attack-comparison", "budgeter-ablation",
      "defense-closed-loop"};
  EXPECT_EQ(names, expected);
}

TEST(ScenarioRegistry, NamesAreUnique) {
  std::set<std::string> seen;
  for (const ScenarioSpec& spec : registry()) {
    EXPECT_TRUE(seen.insert(spec.name).second) << spec.name;
  }
}

TEST(ScenarioRegistry, EverySpecValidates) {
  for (const ScenarioSpec& spec : registry()) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
    EXPECT_FALSE(spec.title.empty()) << spec.name;
    EXPECT_FALSE(spec.paper_ref.empty()) << spec.name;
  }
}

TEST(ScenarioRegistry, EverySpecRoundTripsThroughJsonExactly) {
  for (const ScenarioSpec& spec : registry()) {
    const json::Value j = spec.to_json();
    const ScenarioSpec back = ScenarioSpec::from_json(j);
    EXPECT_EQ(back, spec) << spec.name;
    // And through the text form too (what --scenario file.json reads).
    const ScenarioSpec from_text =
        ScenarioSpec::from_json(json::parse(json::dump(j, 2)));
    EXPECT_EQ(from_text, spec) << spec.name;
  }
}

TEST(ScenarioRegistry, QuickOverlaysApplyAndValidate) {
  for (const ScenarioSpec& spec : registry()) {
    ScenarioSpec quick;
    ASSERT_NO_THROW(quick = spec.with_quick()) << spec.name;
    EXPECT_NO_THROW(quick.validate()) << spec.name;
    if (!spec.quick.is_null()) {
      EXPECT_FALSE(quick == spec) << spec.name
                                  << ": quick overlay changed nothing";
    }
  }
}

TEST(ScenarioRegistry, LookupByName) {
  ASSERT_NE(find_scenario("fig5"), nullptr);
  EXPECT_EQ(find_scenario("fig5")->kind, ScenarioKind::kAttackEffect);
  EXPECT_EQ(find_scenario("nope"), nullptr);
  EXPECT_NO_THROW((void)scenario_or_throw("defense-roc"));
  EXPECT_THROW((void)scenario_or_throw("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace htpb::scenario
