// The fleet's correctness keystone: for every shardable kind,
// expand_cells + run_scenario per cell + merge_cell_results must equal a
// single run_scenario of the full spec BIT FOR BIT (minus "timing").
// Quick-sized custom specs keep the sweeps honest -- at least two slices
// per split axis -- without paper-scale runtimes.
#include "scenario/cells.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

using htpb::json::Value;
using htpb::scenario::AdaptationSpec;
using htpb::scenario::CellPlan;
using htpb::scenario::ClusterSpec;
using htpb::scenario::DetectorSpec;
using htpb::scenario::ResponseSpec;
using htpb::scenario::RunOptions;
using htpb::scenario::ScenarioBuilder;
using htpb::scenario::ScenarioKind;
using htpb::scenario::ScenarioSpec;

namespace power = htpb::power;

/// All tests pin --threads 2 on both sides; the determinism contract
/// makes that a no-op for the payload, but the envelope's reported
/// "threads" must match for whole-tree equality.
RunOptions pinned_threads() {
  RunOptions opts;
  opts.threads = 2;
  return opts;
}

Value without_timing(const Value& v) {
  htpb::json::Object out;
  for (const auto& [key, value] : v.as_object()) {
    if (key != "timing") out[key] = value;
  }
  return Value(std::move(out));
}

/// The claim under test: run whole, then run sliced + merged, compare.
void expect_merge_bit_identical(const ScenarioSpec& spec,
                                std::size_t expected_cells) {
  const RunOptions opts = pinned_threads();
  const ScenarioSpec resolved = htpb::scenario::resolve(spec, opts);

  const Value whole = htpb::scenario::run_scenario(spec, opts);

  const std::vector<CellPlan> plan = htpb::scenario::expand_cells(resolved);
  ASSERT_EQ(plan.size(), expected_cells);
  std::vector<Value> results;
  results.reserve(plan.size());
  for (const CellPlan& cell : plan) {
    // Workers run the cell spec verbatim -- no quick, no seed override.
    results.push_back(htpb::scenario::run_scenario(cell.spec, RunOptions{}));
  }
  const Value merged = htpb::scenario::merge_cell_results(
      resolved, /*quick=*/false, /*threads=*/2, results);

  EXPECT_EQ(without_timing(whole), merged);
}

TEST(CellsTest, CellIdsAreUniqueAndOrderStable) {
  ScenarioBuilder b("cells-ablation", ScenarioKind::kBudgeterAblation);
  b.size(64).mix("mix-1").warmup_epochs(1).measure_epochs(2);
  b.axes().budgeters = {power::BudgeterKind::kUniform,
                        power::BudgeterKind::kGreedy};
  const ScenarioSpec spec = b.build();
  const auto plan = htpb::scenario::expand_cells(spec);
  ASSERT_EQ(plan.size(), 2U);
  EXPECT_EQ(plan[0].id, "c000-uniform");
  EXPECT_EQ(plan[1].id, "c001-greedy");
  // Cell specs are self-contained: they validate and carry no quick
  // overlay for a worker to re-apply.
  for (const auto& cell : plan) {
    EXPECT_TRUE(cell.spec.quick.is_null()) << cell.id;
    EXPECT_NO_THROW(cell.spec.validate()) << cell.id;
  }
}

TEST(CellsTest, BudgeterAblationMergesBitIdentical) {
  ScenarioBuilder b("cells-ablation", ScenarioKind::kBudgeterAblation);
  b.size(64).mix("mix-1").warmup_epochs(1).measure_epochs(2);
  b.axes().budgeters = {power::BudgeterKind::kUniform,
                        power::BudgeterKind::kGreedy,
                        power::BudgeterKind::kProportional};
  expect_merge_bit_identical(b.build(), 3);
}

TEST(CellsTest, InfectionVsHtCountMergesBitIdentical) {
  ScenarioBuilder b("cells-fig3", ScenarioKind::kInfectionVsHtCount);
  b.size(64).warmup_epochs(0).measure_epochs(1);
  b.axes().arms = {{64, {2, 4}}, {128, {2}}};
  b.axes().gm_placements = {htpb::system::GmPlacement::kCenter,
                            htpb::system::GmPlacement::kCorner};
  b.axes().seeds = 2;
  expect_merge_bit_identical(b.build(), 3);
}

TEST(CellsTest, InfectionVsDistributionMergesBitIdentical) {
  ScenarioBuilder b("cells-fig4", ScenarioKind::kInfectionVsDistribution);
  b.size(64).warmup_epochs(0).measure_epochs(1);
  b.axes().sizes = {64, 128};
  b.axes().ht_divisors = {16, 8};
  b.axes().seeds = 2;
  expect_merge_bit_identical(b.build(), 4);
}

TEST(CellsTest, AttackEffectMergesBitIdentical) {
  ScenarioBuilder b("cells-fig5", ScenarioKind::kAttackEffect);
  b.size(64).warmup_epochs(1).measure_epochs(2);
  b.workload().mixes = {"mix-1", "mix-2"};
  b.axes().infection_targets = {0.2, 0.6};
  b.axes().placement_max_hts = 16;
  expect_merge_bit_identical(b.build(), 2);
}

TEST(CellsTest, PlacementStudySeedRebasingMergesBitIdentical) {
  // The one split that REBASES the cell seed (stream = seed + mix index):
  // a non-default seed catches any off-by-one in the rebase.
  ScenarioBuilder b("cells-secvc", ScenarioKind::kPlacementStudy);
  b.size(64).warmup_epochs(1).measure_epochs(2).seed(7);
  b.workload().mixes = {"mix-1", "mix-3"};
  b.axes().nodes = 64;
  b.axes().max_hts = 4;
  b.axes().train_samples = 10;  // must cover the effect model's coefficients
  b.axes().random_trials = 2;
  b.axes().candidates_per_m = 6;
  b.axes().shortlist = 2;
  expect_merge_bit_identical(b.build(), 2);
}

TEST(CellsTest, DefenseClosedLoopMergesBitIdentical) {
  ScenarioBuilder b("cells-loop", ScenarioKind::kDefenseClosedLoop);
  b.size(64)
      .mix("mix-1")
      .victim_scale(0.10)
      .attacker_boost(8.0)
      .trojan_active(false)
      .toggle_period(2)
      .warmup_epochs(1)
      .measure_epochs(3)
      .detector(DetectorSpec{})
      .response(ResponseSpec{})
      .adaptation(AdaptationSpec{});
  b.axes().placements = {{ClusterSpec::At::kGm, 8},
                         {ClusterSpec::At::kQuarter, 8}};
  b.axes().responses = {power::ResponseKind::kQuarantine,
                        power::ResponseKind::kThrottle};
  // Cell 0 carries placement 0, so the merged duty_comparison (defined
  // on the first placement's response-free arms) comes from it verbatim.
  expect_merge_bit_identical(b.build(), 2);
}

TEST(CellsTest, SingleCellKindsPassThrough) {
  ScenarioBuilder b("cells-table1", ScenarioKind::kConfigReport);
  b.size(64);
  expect_merge_bit_identical(b.build(), 1);
}

TEST(CellsTest, FailedCellsLeaveHolesNotInvalidTrees) {
  ScenarioBuilder b("cells-ablation", ScenarioKind::kBudgeterAblation);
  b.size(64).mix("mix-1").warmup_epochs(1).measure_epochs(2);
  b.axes().budgeters = {power::BudgeterKind::kUniform,
                        power::BudgeterKind::kGreedy,
                        power::BudgeterKind::kProportional};
  const ScenarioSpec spec = b.build();
  const auto plan = htpb::scenario::expand_cells(spec);

  std::vector<Value> results(plan.size());  // all null = all failed
  results[1] = htpb::scenario::run_scenario(plan[1].spec, RunOptions{});

  const Value merged =
      htpb::scenario::merge_cell_results(spec, false, 2, results);
  const htpb::json::Object& root = merged.as_object();
  ASSERT_NE(root.find("rows"), nullptr);
  const htpb::json::Array& rows = root.find("rows")->as_array();
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0].as_object().find("budgeter")->as_string(), "greedy");
}

TEST(CellsTest, MergeRejectsCellCountMismatch) {
  ScenarioBuilder b("cells-ablation", ScenarioKind::kBudgeterAblation);
  b.size(64).mix("mix-1");
  b.axes().budgeters = {power::BudgeterKind::kUniform,
                        power::BudgeterKind::kGreedy};
  const ScenarioSpec spec = b.build();
  const std::vector<Value> wrong(3);
  EXPECT_THROW(
      (void)htpb::scenario::merge_cell_results(spec, false, 2, wrong),
      std::runtime_error);
}

}  // namespace
