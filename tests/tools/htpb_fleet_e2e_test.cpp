// End-to-end fleet contract, shelling the REAL binaries (paths baked in
// at build time): a deterministically faulted campaign -- crash, hang,
// garbage artifact -- must retry, quarantine and still merge a tree
// bit-identical (minus timing/fleet) to a fault-free single-process
// `htpb_run` of the same spec; a killed run must resume from its run
// directory without re-simulating completed cells; a run dir must refuse
// a different spec.
//
// The fault schedule is a pure function of (seed, cell, attempt). With
// crash:0.3,hang:0.1,garbage:0.3,seed:2 over budgeter-ablation --quick's
// five cells: c000/c003/c004 pass clean, c002 crashes once, and c001
// walks the whole gauntlet (garbage, crash, hang, then success) --
// 9 worker launches, every fault kind exercised, zero failures.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"

#ifndef HTPB_RUN_BINARY
#error "HTPB_RUN_BINARY must be defined"
#endif
#ifndef HTPB_FLEET_BINARY
#error "HTPB_FLEET_BINARY must be defined"
#endif
#ifndef HTPB_DIFF_BINARY
#error "HTPB_DIFF_BINARY must be defined"
#endif

namespace {

namespace fs = std::filesystem;

constexpr const char* kFaultEnv =
    "HTPB_FLEET_FAULT='crash:0.3,hang:0.1,garbage:0.3,seed:2' ";
constexpr const char* kScenarioArgs =
    "--scenario budgeter-ablation --quick --threads 2 ";

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class TempDir {
 public:
  explicit TempDir(const char* name)
      : path_(fs::current_path() / (std::string("htpb_fleet_e2e_") + name)) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }

 private:
  fs::path path_;
};

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

/// `prefix` rides in front of the command line -- env assignments or a
/// `timeout -s KILL` wrapper.
RunResult run_cmd(const TempDir& dir, const std::string& prefix,
                  const std::string& binary, const std::string& args) {
  const fs::path out = dir.path() / "stdout.txt";
  const fs::path err = dir.path() / "stderr.txt";
  const std::string cmd = prefix + "\"" + binary + "\" " + args + " > \"" +
                          out.string() + "\" 2> \"" + err.string() + "\"";
  const int status = std::system(cmd.c_str());
  RunResult r;
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  r.out = slurp(out);
  r.err = slurp(err);
  return r;
}

RunResult run_fleet(const TempDir& dir, const std::string& prefix,
                    const std::string& extra_args) {
  // --htpb-run pins the worker explicitly; the test must not depend on
  // binary discovery relative to the fleet executable.
  return run_cmd(dir, prefix, HTPB_FLEET_BINARY,
                 std::string(kScenarioArgs) + "--htpb-run \"" +
                     HTPB_RUN_BINARY + "\" " + extra_args);
}

/// Single-process reference tree, shared across tests (immutable).
const std::string& single_run_json() {
  static const std::string path = [] {
    static TempDir dir("ref");  // lives for the whole test binary
    const std::string p = (dir.path() / "single.json").string();
    const RunResult r = run_cmd(dir, "", HTPB_RUN_BINARY,
                                std::string(kScenarioArgs) + "--json \"" +
                                    p + "\"");
    if (r.exit_code != 0) {
      ADD_FAILURE() << "reference htpb_run failed: " << r.err;
    }
    return p;
  }();
  return path;
}

int diff_exit(const TempDir& dir, const std::string& a,
              const std::string& b) {
  return run_cmd(dir, "", HTPB_DIFF_BINARY, "\"" + a + "\" \"" + b + "\"")
      .exit_code;
}

const htpb::json::Value* fleet_section(const htpb::json::Value& merged) {
  return merged.as_object().find("fleet");
}

TEST(HtpbFleetE2e, FaultFreeFleetMatchesSingleRunBitForBit) {
  const TempDir dir("clean");
  const std::string rd = (dir.path() / "rd").string();
  const RunResult r = run_fleet(dir, "", "--run-dir \"" + rd + "\"");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(diff_exit(dir, single_run_json(), rd + "/merged.json"), 0);

  const htpb::json::Value merged =
      htpb::json::parse(slurp(rd + "/merged.json"));
  ASSERT_NE(fleet_section(merged), nullptr);
  const htpb::json::Object& fleet = fleet_section(merged)->as_object();
  EXPECT_EQ(fleet.find("cells")->as_int(), 5);
  EXPECT_EQ(fleet.find("done")->as_int(), 5);
  EXPECT_EQ(fleet.find("failed")->as_int(), 0);
  EXPECT_EQ(fleet.find("attempts")->as_int(), 5);
}

TEST(HtpbFleetE2e, FaultedFleetRetriesQuarantinesAndStillMatches) {
  const TempDir dir("faulted");
  const std::string rd = (dir.path() / "rd").string();
  // A quick ablation cell runs in well under a second; the one injected
  // hang costs timeout + grace of wall clock, so keep both short.
  const RunResult r = run_fleet(
      dir, kFaultEnv,
      "--run-dir \"" + rd +
          "\" --max-attempts 4 --timeout 5 --term-grace 0.5 --backoff 0.01");
  ASSERT_EQ(r.exit_code, 0) << r.err;

  // The injected schedule: 9 launches, all five cells recover.
  const htpb::json::Value merged =
      htpb::json::parse(slurp(rd + "/merged.json"));
  ASSERT_NE(fleet_section(merged), nullptr);
  const htpb::json::Object& fleet = fleet_section(merged)->as_object();
  EXPECT_EQ(fleet.find("done")->as_int(), 5);
  EXPECT_EQ(fleet.find("failed")->as_int(), 0);
  EXPECT_EQ(fleet.find("attempts")->as_int(), 9);
  EXPECT_EQ(fleet.find("failures")->as_array().size(), 0U);

  // c001's attempt-1 garbage artifact is preserved in quarantine.
  EXPECT_TRUE(
      fs::exists(fs::path(rd) / "quarantine" / "c001-greedy.attempt1.json"));
  // The hang and crash attempts left their marks in the logs.
  EXPECT_NE(r.err.find("timeout"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("crash"), std::string::npos) << r.err;

  // The headline: a campaign that crashed, hung and corrupted its way
  // through still merges bit-identical to the clean single process.
  EXPECT_EQ(diff_exit(dir, single_run_json(), rd + "/merged.json"), 0);
}

TEST(HtpbFleetE2e, ResumeSkipsDoneCellsWithoutResimulating) {
  const TempDir dir("resume");
  const std::string rd = (dir.path() / "rd").string();
  ASSERT_EQ(run_fleet(dir, "", "--run-dir \"" + rd + "\"").exit_code, 0);

  // Forge a half-finished campaign: cells 1..4 lose their statuses (as
  // if the scheduler died before writing them) and c000 keeps its done
  // status but gets a sentinel result. If resume re-simulated c000 the
  // sentinel would be overwritten; if it trusts the status, it survives
  // into the merged tree.
  for (const char* id :
       {"c001-greedy", "c002-proportional", "c003-dp", "c004-market"}) {
    fs::remove(fs::path(rd) / "status" / (std::string(id) + ".json"));
    fs::remove(fs::path(rd) / "results" / (std::string(id) + ".json"));
  }
  {
    const fs::path c000 = fs::path(rd) / "results" / "c000-uniform.json";
    htpb::json::Value result = htpb::json::parse(slurp(c000));
    result.as_object()["rows"].as_array()[0].as_object()["q"] =
        htpb::json::Value(123456.5);
    std::ofstream(c000) << htpb::json::dump(result, 2) << "\n";
  }

  const RunResult r = run_fleet(dir, "", "--run-dir \"" + rd + "\"");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  const htpb::json::Value merged =
      htpb::json::parse(slurp(rd + "/merged.json"));
  ASSERT_NE(fleet_section(merged), nullptr);
  const htpb::json::Object& fleet = fleet_section(merged)->as_object();
  EXPECT_EQ(fleet.find("resumed")->as_int(), 1);
  EXPECT_EQ(fleet.find("attempts")->as_int(), 4);
  EXPECT_EQ(merged.as_object()
                .find("rows")
                ->as_array()[0]
                .as_object()
                .find("q")
                ->as_double(),
            123456.5);
}

TEST(HtpbFleetE2e, KilledMidRunCompletesOnReinvocation) {
  const TempDir dir("killed");
  const std::string rd = (dir.path() / "rd").string();
  // SIGKILL the whole fleet mid-campaign: no destructors, no cleanup --
  // whatever statuses were durably written are all the resume gets.
  (void)run_fleet(dir, "timeout -s KILL 0.1 ", "--run-dir \"" + rd + "\"");

  const RunResult r = run_fleet(dir, "", "--run-dir \"" + rd + "\"");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_EQ(diff_exit(dir, single_run_json(), rd + "/merged.json"), 0);
}

TEST(HtpbFleetE2e, RunDirHoldingADifferentSpecIsRefused) {
  const TempDir dir("refused");
  const std::string rd = (dir.path() / "rd").string();
  ASSERT_EQ(run_fleet(dir, "", "--run-dir \"" + rd + "\"").exit_code, 0);

  const RunResult r = run_fleet(
      dir, "", "--run-dir \"" + rd + "\" --set axes.cluster_hts=4");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("different spec"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("fresh directory"), std::string::npos) << r.err;
}

TEST(HtpbFleetE2e, ListCellsPrintsThePlan) {
  const TempDir dir("list");
  const RunResult r = run_fleet(dir, "", "--list-cells");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("c000-uniform\n"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("c004-market\n"), std::string::npos) << r.out;
  EXPECT_NE(r.err.find("5 cells"), std::string::npos) << r.err;
}

TEST(HtpbFleetE2e, MalformedFaultSpecFailsLoudly) {
  const TempDir dir("badfault");
  const RunResult r =
      run_cmd(dir, "HTPB_FLEET_FAULT='garbage' ", HTPB_RUN_BINARY,
              "--scenario budgeter-ablation --quick");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("HTPB_FLEET_FAULT"), std::string::npos) << r.err;
}

TEST(HtpbFleetE2e, DiffReportsTolerancesAndIgnores) {
  const TempDir dir("diff");
  const std::string a = (dir.path() / "a.json").string();
  const std::string b = (dir.path() / "b.json").string();
  std::ofstream(a) << "{\"q\": 1.0, \"rows\": [1, 2], \"timing\": 9}\n";
  std::ofstream(b) << "{\"q\": 1.01, \"rows\": [1, 2], \"timing\": 1}\n";

  // timing is ignored by default; q differs -> exit 1, path named.
  const RunResult strict =
      run_cmd(dir, "", HTPB_DIFF_BINARY, "\"" + a + "\" \"" + b + "\"");
  EXPECT_EQ(strict.exit_code, 1);
  EXPECT_NE(strict.out.find("q:"), std::string::npos) << strict.out;

  // A per-metric tolerance admits the drift.
  EXPECT_EQ(run_cmd(dir, "", HTPB_DIFF_BINARY,
                    "\"" + a + "\" \"" + b + "\" --tol q=0.02")
                .exit_code,
            0);
  // So does ignoring the member outright.
  EXPECT_EQ(run_cmd(dir, "", HTPB_DIFF_BINARY,
                    "\"" + a + "\" \"" + b + "\" --ignore q")
                .exit_code,
            0);
  // Unreadable input is a usage-class failure, distinct from "differs".
  EXPECT_EQ(run_cmd(dir, "", HTPB_DIFF_BINARY,
                    "\"" + a + "\" \"" + (dir.path() / "nope.json").string() +
                        "\"")
                .exit_code,
            2);
}

}  // namespace
