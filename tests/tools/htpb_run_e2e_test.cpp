// End-to-end driver contract: shell the REAL htpb_run binary (path baked
// in as HTPB_RUN_BINARY) through a scratch directory and assert on its
// observable surface -- exit codes, stderr diagnostics, and the JSON it
// writes. In-process runner tests can't catch argv plumbing, exit-code
// mapping, or file-emission regressions; this one does.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"

#ifndef HTPB_RUN_BINARY
#error "HTPB_RUN_BINARY must be defined to the htpb_run executable path"
#endif

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Scratch directory under the ctest working dir, wiped on entry and exit.
class TempDir {
 public:
  TempDir() : path_(fs::current_path() / "htpb_run_e2e_tmp") {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }

 private:
  fs::path path_;
};

struct RunResult {
  int exit_code = -1;
  std::string out;
  std::string err;
};

RunResult run_tool(const TempDir& dir, const std::string& args) {
  const fs::path out = dir.path() / "stdout.txt";
  const fs::path err = dir.path() / "stderr.txt";
  const std::string cmd = std::string("\"") + HTPB_RUN_BINARY + "\" " +
                          args + " > \"" + out.string() + "\" 2> \"" +
                          err.string() + "\"";
  const int status = std::system(cmd.c_str());
  RunResult r;
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  r.out = slurp(out);
  r.err = slurp(err);
  return r;
}

TEST(HtpbRunE2e, ClosedLoopQuickRunEmitsTradeoffCurves) {
  const TempDir dir;
  const fs::path json_out = dir.path() / "closed_loop.json";
  const RunResult r = run_tool(
      dir, "--scenario defense-closed-loop --quick --threads 2 --json \"" +
               json_out.string() + "\"");
  ASSERT_EQ(r.exit_code, 0) << r.err;
  ASSERT_TRUE(fs::exists(json_out)) << r.err;

  const htpb::json::Value result = htpb::json::parse(slurp(json_out));
  const htpb::json::Object& root = result.as_object();
  ASSERT_NE(root.find("scenario"), nullptr);
  EXPECT_EQ(root.find("scenario")->as_string(), "defense-closed-loop");
  EXPECT_EQ(root.find("quick")->as_bool(), true);

  // 1 quick placement x {static, adaptive} x {none + 3 policies}, every
  // policy name present on both Trojan sides.
  ASSERT_NE(root.find("arms"), nullptr);
  const htpb::json::Array& arms = root.find("arms")->as_array();
  ASSERT_EQ(arms.size(), 8U);
  int seen[2][4] = {};
  for (const auto& v : arms) {
    const htpb::json::Object& row = v.as_object();
    const int t = row.find("trojan")->as_string() == "adaptive" ? 1 : 0;
    const std::string& resp = row.find("response")->as_string();
    const int p = resp == "none"         ? 0
                  : resp == "quarantine" ? 1
                  : resp == "throttle"   ? 2
                                         : 3;
    ++seen[t][p];
  }
  for (int t = 0; t < 2; ++t) {
    for (int p = 0; p < 4; ++p) EXPECT_EQ(seen[t][p], 1) << t << "," << p;
  }

  // The acceptance headline survives the full CLI path: the adaptive
  // Trojan's detection rate is below the equal-duty static Trojan's.
  const htpb::json::Object& cmp =
      root.find("duty_comparison")->as_object();
  EXPECT_LT(cmp.find("adaptive")->as_object().find("detection_rate")
                ->as_double(),
            cmp.find("static")->as_object().find("detection_rate")
                ->as_double());
}

TEST(HtpbRunE2e, MissingSpecFileFailsWithThePathNamed) {
  const TempDir dir;
  const fs::path missing = dir.path() / "no_such_spec.json";
  const RunResult r =
      run_tool(dir, "--scenario \"" + missing.string() + "\"");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("no_such_spec.json"), std::string::npos) << r.err;
  // ... and the OS reason, not just the name.
  EXPECT_NE(r.err.find("No such file"), std::string::npos) << r.err;
}

TEST(HtpbRunE2e, MalformedSpecFileReportsPathAndParsePosition) {
  const TempDir dir;
  const fs::path torn = dir.path() / "torn_spec.json";
  std::ofstream(torn) << "{\"name\": \"x\", \"kind\": ";
  const RunResult r = run_tool(dir, "--scenario \"" + torn.string() + "\"");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("torn_spec.json"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("at offset"), std::string::npos) << r.err;
}

TEST(HtpbRunE2e, BadSetOverridesFailLoudly) {
  const TempDir dir;
  // A typo'd key parses as JSON surgery but is rejected by the strict
  // spec reader, naming the bad key.
  const RunResult typo = run_tool(
      dir,
      "--scenario defense-closed-loop --quick --set "
      "response.sanction_epoch=2");
  EXPECT_EQ(typo.exit_code, 1);
  EXPECT_NE(typo.err.find("sanction_epoch"), std::string::npos) << typo.err;

  // Grammar violation (no '='): usage error, distinct exit code.
  const RunResult noeq =
      run_tool(dir, "--scenario defense-closed-loop --set epochs.measure");
  EXPECT_EQ(noeq.exit_code, 2);
  EXPECT_NE(noeq.err.find("key=value"), std::string::npos) << noeq.err;

  // An out-of-range value is caught by validate(), not simulated.
  const RunResult range = run_tool(
      dir,
      "--scenario defense-closed-loop --quick --set "
      "response.sanction_epochs=0");
  EXPECT_EQ(range.exit_code, 1);
  EXPECT_NE(range.err.find("sanction_epochs"), std::string::npos)
      << range.err;
}

TEST(HtpbRunE2e, UnknownArgumentPrintsUsage) {
  const TempDir dir;
  const RunResult r = run_tool(dir, "--scenarios defense-closed-loop");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("usage:"), std::string::npos) << r.err;
}

}  // namespace
