// L1 + L2 directory protocol over a real 2x2 mesh.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/coherence.hpp"
#include "mem/l1_cache.hpp"
#include "mem/l2_bank.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace htpb::mem {
namespace {

struct CoherenceFixture {
  sim::Engine engine;
  MeshGeometry geom{2, 2};
  noc::NocConfig noc_cfg;
  noc::MeshNetwork net{engine, geom, noc_cfg};
  L1Config l1_cfg;
  L2Config l2_cfg;
  std::vector<std::unique_ptr<L1Cache>> l1s;
  std::vector<std::unique_ptr<L2Bank>> l2s;

  CoherenceFixture() {
    l2_cfg.mem_latency = 50;  // shorter memory for faster tests
    for (NodeId n = 0; n < 4; ++n) {
      l1s.push_back(std::make_unique<L1Cache>(n, l1_cfg, &net, nullptr));
      l2s.push_back(std::make_unique<L2Bank>(n, l2_cfg, &net, &engine));
      net.set_handler(n, [this, n](const noc::Packet& pkt) {
        switch (pkt.type) {
          case noc::PacketType::kMemReply:
          case noc::PacketType::kCohInvalidate:
            l1s[n]->on_packet(pkt);
            break;
          case noc::PacketType::kMemReadReq:
          case noc::PacketType::kMemWriteReq:
          case noc::PacketType::kWriteback:
          case noc::PacketType::kCohAck:
            l2s[n]->on_packet(pkt);
            break;
          default:
            break;
        }
      });
    }
  }

  void settle(Cycle cycles = 600) { engine.run_cycles(cycles); }
};

TEST(Coherence, ReadMissFillsShared) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x1001;  // home = 0x1001 % 4 = 1
  f.l1s[0]->access(addr, /*write=*/false);
  EXPECT_EQ(f.l1s[0]->outstanding_misses(), 1U);
  f.settle();
  EXPECT_EQ(f.l1s[0]->outstanding_misses(), 0U);
  EXPECT_EQ(f.l1s[0]->state_of(addr), MesiState::kShared);
  EXPECT_EQ(f.l2s[1]->stats().gets, 1U);
  EXPECT_EQ(f.l2s[1]->stats().memory_fetches, 1U);
  EXPECT_EQ(f.l2s[1]->stats().replies_sent, 1U);
  EXPECT_EQ(f.l2s[1]->busy_lines(), 0U);
}

TEST(Coherence, SecondReadHitsL2) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x2002;
  f.l1s[0]->access(addr, false);
  f.settle();
  f.l1s[1]->access(addr, false);
  f.settle();
  EXPECT_EQ(f.l2s[addr % 4]->stats().memory_fetches, 1U);  // only one fill
  EXPECT_EQ(f.l1s[1]->state_of(addr), MesiState::kShared);
}

TEST(Coherence, WriteMissGrantsModified) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x3003;
  f.l1s[2]->access(addr, /*write=*/true);
  f.settle();
  EXPECT_EQ(f.l1s[2]->state_of(addr), MesiState::kModified);
}

TEST(Coherence, WriteInvalidatesSharers) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x4000;  // home = 0
  f.l1s[1]->access(addr, false);
  f.l1s[2]->access(addr, false);
  f.settle();
  ASSERT_EQ(f.l1s[1]->state_of(addr), MesiState::kShared);
  ASSERT_EQ(f.l1s[2]->state_of(addr), MesiState::kShared);
  // Node 3 writes: nodes 1 and 2 must lose their copies.
  f.l1s[3]->access(addr, true);
  f.settle();
  EXPECT_EQ(f.l1s[3]->state_of(addr), MesiState::kModified);
  EXPECT_EQ(f.l1s[1]->state_of(addr), MesiState::kInvalid);
  EXPECT_EQ(f.l1s[2]->state_of(addr), MesiState::kInvalid);
  EXPECT_GE(f.l1s[1]->stats().invalidations, 1U);
  EXPECT_EQ(f.l2s[0]->busy_lines(), 0U);
}

TEST(Coherence, ReadRecallsDirtyLine) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x5000;
  f.l1s[1]->access(addr, true);  // node 1 owns it dirty
  f.settle();
  ASSERT_EQ(f.l1s[1]->state_of(addr), MesiState::kModified);
  f.l1s[2]->access(addr, false);  // node 2 reads: recall needed
  f.settle();
  EXPECT_EQ(f.l1s[2]->state_of(addr), MesiState::kShared);
  EXPECT_EQ(f.l1s[1]->state_of(addr), MesiState::kInvalid);
  EXPECT_GE(f.l2s[0]->stats().recalls, 1U);
  // The dirty owner answered the recall with a data writeback.
  EXPECT_GE(f.l1s[1]->stats().writebacks, 1U);
}

TEST(Coherence, UpgradeFromSharedToModified) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x6000;
  f.l1s[1]->access(addr, false);
  f.settle();
  ASSERT_EQ(f.l1s[1]->state_of(addr), MesiState::kShared);
  f.l1s[1]->access(addr, true);  // upgrade
  EXPECT_EQ(f.l1s[1]->stats().upgrades, 1U);
  f.settle();
  EXPECT_EQ(f.l1s[1]->state_of(addr), MesiState::kModified);
}

TEST(Coherence, WriteHitOnModifiedIsSilent) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x7000;
  f.l1s[1]->access(addr, true);
  f.settle();
  const auto misses_before = f.l1s[1]->stats().misses;
  f.l1s[1]->access(addr, true);
  f.l1s[1]->access(addr, false);
  EXPECT_EQ(f.l1s[1]->stats().misses, misses_before);
  EXPECT_EQ(f.l1s[1]->stats().hits, 2U);
}

TEST(Coherence, MshrCoalescesDuplicateMisses) {
  CoherenceFixture f;
  const std::uint64_t addr = 0x8000;
  f.l1s[0]->access(addr, false);
  f.l1s[0]->access(addr, false);
  f.l1s[0]->access(addr, false);
  EXPECT_EQ(f.l1s[0]->outstanding_misses(), 1U);
  EXPECT_EQ(f.l1s[0]->stats().mshr_coalesced, 2U);
  f.settle();
  EXPECT_EQ(f.l1s[0]->stats().replies, 1U);
}

TEST(Coherence, MshrLimitDropsExcessMisses) {
  CoherenceFixture f;
  for (std::uint64_t i = 0; i < 20; ++i) {
    f.l1s[0]->access(0x9000 + i * 16, false);
  }
  EXPECT_LE(f.l1s[0]->outstanding_misses(),
            static_cast<std::size_t>(f.l1_cfg.mshrs));
  EXPECT_GT(f.l1s[0]->stats().mshr_full_drops, 0U);
  f.settle();
  EXPECT_EQ(f.l1s[0]->outstanding_misses(), 0U);
}

TEST(Coherence, DirtyEvictionWritesBack) {
  CoherenceFixture f;
  // Fill one L1 set (2 ways) with dirty lines, then force an eviction.
  // Set index = addr & 255; same set => addresses differing by 256.
  f.l1s[0]->access(0x100, true);
  f.l1s[0]->access(0x100 + 256, true);
  f.settle();
  const auto wb_before = f.l1s[0]->stats().writebacks;
  f.l1s[0]->access(0x100 + 512, true);
  f.settle();
  EXPECT_EQ(f.l1s[0]->stats().writebacks, wb_before + 1);
  EXPECT_EQ(f.l1s[0]->state_of(0x100 + 512), MesiState::kModified);
}

TEST(Coherence, ConcurrentWritersSerializePerLine) {
  CoherenceFixture f;
  const std::uint64_t addr = 0xA000;
  // All four nodes write the same line at once; the directory must
  // serialize ownership transfers and end in a consistent state.
  for (NodeId n = 0; n < 4; ++n) f.l1s[n]->access(addr, true);
  f.settle(3000);
  int owners = 0;
  for (NodeId n = 0; n < 4; ++n) {
    if (f.l1s[n]->state_of(addr) == MesiState::kModified) ++owners;
    EXPECT_EQ(f.l1s[n]->outstanding_misses(), 0U);
  }
  EXPECT_EQ(owners, 1) << "exactly one modified owner must remain";
  EXPECT_EQ(f.l2s[addr % 4]->busy_lines(), 0U);
}

TEST(Coherence, HomeMappingInterleavesByLine) {
  EXPECT_EQ(home_of(0, 4), 0U);
  EXPECT_EQ(home_of(1, 4), 1U);
  EXPECT_EQ(home_of(7, 4), 3U);
  EXPECT_EQ(home_of(1024, 256), 0U);
}

}  // namespace
}  // namespace htpb::mem
