#include "mem/cache.hpp"

#include <gtest/gtest.h>

namespace htpb::mem {
namespace {

using IntCache = SetAssocCache<int>;

TEST(SetAssocCache, MissThenHit) {
  IntCache cache(16, 2);
  EXPECT_EQ(cache.find(0x100), nullptr);
  bool evicted = false;
  auto& line = cache.allocate(0x100, nullptr, &evicted);
  EXPECT_FALSE(evicted);
  line.data = 42;
  auto* found = cache.find(0x100);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->data, 42);
}

TEST(SetAssocCache, RejectsBadGeometry) {
  EXPECT_THROW(IntCache(15, 2), std::invalid_argument);  // not a power of 2
  EXPECT_THROW(IntCache(0, 2), std::invalid_argument);
  EXPECT_THROW(IntCache(16, 0), std::invalid_argument);
}

TEST(SetAssocCache, LruEviction) {
  IntCache cache(1, 2);  // fully associative pair
  bool evicted = false;
  cache.allocate(1, nullptr, &evicted).data = 1;
  cache.allocate(2, nullptr, &evicted).data = 2;
  (void)cache.find(1);  // touch 1: now 2 is LRU
  IntCache::Line victim;
  cache.allocate(3, &victim, &evicted);
  EXPECT_TRUE(evicted);
  EXPECT_EQ(victim.addr, 2U);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_EQ(cache.find(2), nullptr);
  EXPECT_NE(cache.find(3), nullptr);
}

TEST(SetAssocCache, SetConflictsOnlyWithinSet) {
  IntCache cache(4, 1);  // direct mapped, 4 sets
  bool evicted = false;
  cache.allocate(0, nullptr, &evicted);   // set 0
  cache.allocate(1, nullptr, &evicted);   // set 1
  cache.allocate(4, nullptr, &evicted);   // set 0 again: evicts addr 0
  EXPECT_TRUE(evicted);
  EXPECT_EQ(cache.find(0), nullptr);
  EXPECT_NE(cache.find(1), nullptr);
  EXPECT_NE(cache.find(4), nullptr);
}

TEST(SetAssocCache, AllocateExistingLineIsIdempotent) {
  IntCache cache(4, 2);
  bool evicted = true;
  auto& first = cache.allocate(8, nullptr, &evicted);
  first.data = 7;
  auto& again = cache.allocate(8, nullptr, &evicted);
  EXPECT_FALSE(evicted);
  EXPECT_EQ(again.data, 7);
  EXPECT_EQ(cache.occupancy(), 1U);
}

TEST(SetAssocCache, EvictableFilterSkipsProtectedLines) {
  IntCache cache(1, 2);
  bool evicted = false;
  cache.allocate(1, nullptr, &evicted).data = 1;
  cache.allocate(2, nullptr, &evicted).data = 2;
  IntCache::Line victim;
  // Protect line 1 (the LRU): the filter must divert eviction to line 2.
  cache.allocate(3, &victim, &evicted,
                 [](const IntCache::Line& l) { return l.addr != 1; });
  EXPECT_TRUE(evicted);
  EXPECT_EQ(victim.addr, 2U);
  EXPECT_NE(cache.find(1), nullptr);
}

TEST(SetAssocCache, EvictableFilterFallsBackWhenAllProtected) {
  IntCache cache(1, 2);
  bool evicted = false;
  cache.allocate(1, nullptr, &evicted);
  cache.allocate(2, nullptr, &evicted);
  IntCache::Line victim;
  cache.allocate(3, &victim, &evicted,
                 [](const IntCache::Line&) { return false; });
  EXPECT_TRUE(evicted);  // global LRU evicted anyway
  EXPECT_EQ(victim.addr, 1U);
}

TEST(SetAssocCache, InvalidateRemovesLine) {
  IntCache cache(4, 2);
  bool evicted = false;
  cache.allocate(5, nullptr, &evicted);
  EXPECT_TRUE(cache.invalidate(5));
  EXPECT_EQ(cache.find(5), nullptr);
  EXPECT_FALSE(cache.invalidate(5));
  EXPECT_EQ(cache.occupancy(), 0U);
}

TEST(SetAssocCache, PeekDoesNotTouchLru) {
  IntCache cache(1, 2);
  bool evicted = false;
  cache.allocate(1, nullptr, &evicted);
  cache.allocate(2, nullptr, &evicted);
  (void)cache.peek(1);  // must NOT refresh line 1
  IntCache::Line victim;
  cache.allocate(3, &victim, &evicted);
  EXPECT_EQ(victim.addr, 1U);  // 1 was still LRU despite the peek
}

}  // namespace
}  // namespace htpb::mem
