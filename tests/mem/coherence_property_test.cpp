// Randomized protocol stress: many cores hammer a small set of shared
// lines; the single-writer invariant must hold at every quiescent point
// and the system must always drain.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "mem/coherence.hpp"
#include "mem/l1_cache.hpp"
#include "mem/l2_bank.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace htpb::mem {
namespace {

struct StressParam {
  int mesh = 2;        // mesh side
  std::uint64_t lines = 8;
  std::uint64_t seed = 1;
  int bursts = 20;
  int accesses_per_burst = 30;
};

class CoherenceStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(CoherenceStressTest, SingleWriterManyReadersInvariant) {
  const StressParam p = GetParam();
  sim::Engine engine;
  MeshGeometry geom(p.mesh, p.mesh);
  noc::NocConfig noc_cfg;
  noc::MeshNetwork net(engine, geom, noc_cfg);
  L1Config l1_cfg;
  L2Config l2_cfg;
  l2_cfg.mem_latency = 40;
  const auto n = static_cast<NodeId>(geom.node_count());

  std::vector<std::unique_ptr<L1Cache>> l1s;
  std::vector<std::unique_ptr<L2Bank>> l2s;
  for (NodeId i = 0; i < n; ++i) {
    l1s.push_back(std::make_unique<L1Cache>(i, l1_cfg, &net, nullptr));
    l2s.push_back(std::make_unique<L2Bank>(i, l2_cfg, &net, &engine));
    net.set_handler(i, [&, i](const noc::Packet& pkt) {
      switch (pkt.type) {
        case noc::PacketType::kMemReply:
        case noc::PacketType::kCohInvalidate:
          l1s[i]->on_packet(pkt);
          break;
        case noc::PacketType::kMemReadReq:
        case noc::PacketType::kMemWriteReq:
        case noc::PacketType::kWriteback:
        case noc::PacketType::kCohAck:
          l2s[i]->on_packet(pkt);
          break;
        default:
          break;
      }
    });
  }

  Rng rng(p.seed);
  for (int burst = 0; burst < p.bursts; ++burst) {
    for (int a = 0; a < p.accesses_per_burst; ++a) {
      const auto node = static_cast<NodeId>(rng.below(n));
      const std::uint64_t addr = 0xC000 + rng.below(p.lines);
      l1s[node]->access(addr, rng.chance(0.4));
    }
    engine.run_cycles(2500);  // quiesce

    // Drained: no MSHRs, no busy directory lines, idle network.
    for (NodeId i = 0; i < n; ++i) {
      ASSERT_EQ(l1s[i]->outstanding_misses(), 0U) << "burst " << burst;
      ASSERT_EQ(l2s[i]->busy_lines(), 0U) << "burst " << burst;
    }
    ASSERT_TRUE(net.idle()) << "burst " << burst;

    // Single-writer-or-many-readers per line.
    for (std::uint64_t line = 0; line < p.lines; ++line) {
      const std::uint64_t addr = 0xC000 + line;
      int modified = 0;
      int shared = 0;
      for (NodeId i = 0; i < n; ++i) {
        const MesiState st = l1s[i]->state_of(addr);
        if (st == MesiState::kModified || st == MesiState::kExclusive) {
          ++modified;
        } else if (st == MesiState::kShared) {
          ++shared;
        }
      }
      ASSERT_LE(modified, 1) << "two owners for line " << line;
      if (modified == 1) {
        ASSERT_EQ(shared, 0) << "owner plus readers for line " << line;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherenceStressTest,
    ::testing::Values(StressParam{2, 4, 101, 15, 25},
                      StressParam{2, 8, 202, 15, 40},
                      StressParam{3, 8, 303, 12, 40},
                      StressParam{3, 16, 404, 12, 60},
                      StressParam{4, 8, 505, 10, 60},
                      StressParam{4, 32, 606, 10, 80}));

}  // namespace
}  // namespace htpb::mem
