#include "noc/routing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace htpb::noc {
namespace {

RouteQuery query(Coord here, Coord dst) {
  RouteQuery q;
  q.here = here;
  q.dst = dst;
  q.free_credits.fill(10);
  return q;
}

TEST(XyRouting, ExhaustsXFirst) {
  XyRouting xy;
  EXPECT_EQ(xy.select(query({0, 0}, {3, 3})), Direction::kEast);
  EXPECT_EQ(xy.select(query({3, 0}, {0, 3})), Direction::kWest);
  EXPECT_EQ(xy.select(query({3, 0}, {3, 3})), Direction::kSouth);
  EXPECT_EQ(xy.select(query({3, 3}, {3, 0})), Direction::kNorth);
  EXPECT_EQ(xy.select(query({2, 2}, {2, 2})), Direction::kLocal);
}

TEST(XyRouting, FullPathIsMinimalAndReachesDestination) {
  XyRouting xy;
  Coord pos{1, 6};
  const Coord dst{7, 2};
  int hops = 0;
  while (pos != dst) {
    const Direction d = xy.select(query(pos, dst));
    ASSERT_NE(d, Direction::kLocal);
    pos = step(pos, d);
    ASSERT_LE(++hops, 64) << "routing loop";
  }
  EXPECT_EQ(hops, manhattan_distance(Coord{1, 6}, dst));
}

TEST(WestFirstAdaptive, WestwardIsDeterministic) {
  WestFirstAdaptiveRouting wf;
  auto q = query({5, 5}, {2, 7});
  // Must go fully west before any south/north turn.
  EXPECT_EQ(wf.select(q), Direction::kWest);
  q = query({2, 5}, {2, 7});
  EXPECT_EQ(wf.select(q), Direction::kSouth);
}

TEST(WestFirstAdaptive, AdaptsOnCredits) {
  WestFirstAdaptiveRouting wf;
  auto q = query({0, 0}, {3, 3});
  q.free_credits[port_index(Direction::kEast)] = 1;
  q.free_credits[port_index(Direction::kSouth)] = 9;
  EXPECT_EQ(wf.select(q), Direction::kSouth);
  q.free_credits[port_index(Direction::kEast)] = 9;
  q.free_credits[port_index(Direction::kSouth)] = 1;
  EXPECT_EQ(wf.select(q), Direction::kEast);
}

TEST(WestFirstAdaptive, AlwaysMinimal) {
  WestFirstAdaptiveRouting wf;
  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    Coord pos{static_cast<int>(rng.below(8)), static_cast<int>(rng.below(8))};
    const Coord dst{static_cast<int>(rng.below(8)),
                    static_cast<int>(rng.below(8))};
    const int expected = manhattan_distance(pos, dst);
    int hops = 0;
    while (pos != dst) {
      auto q = query(pos, dst);
      for (auto& c : q.free_credits) {
        c = static_cast<int>(rng.below(10));
      }
      const Direction d = wf.select(q);
      ASSERT_NE(d, Direction::kLocal);
      pos = step(pos, d);
      ++hops;
      ASSERT_LE(hops, expected) << "non-minimal route";
    }
    EXPECT_EQ(hops, expected);
  }
}

TEST(WestFirstAdaptive, NeverTurnsIntoWest) {
  // Turn-model deadlock freedom: west moves only while dx < 0, i.e. before
  // any other direction has been taken.
  WestFirstAdaptiveRouting wf;
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    Coord pos{static_cast<int>(rng.below(8)), static_cast<int>(rng.below(8))};
    const Coord dst{static_cast<int>(rng.below(8)),
                    static_cast<int>(rng.below(8))};
    bool moved_non_west = false;
    while (pos != dst) {
      auto q = query(pos, dst);
      for (auto& c : q.free_credits) c = static_cast<int>(rng.below(10));
      const Direction d = wf.select(q);
      if (d == Direction::kWest) {
        EXPECT_FALSE(moved_non_west) << "illegal turn into west";
      } else {
        moved_non_west = true;
      }
      pos = step(pos, d);
    }
  }
}

TEST(MakeRouting, Factory) {
  EXPECT_STREQ(make_routing(RoutingKind::kXY)->name(), "XY");
  EXPECT_STREQ(make_routing(RoutingKind::kWestFirstAdaptive)->name(),
               "WestFirstAdaptive");
}

TEST(XyPassThrough, HorizontalThenVerticalSegments) {
  // src (1,1) -> dst (4,3): X-leg on row y=1 from x=1..4, Y-leg on column
  // x=4 from y=1..3.
  const Coord src{1, 1};
  const Coord dst{4, 3};
  EXPECT_TRUE(xy_route_passes_through(src, dst, {2, 1}));
  EXPECT_TRUE(xy_route_passes_through(src, dst, {4, 2}));
  EXPECT_TRUE(xy_route_passes_through(src, dst, src));
  EXPECT_TRUE(xy_route_passes_through(src, dst, dst));
  EXPECT_FALSE(xy_route_passes_through(src, dst, {2, 2}));
  EXPECT_FALSE(xy_route_passes_through(src, dst, {1, 3}));
  EXPECT_FALSE(xy_route_passes_through(src, dst, {5, 1}));
}

TEST(XyPassThrough, MatchesStepwiseSimulation) {
  XyRouting xy;
  Rng rng(21);
  for (int trial = 0; trial < 300; ++trial) {
    const Coord src{static_cast<int>(rng.below(6)),
                    static_cast<int>(rng.below(6))};
    const Coord dst{static_cast<int>(rng.below(6)),
                    static_cast<int>(rng.below(6))};
    const Coord via{static_cast<int>(rng.below(6)),
                    static_cast<int>(rng.below(6))};
    bool hit = false;
    Coord pos = src;
    if (pos == via) hit = true;
    while (pos != dst) {
      pos = step(pos, xy.select(query(pos, dst)));
      if (pos == via) hit = true;
    }
    EXPECT_EQ(xy_route_passes_through(src, dst, via), hit)
        << "src=(" << src.x << "," << src.y << ") dst=(" << dst.x << ","
        << dst.y << ") via=(" << via.x << "," << via.y << ")";
  }
}

}  // namespace
}  // namespace htpb::noc
