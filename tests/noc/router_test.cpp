// Router-level behaviour observed through a tiny 2x1 network: pipeline
// latency, credit backpressure, inspector invocation point.
#include "noc/router.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace htpb::noc {
namespace {

struct TwoNodeFixture {
  sim::Engine engine;
  MeshGeometry geom{2, 1};
  NocConfig cfg;
  MeshNetwork net;

  TwoNodeFixture() : net(engine, geom, cfg) {}
};

TEST(Router, SingleHopLatencyMatchesTableI) {
  // Table I: router 2 cycles, link 1 cycle. One hop = NI->router link (1) +
  // router pipeline (2) + router->router link (1) + router pipeline (2) +
  // router->NI link (1), plus serialization of the remaining flits.
  TwoNodeFixture f;
  std::vector<Cycle> delivered;
  f.net.set_handler(1, [&](const Packet& p) {
    delivered.push_back(p.delivered - p.birth);
  });
  auto pkt = f.net.make_packet(0, 1, PacketType::kMemReadReq);  // 1 flit
  f.net.send(std::move(pkt));
  f.engine.run_cycles(30);
  ASSERT_EQ(delivered.size(), 1U);
  // Head-only packet: measured end-to-end latency for one hop.
  EXPECT_EQ(delivered[0], 7U);
}

TEST(Router, SerializationAddsOneCyclePerExtraFlit) {
  TwoNodeFixture f;
  std::vector<Cycle> delivered;
  f.net.set_handler(1, [&](const Packet& p) {
    delivered.push_back(p.delivered - p.birth);
  });
  f.net.send(f.net.make_packet(0, 1, PacketType::kMemReply));  // 5 flits
  f.engine.run_cycles(40);
  ASSERT_EQ(delivered.size(), 1U);
  EXPECT_EQ(delivered[0], 7U + 4U);
}

TEST(Router, BackToBackPacketsPipeline) {
  TwoNodeFixture f;
  int received = 0;
  f.net.set_handler(1, [&](const Packet&) { ++received; });
  for (int i = 0; i < 10; ++i) {
    f.net.send(f.net.make_packet(0, 1, PacketType::kMemReadReq));
  }
  f.engine.run_cycles(60);
  EXPECT_EQ(received, 10);
}

TEST(Router, CreditBackpressureNeverOverflowsBuffers) {
  // Flood one destination from the other node; buffer occupancy must never
  // exceed the configured depth (assert inside accept_flit also guards).
  TwoNodeFixture f;
  int received = 0;
  f.net.set_handler(1, [&](const Packet&) { ++received; });
  for (int i = 0; i < 50; ++i) {
    f.net.send(f.net.make_packet(0, 1, PacketType::kMemReply));
  }
  for (int c = 0; c < 600; ++c) {
    f.engine.run_cycles(1);
    for (NodeId n = 0; n < 2; ++n) {
      for (int p = 0; p < kNumPorts; ++p) {
        for (int v = 0; v < f.cfg.vcs; ++v) {
          EXPECT_LE(f.net.router(n).input_occupancy(
                        static_cast<Direction>(p), v),
                    f.cfg.vc_depth);
        }
      }
    }
  }
  EXPECT_EQ(received, 50);
}

class RecordingInspector final : public PacketInspector {
 public:
  void inspect(Packet& pkt, NodeId router, Cycle now) override {
    calls.push_back({pkt.id, router, now});
  }
  struct Call {
    PacketId pkt;
    NodeId router;
    Cycle when;
  };
  std::vector<Call> calls;
};

TEST(Router, InspectorRunsOncePerRouterPerPacket) {
  TwoNodeFixture f;
  RecordingInspector insp;
  f.net.add_inspector(0, &insp);
  f.net.add_inspector(1, &insp);
  f.net.set_handler(1, [](const Packet&) {});
  auto pkt = f.net.make_packet(0, 1, PacketType::kPowerRequest, 123);
  const PacketId id = pkt->id;
  f.net.send(std::move(pkt));
  f.engine.run_cycles(30);
  ASSERT_EQ(insp.calls.size(), 2U);
  EXPECT_EQ(insp.calls[0].pkt, id);
  EXPECT_EQ(insp.calls[0].router, 0U);
  EXPECT_EQ(insp.calls[1].router, 1U);
  EXPECT_LT(insp.calls[0].when, insp.calls[1].when);
}

class TamperingInspector final : public PacketInspector {
 public:
  void inspect(Packet& pkt, NodeId, Cycle) override {
    if (pkt.type == PacketType::kPowerRequest) {
      pkt.original_payload = pkt.payload;
      pkt.payload /= 2;
      pkt.tampered = true;
    }
  }
};

TEST(Router, InspectorCanTamperPayloadInFlight) {
  TwoNodeFixture f;
  TamperingInspector trojan;
  f.net.add_inspector(0, &trojan);
  std::uint32_t received_payload = 0;
  bool tampered = false;
  f.net.set_handler(1, [&](const Packet& p) {
    received_payload = p.payload;
    tampered = p.tampered;
  });
  f.net.send(f.net.make_packet(0, 1, PacketType::kPowerRequest, 1000));
  f.engine.run_cycles(30);
  EXPECT_EQ(received_payload, 500U);
  EXPECT_TRUE(tampered);
  EXPECT_EQ(f.net.stats().tampered_power_requests_delivered, 1U);
}

TEST(Router, StatsCountPowerRequests) {
  TwoNodeFixture f;
  f.net.set_handler(1, [](const Packet&) {});
  f.net.send(f.net.make_packet(0, 1, PacketType::kPowerRequest, 1));
  f.net.send(f.net.make_packet(0, 1, PacketType::kMemReadReq));
  f.engine.run_cycles(40);
  EXPECT_EQ(f.net.router(0).stats().power_requests_seen, 1U);
  EXPECT_EQ(f.net.router(1).stats().power_requests_seen, 1U);
}

TEST(Router, DisconnectedPortsAtMeshEdge) {
  TwoNodeFixture f;
  EXPECT_FALSE(f.net.router(0).port_connected(Direction::kWest));
  EXPECT_FALSE(f.net.router(0).port_connected(Direction::kNorth));
  EXPECT_FALSE(f.net.router(0).port_connected(Direction::kSouth));
  EXPECT_TRUE(f.net.router(0).port_connected(Direction::kEast));
  EXPECT_TRUE(f.net.router(1).port_connected(Direction::kWest));
  EXPECT_FALSE(f.net.router(1).port_connected(Direction::kEast));
}

TEST(Router, RejectsOddVcCount) {
  MeshGeometry geom(2, 1);
  NocConfig cfg;
  cfg.vcs = 3;
  XyRouting xy;
  EXPECT_THROW(Router(0, geom, cfg, &xy), std::invalid_argument);
}

}  // namespace
}  // namespace htpb::noc
