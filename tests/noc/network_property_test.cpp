// Property-style sweeps: across mesh sizes, routing algorithms and seeds,
// uniform-random traffic must be fully delivered, in bounded time, with no
// buffer-overflow (asserted in Router) and conserved packet counts.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace htpb::noc {
namespace {

struct PropertyParam {
  int width;
  int height;
  RoutingKind routing;
  std::uint64_t seed;
  int packets;
};

class NetworkPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(NetworkPropertyTest, UniformRandomTrafficFullyDelivered) {
  const auto p = GetParam();
  sim::Engine engine;
  MeshGeometry geom(p.width, p.height);
  NocConfig cfg;
  cfg.routing = p.routing;
  MeshNetwork net(engine, geom, cfg);

  std::map<PacketId, int> outstanding;
  int delivered = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(geom.node_count()); ++n) {
    net.set_handler(n, [&, n](const Packet& pkt) {
      EXPECT_EQ(pkt.dst, n) << "misrouted packet";
      EXPECT_EQ(outstanding.count(pkt.id), 1U);
      outstanding.erase(pkt.id);
      ++delivered;
    });
  }

  Rng rng(p.seed);
  const auto nodes = static_cast<std::uint64_t>(geom.node_count());
  const PacketType kinds[] = {PacketType::kMemReadReq, PacketType::kMemReply,
                              PacketType::kPowerRequest,
                              PacketType::kWriteback};
  for (int i = 0; i < p.packets; ++i) {
    const auto src = static_cast<NodeId>(rng.below(nodes));
    auto dst = static_cast<NodeId>(rng.below(nodes));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % nodes);
    auto pkt = net.make_packet(src, dst, kinds[rng.below(4)]);
    outstanding[pkt->id] = 1;
    net.send(std::move(pkt));
  }

  // Generous drain budget; deadlock or loss shows up as a miss here.
  engine.run_cycles(static_cast<Cycle>(4000 + 60 * p.packets));
  EXPECT_EQ(delivered, p.packets);
  EXPECT_TRUE(outstanding.empty());
  EXPECT_TRUE(net.idle());

  // Conservation: every delivered packet was also counted by the mesh.
  EXPECT_EQ(net.stats().packets_delivered, static_cast<std::uint64_t>(delivered));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkPropertyTest,
    ::testing::Values(
        PropertyParam{2, 2, RoutingKind::kXY, 1, 60},
        PropertyParam{4, 4, RoutingKind::kXY, 2, 200},
        PropertyParam{4, 4, RoutingKind::kXY, 3, 200},
        PropertyParam{8, 8, RoutingKind::kXY, 4, 400},
        PropertyParam{8, 4, RoutingKind::kXY, 5, 250},
        PropertyParam{1, 8, RoutingKind::kXY, 6, 100},
        PropertyParam{8, 1, RoutingKind::kXY, 7, 100},
        PropertyParam{4, 4, RoutingKind::kWestFirstAdaptive, 8, 200},
        PropertyParam{8, 8, RoutingKind::kWestFirstAdaptive, 9, 400},
        PropertyParam{6, 3, RoutingKind::kWestFirstAdaptive, 10, 200},
        PropertyParam{16, 16, RoutingKind::kXY, 11, 600},
        PropertyParam{16, 16, RoutingKind::kWestFirstAdaptive, 12, 600}));

class LatencyBoundTest
    : public ::testing::TestWithParam<std::tuple<int, RoutingKind>> {};

TEST_P(LatencyBoundTest, ZeroLoadLatencyMatchesAnalyticalModel) {
  // Unloaded network: latency of a single packet must equal
  // hops * (router_latency + link_latency) + router+link at source/sink
  // + serialization (flits - 1).
  const auto [size, routing] = GetParam();
  sim::Engine engine;
  MeshGeometry geom(size, size);
  NocConfig cfg;
  cfg.routing = routing;
  MeshNetwork net(engine, geom, cfg);

  const NodeId src = 0;
  const NodeId dst = static_cast<NodeId>(geom.node_count() - 1);
  const int hops = geom.hop_distance(src, dst);

  Cycle measured = 0;
  net.set_handler(dst, [&](const Packet& p) { measured = p.delivered - p.birth; });
  net.send(net.make_packet(src, dst, PacketType::kMemReadReq));
  engine.run_cycles(static_cast<Cycle>(20 + 5 * hops));

  // Each router on the path costs router_latency cycles + 1 cycle of link,
  // there are hops+1 routers; NI injection adds 1 link.
  const Cycle expected =
      static_cast<Cycle>((hops + 1) * (cfg.router_latency + cfg.link_latency) +
                         cfg.link_latency);
  EXPECT_EQ(measured, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LatencyBoundTest,
    ::testing::Combine(::testing::Values(2, 4, 8, 16),
                       ::testing::Values(RoutingKind::kXY,
                                         RoutingKind::kWestFirstAdaptive)));

}  // namespace
}  // namespace htpb::noc
