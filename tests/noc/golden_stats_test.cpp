// Golden-stats determinism lock for the NoC core refactors.
//
// Every observable of a fixed-seed run -- per-router counters, network
// counters, the exact per-packet delivery sequence (order + latency), a
// latency histogram, and a whole-campaign outcome -- is folded into an
// FNV-1a fingerprint and compared against constants captured before the
// hot-path refactor (PR 2). "Faster" only counts when these stay
// bit-identical: the active-set scheduler, SA candidate lists, ring FIFOs
// and the packet arena must all be invisible to results.
//
// Regenerate after an *intentional* behaviour change with:
//   HTPB_GOLDEN_DUMP=1 ./tests/noc_golden_stats_test
// and paste the printed constants below, explaining the change in the PR.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/campaign.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"
#include "workload/application.hpp"

namespace htpb::noc {
namespace {

// --- captured on the pre-refactor core (seed commit 115225c) ------------
constexpr std::uint64_t kGoldenXy = 0x34ded9a10a5a07dfULL;
constexpr std::uint64_t kGoldenAdaptive = 0x2fc41bd560f49a92ULL;
constexpr std::uint64_t kGoldenCampaign = 0xb3007d5274eab1a9ULL;
constexpr std::uint64_t kGoldenXyDelivered = 1500;
constexpr std::uint64_t kGoldenAdaptiveDelivered = 1500;
// ------------------------------------------------------------------------

class Fingerprint {
 public:
  void add(std::uint64_t v) noexcept {
    h_ ^= v;
    h_ *= 1099511628211ULL;  // FNV-1a 64-bit prime
  }
  void add_double(double d) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    add(bits);
  }
  void add_stat(const RunningStat& s) noexcept {
    add(s.count());
    add_double(s.mean());
    add_double(s.variance());
    add_double(s.min());
    add_double(s.max());
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;  // FNV offset basis
};

bool dump_mode() {
  const char* env = std::getenv("HTPB_GOLDEN_DUMP");
  return env != nullptr && env[0] == '1';
}

/// Fixed-seed uniform-random traffic on an 8x8 mesh, fully drained, every
/// observable folded into one fingerprint. Injection happens outside the
/// engine loop on a precomputed per-cycle schedule so the golden value
/// only depends on the network core, not on tickable ordering.
struct NocGoldenRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t delivered = 0;
};

NocGoldenRun run_noc_golden(RoutingKind routing) {
  sim::Engine engine;
  MeshGeometry geom(8, 8);
  NocConfig cfg;
  cfg.routing = routing;
  MeshNetwork net(engine, geom, cfg);

  Fingerprint fp;
  Histogram latency_hist(0.0, 120.0, 40);
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(geom.node_count()); ++n) {
    net.set_handler(n, [&, n](const Packet& pkt) {
      // The delivery *sequence* is part of the golden: id, endpoint and
      // latency in arrival order. Any reordering breaks the fingerprint.
      ++delivered;
      fp.add(pkt.id);
      fp.add(n);
      fp.add(static_cast<std::uint64_t>(pkt.delivered - pkt.birth));
      latency_hist.add(static_cast<double>(pkt.delivered - pkt.birth));
    });
  }

  Rng traffic_rng(2024);
  const auto nodes = static_cast<std::uint64_t>(geom.node_count());
  constexpr int kPackets = 1500;
  constexpr PacketType kKinds[] = {PacketType::kMemReadReq,
                                   PacketType::kMemReply,
                                   PacketType::kPowerRequest,
                                   PacketType::kWriteback};
  int sent = 0;
  for (Cycle c = 0; sent < kPackets; ++c) {
    // ~3 injections per cycle across the mesh, deterministic schedule.
    for (int k = 0; k < 3 && sent < kPackets; ++k) {
      const auto src = static_cast<NodeId>(traffic_rng.below(nodes));
      auto dst = static_cast<NodeId>(traffic_rng.below(nodes));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % nodes);
      net.send(net.make_packet(src, dst, kKinds[traffic_rng.below(4)],
                               static_cast<std::uint32_t>(sent)));
      ++sent;
    }
    engine.run_cycles(1);
  }
  engine.run_cycles(4000);  // fixed drain budget, part of the contract
  EXPECT_TRUE(net.idle());

  for (NodeId n = 0; n < static_cast<NodeId>(geom.node_count()); ++n) {
    const RouterStats& rs = net.router(n).stats();
    fp.add(rs.flits_forwarded);
    fp.add(rs.packets_routed);
    fp.add(rs.power_requests_seen);
    fp.add(rs.flits_ejected);
    fp.add(rs.sa_conflict_stalls);
    fp.add(rs.va_stalls);
    const NiStats& ns = net.ni(n).stats();
    fp.add(ns.packets_injected);
    fp.add(ns.packets_delivered);
    fp.add(ns.flits_injected);
    fp.add(ns.inject_queue_peak);
  }
  const NetworkStats& s = net.stats();
  fp.add(s.packets_sent);
  fp.add(s.packets_delivered);
  fp.add(s.power_requests_delivered);
  fp.add(s.tampered_power_requests_delivered);
  fp.add_stat(s.latency_all);
  fp.add_stat(s.latency_power_req);
  fp.add_stat(s.latency_mem);
  for (std::size_t b = 0; b < latency_hist.bucket_count(); ++b) {
    fp.add(latency_hist.bucket(b));
  }
  fp.add(latency_hist.underflow());
  fp.add(latency_hist.overflow());
  return NocGoldenRun{fp.value(), delivered};
}

TEST(GoldenStats, XyRoutingBitIdentical) {
  const NocGoldenRun run = run_noc_golden(RoutingKind::kXY);
  if (dump_mode()) {
    std::printf("kGoldenXy = 0x%llxULL; delivered = %llu\n",
                static_cast<unsigned long long>(run.fingerprint),
                static_cast<unsigned long long>(run.delivered));
    return;
  }
  EXPECT_EQ(run.delivered, kGoldenXyDelivered);
  EXPECT_EQ(run.fingerprint, kGoldenXy);
}

TEST(GoldenStats, WestFirstAdaptiveBitIdentical) {
  // Adaptive routing reads per-port free credits during RC, so it is the
  // most sensitive consumer of credit-update ordering.
  const NocGoldenRun run = run_noc_golden(RoutingKind::kWestFirstAdaptive);
  if (dump_mode()) {
    std::printf("kGoldenAdaptive = 0x%llxULL; delivered = %llu\n",
                static_cast<unsigned long long>(run.fingerprint),
                static_cast<unsigned long long>(run.delivered));
    return;
  }
  EXPECT_EQ(run.delivered, kGoldenAdaptiveDelivered);
  EXPECT_EQ(run.fingerprint, kGoldenAdaptive);
}

TEST(GoldenStats, FullCampaignOutcomeBitIdentical) {
  // Whole-system determinism: one fixed-seed 8x8 campaign (cores, caches,
  // power manager, Trojans) reduced to its CampaignOutcome. Catches any
  // refactor that changes packet-id assignment, delivery order or timing
  // anywhere in the stack.
  core::CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1500;
  cfg.system.seed = 7;
  cfg.mix = workload::standard_mixes().at(0);
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  cfg.warmup_epochs = 1;
  cfg.measure_epochs = 2;
  core::AttackCampaign campaign(cfg);

  const std::vector<NodeId> hts = {9, 18, 27, 36};
  const core::CampaignOutcome out = campaign.run(hts);

  Fingerprint fp;
  fp.add_double(out.infection_measured);
  fp.add_double(out.infection_predicted);
  fp.add(out.q_valid ? 1 : 0);
  fp.add_double(out.q);
  fp.add_double(out.geometry.rho);
  fp.add_double(out.geometry.eta);
  fp.add(static_cast<std::uint64_t>(out.geometry.m));
  for (const core::AppOutcome& app : out.apps) {
    fp.add(app.id);
    fp.add(app.attacker ? 1 : 0);
    fp.add_double(app.theta_baseline);
    fp.add_double(app.theta_attacked);
    fp.add_double(app.change);
    fp.add_double(app.phi);
  }
  fp.add(out.trojan_totals.config_packets_seen);
  fp.add(out.trojan_totals.power_requests_seen);
  fp.add(out.trojan_totals.victim_requests_modified);
  fp.add(out.trojan_totals.attacker_requests_boosted);

  if (dump_mode()) {
    std::printf("kGoldenCampaign = 0x%llxULL\n",
                static_cast<unsigned long long>(fp.value()));
    return;
  }
  EXPECT_EQ(fp.value(), kGoldenCampaign);
}

}  // namespace
}  // namespace htpb::noc
