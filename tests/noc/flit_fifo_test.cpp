// Unit tests for the fixed-capacity ring buffer backing router input VCs:
// wraparound, full/empty transitions, slot reset on pop, and the
// credit-interplay pattern (depth < capacity, occupancy bounded by the
// credit loop).
#include "noc/flit_fifo.hpp"

#include <gtest/gtest.h>

#include "noc/config.hpp"
#include "noc/packet.hpp"

namespace htpb::noc {
namespace {

TEST(RingFifo, StartsEmpty) {
  RingFifo<int, 8> f;
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.full());
  EXPECT_EQ(f.size(), 0);
  EXPECT_EQ(f.capacity(), 8);
}

TEST(RingFifo, FifoOrderAcrossWraparound) {
  RingFifo<int, 4> f;
  // Fill, half-drain, refill -- repeatedly, so head walks around the ring
  // several times and every slot gets exercised in both roles.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 7; ++round) {
    while (!f.full()) f.push_back(next_push++);
    EXPECT_EQ(f.size(), 4);
    f.pop_front();
    f.pop_front();
    ++next_pop;
    ++next_pop;
    ASSERT_FALSE(f.empty());
    EXPECT_EQ(f.front(), next_pop);
  }
  while (!f.empty()) {
    EXPECT_EQ(f.front(), next_pop++);
    f.pop_front();
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingFifo, FullEmptyTransitions) {
  RingFifo<int, 2> f;
  f.push_back(1);
  EXPECT_FALSE(f.empty());
  EXPECT_FALSE(f.full());
  f.push_back(2);
  EXPECT_TRUE(f.full());
  f.pop_front();
  EXPECT_FALSE(f.full());
  f.pop_front();
  EXPECT_TRUE(f.empty());
}

TEST(RingFifo, PopResetsSlotAndReleasesOwnership) {
  // The VC FIFOs hold flits owning PacketPtr handles; pop_front must
  // release the popped slot's handle immediately, not at wraparound --
  // otherwise recycled packets would be pinned by dead buffer slots.
  RingFifo<Flit, 4> f;
  PacketPtr pkt = make_heap_packet();
  Flit flit;
  flit.pkt = pkt;
  f.push_back(flit);
  EXPECT_EQ(pkt->ctrl.refs, 3u);  // pkt + local flit + buffered copy
  f.pop_front();
  EXPECT_EQ(pkt->ctrl.refs, 2u);  // buffered copy released on pop
  flit.pkt.reset();
  EXPECT_EQ(pkt->ctrl.refs, 1u);
}

TEST(RingFifo, CreditInterplayDepthBelowCapacity) {
  // Router buffers run at vc_depth (5) inside capacity-8 rings; the
  // credit loop keeps occupancy <= depth. Emulate it: `credits` starts at
  // depth, each push consumes one, each pop returns one -- occupancy can
  // then never exceed depth even through sustained wraparound.
  RingFifo<int, kMaxVcDepth> f;
  const int depth = 5;
  int credits = depth;
  int pushed = 0;
  int popped = 0;
  for (int step = 0; step < 1000; ++step) {
    const bool can_push = credits > 0;
    if (can_push && (step % 3 != 2)) {  // push-biased schedule
      f.push_back(pushed++);
      --credits;
    } else if (!f.empty()) {
      EXPECT_EQ(f.front(), popped);
      f.pop_front();
      ++popped;
      ++credits;
    }
    ASSERT_LE(f.size(), depth);
    ASSERT_EQ(f.size(), pushed - popped);
  }
  EXPECT_GT(pushed, 300);  // the schedule actually moved data
}

}  // namespace
}  // namespace htpb::noc
