#include "noc/packet.hpp"

#include <gtest/gtest.h>

namespace htpb::noc {
namespace {

TEST(Packet, FlitizationSizes) {
  auto pkt = make_heap_packet();
  pkt->size_flits = 5;
  const auto flits = make_flits(pkt);
  ASSERT_EQ(flits.size(), 5U);
  EXPECT_TRUE(flits.front().is_head);
  EXPECT_FALSE(flits.front().is_tail);
  EXPECT_TRUE(flits.back().is_tail);
  EXPECT_FALSE(flits.back().is_head);
  for (std::size_t i = 0; i < flits.size(); ++i) {
    EXPECT_EQ(flits[i].index, i);
    EXPECT_EQ(flits[i].pkt.get(), pkt.get());
  }
}

TEST(Packet, SingleFlitIsHeadAndTail) {
  auto pkt = make_heap_packet();
  pkt->size_flits = 1;
  const auto flits = make_flits(pkt);
  ASSERT_EQ(flits.size(), 1U);
  EXPECT_TRUE(flits[0].is_head);
  EXPECT_TRUE(flits[0].is_tail);
}

TEST(Packet, ZeroSizeClampedToOneFlit) {
  auto pkt = make_heap_packet();
  pkt->size_flits = 0;
  EXPECT_EQ(make_flits(pkt).size(), 1U);
}

TEST(Packet, VcClassPartition) {
  // Requests and control traffic in class 0; replies in class 1 --
  // protocol-deadlock avoidance invariant.
  EXPECT_EQ(vc_class_of(PacketType::kPowerRequest), 0);
  EXPECT_EQ(vc_class_of(PacketType::kConfigCmd), 0);
  EXPECT_EQ(vc_class_of(PacketType::kMemReadReq), 0);
  EXPECT_EQ(vc_class_of(PacketType::kMemWriteReq), 0);
  EXPECT_EQ(vc_class_of(PacketType::kCohInvalidate), 0);
  EXPECT_EQ(vc_class_of(PacketType::kWriteback), 0);
  EXPECT_EQ(vc_class_of(PacketType::kPowerGrant), 1);
  EXPECT_EQ(vc_class_of(PacketType::kMemReply), 1);
  EXPECT_EQ(vc_class_of(PacketType::kCohAck), 1);
}

TEST(Packet, ToStringMentionsTampering) {
  Packet pkt;
  pkt.type = PacketType::kPowerRequest;
  pkt.payload = 42;
  EXPECT_EQ(pkt.to_string().find("TAMPERED"), std::string::npos);
  pkt.tampered = true;
  pkt.original_payload = 99;
  EXPECT_NE(pkt.to_string().find("TAMPERED"), std::string::npos);
}

TEST(PacketTypeNames, AllDistinct) {
  EXPECT_STREQ(to_string(PacketType::kPowerRequest), "POWER_REQ");
  EXPECT_STREQ(to_string(PacketType::kConfigCmd), "CONFIG_CMD");
  EXPECT_STREQ(to_string(PacketType::kPowerGrant), "POWER_GRANT");
}

}  // namespace
}  // namespace htpb::noc
