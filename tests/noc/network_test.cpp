#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"

namespace htpb::noc {
namespace {

struct NetFixture {
  sim::Engine engine;
  MeshGeometry geom;
  NocConfig cfg;
  MeshNetwork net;

  explicit NetFixture(int w = 4, int h = 4,
                      RoutingKind routing = RoutingKind::kXY)
      : geom(w, h), cfg{}, net(engine, geom, make_cfg(routing)) {}

  static NocConfig make_cfg(RoutingKind routing) {
    NocConfig c;
    c.routing = routing;
    return c;
  }
};

TEST(Network, DeliversAcrossDiagonal) {
  NetFixture f;
  int received = 0;
  f.net.set_handler(15, [&](const Packet& p) {
    EXPECT_EQ(p.src, 0U);
    EXPECT_EQ(p.dst, 15U);
    EXPECT_EQ(p.payload, 777U);
    ++received;
  });
  f.net.send(f.net.make_packet(0, 15, PacketType::kPowerRequest, 777));
  f.engine.run_cycles(100);
  EXPECT_EQ(received, 1);
  EXPECT_TRUE(f.net.idle());
}

TEST(Network, LocalLoopbackBypassesMesh) {
  NetFixture f;
  int received = 0;
  f.net.set_handler(5, [&](const Packet& p) {
    EXPECT_EQ(p.delivered - p.birth, 1U);
    ++received;
  });
  f.net.send(f.net.make_packet(5, 5, PacketType::kPowerRequest, 10));
  f.engine.run_cycles(5);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.net.total_router_stats().flits_forwarded, 0U);
}

TEST(Network, LatencyGrowsWithDistance) {
  NetFixture near_f;
  NetFixture far_f;
  Cycle lat_near = 0;
  Cycle lat_far = 0;
  near_f.net.set_handler(1, [&](const Packet& p) {
    lat_near = p.delivered - p.birth;
  });
  far_f.net.set_handler(15, [&](const Packet& p) {
    lat_far = p.delivered - p.birth;
  });
  near_f.net.send(near_f.net.make_packet(0, 1, PacketType::kMemReadReq));
  far_f.net.send(far_f.net.make_packet(0, 15, PacketType::kMemReadReq));
  near_f.engine.run_cycles(100);
  far_f.engine.run_cycles(100);
  ASSERT_GT(lat_near, 0U);
  ASSERT_GT(lat_far, 0U);
  EXPECT_GT(lat_far, lat_near);
}

TEST(Network, PerSourceDestinationOrderPreservedWithXy) {
  // XY routing + wormhole: packets of the same class between the same pair
  // must arrive in send order.
  NetFixture f;
  std::vector<std::uint32_t> order;
  f.net.set_handler(12, [&](const Packet& p) { order.push_back(p.payload); });
  for (std::uint32_t i = 0; i < 20; ++i) {
    f.net.send(f.net.make_packet(3, 12, PacketType::kMemReadReq, i));
  }
  f.engine.run_cycles(300);
  ASSERT_EQ(order.size(), 20U);
  for (std::uint32_t i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(Network, ManyToOneHotspotAllDelivered) {
  NetFixture f;
  int received = 0;
  const NodeId hotspot = 5;
  f.net.set_handler(hotspot, [&](const Packet&) { ++received; });
  int sent = 0;
  for (NodeId src = 0; src < 16; ++src) {
    if (src == hotspot) continue;
    for (int k = 0; k < 5; ++k) {
      f.net.send(f.net.make_packet(src, hotspot, PacketType::kPowerRequest,
                                   static_cast<std::uint32_t>(k)));
      ++sent;
    }
  }
  f.engine.run_cycles(2000);
  EXPECT_EQ(received, sent);
  EXPECT_TRUE(f.net.idle());
}

TEST(Network, RequestReplyEchoStress) {
  // Every delivery triggers a reply on the other VC class; the network must
  // drain without protocol deadlock.
  NetFixture f;
  int replies = 0;
  for (NodeId n = 0; n < 16; ++n) {
    f.net.set_handler(n, [&, n](const Packet& p) {
      if (p.type == PacketType::kMemReadReq) {
        f.net.send(f.net.make_packet(n, p.src, PacketType::kMemReply));
      } else if (p.type == PacketType::kMemReply) {
        ++replies;
      }
    });
  }
  Rng rng(5);
  int sent = 0;
  for (int k = 0; k < 200; ++k) {
    const auto src = static_cast<NodeId>(rng.below(16));
    auto dst = static_cast<NodeId>(rng.below(16));
    if (src == dst) dst = (dst + 1) % 16;
    f.net.send(f.net.make_packet(src, dst, PacketType::kMemReadReq));
    ++sent;
  }
  f.engine.run_cycles(5000);
  EXPECT_EQ(replies, sent);
  EXPECT_TRUE(f.net.idle());
}

TEST(Network, StatsTrackPowerRequestDeliveries) {
  NetFixture f;
  f.net.set_handler(15, [](const Packet&) {});
  f.net.set_handler(14, [](const Packet&) {});
  f.net.send(f.net.make_packet(0, 15, PacketType::kPowerRequest, 5));
  f.net.send(f.net.make_packet(1, 14, PacketType::kMemReadReq));
  f.engine.run_cycles(100);
  EXPECT_EQ(f.net.stats().packets_delivered, 2U);
  EXPECT_EQ(f.net.stats().power_requests_delivered, 1U);
  EXPECT_EQ(f.net.stats().tampered_power_requests_delivered, 0U);
  EXPECT_GT(f.net.stats().latency_power_req.mean(), 0.0);
}

TEST(Network, MakePacketValidatesNodeIds) {
  NetFixture f;
  EXPECT_THROW(f.net.make_packet(0, 99, PacketType::kMemReadReq),
               std::out_of_range);
  EXPECT_THROW(f.net.make_packet(99, 0, PacketType::kMemReadReq),
               std::out_of_range);
}

TEST(Network, PacketIdsAreUnique) {
  NetFixture f;
  auto a = f.net.make_packet(0, 1, PacketType::kMemReadReq);
  auto b = f.net.make_packet(0, 1, PacketType::kMemReadReq);
  EXPECT_NE(a->id, b->id);
}

TEST(Network, WireSizesFollowTableI) {
  NetFixture f;
  EXPECT_EQ(f.net.make_packet(0, 1, PacketType::kMemReply)->size_flits, 5);
  EXPECT_EQ(f.net.make_packet(0, 1, PacketType::kMemReadReq)->size_flits, 1);
  EXPECT_EQ(f.net.make_packet(0, 1, PacketType::kPowerRequest)->size_flits, 2);
  EXPECT_EQ(f.net.make_packet(0, 1, PacketType::kConfigCmd)->size_flits, 2);
}

}  // namespace
}  // namespace htpb::noc
