#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace htpb::sim {
namespace {

class CountingTickable final : public Tickable {
 public:
  void tick(Cycle now) override {
    ++ticks;
    last = now;
  }
  int ticks = 0;
  Cycle last = 0;
};

TEST(Engine, StartsAtCycleZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0U);
}

TEST(Engine, TickablesTickedOncePerCycle) {
  Engine e;
  CountingTickable t;
  e.add_tickable(&t);
  e.run_cycles(10);
  EXPECT_EQ(t.ticks, 10);
  EXPECT_EQ(t.last, 9U);
  EXPECT_EQ(e.now(), 10U);
}

TEST(Engine, EventsRunBeforeTicksInSameCycle) {
  Engine e;
  std::vector<int> order;
  class Recorder final : public Tickable {
   public:
    explicit Recorder(std::vector<int>& o) : order_(o) {}
    void tick(Cycle) override { order_.push_back(2); }

   private:
    std::vector<int>& order_;
  };
  Recorder r(order);
  e.add_tickable(&r);
  e.schedule_in(0, [&] { order.push_back(1); });
  e.run_cycles(1);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, ScheduleInDelaysCorrectly) {
  Engine e;
  Cycle fired_at = kCycleMax;
  e.schedule_in(5, [&] { fired_at = e.now(); });
  e.run_cycles(10);
  EXPECT_EQ(fired_at, 5U);
}

TEST(Engine, ScheduleAtPastClampsToNow) {
  Engine e;
  e.run_cycles(5);
  Cycle fired_at = kCycleMax;
  e.schedule_at(2, [&] { fired_at = e.now(); });
  e.run_cycles(2);
  EXPECT_EQ(fired_at, 5U);
}

TEST(Engine, RunUntilInclusive) {
  Engine e;
  int fired = 0;
  e.schedule_at(7, [&] { ++fired; });
  e.run_until(7);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 8U);
}

TEST(Engine, ChainedEventsAcrossCycles) {
  Engine e;
  std::vector<Cycle> fires;
  std::function<void()> chain = [&] {
    fires.push_back(e.now());
    if (fires.size() < 4) e.schedule_in(3, chain);
  };
  e.schedule_in(1, chain);
  e.run_cycles(20);
  EXPECT_EQ(fires, (std::vector<Cycle>{1, 4, 7, 10}));
}

TEST(Engine, MultipleTickablesTickInRegistrationOrder) {
  Engine e;
  std::vector<int> order;
  class Tagger final : public Tickable {
   public:
    Tagger(std::vector<int>& o, int tag) : order_(o), tag_(tag) {}
    void tick(Cycle) override { order_.push_back(tag_); }

   private:
    std::vector<int>& order_;
    int tag_;
  };
  Tagger a(order, 1);
  Tagger b(order, 2);
  e.add_tickable(&a);
  e.add_tickable(&b);
  e.run_cycles(2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

}  // namespace
}  // namespace htpb::sim
