#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace htpb::sim {
namespace {

TEST(EventQueue, EmptyByDefault) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0U);
  EXPECT_EQ(q.next_time(), kCycleMax);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreakAtSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, RunAllAtExecutesDueEventsOnly) {
  EventQueue q;
  int ran = 0;
  q.schedule(1, [&] { ++ran; });
  q.schedule(2, [&] { ++ran; });
  q.schedule(3, [&] { ++ran; });
  EXPECT_EQ(q.run_all_at(2), 2U);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.size(), 1U);
  EXPECT_EQ(q.next_time(), 3U);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] {
    order.push_back(1);
    q.schedule(1, [&] { order.push_back(2); });  // same timestamp, runs after
  });
  EXPECT_EQ(q.run_all_at(1), 2U);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  int ran = 0;
  q.schedule(1, [&] { ++ran; });
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(ran, 0);
}

}  // namespace
}  // namespace htpb::sim
