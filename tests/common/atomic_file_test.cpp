// atomic_write_file / read_file contract: the file either holds the full
// new contents or is untouched, temp files never linger, and every error
// names the path with the OS reason.
#include "common/atomic_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

namespace {

namespace fs = std::filesystem;

using htpb::common::atomic_write_file;
using htpb::common::read_file;

class TempDir {
 public:
  TempDir() : path_(fs::current_path() / "atomic_file_tmp") {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }

 private:
  fs::path path_;
};

TEST(AtomicFile, WriteThenReadRoundTrips) {
  const TempDir dir;
  const std::string path = (dir.path() / "out.json").string();
  atomic_write_file(path, "{\"a\": 1}\n");
  EXPECT_EQ(read_file(path), "{\"a\": 1}\n");
}

TEST(AtomicFile, OverwriteReplacesWholeContents) {
  const TempDir dir;
  const std::string path = (dir.path() / "out.json").string();
  atomic_write_file(path, std::string(4096, 'x'));
  atomic_write_file(path, "short");
  // A non-atomic truncate-then-write would leave trailing 'x's on a
  // partial write; rename semantics guarantee all-or-nothing.
  EXPECT_EQ(read_file(path), "short");
}

TEST(AtomicFile, NoTempFileSurvivesAWrite) {
  const TempDir dir;
  const std::string path = (dir.path() / "out.json").string();
  atomic_write_file(path, "data");
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1U);
}

TEST(AtomicFile, WriteIntoMissingDirectoryNamesThePath) {
  const TempDir dir;
  const std::string path = (dir.path() / "no_such_dir" / "out.json").string();
  try {
    atomic_write_file(path, "data");
    FAIL() << "expected atomic_write_file to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out.json"), std::string::npos) << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

TEST(AtomicFile, ReadMissingFileNamesThePath) {
  const TempDir dir;
  const std::string path = (dir.path() / "absent.json").string();
  try {
    (void)read_file(path);
    FAIL() << "expected read_file to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("absent.json"), std::string::npos) << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

TEST(AtomicFile, EmptyContentsAreLegal) {
  const TempDir dir;
  const std::string path = (dir.path() / "empty").string();
  atomic_write_file(path, "");
  EXPECT_EQ(read_file(path), "");
}

}  // namespace
