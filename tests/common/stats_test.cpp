#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace htpb {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0U);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a;
  RunningStat b;
  RunningStat whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i < 20 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.999);
  h.add(5.0);
  h.add(9.999);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.total(), 6U);
  EXPECT_EQ(h.bucket(0), 2U);
  EXPECT_EQ(h.bucket(5), 1U);
  EXPECT_EQ(h.bucket(9), 1U);
  EXPECT_EQ(h.underflow(), 1U);
  EXPECT_EQ(h.overflow(), 1U);
}

TEST(Histogram, PercentileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_LE(h.percentile(0.5), h.percentile(0.9));
  EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(SpanStats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of(std::vector<double>{2.0}), 0.0);
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(correlation(xs, ys), 1.0, 1e-12);
  EXPECT_NEAR(correlation(xs, neg), -1.0, 1e-12);
}

TEST(Correlation, DegenerateCasesReturnZero) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_DOUBLE_EQ(correlation(xs, flat), 0.0);
  const std::vector<double> mismatched = {1, 2};
  EXPECT_DOUBLE_EQ(correlation(xs, mismatched), 0.0);
}

}  // namespace
}  // namespace htpb
