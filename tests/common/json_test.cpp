// The contracts the scenario layer leans on: exact round trips,
// deterministic member order, strict parsing, and the quoting / NaN / Inf
// edge cases of the shared emission helpers.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace htpb::json {
namespace {

TEST(JsonValue, TypedAccessorsAndEquality) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(7).as_double(), 7.0);  // int promotes to double
  EXPECT_THROW((void)Value(7).as_string(), std::runtime_error);
  EXPECT_THROW((void)Value("x").as_int(), std::runtime_error);
  // Int and Double are distinct types even at equal magnitude: the
  // round-trip exactness contract depends on it.
  EXPECT_FALSE(Value(3) == Value(3.0));
  EXPECT_TRUE(Value(3.0) == Value(3.0));
}

TEST(JsonObject, PreservesInsertionOrder) {
  Object o;
  o["zebra"] = Value(1);
  o["alpha"] = Value(2);
  o["mid"] = Value(3);
  const std::string text = dump(Value(o), 0);
  EXPECT_EQ(text, R"({"zebra": 1, "alpha": 2, "mid": 3})");
}

TEST(JsonDump, StringQuotingEdgeCases) {
  EXPECT_EQ(quote("plain"), "\"plain\"");
  EXPECT_EQ(quote("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(quote("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(quote(std::string("nul\x01") + "x"), "\"nul\\u0001x\"");
  // Escaped strings survive a round trip byte for byte.
  const std::string nasty = "q\"b\\c\nd\te\x02\x1f utf8: \xC3\xA9";
  const Value parsed = parse(dump(Value(nasty), 0));
  EXPECT_EQ(parsed.as_string(), nasty);
}

TEST(JsonDump, NanAndInfinityBecomeNull) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "null");
  Object o;
  o["latency"] = Value(std::nan(""));
  EXPECT_EQ(dump(Value(o), 0), R"({"latency": null})");
}

TEST(JsonDump, DoubleFormattingRoundTripsExactly) {
  const double cases[] = {0.0,   -0.0,  0.1,      1.0 / 3.0, 1e-300,
                          1e300, 123.456, 2.2250738585072014e-308,
                          3.0,   -17.0, 0.30000000000000004};
  for (const double d : cases) {
    const std::string text = format_double(d);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), d) << text;
  }
  // Integral doubles keep a ".0" marker so the type survives re-parse.
  EXPECT_EQ(format_double(3.0), "3.0");
  EXPECT_TRUE(parse("3.0").is_double());
  EXPECT_TRUE(parse("3").is_int());
}

TEST(JsonParse, IntegersStayExact) {
  EXPECT_EQ(parse("9007199254740993").as_int(), 9007199254740993LL);
  EXPECT_EQ(parse("-42").as_int(), -42);
  EXPECT_EQ(parse("9223372036854775807").as_int(),
            std::numeric_limits<std::int64_t>::max());
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse(""), std::runtime_error);
  EXPECT_THROW((void)parse("{"), std::runtime_error);
  EXPECT_THROW((void)parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)parse("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW((void)parse("{\"a\": 1} x"), std::runtime_error);
  EXPECT_THROW((void)parse("truthy"), std::runtime_error);
  EXPECT_THROW((void)parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)parse("{\"a\":1,\"a\":2}"), std::runtime_error);
  EXPECT_THROW((void)parse("nan"), std::runtime_error);
}

TEST(JsonParse, RejectsNonRfc8259Numbers) {
  // strtod would happily read all of these; the strict grammar must not.
  EXPECT_THROW((void)parse("+5"), std::runtime_error);
  EXPECT_THROW((void)parse(".5"), std::runtime_error);
  EXPECT_THROW((void)parse("5."), std::runtime_error);
  EXPECT_THROW((void)parse("01"), std::runtime_error);
  EXPECT_THROW((void)parse("-"), std::runtime_error);
  EXPECT_THROW((void)parse("1e"), std::runtime_error);
  EXPECT_THROW((void)parse("1e+"), std::runtime_error);
  EXPECT_THROW((void)parse("0x10"), std::runtime_error);
  // ...while every legal shape still parses.
  EXPECT_EQ(parse("0").as_int(), 0);
  EXPECT_EQ(parse("-0").as_int(), 0);
  EXPECT_DOUBLE_EQ(parse("0.5").as_double(), 0.5);
  EXPECT_DOUBLE_EQ(parse("-1.25e-2").as_double(), -0.0125);
  EXPECT_DOUBLE_EQ(parse("2E+3").as_double(), 2000.0);
}

TEST(JsonParse, RoundTripIsExact) {
  const char* text = R"({
    "name": "fig3",
    "nested": {"flag": true, "none": null, "list": [1, 2.5, "three"]},
    "ratio": 0.1,
    "count": -7
  })";
  const Value v = parse(text);
  EXPECT_EQ(parse(dump(v, 2)), v);
  EXPECT_EQ(parse(dump(v, 0)), v);
  EXPECT_EQ(dump(parse(dump(v, 2)), 2), dump(v, 2));
}

TEST(JsonObjectReader, RejectsUnknownKeys) {
  const Value v = parse(R"({"known": 1, "mystery": 2})");
  ObjectReader reader(v.as_object(), "spec");
  EXPECT_EQ(reader.get_int("known", 0), 1);
  try {
    reader.finish();
    FAIL() << "finish() should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mystery"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("spec"), std::string::npos);
  }
}

// Type confusion at every typed accessor is a thrown runtime_error, never
// a coercion or a crash -- the spec mutation corpus
// (tests/scenario/spec_test.cpp) leans on this at each nesting level.
TEST(JsonObjectReader, TypeConfusionIsACleanError) {
  const Value v =
      parse(R"({"b": 1, "i": true, "d": "x", "s": 3, "o": [1]})");
  ObjectReader reader(v.as_object(), "t");
  EXPECT_THROW((void)reader.get_bool("b", false), std::runtime_error);
  EXPECT_THROW((void)reader.get_int("i", 0), std::runtime_error);
  EXPECT_THROW((void)reader.get_double("d", 0.0), std::runtime_error);
  EXPECT_THROW((void)reader.get_string("s", "?"), std::runtime_error);
  EXPECT_THROW((void)reader.require("o").as_object(), std::runtime_error);
}

TEST(JsonParse, NestingDepthIsGuardedNotACrash) {
  // Reasonable depth round trips...
  std::string text;
  for (int i = 0; i < 64; ++i) text += '[';
  text += '1';
  for (int i = 0; i < 64; ++i) text += ']';
  const Value v = parse(text);
  EXPECT_EQ(parse(dump(v, 0)), v);

  // ...an unbalanced tower is an error, not an overrun...
  text.pop_back();
  EXPECT_THROW((void)parse(text), std::runtime_error);

  // ...and an absurd tower hits the recursion guard as a clean throw
  // instead of blowing the stack (a crafted spec file must not crash
  // htpb_run).
  EXPECT_THROW((void)parse(std::string(100000, '[')), std::runtime_error);
}

TEST(JsonObjectReader, RequireAndFallbacks) {
  const Value v = parse(R"({"a": 2, "s": "x", "b": true, "d": 1.5})");
  ObjectReader reader(v.as_object(), "t");
  EXPECT_EQ(reader.require("a").as_int(), 2);
  EXPECT_EQ(reader.get_string("s", "?"), "x");
  EXPECT_EQ(reader.get_string("absent", "?"), "?");
  EXPECT_EQ(reader.get_bool("b", false), true);
  EXPECT_DOUBLE_EQ(reader.get_double("d", 0.0), 1.5);
  EXPECT_THROW((void)reader.require("missing"), std::runtime_error);
  reader.finish();
}

}  // namespace
}  // namespace htpb::json
