// run_subprocess contract: exit codes and output capture, env plumbing,
// the SIGTERM -> SIGKILL timeout escalation, and exec-failure reporting.
#include "common/subprocess.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace {

namespace fs = std::filesystem;

using htpb::common::run_subprocess;
using htpb::common::SubprocessOptions;
using htpb::common::SubprocessResult;

class TempDir {
 public:
  TempDir() : path_(fs::current_path() / "subprocess_tmp") {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }

 private:
  fs::path path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Subprocess, CapturesStreamsAndExitCode) {
  const TempDir dir;
  SubprocessOptions opts;
  opts.stdout_path = (dir.path() / "out").string();
  opts.stderr_path = (dir.path() / "err").string();
  const SubprocessResult r = run_subprocess(
      {"/bin/sh", "-c", "echo to-stdout; echo to-stderr >&2; exit 3"}, opts);
  EXPECT_FALSE(r.timed_out);
  EXPECT_FALSE(r.signaled);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(slurp(dir.path() / "out"), "to-stdout\n");
  EXPECT_EQ(slurp(dir.path() / "err"), "to-stderr\n");
}

TEST(Subprocess, EnvReachesTheChild) {
  const TempDir dir;
  SubprocessOptions opts;
  opts.env = {{"HTPB_SUBPROCESS_PROBE", "visible"}};
  opts.stdout_path = (dir.path() / "out").string();
  const SubprocessResult r = run_subprocess(
      {"/bin/sh", "-c", "printf %s \"$HTPB_SUBPROCESS_PROBE\""}, opts);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(slurp(dir.path() / "out"), "visible");
}

TEST(Subprocess, TimeoutSendsTermAndReportsTimedOut) {
  SubprocessOptions opts;
  opts.timeout_seconds = 0.2;
  opts.term_grace_seconds = 5.0;
  const SubprocessResult r = run_subprocess({"/bin/sleep", "30"}, opts);
  EXPECT_TRUE(r.timed_out);
  // The kill we sent is a timeout verdict, not a child crash.
  EXPECT_FALSE(r.signaled);
  EXPECT_LT(r.seconds, 4.0);
}

TEST(Subprocess, TermIgnoringChildIsKilledAfterGrace) {
  SubprocessOptions opts;
  opts.timeout_seconds = 0.2;
  opts.term_grace_seconds = 0.3;
  // The hang fault's worst case: SIGTERM is ignored, only the KILL
  // escalation ends the child.
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "trap '' TERM; sleep 30"}, opts);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LT(r.seconds, 10.0);
}

TEST(Subprocess, ChildKilledByItsOwnSignalIsACrash) {
  SubprocessOptions opts;
  const SubprocessResult r =
      run_subprocess({"/bin/sh", "-c", "kill -ABRT $$"}, opts);
  EXPECT_FALSE(r.timed_out);
  EXPECT_TRUE(r.signaled);
  EXPECT_EQ(r.term_signal, SIGABRT);
}

TEST(Subprocess, ExecFailureExitsWith127) {
  const TempDir dir;
  SubprocessOptions opts;
  opts.stderr_path = (dir.path() / "err").string();
  const SubprocessResult r =
      run_subprocess({"/no/such/binary/anywhere"}, opts);
  EXPECT_EQ(r.exit_code, 127);
  EXPECT_NE(slurp(dir.path() / "err").find("exec"), std::string::npos);
}

TEST(Subprocess, EmptyArgvThrows) {
  EXPECT_THROW((void)run_subprocess({}, {}), std::runtime_error);
}

}  // namespace
