#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace htpb {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17U);
  }
  EXPECT_EQ(rng.below(1), 0U);
  EXPECT_EQ(rng.below(0), 0U);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 5);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5U);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialGapPositiveAndMeanReasonable) {
  Rng rng(13);
  const double rate = 0.05;  // expected gap 20 cycles
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const auto g = rng.exponential_gap(rate);
    EXPECT_GE(g, 1U);
    sum += static_cast<double>(g);
  }
  EXPECT_NEAR(sum / kSamples, 20.0, 2.0);
}

TEST(Rng, ExponentialGapZeroRateNeverFires) {
  Rng rng(13);
  EXPECT_EQ(rng.exponential_gap(0.0), ~0ULL);
  EXPECT_EQ(rng.exponential_gap(-1.0), ~0ULL);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(21);
  const auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30U);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30U);
  for (const auto v : sample) EXPECT_LT(v, 100U);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(22);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10U);
}

TEST(Rng, SampleKLargerThanNClamped) {
  Rng rng(23);
  const auto sample = rng.sample_without_replacement(5, 50);
  EXPECT_EQ(sample.size(), 5U);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(77);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(77);
  (void)parent2();  // align with the fork() draw
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child() == parent2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace htpb
