#include "common/bitset.hpp"

#include <gtest/gtest.h>

namespace htpb {
namespace {

TEST(DynamicBitset, SetTestClear) {
  DynamicBitset bs(130);
  EXPECT_EQ(bs.size(), 130U);
  EXPECT_FALSE(bs.any());
  bs.set(0);
  bs.set(63);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(63));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(1));
  EXPECT_EQ(bs.count(), 4U);
  bs.clear(63);
  EXPECT_FALSE(bs.test(63));
  EXPECT_EQ(bs.count(), 3U);
}

TEST(DynamicBitset, SetBitsAscending) {
  DynamicBitset bs(200);
  bs.set(5);
  bs.set(77);
  bs.set(199);
  const auto bits = bs.set_bits();
  ASSERT_EQ(bits.size(), 3U);
  EXPECT_EQ(bits[0], 5U);
  EXPECT_EQ(bits[1], 77U);
  EXPECT_EQ(bits[2], 199U);
}

TEST(DynamicBitset, ClearAll) {
  DynamicBitset bs(64);
  for (std::size_t i = 0; i < 64; i += 2) bs.set(i);
  EXPECT_EQ(bs.count(), 32U);
  bs.clear_all();
  EXPECT_EQ(bs.count(), 0U);
  EXPECT_FALSE(bs.any());
}

TEST(DynamicBitset, IdempotentSet) {
  DynamicBitset bs(10);
  bs.set(3);
  bs.set(3);
  EXPECT_EQ(bs.count(), 1U);
}

}  // namespace
}  // namespace htpb
