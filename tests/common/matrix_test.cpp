#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace htpb {
namespace {

TEST(Matrix, MultiplyKnown) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  Matrix b(3, 2);
  b(0, 0) = 7; b(0, 1) = 8;
  b(1, 0) = 9; b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a(3, 2);
  int v = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) a(r, c) = ++v;
  }
  const Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 2U);
  ASSERT_EQ(t.cols(), 3U);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(t(c, r), a(r, c));
  }
}

TEST(Matrix, VectorMultiply) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  const std::vector<double> x = {5, 6};
  const auto y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(CholeskySolve, Identity) {
  Matrix eye(3, 3);
  for (int i = 0; i < 3; ++i) eye(i, i) = 1.0;
  const std::vector<double> b = {1.0, -2.0, 3.0};
  const auto x = cholesky_solve(eye, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], b[i], 1e-12);
}

TEST(CholeskySolve, KnownSpdSystem) {
  Matrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 3;
  const std::vector<double> b = {10.0, 8.0};
  const auto x = cholesky_solve(a, b);
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 10.0, 1e-10);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 8.0, 1e-10);
}

TEST(CholeskySolve, RejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3 and -1
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_THROW(cholesky_solve(a, b), std::runtime_error);
}

TEST(LeastSquares, RecoversPlantedCoefficients) {
  // y = 3 + 2*x1 - 1.5*x2 with noise-free rows must be recovered exactly.
  Rng rng(99);
  const std::size_t n = 60;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(-5, 5);
    const double x2 = rng.uniform(-5, 5);
    x(i, 0) = 1.0;
    x(i, 1) = x1;
    x(i, 2) = x2;
    y[i] = 3.0 + 2.0 * x1 - 1.5 * x2;
  }
  const auto beta = least_squares(x, y);
  EXPECT_NEAR(beta[0], 3.0, 1e-6);
  EXPECT_NEAR(beta[1], 2.0, 1e-6);
  EXPECT_NEAR(beta[2], -1.5, 1e-6);
}

TEST(LeastSquares, RobustToNoise) {
  Rng rng(123);
  const std::size_t n = 4000;
  Matrix x(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(-1, 1);
    x(i, 0) = 1.0;
    x(i, 1) = x1;
    y[i] = 0.5 + 4.0 * x1 + rng.uniform(-0.1, 0.1);
  }
  const auto beta = least_squares(x, y);
  EXPECT_NEAR(beta[0], 0.5, 0.02);
  EXPECT_NEAR(beta[1], 4.0, 0.02);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  Matrix x(2, 3);
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(least_squares(x, y), std::invalid_argument);
}

TEST(RSquared, PerfectFitIsOne) {
  const std::vector<double> obs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
}

TEST(RSquared, MeanPredictorIsZero) {
  const std::vector<double> obs = {1, 2, 3, 4, 5};
  const std::vector<double> pred(5, 3.0);
  EXPECT_NEAR(r_squared(pred, obs), 0.0, 1e-12);
}

TEST(RSquared, SizeMismatchThrows) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_THROW((void)r_squared(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace htpb
