#include "common/geometry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace htpb {
namespace {

TEST(Geometry, ManhattanDistanceBasics) {
  EXPECT_EQ(manhattan_distance(Coord{0, 0}, Coord{0, 0}), 0);
  EXPECT_EQ(manhattan_distance(Coord{1, 2}, Coord{4, 6}), 7);
  EXPECT_EQ(manhattan_distance(Coord{4, 6}, Coord{1, 2}), 7);
  EXPECT_EQ(manhattan_distance(Coord{-3, 0}, Coord{3, 0}), 6);
}

TEST(Geometry, ManhattanDistanceRealPoints) {
  EXPECT_DOUBLE_EQ(manhattan_distance(PointF{0.5, 0.5}, Coord{2, 2}), 3.0);
  EXPECT_DOUBLE_EQ(manhattan_distance(PointF{1.0, 1.0}, PointF{1.0, 1.0}), 0.0);
}

TEST(MeshGeometry, RowMajorMapping) {
  const MeshGeometry geom(8, 4);
  EXPECT_EQ(geom.node_count(), 32);
  EXPECT_EQ(geom.coord_of(0), (Coord{0, 0}));
  EXPECT_EQ(geom.coord_of(7), (Coord{7, 0}));
  EXPECT_EQ(geom.coord_of(8), (Coord{0, 1}));
  EXPECT_EQ(geom.id_of(Coord{7, 3}), 31U);
  for (NodeId id = 0; id < 32; ++id) {
    EXPECT_EQ(geom.id_of(geom.coord_of(id)), id);
  }
}

TEST(MeshGeometry, Contains) {
  const MeshGeometry geom(4, 4);
  EXPECT_TRUE(geom.contains(Coord{0, 0}));
  EXPECT_TRUE(geom.contains(Coord{3, 3}));
  EXPECT_FALSE(geom.contains(Coord{4, 0}));
  EXPECT_FALSE(geom.contains(Coord{0, -1}));
  EXPECT_TRUE(geom.contains(NodeId{15}));
  EXPECT_FALSE(geom.contains(NodeId{16}));
}

TEST(MeshGeometry, RejectsBadDimensions) {
  EXPECT_THROW(MeshGeometry(0, 4), std::invalid_argument);
  EXPECT_THROW(MeshGeometry(4, -1), std::invalid_argument);
}

TEST(MeshGeometry, CenterAndCorner) {
  EXPECT_EQ(MeshGeometry(8, 8).center(), (Coord{4, 4}));
  EXPECT_EQ(MeshGeometry(16, 16).center(), (Coord{8, 8}));
  EXPECT_EQ(MeshGeometry::corner(), (Coord{0, 0}));
}

TEST(MeshGeometry, NodesByDistanceSortedAndComplete) {
  const MeshGeometry geom(5, 5);
  const auto order = geom.nodes_by_distance(Coord{2, 2});
  ASSERT_EQ(order.size(), 25U);
  EXPECT_EQ(order.front(), geom.id_of(Coord{2, 2}));
  int prev = -1;
  for (const NodeId id : order) {
    const int d = manhattan_distance(geom.coord_of(id), Coord{2, 2});
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(VirtualCenter, MatchesDefinitionSix) {
  // Paper Def. 6: component-wise mean of malicious node coordinates.
  const std::vector<Coord> nodes = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  const PointF omega = virtual_center(nodes);
  EXPECT_DOUBLE_EQ(omega.x, 1.0);
  EXPECT_DOUBLE_EQ(omega.y, 1.0);
}

TEST(VirtualCenter, SingleNode) {
  const std::vector<Coord> nodes = {{5, 7}};
  const PointF omega = virtual_center(nodes);
  EXPECT_DOUBLE_EQ(omega.x, 5.0);
  EXPECT_DOUBLE_EQ(omega.y, 7.0);
}

TEST(VirtualCenter, ThrowsOnEmpty) {
  const std::vector<Coord> nodes;
  EXPECT_THROW((void)virtual_center(nodes), std::invalid_argument);
}

TEST(CenterDistance, MatchesDefinitionSeven) {
  // HTs at (0,0) and (2,2): center (1,1); GM at (4,1) -> rho = 3.
  const std::vector<Coord> nodes = {{0, 0}, {2, 2}};
  EXPECT_DOUBLE_EQ(center_distance(Coord{4, 1}, nodes), 3.0);
}

TEST(PlacementDensity, MatchesDefinitionEight) {
  // Square placement around (1,1): each node is |dx|+|dy| = 2 away.
  const std::vector<Coord> nodes = {{0, 0}, {2, 0}, {0, 2}, {2, 2}};
  EXPECT_DOUBLE_EQ(placement_density(nodes), 2.0);
}

TEST(PlacementDensity, ZeroForCoincidentNodes) {
  const std::vector<Coord> nodes = {{3, 3}, {3, 3}, {3, 3}};
  EXPECT_DOUBLE_EQ(placement_density(nodes), 0.0);
}

TEST(PlacementDensity, TightClusterDenserThanSpread) {
  const std::vector<Coord> tight = {{4, 4}, {4, 5}, {5, 4}, {5, 5}};
  const std::vector<Coord> spread = {{0, 0}, {0, 7}, {7, 0}, {7, 7}};
  // Lower eta == tighter cluster == "higher density" in the paper's terms.
  EXPECT_LT(placement_density(tight), placement_density(spread));
}

}  // namespace
}  // namespace htpb
