// End-to-end defense evaluation: detector catches the attack at the
// manager; the guarded budgeter blunts it; duty-cycled activation trades
// damage for stealth; the flooding baseline is loud where the false-data
// attack is silent.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/campaign.hpp"
#include "core/flooding.hpp"
#include "core/placement.hpp"
#include "power/defense.hpp"
#include "system/manycore_system.hpp"
#include "workload/application.hpp"

namespace htpb::core {
namespace {

CampaignConfig base_config() {
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1500;
  cfg.mix = workload::standard_mixes()[0];
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  cfg.warmup_epochs = 2;
  cfg.measure_epochs = 4;
  return cfg;
}

std::vector<NodeId> gm_cluster(const AttackCampaign& campaign, int m) {
  const MeshGeometry geom(8, 8);
  return clustered_placement(geom, m, geom.coord_of(campaign.gm_node()),
                             campaign.gm_node());
}

TEST(DefenseIntegration, DetectorFlagsVictimsAndAccomplices) {
  CampaignConfig cfg = base_config();
  // The Trojans are active from power-on, so a detector would never see
  // honest traffic from infected paths. Use a mid-run activation instead:
  // warmup runs with the Trojan OFF via toggle (first toggle flips to ON).
  cfg.detector = power::DetectorConfig{};
  cfg.trojan.active = false;       // dormant at power-on
  cfg.toggle_period_epochs = 3;    // flips ON after 3 epochs
  cfg.measure_epochs = 6;
  AttackCampaign campaign(cfg);
  const auto out = campaign.run(gm_cluster(campaign, 8));
  ASSERT_TRUE(out.detection.has_value());
  // Victims' requests collapsed 10x after the flip: flagged.
  EXPECT_GT(out.detection->flagged_low.size(), 10U);
  // Attacker cores' requests jumped 8x: flagged too.
  EXPECT_GT(out.detection->flagged_high.size(), 10U);
  // The flip lands after epoch 3; confirmation takes confirm_epochs more.
  EXPECT_GE(out.detection->first_flag_epoch, 3);
  EXPECT_GT(out.detection->epochs_observed, 0U);
}

TEST(DefenseIntegration, DetectorQuietWithoutAttack) {
  CampaignConfig cfg = base_config();
  cfg.detector = power::DetectorConfig{};
  // One dormant Trojan so the detector is attached (detector is attached
  // on attacked runs only), but the OFF signal keeps it harmless.
  cfg.trojan.active = false;
  AttackCampaign clean(cfg);
  const auto out = clean.run(gm_cluster(clean, 2));
  ASSERT_TRUE(out.detection.has_value());
  EXPECT_TRUE(out.detection->flagged_low.empty())
      << "false positives on clean traffic";
  EXPECT_TRUE(out.detection->flagged_high.empty());
  EXPECT_EQ(out.detection->first_flag_epoch, -1);
}

TEST(DefenseIntegration, NoDetectorMeansNoReport) {
  CampaignConfig cfg = base_config();
  AttackCampaign campaign(cfg);
  const auto out = campaign.run(gm_cluster(campaign, 4));
  EXPECT_FALSE(out.detection.has_value());
}

TEST(DefenseIntegration, GuardedBudgeterBluntsTheAttack) {
  CampaignConfig cfg = base_config();
  AttackCampaign undefended(cfg);
  const auto attacked = undefended.run(gm_cluster(undefended, 8));

  CampaignConfig guarded_cfg = base_config();
  guarded_cfg.system.guard_requests = true;
  AttackCampaign defended(guarded_cfg);
  const auto mitigated = defended.run(gm_cluster(defended, 8));

  ASSERT_TRUE(attacked.q_valid);
  ASSERT_TRUE(mitigated.q_valid);
  EXPECT_LT(mitigated.q, attacked.q * 0.75)
      << "mitigation should remove a large share of the attack effect";
  // Victims keep substantially more of their performance under the guard.
  double worst_plain = 1.0;
  double worst_guarded = 1.0;
  for (const auto& app : attacked.apps) {
    if (!app.attacker) worst_plain = std::min(worst_plain, app.change);
  }
  for (const auto& app : mitigated.apps) {
    if (!app.attacker) worst_guarded = std::min(worst_guarded, app.change);
  }
  EXPECT_GT(worst_guarded, worst_plain + 0.1);
}

TEST(DefenseIntegration, DutyCycledAttackScalesWithDuty) {
  // ON/OFF alternation every 2 epochs => roughly half the epochs attack.
  CampaignConfig cfg = base_config();
  cfg.toggle_period_epochs = 2;
  cfg.warmup_epochs = 0;
  cfg.measure_epochs = 8;
  AttackCampaign duty(cfg);
  const auto duty_out = duty.run(gm_cluster(duty, 8));

  CampaignConfig full_cfg = base_config();
  full_cfg.warmup_epochs = 0;
  full_cfg.measure_epochs = 8;
  AttackCampaign full(full_cfg);
  const auto full_out = full.run(gm_cluster(full, 8));

  EXPECT_LT(duty_out.infection_measured, full_out.infection_measured * 0.8);
  EXPECT_GT(duty_out.infection_measured, 0.2);
  EXPECT_LT(duty_out.q, full_out.q);
  EXPECT_GT(duty_out.q, 1.0);
}

TEST(DefenseIntegration, FloodingBaselineIsLoud) {
  // The flooding Trojan damages the victim too -- but announces itself
  // with a massive traffic anomaly, unlike the false-data attack.
  auto apps = workload::instantiate_mix(workload::standard_mixes()[0], 16);
  workload::map_threads_round_robin(apps, 64);
  system::SystemConfig sys_cfg = system::SystemConfig::with_size(64);
  sys_cfg.epoch_cycles = 1500;

  // Clean run.
  system::ManyCoreSystem clean(sys_cfg, apps);
  clean.run_epochs(5);
  const auto clean_gm_flits =
      clean.network().router(clean.gm_node()).stats().flits_forwarded;

  // Flooded run: 4 flooders aimed at the manager.
  system::ManyCoreSystem flooded(sys_cfg, apps);
  std::vector<std::unique_ptr<FloodingAttacker>> flooders;
  for (NodeId src : {NodeId{0}, NodeId{7}, NodeId{56}, NodeId{63}}) {
    flooders.push_back(std::make_unique<FloodingAttacker>(
        &flooded.network(), src, flooded.gm_node(), 0.15, 99 + src));
    flooded.engine().add_tickable(flooders.back().get());
  }
  flooded.run_epochs(5);
  const auto flooded_gm_flits =
      flooded.network().router(flooded.gm_node()).stats().flits_forwarded;

  std::uint64_t injected = 0;
  for (const auto& f : flooders) injected += f->packets_injected();
  EXPECT_GT(injected, 1000U);
  // The hotspot anomaly at the victim's router is unmistakable -- the
  // utilization counter a flooding detector would watch. (Chip-wide flit
  // totals barely move: the flood throttles legitimate traffic.)
  EXPECT_GT(static_cast<double>(flooded_gm_flits),
            1.5 * static_cast<double>(clean_gm_flits));
}

TEST(DefenseIntegration, FloodingCanBeDeactivated) {
  sim::Engine engine;
  MeshGeometry geom(4, 4);
  noc::NocConfig noc_cfg;
  noc::MeshNetwork net(engine, geom, noc_cfg);
  for (NodeId n = 0; n < 16; ++n) net.set_handler(n, [](const noc::Packet&) {});
  FloodingAttacker flooder(&net, 0, 15, 0.5, 7);
  engine.add_tickable(&flooder);
  engine.run_cycles(100);
  const auto mid = flooder.packets_injected();
  EXPECT_NEAR(static_cast<double>(mid), 50.0, 2.0);
  flooder.set_active(false);
  engine.run_cycles(100);
  EXPECT_EQ(flooder.packets_injected(), mid);
}

}  // namespace
}  // namespace htpb::core
