#include "core/infection.hpp"

#include <gtest/gtest.h>

#include "core/placement.hpp"

namespace htpb::core {
namespace {

TEST(InfectionAnalyzer, SingleHtAtManagerCoversEverything) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  const InfectionAnalyzer analyzer(geom, gm);
  // Every XY route ends at the manager's router.
  const std::vector<NodeId> hts = {gm};
  EXPECT_DOUBLE_EQ(analyzer.predicted_rate(hts), 1.0);
}

TEST(InfectionAnalyzer, HtAtSourceOnlyCoversThatSource) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  const InfectionAnalyzer analyzer(geom, gm);
  const NodeId corner = geom.id_of({7, 7});
  // A Trojan in the far corner's router sees only that node's requests
  // (no other XY path to the center crosses the corner).
  const std::vector<NodeId> hts = {corner};
  EXPECT_DOUBLE_EQ(analyzer.predicted_rate(hts), 1.0 / 63.0);
}

TEST(InfectionAnalyzer, NeighborsOfManagerCoverQuadrants) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  const InfectionAnalyzer analyzer(geom, gm);
  // XY routes to the manager approach along column x=4 after the X leg.
  // A Trojan just north of the manager at (4,3) covers every source with
  // y < 4 (they finish their Y leg through it): 8*4 = 32 sources... but
  // sources on column 4 north also count. Verify against brute force.
  const NodeId north = geom.id_of({4, 3});
  int expected = 0;
  for (NodeId s = 0; s < 64; ++s) {
    if (s == gm) continue;
    if (analyzer.route_covers(s, north)) ++expected;
  }
  EXPECT_EQ(analyzer.coverage_of(north), expected);
  EXPECT_DOUBLE_EQ(analyzer.predicted_rate(std::vector<NodeId>{north}),
                   expected / 63.0);
  EXPECT_EQ(expected, 32);  // the whole northern half routes through (4,3)
}

TEST(InfectionAnalyzer, ExplicitSourceSubset) {
  const MeshGeometry geom(4, 4);
  const NodeId gm = 0;
  const InfectionAnalyzer analyzer(geom, gm);
  const std::vector<NodeId> hts = {1};  // (1,0)
  // Sources on row 0 east of x=1 pass through (1,0) under XY; node 5 does
  // not (its x-leg runs on row 1).
  const std::vector<NodeId> split = {2, 5};
  EXPECT_DOUBLE_EQ(analyzer.predicted_rate(hts, split), 0.5);
}

TEST(InfectionAnalyzer, MoreHtsNeverLowerRate) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  const InfectionAnalyzer analyzer(geom, gm);
  Rng rng(17);
  std::vector<NodeId> hts;
  double prev = 0.0;
  for (int i = 0; i < 20; ++i) {
    NodeId candidate;
    do {
      candidate = static_cast<NodeId>(rng.below(64));
    } while (candidate == gm);
    hts.push_back(candidate);
    const double rate = analyzer.predicted_rate(hts);
    EXPECT_GE(rate, prev);
    prev = rate;
  }
}

TEST(InfectionAnalyzer, TargetPlacementHitsRequestedRates) {
  const MeshGeometry geom(16, 16);
  const NodeId gm = geom.id_of({8, 8});
  const InfectionAnalyzer analyzer(geom, gm);
  Rng rng(23);
  for (const double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto hts = analyzer.placement_for_target(target, 64, rng);
    ASSERT_FALSE(hts.empty());
    const double rate = analyzer.predicted_rate(hts);
    EXPECT_GE(rate, target - 0.02);
    EXPECT_LE(rate, target + 0.15) << "wild overshoot for target " << target;
    for (const NodeId ht : hts) EXPECT_NE(ht, gm);
  }
}

TEST(InfectionAnalyzer, TargetPlacementRespectsHtBudget) {
  const MeshGeometry geom(8, 8);
  const InfectionAnalyzer analyzer(geom, geom.id_of({4, 4}));
  Rng rng(29);
  const auto hts = analyzer.placement_for_target(0.99, 3, rng);
  EXPECT_LE(hts.size(), 3U);
}

TEST(InfectionAnalyzer, CenterClusterBeatsCornerCluster) {
  // The Fig. 4 ordering, predicted analytically: center > random > corner.
  const MeshGeometry geom(16, 16);
  const NodeId gm = geom.id_of({8, 8});
  const InfectionAnalyzer analyzer(geom, gm);
  Rng rng(31);
  const int m = 16;
  const auto center = clustered_placement(geom, m, geom.center(), gm);
  const auto corner = clustered_placement(geom, m, {0, 0}, gm);
  const auto random = random_placement(geom, m, rng, gm);
  const double rate_center = analyzer.predicted_rate(center);
  const double rate_corner = analyzer.predicted_rate(corner);
  const double rate_random = analyzer.predicted_rate(random);
  EXPECT_GT(rate_center, rate_random);
  EXPECT_GT(rate_random, rate_corner);
}

}  // namespace
}  // namespace htpb::core
