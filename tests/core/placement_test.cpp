#include "core/placement.hpp"

#include <gtest/gtest.h>

#include <set>

namespace htpb::core {
namespace {

TEST(RandomPlacement, DistinctNodesExcludingManager) {
  const MeshGeometry geom(8, 8);
  Rng rng(5);
  const NodeId gm = 36;
  for (int trial = 0; trial < 50; ++trial) {
    const auto nodes = random_placement(geom, 10, rng, gm);
    ASSERT_EQ(nodes.size(), 10U);
    std::set<NodeId> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), 10U);
    EXPECT_EQ(unique.count(gm), 0U);
  }
}

TEST(RandomPlacement, RejectsBadCounts) {
  const MeshGeometry geom(4, 4);
  Rng rng(1);
  EXPECT_THROW((void)random_placement(geom, 0, rng, 0), std::invalid_argument);
  EXPECT_THROW((void)random_placement(geom, 16, rng, 0), std::invalid_argument);
}

TEST(ClusteredPlacement, TakesNearestNodes) {
  const MeshGeometry geom(8, 8);
  const auto nodes = clustered_placement(geom, 5, {0, 0}, 63);
  ASSERT_EQ(nodes.size(), 5U);
  // The five nodes closest to the corner: (0,0),(1,0),(0,1),(2,0)/(1,1)/(0,2)...
  for (const NodeId n : nodes) {
    EXPECT_LE(manhattan_distance(geom.coord_of(n), Coord{0, 0}), 2);
  }
}

TEST(ClusteredPlacement, SkipsExcludedManager) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  const auto nodes = clustered_placement(geom, 4, {4, 4}, gm);
  for (const NodeId n : nodes) EXPECT_NE(n, gm);
}

TEST(DescribePlacement, AnnotatesRhoEta) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  const auto p = describe_placement(
      geom, gm, {geom.id_of({0, 0}), geom.id_of({2, 2})});
  EXPECT_EQ(p.m(), 2);
  EXPECT_DOUBLE_EQ(p.rho, 6.0);  // center (1,1) vs (4,4)
  EXPECT_DOUBLE_EQ(p.eta, 2.0);
}

TEST(CandidatePlacements, DiverseDescriptors) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  Rng rng(7);
  const auto candidates = candidate_placements(geom, gm, 6, 64, rng);
  ASSERT_EQ(candidates.size(), 64U);
  double min_rho = 1e9;
  double max_rho = 0.0;
  double min_eta = 1e9;
  double max_eta = 0.0;
  for (const auto& c : candidates) {
    ASSERT_EQ(c.nodes.size(), 6U);
    std::set<NodeId> unique(c.nodes.begin(), c.nodes.end());
    EXPECT_EQ(unique.size(), 6U);
    EXPECT_EQ(unique.count(gm), 0U);
    min_rho = std::min(min_rho, c.rho);
    max_rho = std::max(max_rho, c.rho);
    min_eta = std::min(min_eta, c.eta);
    max_eta = std::max(max_eta, c.eta);
  }
  // The candidate generator must span the descriptor plane for the
  // optimizer's enumeration to be meaningful.
  EXPECT_LT(min_rho, 2.0);
  EXPECT_GT(max_rho, 5.0);
  EXPECT_LT(min_eta, 1.5);
  EXPECT_GT(max_eta, 3.0);
}

}  // namespace
}  // namespace htpb::core
