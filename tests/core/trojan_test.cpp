// Unit tests of the Trojan's comparator/trigger semantics (Fig. 2a) and
// in-network behaviour on a small mesh.
#include "core/trojan.hpp"

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace htpb::core {
namespace {

noc::Packet config_packet(NodeId gm, std::vector<NodeId> attackers,
                          bool active = true, double scale = 0.10,
                          double boost = 8.0) {
  TrojanConfig cfg;
  cfg.active = active;
  cfg.victim_scale = scale;
  cfg.attacker_boost = boost;
  cfg.global_manager = gm;
  cfg.attacker_agents = std::move(attackers);
  noc::Packet pkt;
  encode_config(cfg, pkt);
  return pkt;
}

noc::Packet power_request(NodeId src, NodeId dst, std::uint32_t mw) {
  noc::Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.type = noc::PacketType::kPowerRequest;
  pkt.payload = mw;
  return pkt;
}

TEST(HardwareTrojan, DormantUntilConfigured) {
  HardwareTrojan ht(5);
  EXPECT_FALSE(ht.configured());
  EXPECT_FALSE(ht.active());
  auto req = power_request(1, 9, 1000);
  ht.inspect(req, 5, 0);
  EXPECT_EQ(req.payload, 1000U);
  EXPECT_FALSE(req.tampered);
}

TEST(HardwareTrojan, LatchesConfiguration) {
  HardwareTrojan ht(5);
  auto cfg = config_packet(9, {2, 3});
  ht.inspect(cfg, 5, 0);
  EXPECT_TRUE(ht.configured());
  EXPECT_TRUE(ht.active());
  EXPECT_EQ(ht.global_manager(), 9U);
  EXPECT_EQ(ht.attacker_agents(), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(ht.stats().config_packets_seen, 1U);
}

TEST(HardwareTrojan, AttenuatesVictimRequestsToManager) {
  HardwareTrojan ht(5);
  auto cfg = config_packet(9, {2});
  ht.inspect(cfg, 5, 0);
  auto req = power_request(1, 9, 2000);
  ht.inspect(req, 5, 1);
  EXPECT_TRUE(req.tampered);
  EXPECT_EQ(req.payload, 200U);
  EXPECT_EQ(req.original_payload, 2000U);
  EXPECT_EQ(ht.stats().victim_requests_modified, 1U);
}

TEST(HardwareTrojan, BoostsAttackerRequests) {
  HardwareTrojan ht(5);
  auto cfg = config_packet(9, {2});
  ht.inspect(cfg, 5, 0);
  auto req = power_request(2, 9, 1000);
  ht.inspect(req, 5, 1);
  EXPECT_FALSE(req.tampered);  // boosting is not an infection
  EXPECT_TRUE(req.boosted);
  EXPECT_EQ(req.payload, 8000U);
  EXPECT_EQ(ht.stats().attacker_requests_boosted, 1U);
}

TEST(HardwareTrojan, IgnoresRequestsToOtherDestinations) {
  HardwareTrojan ht(5);
  auto cfg = config_packet(9, {2});
  ht.inspect(cfg, 5, 0);
  auto req = power_request(1, 8, 2000);  // not the manager
  ht.inspect(req, 5, 1);
  EXPECT_FALSE(req.tampered);
  EXPECT_EQ(req.payload, 2000U);
}

TEST(HardwareTrojan, IgnoresNonPowerTraffic) {
  HardwareTrojan ht(5);
  auto cfg = config_packet(9, {});
  ht.inspect(cfg, 5, 0);
  noc::Packet mem;
  mem.src = 1;
  mem.dst = 9;
  mem.type = noc::PacketType::kMemReadReq;
  mem.payload = 1234;
  ht.inspect(mem, 5, 1);
  EXPECT_EQ(mem.payload, 1234U);
  EXPECT_FALSE(mem.tampered);
}

TEST(HardwareTrojan, DeactivationStopsTampering) {
  HardwareTrojan ht(5);
  auto on = config_packet(9, {2}, /*active=*/true);
  ht.inspect(on, 5, 0);
  auto off = config_packet(9, {2}, /*active=*/false);
  ht.inspect(off, 5, 1);
  EXPECT_FALSE(ht.active());
  auto req = power_request(1, 9, 2000);
  ht.inspect(req, 5, 2);
  EXPECT_FALSE(req.tampered);
}

TEST(HardwareTrojan, ReActivationResumesAttack) {
  // The paper's duty-cycled activation: ON -> OFF -> ON.
  HardwareTrojan ht(5);
  auto on = config_packet(9, {2});
  ht.inspect(on, 5, 0);
  auto off = config_packet(9, {2}, false);
  ht.inspect(off, 5, 1);
  auto on2 = config_packet(9, {2});
  ht.inspect(on2, 5, 2);
  auto req = power_request(1, 9, 2000);
  ht.inspect(req, 5, 3);
  EXPECT_TRUE(req.tampered);
}

TEST(HardwareTrojan, MalformedConfigIgnored) {
  HardwareTrojan ht(5);
  noc::Packet junk;
  junk.type = noc::PacketType::kConfigCmd;  // no options at all
  junk.payload = 0xFFFFFFFF;
  ht.inspect(junk, 5, 0);
  EXPECT_FALSE(ht.configured());
  EXPECT_EQ(ht.stats().config_packets_seen, 0U);
}

TEST(HardwareTrojan, DoubleTamperingPreventedAcrossRouters) {
  // Two Trojans on the same path: the second sees the tampered flag and
  // leaves the (already shrunken) value alone.
  HardwareTrojan first(5);
  HardwareTrojan second(6);
  auto cfg1 = config_packet(9, {2});
  auto cfg2 = config_packet(9, {2});
  first.inspect(cfg1, 5, 0);
  second.inspect(cfg2, 6, 0);
  auto req = power_request(1, 9, 2000);
  first.inspect(req, 5, 1);
  second.inspect(req, 6, 2);
  EXPECT_EQ(req.payload, 200U);  // scaled once, not twice
  EXPECT_EQ(second.stats().victim_requests_modified, 0U);
}

TEST(HardwareTrojan, MinimumOneMilliwattAfterScaling) {
  HardwareTrojan ht(5);
  auto cfg = config_packet(9, {}, true, 0.01, 8.0);
  ht.inspect(cfg, 5, 0);
  auto req = power_request(1, 9, 10);  // 10 mW * 0.01 -> would round to 0
  ht.inspect(req, 5, 1);
  EXPECT_EQ(req.payload, 1U);
}

TEST(HardwareTrojan, EndToEndOverMesh) {
  // Trojan in a transit router modifies a request in flight; a request
  // routed around it stays clean.
  sim::Engine engine;
  MeshGeometry geom(4, 1);  // 0 - 1 - 2 - 3 in a row
  noc::NocConfig cfg;
  noc::MeshNetwork net(engine, geom, cfg);
  HardwareTrojan ht(1);
  net.add_inspector(1, &ht);

  std::vector<noc::Packet> received;
  net.set_handler(3, [&](const noc::Packet& p) { received.push_back(p); });

  // Configure via an in-band packet crossing router 1.
  auto cfg_pkt = net.make_packet(0, 3, noc::PacketType::kConfigCmd);
  TrojanConfig tc;
  tc.global_manager = 3;
  tc.attacker_agents = {0};
  tc.victim_scale = 0.25;
  encode_config(tc, *cfg_pkt);
  net.send(std::move(cfg_pkt));
  engine.run_cycles(40);
  ASSERT_TRUE(ht.active());

  // Victim request from node 1's neighbourhood crossing the Trojan.
  net.send(net.make_packet(1, 3, noc::PacketType::kPowerRequest, 1000));
  // Request from node 2: its XY path (2 -> 3) avoids router 1.
  net.send(net.make_packet(2, 3, noc::PacketType::kPowerRequest, 1000));
  engine.run_cycles(60);

  ASSERT_EQ(received.size(), 3U);  // config + 2 requests
  std::uint32_t tampered_count = 0;
  for (const auto& p : received) {
    if (p.type != noc::PacketType::kPowerRequest) continue;
    if (p.src == 1) {
      EXPECT_TRUE(p.tampered);
      EXPECT_EQ(p.payload, 250U);
      ++tampered_count;
    } else {
      EXPECT_FALSE(p.tampered);
      EXPECT_EQ(p.payload, 1000U);
    }
  }
  EXPECT_EQ(tampered_count, 1U);
}

}  // namespace
}  // namespace htpb::core
