// ParallelSweepRunner's contract: a sweep is a pure function of
// (config, task inputs, seed) -- the thread count must never leak into
// the results, and ordering must follow the task index, not completion.
#include "core/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/attack_model.hpp"
#include "core/optimizer.hpp"
#include "core/placement.hpp"

namespace htpb::core {
namespace {

CampaignConfig small_config() {
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1000;
  cfg.mix = workload::standard_mixes().at(0);
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  cfg.warmup_epochs = 1;
  cfg.measure_epochs = 2;
  return cfg;
}

TEST(ParallelSweepRunner, MapPreservesIndexOrder) {
  const ParallelSweepRunner runner(4);
  const auto out =
      runner.map(64, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(out.size(), 64U);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(ParallelSweepRunner, StreamRngDependsOnlyOnSeedAndIndex) {
  Rng a = ParallelSweepRunner::stream_rng(42, 7);
  Rng b = ParallelSweepRunner::stream_rng(42, 7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
  Rng c = ParallelSweepRunner::stream_rng(42, 8);
  Rng d = ParallelSweepRunner::stream_rng(43, 7);
  EXPECT_NE(ParallelSweepRunner::stream_rng(42, 7)(), c());
  EXPECT_NE(ParallelSweepRunner::stream_rng(42, 7)(), d());
}

TEST(ParallelSweepRunner, MapStreamsIsThreadCountInvariant) {
  const auto draw = [](std::size_t, Rng& rng) { return rng(); };
  const auto serial = ParallelSweepRunner(1).map_streams(40, 99, draw);
  const auto parallel = ParallelSweepRunner(8).map_streams(40, 99, draw);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelSweepRunner, ExceptionsPropagate) {
  const ParallelSweepRunner runner(4);
  EXPECT_THROW(runner.map(16,
                          [](std::size_t i) -> int {
                            if (i == 9) throw std::runtime_error("task 9");
                            return 0;
                          }),
               std::runtime_error);
}

// The acceptance bar of this subsystem: a placement sweep over full
// campaign evaluations returns bit-identical outcomes at 1 and N threads.
TEST(ParallelSweepRunner, PlacementSweepBitIdenticalAcrossThreadCounts) {
  const CampaignConfig cfg = small_config();
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const AttackCampaign probe(cfg);

  Rng rng(2026);
  std::vector<Placement> placements;
  for (int m = 1; m <= 4; ++m) {
    auto cands = candidate_placements(geom, probe.gm_node(), m, 2, rng);
    placements.insert(placements.end(), cands.begin(), cands.end());
  }

  const auto one = ParallelSweepRunner(1).run_placements(cfg, placements);
  const auto many = ParallelSweepRunner(4).run_placements(cfg, placements);

  ASSERT_EQ(one.size(), placements.size());
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].infection_measured, many[i].infection_measured) << i;
    EXPECT_EQ(one[i].infection_predicted, many[i].infection_predicted) << i;
    EXPECT_EQ(one[i].q_valid, many[i].q_valid) << i;
    EXPECT_EQ(one[i].q, many[i].q) << i;
    EXPECT_EQ(one[i].geometry.rho, many[i].geometry.rho) << i;
    EXPECT_EQ(one[i].geometry.eta, many[i].geometry.eta) << i;
    EXPECT_EQ(one[i].geometry.m, many[i].geometry.m) << i;
    ASSERT_EQ(one[i].apps.size(), many[i].apps.size()) << i;
    for (std::size_t a = 0; a < one[i].apps.size(); ++a) {
      EXPECT_EQ(one[i].apps[a].theta_baseline, many[i].apps[a].theta_baseline);
      EXPECT_EQ(one[i].apps[a].theta_attacked, many[i].apps[a].theta_attacked);
      EXPECT_EQ(one[i].apps[a].change, many[i].apps[a].change);
      EXPECT_EQ(one[i].apps[a].phi, many[i].apps[a].phi);
    }
  }
}

TEST(ParallelSweepRunner, OptimizerEnumerationThreadCountInvariant) {
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of(geom.center());

  // A fitted model is not needed to exercise determinism: hand-build one
  // from synthetic samples so predict() is well-defined.
  std::vector<AttackSample> samples;
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    AttackSample s;
    s.rho = rng.uniform(0.5, 4.0);
    s.eta = rng.uniform();
    s.m = 1 + static_cast<int>(rng.below(8));
    s.phi_victims = {0.4, 0.6};
    s.phi_attackers = {0.2};
    s.q = 1.0 + 0.3 * s.eta * s.m - 0.05 * s.rho;
    samples.push_back(std::move(s));
  }
  AttackEffectModel model;
  model.fit(samples);

  const PlacementOptimizer opt(geom, gm, &model, {0.4, 0.6}, {0.2});
  const auto one =
      opt.optimize_top_k(6, 10, 5, 77, ParallelSweepRunner(1));
  const auto many =
      opt.optimize_top_k(6, 10, 5, 77, ParallelSweepRunner(6));
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].predicted_q, many[i].predicted_q) << i;
    EXPECT_EQ(one[i].placement.nodes, many[i].placement.nodes) << i;
  }
}

}  // namespace
}  // namespace htpb::core
