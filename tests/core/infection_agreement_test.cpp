// Cross-validation property: the analytic XY path-coverage infection
// estimator must agree with the full flit-level simulation across mesh
// sizes, manager placements and Trojan layouts. This is the link that
// lets the benches use cheap analytics to target infection rates.
#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/infection.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

namespace htpb::core {
namespace {

struct AgreementParam {
  int nodes;
  system::GmPlacement gm;
  enum class Layout { kCenter, kRandom, kCorner, kTargeted } layout;
  int hts;
  std::uint64_t seed;
};

class InfectionAgreementTest
    : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(InfectionAgreementTest, AnalyticMatchesSimulated) {
  const AgreementParam p = GetParam();
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(p.nodes);
  cfg.system.epoch_cycles = 1500;
  cfg.system.gm_placement = p.gm;
  cfg.mix = std::nullopt;
  cfg.warmup_epochs = 1;
  cfg.measure_epochs = 3;
  AttackCampaign campaign(cfg);
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const InfectionAnalyzer analyzer(geom, campaign.gm_node());

  Rng rng(p.seed);
  std::vector<NodeId> hts;
  switch (p.layout) {
    case AgreementParam::Layout::kCenter:
      hts = clustered_placement(geom, p.hts, geom.center(),
                                campaign.gm_node());
      break;
    case AgreementParam::Layout::kRandom:
      hts = random_placement(geom, p.hts, rng, campaign.gm_node());
      break;
    case AgreementParam::Layout::kCorner:
      hts = clustered_placement(geom, p.hts, {0, 0}, campaign.gm_node());
      break;
    case AgreementParam::Layout::kTargeted:
      hts = analyzer.placement_for_target(0.6, p.hts, rng);
      break;
  }

  const double analytic = analyzer.predicted_rate(hts);
  const double simulated = campaign.run_infection_only(hts);
  // The simulated rate includes warm-up effects (configuration packets
  // still propagating during the first measured epoch on big meshes), so
  // allow a modest tolerance.
  EXPECT_NEAR(simulated, analytic, 0.08)
      << "nodes=" << p.nodes << " hts=" << p.hts;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InfectionAgreementTest,
    ::testing::Values(
        AgreementParam{64, system::GmPlacement::kCenter,
                       AgreementParam::Layout::kCenter, 4, 1},
        AgreementParam{64, system::GmPlacement::kCenter,
                       AgreementParam::Layout::kRandom, 8, 2},
        AgreementParam{64, system::GmPlacement::kCenter,
                       AgreementParam::Layout::kCorner, 6, 3},
        AgreementParam{64, system::GmPlacement::kCorner,
                       AgreementParam::Layout::kRandom, 8, 4},
        AgreementParam{64, system::GmPlacement::kCenter,
                       AgreementParam::Layout::kTargeted, 16, 5},
        AgreementParam{128, system::GmPlacement::kCenter,
                       AgreementParam::Layout::kRandom, 12, 6},
        AgreementParam{128, system::GmPlacement::kCorner,
                       AgreementParam::Layout::kCenter, 8, 7},
        AgreementParam{256, system::GmPlacement::kCenter,
                       AgreementParam::Layout::kRandom, 20, 8},
        AgreementParam{256, system::GmPlacement::kCenter,
                       AgreementParam::Layout::kTargeted, 32, 9}));

}  // namespace
}  // namespace htpb::core
