// End-to-end attack experiments: the paper's core claims on a 64-node chip.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "core/infection.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

namespace htpb::core {
namespace {

CampaignConfig fast_config(int mix_index = 0) {
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1500;
  cfg.mix = workload::standard_mixes().at(static_cast<std::size_t>(mix_index));
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  cfg.warmup_epochs = 2;
  cfg.measure_epochs = 4;
  return cfg;
}

TEST(AttackCampaign, NoTrojansMeansNoEffect) {
  AttackCampaign campaign(fast_config());
  const auto out = campaign.run({});
  EXPECT_DOUBLE_EQ(out.infection_measured, 0.0);
  ASSERT_TRUE(out.q_valid);
  // Identical seed and no tampering: attacked run == baseline run exactly.
  EXPECT_NEAR(out.q, 1.0, 1e-9);
  for (const auto& app : out.apps) EXPECT_NEAR(app.change, 1.0, 1e-9);
}

TEST(AttackCampaign, TrojansNearManagerFlipTheAllocation) {
  AttackCampaign campaign(fast_config());
  const MeshGeometry geom(8, 8);
  const auto hts = clustered_placement(
      geom, 8, geom.coord_of(campaign.gm_node()), campaign.gm_node());
  const auto out = campaign.run(hts);

  EXPECT_GT(out.infection_measured, 0.9);
  EXPECT_NEAR(out.infection_measured, out.infection_predicted, 0.1);
  ASSERT_TRUE(out.q_valid);
  EXPECT_GT(out.q, 1.5);
  for (const auto& app : out.apps) {
    if (app.attacker) {
      EXPECT_GE(app.change, 0.98) << app.name;
    } else {
      EXPECT_LT(app.change, 0.7) << app.name;
    }
  }
  EXPECT_GT(out.trojan_totals.victim_requests_modified, 0U);
  EXPECT_GT(out.trojan_totals.attacker_requests_boosted, 0U);
  EXPECT_EQ(out.geometry.m, 8);
}

TEST(AttackCampaign, QGrowsWithInfectionRate) {
  AttackCampaign campaign(fast_config());
  const MeshGeometry geom(8, 8);
  const InfectionAnalyzer analyzer(geom, campaign.gm_node());
  Rng rng(3);
  double prev_q = 0.0;
  double prev_infection = -1.0;
  for (const double target : {0.25, 0.55, 0.95}) {
    const auto hts = analyzer.placement_for_target(target, 32, rng);
    const auto out = campaign.run(hts);
    EXPECT_GT(out.infection_measured, prev_infection);
    EXPECT_GT(out.q, prev_q * 0.98) << "Q not (weakly) increasing";
    prev_q = out.q;
    prev_infection = out.infection_measured;
  }
  EXPECT_GT(prev_q, 1.5);
}

TEST(AttackCampaign, DeactivatedTrojansAreHarmless) {
  CampaignConfig cfg = fast_config();
  cfg.trojan.active = false;  // broadcast carries the OFF signal
  AttackCampaign campaign(cfg);
  const MeshGeometry geom(8, 8);
  const auto hts = clustered_placement(
      geom, 8, geom.coord_of(campaign.gm_node()), campaign.gm_node());
  const auto out = campaign.run(hts);
  EXPECT_DOUBLE_EQ(out.infection_measured, 0.0);
  // The configuration broadcast itself perturbs packet interleaving a
  // little, so the run is not bit-identical to the baseline -- but a
  // dormant Trojan must have no systematic effect.
  EXPECT_NEAR(out.q, 1.0, 0.05);
  EXPECT_EQ(out.trojan_totals.victim_requests_modified, 0U);
}

TEST(AttackCampaign, InfectionOnlyModeCoversFigThreeSetup) {
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1500;
  cfg.mix = std::nullopt;  // uniform single-app workload
  cfg.warmup_epochs = 1;
  cfg.measure_epochs = 3;
  AttackCampaign campaign(cfg);
  const MeshGeometry geom(8, 8);
  const auto near_gm = clustered_placement(
      geom, 6, geom.coord_of(campaign.gm_node()), campaign.gm_node());
  const double infected = campaign.run_infection_only(near_gm);
  EXPECT_GT(infected, 0.5);
  const double clean = campaign.run_infection_only({});
  EXPECT_DOUBLE_EQ(clean, 0.0);
}

TEST(AttackCampaign, CornerManagerSeesHigherInfectionThanCenter) {
  // Fig. 3's second claim, on the simulator rather than the analyzer.
  Rng rng(7);
  const MeshGeometry geom(8, 8);
  auto run_with_gm = [&](system::GmPlacement place) {
    CampaignConfig cfg;
    cfg.system = system::SystemConfig::with_size(64);
    cfg.system.epoch_cycles = 1500;
    cfg.system.gm_placement = place;
    cfg.mix = std::nullopt;
    cfg.warmup_epochs = 1;
    cfg.measure_epochs = 3;
    AttackCampaign campaign(cfg);
    double sum = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      Rng r(seed + 100);
      const auto hts = random_placement(geom, 12, r, campaign.gm_node());
      sum += campaign.run_infection_only(hts);
    }
    return sum / 3.0;
  };
  const double center = run_with_gm(system::GmPlacement::kCenter);
  const double corner = run_with_gm(system::GmPlacement::kCorner);
  EXPECT_GT(corner, center);
}

TEST(AttackCampaign, BaselinePhiExposesSensitivitySpread) {
  AttackCampaign campaign(fast_config());
  const auto& phis = campaign.baseline_phi();
  ASSERT_EQ(phis.size(), 4U);
  // mix-1: blackscholes (victim index 2) must dominate canneal (index 1).
  EXPECT_GT(phis[2], phis[1]);
}

TEST(AttackCampaign, MoreAppsThanCoresRejected) {
  CampaignConfig cfg = fast_config();
  cfg.system.width = 2;
  cfg.system.height = 1;
  EXPECT_THROW(AttackCampaign{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace htpb::core
