#include "core/trojan_config.hpp"

#include <gtest/gtest.h>

namespace htpb::core {
namespace {

TEST(TrojanConfigCodec, RoundTrip) {
  TrojanConfig cfg;
  cfg.active = true;
  cfg.attenuate_victims = true;
  cfg.boost_attackers = false;
  cfg.victim_scale = 0.10;
  cfg.attacker_boost = 8.0;
  cfg.global_manager = 136;
  cfg.attacker_agents = {3, 77, 200};

  noc::Packet pkt;
  encode_config(cfg, pkt);
  EXPECT_EQ(pkt.type, noc::PacketType::kConfigCmd);

  const auto decoded = decode_config(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->active);
  EXPECT_TRUE(decoded->attenuate_victims);
  EXPECT_FALSE(decoded->boost_attackers);
  EXPECT_NEAR(decoded->victim_scale, 0.10, 0.005);
  EXPECT_NEAR(decoded->attacker_boost, 8.0, 0.01);
  EXPECT_EQ(decoded->global_manager, 136U);
  EXPECT_EQ(decoded->attacker_agents, (std::vector<NodeId>{3, 77, 200}));
}

TEST(TrojanConfigCodec, DeactivationFrame) {
  TrojanConfig cfg;
  cfg.active = false;
  cfg.global_manager = 1;
  noc::Packet pkt;
  encode_config(cfg, pkt);
  const auto decoded = decode_config(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->active);
}

TEST(TrojanConfigCodec, ScaleQuantizedToPercent) {
  TrojanConfig cfg;
  cfg.victim_scale = 0.333;
  cfg.global_manager = 0;
  noc::Packet pkt;
  encode_config(cfg, pkt);
  EXPECT_NEAR(decode_config(pkt)->victim_scale, 0.33, 1e-9);
}

TEST(TrojanConfigCodec, RejectsWrongType) {
  noc::Packet pkt;
  pkt.type = noc::PacketType::kPowerRequest;
  pkt.options = {1, 2};
  EXPECT_FALSE(decode_config(pkt).has_value());
}

TEST(TrojanConfigCodec, RejectsTruncatedFrame) {
  noc::Packet pkt;
  pkt.type = noc::PacketType::kConfigCmd;
  pkt.options.clear();  // missing the manager id
  EXPECT_FALSE(decode_config(pkt).has_value());
}

TEST(TrojanConfigCodec, EmptyAttackerListAllowed) {
  TrojanConfig cfg;
  cfg.global_manager = 4;
  cfg.attacker_agents.clear();
  noc::Packet pkt;
  encode_config(cfg, pkt);
  const auto decoded = decode_config(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->attacker_agents.empty());
}

TEST(TrojanConfigCodec, ExtremeValuesClamped) {
  TrojanConfig cfg;
  cfg.victim_scale = 9.0;      // > 255%
  cfg.attacker_boost = 1e9;    // > 65535%
  cfg.global_manager = 0;
  noc::Packet pkt;
  encode_config(cfg, pkt);
  const auto decoded = decode_config(pkt);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_LE(decoded->victim_scale, 2.56);
  EXPECT_LE(decoded->attacker_boost, 655.36);
}

}  // namespace
}  // namespace htpb::core
