// The contract this PR exists for: defense sweeps (detector configured)
// run through the thread pool with outcomes -- per-placement
// DetectorReports included -- bit-identical at 1..N threads, and every
// placement's detection result is independent of what else is in the
// batch (the cross-placement state leak of the old shared-detector
// wiring). Plus DefenseSweep's reduction itself.
#include "core/defense_sweep.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/campaign.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

namespace htpb::core {
namespace {

CampaignConfig defended_config() {
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1000;
  cfg.mix = workload::standard_mixes().at(0);
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  // Mid-run activation: the detector earns honest history, then the
  // Trojans wake up -- so reports are non-trivial (flags fire).
  cfg.trojan.active = false;
  cfg.toggle_period_epochs = 2;
  cfg.warmup_epochs = 1;
  cfg.measure_epochs = 4;
  cfg.detector = power::DetectorConfig{};
  return cfg;
}

std::vector<std::vector<NodeId>> test_placements(const CampaignConfig& cfg) {
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const AttackCampaign probe(cfg);
  const NodeId gm = probe.gm_node();
  return {
      clustered_placement(geom, 8, geom.coord_of(gm), gm),
      clustered_placement(geom, 4, MeshGeometry::corner(), gm),
      clustered_placement(geom, 6, Coord{2, 5}, gm),
  };
}

void expect_outcomes_identical(const CampaignOutcome& a,
                               const CampaignOutcome& b,
                               const std::string& context) {
  EXPECT_EQ(a.infection_measured, b.infection_measured) << context;
  EXPECT_EQ(a.infection_predicted, b.infection_predicted) << context;
  EXPECT_EQ(a.q_valid, b.q_valid) << context;
  EXPECT_EQ(a.q, b.q) << context;
  ASSERT_EQ(a.apps.size(), b.apps.size()) << context;
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].theta_baseline, b.apps[i].theta_baseline) << context;
    EXPECT_EQ(a.apps[i].theta_attacked, b.apps[i].theta_attacked) << context;
    EXPECT_EQ(a.apps[i].change, b.apps[i].change) << context;
    EXPECT_EQ(a.apps[i].phi, b.apps[i].phi) << context;
  }
  ASSERT_EQ(a.detection.has_value(), b.detection.has_value()) << context;
  if (a.detection.has_value()) {
    EXPECT_EQ(*a.detection, *b.detection) << context;
  }
}

// Acceptance bar: detector-equipped sweeps go through the pool (the
// serial fallback is gone) and return bit-identical outcomes, detection
// reports included, at 1, 2 and 8 threads.
TEST(DefenseSweepDeterminism, BitIdenticalAtOneTwoEightThreads) {
  const CampaignConfig cfg = defended_config();
  const auto placements = test_placements(cfg);

  const auto one = ParallelSweepRunner(1).run_node_sets(cfg, placements);
  const auto two = ParallelSweepRunner(2).run_node_sets(cfg, placements);
  const auto eight = ParallelSweepRunner(8).run_node_sets(cfg, placements);

  ASSERT_EQ(one.size(), placements.size());
  ASSERT_EQ(two.size(), placements.size());
  ASSERT_EQ(eight.size(), placements.size());
  bool any_flag = false;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const std::string ctx = "placement " + std::to_string(i);
    // Every attacked run must have owned a detector and surfaced it.
    ASSERT_TRUE(one[i].detection.has_value()) << ctx;
    any_flag = any_flag || one[i].detection->any();
    expect_outcomes_identical(one[i], two[i], ctx + " (1 vs 2 threads)");
    expect_outcomes_identical(one[i], eight[i], ctx + " (1 vs 8 threads)");
  }
  // The equality above must not be vacuous: the GM-adjacent cluster
  // fires the detector.
  EXPECT_TRUE(any_flag);
}

// Regression test for the exact leak being fixed: one shared detector
// accumulated EWMA history and cumulative flags across placements, so a
// placement's report depended on its position in the batch. With owned
// per-run detectors, a placement evaluated alone, in a batch, or in a
// permuted batch reports the same thing.
TEST(DefenseSweepDeterminism, DetectionIndependentOfBatchAndOrder) {
  const CampaignConfig cfg = defended_config();
  const auto placements = test_placements(cfg);
  const ParallelSweepRunner runner(2);

  const auto batch = runner.run_node_sets(cfg, placements);

  // Each placement alone.
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const std::vector<std::vector<NodeId>> solo = {placements[i]};
    const auto alone = runner.run_node_sets(cfg, solo);
    ASSERT_EQ(alone.size(), 1U);
    expect_outcomes_identical(batch[i], alone[0],
                              "placement " + std::to_string(i) +
                                  " alone vs in batch");
  }

  // Reversed batch order.
  std::vector<std::vector<NodeId>> reversed(placements.rbegin(),
                                            placements.rend());
  const auto rev = runner.run_node_sets(cfg, reversed);
  ASSERT_EQ(rev.size(), placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    expect_outcomes_identical(batch[i], rev[placements.size() - 1 - i],
                              "placement " + std::to_string(i) +
                                  " under batch permutation");
  }
}

TEST(DefenseSweep, CurveIsThreadCountInvariant) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = defended_config();
  sweep_cfg.base.detector.reset();
  power::DetectorConfig tight;
  tight.low_ratio = 0.6;
  tight.high_ratio = 1.6;
  power::DetectorConfig loose;
  loose.low_ratio = 0.2;
  loose.high_ratio = 5.0;
  sweep_cfg.detectors = {tight, loose};
  sweep_cfg.placements = test_placements(sweep_cfg.base);
  sweep_cfg.placements.pop_back();  // 2x2 cells keep the test fast
  const DefenseSweep sweep(sweep_cfg);

  const auto serial = sweep.run(ParallelSweepRunner(1));
  const auto parallel = sweep.run(ParallelSweepRunner(8));

  ASSERT_EQ(serial.size(), 2U);
  ASSERT_EQ(parallel.size(), 2U);
  for (std::size_t d = 0; d < serial.size(); ++d) {
    EXPECT_EQ(serial[d].detection_rate, parallel[d].detection_rate) << d;
    EXPECT_EQ(serial[d].victim_flag_rate, parallel[d].victim_flag_rate) << d;
    EXPECT_EQ(serial[d].attacker_flag_rate, parallel[d].attacker_flag_rate)
        << d;
    EXPECT_EQ(serial[d].false_positive_rate, parallel[d].false_positive_rate)
        << d;
    EXPECT_EQ(serial[d].mean_detection_latency,
              parallel[d].mean_detection_latency)
        << d;
    EXPECT_EQ(serial[d].mean_q_plain, parallel[d].mean_q_plain) << d;
    EXPECT_EQ(serial[d].mean_q_guarded, parallel[d].mean_q_guarded) << d;
    ASSERT_EQ(serial[d].cells.size(), parallel[d].cells.size()) << d;
    for (std::size_t p = 0; p < serial[d].cells.size(); ++p) {
      expect_outcomes_identical(serial[d].cells[p].outcome,
                                parallel[d].cells[p].outcome,
                                "cell " + std::to_string(d) + "," +
                                    std::to_string(p));
    }
  }
}

TEST(DefenseSweep, ReducesToSensibleRatesAndCurveShape) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = defended_config();
  sweep_cfg.base.detector.reset();
  power::DetectorConfig tight;
  tight.low_ratio = 0.6;
  tight.high_ratio = 1.6;
  power::DetectorConfig blind;  // band so loose a 10x/8x excursion fits
  blind.low_ratio = 0.05;
  blind.high_ratio = 20.0;
  sweep_cfg.detectors = {tight, blind};
  sweep_cfg.placements = {test_placements(sweep_cfg.base).front()};
  const auto curve = DefenseSweep(sweep_cfg).run(ParallelSweepRunner(4));

  ASSERT_EQ(curve.size(), 2U);
  for (const auto& pt : curve) {
    ASSERT_EQ(pt.cells.size(), 1U);
    ASSERT_TRUE(pt.cells[0].outcome.detection.has_value());
    EXPECT_GE(pt.detection_rate, 0.0);
    EXPECT_LE(pt.detection_rate, 1.0);
    EXPECT_GE(pt.false_positive_rate, 0.0);
    EXPECT_LE(pt.false_positive_rate, 1.0);
  }
  // The tight band catches the GM-adjacent cluster; the blind band lets
  // the whole excursion through (detection needs a band the Trojan's
  // factors actually cross).
  EXPECT_GT(curve[0].detection_rate, 0.0);
  EXPECT_GE(curve[0].mean_detection_latency, 0.0);
  EXPECT_EQ(curve[1].detection_rate, 0.0);
  EXPECT_EQ(curve[1].mean_detection_latency, -1.0);
  // The guard arm ran and produced a valid mean Q.
  EXPECT_GT(curve[0].mean_q_guarded, 0.0);
}

// The record-once/replay-many refactor contract: the sweep's cells --
// outcomes AND detection reports -- are bit-identical to the pre-refactor
// detection arm, which re-simulated every (detector, placement) cell with
// its own in-simulation detector. Reproduced inline here as the reference.
TEST(DefenseSweep, MatchesPerCellResimulation) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = defended_config();
  sweep_cfg.base.detector.reset();
  power::DetectorConfig tight;
  tight.low_ratio = 0.6;
  tight.high_ratio = 1.6;
  power::DetectorConfig cohort;
  cohort.kind = power::DetectorKind::kCohortMedian;
  sweep_cfg.detectors = {tight, cohort};
  sweep_cfg.placements = test_placements(sweep_cfg.base);
  sweep_cfg.placements.pop_back();
  sweep_cfg.evaluate_guard = false;  // unchanged by the refactor
  const ParallelSweepRunner runner(4);

  const auto curve = DefenseSweep(sweep_cfg).run(runner);
  ASSERT_EQ(curve.size(), sweep_cfg.detectors.size());

  // Pre-refactor detection arm: one re-simulation per cell.
  CampaignConfig detect_cfg = sweep_cfg.base;
  detect_cfg.detector.reset();
  AttackCampaign master(detect_cfg);
  master.prime_baseline();
  for (std::size_t d = 0; d < sweep_cfg.detectors.size(); ++d) {
    for (std::size_t p = 0; p < sweep_cfg.placements.size(); ++p) {
      AttackCampaign clone(master);
      clone.set_detector(sweep_cfg.detectors[d]);
      const CampaignOutcome reference = clone.run(sweep_cfg.placements[p]);
      expect_outcomes_identical(curve[d].cells[p].outcome, reference,
                                "cell " + std::to_string(d) + "," +
                                    std::to_string(p));
    }
    // Pre-refactor clean arm: one re-simulation per operating point.
    CampaignConfig clean_cfg = sweep_cfg.base;
    clean_cfg.detector = sweep_cfg.detectors[d];
    clean_cfg.trojan.active = false;
    clean_cfg.toggle_period_epochs = 0;
    AttackCampaign clean(clean_cfg);
    const auto clean_report =
        clean.run_detection_only(sweep_cfg.placements.front());
    ASSERT_TRUE(clean_report.has_value());
    int monitored = 0;
    for (const auto& app : master.apps()) {
      monitored += static_cast<int>(app.cores.size());
    }
    EXPECT_EQ(curve[d].false_positive_rate,
              static_cast<double>(clean_report->unique_flagged()) / monitored);
  }
}

// Regression for the detection-rate double count: rates are fractions of
// distinct flagged cores and can never exceed 1, even when duty-cycle
// swings land a core in both flag lists.
TEST(DefenseSweep, DetectionRateIsAFractionOfDistinctCores) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = defended_config();
  sweep_cfg.base.detector.reset();
  // A band so tight the duty-cycled Trojan's ON and OFF phases both leave
  // it -- the dual-flag (low AND high) scenario that used to double count.
  power::DetectorConfig paranoid;
  paranoid.low_ratio = 0.95;
  paranoid.high_ratio = 1.05;
  paranoid.confirm_epochs = 1;
  sweep_cfg.detectors = {paranoid};
  sweep_cfg.placements = {test_placements(sweep_cfg.base).front()};
  sweep_cfg.evaluate_guard = false;
  const auto curve = DefenseSweep(sweep_cfg).run(ParallelSweepRunner(2));

  ASSERT_EQ(curve.size(), 1U);
  ASSERT_TRUE(curve[0].cells[0].outcome.detection.has_value());
  const power::DetectorReport& rep = *curve[0].cells[0].outcome.detection;
  // The scenario is live: at least one core sits in both lists.
  std::size_t dual = 0;
  for (const NodeId n : rep.flagged_low) {
    for (const NodeId m : rep.flagged_high) {
      if (n == m) ++dual;
    }
  }
  EXPECT_GT(dual, 0U);
  EXPECT_LT(rep.unique_flagged(),
            rep.flagged_low.size() + rep.flagged_high.size());
  EXPECT_LE(curve[0].detection_rate, 1.0);
  EXPECT_GT(curve[0].detection_rate, 0.0);
}

// -------------------------------------------------------- response axis

// The axis is opt-in: a sweep that never asked for responses must keep
// the locked O(placements) simulation shape and an empty tradeoff list.
TEST(DefenseSweep, ResponseAxisOffByDefault) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = defended_config();
  sweep_cfg.base.detector.reset();
  sweep_cfg.detectors = {power::DetectorConfig{}};
  sweep_cfg.placements = {test_placements(sweep_cfg.base).front()};
  sweep_cfg.evaluate_guard = false;
  const auto curve = DefenseSweep(sweep_cfg).run(ParallelSweepRunner(2));
  ASSERT_EQ(curve.size(), 1U);
  EXPECT_TRUE(curve[0].responses.empty());
}

TEST(DefenseSweep, ResponseAxisReportsRecoveryTradeoffs) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = defended_config();
  sweep_cfg.base.detector.reset();
  power::DetectorConfig tight;
  tight.low_ratio = 0.6;
  tight.high_ratio = 1.6;
  sweep_cfg.detectors = {tight};
  sweep_cfg.placements = {test_placements(sweep_cfg.base).front()};
  sweep_cfg.evaluate_guard = false;
  sweep_cfg.responses = {power::ResponseKind::kQuarantine,
                         power::ResponseKind::kThrottle,
                         power::ResponseKind::kMigrate};
  const auto curve = DefenseSweep(sweep_cfg).run(ParallelSweepRunner(4));

  ASSERT_EQ(curve.size(), 1U);
  ASSERT_EQ(curve[0].responses.size(), 3U);
  for (std::size_t r = 0; r < 3; ++r) {
    const ResponseCurvePoint& rp = curve[0].responses[r];
    EXPECT_EQ(rp.kind, sweep_cfg.responses[r]);
    // The tight band flags the GM-adjacent cluster, so every policy
    // engages and restores a measurable share of the victims' grants.
    EXPECT_GT(rp.mean_sanctioned, 0.0) << r;
    EXPECT_GE(rp.mean_collateral, 0.0) << r;
    EXPECT_GT(rp.mean_victim_grant_recovery, 0.0) << r;
  }
  // Quarantine starves the flagged accomplices outright: residual Q must
  // come down from the undefended attack effect.
  EXPECT_LT(curve[0].responses[0].mean_q, curve[0].mean_q_plain);
  // Migrate re-places once per triggered run; the in-place policies never
  // migrate.
  EXPECT_EQ(curve[0].responses[0].mean_migrations, 0.0);
  EXPECT_EQ(curve[0].responses[1].mean_migrations, 0.0);
  EXPECT_EQ(curve[0].responses[2].mean_migrations, 1.0);
}

TEST(DefenseSweep, ResponseAxisIsThreadCountInvariant) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = defended_config();
  sweep_cfg.base.detector.reset();
  sweep_cfg.detectors = {power::DetectorConfig{}};
  sweep_cfg.placements = test_placements(sweep_cfg.base);
  sweep_cfg.placements.pop_back();
  sweep_cfg.evaluate_guard = false;
  sweep_cfg.responses = {power::ResponseKind::kQuarantine,
                         power::ResponseKind::kThrottle};
  const DefenseSweep sweep(sweep_cfg);

  const auto serial = sweep.run(ParallelSweepRunner(1));
  const auto parallel = sweep.run(ParallelSweepRunner(8));

  ASSERT_EQ(serial.size(), 1U);
  ASSERT_EQ(parallel.size(), 1U);
  ASSERT_EQ(serial[0].responses.size(), 2U);
  ASSERT_EQ(parallel[0].responses.size(), 2U);
  for (std::size_t r = 0; r < 2; ++r) {
    const ResponseCurvePoint& a = serial[0].responses[r];
    const ResponseCurvePoint& b = parallel[0].responses[r];
    EXPECT_EQ(a.kind, b.kind) << r;
    EXPECT_EQ(a.mean_q, b.mean_q) << r;
    EXPECT_EQ(a.mean_sanctioned, b.mean_sanctioned) << r;
    EXPECT_EQ(a.mean_collateral, b.mean_collateral) << r;
    EXPECT_EQ(a.mean_victim_grant_recovery, b.mean_victim_grant_recovery)
        << r;
    EXPECT_EQ(a.mean_epochs_to_recovery, b.mean_epochs_to_recovery) << r;
    EXPECT_EQ(a.mean_migrations, b.mean_migrations) << r;
  }
}

TEST(DefenseSweep, RejectsEmptyAxes) {
  DefenseSweepConfig no_detectors;
  no_detectors.base = defended_config();
  no_detectors.placements = {{NodeId{1}}};
  EXPECT_THROW(DefenseSweep{no_detectors}, std::invalid_argument);

  DefenseSweepConfig no_placements;
  no_placements.base = defended_config();
  no_placements.detectors = {power::DetectorConfig{}};
  EXPECT_THROW(DefenseSweep{no_placements}, std::invalid_argument);
}

}  // namespace
}  // namespace htpb::core
