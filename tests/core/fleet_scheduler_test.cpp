// FleetScheduler state machine, driven by /bin/sh workers that misbehave
// on cue (keyed off the HTPB_FLEET_ATTEMPT env the scheduler sets):
// retry-on-crash, quarantine-on-corrupt, timeout escalation, fail-fast on
// clean nonzero exits, resume semantics and the spec-fingerprint guard.
#include "core/fleet_scheduler.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"

namespace {

namespace fs = std::filesystem;

using htpb::core::FleetCell;
using htpb::core::FleetConfig;
using htpb::core::FleetReport;
using htpb::core::FleetScheduler;

class TempDir {
 public:
  TempDir() : path_(fs::current_path() / "fleet_scheduler_tmp") {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }

 private:
  fs::path path_;
};

/// A worker whose behaviour is the given shell script; $1 = cell spec
/// path, $2 = result path, $HTPB_FLEET_ATTEMPT = 1-based attempt.
FleetConfig config_with_script(const TempDir& dir, const std::string& script) {
  FleetConfig cfg;
  cfg.run_dir = (dir.path() / "run").string();
  cfg.shards = 2;
  cfg.max_attempts = 3;
  cfg.backoff_base_seconds = 0.01;
  cfg.backoff_max_seconds = 0.02;
  cfg.worker_command = [script](const std::string& spec_path,
                                const std::string& result_path) {
    return std::vector<std::string>{"/bin/sh", "-c", script,
                                    "sh",      spec_path, result_path};
  };
  return cfg;
}

std::vector<FleetCell> three_cells() {
  return {FleetCell{"c000-a", "{\"cell\": 0}\n"},
          FleetCell{"c001-b", "{\"cell\": 1}\n"},
          FleetCell{"c002-c", "{\"cell\": 2}\n"}};
}

TEST(FleetScheduler, AllCellsSucceedFirstAttempt) {
  const TempDir dir;
  FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
  const FleetReport report = scheduler.run("test", "fp", three_cells());
  EXPECT_EQ(report.done, 3);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.resumed, 0);
  EXPECT_EQ(report.attempts, 3);
  for (const auto& outcome : report.cells) {
    EXPECT_TRUE(outcome.done) << outcome.id;
    EXPECT_EQ(outcome.attempts, 1) << outcome.id;
  }
  // Results hold the specs verbatim; statuses say done.
  EXPECT_EQ(htpb::common::read_file(scheduler.run_dir().result_path("c001-b")),
            "{\"cell\": 1}\n");
  const auto status = scheduler.run_dir().load_status("c001-b");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, "done");
}

TEST(FleetScheduler, CrashingWorkerIsRetriedUntilItSucceeds) {
  const TempDir dir;
  FleetScheduler scheduler(config_with_script(
      dir,
      "if [ \"$HTPB_FLEET_ATTEMPT\" -lt 3 ]; then kill -ABRT $$; fi; "
      "cp \"$1\" \"$2\""));
  const FleetReport report =
      scheduler.run("test", "fp", {FleetCell{"c000-a", "{\"cell\": 0}\n"}});
  EXPECT_EQ(report.done, 1);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.cells[0].attempts, 3);
}

TEST(FleetScheduler, CrashEveryAttemptFailsWithCrashReason) {
  const TempDir dir;
  FleetScheduler scheduler(config_with_script(
      dir, "echo dying >&2; kill -ABRT $$"));
  const FleetReport report =
      scheduler.run("test", "fp", {FleetCell{"c000-a", "{\"cell\": 0}\n"}});
  EXPECT_EQ(report.failed, 1);
  EXPECT_EQ(report.cells[0].attempts, 3);
  EXPECT_EQ(report.cells[0].fail_reason, "crash");
  // The stderr tail of the last attempt rides along for the merge's
  // failures section.
  EXPECT_NE(report.cells[0].last_error.find("dying"), std::string::npos)
      << report.cells[0].last_error;
}

TEST(FleetScheduler, CorruptOutputIsQuarantinedThenRetried) {
  const TempDir dir;
  FleetScheduler scheduler(config_with_script(
      dir,
      "if [ \"$HTPB_FLEET_ATTEMPT\" -lt 2 ]; then "
      "printf '{\"bad\":' > \"$2\"; exit 0; fi; cp \"$1\" \"$2\""));
  const FleetReport report =
      scheduler.run("test", "fp", {FleetCell{"c000-a", "{\"cell\": 0}\n"}});
  EXPECT_EQ(report.done, 1);
  EXPECT_EQ(report.cells[0].attempts, 2);
  // The torn attempt-1 artifact is preserved in quarantine/.
  const std::string q = scheduler.run_dir().quarantine_path("c000-a", 1);
  ASSERT_TRUE(fs::exists(q));
  EXPECT_EQ(htpb::common::read_file(q), "{\"bad\":");
  // ... and the live result is the good attempt's.
  EXPECT_EQ(htpb::common::read_file(scheduler.run_dir().result_path("c000-a")),
            "{\"cell\": 0}\n");
}

TEST(FleetScheduler, HangingWorkerTimesOutAndRetries) {
  const TempDir dir;
  FleetConfig cfg = config_with_script(
      dir,
      "if [ \"$HTPB_FLEET_ATTEMPT\" -lt 2 ]; then sleep 30; fi; "
      "cp \"$1\" \"$2\"");
  cfg.timeout_seconds = 0.3;
  cfg.term_grace_seconds = 0.2;
  FleetScheduler scheduler(cfg);
  const FleetReport report =
      scheduler.run("test", "fp", {FleetCell{"c000-a", "{\"cell\": 0}\n"}});
  EXPECT_EQ(report.done, 1);
  EXPECT_EQ(report.cells[0].attempts, 2);
}

TEST(FleetScheduler, CleanNonzeroExitFailsFastWithoutRetry) {
  const TempDir dir;
  FleetScheduler scheduler(
      config_with_script(dir, "echo boom >&2; exit 4"));
  const FleetReport report =
      scheduler.run("test", "fp", {FleetCell{"c000-a", "{\"cell\": 0}\n"}});
  EXPECT_EQ(report.failed, 1);
  // A worker that REPORTS an error is deterministic; one attempt only.
  EXPECT_EQ(report.cells[0].attempts, 1);
  EXPECT_EQ(report.cells[0].fail_reason, "error");
  EXPECT_NE(report.cells[0].last_error.find("exit code 4"),
            std::string::npos);
  EXPECT_NE(report.cells[0].last_error.find("boom"), std::string::npos);
}

TEST(FleetScheduler, SecondRunResumesDoneCellsWithoutWorkers) {
  const TempDir dir;
  {
    FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
    scheduler.run("test", "fp", three_cells());
  }
  // The resumed run's worker would fail loudly -- it must never launch.
  FleetScheduler scheduler(config_with_script(dir, "exit 9"));
  const FleetReport report = scheduler.run("test", "fp", three_cells());
  EXPECT_EQ(report.done, 3);
  EXPECT_EQ(report.resumed, 3);
  EXPECT_EQ(report.attempts, 0);
}

TEST(FleetScheduler, ChangedCellSpecRerunsThatCellOnly) {
  const TempDir dir;
  {
    FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
    scheduler.run("test", "fp", three_cells());
  }
  auto cells = three_cells();
  cells[1].spec_text = "{\"cell\": 1, \"changed\": true}\n";
  FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
  const FleetReport report = scheduler.run("test", "fp", cells);
  EXPECT_EQ(report.done, 3);
  EXPECT_EQ(report.resumed, 2);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_FALSE(report.cells[1].resumed);
}

TEST(FleetScheduler, TornDoneArtifactIsRerunNotTrusted) {
  const TempDir dir;
  {
    FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
    scheduler.run("test", "fp", three_cells());
  }
  // Corrupt one result behind the status's back (a kill mid-rewrite).
  htpb::common::atomic_write_file(
      (dir.path() / "run" / "results" / "c002-c.json").string(), "{\"to");
  FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
  const FleetReport report = scheduler.run("test", "fp", three_cells());
  EXPECT_EQ(report.done, 3);
  EXPECT_EQ(report.resumed, 2);
  EXPECT_EQ(report.cells[2].attempts, 1);
  EXPECT_EQ(htpb::common::read_file(scheduler.run_dir().result_path("c002-c")),
            "{\"cell\": 2}\n");
}

TEST(FleetScheduler, DifferentSpecFingerprintIsRefused) {
  const TempDir dir;
  {
    FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
    scheduler.run("test", "fp-one", three_cells());
  }
  FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
  EXPECT_THROW(scheduler.run("test", "fp-two", three_cells()),
               std::runtime_error);
}

TEST(FleetScheduler, NoResumeRerunsEverythingEvenAcrossSpecs) {
  const TempDir dir;
  {
    FleetScheduler scheduler(config_with_script(dir, "cp \"$1\" \"$2\""));
    scheduler.run("test", "fp-one", three_cells());
  }
  FleetConfig cfg = config_with_script(dir, "cp \"$1\" \"$2\"");
  cfg.resume = false;
  FleetScheduler scheduler(cfg);
  const FleetReport report = scheduler.run("test", "fp-two", three_cells());
  EXPECT_EQ(report.done, 3);
  EXPECT_EQ(report.resumed, 0);
  EXPECT_EQ(report.attempts, 3);
}

}  // namespace
