#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/area_power.hpp"

namespace htpb::core {
namespace {

TEST(PerformanceChange, DefinitionTwo) {
  EXPECT_DOUBLE_EQ(performance_change(3.0, 4.0), 0.75);
  EXPECT_DOUBLE_EQ(performance_change(5.0, 4.0), 1.25);
  EXPECT_DOUBLE_EQ(performance_change(0.0, 4.0), 0.0);
  // Zero baseline: neutral by definition.
  EXPECT_DOUBLE_EQ(performance_change(3.0, 0.0), 1.0);
}

TEST(AttackEffectQ, DefinitionThreeHandComputed) {
  // V = 2 victims, A = 1 attacker. Q = (V * sum(Theta_a)) / (A * sum(Theta_v)).
  const std::vector<double> attackers = {1.2};
  const std::vector<double> victims = {0.6, 0.9};
  EXPECT_DOUBLE_EQ(attack_effect_q(attackers, victims),
                   (2.0 * 1.2) / (1.0 * 1.5));
}

TEST(AttackEffectQ, NeutralWhenNothingChanges) {
  const std::vector<double> ones_a = {1.0, 1.0};
  const std::vector<double> ones_v = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(attack_effect_q(ones_a, ones_v), 1.0);
  const std::vector<double> one_a = {1.0};
  const std::vector<double> three_v = {1.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(attack_effect_q(one_a, three_v), 1.0);
}

TEST(AttackEffectQ, GrowsWithAttackerGainAndVictimLoss) {
  const std::vector<double> base_a = {1.0};
  const std::vector<double> base_v = {1.0};
  const double q0 = attack_effect_q(base_a, base_v);
  const std::vector<double> gain_a = {1.5};
  EXPECT_GT(attack_effect_q(gain_a, base_v), q0);
  const std::vector<double> hurt_v = {0.5};
  EXPECT_GT(attack_effect_q(base_a, hurt_v), q0);
}

TEST(AttackEffectQ, RejectsEmptySets) {
  const std::vector<double> some = {1.0};
  const std::vector<double> none;
  EXPECT_THROW((void)attack_effect_q(none, some), std::invalid_argument);
  EXPECT_THROW((void)attack_effect_q(some, none), std::invalid_argument);
}

TEST(PlacementGeometryMetric, HandComputedSquare) {
  const MeshGeometry geom(8, 8);
  // HTs at the four corners of a 2x2 box around (1,1) (ids of (0,0),(2,0),(0,2),(2,2)).
  const std::vector<NodeId> hts = {geom.id_of({0, 0}), geom.id_of({2, 0}),
                                   geom.id_of({0, 2}), geom.id_of({2, 2})};
  const NodeId gm = geom.id_of({4, 4});
  const PlacementGeometry pg = placement_geometry(geom, gm, hts);
  EXPECT_DOUBLE_EQ(pg.omega.x, 1.0);
  EXPECT_DOUBLE_EQ(pg.omega.y, 1.0);
  EXPECT_DOUBLE_EQ(pg.rho, 6.0);  // |4-1| + |4-1|
  EXPECT_DOUBLE_EQ(pg.eta, 2.0);  // each corner is 2 from (1,1)
  EXPECT_EQ(pg.m, 4);
}

TEST(HtAreaPower, PaperSectionIIIDNumbers) {
  const HtAreaPowerModel model;
  // One HT vs one router: ~0.017% area, ~0.0017% power.
  EXPECT_NEAR(model.area_fraction_of_router() * 100.0, 0.017, 0.001);
  EXPECT_NEAR(model.power_fraction_of_router() * 100.0, 0.0017, 0.0002);
  // 60 HTs: 730.296 um^2 and 33.0108 uW in total.
  EXPECT_NEAR(model.total_area_um2(60), 730.296, 1e-9);
  EXPECT_NEAR(model.total_power_uw(60), 33.0108, 1e-9);
  // vs all routers of a 512-node chip: ~0.002% area, ~0.0002% power.
  EXPECT_NEAR(model.area_fraction_of_chip(60, 512) * 100.0, 0.002, 0.0003);
  EXPECT_NEAR(model.power_fraction_of_chip(60, 512) * 100.0, 0.0002, 0.00003);
}

TEST(HtAreaPower, ScalesLinearlyInHtCount) {
  const HtAreaPowerModel model;
  EXPECT_DOUBLE_EQ(model.total_area_um2(2), 2.0 * model.ht_area_um2);
  EXPECT_DOUBLE_EQ(model.area_fraction_of_chip(10, 64),
                   10.0 * model.area_fraction_of_chip(1, 64));
}

}  // namespace
}  // namespace htpb::core
