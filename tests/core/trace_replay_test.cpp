// The record/replay contract this PR exists for:
//  1. Replay equivalence -- for any placement and DetectorConfig (and any
//     DetectorKind), replaying a recorded RequestTrace produces a
//     DetectorReport bit-identical to the report an in-simulation
//     detector would have filed for the same run.
//  2. Cost shape -- the DefenseSweep detection arm simulates O(placements)
//     systems, independent of the detector-grid size (asserted via the
//     AttackCampaign::systems_simulated counting hook).
//  3. Attack-from-epoch-0 -- a Trojan live before the detector's warmup
//     completes: the self-history EWMA anchors to the attacked level and
//     misses it; the cohort-median detector catches it from the same
//     trace.
//  4. Disk persistence -- save/load round trips a trace exactly, replay
//     off the loaded trace is bit-identical, and corrupt files are
//     rejected instead of misread.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/defense_sweep.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "power/request_trace.hpp"
#include "scenario/runner.hpp"
#include "workload/application.hpp"

namespace htpb::core {
namespace {

CampaignConfig base_config() {
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1000;
  cfg.mix = workload::standard_mixes().at(0);
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  // Mid-run activation: honest history first, then the Trojans wake up.
  cfg.trojan.active = false;
  cfg.toggle_period_epochs = 2;
  cfg.warmup_epochs = 1;
  cfg.measure_epochs = 4;
  cfg.detector = power::DetectorConfig{};
  return cfg;
}

std::vector<std::vector<NodeId>> placements_for(const CampaignConfig& cfg) {
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const AttackCampaign probe(cfg);
  const NodeId gm = probe.gm_node();
  return {
      clustered_placement(geom, 8, geom.coord_of(gm), gm),
      clustered_placement(geom, 4, MeshGeometry::corner(), gm),
  };
}

TEST(TraceReplay, ReplayBitIdenticalToInSimulationDetection) {
  const CampaignConfig cfg = base_config();
  const auto placements = placements_for(cfg);

  // Operating points spanning bands and both detector families.
  std::vector<power::DetectorConfig> detectors;
  for (const auto& [lo, hi] : {std::pair{0.6, 1.6}, std::pair{0.3, 3.0}}) {
    power::DetectorConfig d;
    d.low_ratio = lo;
    d.high_ratio = hi;
    detectors.push_back(d);
    d.kind = power::DetectorKind::kCohortMedian;
    detectors.push_back(d);
  }

  for (const auto& placement : placements) {
    // Record once per placement, detector-free.
    CampaignConfig record_cfg = cfg;
    record_cfg.detector.reset();
    AttackCampaign recorder(record_cfg);
    const power::RequestTrace trace = recorder.record_trace(placement);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.node_count, 64);
    EXPECT_EQ(trace.epoch_cycles, 1000U);

    bool any_flag = false;
    for (const power::DetectorConfig& d : detectors) {
      // The expensive reference: a fresh simulation with the detector
      // attached in-sim.
      CampaignConfig in_sim_cfg = cfg;
      in_sim_cfg.detector = d;
      AttackCampaign in_sim(in_sim_cfg);
      const auto reference = in_sim.run_detection_only(placement);
      ASSERT_TRUE(reference.has_value());

      const power::DetectorReport replayed = power::replay_detector(trace, d);
      EXPECT_EQ(replayed, *reference);
      any_flag = any_flag || replayed.any();
    }
    // The equivalence must not be vacuous.
    EXPECT_TRUE(any_flag);
  }
}

TEST(TraceReplay, TracedRunMatchesPlainRunAndRecordTrace) {
  const CampaignConfig cfg = base_config();
  const auto placement = placements_for(cfg).front();

  AttackCampaign a(cfg);
  AttackCampaign b(cfg);
  const auto traced = a.run_traced(placement);
  const CampaignOutcome plain = b.run(placement);

  // Recording is observational: the traced outcome matches a plain run
  // in every metric. run_traced engages the configured in-sim detector
  // under the same rule as run(), so detection matches too (asserted
  // below) -- the trace is an additional output, not a replacement.
  EXPECT_EQ(traced.outcome.infection_measured, plain.infection_measured);
  EXPECT_EQ(traced.outcome.q_valid, plain.q_valid);
  EXPECT_EQ(traced.outcome.q, plain.q);
  ASSERT_EQ(traced.outcome.apps.size(), plain.apps.size());
  for (std::size_t i = 0; i < plain.apps.size(); ++i) {
    EXPECT_EQ(traced.outcome.apps[i].theta_attacked,
              plain.apps[i].theta_attacked);
    EXPECT_EQ(traced.outcome.apps[i].change, plain.apps[i].change);
  }
  // The configured detector engages in both runs identically, and the
  // trace replayed through the same config reproduces that report bit
  // for bit -- recording perturbs nothing, in-sim detection included.
  ASSERT_TRUE(traced.outcome.detection.has_value());
  ASSERT_TRUE(plain.detection.has_value());
  EXPECT_EQ(*traced.outcome.detection, *plain.detection);
  EXPECT_EQ(power::replay_detector(traced.trace, *cfg.detector),
            *plain.detection);

  // record_trace (baseline-free) captures the identical stream.
  AttackCampaign c(cfg);
  EXPECT_EQ(c.record_trace(placement), traced.trace);
}

TEST(TraceReplay, DetectionArmSimulationCountIsPlacementBound) {
  DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = base_config();
  sweep_cfg.base.detector.reset();
  sweep_cfg.evaluate_guard = false;  // the guard genuinely perturbs; exclude
  sweep_cfg.measure_false_positives = true;
  sweep_cfg.placements = placements_for(sweep_cfg.base);
  const ParallelSweepRunner runner(2);

  const auto run_with_grid = [&](std::size_t grid) {
    sweep_cfg.detectors.clear();
    for (std::size_t i = 0; i < grid; ++i) {
      power::DetectorConfig d;
      d.low_ratio = 0.2 + 0.1 * static_cast<double>(i);
      sweep_cfg.detectors.push_back(d);
    }
    const std::uint64_t before = AttackCampaign::systems_simulated();
    const auto curve = DefenseSweep(sweep_cfg).run(runner);
    EXPECT_EQ(curve.size(), grid);
    return AttackCampaign::systems_simulated() - before;
  };

  // 1 shared baseline + |placements| recorded runs + 1 clean recording,
  // whatever the detector-grid size.
  const std::uint64_t expected = 1 + sweep_cfg.placements.size() + 1;
  EXPECT_EQ(run_with_grid(2), expected);
  EXPECT_EQ(run_with_grid(6), expected);
}

TEST(TraceReplay, EpochZeroAttackMissedByEwmaCaughtByCohort) {
  CampaignConfig cfg = base_config();
  // The Trojan is live at power-on and the CONFIG_CMD broadcast completes
  // before the first POWER_REQ flies: every sample the detector ever sees
  // from a covered victim is already attenuated.
  cfg.trojan.active = true;
  cfg.toggle_period_epochs = 0;
  cfg.system.first_epoch_cycle = 600;
  cfg.detector.reset();

  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const AttackCampaign probe(cfg);
  const auto placement = clustered_placement(
      geom, 8, geom.coord_of(probe.gm_node()), probe.gm_node());

  AttackCampaign campaign(cfg);
  const power::RequestTrace trace = campaign.record_trace(placement);
  ASSERT_FALSE(trace.empty());

  power::DetectorConfig ewma;  // kSelfEwma defaults
  power::DetectorConfig cohort;
  cohort.kind = power::DetectorKind::kCohortMedian;

  const power::DetectorReport ewma_report =
      power::replay_detector(trace, ewma);
  const power::DetectorReport cohort_report =
      power::replay_detector(trace, cohort);

  // Self-history EWMA: the attacked cores' histories are anchored to the
  // attenuated level from their first sample -- nothing ever crosses the
  // band. The documented blind spot.
  EXPECT_TRUE(ewma_report.flagged_low.empty());
  // Cohort median: the attenuated minority sits ~10x below the epoch
  // median from epoch 0 and is confirmed within confirm_epochs.
  EXPECT_FALSE(cohort_report.flagged_low.empty());
  EXPECT_GE(cohort_report.first_flag_epoch, 0);
  EXPECT_LE(cohort_report.first_flag_epoch, 2);

  // In-sim cross-check: a campaign running the cohort detector live
  // surfaces the identical report.
  CampaignConfig in_sim_cfg = cfg;
  in_sim_cfg.detector = cohort;
  AttackCampaign in_sim(in_sim_cfg);
  const auto live = in_sim.run_detection_only(placement);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(*live, cohort_report);
}

// Regression: a trace recorded on one geometry must not be replayed
// through a scenario that builds a different chip -- core IDs and epoch
// boundaries would silently mean different things. The runner refuses
// with both geometries named.
TEST(TraceReplay, ScenarioReplayRejectsMismatchedTraceGeometry) {
  scenario::ScenarioBuilder b("geom-check",
                              scenario::ScenarioKind::kAttackEffect);
  b.title("t").paper_ref("p").expectation("e");
  b.size(64)
      .epoch_cycles(1500)
      .victim_scale(0.10)
      .attacker_boost(8.0)
      .warmup_epochs(1)
      .measure_epochs(2);
  b.workload().mixes = {"mix-1"};
  b.axes().infection_targets = {0.5};
  b.axes().placement_max_hts = 16;
  const scenario::ScenarioSpec spec = b.build();

  const power::RequestTrace trace = scenario::record_scenario_trace(spec);
  ASSERT_FALSE(trace.empty());
  EXPECT_NO_THROW((void)scenario::replay_scenario_detectors(spec, trace));

  power::RequestTrace wrong_nodes = trace;
  wrong_nodes.node_count = 256;
  try {
    (void)scenario::replay_scenario_detectors(spec, wrong_nodes);
    FAIL() << "mismatched node count accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("256"), std::string::npos) << what;
    EXPECT_NE(what.find("64"), std::string::npos) << what;
  }

  power::RequestTrace wrong_epochs = trace;
  wrong_epochs.epoch_cycles = 777;
  EXPECT_THROW(
      (void)scenario::replay_scenario_detectors(spec, wrong_epochs),
      std::runtime_error);
}

/// Self-deleting temp path under the ctest working directory.
class TempFile {
 public:
  explicit TempFile(std::string name) : path_(std::move(name)) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

TEST(TraceIo, SaveLoadRoundTripsExactly) {
  const CampaignConfig cfg = base_config();
  const auto placement = placements_for(cfg).front();
  CampaignConfig record_cfg = cfg;
  record_cfg.detector.reset();
  AttackCampaign campaign(record_cfg);
  const power::RequestTrace trace = campaign.record_trace(placement);
  ASSERT_FALSE(trace.empty());

  const TempFile file("trace_io_roundtrip.htpbtrc");
  trace.save(file.path());
  const power::RequestTrace loaded = power::RequestTrace::load(file.path());

  // Field-for-field equality, epochs and requests included.
  EXPECT_EQ(loaded, trace);

  // Replay off the loaded trace is bit-identical to replay off the
  // in-memory recording -- detector research can iterate purely on files.
  power::DetectorConfig ewma;
  power::DetectorConfig cohort;
  cohort.kind = power::DetectorKind::kCohortMedian;
  EXPECT_EQ(power::replay_detector(loaded, ewma),
            power::replay_detector(trace, ewma));
  EXPECT_EQ(power::replay_detector(loaded, cohort),
            power::replay_detector(trace, cohort));
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  power::RequestTrace trace;
  trace.node_count = 16;
  trace.epoch_cycles = 500;
  const TempFile file("trace_io_empty.htpbtrc");
  trace.save(file.path());
  EXPECT_EQ(power::RequestTrace::load(file.path()), trace);
}

TEST(TraceIo, SaveIntoMissingDirectoryNamesThePathAndReason) {
  power::RequestTrace trace;
  trace.node_count = 16;
  trace.epoch_cycles = 500;
  try {
    trace.save("no_such_dir_htpb/trace.htpbtrc");
    FAIL() << "save into a missing directory did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_dir_htpb/trace.htpbtrc"), std::string::npos)
        << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }
}

TEST(TraceIo, RejectsCorruptAndForeignFiles) {
  // The error must name the path AND the OS reason -- "cannot open" with
  // neither is useless in a fleet log.
  try {
    (void)power::RequestTrace::load("does_not_exist.htpbtrc");
    FAIL() << "load of a missing file did not throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("does_not_exist.htpbtrc"), std::string::npos) << what;
    EXPECT_NE(what.find("No such file"), std::string::npos) << what;
  }

  const TempFile garbage("trace_io_garbage.htpbtrc");
  {
    std::ofstream out(garbage.path(), std::ios::binary);
    out << "{\"this\": \"is json, not a trace\"}";
  }
  EXPECT_THROW((void)power::RequestTrace::load(garbage.path()),
               std::runtime_error);

  // Truncation inside the epoch stream must throw, not misread.
  const CampaignConfig cfg = base_config();
  const auto placement = placements_for(cfg).front();
  CampaignConfig record_cfg = cfg;
  record_cfg.detector.reset();
  AttackCampaign campaign(record_cfg);
  const power::RequestTrace trace = campaign.record_trace(placement);
  const TempFile whole("trace_io_whole.htpbtrc");
  trace.save(whole.path());

  std::string bytes;
  {
    std::ifstream in(whole.path(), std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  const TempFile cut("trace_io_truncated.htpbtrc");
  {
    std::ofstream out(cut.path(), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW((void)power::RequestTrace::load(cut.path()),
               std::runtime_error);

  // A flipped version field is rejected by number, not misread.
  const TempFile wrong_version("trace_io_version.htpbtrc");
  {
    std::string v = bytes;
    v[8] = 99;  // version u32 starts right after the 8-byte magic
    std::ofstream out(wrong_version.path(), std::ios::binary);
    out.write(v.data(), static_cast<std::streamsize>(v.size()));
  }
  EXPECT_THROW((void)power::RequestTrace::load(wrong_version.path()),
               std::runtime_error);

  // Trailing bytes after a well-formed body are rejected too.
  const TempFile padded("trace_io_padded.htpbtrc");
  {
    std::ofstream out(padded.path(), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "extra";
  }
  EXPECT_THROW((void)power::RequestTrace::load(padded.path()),
               std::runtime_error);
}

}  // namespace
}  // namespace htpb::core
