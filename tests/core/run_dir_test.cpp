// RunDir contract: layout creation, status round-trips, the
// torn-status-means-rerun rule, quarantine moves, and the spec
// fingerprint helper.
#include "core/run_dir.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/atomic_file.hpp"

namespace {

namespace fs = std::filesystem;

using htpb::core::CellStatus;
using htpb::core::fingerprint;
using htpb::core::RunDir;

class TempDir {
 public:
  TempDir() : path_(fs::current_path() / "run_dir_tmp") {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }

 private:
  fs::path path_;
};

TEST(Fingerprint, StableAndContentSensitive) {
  EXPECT_EQ(fingerprint("abc"), fingerprint("abc"));
  EXPECT_NE(fingerprint("abc"), fingerprint("abd"));
  EXPECT_EQ(fingerprint("").size(), 16U);
  // FNV-1a 64 of the empty string -- locks the algorithm, not just the
  // shape, so persisted manifests stay readable across builds.
  EXPECT_EQ(fingerprint(""), "cbf29ce484222325");
}

TEST(RunDir, EnsureLayoutCreatesNestedRootAndSubdirs) {
  const TempDir dir;
  RunDir rd((dir.path() / "a" / "b" / "run").string());
  rd.ensure_layout();
  for (const char* sub :
       {"cells", "results", "status", "logs", "quarantine"}) {
    EXPECT_TRUE(fs::is_directory(dir.path() / "a" / "b" / "run" / sub))
        << sub;
  }
  // Idempotent: a resume re-ensures the same layout.
  rd.ensure_layout();
}

TEST(RunDir, StatusRoundTripsThroughDisk) {
  const TempDir dir;
  RunDir rd((dir.path() / "run").string());
  rd.ensure_layout();

  EXPECT_FALSE(rd.load_status("c000-x").has_value());

  CellStatus status;
  status.state = "failed";
  status.fingerprint = fingerprint("spec");
  status.attempts = 3;
  status.fail_reason = "timeout";
  status.last_error = "killed after 5s";
  rd.write_status("c000-x", status);

  const auto loaded = rd.load_status("c000-x");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->state, "failed");
  EXPECT_EQ(loaded->fingerprint, fingerprint("spec"));
  EXPECT_EQ(loaded->attempts, 3);
  EXPECT_EQ(loaded->fail_reason, "timeout");
  EXPECT_EQ(loaded->last_error, "killed after 5s");
}

TEST(RunDir, TornOrForeignStatusReadsAsAbsent) {
  const TempDir dir;
  RunDir rd((dir.path() / "run").string());
  rd.ensure_layout();

  // Truncated JSON: a crash mid-write (workers don't write atomically).
  htpb::common::atomic_write_file(rd.status_path("torn"), "{\"state\": \"do");
  EXPECT_FALSE(rd.load_status("torn").has_value());

  // Valid JSON, wrong shape.
  htpb::common::atomic_write_file(rd.status_path("foreign"), "{\"a\": 1}\n");
  EXPECT_FALSE(rd.load_status("foreign").has_value());

  // Unknown state value.
  htpb::common::atomic_write_file(
      rd.status_path("odd"),
      "{\"state\": \"maybe\", \"fingerprint\": \"x\", \"attempts\": 1}\n");
  EXPECT_FALSE(rd.load_status("odd").has_value());
}

TEST(RunDir, QuarantineMovesTheArtifactAside) {
  const TempDir dir;
  RunDir rd((dir.path() / "run").string());
  rd.ensure_layout();

  htpb::common::atomic_write_file(rd.result_path("c001-y"), "garbage");
  rd.quarantine_result("c001-y", 2);
  EXPECT_FALSE(fs::exists(rd.result_path("c001-y")));
  const std::string q = rd.quarantine_path("c001-y", 2);
  ASSERT_TRUE(fs::exists(q));
  EXPECT_EQ(htpb::common::read_file(q), "garbage");

  // Missing source: no-op, not an error (the garbage fault may have
  // written nothing at all).
  rd.quarantine_result("c001-y", 3);
}

TEST(RunDir, ManifestRoundTrips) {
  const TempDir dir;
  RunDir rd((dir.path() / "run").string());
  rd.ensure_layout();
  EXPECT_FALSE(rd.has_manifest());

  htpb::json::Object m;
  m["schema"] = htpb::json::Value(1);
  m["spec_fingerprint"] = htpb::json::Value(fingerprint("spec"));
  rd.write_manifest(htpb::json::Value(std::move(m)));

  ASSERT_TRUE(rd.has_manifest());
  const htpb::json::Value loaded = rd.load_manifest();
  EXPECT_EQ(loaded.as_object().find("spec_fingerprint")->as_string(),
            fingerprint("spec"));
}

}  // namespace
