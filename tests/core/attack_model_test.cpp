#include "core/attack_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/optimizer.hpp"
#include "core/parallel_sweep.hpp"

namespace htpb::core {
namespace {

AttackSample sample(double rho, double eta, int m, double q) {
  AttackSample s;
  s.rho = rho;
  s.eta = eta;
  s.m = m;
  s.phi_victims = {2.0, 0.5};
  s.phi_attackers = {1.0};
  s.q = q;
  return s;
}

TEST(AttackEffectModel, RecoversPlantedLinearModel) {
  // Q = 3.0 - 0.2*rho - 0.1*eta + 0.15*m (+ constant Phi contributions).
  Rng rng(9);
  std::vector<AttackSample> samples;
  for (int i = 0; i < 80; ++i) {
    const double rho = rng.uniform(0, 10);
    const double eta = rng.uniform(0, 6);
    const int m = 1 + static_cast<int>(rng.below(24));
    const double q = 3.0 - 0.2 * rho - 0.1 * eta + 0.15 * m;
    samples.push_back(sample(rho, eta, m, q));
  }
  AttackEffectModel model;
  model.fit(samples);
  EXPECT_TRUE(model.fitted());
  EXPECT_GT(model.r2(), 0.999);
  // a1 (rho) and a2 (eta) recovered; the intercept is split with the
  // constant Phi columns, so only the varying coefficients are testable.
  EXPECT_NEAR(model.coefficients()[1], -0.2, 1e-6);
  EXPECT_NEAR(model.coefficients()[2], -0.1, 1e-6);
  EXPECT_NEAR(model.coefficients()[3], 0.15, 1e-6);
}

TEST(AttackEffectModel, PredictMatchesTrainingTargets) {
  Rng rng(11);
  std::vector<AttackSample> samples;
  for (int i = 0; i < 40; ++i) {
    samples.push_back(sample(rng.uniform(0, 8), rng.uniform(0, 4),
                             1 + static_cast<int>(rng.below(16)),
                             rng.uniform(1, 5)));
  }
  AttackEffectModel model;
  model.fit(samples);
  // Not a perfect fit (random q), but predictions must be finite and the
  // in-sample residual bounded by construction of least squares.
  for (const auto& s : samples) {
    const double p = model.predict(s);
    EXPECT_TRUE(std::isfinite(p));
  }
}

TEST(AttackEffectModel, FitValidation) {
  AttackEffectModel model;
  EXPECT_THROW(model.fit({}), std::invalid_argument);

  std::vector<AttackSample> few = {sample(1, 1, 1, 2), sample(2, 2, 2, 3)};
  EXPECT_THROW(model.fit(few), std::invalid_argument);  // p = 7 > n = 2

  std::vector<AttackSample> inconsistent(10, sample(1, 1, 1, 2));
  inconsistent[5].phi_victims = {1.0};  // wrong victim count
  EXPECT_THROW(model.fit(inconsistent), std::invalid_argument);
}

TEST(AttackEffectModel, PredictBeforeFitThrows) {
  const AttackEffectModel model;
  EXPECT_THROW((void)model.predict(sample(1, 1, 1, 0)), std::logic_error);
}

TEST(PlacementOptimizer, FindsHighQRegionOfPlantedModel) {
  // Planted model: Q large when rho small and m large. The optimizer must
  // pick a placement near the manager with m = max_hts.
  Rng rng(13);
  std::vector<AttackSample> samples;
  for (int i = 0; i < 60; ++i) {
    const double rho = rng.uniform(0, 8);
    const double eta = rng.uniform(0, 4);
    const int m = 1 + static_cast<int>(rng.below(16));
    samples.push_back(sample(rho, eta, m, 4.0 - 0.4 * rho + 0.2 * m));
  }
  AttackEffectModel model;
  model.fit(samples);

  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  PlacementOptimizer optimizer(geom, gm, &model, {2.0, 0.5}, {1.0});
  const ParallelSweepRunner runner(2);
  const auto result = optimizer.optimize(/*max_hts=*/16, /*candidates=*/40,
                                         /*seed=*/17, runner);
  EXPECT_EQ(result.placement.m(), 16);     // m coefficient positive
  EXPECT_LT(result.placement.rho, 2.0);    // rho coefficient negative
  EXPECT_GT(result.predicted_q, 4.0);
}

TEST(PlacementOptimizer, RespectsHtBudget) {
  Rng rng(19);
  std::vector<AttackSample> samples;
  for (int i = 0; i < 40; ++i) {
    samples.push_back(sample(rng.uniform(0, 8), rng.uniform(0, 4),
                             1 + static_cast<int>(rng.below(12)),
                             1.0 + 0.5 * static_cast<double>(i % 5)));
  }
  AttackEffectModel model;
  model.fit(samples);
  const MeshGeometry geom(8, 8);
  PlacementOptimizer optimizer(geom, geom.id_of({4, 4}), &model, {2.0, 0.5},
                               {1.0});
  const ParallelSweepRunner runner(2);
  for (const int budget : {1, 3, 7}) {
    const auto result = optimizer.optimize(budget, 20, /*seed=*/21, runner);
    EXPECT_LE(result.placement.m(), budget);
    EXPECT_GE(result.placement.m(), 1);
  }
  EXPECT_THROW((void)optimizer.optimize(0, 10, /*seed=*/21, runner),
               std::invalid_argument);
}

TEST(PlacementOptimizer, BeatsRandomPlacementOnPredictedQ) {
  Rng rng(23);
  std::vector<AttackSample> samples;
  for (int i = 0; i < 60; ++i) {
    const double rho = rng.uniform(0, 8);
    const double eta = rng.uniform(0, 4);
    const int m = 1 + static_cast<int>(rng.below(16));
    samples.push_back(sample(rho, eta, m, 3.0 - 0.3 * rho - 0.2 * eta));
  }
  AttackEffectModel model;
  model.fit(samples);
  const MeshGeometry geom(8, 8);
  const NodeId gm = geom.id_of({4, 4});
  PlacementOptimizer optimizer(geom, gm, &model, {2.0, 0.5}, {1.0});
  const ParallelSweepRunner runner(2);
  Rng opt_rng(29);
  const auto best = optimizer.optimize(16, 40, /*seed=*/29, runner);
  double random_mean = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto rand_nodes = random_placement(geom, 16, opt_rng, gm);
    random_mean +=
        optimizer.score(describe_placement(geom, gm, rand_nodes));
  }
  random_mean /= 20.0;
  EXPECT_GE(best.predicted_q, random_mean);
}

}  // namespace
}  // namespace htpb::core
