// PR-8 warmup-fork acceptance: arms that share a warmup prefix (same
// system config, workload, Trojan config and placement; detectors,
// responses and measurement length excluded by construction) simulate
// the prefix ONCE -- on a detector-free scratch system -- and fork, and
// the forked runs are bit-identical to straight-through simulation.
// Persisted checkpoints (CampaignConfig::checkpoint_dir) are reused
// across campaigns and rejected -- recomputed, never trusted -- on any
// corruption: garbage, truncation, or a checksum that no longer matches
// the payload.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/json.hpp"
#include "core/campaign.hpp"
#include "core/defense_sweep.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

namespace htpb::core {
namespace {

namespace fs = std::filesystem;

CampaignConfig base_config() {
  CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 1000;
  cfg.mix = workload::standard_mixes().at(0);
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  cfg.warmup_epochs = 2;
  cfg.measure_epochs = 3;
  return cfg;
}

std::vector<NodeId> gm_cluster(const CampaignConfig& cfg, int hts) {
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const AttackCampaign probe(cfg);
  return clustered_placement(geom, hts, geom.coord_of(probe.gm_node()),
                             probe.gm_node());
}

void expect_identical(const CampaignOutcome& a, const CampaignOutcome& b,
                      const std::string& context) {
  EXPECT_EQ(a.infection_measured, b.infection_measured) << context;
  EXPECT_EQ(a.infection_predicted, b.infection_predicted) << context;
  EXPECT_EQ(a.q_valid, b.q_valid) << context;
  EXPECT_EQ(a.q, b.q) << context;
  ASSERT_EQ(a.apps.size(), b.apps.size()) << context;
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].theta_baseline, b.apps[i].theta_baseline) << context;
    EXPECT_EQ(a.apps[i].theta_attacked, b.apps[i].theta_attacked) << context;
    EXPECT_EQ(a.apps[i].change, b.apps[i].change) << context;
    EXPECT_EQ(a.apps[i].phi, b.apps[i].phi) << context;
  }
  EXPECT_EQ(a.trojan_totals.victim_requests_modified,
            b.trojan_totals.victim_requests_modified)
      << context;
  EXPECT_EQ(a.trojan_totals.attacker_requests_boosted,
            b.trojan_totals.attacker_requests_boosted)
      << context;
  ASSERT_EQ(a.detection.has_value(), b.detection.has_value()) << context;
  if (a.detection.has_value()) EXPECT_EQ(*a.detection, *b.detection) << context;
  ASSERT_EQ(a.response.has_value(), b.response.has_value()) << context;
  if (a.response.has_value()) EXPECT_EQ(*a.response, *b.response) << context;
  ASSERT_EQ(a.adaptation.has_value(), b.adaptation.has_value()) << context;
  if (a.adaptation.has_value()) {
    EXPECT_EQ(*a.adaptation, *b.adaptation) << context;
  }
}

// Forked runs equal straight-through runs for the full policy matrix:
// plain, detected, closed-loop (quarantine), and duty-cycled.
TEST(WarmupFork, ForkedRunsBitIdenticalToStraightThrough) {
  std::vector<CampaignConfig> variants;
  variants.push_back(base_config());  // no defense
  {
    CampaignConfig cfg = base_config();
    cfg.detector = power::DetectorConfig{};
    variants.push_back(cfg);  // passive detection
  }
  {
    CampaignConfig cfg = base_config();
    cfg.detector = power::DetectorConfig{};
    cfg.response = power::ResponseConfig{};
    variants.push_back(cfg);  // closed loop
  }
  {
    CampaignConfig cfg = base_config();
    cfg.trojan.active = false;
    cfg.toggle_period_epochs = 2;  // duty-cycled activation
    variants.push_back(cfg);
  }
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const std::vector<NodeId> hts = gm_cluster(variants[v], 8);
    CampaignConfig forked_cfg = variants[v];
    forked_cfg.warmup_fork = true;
    CampaignConfig plain_cfg = variants[v];
    plain_cfg.warmup_fork = false;
    AttackCampaign forked(forked_cfg);
    AttackCampaign plain(plain_cfg);
    expect_identical(forked.run(hts), plain.run(hts),
                     "variant " + std::to_string(v));
  }
}

// The acceptance counter: a DefenseSweep with forking on simulates
// strictly fewer warmup epochs than with it off, for the same curve.
TEST(WarmupFork, DefenseSweepForksSharedPrefixesAndMatchesNonForkingPath) {
  DefenseSweepConfig sweep;
  sweep.base = base_config();
  sweep.detectors = {power::DetectorConfig{}, power::DetectorConfig{}};
  sweep.detectors[1].high_ratio = 1.6;
  sweep.placements = {gm_cluster(sweep.base, 8), gm_cluster(sweep.base, 4)};
  sweep.measure_false_positives = true;
  sweep.responses = {power::ResponseKind::kQuarantine};
  sweep.response_base = power::ResponseConfig{};
  const ParallelSweepRunner runner(2);

  sweep.base.warmup_fork = false;
  const std::uint64_t plain_start = AttackCampaign::warmup_epochs_simulated();
  const auto plain_curve = DefenseSweep(sweep).run(runner);
  const std::uint64_t plain_epochs =
      AttackCampaign::warmup_epochs_simulated() - plain_start;

  sweep.base.warmup_fork = true;
  const std::uint64_t fork_start = AttackCampaign::warmup_epochs_simulated();
  const auto fork_curve = DefenseSweep(sweep).run(runner);
  const std::uint64_t fork_epochs =
      AttackCampaign::warmup_epochs_simulated() - fork_start;

  EXPECT_LT(fork_epochs, plain_epochs)
      << "forking must simulate strictly fewer warmup epochs";
  EXPECT_GT(fork_epochs, 0U) << "each unique prefix still simulates once";

  ASSERT_EQ(fork_curve.size(), plain_curve.size());
  for (std::size_t d = 0; d < fork_curve.size(); ++d) {
    const auto& f = fork_curve[d];
    const auto& p = plain_curve[d];
    EXPECT_EQ(f.detection_rate, p.detection_rate) << d;
    EXPECT_EQ(f.victim_flag_rate, p.victim_flag_rate) << d;
    EXPECT_EQ(f.attacker_flag_rate, p.attacker_flag_rate) << d;
    EXPECT_EQ(f.false_positive_rate, p.false_positive_rate) << d;
    EXPECT_EQ(f.mean_detection_latency, p.mean_detection_latency) << d;
    EXPECT_EQ(f.mean_q_plain, p.mean_q_plain) << d;
    ASSERT_EQ(f.cells.size(), p.cells.size()) << d;
    for (std::size_t c = 0; c < f.cells.size(); ++c) {
      expect_identical(f.cells[c].outcome, p.cells[c].outcome,
                       "cell " + std::to_string(d) + "/" + std::to_string(c));
    }
    ASSERT_EQ(f.responses.size(), p.responses.size()) << d;
    for (std::size_t r = 0; r < f.responses.size(); ++r) {
      EXPECT_EQ(f.responses[r].mean_q, p.responses[r].mean_q) << d;
      EXPECT_EQ(f.responses[r].mean_sanctioned, p.responses[r].mean_sanctioned)
          << d;
      EXPECT_EQ(f.responses[r].mean_collateral, p.responses[r].mean_collateral)
          << d;
    }
  }
}

// Disk persistence: a second campaign over the same config loads the
// first one's checkpoints instead of simulating any warmup at all.
TEST(WarmupFork, PersistedCheckpointsAreReusedAcrossCampaigns) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "htpb_warmup_reuse";
  fs::remove_all(dir);
  fs::create_directories(dir);

  CampaignConfig cfg = base_config();
  cfg.detector = power::DetectorConfig{};
  cfg.checkpoint_dir = dir.string();
  const std::vector<NodeId> hts = gm_cluster(cfg, 8);

  AttackCampaign first(cfg);
  const CampaignOutcome reference = first.run(hts);
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_TRUE(e.path().filename().string().starts_with("warmup-"));
  }
  ASSERT_GT(files, 0U) << "first run must persist its checkpoints";

  const std::uint64_t before = AttackCampaign::warmup_epochs_simulated();
  AttackCampaign second(cfg);  // fresh in-memory cache, same directory
  expect_identical(second.run(hts), reference, "disk-forked rerun");
  EXPECT_EQ(AttackCampaign::warmup_epochs_simulated() - before, 0U)
      << "every warmup prefix should load from disk, none re-simulate";

  fs::remove_all(dir);
}

// Defective checkpoint files -- garbage, truncated, or checksum-valid
// JSON whose checksum field was tampered -- must be recomputed, never
// restored: same outcome as a pristine run, warmup re-simulated.
TEST(WarmupFork, CorruptCheckpointsRecomputedNeverTrusted) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "htpb_warmup_corrupt";

  CampaignConfig cfg = base_config();
  cfg.checkpoint_dir = dir.string();
  const std::vector<NodeId> hts = gm_cluster(cfg, 8);

  const auto corruptions = std::vector<std::string>{
      "garbage", "truncate", "checksum", "schema"};
  CampaignOutcome reference;
  {
    CampaignConfig pristine = cfg;
    pristine.checkpoint_dir.clear();
    AttackCampaign c(pristine);
    reference = c.run(hts);
  }
  for (const std::string& mode : corruptions) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    {
      AttackCampaign writer(cfg);
      expect_identical(writer.run(hts), reference, "writer/" + mode);
    }
    for (const auto& e : fs::directory_iterator(dir)) {
      const std::string path = e.path().string();
      if (mode == "garbage") {
        common::atomic_write_file(path, "not json at all {{{");
      } else if (mode == "truncate") {
        const std::string text = common::read_file(path);
        common::atomic_write_file(path, text.substr(0, text.size() / 2));
      } else if (mode == "checksum") {
        json::Value v = json::parse(common::read_file(path));
        v.as_object()["checksum"] = json::Value(std::string("0123456789abcdef"));
        common::atomic_write_file(path, json::dump(v));
      } else {  // schema
        json::Value v = json::parse(common::read_file(path));
        v.as_object()["schema"] = json::Value(static_cast<long long>(999));
        common::atomic_write_file(path, json::dump(v));
      }
    }
    const std::uint64_t before = AttackCampaign::warmup_epochs_simulated();
    AttackCampaign reader(cfg);
    expect_identical(reader.run(hts), reference, "reader/" + mode);
    EXPECT_GT(AttackCampaign::warmup_epochs_simulated() - before, 0U)
        << mode << ": defective checkpoints must be recomputed";
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace htpb::core
