#include "power/global_manager.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/engine.hpp"

namespace htpb::power {
namespace {

struct GmFixture {
  sim::Engine engine;
  MeshGeometry geom{4, 4};
  noc::NocConfig noc_cfg;
  noc::MeshNetwork net{engine, geom, noc_cfg};
  GlobalManager gm{5, &net, make_budgeter(BudgeterKind::kProportional),
                   /*budget=*/4000, /*floor=*/500};

  noc::Packet request(NodeId src, std::uint32_t mw, bool tampered = false,
                      AppId app = 0) {
    noc::Packet pkt;
    pkt.src = src;
    pkt.dst = 5;
    pkt.type = noc::PacketType::kPowerRequest;
    pkt.payload = mw;
    pkt.tampered = tampered;
    pkt.src_app = app;
    return pkt;
  }
};

TEST(GlobalManager, CollectsAndReplies) {
  GmFixture f;
  std::map<NodeId, std::uint32_t> grants;
  for (NodeId n = 0; n < 16; ++n) {
    f.net.set_handler(n, [&grants, n](const noc::Packet& pkt) {
      if (pkt.type == noc::PacketType::kPowerGrant) grants[n] = pkt.payload;
    });
  }
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 2000));
  f.gm.on_power_request(f.request(2, 2000));
  f.gm.on_power_request(f.request(3, 2000));
  const EpochRecord rec = f.gm.allocate_and_reply(f.engine.now());
  EXPECT_EQ(rec.requests_received, 3U);
  EXPECT_LE(rec.granted_mw, 4000U);
  f.engine.run_cycles(60);
  ASSERT_EQ(grants.size(), 3U);
  std::uint64_t total = 0;
  for (const auto& [node, mw] : grants) total += mw;
  EXPECT_LE(total, 4000U);
  EXPECT_GT(total, 0U);
}

TEST(GlobalManager, RequestsOutsideWindowDropped) {
  GmFixture f;
  f.gm.on_power_request(f.request(1, 1000));  // before any epoch
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(2, 1000));
  const auto rec = f.gm.allocate_and_reply(f.engine.now());
  EXPECT_EQ(rec.requests_received, 1U);
  f.gm.on_power_request(f.request(3, 1000));  // straggler after close
  EXPECT_EQ(f.gm.history().back().requests_received, 1U);
}

TEST(GlobalManager, InfectionRateOverVictimRequests) {
  GmFixture f;
  f.gm.set_attacker_lookup([](AppId app) { return app == 9; });
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 1000, /*tampered=*/true, /*app=*/0));
  f.gm.on_power_request(f.request(2, 1000, /*tampered=*/false, /*app=*/0));
  f.gm.on_power_request(f.request(3, 8000, /*tampered=*/false, /*app=*/9));
  const auto rec = f.gm.allocate_and_reply(f.engine.now());
  EXPECT_EQ(rec.victim_requests, 2U);
  EXPECT_EQ(rec.tampered_received, 1U);
  EXPECT_DOUBLE_EQ(rec.infection_rate(), 0.5);
}

TEST(GlobalManager, InfectionRateZeroWithoutRequests) {
  GmFixture f;
  f.gm.begin_epoch(0);
  const auto rec = f.gm.allocate_and_reply(f.engine.now());
  EXPECT_DOUBLE_EQ(rec.infection_rate(), 0.0);
}

TEST(GlobalManager, MeanInfectionSkipsWarmup) {
  GmFixture f;
  // Epoch 1: fully infected. Epoch 2: clean.
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 1000, true));
  (void)f.gm.allocate_and_reply(f.engine.now());
  f.gm.begin_epoch(100);
  f.gm.on_power_request(f.request(1, 1000, false));
  (void)f.gm.allocate_and_reply(f.engine.now());
  EXPECT_DOUBLE_EQ(f.gm.mean_infection_rate(0), 0.5);
  EXPECT_DOUBLE_EQ(f.gm.mean_infection_rate(1), 0.0);
}

TEST(GlobalManager, RecorderCapturesDetectorView) {
  // The record/replay contract: the trace holds exactly the per-epoch
  // request vectors an attached detector observes -- tampered values as
  // received, empty epochs included -- plus the epoch timing metadata.
  GmFixture f;
  RequestTrace trace;
  f.gm.attach_recorder(&trace);

  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 250, /*tampered=*/true));
  f.gm.on_power_request(f.request(2, 2000));
  (void)f.gm.allocate_and_reply(40);

  f.gm.begin_epoch(100);  // nobody requests this epoch
  (void)f.gm.allocate_and_reply(140);

  ASSERT_EQ(trace.size(), 2U);
  EXPECT_EQ(trace.epochs[0].epoch_start, 0U);
  EXPECT_EQ(trace.epochs[0].allocate_cycle, 40U);
  EXPECT_EQ(trace.epochs[0].budget_mw, 4000U);
  ASSERT_EQ(trace.epochs[0].requests.size(), 2U);
  EXPECT_EQ(trace.epochs[0].requests[0], (BudgetRequest{1, 0, 250}));
  EXPECT_EQ(trace.epochs[0].requests[1], (BudgetRequest{2, 0, 2000}));
  EXPECT_EQ(trace.epochs[1].epoch_start, 100U);
  EXPECT_TRUE(trace.epochs[1].requests.empty());

  // Replaying that trace equals feeding a detector in-simulation.
  DetectorConfig cfg;
  RequestAnomalyDetector in_sim(cfg);
  for (const TraceEpoch& e : trace.epochs) (void)in_sim.observe_epoch(e.requests);
  EXPECT_EQ(replay_detector(trace, cfg), in_sim.cumulative());
}

TEST(GlobalManager, TamperedRequestsShiftAllocation) {
  // End-to-end over the allocator: the victim's shrunken request directly
  // reduces its grant, the attacker's inflated one raises its own.
  GmFixture f;
  std::map<NodeId, std::uint32_t> grants;
  for (NodeId n = 0; n < 16; ++n) {
    f.net.set_handler(n, [&grants, n](const noc::Packet& pkt) {
      if (pkt.type == noc::PacketType::kPowerGrant) grants[n] = pkt.payload;
    });
  }
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 250, true));    // victim, was 2000
  f.gm.on_power_request(f.request(2, 2000, false));  // bystander
  f.gm.on_power_request(f.request(3, 8000, false));  // attacker, was 2000
  (void)f.gm.allocate_and_reply(f.engine.now());
  f.engine.run_cycles(60);
  ASSERT_EQ(grants.size(), 3U);
  EXPECT_LT(grants[1], grants[2]);
  EXPECT_GT(grants[3], grants[2]);
}

}  // namespace
}  // namespace htpb::power
