#include "power/global_manager.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/engine.hpp"

namespace htpb::power {
namespace {

struct GmFixture {
  sim::Engine engine;
  MeshGeometry geom{4, 4};
  noc::NocConfig noc_cfg;
  noc::MeshNetwork net{engine, geom, noc_cfg};
  GlobalManager gm{5, &net, make_budgeter(BudgeterKind::kProportional),
                   /*budget=*/4000, /*floor=*/500};

  noc::Packet request(NodeId src, std::uint32_t mw, bool tampered = false,
                      AppId app = 0) {
    noc::Packet pkt;
    pkt.src = src;
    pkt.dst = 5;
    pkt.type = noc::PacketType::kPowerRequest;
    pkt.payload = mw;
    pkt.tampered = tampered;
    pkt.src_app = app;
    return pkt;
  }
};

TEST(GlobalManager, CollectsAndReplies) {
  GmFixture f;
  std::map<NodeId, std::uint32_t> grants;
  for (NodeId n = 0; n < 16; ++n) {
    f.net.set_handler(n, [&grants, n](const noc::Packet& pkt) {
      if (pkt.type == noc::PacketType::kPowerGrant) grants[n] = pkt.payload;
    });
  }
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 2000));
  f.gm.on_power_request(f.request(2, 2000));
  f.gm.on_power_request(f.request(3, 2000));
  const EpochRecord rec = f.gm.allocate_and_reply();
  EXPECT_EQ(rec.requests_received, 3U);
  EXPECT_LE(rec.granted_mw, 4000U);
  f.engine.run_cycles(60);
  ASSERT_EQ(grants.size(), 3U);
  std::uint64_t total = 0;
  for (const auto& [node, mw] : grants) total += mw;
  EXPECT_LE(total, 4000U);
  EXPECT_GT(total, 0U);
}

TEST(GlobalManager, RequestsOutsideWindowDropped) {
  GmFixture f;
  f.gm.on_power_request(f.request(1, 1000));  // before any epoch
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(2, 1000));
  const auto rec = f.gm.allocate_and_reply();
  EXPECT_EQ(rec.requests_received, 1U);
  f.gm.on_power_request(f.request(3, 1000));  // straggler after close
  EXPECT_EQ(f.gm.history().back().requests_received, 1U);
}

TEST(GlobalManager, InfectionRateOverVictimRequests) {
  GmFixture f;
  f.gm.set_attacker_lookup([](AppId app) { return app == 9; });
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 1000, /*tampered=*/true, /*app=*/0));
  f.gm.on_power_request(f.request(2, 1000, /*tampered=*/false, /*app=*/0));
  f.gm.on_power_request(f.request(3, 8000, /*tampered=*/false, /*app=*/9));
  const auto rec = f.gm.allocate_and_reply();
  EXPECT_EQ(rec.victim_requests, 2U);
  EXPECT_EQ(rec.tampered_received, 1U);
  EXPECT_DOUBLE_EQ(rec.infection_rate(), 0.5);
}

TEST(GlobalManager, InfectionRateZeroWithoutRequests) {
  GmFixture f;
  f.gm.begin_epoch(0);
  const auto rec = f.gm.allocate_and_reply();
  EXPECT_DOUBLE_EQ(rec.infection_rate(), 0.0);
}

TEST(GlobalManager, MeanInfectionSkipsWarmup) {
  GmFixture f;
  // Epoch 1: fully infected. Epoch 2: clean.
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 1000, true));
  (void)f.gm.allocate_and_reply();
  f.gm.begin_epoch(100);
  f.gm.on_power_request(f.request(1, 1000, false));
  (void)f.gm.allocate_and_reply();
  EXPECT_DOUBLE_EQ(f.gm.mean_infection_rate(0), 0.5);
  EXPECT_DOUBLE_EQ(f.gm.mean_infection_rate(1), 0.0);
}

TEST(GlobalManager, TamperedRequestsShiftAllocation) {
  // End-to-end over the allocator: the victim's shrunken request directly
  // reduces its grant, the attacker's inflated one raises its own.
  GmFixture f;
  std::map<NodeId, std::uint32_t> grants;
  for (NodeId n = 0; n < 16; ++n) {
    f.net.set_handler(n, [&grants, n](const noc::Packet& pkt) {
      if (pkt.type == noc::PacketType::kPowerGrant) grants[n] = pkt.payload;
    });
  }
  f.gm.begin_epoch(0);
  f.gm.on_power_request(f.request(1, 250, true));    // victim, was 2000
  f.gm.on_power_request(f.request(2, 2000, false));  // bystander
  f.gm.on_power_request(f.request(3, 8000, false));  // attacker, was 2000
  (void)f.gm.allocate_and_reply();
  f.engine.run_cycles(60);
  ASSERT_EQ(grants.size(), 3U);
  EXPECT_LT(grants[1], grants[2]);
  EXPECT_GT(grants[3], grants[2]);
}

}  // namespace
}  // namespace htpb::power
