#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include "cpu/frequency.hpp"

namespace htpb::power {
namespace {

TEST(CorePowerModel, PowerMonotoneInLevel) {
  const cpu::FrequencyTable freqs;
  const CorePowerModel model;
  for (int i = 1; i < freqs.num_levels(); ++i) {
    EXPECT_GT(model.milliwatts_at(freqs, i), model.milliwatts_at(freqs, i - 1));
  }
}

TEST(CorePowerModel, DynamicPowerScalesWithVSquaredF) {
  const CorePowerModel model(0.0, 1.0);  // no leakage, Ceff = 1
  const double p1 = model.watts(cpu::FreqLevel{1.0, 1.0});
  const double p2 = model.watts(cpu::FreqLevel{2.0, 1.0});
  EXPECT_DOUBLE_EQ(p2, 2.0 * p1);  // linear in f
  const double p3 = model.watts(cpu::FreqLevel{1.0, 2.0});
  EXPECT_DOUBLE_EQ(p3, 4.0 * p1);  // quadratic in V
}

TEST(CorePowerModel, LeakageScalesWithVoltage) {
  const CorePowerModel model(1.0, 0.0);
  EXPECT_DOUBLE_EQ(model.watts(cpu::FreqLevel{1.0, 0.8}), 0.8);
  EXPECT_DOUBLE_EQ(model.watts(cpu::FreqLevel{2.75, 0.8}), 0.8);
}

TEST(CorePowerModel, MaxLevelWithinBudget) {
  const cpu::FrequencyTable freqs;
  const CorePowerModel model;
  // A huge budget buys the top level.
  EXPECT_EQ(model.max_level_within(freqs, 1'000'000), freqs.max_level());
  // A zero budget still returns the lowest level (never power-gated).
  EXPECT_EQ(model.max_level_within(freqs, 0), freqs.min_level());
  // Exactly the power of level 3 buys level 3.
  const std::uint32_t p3 = model.milliwatts_at(freqs, 3);
  EXPECT_EQ(model.max_level_within(freqs, p3), 3);
  EXPECT_EQ(model.max_level_within(freqs, p3 - 1), 2);
}

TEST(CorePowerModel, MilliwattRounding) {
  const CorePowerModel model(0.0, 1.0);
  // 0.5 W exactly -> 500 mW.
  EXPECT_EQ(model.milliwatts(cpu::FreqLevel{0.5, 1.0}), 500U);
}

TEST(CorePowerModel, DefaultRangeIsPlausible) {
  const cpu::FrequencyTable freqs;
  const CorePowerModel model;
  const auto lo = model.milliwatts_at(freqs, 0);
  const auto hi = model.milliwatts_at(freqs, freqs.max_level());
  EXPECT_GT(lo, 100U);     // not absurdly small
  EXPECT_LT(hi, 10'000U);  // not absurdly large
  EXPECT_GT(hi, 3 * lo);   // a meaningful dynamic range for the attack
}

}  // namespace
}  // namespace htpb::power
