// Per-policy behaviour plus TEST_P invariants every budgeter must satisfy.
#include "power/budgeter.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace htpb::power {
namespace {

std::vector<BudgetRequest> make_requests(std::vector<std::uint32_t> mws) {
  std::vector<BudgetRequest> reqs;
  NodeId node = 0;
  for (const auto mw : mws) {
    reqs.push_back(BudgetRequest{node++, 0, mw});
  }
  return reqs;
}

std::uint64_t total(const std::vector<BudgetGrant>& grants) {
  std::uint64_t sum = 0;
  for (const auto& g : grants) sum += g.grant_mw;
  return sum;
}

TEST(UniformBudgeter, EqualSplitWhenScarce) {
  UniformBudgeter b;
  const auto reqs = make_requests({4000, 4000, 4000, 4000});
  const auto grants = b.allocate(reqs, 4000, 500);
  for (const auto& g : grants) EXPECT_EQ(g.grant_mw, 1000U);
}

TEST(UniformBudgeter, LeftoverRedistributed) {
  UniformBudgeter b;
  // One tiny request frees budget for the others.
  const auto reqs = make_requests({100, 4000, 4000});
  const auto grants = b.allocate(reqs, 4100, 100);
  EXPECT_EQ(grants[0].grant_mw, 100U);
  EXPECT_EQ(grants[1].grant_mw, 2000U);
  EXPECT_EQ(grants[2].grant_mw, 2000U);
}

TEST(GreedyBudgeter, SmallestRequestsSatisfiedFirst) {
  GreedyBudgeter b;
  const auto reqs = make_requests({3000, 500, 1000});
  const auto grants = b.allocate(reqs, 2000, 100);
  EXPECT_EQ(grants[1].grant_mw, 500U);   // fully satisfied
  EXPECT_EQ(grants[2].grant_mw, 1000U);  // fully satisfied
  EXPECT_EQ(grants[0].grant_mw, 500U);   // remainder
}

TEST(ProportionalBudgeter, GrantsScaleWithRequests) {
  ProportionalBudgeter b;
  const auto reqs = make_requests({1000, 2000, 4000});
  const auto grants = b.allocate(reqs, 3500, 0);
  // Headroom above the (zero) floor is 7000; scale = 0.5.
  EXPECT_EQ(grants[0].grant_mw, 500U);
  EXPECT_EQ(grants[1].grant_mw, 1000U);
  EXPECT_EQ(grants[2].grant_mw, 2000U);
}

TEST(ProportionalBudgeter, TheAttackLeverExists) {
  // The vulnerability the Trojan exploits: inflating your request grows
  // your grant at everyone else's expense.
  ProportionalBudgeter b;
  const auto honest = make_requests({2000, 2000, 2000, 2000});
  auto tampered = honest;
  tampered[0].request_mw = 8000;  // attacker boosted
  tampered[1].request_mw = 250;   // victim attenuated
  const auto g_honest = b.allocate(honest, 5000, 400);
  const auto g_tampered = b.allocate(tampered, 5000, 400);
  EXPECT_GT(g_tampered[0].grant_mw, g_honest[0].grant_mw);
  EXPECT_LT(g_tampered[1].grant_mw, g_honest[1].grant_mw);
}

TEST(DpBudgeter, PrefersSpreadingOverConcentration) {
  // sqrt utility has diminishing returns, so two half-fed cores beat one
  // fully-fed core.
  DpBudgeter b(10);
  const auto reqs = make_requests({1000, 1000});
  const auto grants = b.allocate(reqs, 1000, 0);
  EXPECT_NEAR(static_cast<double>(grants[0].grant_mw), 500.0, 30.0);
  EXPECT_NEAR(static_cast<double>(grants[1].grant_mw), 500.0, 30.0);
}

TEST(MarketBudgeter, SurplusFlowsToUnmetDemand) {
  MarketBudgeter b;
  const auto reqs = make_requests({500, 8000});
  const auto grants = b.allocate(reqs, 4000, 100);
  EXPECT_EQ(grants[0].grant_mw, 500U);
  // The second core receives its endowment plus the first one's surplus.
  EXPECT_GT(grants[1].grant_mw, 3000U);
  EXPECT_LE(total(grants), 4000U);
}

TEST(MakeBudgeter, AllKindsConstructible) {
  for (const auto kind :
       {BudgeterKind::kUniform, BudgeterKind::kGreedy,
        BudgeterKind::kProportional, BudgeterKind::kDynamicProgramming,
        BudgeterKind::kMarket}) {
    const auto b = make_budgeter(kind);
    ASSERT_NE(b, nullptr);
    EXPECT_STREQ(b->name(), to_string(kind));
  }
}

// ---- Invariants every policy must satisfy -------------------------------

struct BudgeterInvariantParam {
  BudgeterKind kind;
  std::uint64_t seed;
};

class BudgeterInvariantTest
    : public ::testing::TestWithParam<BudgeterInvariantParam> {};

TEST_P(BudgeterInvariantTest, FeasibilityUnderRandomLoads) {
  const auto param = GetParam();
  const auto budgeter = make_budgeter(param.kind);
  Rng rng(param.seed);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(64));
    std::vector<BudgetRequest> reqs;
    for (int i = 0; i < n; ++i) {
      reqs.push_back(BudgetRequest{static_cast<NodeId>(i), 0,
                                   static_cast<std::uint32_t>(rng.below(5000))});
    }
    const std::uint32_t floor = static_cast<std::uint32_t>(rng.below(800));
    const std::uint64_t budget = rng.below(200'000);
    const auto grants = budgeter->allocate(reqs, budget, floor);

    ASSERT_EQ(grants.size(), reqs.size());
    EXPECT_LE(total(grants), budget) << budgeter->name();
    for (std::size_t i = 0; i < grants.size(); ++i) {
      EXPECT_EQ(grants[i].node, reqs[i].node);
      EXPECT_LE(grants[i].grant_mw, reqs[i].request_mw)
          << budgeter->name() << ": grant exceeds request";
    }
    // If the budget covers all floors, everyone gets at least
    // min(floor, request).
    std::uint64_t floor_sum = 0;
    for (const auto& r : reqs) {
      floor_sum += std::min(floor, r.request_mw);
    }
    if (floor_sum <= budget) {
      for (std::size_t i = 0; i < grants.size(); ++i) {
        EXPECT_GE(grants[i].grant_mw, std::min(floor, reqs[i].request_mw))
            << budgeter->name() << ": floor violated";
      }
    }
  }
}

TEST_P(BudgeterInvariantTest, AbundantBudgetSatisfiesEveryone) {
  const auto budgeter = make_budgeter(GetParam().kind);
  const auto reqs = make_requests({1000, 2500, 400, 3300});
  const auto grants = budgeter->allocate(reqs, 1'000'000, 500);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(grants[i].grant_mw, reqs[i].request_mw) << budgeter->name();
  }
}

TEST_P(BudgeterInvariantTest, EmptyRequestListYieldsNothing) {
  const auto budgeter = make_budgeter(GetParam().kind);
  const auto grants = budgeter->allocate({}, 10'000, 500);
  EXPECT_TRUE(grants.empty());
}

TEST_P(BudgeterInvariantTest, ZeroBudgetGrantsNothing) {
  const auto budgeter = make_budgeter(GetParam().kind);
  const auto reqs = make_requests({1000, 2000});
  const auto grants = budgeter->allocate(reqs, 0, 500);
  EXPECT_EQ(total(grants), 0U);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, BudgeterInvariantTest,
    ::testing::Values(
        BudgeterInvariantParam{BudgeterKind::kUniform, 11},
        BudgeterInvariantParam{BudgeterKind::kGreedy, 22},
        BudgeterInvariantParam{BudgeterKind::kProportional, 33},
        BudgeterInvariantParam{BudgeterKind::kDynamicProgramming, 44},
        BudgeterInvariantParam{BudgeterKind::kMarket, 55}),
    [](const ::testing::TestParamInfo<BudgeterInvariantParam>& info) {
      return to_string(info.param.kind);
    });

}  // namespace
}  // namespace htpb::power
