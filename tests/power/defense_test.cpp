#include "power/defense.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace htpb::power {
namespace {

std::vector<BudgetRequest> epoch(std::vector<std::uint32_t> mws) {
  std::vector<BudgetRequest> reqs;
  NodeId node = 0;
  for (const auto mw : mws) reqs.push_back({node++, 0, mw});
  return reqs;
}

TEST(RequestAnomalyDetector, QuietOnSteadyRequests) {
  RequestAnomalyDetector detector;
  for (int e = 0; e < 10; ++e) {
    const auto report = detector.observe_epoch(epoch({2000, 2100, 1900}));
    EXPECT_FALSE(report.any()) << "epoch " << e;
  }
  EXPECT_FALSE(detector.cumulative().any());
}

TEST(RequestAnomalyDetector, QuietOnGradualDrift) {
  RequestAnomalyDetector detector;
  // A workload phase change: requests drift down 15% per epoch -- inside
  // the trust band, so the history follows and nothing is flagged.
  double mw = 3000.0;
  for (int e = 0; e < 12; ++e) {
    const auto report =
        detector.observe_epoch(epoch({static_cast<std::uint32_t>(mw)}));
    EXPECT_FALSE(report.any()) << "epoch " << e;
    mw *= 0.85;
  }
}

TEST(RequestAnomalyDetector, FlagsAttenuatedVictim) {
  RequestAnomalyDetector detector;
  for (int e = 0; e < 4; ++e) (void)detector.observe_epoch(epoch({2000}));
  // The Trojan activates: requests collapse by 10x.
  (void)detector.observe_epoch(epoch({200}));
  const auto report = detector.observe_epoch(epoch({200}));
  ASSERT_EQ(report.flagged_low.size(), 1U);
  EXPECT_EQ(report.flagged_low[0], 0U);
  EXPECT_TRUE(report.flagged_high.empty());
}

TEST(RequestAnomalyDetector, FlagsBoostedAccomplice) {
  RequestAnomalyDetector detector;
  for (int e = 0; e < 4; ++e) (void)detector.observe_epoch(epoch({2000}));
  (void)detector.observe_epoch(epoch({16000}));
  const auto report = detector.observe_epoch(epoch({16000}));
  ASSERT_EQ(report.flagged_high.size(), 1U);
  EXPECT_TRUE(report.flagged_low.empty());
}

TEST(RequestAnomalyDetector, SingleSpikeNotConfirmed) {
  RequestAnomalyDetector detector;  // confirm_epochs = 2
  for (int e = 0; e < 4; ++e) (void)detector.observe_epoch(epoch({2000}));
  (void)detector.observe_epoch(epoch({200}));   // one anomalous epoch
  const auto report = detector.observe_epoch(epoch({2000}));  // recovers
  EXPECT_FALSE(report.any());
  EXPECT_FALSE(detector.cumulative().any());
}

TEST(RequestAnomalyDetector, EachCoreReportedOnce) {
  RequestAnomalyDetector detector;
  for (int e = 0; e < 4; ++e) (void)detector.observe_epoch(epoch({2000}));
  for (int e = 0; e < 6; ++e) (void)detector.observe_epoch(epoch({200}));
  EXPECT_EQ(detector.cumulative().flagged_low.size(), 1U);
}

TEST(RequestAnomalyDetector, AnomalousSamplesDoNotPoisonHistory) {
  RequestAnomalyDetector detector;
  for (int e = 0; e < 4; ++e) (void)detector.observe_epoch(epoch({2000}));
  const double before = detector.history_of(0);
  for (int e = 0; e < 5; ++e) (void)detector.observe_epoch(epoch({200}));
  // The history must still reflect the honest baseline, not the tampered
  // stream, so recovery is detected correctly.
  EXPECT_NEAR(detector.history_of(0), before, 1.0);
}

TEST(RequestAnomalyDetector, TracksEpochsAndDetectionLatency) {
  RequestAnomalyDetector detector;
  for (int e = 0; e < 4; ++e) (void)detector.observe_epoch(epoch({2000}));
  EXPECT_EQ(detector.cumulative().epochs_observed, 4U);
  EXPECT_EQ(detector.cumulative().first_flag_epoch, -1);
  (void)detector.observe_epoch(epoch({200}));  // epoch 4: first anomaly
  (void)detector.observe_epoch(epoch({200}));  // epoch 5: confirmed
  EXPECT_EQ(detector.cumulative().first_flag_epoch, 5);
  EXPECT_EQ(detector.cumulative().epochs_observed, 6U);
}

TEST(RequestAnomalyDetector, ResetRestoresFreshState) {
  // The cross-run leak this PR fixes: a detector carried into a second
  // run kept the first run's history and flags. reset() must make it
  // behave exactly like a new instance.
  RequestAnomalyDetector reused;
  for (int e = 0; e < 4; ++e) (void)reused.observe_epoch(epoch({2000}));
  for (int e = 0; e < 3; ++e) (void)reused.observe_epoch(epoch({200}));
  ASSERT_TRUE(reused.cumulative().any());  // contaminated state
  reused.reset();
  EXPECT_FALSE(reused.cumulative().any());
  EXPECT_EQ(reused.cumulative().observations, 0U);
  EXPECT_EQ(reused.cumulative().epochs_observed, 0U);
  EXPECT_EQ(reused.history_of(0), 0.0);

  // Replay a second run on both the reset detector and a fresh one.
  RequestAnomalyDetector fresh;
  for (int e = 0; e < 4; ++e) {
    (void)reused.observe_epoch(epoch({3000, 1000}));
    (void)fresh.observe_epoch(epoch({3000, 1000}));
  }
  const auto a = reused.observe_epoch(epoch({300, 8000}));
  const auto b = fresh.observe_epoch(epoch({300, 8000}));
  EXPECT_EQ(a, b);
  EXPECT_EQ(reused.cumulative(), fresh.cumulative());
}

TEST(RequestAnomalyDetector, DefaultFactoryHonoursConfig) {
  DetectorConfig cfg;
  cfg.low_ratio = 0.9;
  cfg.confirm_epochs = 1;
  const auto detector = make_detector(cfg);
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->config(), cfg);
  for (int e = 0; e < 4; ++e) (void)detector->observe_epoch(epoch({2000}));
  // With confirm_epochs = 1 a single 20% dip inside the 0.9 band flags.
  const auto report = detector->observe_epoch(epoch({1600}));
  EXPECT_EQ(report.flagged_low.size(), 1U);
}

TEST(RequestAnomalyDetector, ZeroSamplesNeitherArmNorDecayHistory) {
  // Arming contract: zero-valued requests must not advance a core's
  // warmup (the old epochs_seen gate armed on them) and must not drag an
  // in-warmup history toward zero through the EWMA.
  RequestAnomalyDetector detector;
  (void)detector.observe_epoch(epoch({2000}));  // one positive seed
  for (int e = 0; e < 6; ++e) (void)detector.observe_epoch(epoch({0}));
  EXPECT_EQ(detector.history_of(0), 2000.0);  // not decayed
  EXPECT_EQ(detector.unarmed_cores(), 1U);    // still in warmup
  // Wakes at a wildly different level: still inside warmup, so no
  // instant verbatim trust -- and no flag either way yet.
  const auto report = detector.observe_epoch(epoch({200}));
  EXPECT_FALSE(report.any());
}

TEST(RequestAnomalyDetector, LateColdStartGetsFullWarmupNotVerbatimTrust) {
  // The re-seeding hole this PR closes: a core idle (zero-valued) through
  // warmup used to take its first live sample verbatim as trusted history
  // with no anomaly check. Now it runs the same positive-sample warmup as
  // everyone else, so one tampered wake-up sample is diluted by the
  // following warmup samples instead of standing alone as the whole
  // trusted history -- honest traffic after it is not flagged as a
  // "boost" against an attacked-level anchor.
  DetectorConfig cfg;
  cfg.warmup_epochs = 4;
  RequestAnomalyDetector detector(cfg);
  for (int e = 0; e < 4; ++e) (void)detector.observe_epoch(epoch({0, 2000}));
  EXPECT_EQ(detector.unarmed_cores(), 1U);  // node 0 unarmed, visibly
  // Node 0 wakes with one Trojan-attenuated sample, then runs honest.
  (void)detector.observe_epoch(epoch({200, 2000}));
  for (int e = 0; e < 6; ++e) {
    (void)detector.observe_epoch(epoch({2000, 2000}));
  }
  EXPECT_EQ(detector.unarmed_cores(), 0U);
  // Old behavior: 200 trusted verbatim -> the honest 2000s flagged high.
  EXPECT_TRUE(detector.cumulative().flagged_high.empty());
}

TEST(RequestAnomalyDetector, AnchoredFromFirstSampleIsTheDocumentedMiss) {
  // Self-history fundamental limit (why CohortMedianDetector exists): a
  // stream attacked from its very first sample anchors the trust band to
  // the attacked level and is never flagged.
  RequestAnomalyDetector ewma;
  CohortMedianDetector cohort{DetectorConfig{
      .kind = DetectorKind::kCohortMedian}};
  // Node 0 attenuated 10x from its first epoch; 4 honest peers.
  for (int e = 0; e < 8; ++e) {
    const auto reqs = epoch({200, 2000, 2100, 1900, 2000});
    (void)ewma.observe_epoch(reqs);
    (void)cohort.observe_epoch(reqs);
  }
  EXPECT_FALSE(ewma.cumulative().any());  // blind by construction
  ASSERT_EQ(cohort.cumulative().flagged_low.size(), 1U);
  EXPECT_EQ(cohort.cumulative().flagged_low[0], 0U);
}

TEST(CohortMedianDetector, CatchesAttackFromEpochZeroWithLowLatency) {
  CohortMedianDetector detector{DetectorConfig{
      .kind = DetectorKind::kCohortMedian}};  // confirm_epochs = 2
  for (int e = 0; e < 3; ++e) {
    (void)detector.observe_epoch(epoch({200, 2000, 2100, 1900, 16000}));
  }
  // Needs no history: confirmed on the second consecutive epoch.
  EXPECT_EQ(detector.cumulative().first_flag_epoch, 1);
  ASSERT_EQ(detector.cumulative().flagged_low.size(), 1U);
  EXPECT_EQ(detector.cumulative().flagged_low[0], 0U);
  ASSERT_EQ(detector.cumulative().flagged_high.size(), 1U);
  EXPECT_EQ(detector.cumulative().flagged_high[0], 4U);
  EXPECT_EQ(detector.unarmed_cores(), 0U);
}

TEST(CohortMedianDetector, QuietOnHomogeneousAndGloballyDriftingCohort) {
  CohortMedianDetector detector{DetectorConfig{
      .kind = DetectorKind::kCohortMedian}};
  // Whole-chip phase change: everyone drifts down together, the median
  // drifts with them -- no flags (the self-history analogue holds too).
  double mw = 3000.0;
  for (int e = 0; e < 10; ++e) {
    const auto v = static_cast<std::uint32_t>(mw);
    (void)detector.observe_epoch(epoch({v, v, v, v, v, v}));
    mw *= 0.80;
  }
  EXPECT_FALSE(detector.cumulative().any());
}

TEST(CohortMedianDetector, ThinCohortIsObservedButNotJudged) {
  CohortMedianDetector detector{DetectorConfig{
      .kind = DetectorKind::kCohortMedian}};
  for (int e = 0; e < 5; ++e) {
    (void)detector.observe_epoch(epoch({200, 2000, 2000}));  // < kMinCohort
  }
  EXPECT_FALSE(detector.cumulative().any());
  EXPECT_EQ(detector.cumulative().epochs_observed, 5U);
  EXPECT_EQ(detector.cumulative().observations, 15U);
}

TEST(CohortMedianDetector, IdleZeroSamplesAreNeverJudged) {
  // Same zero-sample contract as the self-history types: a zero-valued
  // request is not a cohort member -- it must not be flagged as an
  // attenuated victim just for sitting below the median.
  CohortMedianDetector detector{DetectorConfig{
      .kind = DetectorKind::kCohortMedian}};
  for (int e = 0; e < 5; ++e) {
    (void)detector.observe_epoch(epoch({0, 2000, 2100, 1900, 2000}));
  }
  EXPECT_FALSE(detector.cumulative().any());
}

TEST(CohortMedianDetector, ResetMatchesFreshInstance) {
  const DetectorConfig cfg{.kind = DetectorKind::kCohortMedian};
  CohortMedianDetector reused{cfg};
  for (int e = 0; e < 4; ++e) {
    (void)reused.observe_epoch(epoch({200, 2000, 2100, 1900, 2000}));
  }
  ASSERT_TRUE(reused.cumulative().any());
  reused.reset();
  CohortMedianDetector fresh{cfg};
  for (int e = 0; e < 4; ++e) {
    const auto reqs = epoch({300, 3000, 3100, 2900, 3000});
    const auto a = reused.observe_epoch(reqs);
    const auto b = fresh.observe_epoch(reqs);
    EXPECT_EQ(a, b) << e;
  }
  EXPECT_EQ(reused.cumulative(), fresh.cumulative());
}

TEST(CohortMedianDetector, FactoryDispatchesOnKind) {
  DetectorConfig cfg;
  cfg.kind = DetectorKind::kCohortMedian;
  const auto detector = make_detector(cfg);
  ASSERT_NE(detector, nullptr);
  EXPECT_NE(dynamic_cast<CohortMedianDetector*>(detector.get()), nullptr);
  EXPECT_EQ(detector->config(), cfg);
}

TEST(DetectorReport, UniqueFlaggedDeduplicatesAcrossLists) {
  // The DefenseSweep detection-rate regression: a core in both lists
  // (duty-cycle swings) must count once, or rates exceed 1.
  DetectorReport rep;
  rep.flagged_low = {3, 1, 7};
  rep.flagged_high = {1, 7, 9};
  EXPECT_EQ(rep.unique_flagged(), 4U);  // {1, 3, 7, 9}
  rep.flagged_high.clear();
  EXPECT_EQ(rep.unique_flagged(), 3U);
  rep.flagged_low.clear();
  EXPECT_EQ(rep.unique_flagged(), 0U);
}

TEST(GuardedBudgeter, ClampsTamperedRequests) {
  GuardedBudgeter guarded(make_budgeter(BudgeterKind::kProportional));
  // Build trust over several honest epochs.
  std::vector<BudgetGrant> grants;
  for (int e = 0; e < 5; ++e) {
    grants = guarded.allocate(epoch({2000, 2000, 2000, 2000}), 6000, 400);
  }
  const std::uint32_t honest_grant = grants[0].grant_mw;
  // Attack epoch: victim request slashed to 200, attacker boosted to 16000.
  grants = guarded.allocate(epoch({200, 16000, 2000, 2000}), 6000, 400);
  // The victim's grant is based on the clamped (trusted) value, so it
  // stays within the band of its honest grant rather than collapsing 10x.
  EXPECT_GT(grants[0].grant_mw, honest_grant / 3);
  // The attacker cannot multiply its share by 8 either.
  EXPECT_LT(grants[1].grant_mw, 3 * honest_grant);
}

TEST(GuardedBudgeter, TransparentForHonestTraffic) {
  GuardedBudgeter guarded(make_budgeter(BudgeterKind::kProportional));
  ProportionalBudgeter plain;
  std::vector<BudgetGrant> g1;
  std::vector<BudgetGrant> g2;
  for (int e = 0; e < 6; ++e) {
    const auto reqs = epoch({1000, 2000, 3000});
    g1 = guarded.allocate(reqs, 4000, 300);
    g2 = plain.allocate(reqs, 4000, 300);
  }
  ASSERT_EQ(g1.size(), g2.size());
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(g1[i].grant_mw),
                static_cast<double>(g2[i].grant_mw), 2.0);
  }
}

TEST(GuardedBudgeter, ResetForgetsTrustHistory) {
  GuardedBudgeter guarded(make_budgeter(BudgeterKind::kProportional));
  ProportionalBudgeter plain;
  for (int e = 0; e < 6; ++e) {
    (void)guarded.allocate(epoch({2000, 2000, 2000}), 4000, 300);
  }
  guarded.reset();
  // After reset the guard is back in warmup: a wildly different epoch
  // passes through unclamped, exactly as on a fresh instance.
  const auto reqs = epoch({200, 16000, 2000});
  const auto guarded_grants = guarded.allocate(reqs, 4000, 300);
  const auto plain_grants = plain.allocate(reqs, 4000, 300);
  ASSERT_EQ(guarded_grants.size(), plain_grants.size());
  for (std::size_t i = 0; i < guarded_grants.size(); ++i) {
    EXPECT_EQ(guarded_grants[i].grant_mw, plain_grants[i].grant_mw) << i;
  }
}

TEST(GuardedBudgeter, ZeroSamplesDoNotArmOrDecayTrust) {
  // Same cold-start contract as the detector: a core idle (zero-valued)
  // through warmup must not arm, and its eventual first live sample goes
  // through warmup instead of being clamped against a stale/empty band.
  GuardedBudgeter guarded(make_budgeter(BudgeterKind::kProportional));
  ProportionalBudgeter plain;
  for (int e = 0; e < 6; ++e) {
    (void)guarded.allocate(epoch({0, 2000}), 4000, 300);
  }
  // Node 0 wakes: still in warmup, so the request passes through
  // unclamped, exactly as the plain allocator would grant it.
  const auto reqs = epoch({1500, 2000});
  const auto g = guarded.allocate(reqs, 4000, 300);
  const auto p = plain.allocate(reqs, 4000, 300);
  ASSERT_EQ(g.size(), p.size());
  EXPECT_EQ(g[0].grant_mw, p[0].grant_mw);
}

TEST(GuardedBudgeter, BudgetStillRespected) {
  GuardedBudgeter guarded(make_budgeter(BudgeterKind::kGreedy));
  for (int e = 0; e < 6; ++e) {
    const auto grants = guarded.allocate(epoch({3000, 3000, 500}), 4000, 300);
    std::uint64_t total = 0;
    for (const auto& g : grants) total += g.grant_mw;
    EXPECT_LE(total, 4000U);
  }
}

}  // namespace
}  // namespace htpb::power
