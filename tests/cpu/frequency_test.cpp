#include "cpu/frequency.hpp"

#include <gtest/gtest.h>

namespace htpb::cpu {
namespace {

TEST(FrequencyTable, DefaultHasEightAscendingLevels) {
  const FrequencyTable table;
  ASSERT_EQ(table.num_levels(), 8);
  EXPECT_DOUBLE_EQ(table.ghz(0), 0.60);
  EXPECT_DOUBLE_EQ(table.ghz(table.max_level()), 2.75);
  for (int i = 1; i < table.num_levels(); ++i) {
    EXPECT_GT(table.ghz(i), table.ghz(i - 1));
    EXPECT_GT(table.volts(i), table.volts(i - 1));
  }
}

TEST(FrequencyTable, MinMaxLevels) {
  const FrequencyTable table;
  EXPECT_EQ(table.min_level(), 0);
  EXPECT_EQ(table.max_level(), 7);
}

TEST(FrequencyTable, CustomLadder) {
  const FrequencyTable table({{1.0, 0.7}, {2.0, 0.9}});
  EXPECT_EQ(table.num_levels(), 2);
  EXPECT_DOUBLE_EQ(table.level(1).ghz, 2.0);
}

TEST(FrequencyTable, RejectsDegenerateLadders) {
  EXPECT_THROW(FrequencyTable({{1.0, 0.7}}), std::invalid_argument);
  EXPECT_THROW(FrequencyTable({{2.0, 0.9}, {1.0, 0.7}}),
               std::invalid_argument);
  EXPECT_THROW(FrequencyTable({{1.0, 0.7}, {1.0, 0.8}}),
               std::invalid_argument);
}

TEST(FrequencyTable, LevelOutOfRangeThrows) {
  const FrequencyTable table;
  EXPECT_THROW((void)table.level(8), std::out_of_range);
  EXPECT_THROW((void)table.level(-1), std::out_of_range);
}

}  // namespace
}  // namespace htpb::cpu
