#include "cpu/ipc_model.hpp"

#include <gtest/gtest.h>

namespace htpb::cpu {
namespace {

TEST(IpcModel, ComputeBoundIpcNearlyFlatInFrequency) {
  IpcModel model(0.5, 0.0005);
  model.set_mem_latency_ns(40.0);
  const double ipc_lo = model.ipc(1.0);
  const double ipc_hi = model.ipc(2.75);
  EXPECT_GT(ipc_hi, 0.9 * ipc_lo);  // IPC barely moves
  // But throughput scales nearly linearly.
  EXPECT_GT(model.throughput(2.75), 2.3 * model.throughput(1.0));
}

TEST(IpcModel, MemoryBoundThroughputSaturates) {
  IpcModel model(0.9, 0.01);
  model.set_mem_latency_ns(250.0);  // streams through main memory
  const double gain = model.throughput(2.75) / model.throughput(1.0);
  EXPECT_LT(gain, 1.5);  // far below the 2.75x frequency ratio
}

TEST(IpcModel, ThroughputMonotoneInFrequency) {
  for (const double mpi : {0.0, 0.001, 0.01, 0.05}) {
    IpcModel model(0.6, mpi);
    model.set_mem_latency_ns(120.0);
    double prev = 0.0;
    for (double f = 0.6; f <= 2.8; f += 0.25) {
      const double t = model.throughput(f);
      EXPECT_GT(t, prev) << "mpi=" << mpi << " f=" << f;
      prev = t;
    }
  }
}

TEST(IpcModel, HigherLatencyLowersIpc) {
  IpcModel fast(0.6, 0.005);
  IpcModel slow(0.6, 0.005);
  fast.set_mem_latency_ns(30.0);
  slow.set_mem_latency_ns(300.0);
  EXPECT_GT(fast.ipc(2.0), slow.ipc(2.0));
}

TEST(IpcModel, ObserveLatencyConvergesToObservations) {
  IpcModel model(0.6, 0.005);
  model.set_mem_latency_ns(40.0);
  for (int i = 0; i < 500; ++i) model.observe_latency(200.0);
  EXPECT_NEAR(model.mem_latency_ns(), 200.0, 1.0);
}

TEST(IpcModel, UpdateMpiMovesTowardMeasurement) {
  IpcModel model(0.6, 0.001);
  for (int i = 0; i < 100; ++i) model.update_mpi(0.01);
  EXPECT_NEAR(model.mpi(), 0.01, 0.0005);
  model.update_mpi(-1.0);  // invalid measurements are ignored
  EXPECT_NEAR(model.mpi(), 0.01, 0.0005);
}

TEST(IpcModel, ZeroMissRateGivesPureCoreIpc) {
  IpcModel model(0.5, 0.0);
  model.set_mem_latency_ns(1000.0);
  EXPECT_DOUBLE_EQ(model.ipc(2.0), 2.0);  // 1 / 0.5
}

}  // namespace
}  // namespace htpb::cpu
