#include "cpu/core_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace htpb::cpu {
namespace {

struct CoreFixture {
  FrequencyTable freqs;
  CoreModel core{7, 3, IpcModel(0.5, 0.002), &freqs, 1234};
};

TEST(CoreModel, Identity) {
  CoreFixture f;
  EXPECT_EQ(f.core.node(), 7U);
  EXPECT_EQ(f.core.app(), 3U);
}

TEST(CoreModel, RetiresInstructionsAtThroughput) {
  CoreFixture f;
  f.core.set_level(f.freqs.max_level());
  const double expected_per_ns = f.core.current_throughput();
  for (int i = 0; i < 1000; ++i) f.core.tick(static_cast<Cycle>(i));
  EXPECT_NEAR(f.core.instructions_retired(), expected_per_ns * 1000.0, 1e-6);
}

TEST(CoreModel, HigherLevelRetiresFaster) {
  CoreFixture lo;
  CoreFixture hi;
  lo.core.set_level(0);
  hi.core.set_level(7);
  for (int i = 0; i < 1000; ++i) {
    lo.core.tick(static_cast<Cycle>(i));
    hi.core.tick(static_cast<Cycle>(i));
  }
  EXPECT_GT(hi.core.instructions_retired(),
            2.0 * lo.core.instructions_retired());
}

TEST(CoreModel, DutyCyclingThrottlesRetirement) {
  CoreFixture full;
  CoreFixture half;
  full.core.set_level(0);
  half.core.set_level(0);
  half.core.set_duty(0.5);
  for (int i = 0; i < 1000; ++i) {
    full.core.tick(static_cast<Cycle>(i));
    half.core.tick(static_cast<Cycle>(i));
  }
  EXPECT_NEAR(half.core.instructions_retired(),
              0.5 * full.core.instructions_retired(), 1e-6);
}

TEST(CoreModel, DutyClampedToSaneRange) {
  CoreFixture f;
  f.core.set_duty(5.0);
  EXPECT_DOUBLE_EQ(f.core.duty(), 1.0);
  f.core.set_duty(-1.0);
  EXPECT_DOUBLE_EQ(f.core.duty(), 0.05);
}

TEST(CoreModel, MemoryAccessesFollowConfiguredRate) {
  CoreFixture f;
  int accesses = 0;
  f.core.set_mem_access_fn([&](std::uint64_t, bool) { ++accesses; });
  f.core.set_address_stream(0, 4096, 1 << 20, 512, 0.1, 0.2,
                            /*apki=*/10.0);
  f.core.set_level(f.freqs.max_level());
  for (int i = 0; i < 20000; ++i) f.core.tick(static_cast<Cycle>(i));
  const double instr = f.core.instructions_retired();
  const double expected = instr * 10.0 / 1000.0;
  EXPECT_NEAR(accesses, expected, expected * 0.02 + 2.0);
  EXPECT_EQ(f.core.accesses_issued(), static_cast<std::uint64_t>(accesses));
}

TEST(CoreModel, AddressStreamStaysInConfiguredRegions) {
  CoreFixture f;
  constexpr std::uint64_t kPrivBase = 1ULL << 30;
  constexpr std::uint64_t kPrivLines = 1000;
  constexpr std::uint64_t kSharedBase = 1ULL << 40;
  constexpr std::uint64_t kSharedLines = 100;
  std::vector<std::uint64_t> addrs;
  f.core.set_mem_access_fn(
      [&](std::uint64_t a, bool) { addrs.push_back(a); });
  f.core.set_address_stream(kPrivBase, kPrivLines, kSharedBase, kSharedLines,
                            0.3, 0.2, 20.0);
  f.core.set_level(7);
  for (int i = 0; i < 30000; ++i) f.core.tick(static_cast<Cycle>(i));
  ASSERT_GT(addrs.size(), 100U);
  int shared = 0;
  for (const auto a : addrs) {
    const bool in_priv = a >= kPrivBase && a < kPrivBase + kPrivLines;
    const bool in_shared = a >= kSharedBase && a < kSharedBase + kSharedLines;
    EXPECT_TRUE(in_priv || in_shared) << "address outside both regions";
    if (in_shared) ++shared;
  }
  const double shared_frac = static_cast<double>(shared) / addrs.size();
  EXPECT_NEAR(shared_frac, 0.3, 0.05);
}

TEST(CoreModel, WriteFractionRespected) {
  CoreFixture f;
  int writes = 0;
  int total = 0;
  f.core.set_mem_access_fn([&](std::uint64_t, bool w) {
    ++total;
    if (w) ++writes;
  });
  f.core.set_address_stream(0, 1024, 1 << 20, 64, 0.0, 0.4, 20.0);
  f.core.set_level(7);
  for (int i = 0; i < 30000; ++i) f.core.tick(static_cast<Cycle>(i));
  ASSERT_GT(total, 500);
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.4, 0.05);
}

TEST(CoreModel, NoTrafficWithoutCallback) {
  CoreFixture f;
  f.core.set_address_stream(0, 1024, 0, 64, 0.1, 0.2, 50.0);
  for (int i = 0; i < 1000; ++i) f.core.tick(static_cast<Cycle>(i));
  EXPECT_EQ(f.core.accesses_issued(), 0U);
}

TEST(CoreModel, ResetInstructionCount) {
  CoreFixture f;
  for (int i = 0; i < 100; ++i) f.core.tick(static_cast<Cycle>(i));
  EXPECT_GT(f.core.instructions_retired(), 0.0);
  f.core.reset_instruction_count();
  EXPECT_DOUBLE_EQ(f.core.instructions_retired(), 0.0);
}

}  // namespace
}  // namespace htpb::cpu
