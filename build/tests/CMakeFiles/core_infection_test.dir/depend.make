# Empty dependencies file for core_infection_test.
# This may be replaced when dependencies are built.
