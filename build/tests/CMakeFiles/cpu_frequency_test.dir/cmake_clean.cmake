file(REMOVE_RECURSE
  "CMakeFiles/cpu_frequency_test.dir/cpu/frequency_test.cpp.o"
  "CMakeFiles/cpu_frequency_test.dir/cpu/frequency_test.cpp.o.d"
  "cpu_frequency_test"
  "cpu_frequency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_frequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
