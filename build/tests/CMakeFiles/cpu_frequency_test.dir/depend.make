# Empty dependencies file for cpu_frequency_test.
# This may be replaced when dependencies are built.
