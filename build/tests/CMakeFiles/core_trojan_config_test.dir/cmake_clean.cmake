file(REMOVE_RECURSE
  "CMakeFiles/core_trojan_config_test.dir/core/trojan_config_test.cpp.o"
  "CMakeFiles/core_trojan_config_test.dir/core/trojan_config_test.cpp.o.d"
  "core_trojan_config_test"
  "core_trojan_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trojan_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
