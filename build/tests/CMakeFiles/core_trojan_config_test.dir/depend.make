# Empty dependencies file for core_trojan_config_test.
# This may be replaced when dependencies are built.
