# Empty dependencies file for noc_packet_test.
# This may be replaced when dependencies are built.
