file(REMOVE_RECURSE
  "CMakeFiles/noc_packet_test.dir/noc/packet_test.cpp.o"
  "CMakeFiles/noc_packet_test.dir/noc/packet_test.cpp.o.d"
  "noc_packet_test"
  "noc_packet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
