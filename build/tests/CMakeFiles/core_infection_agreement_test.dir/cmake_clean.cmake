file(REMOVE_RECURSE
  "CMakeFiles/core_infection_agreement_test.dir/core/infection_agreement_test.cpp.o"
  "CMakeFiles/core_infection_agreement_test.dir/core/infection_agreement_test.cpp.o.d"
  "core_infection_agreement_test"
  "core_infection_agreement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_infection_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
