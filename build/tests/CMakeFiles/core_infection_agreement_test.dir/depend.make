# Empty dependencies file for core_infection_agreement_test.
# This may be replaced when dependencies are built.
