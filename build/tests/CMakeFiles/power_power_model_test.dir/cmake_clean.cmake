file(REMOVE_RECURSE
  "CMakeFiles/power_power_model_test.dir/power/power_model_test.cpp.o"
  "CMakeFiles/power_power_model_test.dir/power/power_model_test.cpp.o.d"
  "power_power_model_test"
  "power_power_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_power_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
