# Empty dependencies file for power_power_model_test.
# This may be replaced when dependencies are built.
