# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for power_power_model_test.
