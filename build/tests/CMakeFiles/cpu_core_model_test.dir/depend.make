# Empty dependencies file for cpu_core_model_test.
# This may be replaced when dependencies are built.
