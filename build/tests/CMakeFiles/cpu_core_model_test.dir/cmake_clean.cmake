file(REMOVE_RECURSE
  "CMakeFiles/cpu_core_model_test.dir/cpu/core_model_test.cpp.o"
  "CMakeFiles/cpu_core_model_test.dir/cpu/core_model_test.cpp.o.d"
  "cpu_core_model_test"
  "cpu_core_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_core_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
