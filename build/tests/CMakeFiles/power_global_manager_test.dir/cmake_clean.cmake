file(REMOVE_RECURSE
  "CMakeFiles/power_global_manager_test.dir/power/global_manager_test.cpp.o"
  "CMakeFiles/power_global_manager_test.dir/power/global_manager_test.cpp.o.d"
  "power_global_manager_test"
  "power_global_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_global_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
