# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for power_global_manager_test.
