# Empty dependencies file for power_global_manager_test.
# This may be replaced when dependencies are built.
