file(REMOVE_RECURSE
  "CMakeFiles/power_defense_test.dir/power/defense_test.cpp.o"
  "CMakeFiles/power_defense_test.dir/power/defense_test.cpp.o.d"
  "power_defense_test"
  "power_defense_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_defense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
