# Empty dependencies file for power_defense_test.
# This may be replaced when dependencies are built.
