file(REMOVE_RECURSE
  "CMakeFiles/core_parallel_sweep_test.dir/core/parallel_sweep_test.cpp.o"
  "CMakeFiles/core_parallel_sweep_test.dir/core/parallel_sweep_test.cpp.o.d"
  "core_parallel_sweep_test"
  "core_parallel_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_parallel_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
