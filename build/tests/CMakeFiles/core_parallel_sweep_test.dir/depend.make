# Empty dependencies file for core_parallel_sweep_test.
# This may be replaced when dependencies are built.
