# Empty dependencies file for cpu_ipc_model_test.
# This may be replaced when dependencies are built.
