# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cpu_ipc_model_test.
