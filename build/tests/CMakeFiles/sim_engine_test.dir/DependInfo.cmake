
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/engine_test.cpp" "tests/CMakeFiles/sim_engine_test.dir/sim/engine_test.cpp.o" "gcc" "tests/CMakeFiles/sim_engine_test.dir/sim/engine_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/htpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/htpb_system.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/htpb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/htpb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/htpb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/htpb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/htpb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/htpb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/htpb_common.dir/DependInfo.cmake"
  "/root/repo/build/_deps/googletest-build/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  "/root/repo/build/_deps/googletest-build/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
