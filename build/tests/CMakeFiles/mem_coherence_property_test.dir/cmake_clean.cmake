file(REMOVE_RECURSE
  "CMakeFiles/mem_coherence_property_test.dir/mem/coherence_property_test.cpp.o"
  "CMakeFiles/mem_coherence_property_test.dir/mem/coherence_property_test.cpp.o.d"
  "mem_coherence_property_test"
  "mem_coherence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_coherence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
