# Empty dependencies file for mem_coherence_property_test.
# This may be replaced when dependencies are built.
