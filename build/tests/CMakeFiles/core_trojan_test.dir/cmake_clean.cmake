file(REMOVE_RECURSE
  "CMakeFiles/core_trojan_test.dir/core/trojan_test.cpp.o"
  "CMakeFiles/core_trojan_test.dir/core/trojan_test.cpp.o.d"
  "core_trojan_test"
  "core_trojan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trojan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
