file(REMOVE_RECURSE
  "CMakeFiles/common_matrix_test.dir/common/matrix_test.cpp.o"
  "CMakeFiles/common_matrix_test.dir/common/matrix_test.cpp.o.d"
  "common_matrix_test"
  "common_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
