file(REMOVE_RECURSE
  "CMakeFiles/noc_router_test.dir/noc/router_test.cpp.o"
  "CMakeFiles/noc_router_test.dir/noc/router_test.cpp.o.d"
  "noc_router_test"
  "noc_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
