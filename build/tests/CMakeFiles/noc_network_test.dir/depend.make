# Empty dependencies file for noc_network_test.
# This may be replaced when dependencies are built.
