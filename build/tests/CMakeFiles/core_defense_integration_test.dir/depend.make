# Empty dependencies file for core_defense_integration_test.
# This may be replaced when dependencies are built.
