file(REMOVE_RECURSE
  "CMakeFiles/core_defense_integration_test.dir/core/defense_integration_test.cpp.o"
  "CMakeFiles/core_defense_integration_test.dir/core/defense_integration_test.cpp.o.d"
  "core_defense_integration_test"
  "core_defense_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_defense_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
