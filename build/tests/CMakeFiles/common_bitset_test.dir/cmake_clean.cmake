file(REMOVE_RECURSE
  "CMakeFiles/common_bitset_test.dir/common/bitset_test.cpp.o"
  "CMakeFiles/common_bitset_test.dir/common/bitset_test.cpp.o.d"
  "common_bitset_test"
  "common_bitset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bitset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
