# Empty dependencies file for power_budgeter_test.
# This may be replaced when dependencies are built.
