file(REMOVE_RECURSE
  "CMakeFiles/power_budgeter_test.dir/power/budgeter_test.cpp.o"
  "CMakeFiles/power_budgeter_test.dir/power/budgeter_test.cpp.o.d"
  "power_budgeter_test"
  "power_budgeter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_budgeter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
