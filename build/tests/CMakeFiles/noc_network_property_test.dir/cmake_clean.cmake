file(REMOVE_RECURSE
  "CMakeFiles/noc_network_property_test.dir/noc/network_property_test.cpp.o"
  "CMakeFiles/noc_network_property_test.dir/noc/network_property_test.cpp.o.d"
  "noc_network_property_test"
  "noc_network_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_network_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
