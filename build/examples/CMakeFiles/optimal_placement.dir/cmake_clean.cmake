file(REMOVE_RECURSE
  "CMakeFiles/optimal_placement.dir/optimal_placement.cpp.o"
  "CMakeFiles/optimal_placement.dir/optimal_placement.cpp.o.d"
  "optimal_placement"
  "optimal_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
