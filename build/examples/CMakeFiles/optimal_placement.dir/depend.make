# Empty dependencies file for optimal_placement.
# This may be replaced when dependencies are built.
