# Empty dependencies file for stealth_report.
# This may be replaced when dependencies are built.
