file(REMOVE_RECURSE
  "CMakeFiles/stealth_report.dir/stealth_report.cpp.o"
  "CMakeFiles/stealth_report.dir/stealth_report.cpp.o.d"
  "stealth_report"
  "stealth_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stealth_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
