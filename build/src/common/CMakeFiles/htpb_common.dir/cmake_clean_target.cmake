file(REMOVE_RECURSE
  "libhtpb_common.a"
)
