file(REMOVE_RECURSE
  "CMakeFiles/htpb_common.dir/geometry.cpp.o"
  "CMakeFiles/htpb_common.dir/geometry.cpp.o.d"
  "CMakeFiles/htpb_common.dir/log.cpp.o"
  "CMakeFiles/htpb_common.dir/log.cpp.o.d"
  "CMakeFiles/htpb_common.dir/matrix.cpp.o"
  "CMakeFiles/htpb_common.dir/matrix.cpp.o.d"
  "CMakeFiles/htpb_common.dir/rng.cpp.o"
  "CMakeFiles/htpb_common.dir/rng.cpp.o.d"
  "CMakeFiles/htpb_common.dir/stats.cpp.o"
  "CMakeFiles/htpb_common.dir/stats.cpp.o.d"
  "libhtpb_common.a"
  "libhtpb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
