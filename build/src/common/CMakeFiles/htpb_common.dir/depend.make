# Empty dependencies file for htpb_common.
# This may be replaced when dependencies are built.
