file(REMOVE_RECURSE
  "libhtpb_cpu.a"
)
