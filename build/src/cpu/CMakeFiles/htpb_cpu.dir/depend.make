# Empty dependencies file for htpb_cpu.
# This may be replaced when dependencies are built.
