file(REMOVE_RECURSE
  "CMakeFiles/htpb_cpu.dir/core_model.cpp.o"
  "CMakeFiles/htpb_cpu.dir/core_model.cpp.o.d"
  "libhtpb_cpu.a"
  "libhtpb_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
