file(REMOVE_RECURSE
  "libhtpb_sim.a"
)
