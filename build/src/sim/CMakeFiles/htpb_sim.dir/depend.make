# Empty dependencies file for htpb_sim.
# This may be replaced when dependencies are built.
