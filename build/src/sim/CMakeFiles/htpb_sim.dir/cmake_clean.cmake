file(REMOVE_RECURSE
  "CMakeFiles/htpb_sim.dir/engine.cpp.o"
  "CMakeFiles/htpb_sim.dir/engine.cpp.o.d"
  "CMakeFiles/htpb_sim.dir/event_queue.cpp.o"
  "CMakeFiles/htpb_sim.dir/event_queue.cpp.o.d"
  "libhtpb_sim.a"
  "libhtpb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
