# Empty dependencies file for htpb_noc.
# This may be replaced when dependencies are built.
