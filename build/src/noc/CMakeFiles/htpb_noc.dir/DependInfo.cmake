
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/network.cpp" "src/noc/CMakeFiles/htpb_noc.dir/network.cpp.o" "gcc" "src/noc/CMakeFiles/htpb_noc.dir/network.cpp.o.d"
  "/root/repo/src/noc/network_interface.cpp" "src/noc/CMakeFiles/htpb_noc.dir/network_interface.cpp.o" "gcc" "src/noc/CMakeFiles/htpb_noc.dir/network_interface.cpp.o.d"
  "/root/repo/src/noc/packet.cpp" "src/noc/CMakeFiles/htpb_noc.dir/packet.cpp.o" "gcc" "src/noc/CMakeFiles/htpb_noc.dir/packet.cpp.o.d"
  "/root/repo/src/noc/router.cpp" "src/noc/CMakeFiles/htpb_noc.dir/router.cpp.o" "gcc" "src/noc/CMakeFiles/htpb_noc.dir/router.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/noc/CMakeFiles/htpb_noc.dir/routing.cpp.o" "gcc" "src/noc/CMakeFiles/htpb_noc.dir/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/htpb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
