file(REMOVE_RECURSE
  "CMakeFiles/htpb_noc.dir/network.cpp.o"
  "CMakeFiles/htpb_noc.dir/network.cpp.o.d"
  "CMakeFiles/htpb_noc.dir/network_interface.cpp.o"
  "CMakeFiles/htpb_noc.dir/network_interface.cpp.o.d"
  "CMakeFiles/htpb_noc.dir/packet.cpp.o"
  "CMakeFiles/htpb_noc.dir/packet.cpp.o.d"
  "CMakeFiles/htpb_noc.dir/router.cpp.o"
  "CMakeFiles/htpb_noc.dir/router.cpp.o.d"
  "CMakeFiles/htpb_noc.dir/routing.cpp.o"
  "CMakeFiles/htpb_noc.dir/routing.cpp.o.d"
  "libhtpb_noc.a"
  "libhtpb_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
