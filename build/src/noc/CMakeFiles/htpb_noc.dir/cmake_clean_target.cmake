file(REMOVE_RECURSE
  "libhtpb_noc.a"
)
