file(REMOVE_RECURSE
  "CMakeFiles/htpb_workload.dir/application.cpp.o"
  "CMakeFiles/htpb_workload.dir/application.cpp.o.d"
  "CMakeFiles/htpb_workload.dir/benchmark_profile.cpp.o"
  "CMakeFiles/htpb_workload.dir/benchmark_profile.cpp.o.d"
  "libhtpb_workload.a"
  "libhtpb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
