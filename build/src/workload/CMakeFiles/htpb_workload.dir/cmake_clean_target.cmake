file(REMOVE_RECURSE
  "libhtpb_workload.a"
)
