# Empty dependencies file for htpb_workload.
# This may be replaced when dependencies are built.
