file(REMOVE_RECURSE
  "libhtpb_core.a"
)
