file(REMOVE_RECURSE
  "CMakeFiles/htpb_core.dir/attack_model.cpp.o"
  "CMakeFiles/htpb_core.dir/attack_model.cpp.o.d"
  "CMakeFiles/htpb_core.dir/campaign.cpp.o"
  "CMakeFiles/htpb_core.dir/campaign.cpp.o.d"
  "CMakeFiles/htpb_core.dir/flooding.cpp.o"
  "CMakeFiles/htpb_core.dir/flooding.cpp.o.d"
  "CMakeFiles/htpb_core.dir/infection.cpp.o"
  "CMakeFiles/htpb_core.dir/infection.cpp.o.d"
  "CMakeFiles/htpb_core.dir/metrics.cpp.o"
  "CMakeFiles/htpb_core.dir/metrics.cpp.o.d"
  "CMakeFiles/htpb_core.dir/optimizer.cpp.o"
  "CMakeFiles/htpb_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/htpb_core.dir/parallel_sweep.cpp.o"
  "CMakeFiles/htpb_core.dir/parallel_sweep.cpp.o.d"
  "CMakeFiles/htpb_core.dir/placement.cpp.o"
  "CMakeFiles/htpb_core.dir/placement.cpp.o.d"
  "CMakeFiles/htpb_core.dir/trojan.cpp.o"
  "CMakeFiles/htpb_core.dir/trojan.cpp.o.d"
  "CMakeFiles/htpb_core.dir/trojan_config.cpp.o"
  "CMakeFiles/htpb_core.dir/trojan_config.cpp.o.d"
  "libhtpb_core.a"
  "libhtpb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
