# Empty dependencies file for htpb_core.
# This may be replaced when dependencies are built.
