
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack_model.cpp" "src/core/CMakeFiles/htpb_core.dir/attack_model.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/attack_model.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/htpb_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/flooding.cpp" "src/core/CMakeFiles/htpb_core.dir/flooding.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/flooding.cpp.o.d"
  "/root/repo/src/core/infection.cpp" "src/core/CMakeFiles/htpb_core.dir/infection.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/infection.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/htpb_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/htpb_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/parallel_sweep.cpp" "src/core/CMakeFiles/htpb_core.dir/parallel_sweep.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/parallel_sweep.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/htpb_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/trojan.cpp" "src/core/CMakeFiles/htpb_core.dir/trojan.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/trojan.cpp.o.d"
  "/root/repo/src/core/trojan_config.cpp" "src/core/CMakeFiles/htpb_core.dir/trojan_config.cpp.o" "gcc" "src/core/CMakeFiles/htpb_core.dir/trojan_config.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/htpb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/htpb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/system/CMakeFiles/htpb_system.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/htpb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/htpb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/htpb_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/htpb_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
