file(REMOVE_RECURSE
  "CMakeFiles/htpb_power.dir/budgeter.cpp.o"
  "CMakeFiles/htpb_power.dir/budgeter.cpp.o.d"
  "CMakeFiles/htpb_power.dir/defense.cpp.o"
  "CMakeFiles/htpb_power.dir/defense.cpp.o.d"
  "libhtpb_power.a"
  "libhtpb_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
