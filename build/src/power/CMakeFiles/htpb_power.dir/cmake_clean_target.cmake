file(REMOVE_RECURSE
  "libhtpb_power.a"
)
