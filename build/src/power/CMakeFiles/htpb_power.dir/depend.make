# Empty dependencies file for htpb_power.
# This may be replaced when dependencies are built.
