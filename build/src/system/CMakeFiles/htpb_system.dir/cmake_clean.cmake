file(REMOVE_RECURSE
  "CMakeFiles/htpb_system.dir/manycore_system.cpp.o"
  "CMakeFiles/htpb_system.dir/manycore_system.cpp.o.d"
  "CMakeFiles/htpb_system.dir/system_config.cpp.o"
  "CMakeFiles/htpb_system.dir/system_config.cpp.o.d"
  "libhtpb_system.a"
  "libhtpb_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
