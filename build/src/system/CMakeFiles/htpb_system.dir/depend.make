# Empty dependencies file for htpb_system.
# This may be replaced when dependencies are built.
