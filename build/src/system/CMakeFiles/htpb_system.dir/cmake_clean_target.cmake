file(REMOVE_RECURSE
  "libhtpb_system.a"
)
