file(REMOVE_RECURSE
  "libhtpb_mem.a"
)
