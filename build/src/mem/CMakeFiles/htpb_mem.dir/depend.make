# Empty dependencies file for htpb_mem.
# This may be replaced when dependencies are built.
