file(REMOVE_RECURSE
  "CMakeFiles/htpb_mem.dir/l1_cache.cpp.o"
  "CMakeFiles/htpb_mem.dir/l1_cache.cpp.o.d"
  "CMakeFiles/htpb_mem.dir/l2_bank.cpp.o"
  "CMakeFiles/htpb_mem.dir/l2_bank.cpp.o.d"
  "libhtpb_mem.a"
  "libhtpb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htpb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
