
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/l1_cache.cpp" "src/mem/CMakeFiles/htpb_mem.dir/l1_cache.cpp.o" "gcc" "src/mem/CMakeFiles/htpb_mem.dir/l1_cache.cpp.o.d"
  "/root/repo/src/mem/l2_bank.cpp" "src/mem/CMakeFiles/htpb_mem.dir/l2_bank.cpp.o" "gcc" "src/mem/CMakeFiles/htpb_mem.dir/l2_bank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/htpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/htpb_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/htpb_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/htpb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
