# Empty dependencies file for bench_fig5_attack_effect.
# This may be replaced when dependencies are built.
