file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_attack_effect.dir/bench_fig5_attack_effect.cpp.o"
  "CMakeFiles/bench_fig5_attack_effect.dir/bench_fig5_attack_effect.cpp.o.d"
  "bench_fig5_attack_effect"
  "bench_fig5_attack_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_attack_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
