# Empty dependencies file for bench_secVC_optimal_placement.
# This may be replaced when dependencies are built.
