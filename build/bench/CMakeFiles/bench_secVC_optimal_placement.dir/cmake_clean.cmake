file(REMOVE_RECURSE
  "CMakeFiles/bench_secVC_optimal_placement.dir/bench_secVC_optimal_placement.cpp.o"
  "CMakeFiles/bench_secVC_optimal_placement.dir/bench_secVC_optimal_placement.cpp.o.d"
  "bench_secVC_optimal_placement"
  "bench_secVC_optimal_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secVC_optimal_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
