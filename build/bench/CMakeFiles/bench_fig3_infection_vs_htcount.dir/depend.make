# Empty dependencies file for bench_fig3_infection_vs_htcount.
# This may be replaced when dependencies are built.
