file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_infection_vs_htcount.dir/bench_fig3_infection_vs_htcount.cpp.o"
  "CMakeFiles/bench_fig3_infection_vs_htcount.dir/bench_fig3_infection_vs_htcount.cpp.o.d"
  "bench_fig3_infection_vs_htcount"
  "bench_fig3_infection_vs_htcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_infection_vs_htcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
