# Empty dependencies file for bench_defense_evaluation.
# This may be replaced when dependencies are built.
