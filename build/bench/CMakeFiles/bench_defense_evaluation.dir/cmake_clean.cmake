file(REMOVE_RECURSE
  "CMakeFiles/bench_defense_evaluation.dir/bench_defense_evaluation.cpp.o"
  "CMakeFiles/bench_defense_evaluation.dir/bench_defense_evaluation.cpp.o.d"
  "bench_defense_evaluation"
  "bench_defense_evaluation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_defense_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
