# Empty dependencies file for bench_ablation_budgeters.
# This may be replaced when dependencies are built.
