file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_budgeters.dir/bench_ablation_budgeters.cpp.o"
  "CMakeFiles/bench_ablation_budgeters.dir/bench_ablation_budgeters.cpp.o.d"
  "bench_ablation_budgeters"
  "bench_ablation_budgeters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_budgeters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
