file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_performance_change.dir/bench_fig6_performance_change.cpp.o"
  "CMakeFiles/bench_fig6_performance_change.dir/bench_fig6_performance_change.cpp.o.d"
  "bench_fig6_performance_change"
  "bench_fig6_performance_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_performance_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
