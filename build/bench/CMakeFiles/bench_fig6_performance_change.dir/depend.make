# Empty dependencies file for bench_fig6_performance_change.
# This may be replaced when dependencies are built.
