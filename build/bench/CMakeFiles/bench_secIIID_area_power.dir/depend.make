# Empty dependencies file for bench_secIIID_area_power.
# This may be replaced when dependencies are built.
