file(REMOVE_RECURSE
  "CMakeFiles/bench_secIIID_area_power.dir/bench_secIIID_area_power.cpp.o"
  "CMakeFiles/bench_secIIID_area_power.dir/bench_secIIID_area_power.cpp.o.d"
  "bench_secIIID_area_power"
  "bench_secIIID_area_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secIIID_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
