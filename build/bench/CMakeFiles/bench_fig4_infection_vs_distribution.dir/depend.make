# Empty dependencies file for bench_fig4_infection_vs_distribution.
# This may be replaced when dependencies are built.
