file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_infection_vs_distribution.dir/bench_fig4_infection_vs_distribution.cpp.o"
  "CMakeFiles/bench_fig4_infection_vs_distribution.dir/bench_fig4_infection_vs_distribution.cpp.o.d"
  "bench_fig4_infection_vs_distribution"
  "bench_fig4_infection_vs_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_infection_vs_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
