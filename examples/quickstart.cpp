// Quickstart: build an 8x8 chip, run Table III's mix-1 with and without a
// handful of hardware Trojans near the global manager, and print the
// paper's metrics (infection rate, per-application Theta, attack effect Q).
//
//   ./examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "core/infection.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

int main() {
  using namespace htpb;

  core::CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.system.epoch_cycles = 2000;
  cfg.mix = workload::standard_mixes()[0];  // mix-1: barnes+canneal attack
                                            // blackscholes+raytrace
  cfg.warmup_epochs = 2;
  cfg.measure_epochs = 5;

  core::AttackCampaign campaign(cfg);
  std::printf("chip: %dx%d, global manager at node %u\n", cfg.system.width,
              cfg.system.height, campaign.gm_node());
  std::printf("mix: %s (%d apps x %d threads)\n\n",
              cfg.mix->name.c_str(), cfg.mix->app_count(),
              campaign.apps().front().threads);

  // Place 8 Trojans clustered around the manager -- the strongest
  // geometry per the paper's Fig. 4.
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const auto hts = core::clustered_placement(
      geom, 8, geom.coord_of(campaign.gm_node()), campaign.gm_node());

  const core::CampaignOutcome out = campaign.run(hts);

  std::printf("infection rate: measured %.3f / predicted %.3f\n",
              out.infection_measured, out.infection_predicted);
  std::printf("placement: m=%d  rho=%.2f  eta=%.2f\n\n", out.geometry.m,
              out.geometry.rho, out.geometry.eta);
  std::printf("%-14s %-9s %-12s %-12s %-8s %-8s\n", "app", "role",
              "theta_base", "theta_HT", "Theta", "Phi");
  for (const auto& app : out.apps) {
    std::printf("%-14s %-9s %-12.3f %-12.3f %-8.3f %-8.3f\n",
                app.name.c_str(), app.attacker ? "attacker" : "victim",
                app.theta_baseline, app.theta_attacked, app.change, app.phi);
  }
  if (out.q_valid) {
    std::printf("\nattack effect Q = %.3f  (Q > 1 means the attack pays off)\n",
                out.q);
  }
  std::printf("trojan totals: %llu power requests seen, %llu victim requests "
              "modified, %llu attacker requests boosted\n",
              static_cast<unsigned long long>(
                  out.trojan_totals.power_requests_seen),
              static_cast<unsigned long long>(
                  out.trojan_totals.victim_requests_modified),
              static_cast<unsigned long long>(
                  out.trojan_totals.attacker_requests_boosted));
  return 0;
}
