// Full attack campaign with command-line control -- sweeps Trojan
// placements for a chosen mix and prints a CSV of the paper's metrics.
//
//   ./examples/attack_campaign [mix_index=0] [nodes=256] [budget=0.45]
//                              [victim_scale=0.10] [boost=8] [threads=0]
//
// Columns: target, m, rho, eta, infection, Theta per app..., Q
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/campaign.hpp"
#include "core/infection.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace htpb;

  const int mix_index = argc > 1 ? std::atoi(argv[1]) : 0;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 256;
  const double budget = argc > 3 ? std::atof(argv[3]) : 0.45;
  const double scale = argc > 4 ? std::atof(argv[4]) : 0.10;
  const double boost = argc > 5 ? std::atof(argv[5]) : 8.0;
  const int threads = argc > 6 ? std::atoi(argv[6]) : 0;

  core::CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(nodes);
  cfg.system.budget_fraction = budget;
  cfg.mix = workload::standard_mixes().at(static_cast<std::size_t>(mix_index));
  cfg.threads_per_app = threads;
  cfg.trojan.victim_scale = scale;
  cfg.trojan.attacker_boost = boost;

  core::AttackCampaign campaign(cfg);
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const core::InfectionAnalyzer analyzer(geom, campaign.gm_node());

  std::printf("# mix=%s nodes=%d budget=%.2f scale=%.2f boost=%.1f\n",
              cfg.mix->name.c_str(), nodes, budget, scale, boost);
  std::printf("target,m,rho,eta,infection");
  for (const auto& app : campaign.apps()) {
    std::printf(",Theta(%s%s)", app.profile.name.c_str(),
                app.is_attacker() ? "*" : "");
  }
  std::printf(",Q\n");

  // htpb-lint: allow(seed-provenance) demo pins a documented literal seed for a reproducible transcript
  Rng rng(42);
  for (const double target : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto hts =
        analyzer.placement_for_target(target, geom.node_count() / 4, rng);
    const auto out = campaign.run(hts);
    std::printf("%.1f,%d,%.2f,%.2f,%.3f", target, out.geometry.m,
                out.geometry.rho, out.geometry.eta, out.infection_measured);
    for (const auto& app : out.apps) std::printf(",%.3f", app.change);
    std::printf(",%.3f\n", out.q_valid ? out.q : 0.0);
  }
  return 0;
}
