// Defender-side stealth audit: how much silicon and power does a given
// attack plan cost the attacker, and what would a detector have to find?
// Combines the Sec. III-D synthesis constants with a live attack run to
// report "damage per microwatt of Trojan".
//
//   ./examples/stealth_report [hts=8] [nodes=64]
#include <cstdio>
#include <cstdlib>

#include "core/area_power.hpp"
#include "core/campaign.hpp"
#include "core/defense_sweep.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace htpb;
  const int hts = argc > 1 ? std::atoi(argv[1]) : 8;
  const int nodes = argc > 2 ? std::atoi(argv[2]) : 64;

  core::CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(nodes);
  cfg.mix = workload::standard_mixes()[0];
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  core::AttackCampaign campaign(cfg);
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const auto placement = core::clustered_placement(
      geom, hts, geom.coord_of(campaign.gm_node()), campaign.gm_node());
  const auto out = campaign.run(placement);

  const core::HtAreaPowerModel silicon;
  std::printf("stealth report: %d Trojans on a %d-node chip (mix-1)\n\n", hts,
              nodes);
  std::printf("attacker cost:\n");
  std::printf("  silicon         %10.3f um^2 (%.5f%% of one router,\n",
              silicon.total_area_um2(hts),
              silicon.area_fraction_of_router() * 100.0);
  std::printf("                  %.6f%% of all %d routers)\n",
              silicon.area_fraction_of_chip(hts, nodes) * 100.0, nodes);
  std::printf("  standby power   %10.4f uW   (%.6f%% of the NoC)\n\n",
              silicon.total_power_uw(hts),
              silicon.power_fraction_of_chip(hts, nodes) * 100.0);

  std::printf("damage delivered:\n");
  std::printf("  infection rate  %10.3f\n", out.infection_measured);
  std::printf("  attack effect Q %10.3f\n", out.q);
  double victim_loss = 0.0;
  int victims = 0;
  for (const auto& app : out.apps) {
    if (!app.attacker) {
      victim_loss += 1.0 - app.change;
      ++victims;
    }
  }
  std::printf("  mean victim slowdown %6.1f%%\n",
              victims ? victim_loss / victims * 100.0 : 0.0);
  std::printf("  modified packets %9llu\n\n",
              static_cast<unsigned long long>(
                  out.trojan_totals.victim_requests_modified));

  std::printf("what a detector is up against:\n");
  std::printf("  - per-router area anomaly of %.5f%%, far below optical or\n",
              silicon.area_fraction_of_router() * 100.0);
  std::printf("    side-channel inspection noise floors (Sec. III-D)\n");
  std::printf("  - zero traffic anomaly: the Trojan adds no packets, it\n");
  std::printf("    rewrites payloads of legitimate ones in flight\n");
  std::printf("  - the only observable: victims' requests arriving at the\n");
  std::printf("    manager shrunk by %.0fx -- cross-checking requests against\n",
              1.0 / cfg.trojan.victim_scale);
  std::printf("    per-core power telemetry is the natural defense\n\n");

  // And what that defense actually buys: sweep the manager-side trust
  // band against this exact placement (mid-run activation so the
  // detector earns honest history before the Trojans wake up).
  core::DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = cfg;
  sweep_cfg.base.trojan.active = false;
  sweep_cfg.base.toggle_period_epochs = 3;
  sweep_cfg.base.measure_epochs = 6;
  // Both detector families per band: the per-core self-history EWMA and
  // the cohort cross-check that survives attack-from-epoch-0. The
  // detection arm costs one recorded simulation however many rows this
  // table grows (request-trace replay).
  for (const auto kind : {power::DetectorKind::kSelfEwma,
                          power::DetectorKind::kCohortMedian}) {
    for (const auto& [lo, hi] : {std::pair{0.6, 1.6}, std::pair{0.45, 2.2},
                                 std::pair{0.25, 4.0}}) {
      power::DetectorConfig d;
      d.kind = kind;
      d.low_ratio = lo;
      d.high_ratio = hi;
      sweep_cfg.detectors.push_back(d);
    }
  }
  sweep_cfg.placements.push_back(placement);
  const auto curve =
      core::DefenseSweep(sweep_cfg).run(core::ParallelSweepRunner());

  std::printf("manager-side defense against this placement:\n");
  std::printf("  %-6s %-13s %9s %9s %9s %9s\n", "kind", "band [lo,hi]",
              "detect", "falsePos", "latency", "Q(guard)");
  for (const auto& pt : curve) {
    std::printf("  %-6s [%4.2f, %4.2f] %8.1f%% %8.1f%% %9.1f %9.3f\n",
                pt.detector.kind == power::DetectorKind::kCohortMedian
                    ? "cohort"
                    : "ewma",
                pt.detector.low_ratio, pt.detector.high_ratio,
                pt.detection_rate * 100.0, pt.false_positive_rate * 100.0,
                pt.mean_detection_latency, pt.mean_q_guarded);
  }
  return 0;
}
