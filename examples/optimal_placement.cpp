// Walks through the attacker's full planning pipeline from Sec. IV-C:
//   1. sample candidate Trojan placements and measure Q in simulation,
//   2. fit the linear attack-effect model (Eq. 9),
//   3. solve the placement problem max Q s.t. m <= M_HT (Eq. 10-11),
//   4. deploy the optimized placement and report the realized outcome.
//
// Placement generation stays on one Rng stream (cheap, deterministic);
// every campaign simulation is fanned across the ParallelSweepRunner
// pool, so the wall-clock scales with cores while results stay
// bit-identical at any thread count (HTPB_THREADS=1 to verify).
//
//   ./examples/optimal_placement [mix_index=0] [max_hts=12] [samples=16]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "core/attack_model.hpp"
#include "core/campaign.hpp"
#include "core/optimizer.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

int main(int argc, char** argv) {
  using namespace htpb;
  const int mix_index = argc > 1 ? std::atoi(argv[1]) : 0;
  const int max_hts = argc > 2 ? std::atoi(argv[2]) : 12;
  const int samples = argc > 3 ? std::atoi(argv[3]) : 16;

  core::CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(64);
  cfg.mix = workload::standard_mixes().at(static_cast<std::size_t>(mix_index));
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  core::AttackCampaign campaign(cfg);
  const MeshGeometry geom(cfg.system.width, cfg.system.height);
  const core::ParallelSweepRunner runner;
  // htpb-lint: allow(seed-provenance) demo pins a documented literal seed so reruns print the same table
  Rng rng(11);

  std::printf("== phase 1: sampling %d placements (m in [1, %d], %d threads)\n",
              samples, max_hts, runner.threads());
  std::vector<core::Placement> sampled;
  for (int i = 0; i < samples; ++i) {
    const int m = 1 + static_cast<int>(rng.below(
        static_cast<std::uint64_t>(max_hts)));
    auto cand = core::candidate_placements(geom, campaign.gm_node(), m, 1, rng);
    sampled.push_back(std::move(cand.front()));
  }
  const auto outcomes = runner.run_placements(campaign, sampled);

  std::vector<core::AttackSample> dataset;
  std::vector<double> phi_v;
  std::vector<double> phi_a;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& out = outcomes[i];
    core::AttackSample s;
    s.rho = out.geometry.rho;
    s.eta = out.geometry.eta;
    s.m = out.geometry.m;
    for (const auto& app : out.apps) {
      (app.attacker ? s.phi_attackers : s.phi_victims).push_back(app.phi);
    }
    s.q = out.q;
    if (phi_v.empty()) {
      phi_v = s.phi_victims;
      phi_a = s.phi_attackers;
    }
    std::printf("  sample %2zu: m=%2d rho=%5.2f eta=%5.2f -> Q=%.3f\n", i,
                s.m, s.rho, s.eta, s.q);
    dataset.push_back(std::move(s));
  }

  std::printf("\n== phase 2: fitting Eq. 9\n");
  core::AttackEffectModel model;
  model.fit(dataset);
  const auto& beta = model.coefficients();
  std::printf("  Q ~ %.3f%+.3f*rho%+.3f*eta%+.3f*m (+ Phi terms), R^2=%.3f\n",
              beta[0], beta[1], beta[2], beta[3], model.r2());

  std::printf("\n== phase 3: enumerating placements (Eq. 10, M_HT=%d)\n",
              max_hts);
  core::PlacementOptimizer optimizer(geom, campaign.gm_node(), &model, phi_v,
                                     phi_a);
  const auto best = optimizer.optimize(max_hts, 80, /*seed=*/rng(), runner);
  std::printf("  best predicted: m=%d rho=%.2f eta=%.2f predicted Q=%.3f\n",
              best.placement.m(), best.placement.rho, best.placement.eta,
              best.predicted_q);

  std::printf("\n== phase 4: deploying the optimized placement\n");
  // The deployed placement and the random same-size controls go through
  // the runner as one batch.
  std::vector<std::vector<NodeId>> deploy_sets;
  deploy_sets.push_back(best.placement.nodes);
  for (int t = 0; t < 3; ++t) {
    deploy_sets.push_back(core::random_placement(geom, best.placement.m(),
                                                 rng, campaign.gm_node()));
  }
  const auto deployed = runner.run_node_sets(campaign, deploy_sets);
  const auto& out = deployed.front();
  std::printf("  realized Q=%.3f (infection %.3f)\n", out.q,
              out.infection_measured);
  double random_q = 0.0;
  for (std::size_t t = 1; t < deployed.size(); ++t) random_q += deployed[t].q;
  random_q /= static_cast<double>(deployed.size() - 1);
  std::printf("  random same-size placements average Q=%.3f -> gain %.1f%%\n",
              random_q, (out.q / random_q - 1.0) * 100.0);
  return 0;
}
