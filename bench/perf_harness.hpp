// Minimal vendored timing harness for the hot-path benches: wall-clock
// measurement, cycles/sec reporting, a JSON emitter (through the shared
// common/json utility) and a tolerance-based comparison against a
// checked-in baseline JSON. No external dependency (ROADMAP:
// libbenchmark-dev is absent on some machines, so the perf trajectory
// must not hinge on it).
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace htpb::bench {

[[nodiscard]] inline double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// One measured workload. `cycles_per_sec` is the figure of merit; the
/// counter fields double as a determinism cross-check (same seed ->
/// same delivered count, whatever the core's internals look like).
struct PerfResult {
  std::string name;
  std::uint64_t sim_cycles = 0;
  double seconds = 0.0;
  double cycles_per_sec = 0.0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_forwarded = 0;
  double avg_latency = 0.0;
};

/// Times `fn` (which simulates a fixed number of cycles) `reps` times and
/// keeps the fastest run -- the standard trick to shed scheduler noise
/// without statistics machinery. Every rep is a cold start (callers
/// rebuild their network inside `fn`), so single-rep quick mode measures
/// cold-start cost too; regression gates must compare like with like.
template <typename Fn>
[[nodiscard]] inline double best_seconds_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    const double dt = now_seconds() - t0;
    if (dt < best) best = dt;
  }
  return best;
}

class PerfReport {
 public:
  /// `benchmark` names the suite in the JSON header so baseline files
  /// are self-identifying (default keeps existing NoC baselines valid).
  explicit PerfReport(std::string benchmark = "noc_hotpath")
      : benchmark_(std::move(benchmark)) {}

  void add(PerfResult r) {
    std::printf("  %-28s %12.0f cycles/s  (%llu cycles, %.3fs, "
                "%llu pkts delivered)\n",
                r.name.c_str(), r.cycles_per_sec,
                static_cast<unsigned long long>(r.sim_cycles), r.seconds,
                static_cast<unsigned long long>(r.packets_delivered));
    results_.push_back(std::move(r));
  }

  [[nodiscard]] const std::vector<PerfResult>& results() const noexcept {
    return results_;
  }

  bool write_json(const std::string& path) const {
    json::Object root;
    root["benchmark"] = json::Value(benchmark_);
    json::Array results;
    for (const PerfResult& r : results_) {
      json::Object row;
      row["name"] = json::Value(r.name);
      row["cycles_per_sec"] = json::Value(
          static_cast<long long>(std::llround(r.cycles_per_sec)));
      row["sim_cycles"] = json::Value(static_cast<long long>(r.sim_cycles));
      row["seconds"] = json::Value(r.seconds);
      row["packets_delivered"] =
          json::Value(static_cast<long long>(r.packets_delivered));
      row["flits_forwarded"] =
          json::Value(static_cast<long long>(r.flits_forwarded));
      row["avg_latency"] = json::Value(r.avg_latency);
      results.push_back(json::Value(std::move(row)));
    }
    root["results"] = json::Value(std::move(results));
    try {
      json::dump_file(json::Value(std::move(root)), path);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }

  /// Compares against a baseline emitted by write_json. Returns true when
  /// every workload present in both files is within `max_regression`
  /// (e.g. 0.25 = tolerate down to 75% of baseline cycles/sec). Prints a
  /// per-workload verdict; unknown names are ignored so baselines and
  /// benches can evolve independently.
  bool check_against(const std::string& baseline_path,
                     double max_regression) const {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "perf_harness: cannot open baseline %s\n",
                   baseline_path.c_str());
      return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    bool ok = true;
    int compared = 0;
    for (const PerfResult& r : results_) {
      double base = 0.0;
      if (!find_baseline_rate(text, r.name, &base) || base <= 0.0) continue;
      ++compared;
      const double ratio = r.cycles_per_sec / base;
      const bool pass = ratio >= 1.0 - max_regression;
      std::printf("  %-28s baseline %12.0f  now %12.0f  (%+.1f%%) %s\n",
                  r.name.c_str(), base, r.cycles_per_sec,
                  (ratio - 1.0) * 100.0, pass ? "ok" : "REGRESSION");
      ok = ok && pass;
    }
    if (compared == 0) {
      std::fprintf(stderr,
                   "perf_harness: no overlapping workloads with %s\n",
                   baseline_path.c_str());
      return false;
    }
    return ok;
  }

 private:
  /// Tiny special-purpose scan of our own flat JSON: finds the object
  /// containing `"name": "<name>"` and reads its cycles_per_sec. Not a
  /// general JSON parser and does not pretend to be.
  static bool find_baseline_rate(const std::string& text,
                                 const std::string& name, double* out) {
    const std::string key = "\"name\": \"" + name + "\"";
    const std::size_t at = text.find(key);
    if (at == std::string::npos) return false;
    const std::string rate_key = "\"cycles_per_sec\": ";
    const std::size_t rate_at = text.find(rate_key, at);
    if (rate_at == std::string::npos) return false;
    *out = std::strtod(text.c_str() + rate_at + rate_key.size(), nullptr);
    return true;
  }

  std::string benchmark_;
  std::vector<PerfResult> results_;
};

}  // namespace htpb::bench
