// Hot-path microbenchmark for the cycle-level NoC core: measures raw
// simulated cycles/sec of MeshNetwork::tick under synthetic traffic, the
// quantity every campaign sweep is bottlenecked on. Emits a flat JSON
// (BENCH_noc_hotpath.json) so the perf trajectory is recorded next to the
// figure benches, and can gate CI against a checked-in baseline.
//
//   bench_noc_hotpath [--quick] [--json <path>] [--baseline <path>]
//                     [--max-regression <frac>]
//
// Workloads per mesh size:
//   uniform  -- every node injects Bernoulli(p) packets to uniform-random
//               destinations, mixed packet types (the property-test load).
//   hotspot  -- as uniform, but 20% of packets target the mesh center
//               (models the power-manager confluence of the paper).
//   powerstorm - every node sends POWER_REQ to the center on a fixed
//               period and the center answers with POWER_GRANT -- the
//               epoch-boundary storm of the budgeting protocol.
//   quiescent -- no traffic at all after a priming burst: isolates the
//               per-cycle bookkeeping cost of an idle mesh, the case the
//               active-set scheduler exists for.
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "perf_harness.hpp"
#include "sim/engine.hpp"

namespace {

using namespace htpb;

constexpr double kInjectionRate = 0.05;  // packets per node per cycle

noc::PacketType mixed_type(Rng& rng) {
  static constexpr noc::PacketType kKinds[] = {
      noc::PacketType::kMemReadReq, noc::PacketType::kMemReply,
      noc::PacketType::kPowerRequest, noc::PacketType::kWriteback};
  return kKinds[rng.below(4)];
}

/// Synthetic traffic source ticked after the network (registration order),
/// so injections enqueue exactly as a core/NI pair would.
class TrafficGen : public sim::Tickable {
 public:
  enum class Kind { kUniform, kHotspot, kPowerStorm, kQuiescent };

  TrafficGen(noc::MeshNetwork& net, Kind kind, std::uint64_t seed)
      : net_(net), kind_(kind), rng_(seed),
        nodes_(static_cast<std::uint64_t>(net.geometry().node_count())),
        center_(net.geometry().id_of(net.geometry().center())) {
    net_.engine().add_tickable(this);
  }

  void tick(Cycle now) override {
    switch (kind_) {
      case Kind::kQuiescent:
        // One priming burst so the mesh is provably functional, then
        // silence: the measurement is the cost of ticking an idle mesh.
        if (now == 0) {
          for (NodeId n = 0; n < static_cast<NodeId>(nodes_); ++n) {
            inject(n, pick_dst(n), noc::PacketType::kMemReadReq);
          }
        }
        return;
      case Kind::kPowerStorm: {
        // Epoch-boundary storm: all nodes request in the same window.
        if (now % kStormPeriod < 1 && now > 0) {
          for (NodeId n = 0; n < static_cast<NodeId>(nodes_); ++n) {
            if (n != center_) {
              inject(n, center_, noc::PacketType::kPowerRequest);
            }
          }
        }
        return;
      }
      case Kind::kUniform:
      case Kind::kHotspot:
        for (NodeId n = 0; n < static_cast<NodeId>(nodes_); ++n) {
          if (!rng_.chance(kInjectionRate)) continue;
          NodeId dst = pick_dst(n);
          if (kind_ == Kind::kHotspot && n != center_ && rng_.chance(0.2)) {
            dst = center_;
          }
          inject(n, dst, mixed_type(rng_));
        }
        return;
    }
  }

 private:
  static constexpr Cycle kStormPeriod = 200;

  NodeId pick_dst(NodeId src) {
    auto dst = static_cast<NodeId>(rng_.below(nodes_));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % nodes_);
    return dst;
  }

  void inject(NodeId src, NodeId dst, noc::PacketType type) {
    net_.send(net_.make_packet(src, dst, type));
  }

  noc::MeshNetwork& net_;
  Kind kind_;
  Rng rng_;
  std::uint64_t nodes_;
  NodeId center_;
};

/// The center node grants every power request it receives -- the reply
/// half of the storm workload (class-1 traffic exercises both VC classes).
void attach_grant_echo(noc::MeshNetwork& net, NodeId center) {
  net.set_handler(center, [&net, center](const noc::Packet& pkt) {
    if (pkt.type == noc::PacketType::kPowerRequest) {
      net.send(net.make_packet(center, pkt.src,
                               noc::PacketType::kPowerGrant, pkt.payload));
    }
  });
}

bench::PerfResult run_workload(const std::string& name, int width, int height,
                               TrafficGen::Kind kind, Cycle cycles,
                               int reps) {
  bench::PerfResult res;
  res.name = name;
  res.sim_cycles = cycles;
  // The fastest of `reps` full simulations: each rep rebuilds the network
  // so every run starts cold and deterministic (identical work per rep).
  res.seconds = bench::best_seconds_of(reps, [&] {
    sim::Engine engine;
    MeshGeometry geom(width, height);
    noc::MeshNetwork net(engine, geom, noc::NocConfig{});
    const NodeId center = geom.id_of(geom.center());
    if (kind == TrafficGen::Kind::kPowerStorm) {
      attach_grant_echo(net, center);
    }
    TrafficGen gen(net, kind, /*seed=*/0xB0C0 + static_cast<std::uint64_t>(
                                          width * 131 + height));
    engine.run_cycles(cycles);
    res.packets_delivered = net.stats().packets_delivered;
    res.flits_forwarded = net.total_router_stats().flits_forwarded;
    res.avg_latency = net.stats().latency_all.mean();
  });
  res.cycles_per_sec = static_cast<double>(cycles) / res.seconds;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_noc_hotpath.json";
  std::string baseline_path;
  double max_regression = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--baseline <path>] "
                   "[--max-regression <frac>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (quick || std::getenv("HTPB_QUICK") != nullptr) quick = true;

  struct Sized {
    int size;
    Cycle cycles;
  };
  // Cycle counts scaled so each (size, workload) cell runs ~comparable
  // wall time; quick mode is a smoke test, not a measurement.
  const std::vector<Sized> sizes = quick
      ? std::vector<Sized>{{8, 4000}, {16, 1500}}
      : std::vector<Sized>{{8, 60000}, {16, 20000}, {32, 6000}};
  const int reps = quick ? 1 : 3;

  std::printf("== bench_noc_hotpath (%s mode, %d rep%s)\n",
              quick ? "quick" : "full", reps, reps == 1 ? "" : "s");
  bench::PerfReport report;
  for (const Sized& s : sizes) {
    const std::string mesh =
        std::to_string(s.size) + "x" + std::to_string(s.size);
    report.add(run_workload(mesh + "/uniform", s.size, s.size,
                            TrafficGen::Kind::kUniform, s.cycles, reps));
    report.add(run_workload(mesh + "/hotspot", s.size, s.size,
                            TrafficGen::Kind::kHotspot, s.cycles, reps));
    report.add(run_workload(mesh + "/powerstorm", s.size, s.size,
                            TrafficGen::Kind::kPowerStorm, s.cycles, reps));
    report.add(run_workload(mesh + "/quiescent", s.size, s.size,
                            TrafficGen::Kind::kQuiescent, s.cycles, reps));
  }

  if (!report.write_json(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());

  if (!baseline_path.empty()) {
    std::printf("== comparing against %s (max regression %.0f%%)\n",
                baseline_path.c_str(), max_regression * 100.0);
    if (!report.check_against(baseline_path, max_regression)) {
      std::fprintf(stderr, "perf regression detected\n");
      return 1;
    }
  }
  return 0;
}
