// Extension bench (the paper's conclusion: "more research on detection
// and protection against such attacks is needed"): evaluates the two
// manager-side defenses in power/defense.hpp against the paper's attack.
//
//   1. detection -- fraction of tampered/boosted cores flagged by the
//      request-anomaly detector, plus false positives on a clean run;
//   2. mitigation -- attack effect Q with and without the guarded
//      (request-clamping) budgeter.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/placement.hpp"
#include "power/defense.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Defense evaluation -- detection & mitigation of the false-data attack",
      "extension of Sec. VI (conclusion)",
      "detector flags most victims/accomplices with no false positives; "
      "the guarded budgeter removes most of the Q excursion");

  std::printf("%-7s | %9s %9s | %12s %12s | %9s %9s\n", "mix", "Q(plain)",
              "Q(guard)", "victims flag", "boost flag", "falsePos",
              "worstTheta");
  for (int mix = 0; mix < 4; ++mix) {
    core::CampaignConfig cfg = bench::mix_campaign_config(mix, 64);
    // Mid-run activation so the detector sees honest history first.
    cfg.trojan.active = false;
    cfg.toggle_period_epochs = 3;
    cfg.measure_epochs = 6;
    cfg.detector = power::DetectorConfig{};
    core::AttackCampaign campaign(cfg);
    const MeshGeometry geom(cfg.system.width, cfg.system.height);
    const auto hts = core::clustered_placement(
        geom, 8, geom.coord_of(campaign.gm_node()), campaign.gm_node());
    // Detection arm (mid-run activation); the run owns its detector and
    // surfaces the report in the outcome.
    const auto detected = campaign.run(hts);
    const power::DetectorReport report =
        detected.detection.value_or(power::DetectorReport{});

    // Damage arms are measured with the attack always on so that plain
    // and guarded runs are directly comparable.
    core::CampaignConfig plain_cfg = bench::mix_campaign_config(mix, 64);
    core::AttackCampaign plain_campaign(plain_cfg);
    const auto plain = plain_campaign.run(hts);

    int victims = 0;
    int attackers = 0;
    for (const auto& app : campaign.apps()) {
      (app.is_attacker() ? attackers : victims) +=
          static_cast<int>(app.cores.size());
    }

    // False positives: same chip, Trojans never activated. Detection-only
    // run: the clean arm has no use for a baseline.
    core::CampaignConfig clean_cfg = cfg;
    clean_cfg.toggle_period_epochs = 0;
    core::AttackCampaign clean(clean_cfg);
    const auto clean_report =
        clean.run_detection_only(hts).value_or(power::DetectorReport{});
    const auto false_pos =
        clean_report.flagged_low.size() + clean_report.flagged_high.size();

    // Mitigation arm.
    core::CampaignConfig guard_cfg = bench::mix_campaign_config(mix, 64);
    guard_cfg.system.guard_requests = true;
    core::AttackCampaign guarded(guard_cfg);
    const auto mitigated = guarded.run(hts);
    double worst = 1.0;
    for (const auto& app : mitigated.apps) {
      if (!app.attacker) worst = std::min(worst, app.change);
    }

    std::printf("%-7s | %9.3f %9.3f | %6zu/%-5d %6zu/%-5d | %9zu %9.3f\n",
                cfg.mix->name.c_str(), plain.q, mitigated.q,
                report.flagged_low.size(), victims,
                report.flagged_high.size(), attackers, false_pos, worst);
  }
  std::printf("\n(victims flag = starved cores detected / victim cores;\n"
              "boost flag = inflated cores detected / attacker cores;\n"
              "Q(guard) = attack effect when the manager clamps requests\n"
              "into a trust band around each core's own history)\n");
  return 0;
}
