// Extension bench (the paper's conclusion: "more research on detection
// and protection against such attacks is needed"): detection and
// mitigation of the false-data attack, per Table III mix. Thin formatter
// over the registry's "defense-evaluation" scenario.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result =
      bench::run_registry_scenario("defense-evaluation");

  std::printf("%-7s | %9s %9s | %12s %12s | %9s %9s\n", "mix", "Q(plain)",
              "Q(guard)", "victims flag", "boost flag", "falsePos",
              "worstTheta");
  for (const json::Value& row :
       result.as_object().find("rows")->as_array()) {
    const json::Object& r = row.as_object();
    std::printf("%-7s | %9.3f %9.3f | %6lld/%-5lld %6lld/%-5lld | "
                "%9lld %9.3f\n",
                r.find("mix")->as_string().c_str(),
                r.find("q_plain")->as_double(),
                r.find("q_guarded")->as_double(),
                static_cast<long long>(r.find("victims_flagged")->as_int()),
                static_cast<long long>(r.find("victim_cores")->as_int()),
                static_cast<long long>(
                    r.find("attackers_flagged")->as_int()),
                static_cast<long long>(r.find("attacker_cores")->as_int()),
                static_cast<long long>(r.find("false_positives")->as_int()),
                r.find("worst_victim_theta")->as_double());
  }
  std::printf("\n(victims flag = starved cores detected / victim cores;\n"
              "boost flag = inflated cores detected / attacker cores;\n"
              "Q(guard) = attack effect when the manager clamps requests\n"
              "into a trust band around each core's own history)\n");
  return 0;
}
