// Defense-evaluation sweep (extension of the paper's conclusion), two
// parts:
//
//  1. Trust-band operating points x HT placements through
//     core::DefenseSweep (detection + false positives + latency + Q under
//     guard). The detection arm records one request trace per placement
//     and replays every operating point offline -- simulations scale with
//     placements, not with the detector grid.
//  2. A dense stealthy-Trojan ROC sweep: duty-cycle period x modification
//     factor x trust band x detector kind (self-EWMA vs cohort-median).
//     Only the dynamics axes (period, factor) cost simulations; the whole
//     detector grid rides on trace replays, which is what makes a grid
//     this dense affordable at all.
//
// Simulation counts and record/replay timings are written to a
// BENCH_defense_sweep.json artifact (timings also to stderr); stdout is
// byte-identical at any thread count.
//
//   HTPB_QUICK=1   fewer operating points / placements / dynamics cells
//   HTPB_THREADS   caps the sweep pool
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/defense_sweep.hpp"
#include "core/placement.hpp"
#include "perf_harness.hpp"
#include "power/request_trace.hpp"

namespace {

using htpb::bench::now_seconds;

const char* kind_name(htpb::power::DetectorKind kind) {
  return kind == htpb::power::DetectorKind::kCohortMedian ? "cohort" : "ewma";
}

/// One ROC grid point, flattened for the JSON artifact.
struct RocPoint {
  int period = 0;        // toggle_period_epochs; 0 = always-on
  double factor = 0.0;   // victim_scale (modification factor)
  htpb::power::DetectorKind kind{};
  double lo = 0.0;
  double hi = 0.0;
  double detect = 0.0;   // distinct flagged cores / monitored cores
  double fp = 0.0;       // same, on the clean trace
  double latency = -1.0; // first confirmed flag epoch, -1 = never
};

}  // namespace

int main(int argc, char** argv) {
  using namespace htpb;
  const char* json_path = "BENCH_defense_sweep.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  bench::print_header(
      "Defense sweep -- trust-band operating points x HT placements",
      "extension of Sec. VI (conclusion)",
      "tight bands detect fast with some false positives and kill most of "
      "Q; loose bands go blind and let Q through");

  const bool quick = bench::quick_mode();

  core::DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = bench::mix_campaign_config(0, 64);
  // Mid-run activation: the detector earns honest history, then the
  // Trojans wake up (the scenario a deployed detector actually faces).
  sweep_cfg.base.trojan.active = false;
  sweep_cfg.base.toggle_period_epochs = 3;
  sweep_cfg.base.measure_epochs = quick ? 4 : 6;

  // Operating points: the trust band [low_ratio, high_ratio] widened from
  // tight (flag anything off by ~25%) to loose (only 4x excursions).
  const std::vector<std::pair<double, double>> bands =
      quick ? std::vector<std::pair<double, double>>{{0.6, 1.6}, {0.3, 3.0}}
            : std::vector<std::pair<double, double>>{{0.8, 1.25},
                                                     {0.6, 1.6},
                                                     {0.45, 2.2},
                                                     {0.3, 3.0},
                                                     {0.25, 4.0}};
  for (const auto& [lo, hi] : bands) {
    power::DetectorConfig d;
    d.low_ratio = lo;
    d.high_ratio = hi;
    sweep_cfg.detectors.push_back(d);
  }

  // Placements: GM-adjacent cluster, mid-mesh cluster, corner cluster --
  // the Fig. 4 arms, each evaluated against every operating point.
  const core::AttackCampaign probe(sweep_cfg.base);
  const MeshGeometry geom(sweep_cfg.base.system.width,
                          sweep_cfg.base.system.height);
  const int m = 8;
  sweep_cfg.placements.push_back(core::clustered_placement(
      geom, m, geom.coord_of(probe.gm_node()), probe.gm_node()));
  sweep_cfg.placements.push_back(core::clustered_placement(
      geom, m, Coord{geom.width() / 4, geom.height() / 4}, probe.gm_node()));
  if (!quick) {
    sweep_cfg.placements.push_back(core::clustered_placement(
        geom, m, MeshGeometry::corner(), probe.gm_node()));
  }

  const core::ParallelSweepRunner runner;
  const std::uint64_t sims_before_curve = core::AttackCampaign::systems_simulated();
  const double t_curve0 = now_seconds();
  const core::DefenseSweep sweep(sweep_cfg);
  const auto curve = sweep.run(runner);
  const double curve_seconds = now_seconds() - t_curve0;
  const std::uint64_t curve_sims =
      core::AttackCampaign::systems_simulated() - sims_before_curve;

  // Thread count to stderr so stdout is byte-identical at any pool size
  // (the determinism check in the verify recipe cmp's stdouts).
  std::fprintf(stderr, "(%zu operating points x %zu placements, %d threads)\n",
               sweep_cfg.detectors.size(), sweep_cfg.placements.size(),
               runner.threads());
  std::printf("%-13s | %8s %8s %8s | %8s %8s | %8s %8s\n", "band [lo,hi]",
              "detect", "victims", "boosted", "falsePos", "latency",
              "Q(plain)", "Q(guard)");
  for (const auto& pt : curve) {
    std::printf(
        "[%4.2f, %4.2f] | %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %8.1f | "
        "%8.3f %8.3f\n",
        pt.detector.low_ratio, pt.detector.high_ratio,
        pt.detection_rate * 100.0, pt.victim_flag_rate * 100.0,
        pt.attacker_flag_rate * 100.0, pt.false_positive_rate * 100.0,
        pt.mean_detection_latency, pt.mean_q_plain, pt.mean_q_guarded);
  }
  std::printf(
      "\n(detect = distinct flagged cores / monitored cores, mean over\n"
      "placements; latency = epochs from power-on to the first confirmed\n"
      "flag; Q(guard) = residual attack effect with the GuardedBudgeter\n"
      "clamping requests into the same trust band)\n");

  // ------------------------------------------------------------------
  // Dense stealthy-Trojan ROC sweep: duty-cycle period x modification
  // factor x trust band x detector kind. Record one trace per
  // (period, factor, placement) dynamics cell -- plus one clean trace per
  // distinct system timing (dormant Trojans have identical dynamics
  // across factors and periods, but first_epoch_cycle shifts the epoch
  // grid) -- then replay the full detector grid offline.
  // ------------------------------------------------------------------
  const std::vector<int> periods = quick ? std::vector<int>{2}
                                         : std::vector<int>{0, 2, 4};
  const std::vector<double> factors =
      quick ? std::vector<double>{0.10, 0.60}
            : std::vector<double>{0.10, 0.35, 0.60, 0.80};
  std::vector<power::DetectorConfig> roc_detectors;
  for (const auto kind :
       {power::DetectorKind::kSelfEwma, power::DetectorKind::kCohortMedian}) {
    for (const auto& [lo, hi] : bands) {
      power::DetectorConfig d;
      d.kind = kind;
      d.low_ratio = lo;
      d.high_ratio = hi;
      roc_detectors.push_back(d);
    }
  }
  const std::vector<std::vector<NodeId>> roc_placements(
      sweep_cfg.placements.begin(),
      sweep_cfg.placements.begin() + (quick ? 1 : 2));

  int monitored = 0;
  for (const auto& app : probe.apps()) {
    monitored += static_cast<int>(app.cores.size());
  }

  const auto roc_config = [&](int period, double factor) {
    core::CampaignConfig cfg = sweep_cfg.base;
    cfg.detector.reset();
    cfg.trojan.victim_scale = factor;
    if (period == 0) {
      cfg.trojan.active = true;  // always-on, live from power-on
      cfg.toggle_period_epochs = 0;
      // Let the CONFIG_CMD broadcast finish before the first POWER_REQ:
      // the attack-from-epoch-0 scenario the cohort detector exists for.
      cfg.system.first_epoch_cycle = 600;
    } else {
      cfg.trojan.active = false;  // dormant until the first toggle
      cfg.toggle_period_epochs = period;
    }
    return cfg;
  };

  // Record all dynamics cells through the pool.
  const std::size_t dyn_count = periods.size() * factors.size();
  const std::size_t rec_count = dyn_count * roc_placements.size();
  const std::uint64_t sims_before_roc = core::AttackCampaign::systems_simulated();
  const double t_rec0 = now_seconds();
  const auto traces = runner.map(rec_count, [&](std::size_t i) {
    const std::size_t dyn = i / roc_placements.size();
    const std::size_t p = i % roc_placements.size();
    core::AttackCampaign campaign(
        roc_config(periods[dyn / factors.size()],
                   factors[dyn % factors.size()]));
    return campaign.record_trace(roc_placements[p]);
  });
  // Clean recordings: dormant Trojans mean identical dynamics across
  // factors and duty-cycle periods -- but NOT across system timing, so
  // the period=0 cells (which shift first_epoch_cycle to 600) need their
  // own clean trace for an apples-to-apples detect/fp pair.
  const auto record_clean = [&](Cycle first_epoch_cycle) {
    core::CampaignConfig clean_cfg = sweep_cfg.base;
    clean_cfg.detector.reset();
    clean_cfg.trojan.active = false;
    clean_cfg.toggle_period_epochs = 0;
    clean_cfg.system.first_epoch_cycle = first_epoch_cycle;
    core::AttackCampaign clean_campaign(clean_cfg);
    return clean_campaign.record_trace(roc_placements.front());
  };
  const bool has_period0 =
      std::find(periods.begin(), periods.end(), 0) != periods.end();
  const power::RequestTrace clean_trace =
      record_clean(sweep_cfg.base.system.first_epoch_cycle);
  const power::RequestTrace clean_trace_epoch0 =
      has_period0 ? record_clean(600) : power::RequestTrace{};
  const double record_seconds = now_seconds() - t_rec0;
  const std::uint64_t roc_sims =
      core::AttackCampaign::systems_simulated() - sims_before_roc;

  // Replay the detector grid over every trace (and the clean traces).
  const double t_rep0 = now_seconds();
  std::vector<double> clean_fp(roc_detectors.size(), 0.0);
  std::vector<double> clean_fp_epoch0(roc_detectors.size(), 0.0);
  for (std::size_t d = 0; d < roc_detectors.size(); ++d) {
    const auto rep = power::replay_detector(clean_trace, roc_detectors[d]);
    clean_fp[d] =
        static_cast<double>(rep.unique_flagged()) / monitored;
    if (has_period0) {
      const auto rep0 =
          power::replay_detector(clean_trace_epoch0, roc_detectors[d]);
      clean_fp_epoch0[d] =
          static_cast<double>(rep0.unique_flagged()) / monitored;
    }
  }
  std::vector<RocPoint> roc_points;
  roc_points.reserve(dyn_count * roc_detectors.size());
  std::size_t replays =  // clean replays above
      roc_detectors.size() * (has_period0 ? 2 : 1);
  for (std::size_t dyn = 0; dyn < dyn_count; ++dyn) {
    for (std::size_t d = 0; d < roc_detectors.size(); ++d) {
      RocPoint pt;
      pt.period = periods[dyn / factors.size()];
      pt.factor = factors[dyn % factors.size()];
      pt.kind = roc_detectors[d].kind;
      pt.lo = roc_detectors[d].low_ratio;
      pt.hi = roc_detectors[d].high_ratio;
      pt.fp = pt.period == 0 ? clean_fp_epoch0[d] : clean_fp[d];
      double latency_sum = 0.0;
      int latency_n = 0;
      for (std::size_t p = 0; p < roc_placements.size(); ++p) {
        const auto rep = power::replay_detector(
            traces[dyn * roc_placements.size() + p], roc_detectors[d]);
        ++replays;
        pt.detect += static_cast<double>(rep.unique_flagged()) / monitored;
        if (rep.first_flag_epoch >= 0) {
          latency_sum += rep.first_flag_epoch;
          ++latency_n;
        }
      }
      pt.detect /= static_cast<double>(roc_placements.size());
      if (latency_n > 0) pt.latency = latency_sum / latency_n;
      roc_points.push_back(pt);
    }
  }
  const double replay_seconds = now_seconds() - t_rep0;

  std::printf(
      "\nROC sweep -- duty-cycle period x modification factor x band x "
      "detector kind\n");
  std::printf("(period 0 = always-on attack live from power-on; detect/fp "
              "per band, tight -> loose)\n");
  for (std::size_t dyn = 0; dyn < dyn_count; ++dyn) {
    const int period = periods[dyn / factors.size()];
    const double factor = factors[dyn % factors.size()];
    for (const auto kind : {power::DetectorKind::kSelfEwma,
                            power::DetectorKind::kCohortMedian}) {
      std::printf("period=%d factor=%.2f | %-6s detect:", period, factor,
                  kind_name(kind));
      for (const auto& pt : roc_points) {
        if (pt.period == period && pt.factor == factor && pt.kind == kind) {
          std::printf(" %5.1f%%", pt.detect * 100.0);
        }
      }
      std::printf("  fp:");
      for (const auto& pt : roc_points) {
        if (pt.period == period && pt.factor == factor && pt.kind == kind) {
          std::printf(" %5.1f%%", pt.fp * 100.0);
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\n(the self-EWMA goes blind at period=0 -- its history anchors to\n"
      "the attacked level -- while the cohort detector keeps catching\n"
      "attenuated minorities; high factors dodge loose bands entirely:\n"
      "the stealth frontier this sweep maps)\n");

  // The cost-shape evidence: simulations scale with placements and
  // dynamics cells, never with the detector grid.
  std::fprintf(stderr,
               "curve: %llu sims in %.2fs | ROC: %llu sims (%zu dynamics x "
               "%zu placements + %d clean) + %zu replays of a %zu-detector "
               "grid, record %.2fs replay %.3fs\n",
               static_cast<unsigned long long>(curve_sims), curve_seconds,
               static_cast<unsigned long long>(roc_sims), dyn_count,
               roc_placements.size(), has_period0 ? 2 : 1, replays,
               roc_detectors.size(), record_seconds, replay_seconds);

  std::FILE* json = std::fopen(json_path, "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n  \"benchmark\": \"defense_sweep\",\n");
    std::fprintf(json, "  \"quick\": %d,\n", quick ? 1 : 0);
    std::fprintf(json, "  \"curve\": {\"operating_points\": %zu, "
                 "\"placements\": %zu, \"simulations\": %llu, "
                 "\"seconds\": %.3f},\n",
                 sweep_cfg.detectors.size(), sweep_cfg.placements.size(),
                 static_cast<unsigned long long>(curve_sims), curve_seconds);
    std::fprintf(json, "  \"roc\": {\n");
    std::fprintf(json, "    \"dynamics_cells\": %zu,\n", dyn_count);
    std::fprintf(json, "    \"placements\": %zu,\n", roc_placements.size());
    std::fprintf(json, "    \"detector_grid\": %zu,\n", roc_detectors.size());
    std::fprintf(json, "    \"simulations\": %llu,\n",
                 static_cast<unsigned long long>(roc_sims));
    std::fprintf(json, "    \"replays\": %zu,\n", replays);
    std::fprintf(json, "    \"record_seconds\": %.3f,\n", record_seconds);
    std::fprintf(json, "    \"replay_seconds\": %.3f,\n", replay_seconds);
    std::fprintf(json, "    \"points\": [\n");
    for (std::size_t i = 0; i < roc_points.size(); ++i) {
      const RocPoint& pt = roc_points[i];
      std::fprintf(json,
                   "      {\"period\": %d, \"factor\": %.2f, \"kind\": "
                   "\"%s\", \"lo\": %.2f, \"hi\": %.2f, \"detect\": %.4f, "
                   "\"fp\": %.4f, \"latency\": %.1f}%s\n",
                   pt.period, pt.factor, kind_name(pt.kind), pt.lo, pt.hi,
                   pt.detect, pt.fp, pt.latency,
                   i + 1 < roc_points.size() ? "," : "");
    }
    std::fprintf(json, "    ]\n  }\n}\n");
    std::fclose(json);
    std::fprintf(stderr, "wrote %s\n", json_path);
  }
  return 0;
}
