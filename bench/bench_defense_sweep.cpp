// Defense-evaluation sweep (extension of the paper's conclusion): widens
// the detector/guard trust band step by step and, for each operating
// point, evaluates every Trojan placement in one parallel campaign batch
// via core::DefenseSweep. Reports the defender's trade-off curve:
// detection rate and latency vs false positives, and the residual attack
// effect Q when the GuardedBudgeter clamps at the same band.
//
//   HTPB_QUICK=1   fewer operating points / placements
//   HTPB_THREADS   caps the sweep pool
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/defense_sweep.hpp"
#include "core/placement.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Defense sweep -- trust-band operating points x HT placements",
      "extension of Sec. VI (conclusion)",
      "tight bands detect fast with some false positives and kill most of "
      "Q; loose bands go blind and let Q through");

  const bool quick = bench::quick_mode();

  core::DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = bench::mix_campaign_config(0, 64);
  // Mid-run activation: the detector earns honest history, then the
  // Trojans wake up (the scenario a deployed detector actually faces).
  sweep_cfg.base.trojan.active = false;
  sweep_cfg.base.toggle_period_epochs = 3;
  sweep_cfg.base.measure_epochs = quick ? 4 : 6;

  // Operating points: the trust band [low_ratio, high_ratio] widened from
  // tight (flag anything off by ~25%) to loose (only 4x excursions).
  const std::vector<std::pair<double, double>> bands =
      quick ? std::vector<std::pair<double, double>>{{0.6, 1.6}, {0.3, 3.0}}
            : std::vector<std::pair<double, double>>{{0.8, 1.25},
                                                     {0.6, 1.6},
                                                     {0.45, 2.2},
                                                     {0.3, 3.0},
                                                     {0.25, 4.0}};
  for (const auto& [lo, hi] : bands) {
    power::DetectorConfig d;
    d.low_ratio = lo;
    d.high_ratio = hi;
    sweep_cfg.detectors.push_back(d);
  }

  // Placements: GM-adjacent cluster, mid-mesh cluster, corner cluster --
  // the Fig. 4 arms, each evaluated against every operating point.
  const core::AttackCampaign probe(sweep_cfg.base);
  const MeshGeometry geom(sweep_cfg.base.system.width,
                          sweep_cfg.base.system.height);
  const int m = 8;
  sweep_cfg.placements.push_back(core::clustered_placement(
      geom, m, geom.coord_of(probe.gm_node()), probe.gm_node()));
  sweep_cfg.placements.push_back(core::clustered_placement(
      geom, m, Coord{geom.width() / 4, geom.height() / 4}, probe.gm_node()));
  if (!quick) {
    sweep_cfg.placements.push_back(core::clustered_placement(
        geom, m, MeshGeometry::corner(), probe.gm_node()));
  }

  const core::DefenseSweep sweep(sweep_cfg);
  const core::ParallelSweepRunner runner;
  const auto curve = sweep.run(runner);

  // Thread count to stderr so stdout is byte-identical at any pool size
  // (the determinism check in the verify recipe cmp's stdouts).
  std::fprintf(stderr, "(%zu operating points x %zu placements, %d threads)\n",
               sweep_cfg.detectors.size(), sweep_cfg.placements.size(),
               runner.threads());
  std::printf("%-13s | %8s %8s %8s | %8s %8s | %8s %8s\n", "band [lo,hi]",
              "detect", "victims", "boosted", "falsePos", "latency",
              "Q(plain)", "Q(guard)");
  for (const auto& pt : curve) {
    std::printf(
        "[%4.2f, %4.2f] | %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %8.1f | "
        "%8.3f %8.3f\n",
        pt.detector.low_ratio, pt.detector.high_ratio,
        pt.detection_rate * 100.0, pt.victim_flag_rate * 100.0,
        pt.attacker_flag_rate * 100.0, pt.false_positive_rate * 100.0,
        pt.mean_detection_latency, pt.mean_q_plain, pt.mean_q_guarded);
  }
  std::printf(
      "\n(detect = flagged cores / monitored cores, mean over placements;\n"
      "latency = epochs from power-on to the first confirmed flag;\n"
      "Q(guard) = residual attack effect with the GuardedBudgeter\n"
      "clamping requests into the same trust band)\n");
  return 0;
}
