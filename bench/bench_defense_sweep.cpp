// Defense-evaluation sweep (extension of the paper's conclusion), two
// parts:
//
//  1. Trust-band operating points x HT placements through
//     core::DefenseSweep (detection + false positives + latency + Q under
//     guard). The detection arm records one request trace per placement
//     and replays every operating point offline -- simulations scale with
//     placements, not with the detector grid.
//  2. A dense stealthy-Trojan ROC sweep: duty-cycle period x modification
//     factor x trust band x detector kind (self-EWMA vs cohort-median).
//
// Thin formatter over the registry's "defense-roc" scenario; the sweep
// axes live in src/scenario/registry.cpp and the execution in
// src/scenario/runner.cpp. Simulation counts and record/replay timings
// are written to a BENCH_defense_sweep.json artifact (timings also to
// stderr); stdout is byte-identical at any thread count.
//
//   HTPB_QUICK=1   fewer operating points / placements / dynamics cells
//   HTPB_THREADS   caps the sweep pool
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace htpb;
  const char* json_path = "BENCH_defense_sweep.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  const json::Value result = bench::run_registry_scenario("defense-roc");
  const json::Object& root = result.as_object();
  const json::Object& curve = root.find("curve")->as_object();
  const json::Object& roc = root.find("roc")->as_object();
  const json::Object& timing = root.find("timing")->as_object();

  // Thread count to stderr so stdout is byte-identical at any pool size.
  std::fprintf(stderr, "(%lld operating points x %lld placements, %lld "
               "threads)\n",
               static_cast<long long>(
                   curve.find("operating_points")->as_int()),
               static_cast<long long>(curve.find("placements")->as_int()),
               static_cast<long long>(root.find("threads")->as_int()));
  std::printf("%-13s | %8s %8s %8s | %8s %8s | %8s %8s\n", "band [lo,hi]",
              "detect", "victims", "boosted", "falsePos", "latency",
              "Q(plain)", "Q(guard)");
  for (const json::Value& point : curve.find("points")->as_array()) {
    const json::Object& pt = point.as_object();
    std::printf(
        "[%4.2f, %4.2f] | %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %8.1f | "
        "%8.3f %8.3f\n",
        pt.find("low")->as_double(), pt.find("high")->as_double(),
        pt.find("detection_rate")->as_double() * 100.0,
        pt.find("victim_flag_rate")->as_double() * 100.0,
        pt.find("attacker_flag_rate")->as_double() * 100.0,
        pt.find("false_positive_rate")->as_double() * 100.0,
        pt.find("mean_detection_latency")->as_double(),
        pt.find("mean_q_plain")->as_double(),
        pt.find("mean_q_guarded")->as_double());
  }
  std::printf(
      "\n(detect = distinct flagged cores / monitored cores, mean over\n"
      "placements; latency = epochs from power-on to the first confirmed\n"
      "flag; Q(guard) = residual attack effect with the GuardedBudgeter\n"
      "clamping requests into the same trust band)\n");

  // ROC tables: detect and fp per (period, factor, kind), bands in the
  // registered tight -> loose order.
  const json::Array& roc_points = roc.find("points")->as_array();
  std::printf(
      "\nROC sweep -- duty-cycle period x modification factor x band x "
      "detector kind\n");
  std::printf("(period 0 = always-on attack live from power-on; detect/fp "
              "per band, tight -> loose)\n");
  // Walk the distinct (period, factor, kind) triples in point order; the
  // runner emits the grid ordered by dynamics cell then detector.
  for (std::size_t i = 0; i < roc_points.size();) {
    const json::Object& first = roc_points[i].as_object();
    const long long period = first.find("period")->as_int();
    const double factor = first.find("factor")->as_double();
    // Points of one dynamics cell, grouped ewma-first then cohort (the
    // runner's detector-grid order).
    for (const char* kind : {"ewma", "cohort"}) {
      std::printf("period=%lld factor=%.2f | %-6s detect:", period, factor,
                  kind);
      for (const json::Value& point : roc_points) {
        const json::Object& pt = point.as_object();
        if (pt.find("period")->as_int() == period &&
            pt.find("factor")->as_double() == factor &&
            pt.find("kind")->as_string() == kind) {
          std::printf(" %5.1f%%", pt.find("detect")->as_double() * 100.0);
        }
      }
      std::printf("  fp:");
      for (const json::Value& point : roc_points) {
        const json::Object& pt = point.as_object();
        if (pt.find("period")->as_int() == period &&
            pt.find("factor")->as_double() == factor &&
            pt.find("kind")->as_string() == kind) {
          std::printf(" %5.1f%%", pt.find("fp")->as_double() * 100.0);
        }
      }
      std::printf("\n");
    }
    // Skip past this dynamics cell (detector grid = 2 kinds x bands).
    const std::size_t grid =
        static_cast<std::size_t>(roc.find("detector_grid")->as_int());
    i += grid;
  }
  std::printf(
      "\n(the self-EWMA goes blind at period=0 -- its history anchors to\n"
      "the attacked level -- while the cohort detector keeps catching\n"
      "attenuated minorities; high factors dodge loose bands entirely:\n"
      "the stealth frontier this sweep maps)\n");

  // The cost-shape evidence: simulations scale with placements and
  // dynamics cells, never with the detector grid.
  std::fprintf(stderr,
               "curve: %lld sims in %.2fs | ROC: %lld sims (%lld dynamics x "
               "%lld placements) + %lld replays of a %lld-detector grid, "
               "record %.2fs replay %.3fs\n",
               static_cast<long long>(curve.find("simulations")->as_int()),
               timing.find("curve_seconds")->as_double(),
               static_cast<long long>(roc.find("simulations")->as_int()),
               static_cast<long long>(roc.find("dynamics_cells")->as_int()),
               static_cast<long long>(roc.find("placements")->as_int()),
               static_cast<long long>(roc.find("replays")->as_int()),
               static_cast<long long>(roc.find("detector_grid")->as_int()),
               timing.find("record_seconds")->as_double(),
               timing.find("replay_seconds")->as_double());

  // JSON artifact (nightly trend tracking): same top-level keys as ever,
  // assembled through the shared common/json emitter.
  json::Object artifact;
  artifact["benchmark"] = json::Value("defense_sweep");
  artifact["quick"] = json::Value(bench::quick_mode() ? 1 : 0);
  {
    json::Object c;
    c["operating_points"] = *curve.find("operating_points");
    c["placements"] = *curve.find("placements");
    c["simulations"] = *curve.find("simulations");
    c["seconds"] = *timing.find("curve_seconds");
    artifact["curve"] = json::Value(std::move(c));
  }
  {
    json::Object r;
    r["dynamics_cells"] = *roc.find("dynamics_cells");
    r["placements"] = *roc.find("placements");
    r["detector_grid"] = *roc.find("detector_grid");
    r["simulations"] = *roc.find("simulations");
    r["replays"] = *roc.find("replays");
    r["record_seconds"] = *timing.find("record_seconds");
    r["replay_seconds"] = *timing.find("replay_seconds");
    r["points"] = *roc.find("points");
    artifact["roc"] = json::Value(std::move(r));
  }
  try {
    json::dump_file(json::Value(std::move(artifact)), json_path);
    std::fprintf(stderr, "wrote %s\n", json_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
  }
  return 0;
}
