// Defense-evaluation sweep (extension of the paper's conclusion), two
// parts:
//
//  1. Trust-band operating points x HT placements through
//     core::DefenseSweep (detection + false positives + latency + Q under
//     guard). The detection arm records one request trace per placement
//     and replays every operating point offline -- simulations scale with
//     placements, not with the detector grid.
//  2. A dense stealthy-Trojan ROC sweep: duty-cycle period x modification
//     factor x trust band x detector kind (self-EWMA vs cohort-median).
//
// Thin formatter over the registry's "defense-roc" scenario; the sweep
// axes live in src/scenario/registry.cpp and the execution in
// src/scenario/runner.cpp. Simulation counts and record/replay timings
// are written to a BENCH_defense_sweep.json artifact (timings also to
// stderr); stdout is byte-identical at any thread count.
//
//   HTPB_QUICK=1   fewer operating points / placements / dynamics cells
//   HTPB_THREADS   caps the sweep pool
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>

#include "bench_util.hpp"
#include "core/campaign.hpp"
#include "core/defense_sweep.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "workload/application.hpp"

namespace {

/// Warmup-fork A/B: the same DefenseSweep (detection + clean + response
/// arms, which all share warmup prefixes) with prefix forking off, then
/// on. Returns {off: {...}, on: {...}, identical, saved_warmup_epochs}
/// for the JSON artifact; the curves must agree double for double (the
/// fork is a pure cost optimization).
htpb::json::Value warmup_fork_ab(bool quick) {
  using namespace htpb;
  namespace hc = htpb::core;

  hc::DefenseSweepConfig sweep;
  sweep.base.system = system::SystemConfig::with_size(64);
  sweep.base.system.epoch_cycles = 1000;
  sweep.base.mix = workload::standard_mixes().at(0);
  sweep.base.trojan.victim_scale = 0.10;
  sweep.base.trojan.attacker_boost = 8.0;
  sweep.base.warmup_epochs = quick ? 2 : 4;
  sweep.base.measure_epochs = quick ? 3 : 5;
  sweep.detectors.resize(quick ? 2 : 3);
  for (std::size_t d = 1; d < sweep.detectors.size(); ++d) {
    sweep.detectors[d].high_ratio =
        sweep.detectors[d - 1].high_ratio * 0.8;
  }
  sweep.measure_false_positives = true;
  sweep.responses = {power::ResponseKind::kQuarantine,
                     power::ResponseKind::kThrottle};
  sweep.response_base = power::ResponseConfig{};
  {
    const MeshGeometry geom(sweep.base.system.width,
                            sweep.base.system.height);
    const hc::AttackCampaign probe(sweep.base);
    sweep.placements.push_back(hc::clustered_placement(
        geom, 8, geom.coord_of(probe.gm_node()), probe.gm_node()));
    if (!quick) {
      sweep.placements.push_back(hc::clustered_placement(
          geom, 4, MeshGeometry::corner(), probe.gm_node()));
    }
  }
  const hc::ParallelSweepRunner runner(0);

  double q_off = 0.0;
  double q_on = 0.0;
  const auto run_arm = [&](bool fork, double& q_sum) {
    sweep.base.warmup_fork = fork;
    const std::uint64_t w0 = hc::AttackCampaign::warmup_epochs_simulated();
    const std::uint64_t s0 = hc::AttackCampaign::systems_simulated();
    const auto t0 = std::chrono::steady_clock::now();
    const auto curve = hc::DefenseSweep(sweep).run(runner);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    q_sum = 0.0;
    for (const auto& pt : curve) {
      q_sum += pt.mean_q_plain;
      for (const auto& rp : pt.responses) q_sum += rp.mean_q;
    }
    json::Object arm;
    arm["warmup_epochs_simulated"] = json::Value(static_cast<long long>(
        hc::AttackCampaign::warmup_epochs_simulated() - w0));
    arm["systems_simulated"] = json::Value(
        static_cast<long long>(hc::AttackCampaign::systems_simulated() - s0));
    arm["seconds"] = json::Value(seconds);
    return arm;
  };

  json::Object ab;
  json::Object off = run_arm(false, q_off);
  json::Object on = run_arm(true, q_on);
  const long long saved = off.find("warmup_epochs_simulated")->as_int() -
                          on.find("warmup_epochs_simulated")->as_int();
  std::fprintf(stderr,
               "warmup fork: off %lld warmup epochs %.2fs | on %lld warmup "
               "epochs %.2fs | %lld epochs saved, curves %s\n",
               off.find("warmup_epochs_simulated")->as_int(),
               off.find("seconds")->as_double(),
               on.find("warmup_epochs_simulated")->as_int(),
               on.find("seconds")->as_double(), saved,
               q_off == q_on ? "identical" : "DIVERGED");
  ab["off"] = json::Value(std::move(off));
  ab["on"] = json::Value(std::move(on));
  ab["saved_warmup_epochs"] = json::Value(saved);
  ab["identical"] = json::Value(q_off == q_on);
  return json::Value(std::move(ab));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace htpb;
  const char* json_path = "BENCH_defense_sweep.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  const json::Value result = bench::run_registry_scenario("defense-roc");
  const json::Object& root = result.as_object();
  const json::Object& curve = root.find("curve")->as_object();
  const json::Object& roc = root.find("roc")->as_object();
  const json::Object& timing = root.find("timing")->as_object();

  // Thread count to stderr so stdout is byte-identical at any pool size.
  std::fprintf(stderr, "(%lld operating points x %lld placements, %lld "
               "threads)\n",
               static_cast<long long>(
                   curve.find("operating_points")->as_int()),
               static_cast<long long>(curve.find("placements")->as_int()),
               static_cast<long long>(root.find("threads")->as_int()));
  std::printf("%-13s | %8s %8s %8s | %8s %8s | %8s %8s\n", "band [lo,hi]",
              "detect", "victims", "boosted", "falsePos", "latency",
              "Q(plain)", "Q(guard)");
  for (const json::Value& point : curve.find("points")->as_array()) {
    const json::Object& pt = point.as_object();
    std::printf(
        "[%4.2f, %4.2f] | %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %8.1f | "
        "%8.3f %8.3f\n",
        pt.find("low")->as_double(), pt.find("high")->as_double(),
        pt.find("detection_rate")->as_double() * 100.0,
        pt.find("victim_flag_rate")->as_double() * 100.0,
        pt.find("attacker_flag_rate")->as_double() * 100.0,
        pt.find("false_positive_rate")->as_double() * 100.0,
        pt.find("mean_detection_latency")->as_double(),
        pt.find("mean_q_plain")->as_double(),
        pt.find("mean_q_guarded")->as_double());
  }
  std::printf(
      "\n(detect = distinct flagged cores / monitored cores, mean over\n"
      "placements; latency = epochs from power-on to the first confirmed\n"
      "flag; Q(guard) = residual attack effect with the GuardedBudgeter\n"
      "clamping requests into the same trust band)\n");

  // ROC tables: detect and fp per (period, factor, kind), bands in the
  // registered tight -> loose order.
  const json::Array& roc_points = roc.find("points")->as_array();
  std::printf(
      "\nROC sweep -- duty-cycle period x modification factor x band x "
      "detector kind\n");
  std::printf("(period 0 = always-on attack live from power-on; detect/fp "
              "per band, tight -> loose)\n");
  // Walk the distinct (period, factor, kind) triples in point order; the
  // runner emits the grid ordered by dynamics cell then detector.
  for (std::size_t i = 0; i < roc_points.size();) {
    const json::Object& first = roc_points[i].as_object();
    const long long period = first.find("period")->as_int();
    const double factor = first.find("factor")->as_double();
    // Points of one dynamics cell, grouped ewma-first then cohort (the
    // runner's detector-grid order).
    for (const char* kind : {"ewma", "cohort"}) {
      std::printf("period=%lld factor=%.2f | %-6s detect:", period, factor,
                  kind);
      for (const json::Value& point : roc_points) {
        const json::Object& pt = point.as_object();
        if (pt.find("period")->as_int() == period &&
            pt.find("factor")->as_double() == factor &&
            pt.find("kind")->as_string() == kind) {
          std::printf(" %5.1f%%", pt.find("detect")->as_double() * 100.0);
        }
      }
      std::printf("  fp:");
      for (const json::Value& point : roc_points) {
        const json::Object& pt = point.as_object();
        if (pt.find("period")->as_int() == period &&
            pt.find("factor")->as_double() == factor &&
            pt.find("kind")->as_string() == kind) {
          std::printf(" %5.1f%%", pt.find("fp")->as_double() * 100.0);
        }
      }
      std::printf("\n");
    }
    // Skip past this dynamics cell (detector grid = 2 kinds x bands).
    const std::size_t grid =
        static_cast<std::size_t>(roc.find("detector_grid")->as_int());
    i += grid;
  }
  std::printf(
      "\n(the self-EWMA goes blind at period=0 -- its history anchors to\n"
      "the attacked level -- while the cohort detector keeps catching\n"
      "attenuated minorities; high factors dodge loose bands entirely:\n"
      "the stealth frontier this sweep maps)\n");

  // The cost-shape evidence: simulations scale with placements and
  // dynamics cells, never with the detector grid.
  std::fprintf(stderr,
               "curve: %lld sims in %.2fs | ROC: %lld sims (%lld dynamics x "
               "%lld placements) + %lld replays of a %lld-detector grid, "
               "record %.2fs replay %.3fs\n",
               static_cast<long long>(curve.find("simulations")->as_int()),
               timing.find("curve_seconds")->as_double(),
               static_cast<long long>(roc.find("simulations")->as_int()),
               static_cast<long long>(roc.find("dynamics_cells")->as_int()),
               static_cast<long long>(roc.find("placements")->as_int()),
               static_cast<long long>(roc.find("replays")->as_int()),
               static_cast<long long>(roc.find("detector_grid")->as_int()),
               timing.find("record_seconds")->as_double(),
               timing.find("replay_seconds")->as_double());

  // JSON artifact (nightly trend tracking): same top-level keys as ever,
  // assembled through the shared common/json emitter.
  json::Object artifact;
  artifact["benchmark"] = json::Value("defense_sweep");
  artifact["quick"] = json::Value(bench::quick_mode() ? 1 : 0);
  {
    json::Object c;
    c["operating_points"] = *curve.find("operating_points");
    c["placements"] = *curve.find("placements");
    c["simulations"] = *curve.find("simulations");
    c["seconds"] = *timing.find("curve_seconds");
    artifact["curve"] = json::Value(std::move(c));
  }
  {
    json::Object r;
    r["dynamics_cells"] = *roc.find("dynamics_cells");
    r["placements"] = *roc.find("placements");
    r["detector_grid"] = *roc.find("detector_grid");
    r["simulations"] = *roc.find("simulations");
    r["replays"] = *roc.find("replays");
    r["record_seconds"] = *timing.find("record_seconds");
    r["replay_seconds"] = *timing.find("replay_seconds");
    r["points"] = *roc.find("points");
    artifact["roc"] = json::Value(std::move(r));
  }
  artifact["warmup_fork"] = warmup_fork_ab(bench::quick_mode());
  try {
    json::dump_file(json::Value(std::move(artifact)), json_path);
    std::fprintf(stderr, "wrote %s\n", json_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
  }
  return 0;
}
