// Fig. 6: per-application performance change Theta vs infection rate for
// each Table III mix (four panels). The paper's headline points: at
// infection 0.5, mix-1 attackers gain up to 1.2x and victims drop to
// 0.6x; mix-3's attacker reaches 1.35x; mix-4's victims drop to 0.8x.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/infection.hpp"
#include "core/parallel_sweep.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Fig. 6 -- per-application Theta vs infection rate (4 mixes)",
      "Fig. 6(a)-(d)",
      "attackers' Theta >= 1 and rises; victims' Theta < 1 and falls; "
      "compute-bound victims fall hardest");

  const double targets_full[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  const double targets_quick[] = {0.5};
  const auto targets = bench::quick_mode()
                           ? std::span<const double>(targets_quick)
                           : std::span<const double>(targets_full);

  const core::ParallelSweepRunner runner;
  for (int mix = 0; mix < 4; ++mix) {
    core::AttackCampaign campaign(bench::mix_campaign_config(mix));
    const MeshGeometry geom(16, 16);
    const core::InfectionAnalyzer analyzer(geom, campaign.gm_node());
    Rng rng(42);

    std::printf("\nmix-%d (panel %c):\n", mix + 1,
                static_cast<char>('a' + mix));
    std::printf("%10s |", "infection");
    for (const auto& app : campaign.apps()) {
      std::printf(" %13s%s", app.profile.name.substr(0, 12).c_str(),
                  app.is_attacker() ? "*" : " ");
    }
    std::printf("\n");
    // Same serial placement stream as before; the per-target campaign
    // simulations run across the pool.
    std::vector<std::vector<NodeId>> node_sets;
    node_sets.reserve(targets.size());
    for (const double target : targets) {
      node_sets.push_back(analyzer.placement_for_target(target, 64, rng));
    }
    const auto outs = runner.run_node_sets(campaign, node_sets);
    for (const auto& out : outs) {
      std::printf("%10.3f |", out.infection_measured);
      for (const auto& app : out.apps) std::printf(" %13.3f ", app.change);
      std::printf("\n");
    }
  }
  std::printf("\n(* marks attacker applications; Theta = Def. 2)\n");
  return 0;
}
