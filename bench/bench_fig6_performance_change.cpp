// Fig. 6: per-application performance change Theta vs infection rate for
// each Table III mix. Thin formatter over the registry's "fig6" scenario.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result = bench::run_registry_scenario("fig6");
  const json::Array& mixes = result.as_object().find("mixes")->as_array();

  for (std::size_t mix = 0; mix < mixes.size(); ++mix) {
    const json::Object& m = mixes[mix].as_object();
    std::printf("\nmix-%zu (panel %c):\n", mix + 1,
                static_cast<char>('a' + mix));
    std::printf("%10s |", "infection");
    for (const json::Value& app : m.find("apps")->as_array()) {
      const json::Object& a = app.as_object();
      std::printf(" %13s%s",
                  a.find("name")->as_string().substr(0, 12).c_str(),
                  a.find("attacker")->as_bool() ? "*" : " ");
    }
    std::printf("\n");
    for (const json::Value& row : m.find("rows")->as_array()) {
      const json::Object& r = row.as_object();
      std::printf("%10.3f |", r.find("infection")->as_double());
      for (const json::Value& change :
           r.find("theta_change")->as_array()) {
        std::printf(" %13.3f ", change.as_double());
      }
      std::printf("\n");
    }
  }
  std::printf("\n(* marks attacker applications; Theta = Def. 2)\n");
  return 0;
}
