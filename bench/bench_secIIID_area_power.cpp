// Sec. III-D: the stealth argument -- every derived number of the section
// regenerated from the synthesis constants. Thin formatter over the
// registry's "secIIID-area-power" scenario.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result =
      bench::run_registry_scenario("secIIID-area-power");
  const json::Object& root = result.as_object();
  const json::Object& m = root.find("model")->as_object();
  const auto d = [&](const char* key) {
    return m.find(key)->as_double();
  };
  const long long nodes = root.find("chip_nodes")->as_int();

  std::printf("%-46s %14s %14s\n", "quantity", "paper", "this repo");
  std::printf("%-46s %14s %14.4f\n", "HT area (um^2)", "12.1716",
              d("ht_area_um2"));
  std::printf("%-46s %14s %14.5f\n", "HT power (uW)", "0.55018",
              d("ht_power_uw"));
  std::printf("%-46s %14s %14.0f\n", "router area (um^2, DSENT)", "71814",
              d("router_area_um2"));
  std::printf("%-46s %14s %14.0f\n", "router power (uW, DSENT)", "31881",
              d("router_power_uw"));
  std::printf("%-46s %14s %14.4f\n", "HT area / router (%)", "~0.017",
              d("area_fraction_of_router") * 100.0);
  std::printf("%-46s %14s %14.5f\n", "HT power / router (%)", "~0.0017",
              d("power_fraction_of_router") * 100.0);

  const json::Array& scaling = root.find("scaling")->as_array();
  const json::Object& last = scaling.back().as_object();
  std::printf("%-46s %14s %14.3f\n", "60 HTs total area (um^2)", "730.296",
              last.find("total_area_um2")->as_double());
  std::printf("%-46s %14s %14.4f\n", "60 HTs total power (uW)", "33.0108",
              last.find("total_power_uw")->as_double());
  std::printf("%-46s %14s %14.5f\n",
              "60 HTs area / all routers, 512 nodes (%)", "~0.002",
              last.find("area_fraction_of_chip")->as_double() * 100.0);
  std::printf("%-46s %14s %14.6f\n",
              "60 HTs power / all routers, 512 nodes (%)", "~0.0002",
              last.find("power_fraction_of_chip")->as_double() * 100.0);

  std::printf("\nscaling with HT count (%lld-node chip):\n", nodes);
  std::printf("%6s %16s %16s %12s %12s\n", "HTs", "area (um^2)",
              "power (uW)", "area %chip", "power %chip");
  for (const json::Value& row : scaling) {
    const json::Object& r = row.as_object();
    std::printf("%6lld %16.4f %16.5f %12.6f %12.7f\n",
                static_cast<long long>(r.find("hts")->as_int()),
                r.find("total_area_um2")->as_double(),
                r.find("total_power_uw")->as_double(),
                r.find("area_fraction_of_chip")->as_double() * 100.0,
                r.find("power_fraction_of_chip")->as_double() * 100.0);
  }
  return 0;
}
