// Sec. III-D: the stealth argument. Regenerates every derived number of
// the section from the synthesis constants.
#include <cstdio>

#include "bench_util.hpp"
#include "core/area_power.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Sec. III-D -- hardware Trojan area & power vs router/chip",
      "Sec. III-D",
      "HT ~0.017%/0.0017% of one router; 60 HTs ~0.002%/0.0002% of all "
      "routers in a 512-node chip");

  const core::HtAreaPowerModel m;
  std::printf("%-46s %14s %14s\n", "quantity", "paper", "this repo");
  std::printf("%-46s %14s %14.4f\n", "HT area (um^2)", "12.1716",
              m.ht_area_um2);
  std::printf("%-46s %14s %14.5f\n", "HT power (uW)", "0.55018",
              m.ht_power_uw);
  std::printf("%-46s %14s %14.0f\n", "router area (um^2, DSENT)", "71814",
              m.router.area_um2);
  std::printf("%-46s %14s %14.0f\n", "router power (uW, DSENT)", "31881",
              m.router.power_uw);
  std::printf("%-46s %14s %14.4f\n", "HT area / router (%)", "~0.017",
              m.area_fraction_of_router() * 100.0);
  std::printf("%-46s %14s %14.5f\n", "HT power / router (%)", "~0.0017",
              m.power_fraction_of_router() * 100.0);
  std::printf("%-46s %14s %14.3f\n", "60 HTs total area (um^2)", "730.296",
              m.total_area_um2(60));
  std::printf("%-46s %14s %14.4f\n", "60 HTs total power (uW)", "33.0108",
              m.total_power_uw(60));
  std::printf("%-46s %14s %14.5f\n",
              "60 HTs area / all routers, 512 nodes (%)", "~0.002",
              m.area_fraction_of_chip(60, 512) * 100.0);
  std::printf("%-46s %14s %14.6f\n",
              "60 HTs power / all routers, 512 nodes (%)", "~0.0002",
              m.power_fraction_of_chip(60, 512) * 100.0);

  std::printf("\nscaling with HT count (512-node chip):\n");
  std::printf("%6s %16s %16s %12s %12s\n", "HTs", "area (um^2)",
              "power (uW)", "area %chip", "power %chip");
  for (const int hts : {1, 10, 20, 40, 60}) {
    std::printf("%6d %16.4f %16.5f %12.6f %12.7f\n", hts,
                m.total_area_um2(hts), m.total_power_uw(hts),
                m.area_fraction_of_chip(hts, 512) * 100.0,
                m.power_fraction_of_chip(hts, 512) * 100.0);
  }
  return 0;
}
