// Sec. V-C's optimization study: fit the linear attack-effect model
// (Eq. 9), solve the placement problem (Eq. 10-11) and compare the
// realized Q of the optimized placement against randomly placed Trojans.
// Thin formatter over the registry's "secVC-placement" scenario.
//
// Paper: optimal placement beats random by ~30% for mixes 1-3 and up to
// ~110% for mix-4. HTPB_THREADS caps the sweep pool; the printed numbers
// are identical at any thread count.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result = bench::run_registry_scenario("secVC-placement");

  std::fprintf(stderr, "(campaign sweeps on %lld threads)\n",
               static_cast<long long>(
                   result.as_object().find("threads")->as_int()));
  std::printf("%-7s %9s %9s %9s %8s | %11s %9s\n", "mix", "Q(random)",
              "Q(model)", "Q(run)", "gain", "model R^2", "pred Q");
  for (const json::Value& row :
       result.as_object().find("mixes")->as_array()) {
    const json::Object& r = row.as_object();
    std::printf("%-7s %9.3f %9.3f %9.3f %7.1f%% | %11.3f %9.3f\n",
                r.find("mix")->as_string().c_str(),
                r.find("q_random")->as_double(),
                r.find("q_model_top")->as_double(),
                r.find("q_deployed")->as_double(),
                r.find("gain")->as_double() * 100.0,
                r.find("model_r2")->as_double(),
                r.find("predicted_q")->as_double());
  }
  std::printf("\n(gain = realized Q of optimized placement over the mean of "
              "random 16-HT placements)\n");
  return 0;
}
