// Sec. V-C's optimization study: fit the linear attack-effect model
// (Eq. 9) on sampled placements, solve the placement problem (Eq. 10-11,
// M_HT = 16, GM at the center), and compare the realized Q of the
// optimized placement against randomly placed Trojans.
//
// Paper: optimal placement beats random by ~30% for mixes 1-3 and up to
// ~110% for mix-4.
//
// All campaign evaluations fan out through ParallelSweepRunner
// (HTPB_THREADS caps the pool); placements are generated up front from a
// single Rng, so the printed numbers are identical at any thread count.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/attack_model.hpp"
#include "core/campaign.hpp"
#include "core/optimizer.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Sec. V-C -- model-optimized vs random HT placement (16 HTs)",
      "Sec. V-C", "optimized placement improves Q by ~30% (mixes 1-3) and "
                  "up to ~110% (mix-4) over random");

  // A 64-node chip keeps the dataset-building affordable; the geometry
  // arguments (rho/eta/m) are scale-free. HTPB_QUICK trims the sample set.
  const int nodes = 64;
  const int max_hts = 16;
  const int train_samples = bench::quick_mode() ? 10 : 24;
  const int random_trials = bench::quick_mode() ? 2 : 4;
  const core::ParallelSweepRunner runner;
  // stderr, so stdout stays byte-identical at any HTPB_THREADS setting.
  std::fprintf(stderr, "(campaign sweeps on %d thread%s)\n", runner.threads(),
               runner.threads() == 1 ? "" : "s");

  std::printf("%-7s %9s %9s %9s %8s | %11s %9s\n", "mix", "Q(random)",
              "Q(model)", "Q(run)", "gain", "model R^2", "pred Q");
  for (int mix = 0; mix < 4; ++mix) {
    core::CampaignConfig cfg = bench::mix_campaign_config(mix, nodes);
    core::AttackCampaign campaign(cfg);
    const MeshGeometry geom(cfg.system.width, cfg.system.height);
    Rng rng(7 + static_cast<std::uint64_t>(mix));

    // Phase 1: sample diverse placements (serially, from one stream) and
    // evaluate them across the pool to record (rho, eta, m, Q).
    std::vector<core::Placement> train;
    train.reserve(static_cast<std::size_t>(train_samples));
    for (int i = 0; i < train_samples; ++i) {
      const int m = 1 + static_cast<int>(rng.below(max_hts));
      train.push_back(core::candidate_placements(geom, campaign.gm_node(),
                                                 m, 1, rng)
                          .front());
    }
    const auto train_outs = runner.run_placements(campaign, train);

    std::vector<core::AttackSample> samples;
    std::vector<double> phi_victims;
    std::vector<double> phi_attackers;
    for (const auto& out : train_outs) {
      core::AttackSample s;
      s.rho = out.geometry.rho;
      s.eta = out.geometry.eta;
      s.m = out.geometry.m;
      for (const auto& app : out.apps) {
        (app.attacker ? s.phi_attackers : s.phi_victims).push_back(app.phi);
      }
      s.q = out.q;
      if (phi_victims.empty()) {
        phi_victims = s.phi_victims;
        phi_attackers = s.phi_attackers;
      }
      samples.push_back(std::move(s));
    }

    // Phase 2: fit Eq. 9 and enumerate (Eq. 10-11) across the pool.
    core::AttackEffectModel model;
    model.fit(samples);
    core::PlacementOptimizer optimizer(geom, campaign.gm_node(), &model,
                                       phi_victims, phi_attackers);
    // The attacker validates the model's short list in simulation before
    // committing; the best realized candidate is the deployed placement.
    const auto shortlist =
        optimizer.optimize_top_k(max_hts, 60, 3, rng(), runner);
    std::vector<core::Placement> short_placements;
    for (const auto& r : shortlist) short_placements.push_back(r.placement);
    const auto realized = runner.run_placements(campaign, short_placements);
    std::size_t best = 0;
    for (std::size_t c = 1; c < realized.size(); ++c) {
      if (realized[c].q > realized[best].q) best = c;
    }
    // Q(model): realized Q of the model's top-scored candidate.
    // Q(run): realized Q of the deployed (best-validated) candidate.
    const core::CampaignOutcome& optimized = realized[best];
    const double predicted_q = shortlist[best].predicted_q;

    std::vector<std::vector<NodeId>> random_sets;
    for (int t = 0; t < random_trials; ++t) {
      random_sets.push_back(
          core::random_placement(geom, max_hts, rng, campaign.gm_node()));
    }
    double q_random = 0.0;
    for (const auto& out : runner.run_node_sets(campaign, random_sets)) {
      q_random += out.q;
    }
    q_random /= random_trials;

    std::printf("%-7s %9.3f %9.3f %9.3f %7.1f%% | %11.3f %9.3f\n",
                cfg.mix->name.c_str(), q_random, realized[0].q, optimized.q,
                (optimized.q / q_random - 1.0) * 100.0, model.r2(),
                predicted_q);
  }
  std::printf("\n(gain = realized Q of optimized placement over the mean of "
              "random 16-HT placements)\n");
  return 0;
}
