// Ablation: the paper claims the attack works "irrespective of the power
// budgeting algorithms" the manager runs. We run the same mix-1 attack
// under all five implemented allocation policies.
#include <cstdio>

#include "bench_util.hpp"
#include "core/infection.hpp"
#include "core/placement.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Ablation -- attack effect vs budgeting algorithm (mix-1, 64 cores)",
      "Sec. I / II-A claim: attack is allocation-algorithm independent",
      "Q > 1 under every policy; magnitude varies with how aggressively "
      "the policy follows the (tampered) requests");

  std::printf("%-14s %10s %10s %12s %12s\n", "budgeter", "Q", "infection",
              "worst victim", "best attacker");
  for (const auto kind :
       {power::BudgeterKind::kUniform, power::BudgeterKind::kGreedy,
        power::BudgeterKind::kProportional,
        power::BudgeterKind::kDynamicProgramming,
        power::BudgeterKind::kMarket}) {
    core::CampaignConfig cfg = bench::mix_campaign_config(0, 64);
    cfg.system.budgeter = kind;
    core::AttackCampaign campaign(cfg);
    const MeshGeometry geom(cfg.system.width, cfg.system.height);
    const auto hts = core::clustered_placement(
        geom, 8, geom.coord_of(campaign.gm_node()), campaign.gm_node());
    const auto out = campaign.run(hts);
    double worst_victim = 1e9;
    double best_attacker = 0.0;
    for (const auto& app : out.apps) {
      if (app.attacker) {
        best_attacker = std::max(best_attacker, app.change);
      } else {
        worst_victim = std::min(worst_victim, app.change);
      }
    }
    std::printf("%-14s %10.3f %10.3f %12.3f %12.3f\n",
                power::to_string(kind), out.q, out.infection_measured,
                worst_victim, best_attacker);
  }
  std::printf("\n(victim starvation works under EVERY policy, because an\n"
              "allocator never grants more than the -- tampered -- request;\n"
              "greedy smallest-first is the most attack-resistant side,\n"
              "since boosted attacker requests are served last)\n");
  return 0;
}
