// Ablation: the paper claims the attack works "irrespective of the power
// budgeting algorithms" the manager runs. Thin formatter over the
// registry's "budgeter-ablation" scenario (same mix-1 attack under all
// five implemented allocation policies).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result =
      bench::run_registry_scenario("budgeter-ablation");

  std::printf("%-14s %10s %10s %12s %12s\n", "budgeter", "Q", "infection",
              "worst victim", "best attacker");
  for (const json::Value& row :
       result.as_object().find("rows")->as_array()) {
    const json::Object& r = row.as_object();
    std::printf("%-14s %10.3f %10.3f %12.3f %12.3f\n",
                r.find("budgeter")->as_string().c_str(),
                r.find("q")->as_double(), r.find("infection")->as_double(),
                r.find("worst_victim")->as_double(),
                r.find("best_attacker")->as_double());
  }
  std::printf("\n(victim starvation works under EVERY policy, because an\n"
              "allocator never grants more than the -- tampered -- request;\n"
              "greedy smallest-first is the most attack-resistant side,\n"
              "since boosted attacker requests are served last)\n");
  return 0;
}
