// Microbenchmarks of the substrates: router/mesh cycle cost, cache
// operations, budgeting policies, regression fit and the analytic
// infection estimator. These quantify the simulator itself (not a paper
// figure) and guard against performance regressions.
//
// Runs on the vendored bench/perf_harness.hpp (no libbenchmark
// dependency), so this target always builds. Reporting reuses the
// harness's cycles/sec plumbing with "cycles" meaning *operations* here
// (one mesh cycle, one cache lookup, one allocate call, ...).
//
//   bench_micro_substrates [--quick] [--json <path>] [--baseline <path>]
//                          [--max-regression <frac>]
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/infection.hpp"
#include "core/placement.hpp"
#include "mem/cache.hpp"
#include "noc/network.hpp"
#include "perf_harness.hpp"
#include "power/budgeter.hpp"
#include "sim/engine.hpp"

namespace {

using namespace htpb;

/// Defeats dead-code elimination the way benchmark::DoNotOptimize did.
template <typename T>
inline void keep(T&& value) {
  asm volatile("" : : "g"(value) : "memory");
}

/// Times `ops` iterations of `fn` (best of `reps`) and reports ops/sec
/// through the harness ("cycles" == operations for the substrates).
template <typename Fn>
bench::PerfResult measure(const std::string& name, std::uint64_t ops,
                          int reps, Fn&& fn) {
  bench::PerfResult res;
  res.name = name;
  res.sim_cycles = ops;
  res.seconds = bench::best_seconds_of(reps, fn);
  res.cycles_per_sec =
      res.seconds > 0.0 ? static_cast<double>(ops) / res.seconds : 0.0;
  return res;
}

// Mesh state lives outside the timed region (construction cost would
// otherwise dwarf the per-cycle tick cost being measured); successive
// reps keep ticking the same warm network, as iterations did under
// google-benchmark.
bench::PerfResult bm_mesh_idle_cycle(int side, std::uint64_t cycles,
                                     int reps) {
  sim::Engine engine;
  noc::MeshNetwork net(engine, MeshGeometry(side, side), noc::NocConfig{});
  return measure("mesh_idle_" + std::to_string(side) + "x" +
                     std::to_string(side),
                 cycles, reps,
                 [&] { engine.run_cycles(static_cast<Cycle>(cycles)); });
}

bench::PerfResult bm_mesh_uniform_traffic(int side, std::uint64_t rounds,
                                          int reps) {
  sim::Engine engine;
  MeshGeometry geom(side, side);
  noc::MeshNetwork net(engine, geom, noc::NocConfig{});
  const auto n = static_cast<std::uint64_t>(geom.node_count());
  for (NodeId i = 0; i < n; ++i) {
    net.set_handler(i, [](const noc::Packet&) {});
  }
  Rng rng(1);
  return measure(
      "mesh_uniform_" + std::to_string(side) + "x" + std::to_string(side),
      rounds * 4,  // 4 simulated cycles per round
      reps, [&] {
        for (std::uint64_t r = 0; r < rounds; ++r) {
          for (int k = 0; k < side; ++k) {
            const auto src = static_cast<NodeId>(rng.below(n));
            auto dst = static_cast<NodeId>(rng.below(n));
            if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
            net.send(net.make_packet(src, dst, noc::PacketType::kMemReadReq));
          }
          engine.run_cycles(4);
        }
      });
}

bench::PerfResult bm_cache_lookup(std::uint64_t ops, int reps) {
  mem::SetAssocCache<int> cache(256, 2);
  bool evicted = false;
  for (std::uint64_t a = 0; a < 400; ++a) cache.allocate(a, nullptr, &evicted);
  return measure("cache_lookup", ops, reps, [&] {
    Rng rng(2);
    for (std::uint64_t i = 0; i < ops; ++i) {
      keep(cache.find(rng.below(512)));
    }
  });
}

bench::PerfResult bm_budgeter_allocate(power::BudgeterKind kind,
                                       std::uint64_t ops, int reps) {
  const auto budgeter = power::make_budgeter(kind);
  Rng rng(3);
  std::vector<power::BudgetRequest> reqs;
  for (NodeId i = 0; i < 256; ++i) {
    reqs.push_back({i, 0, static_cast<std::uint32_t>(500 + rng.below(3000))});
  }
  return measure(std::string("budgeter_") + budgeter->name(), ops, reps,
                 [&] {
                   for (std::uint64_t i = 0; i < ops; ++i) {
                     keep(budgeter->allocate(reqs, 300'000, 500));
                   }
                 });
}

bench::PerfResult bm_least_squares_fit(std::uint64_t ops, int reps) {
  Rng rng(4);
  const std::size_t n = 64;
  const std::size_t p = 9;
  Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    for (std::size_t j = 1; j < p; ++j) x(i, j) = rng.uniform(-2, 2);
    y[i] = rng.uniform(0, 5);
  }
  return measure("least_squares_fit", ops, reps, [&] {
    for (std::uint64_t i = 0; i < ops; ++i) {
      keep(least_squares(x, y, 1e-6));
    }
  });
}

bench::PerfResult bm_infection_prediction(int side, std::uint64_t ops,
                                          int reps) {
  const MeshGeometry geom(side, side);
  const NodeId gm = geom.id_of(geom.center());
  const core::InfectionAnalyzer analyzer(geom, gm);
  Rng rng(5);
  const auto hts = core::random_placement(geom, side, rng, gm);
  return measure("infection_predict_" + std::to_string(side) + "x" +
                     std::to_string(side),
                 ops, reps, [&] {
                   for (std::uint64_t i = 0; i < ops; ++i) {
                     keep(analyzer.predicted_rate(hts));
                   }
                 });
}

bench::PerfResult bm_target_placement_search(std::uint64_t ops, int reps) {
  const MeshGeometry geom(16, 16);
  const NodeId gm = geom.id_of(geom.center());
  const core::InfectionAnalyzer analyzer(geom, gm);
  return measure("target_placement_search", ops, reps, [&] {
    Rng rng(6);
    for (std::uint64_t i = 0; i < ops; ++i) {
      keep(analyzer.placement_for_target(0.7, 64, rng));
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = htpb::bench::quick_mode();
  std::string json_path;
  std::string baseline_path;
  double max_regression = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--max-regression") == 0 && i + 1 < argc) {
      max_regression = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json <path>] [--baseline <path>] "
                   "[--max-regression <frac>]\n",
                   argv[0]);
      return 2;
    }
  }

  const int reps = quick ? 1 : 3;
  const std::uint64_t scale = quick ? 1 : 10;
  std::printf("substrate microbenches (%s mode, best of %d rep%s; "
              "rates are ops/sec)\n",
              quick ? "quick" : "full", reps, reps == 1 ? "" : "s");

  using htpb::bench::PerfReport;
  PerfReport report("micro_substrates");
  for (const int side : {8, 16, 32}) {
    report.add(bm_mesh_idle_cycle(side, 2000 * scale, reps));
  }
  for (const int side : {8, 16}) {
    report.add(bm_mesh_uniform_traffic(side, 100 * scale, reps));
  }
  report.add(bm_cache_lookup(100'000 * scale, reps));
  for (const auto kind :
       {htpb::power::BudgeterKind::kUniform, htpb::power::BudgeterKind::kGreedy,
        htpb::power::BudgeterKind::kProportional,
        htpb::power::BudgeterKind::kDynamicProgramming,
        htpb::power::BudgeterKind::kMarket}) {
    report.add(bm_budgeter_allocate(kind, 200 * scale, reps));
  }
  report.add(bm_least_squares_fit(500 * scale, reps));
  for (const int side : {8, 16, 32}) {
    report.add(bm_infection_prediction(side, 200 * scale, reps));
  }
  report.add(bm_target_placement_search(5 * scale, reps));

  if (!json_path.empty() && !report.write_json(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  if (!baseline_path.empty()) {
    std::printf("\ncomparing against %s (max regression %.0f%%)\n",
                baseline_path.c_str(), max_regression * 100.0);
    if (!report.check_against(baseline_path, max_regression)) return 1;
  }
  return 0;
}
