// google-benchmark microbenchmarks of the substrates: router/mesh cycle
// cost, cache operations, budgeting policies, regression fit and the
// analytic infection estimator. These quantify the simulator itself (not
// a paper figure) and guard against performance regressions.
#include <benchmark/benchmark.h>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/infection.hpp"
#include "core/placement.hpp"
#include "mem/cache.hpp"
#include "noc/network.hpp"
#include "power/budgeter.hpp"
#include "sim/engine.hpp"

namespace htpb {
namespace {

void BM_MeshIdleCycle(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  sim::Engine engine;
  noc::MeshNetwork net(engine, MeshGeometry(side, side), noc::NocConfig{});
  for (auto _ : state) {
    engine.run_cycles(1);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(side) * side);
}
BENCHMARK(BM_MeshIdleCycle)->Arg(8)->Arg(16)->Arg(32);

void BM_MeshUniformTraffic(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  sim::Engine engine;
  MeshGeometry geom(side, side);
  noc::MeshNetwork net(engine, geom, noc::NocConfig{});
  const auto n = static_cast<std::uint64_t>(geom.node_count());
  for (NodeId i = 0; i < n; ++i) net.set_handler(i, [](const noc::Packet&) {});
  Rng rng(1);
  for (auto _ : state) {
    for (int k = 0; k < side; ++k) {
      const auto src = static_cast<NodeId>(rng.below(n));
      auto dst = static_cast<NodeId>(rng.below(n));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
      net.send(net.make_packet(src, dst, noc::PacketType::kMemReadReq));
    }
    engine.run_cycles(4);
  }
  state.SetItemsProcessed(state.iterations() * side);
}
BENCHMARK(BM_MeshUniformTraffic)->Arg(8)->Arg(16);

void BM_CacheLookup(benchmark::State& state) {
  mem::SetAssocCache<int> cache(256, 2);
  Rng rng(2);
  bool evicted = false;
  for (std::uint64_t a = 0; a < 400; ++a) cache.allocate(a, nullptr, &evicted);
  std::uint64_t found = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.find(rng.below(512)));
    ++found;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(found));
}
BENCHMARK(BM_CacheLookup);

void BM_BudgeterAllocate(benchmark::State& state) {
  const auto kind = static_cast<power::BudgeterKind>(state.range(0));
  const auto budgeter = power::make_budgeter(kind);
  Rng rng(3);
  std::vector<power::BudgetRequest> reqs;
  for (NodeId i = 0; i < 256; ++i) {
    reqs.push_back({i, 0, static_cast<std::uint32_t>(500 + rng.below(3000))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(budgeter->allocate(reqs, 300'000, 500));
  }
  state.SetLabel(budgeter->name());
}
BENCHMARK(BM_BudgeterAllocate)
    ->Arg(static_cast<int>(power::BudgeterKind::kUniform))
    ->Arg(static_cast<int>(power::BudgeterKind::kGreedy))
    ->Arg(static_cast<int>(power::BudgeterKind::kProportional))
    ->Arg(static_cast<int>(power::BudgeterKind::kDynamicProgramming))
    ->Arg(static_cast<int>(power::BudgeterKind::kMarket));

void BM_LeastSquaresFit(benchmark::State& state) {
  Rng rng(4);
  const std::size_t n = 64;
  const std::size_t p = 9;
  Matrix x(n, p);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = 1.0;
    for (std::size_t j = 1; j < p; ++j) x(i, j) = rng.uniform(-2, 2);
    y[i] = rng.uniform(0, 5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(least_squares(x, y, 1e-6));
  }
}
BENCHMARK(BM_LeastSquaresFit);

void BM_InfectionPrediction(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const MeshGeometry geom(side, side);
  const NodeId gm = geom.id_of(geom.center());
  const core::InfectionAnalyzer analyzer(geom, gm);
  Rng rng(5);
  const auto hts = core::random_placement(geom, side, rng, gm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.predicted_rate(hts));
  }
}
BENCHMARK(BM_InfectionPrediction)->Arg(8)->Arg(16)->Arg(32);

void BM_TargetPlacementSearch(benchmark::State& state) {
  const MeshGeometry geom(16, 16);
  const NodeId gm = geom.id_of(geom.center());
  const core::InfectionAnalyzer analyzer(geom, gm);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.placement_for_target(0.7, 64, rng));
  }
}
BENCHMARK(BM_TargetPlacementSearch);

}  // namespace
}  // namespace htpb

BENCHMARK_MAIN();
