// Fig. 5: attack effect Q vs infection rate for the four Table III mixes
// on a 256-core chip. Thin formatter over the registry's "fig5" scenario.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result = bench::run_registry_scenario("fig5");
  const json::Array& mixes = result.as_object().find("mixes")->as_array();

  std::printf("%10s |", "infection");
  for (std::size_t mix = 0; mix < mixes.size(); ++mix) {
    std::printf("  Q(mix-%zu)", mix + 1);
  }
  std::printf("\n");

  const std::size_t targets =
      mixes.front().as_object().find("rows")->as_array().size();
  for (std::size_t t = 0; t < targets; ++t) {
    double mean_inf = 0.0;
    std::vector<double> q;
    for (const json::Value& mix : mixes) {
      const json::Object& row =
          mix.as_object().find("rows")->as_array().at(t).as_object();
      mean_inf += row.find("infection")->as_double();
      q.push_back(row.find("q")->as_double());
    }
    std::printf("%10.2f |", mean_inf / static_cast<double>(mixes.size()));
    for (const double v : q) std::printf("  %8.3f", v);
    std::printf("\n");
  }
  std::printf("\n(Q > 1 means the attack pays off; monotone growth with the\n"
              "infection rate reproduces the paper's Fig. 5 shape)\n");
  return 0;
}
