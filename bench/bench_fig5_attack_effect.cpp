// Fig. 5: attack effect Q vs infection rate for the four Table III mixes
// on a 256-core chip (64 threads per application). The infection rate is
// swept by placing Trojans with the greedy target-coverage search.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/infection.hpp"
#include "core/parallel_sweep.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Fig. 5 -- attack effect Q vs infection rate (4 mixes, 256 cores)",
      "Fig. 5", "Q grows with infection rate for every mix; paper peaks at "
                "Q = 6.89 (mix-4, infection 0.9)");

  const double targets_full[] = {0.1, 0.3, 0.5, 0.7, 0.9};
  const double targets_quick[] = {0.3, 0.9};
  const auto targets = bench::quick_mode()
                           ? std::span<const double>(targets_quick)
                           : std::span<const double>(targets_full);

  std::printf("%10s |", "infection");
  for (int mix = 0; mix < 4; ++mix) std::printf("  Q(mix-%d)", mix + 1);
  std::printf("\n");

  std::vector<std::vector<double>> q_rows(targets.size(),
                                          std::vector<double>(4, 0.0));
  std::vector<std::vector<double>> inf_rows = q_rows;
  const core::ParallelSweepRunner runner;
  for (int mix = 0; mix < 4; ++mix) {
    core::AttackCampaign campaign(bench::mix_campaign_config(mix));
    const MeshGeometry geom(16, 16);
    const core::InfectionAnalyzer analyzer(geom, campaign.gm_node());
    Rng rng(42);
    // Placements come off one serial Rng stream (identical to the old
    // loop); the campaign runs fan out across the runner's pool.
    std::vector<std::vector<NodeId>> node_sets;
    node_sets.reserve(targets.size());
    for (std::size_t t = 0; t < targets.size(); ++t) {
      node_sets.push_back(analyzer.placement_for_target(targets[t], 64, rng));
    }
    const auto outs = runner.run_node_sets(campaign, node_sets);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      q_rows[t][mix] = outs[t].q;
      inf_rows[t][mix] = outs[t].infection_measured;
    }
  }
  for (std::size_t t = 0; t < targets.size(); ++t) {
    double mean_inf = 0.0;
    for (int mix = 0; mix < 4; ++mix) mean_inf += inf_rows[t][mix];
    std::printf("%10.2f |", mean_inf / 4.0);
    for (int mix = 0; mix < 4; ++mix) std::printf("  %8.3f", q_rows[t][mix]);
    std::printf("\n");
  }
  std::printf("\n(Q > 1 means the attack pays off; monotone growth with the\n"
              "infection rate reproduces the paper's Fig. 5 shape)\n");
  return 0;
}
