// Table I: the simulator configuration. Prints the implemented
// configuration next to the paper's values and verifies the NoC timing
// parameters against a measured zero-load latency.
#include <cstdio>

#include "bench_util.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Table I -- simulator configuration",
      "Table I", "all architecture parameters implemented 1:1 where given");

  const system::SystemConfig cfg = system::SystemConfig::with_size(256);
  std::printf("%-38s %-22s %s\n", "parameter", "paper", "this repo");
  std::printf("%-38s %-22s %d (%dx%d mesh)\n", "Number of processors",
              "256 (Alpha ISA 64)", cfg.node_count(), cfg.width, cfg.height);
  std::printf("%-38s %-22s analytical IPC(f) model\n", "Core model",
              "4-wide OoO, ROB 64");
  std::printf("%-38s %-22s %zu sets x %d ways, %d MSHRs\n",
              "L1 D cache (private)", "16 KB two-way 32B", cfg.l1.sets,
              cfg.l1.ways, cfg.l1.mshrs);
  std::printf("%-38s %-22s %zu sets x %d ways per bank\n",
              "L2 cache (shared, MESI)", "64 KB slice/node", cfg.l2.sets,
              cfg.l2.ways);
  std::printf("%-38s %-22s %llu cycles\n", "Main memory latency",
              "200 cycles",
              static_cast<unsigned long long>(cfg.l2.mem_latency));
  std::printf("%-38s %-22s %d flits\n", "Data packet size", "5 flits",
              cfg.noc.data_packet_flits);
  std::printf("%-38s %-22s %d flit\n", "Meta packet size", "1 flit",
              cfg.noc.meta_packet_flits);
  std::printf("%-38s %-22s router %d / link %d cycles\n", "NoC latency",
              "router 2, link 1", cfg.noc.router_latency,
              cfg.noc.link_latency);
  std::printf("%-38s %-22s %d\n", "Virtual channels", "4", cfg.noc.vcs);
  std::printf("%-38s %-22s %d flits/VC\n", "NoC buffer", "5x5 flits",
              cfg.noc.vc_depth);
  std::printf("%-38s %-22s XY (west-first adaptive selectable)\n",
              "Routing algorithm", "XY");

  // Verify Table I's timing on the wire: one-hop zero-load latency must
  // equal (hops+1)*(router+link) + link for a 1-flit packet.
  sim::Engine engine;
  MeshGeometry geom(2, 1);
  noc::MeshNetwork net(engine, geom, cfg.noc);
  Cycle measured = 0;
  net.set_handler(1, [&](const noc::Packet& p) {
    measured = p.delivered - p.birth;
  });
  net.send(net.make_packet(0, 1, noc::PacketType::kMemReadReq));
  engine.run_cycles(30);
  const Cycle expected = static_cast<Cycle>(
      2 * (cfg.noc.router_latency + cfg.noc.link_latency) +
      cfg.noc.link_latency);
  std::printf("\nzero-load 1-hop latency: measured %llu cycles, "
              "analytic %llu cycles (%s)\n",
              static_cast<unsigned long long>(measured),
              static_cast<unsigned long long>(expected),
              measured == expected ? "MATCH" : "MISMATCH");
  return measured == expected ? 0 : 1;
}
