// Table I: the simulator configuration next to the paper's values, and a
// zero-load latency check of the NoC timing parameters. Thin formatter
// over the registry's "table1" scenario.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result = bench::run_registry_scenario("table1");
  const json::Object& p =
      result.as_object().find("parameters")->as_object();
  const auto i = [&](const char* key) {
    return static_cast<long long>(p.find(key)->as_int());
  };

  std::printf("%-38s %-22s %s\n", "parameter", "paper", "this repo");
  std::printf("%-38s %-22s %lld (%lldx%lld mesh)\n", "Number of processors",
              "256 (Alpha ISA 64)", i("nodes"), i("width"), i("height"));
  std::printf("%-38s %-22s analytical IPC(f) model\n", "Core model",
              "4-wide OoO, ROB 64");
  std::printf("%-38s %-22s %lld sets x %lld ways, %lld MSHRs\n",
              "L1 D cache (private)", "16 KB two-way 32B", i("l1_sets"),
              i("l1_ways"), i("l1_mshrs"));
  std::printf("%-38s %-22s %lld sets x %lld ways per bank\n",
              "L2 cache (shared, MESI)", "64 KB slice/node", i("l2_sets"),
              i("l2_ways"));
  std::printf("%-38s %-22s %lld cycles\n", "Main memory latency",
              "200 cycles", i("mem_latency"));
  std::printf("%-38s %-22s %lld flits\n", "Data packet size", "5 flits",
              i("data_packet_flits"));
  std::printf("%-38s %-22s %lld flit\n", "Meta packet size", "1 flit",
              i("meta_packet_flits"));
  std::printf("%-38s %-22s router %lld / link %lld cycles\n", "NoC latency",
              "router 2, link 1", i("router_latency"), i("link_latency"));
  std::printf("%-38s %-22s %lld\n", "Virtual channels", "4", i("vcs"));
  std::printf("%-38s %-22s %lld flits/VC\n", "NoC buffer", "5x5 flits",
              i("vc_depth"));
  std::printf("%-38s %-22s XY (west-first adaptive selectable)\n",
              "Routing algorithm", "XY");

  const json::Object& lat =
      result.as_object().find("zero_load_latency")->as_object();
  const bool match = lat.find("match")->as_bool();
  std::printf("\nzero-load 1-hop latency: measured %lld cycles, "
              "analytic %lld cycles (%s)\n",
              static_cast<long long>(lat.find("measured")->as_int()),
              static_cast<long long>(lat.find("analytic")->as_int()),
              match ? "MATCH" : "MISMATCH");
  return match ? 0 : 1;
}
