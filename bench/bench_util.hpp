// Shared helpers for the reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "system/system_config.hpp"
#include "workload/application.hpp"

namespace htpb::bench {

/// Set HTPB_QUICK=1 to shrink seed counts / sweep lengths (CI smoke runs).
[[nodiscard]] inline bool quick_mode() {
  const char* env = std::getenv("HTPB_QUICK");
  return env != nullptr && env[0] == '1';
}

/// Campaign configuration shared by the attack-effect experiments
/// (Figs. 5-6, Sec. V-C): 256 cores, Table III mixes, 50% budget.
[[nodiscard]] inline core::CampaignConfig mix_campaign_config(int mix_index,
                                                              int nodes = 256) {
  core::CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(nodes);
  cfg.system.epoch_cycles = 2000;
  cfg.mix = workload::standard_mixes().at(static_cast<std::size_t>(mix_index));
  cfg.trojan.victim_scale = 0.10;
  cfg.trojan.attacker_boost = 8.0;
  cfg.warmup_epochs = 2;
  cfg.measure_epochs = quick_mode() ? 3 : 5;
  return cfg;
}

/// Infection-rate-only configuration (Figs. 3-4): uniform workload.
[[nodiscard]] inline core::CampaignConfig infection_campaign_config(
    int nodes, system::GmPlacement gm = system::GmPlacement::kCenter) {
  core::CampaignConfig cfg;
  cfg.system = system::SystemConfig::with_size(nodes);
  cfg.system.epoch_cycles = 1500;
  cfg.system.gm_placement = gm;
  cfg.mix = std::nullopt;
  cfg.warmup_epochs = 1;
  cfg.measure_epochs = quick_mode() ? 2 : 3;
  return cfg;
}

inline void print_header(const char* experiment, const char* paper_ref,
                         const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_ref);
  std::printf("expected shape: %s\n", expectation);
  std::printf("==============================================================\n");
}

}  // namespace htpb::bench
