// Shared helpers for the reproduction benches. The figure/table benches
// are thin formatters over the scenario layer: each fetches its spec from
// scenario::registry(), executes it through scenario::run_scenario, and
// pretty-prints the result tree -- all experiment configuration lives in
// the specs (src/scenario/registry.cpp), not here.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace htpb::bench {

/// Set HTPB_QUICK=1 to apply the specs' quick overlays (CI smoke runs).
[[nodiscard]] inline bool quick_mode() {
  const char* env = std::getenv("HTPB_QUICK");
  return env != nullptr && env[0] == '1';
}

inline void print_header(const char* experiment, const char* paper_ref,
                         const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_ref);
  std::printf("expected shape: %s\n", expectation);
  std::printf("==============================================================\n");
}

inline void print_header(const scenario::ScenarioSpec& spec) {
  print_header(spec.title.c_str(), spec.paper_ref.c_str(),
               spec.expectation.c_str());
}

/// The standard bench prologue: fetch the named registry spec, print its
/// header, and execute it (quick per HTPB_QUICK, pool per HTPB_THREADS).
[[nodiscard]] inline json::Value run_registry_scenario(const char* name) {
  const scenario::ScenarioSpec& spec = scenario::scenario_or_throw(name);
  print_header(spec);
  scenario::RunOptions opts;
  opts.quick = quick_mode();
  return scenario::run_scenario(spec, opts);
}

}  // namespace htpb::bench
