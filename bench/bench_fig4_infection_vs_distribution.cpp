// Fig. 4: infection rate under the three HT distributions (clustered at
// the chip center, random, clustered in one corner) across system sizes.
// Thin formatter over the registry's "fig4" scenario.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result = bench::run_registry_scenario("fig4");

  for (const json::Value& d :
       result.as_object().find("divisors")->as_array()) {
    const json::Object& div = d.as_object();
    std::printf("\n#HTs = system size / %lld\n",
                static_cast<long long>(div.find("divisor")->as_int()));
    std::printf("%6s %5s | %-9s %-9s %-9s | %-18s\n", "size", "#HTs",
                "center", "random", "corner", "center/random, center/corner");
    for (const json::Value& row : div.find("rows")->as_array()) {
      const json::Object& r = row.as_object();
      const double center = r.find("center")->as_double();
      const double random = r.find("random")->as_double();
      const double corner = r.find("corner")->as_double();
      std::printf("%6lld %5lld | %-9.3f %-9.3f %-9.3f | %.2fx  %.2fx\n",
                  static_cast<long long>(r.find("size")->as_int()),
                  static_cast<long long>(r.find("hts")->as_int()), center,
                  random, corner, random > 0 ? center / random : 0.0,
                  corner > 0 ? center / corner : 0.0);
    }
  }
  return 0;
}
