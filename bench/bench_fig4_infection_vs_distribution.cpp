// Fig. 4: infection rate under the three HT distributions (clustered at
// the chip center, random, clustered in one corner) across system sizes
// 64..512, with #HTs = 1/16 (a) and 1/8 (b) of the system size. GM at
// the center.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/infection.hpp"
#include "core/placement.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Fig. 4 -- infection rate vs HT distribution",
      "Fig. 4(a) #HT = size/16, Fig. 4(b) #HT = size/8",
      "center cluster > random > corner cluster at every size "
      "(paper: 1.59x and 9.85x at size 256, 1/16)");

  const int seeds = bench::quick_mode() ? 2 : 3;
  const std::vector<int> sizes = {64, 128, 256, 512};

  for (const int divisor : {16, 8}) {
    std::printf("\n#HTs = system size / %d\n", divisor);
    std::printf("%6s %5s | %-9s %-9s %-9s | %-18s\n", "size", "#HTs",
                "center", "random", "corner", "center/random, center/corner");
    for (const int size : sizes) {
      const int hts = size / divisor;
      core::CampaignConfig cfg = bench::infection_campaign_config(size);
      core::AttackCampaign campaign(cfg);
      const MeshGeometry geom(cfg.system.width, cfg.system.height);

      const auto center_nodes = core::clustered_placement(
          geom, hts, geom.center(), campaign.gm_node());
      const auto corner_nodes =
          core::clustered_placement(geom, hts, {0, 0}, campaign.gm_node());
      const double rate_center = campaign.run_infection_only(center_nodes);
      const double rate_corner = campaign.run_infection_only(corner_nodes);
      double rate_random = 0.0;
      for (int s = 0; s < seeds; ++s) {
        Rng rng(500 + static_cast<std::uint64_t>(s) * 13 + size);
        rate_random += campaign.run_infection_only(
            core::random_placement(geom, hts, rng, campaign.gm_node()));
      }
      rate_random /= seeds;

      std::printf("%6d %5d | %-9.3f %-9.3f %-9.3f | %.2fx  %.2fx\n", size,
                  hts, rate_center, rate_random, rate_corner,
                  rate_random > 0 ? rate_center / rate_random : 0.0,
                  rate_corner > 0 ? rate_center / rate_corner : 0.0);
    }
  }
  return 0;
}
