// Extension bench: the paper's false-data attack vs the related-work
// flooding DoS (Sec. II-B taxonomy), on damage and on detectability, plus
// the stealth/damage trade-off of duty-cycled activation (Sec. III-B).
#include <cstdio>
#include <memory>

#include <array>
#include <utility>

#include "bench_util.hpp"
#include "core/flooding.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "system/manycore_system.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Attack comparison -- false-data vs flooding; duty-cycled activation",
      "Sec. II-B taxonomy / Sec. III-B activation control",
      "the false-data attack injects zero packets (invisible to traffic "
      "counters) while flooding lights up the victim router; duty-cycling "
      "scales damage with exposure");

  // ---- arm 1: clean reference ------------------------------------------
  auto apps = workload::instantiate_mix(workload::standard_mixes()[0], 16);
  workload::map_threads_round_robin(apps, 64);
  system::SystemConfig sys_cfg = system::SystemConfig::with_size(64);
  sys_cfg.epoch_cycles = 2000;

  double victim_theta_clean = 0.0;
  std::uint64_t gm_flits_clean = 0;
  {
    system::ManyCoreSystem sys(sys_cfg, apps);
    sys.run_epochs(2);
    sys.reset_measurement();
    sys.run_epochs(5);
    victim_theta_clean = sys.app_throughput(2) + sys.app_throughput(3);
    gm_flits_clean =
        sys.network().router(sys.gm_node()).stats().flits_forwarded;
  }

  // ---- arm 2: the paper's false-data attack -----------------------------
  core::CampaignConfig cfg = bench::mix_campaign_config(0, 64);
  cfg.system.epoch_cycles = 2000;
  core::AttackCampaign campaign(cfg);
  const MeshGeometry geom(8, 8);
  const auto hts = core::clustered_placement(
      geom, 8, geom.coord_of(campaign.gm_node()), campaign.gm_node());
  const auto fd = campaign.run(hts);
  double victim_theta_fd = 0.0;
  for (const auto& app : fd.apps) {
    if (!app.attacker) victim_theta_fd += app.theta_attacked;
  }

  // ---- arm 3: flooding DoS against the manager --------------------------
  double victim_theta_flood = 0.0;
  std::uint64_t gm_flits_flood = 0;
  std::uint64_t flood_packets = 0;
  {
    system::ManyCoreSystem sys(sys_cfg, apps);
    std::vector<std::unique_ptr<core::FloodingAttacker>> flooders;
    for (NodeId src : {NodeId{0}, NodeId{7}, NodeId{56}, NodeId{63}}) {
      flooders.push_back(std::make_unique<core::FloodingAttacker>(
          &sys.network(), src, sys.gm_node(), 0.15, 7 + src));
      sys.engine().add_tickable(flooders.back().get());
    }
    sys.run_epochs(2);
    sys.reset_measurement();
    sys.run_epochs(5);
    victim_theta_flood = sys.app_throughput(2) + sys.app_throughput(3);
    gm_flits_flood =
        sys.network().router(sys.gm_node()).stats().flits_forwarded;
    for (const auto& f : flooders) flood_packets += f->packets_injected();
  }

  std::printf("%-26s %14s %14s %14s\n", "", "clean", "false-data",
              "flooding");
  std::printf("%-26s %14.3f %14.3f %14.3f\n", "victim throughput (sum)",
              victim_theta_clean, victim_theta_fd, victim_theta_flood);
  std::printf("%-26s %14s %14llu %14llu\n", "extra packets injected", "0",
              0ULL, static_cast<unsigned long long>(flood_packets));
  std::printf("%-26s %14llu %14llu %14llu\n", "GM-router flits",
              static_cast<unsigned long long>(gm_flits_clean),
              static_cast<unsigned long long>(gm_flits_clean),
              static_cast<unsigned long long>(gm_flits_flood));
  std::printf("(the false-data arm's GM flit count equals the clean run: the "
              "Trojan rewrites\npayloads in flight and is invisible to "
              "utilization counters)\n");

  // ---- arm 4: duty-cycled activation sweep ------------------------------
  // The four toggle periods are independent campaigns: fan them across the
  // ParallelSweepRunner pool (each task owns its campaign, so the printed
  // rows are identical at any thread count) and print in period order.
  std::printf("\nduty-cycled activation (ON/OFF every N epochs, mix-1):\n");
  std::printf("%-22s %10s %10s\n", "toggle period", "infection", "Q");
  const std::array<int, 4> periods = {0, 4, 2, 1};
  const core::ParallelSweepRunner runner;
  const auto duty_outs =
      runner.map(periods.size(), [&](std::size_t i) {
        core::CampaignConfig duty_cfg = bench::mix_campaign_config(0, 64);
        duty_cfg.system.epoch_cycles = 2000;
        duty_cfg.warmup_epochs = 0;
        duty_cfg.measure_epochs = 8;
        duty_cfg.toggle_period_epochs = periods[i];
        core::AttackCampaign duty(duty_cfg);
        const auto out = duty.run(hts);
        return std::pair<double, double>(out.infection_measured, out.q);
      });
  for (std::size_t i = 0; i < periods.size(); ++i) {
    const int period = periods[i];
    std::printf("%-22s %10.3f %10.3f\n",
                period == 0 ? "always on" :
                (std::string("every ") + std::to_string(period) + " epochs").c_str(),
                duty_outs[i].first, duty_outs[i].second);
  }
  std::printf("(shorter exposure halves the infection rate and the attack "
              "effect follows --\nthe attacker's stealth/damage dial from "
              "Sec. III-B)\n");
  return 0;
}
