// Extension bench: the paper's false-data attack vs the related-work
// flooding DoS (Sec. II-B taxonomy), plus the stealth/damage trade-off of
// duty-cycled activation (Sec. III-B). Thin formatter over the registry's
// "attack-comparison" scenario.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result =
      bench::run_registry_scenario("attack-comparison");
  const json::Object& root = result.as_object();
  const json::Object& clean = root.find("clean")->as_object();
  const json::Object& fd = root.find("false_data")->as_object();
  const json::Object& flood = root.find("flooding")->as_object();

  std::printf("%-26s %14s %14s %14s\n", "", "clean", "false-data",
              "flooding");
  std::printf("%-26s %14.3f %14.3f %14.3f\n", "victim throughput (sum)",
              clean.find("victim_throughput")->as_double(),
              fd.find("victim_throughput")->as_double(),
              flood.find("victim_throughput")->as_double());
  std::printf("%-26s %14lld %14lld %14lld\n", "extra packets injected",
              static_cast<long long>(clean.find("extra_packets")->as_int()),
              static_cast<long long>(fd.find("extra_packets")->as_int()),
              static_cast<long long>(
                  flood.find("extra_packets")->as_int()));
  std::printf("%-26s %14lld %14lld %14lld\n", "GM-router flits",
              static_cast<long long>(clean.find("gm_flits")->as_int()),
              static_cast<long long>(fd.find("gm_flits")->as_int()),
              static_cast<long long>(flood.find("gm_flits")->as_int()));
  std::printf("(the false-data arm's GM flit count equals the clean run: the "
              "Trojan rewrites\npayloads in flight and is invisible to "
              "utilization counters)\n");

  std::printf("\nduty-cycled activation (ON/OFF every N epochs, mix-1):\n");
  std::printf("%-22s %10s %10s\n", "toggle period", "infection", "Q");
  for (const json::Value& row : root.find("duty_cycle")->as_array()) {
    const json::Object& r = row.as_object();
    const long long period = r.find("period")->as_int();
    const std::string label =
        period == 0 ? "always on"
                    : "every " + std::to_string(period) + " epochs";
    std::printf("%-22s %10.3f %10.3f\n", label.c_str(),
                r.find("infection")->as_double(), r.find("q")->as_double());
  }
  std::printf("(shorter exposure halves the infection rate and the attack "
              "effect follows --\nthe attacker's stealth/damage dial from "
              "Sec. III-B)\n");
  return 0;
}
