// Fig. 3: infection rate vs number of HTs for 64- and 512-node chips,
// with the global manager at the center vs at one corner. Thin formatter
// over the registry's "fig3" scenario (src/scenario/registry.cpp holds
// the sweep axes; the runner holds the execution).
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result = bench::run_registry_scenario("fig3");

  for (const json::Value& arm : result.as_object().find("arms")->as_array()) {
    const json::Object& a = arm.as_object();
    std::printf("\nsystem size = %lld\n", static_cast<long long>(
                                              a.find("nodes")->as_int()));
    std::printf("%6s | %-10s %-10s | %-10s %-10s\n", "", "GM center", "",
                "GM corner", "");
    std::printf("%6s | %-10s %-10s | %-10s %-10s\n", "#HTs", "simulated",
                "analytic", "simulated", "analytic");
    for (const json::Value& row : a.find("rows")->as_array()) {
      const json::Object& r = row.as_object();
      const json::Array& cells = r.find("cells")->as_array();
      std::printf("%6lld", static_cast<long long>(r.find("hts")->as_int()));
      for (const json::Value& cell : cells) {
        const json::Object& c = cell.as_object();
        std::printf(" | %-10.3f %-10.3f", c.find("simulated")->as_double(),
                    c.find("analytic")->as_double());
      }
      std::printf("\n");
    }
  }
  std::printf("\n(see EXPERIMENTS.md for the paper-vs-measured discussion)\n");
  return 0;
}
