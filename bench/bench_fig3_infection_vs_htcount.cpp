// Fig. 3: infection rate vs number of HTs for 64- and 512-node chips,
// with the global manager at the center vs at one corner. HTs are placed
// uniformly at random and averaged over seeds; the simulated rate is
// printed next to the analytic XY path-coverage prediction.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/infection.hpp"
#include "core/placement.hpp"

int main() {
  using namespace htpb;
  bench::print_header(
      "Fig. 3 -- infection rate vs number of HTs (GM center vs corner)",
      "Fig. 3(a) size 64, Fig. 3(b) size 512",
      "rate rises with #HTs; corner GM >= ~20% higher beyond 10 HTs");

  const int seeds = bench::quick_mode() ? 2 : 3;
  struct Arm {
    int nodes;
    std::vector<int> ht_counts;
  };
  const std::vector<Arm> arms = {
      {64, {2, 5, 10, 15, 20, 25, 30}},
      {512, {5, 10, 20, 30, 40, 50, 60}},
  };

  for (const Arm& arm : arms) {
    std::printf("\nsystem size = %d\n", arm.nodes);
    std::printf("%6s | %-10s %-10s | %-10s %-10s\n", "", "GM center", "",
                "GM corner", "");
    std::printf("%6s | %-10s %-10s | %-10s %-10s\n", "#HTs", "simulated",
                "analytic", "simulated", "analytic");
    for (const int hts : arm.ht_counts) {
      double sim_rate[2] = {0.0, 0.0};
      double ana_rate[2] = {0.0, 0.0};
      const system::GmPlacement placements[2] = {
          system::GmPlacement::kCenter, system::GmPlacement::kCorner};
      for (int p = 0; p < 2; ++p) {
        core::CampaignConfig cfg =
            bench::infection_campaign_config(arm.nodes, placements[p]);
        core::AttackCampaign campaign(cfg);
        const MeshGeometry geom(cfg.system.width, cfg.system.height);
        const core::InfectionAnalyzer analyzer(geom, campaign.gm_node());
        for (int s = 0; s < seeds; ++s) {
          Rng rng(1000 + static_cast<std::uint64_t>(s) * 77 + hts);
          const auto nodes =
              core::random_placement(geom, hts, rng, campaign.gm_node());
          sim_rate[p] += campaign.run_infection_only(nodes);
          ana_rate[p] += analyzer.predicted_rate(nodes);
        }
        sim_rate[p] /= seeds;
        ana_rate[p] /= seeds;
      }
      std::printf("%6d | %-10.3f %-10.3f | %-10.3f %-10.3f\n", hts,
                  sim_rate[0], ana_rate[0], sim_rate[1], ana_rate[1]);
    }
  }
  std::printf("\n(see EXPERIMENTS.md for the paper-vs-measured discussion)\n");
  return 0;
}
