// Tables II and III: the benchmark roster and the attacker/victim mixes,
// together with the measured sensitivity spread (Def. 5) that the mixes
// rely on.
#include <cstdio>

#include "bench_util.hpp"
#include "system/manycore_system.hpp"
#include "workload/application.hpp"
#include "workload/benchmark_profile.hpp"

int main() {
  using namespace htpb;
  bench::print_header("Tables II & III -- benchmarks and mixes",
                      "Table II, Table III",
                      "11 PARSEC/SPLASH-2 profiles; 4 mixes with 1-3 "
                      "attackers/victims; compute-bound apps have higher Phi");

  std::printf("%-15s %-9s %8s %7s %10s %8s %7s\n", "benchmark", "suite",
              "cpi_base", "apki", "ws_lines", "shared%", "write%");
  for (const auto& b : workload::benchmark_table()) {
    std::printf("%-15s %-9s %8.2f %7.1f %10llu %8.2f %7.2f\n",
                b.name.c_str(), b.suite.c_str(), b.cpi_base, b.apki,
                static_cast<unsigned long long>(b.working_set_lines),
                b.shared_fraction, b.write_fraction);
  }

  std::printf("\nTable III combinations:\n");
  for (const auto& mix : workload::standard_mixes()) {
    std::printf("  %-7s attackers:", mix.name.c_str());
    for (const auto& a : mix.attackers) std::printf(" %s", a.c_str());
    std::printf("  victims:");
    for (const auto& v : mix.victims) std::printf(" %s", v.c_str());
    std::printf("\n");
  }

  // Measured per-application sensitivity Phi (Def. 5) on a quiet 64-core
  // chip: one app at a time, uniform placement.
  std::printf("\nmeasured power sensitivity Phi (Def. 5), 64-core chip:\n");
  std::printf("%-15s %10s\n", "benchmark", "Phi");
  for (const auto& profile : workload::benchmark_table()) {
    workload::Mix solo;
    solo.name = profile.name;
    solo.victims = {profile.name};
    auto apps = workload::instantiate_mix(solo, 64);
    workload::map_threads_round_robin(apps, 64);
    system::SystemConfig cfg = system::SystemConfig::with_size(64);
    cfg.epoch_cycles = 1500;
    system::ManyCoreSystem sys(cfg, apps);
    sys.run_epochs(3);
    std::printf("%-15s %10.3f\n", profile.name.c_str(),
                sys.app_sensitivity(0));
  }
  return 0;
}
