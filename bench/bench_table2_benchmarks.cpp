// Tables II and III: the benchmark roster, the attacker/victim mixes and
// the measured sensitivity spread (Def. 5). Thin formatter over the
// registry's "table2" scenario.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace htpb;
  const json::Value result = bench::run_registry_scenario("table2");
  const json::Object& root = result.as_object();

  std::printf("%-15s %-9s %8s %7s %10s %8s %7s\n", "benchmark", "suite",
              "cpi_base", "apki", "ws_lines", "shared%", "write%");
  for (const json::Value& b : root.find("benchmarks")->as_array()) {
    const json::Object& r = b.as_object();
    std::printf("%-15s %-9s %8.2f %7.1f %10lld %8.2f %7.2f\n",
                r.find("name")->as_string().c_str(),
                r.find("suite")->as_string().c_str(),
                r.find("cpi_base")->as_double(), r.find("apki")->as_double(),
                static_cast<long long>(
                    r.find("working_set_lines")->as_int()),
                r.find("shared_fraction")->as_double(),
                r.find("write_fraction")->as_double());
  }

  std::printf("\nTable III combinations:\n");
  for (const json::Value& m : root.find("mixes")->as_array()) {
    const json::Object& mix = m.as_object();
    std::printf("  %-7s attackers:", mix.find("name")->as_string().c_str());
    for (const json::Value& a : mix.find("attackers")->as_array()) {
      std::printf(" %s", a.as_string().c_str());
    }
    std::printf("  victims:");
    for (const json::Value& v : mix.find("victims")->as_array()) {
      std::printf(" %s", v.as_string().c_str());
    }
    std::printf("\n");
  }

  std::printf("\nmeasured power sensitivity Phi (Def. 5), 64-core chip:\n");
  std::printf("%-15s %10s\n", "benchmark", "Phi");
  for (const json::Value& row : root.find("phi")->as_array()) {
    const json::Object& r = row.as_object();
    std::printf("%-15s %10.3f\n", r.find("name")->as_string().c_str(),
                r.find("phi")->as_double());
  }
  return 0;
}
