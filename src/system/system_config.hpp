// Whole-chip configuration -- the programmatic form of the paper's
// Table I, plus the budgeting-epoch parameters.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "cpu/frequency.hpp"
#include "mem/l1_cache.hpp"
#include "mem/l2_bank.hpp"
#include "noc/config.hpp"
#include "power/budgeter.hpp"
#include "power/defense.hpp"
#include "power/power_model.hpp"

namespace htpb::system {

enum class GmPlacement {
  kCenter,  ///< Paper default for Figs. 4-6.
  kCorner,  ///< The "global manager in one corner" arm of Fig. 3.
};

struct SystemConfig {
  int width = 16;
  int height = 16;

  noc::NocConfig noc;
  mem::L1Config l1;
  mem::L2Config l2;
  cpu::FrequencyTable freqs;
  power::CorePowerModel power_model;

  power::BudgeterKind budgeter = power::BudgeterKind::kProportional;
  /// Wraps the budgeter in the request-clamping mitigation
  /// (power::GuardedBudgeter) -- the defense evaluated in
  /// bench_defense_evaluation.
  bool guard_requests = false;
  power::DetectorConfig guard_config;
  /// Chip power budget as a fraction of the all-cores-at-max demand.
  /// Below 1.0 creates the contention that power budgeting exists to
  /// arbitrate (and that the Trojan exploits).
  double budget_fraction = 0.50;

  /// Budgeting epoch length and the manager's collection window.
  Cycle epoch_cycles = 2000;
  /// 0 = auto: scaled with mesh diameter at build time.
  Cycle collect_window = 0;
  /// Cycle of the first budgeting epoch (power-on settle time). The
  /// default leaves just enough room for cycle-0 events; raise it when an
  /// experiment needs the attacker's CONFIG_CMD broadcast to complete
  /// before the first POWER_REQ flies (attack-from-epoch-0 scenarios).
  Cycle first_epoch_cycle = 10;

  GmPlacement gm_placement = GmPlacement::kCenter;
  /// Overrides gm_placement when set.
  std::optional<NodeId> gm_node;

  std::uint64_t seed = 1;

  [[nodiscard]] int node_count() const noexcept { return width * height; }

  [[nodiscard]] Cycle resolved_collect_window() const noexcept {
    if (collect_window != 0) return collect_window;
    const auto diameter = static_cast<Cycle>(width + height);
    return 4 * diameter * static_cast<Cycle>(noc.router_latency +
                                             noc.link_latency) +
           200;
  }

  /// Throws std::invalid_argument when the shape or GM placement is
  /// unusable: meshes below 2x2 (XY routing and the GM placement presets
  /// assume a real 2D mesh) or a pinned gm_node outside the mesh.
  /// ManyCoreSystem and AttackCampaign call this before building.
  void validate() const;

  /// Arbitrary W x H mesh (validated). Non-square shapes are first-class:
  /// GM center/corner placement and the collect window derive from
  /// width/height, not from an assumed square side.
  [[nodiscard]] static SystemConfig with_mesh(int width, int height);

  /// Convenience presets for the paper's system-size sweep (64..512);
  /// delegates to with_mesh with the paper's shapes.
  [[nodiscard]] static SystemConfig with_size(int nodes);
};

}  // namespace htpb::system
