#include "system/system_config.hpp"

#include <stdexcept>

namespace htpb::system {

SystemConfig SystemConfig::with_size(int nodes) {
  SystemConfig cfg;
  switch (nodes) {
    case 64: cfg.width = 8; cfg.height = 8; break;
    case 128: cfg.width = 16; cfg.height = 8; break;
    case 256: cfg.width = 16; cfg.height = 16; break;
    case 512: cfg.width = 32; cfg.height = 16; break;
    default:
      throw std::invalid_argument(
          "SystemConfig::with_size: supported sizes are 64/128/256/512");
  }
  return cfg;
}

}  // namespace htpb::system
