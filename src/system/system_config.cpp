#include "system/system_config.hpp"

#include <stdexcept>
#include <string>

namespace htpb::system {

void SystemConfig::validate() const {
  if (width < 2 || height < 2) {
    throw std::invalid_argument(
        "SystemConfig: mesh must be at least 2x2 (got " +
        std::to_string(width) + "x" + std::to_string(height) + ")");
  }
  if (gm_node.has_value() &&
      *gm_node >= static_cast<NodeId>(node_count())) {
    throw std::invalid_argument(
        "SystemConfig: gm_node " + std::to_string(*gm_node) +
        " outside the " + std::to_string(width) + "x" +
        std::to_string(height) + " mesh");
  }
}

SystemConfig SystemConfig::with_mesh(int width, int height) {
  SystemConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.validate();
  return cfg;
}

SystemConfig SystemConfig::with_size(int nodes) {
  switch (nodes) {
    case 64: return with_mesh(8, 8);
    case 128: return with_mesh(16, 8);
    case 256: return with_mesh(16, 16);
    case 512: return with_mesh(32, 16);
    default:
      throw std::invalid_argument(
          "SystemConfig::with_size: supported sizes are 64/128/256/512; "
          "use with_mesh(width, height) for other shapes");
  }
}

}  // namespace htpb::system
