#include "system/manycore_system.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/snapshot.hpp"
#include "mem/coherence.hpp"
#include "workload/benchmark_profile.hpp"

namespace htpb::system {

namespace {
bool g_snapshot_self_test = false;
}  // namespace

void set_snapshot_self_test(bool on) noexcept { g_snapshot_self_test = on; }
bool snapshot_self_test() noexcept { return g_snapshot_self_test; }

namespace {

/// Disjoint address regions: the app id selects a large region, each
/// thread a private sub-region, and bit 38 the app's shared region.
constexpr std::uint64_t private_base(AppId app, int thread_idx) {
  return (static_cast<std::uint64_t>(app + 1) << 40) |
         (static_cast<std::uint64_t>(thread_idx) << 22);
}
constexpr std::uint64_t shared_base(AppId app) {
  return (static_cast<std::uint64_t>(app + 1) << 40) | (1ULL << 38);
}

}  // namespace

ManyCoreSystem::ManyCoreSystem(SystemConfig cfg,
                               std::vector<workload::Application> apps)
    : cfg_(std::move(cfg)), apps_(std::move(apps)) {
  cfg_.validate();
  net_ = std::make_unique<noc::MeshNetwork>(
      engine_, MeshGeometry(cfg_.width, cfg_.height), cfg_.noc);

  gm_node_ = cfg_.gm_node.value_or(
      cfg_.gm_placement == GmPlacement::kCenter
          ? geometry().id_of(geometry().center())
          : geometry().id_of(MeshGeometry::corner()));
  if (!geometry().contains(gm_node_)) {
    throw std::invalid_argument("ManyCoreSystem: gm_node outside mesh");
  }

  build_tiles();

  // Chip budget: fraction of the all-cores-at-max demand; floor: the
  // lowest operating point (cores are never power-gated by budgeting).
  std::uint64_t max_demand = 0;
  int cores = 0;
  for (const Tile& t : tiles_) {
    if (t.has_core()) {
      max_demand += cfg_.power_model.milliwatts_at(cfg_.freqs,
                                                   cfg_.freqs.max_level());
      ++cores;
    }
  }
  floor_mw_ = cfg_.power_model.milliwatts_at(cfg_.freqs, 0);
  budget_mw_ = static_cast<std::uint64_t>(
      cfg_.budget_fraction * static_cast<double>(max_demand));
  if (cores > 0) {
    budget_mw_ = std::max<std::uint64_t>(
        budget_mw_, static_cast<std::uint64_t>(cores) * floor_mw_);
  }

  std::unique_ptr<power::Budgeter> budgeter =
      power::make_budgeter(cfg_.budgeter);
  if (cfg_.guard_requests) {
    budgeter = std::make_unique<power::GuardedBudgeter>(std::move(budgeter),
                                                        cfg_.guard_config);
  }
  gm_ = std::make_unique<power::GlobalManager>(gm_node_, net_.get(),
                                               std::move(budgeter), budget_mw_,
                                               floor_mw_);
  std::vector<bool> attacker_apps(apps_.size(), false);
  for (const auto& app : apps_) {
    if (app.id < attacker_apps.size()) {
      attacker_apps[app.id] = app.is_attacker();
    }
  }
  gm_->set_attacker_lookup([attacker_apps](AppId app) {
    return app < attacker_apps.size() && attacker_apps[app];
  });

  for (NodeId n = 0; n < static_cast<NodeId>(cfg_.node_count()); ++n) {
    net_->set_handler(n, [this, n](const noc::Packet& pkt) { dispatch(n, pkt); });
  }

  // Epoch drivers are scheduled as event descriptors (sim/event_desc.hpp)
  // so checkpoints can capture the pending epoch/allocate events.
  engine_.set_handler(sim::EventKind::kSystemEpochStart, -1,
                      [this](const sim::EventDesc&) {
                        begin_epoch();
                        next_epoch_start_ += cfg_.epoch_cycles;
                        schedule_next_epoch();
                      });
  engine_.set_handler(sim::EventKind::kSystemAllocate, -1,
                      [this](const sim::EventDesc&) {
                        gm_->allocate_and_reply(engine_.now());
                      });

  engine_.add_tickable(this);  // cores tick after the network
  instr_snapshot_.assign(tiles_.size(), 0.0);
  next_epoch_start_ = cfg_.first_epoch_cycle;
  schedule_next_epoch();
}

void ManyCoreSystem::build_tiles() {
  const int n = cfg_.node_count();
  tiles_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tiles_[static_cast<std::size_t>(i)].node = static_cast<NodeId>(i);
    tiles_[static_cast<std::size_t>(i)].l2 = std::make_unique<mem::L2Bank>(
        static_cast<NodeId>(i), cfg_.l2, net_.get(), &engine_);
  }
  for (const workload::Application& app : apps_) {
    if (static_cast<int>(app.cores.size()) != app.threads) {
      throw std::invalid_argument(
          "ManyCoreSystem: application threads not mapped (call a mapper)");
    }
    for (std::size_t t = 0; t < app.cores.size(); ++t) {
      const NodeId node = app.cores[t];
      Tile& tile = tiles_[node];
      if (tile.has_core()) {
        throw std::invalid_argument(
            "ManyCoreSystem: two threads mapped to one core");
      }
      const workload::BenchmarkProfile& prof = app.profile;
      // Initial NoC-bound miss-rate guess (most line-granular accesses
      // miss the small L1); recalibrated every epoch from the L1's
      // measured behaviour.
      const double initial_mpi = prof.apki / 1000.0 * 0.8;
      cpu::IpcModel ipc(prof.cpi_base, initial_mpi);
      tile.core = std::make_unique<cpu::CoreModel>(
          node, app.id, ipc, &cfg_.freqs,
          cfg_.seed * 0x9E3779B9ULL + node + 1);
      tile.core->set_address_stream(
          private_base(app.id, static_cast<int>(t)), prof.working_set_lines,
          shared_base(app.id), prof.shared_lines, prof.shared_fraction,
          prof.write_fraction, prof.apki);
      tile.l1 = std::make_unique<mem::L1Cache>(node, cfg_.l1, net_.get(),
                                               tile.core.get());
      mem::L1Cache* l1 = tile.l1.get();
      tile.core->set_mem_access_fn(
          [l1](std::uint64_t addr, bool write) { l1->access(addr, write); });
    }
  }
}

void ManyCoreSystem::dispatch(NodeId node, const noc::Packet& pkt) {
  Tile& tile = tiles_[node];
  switch (pkt.type) {
    case noc::PacketType::kPowerRequest:
      if (node == gm_node_) gm_->on_power_request(pkt);
      break;
    case noc::PacketType::kPowerGrant:
      tile.last_grant_mw = pkt.payload;
      if (tile.has_core()) {
        tile.core->set_level(
            cfg_.power_model.max_level_within(cfg_.freqs, pkt.payload));
        // Grants below the lowest operating point throttle the core's
        // clock proportionally (sprint-and-rest); at or above the floor
        // the core runs continuously at the granted V/F level.
        if (pkt.payload < floor_mw_) {
          tile.core->set_duty(static_cast<double>(pkt.payload) /
                              static_cast<double>(floor_mw_));
        } else {
          tile.core->set_duty(1.0);
        }
      }
      break;
    case noc::PacketType::kMemReply:
    case noc::PacketType::kCohInvalidate:
      if (tile.l1) tile.l1->on_packet(pkt);
      break;
    case noc::PacketType::kMemReadReq:
    case noc::PacketType::kMemWriteReq:
    case noc::PacketType::kWriteback:
    case noc::PacketType::kCohAck:
      tile.l2->on_packet(pkt);
      break;
    case noc::PacketType::kConfigCmd:
      // Trojan configuration acts on routers in flight; the destination
      // tile simply sinks the packet.
      break;
    default:
      break;
  }
}

int ManyCoreSystem::desired_level(const cpu::CoreModel& core) const {
  // Largest useful level: the smallest level already delivering >= 97% of
  // the throughput of the maximum level. Compute-bound threads ask for the
  // top level; saturated memory-bound threads ask for less.
  const int max_lvl = cfg_.freqs.max_level();
  const double best = core.ipc_model().throughput(cfg_.freqs.ghz(max_lvl));
  for (int lvl = 0; lvl <= max_lvl; ++lvl) {
    if (core.ipc_model().throughput(cfg_.freqs.ghz(lvl)) >= 0.97 * best) {
      return lvl;
    }
  }
  return max_lvl;
}

void ManyCoreSystem::begin_epoch() {
  refresh_miss_rates();
  gm_->begin_epoch(engine_.now());
  for (Tile& tile : tiles_) {
    if (!tile.has_core()) continue;
    const int lvl = desired_level(*tile.core);
    const std::uint32_t request =
        cfg_.power_model.milliwatts_at(cfg_.freqs, lvl);
    auto pkt = net_->make_packet(tile.node, gm_node_,
                                 noc::PacketType::kPowerRequest, request);
    pkt->src_app = tile.core->app();
    net_->send(std::move(pkt));
  }
  engine_.schedule_desc_in(
      cfg_.resolved_collect_window(),
      sim::EventDesc{sim::EventKind::kSystemAllocate, -1, 0, 0});
}

void ManyCoreSystem::schedule_next_epoch() {
  engine_.schedule_desc_at(
      next_epoch_start_,
      sim::EventDesc{sim::EventKind::kSystemEpochStart, -1, 0, 0});
}

void ManyCoreSystem::refresh_miss_rates() {
  for (Tile& tile : tiles_) {
    if (!tile.has_core() || !tile.l1) continue;
    const double instr = tile.core->instructions_retired();
    const auto misses = tile.l1->stats().misses + tile.l1->stats().upgrades;
    const double d_instr = instr - tile.last_instructions;
    const double d_miss =
        static_cast<double>(misses - tile.last_misses);
    if (d_instr > 100.0) {
      tile.core->ipc_model().update_mpi(d_miss / d_instr);
    }
    tile.last_instructions = instr;
    tile.last_misses = misses;
  }
}

void ManyCoreSystem::tick(Cycle now) {
  for (Tile& tile : tiles_) {
    if (tile.has_core()) tile.core->tick(now);
  }
}

void ManyCoreSystem::run_epochs(int epochs) {
  const Cycle total = static_cast<Cycle>(epochs) * cfg_.epoch_cycles;
  if (!g_snapshot_self_test || epochs < 2) {
    engine_.run_cycles(total);
    return;
  }
  // Armed self-test: interrupt at one near-boundary cut and one mid-epoch
  // cut, round-tripping the whole system through its JSON snapshot each
  // time. Bit-identity with the uninterrupted run is the property under
  // test (tests/scenario/snapshot_roundtrip_test.cpp).
  const Cycle cuts[] = {total / 4, total / 2 + cfg_.epoch_cycles / 2};
  Cycle done = 0;
  for (const Cycle cut : cuts) {
    if (cut <= done || cut >= total) continue;
    engine_.run_cycles(cut - done);
    done = cut;
    const std::string text = json::dump(save_state());
    load_state(json::parse(text));
  }
  engine_.run_cycles(total - done);
}

json::Value ManyCoreSystem::save_state() const {
  json::Object o;
  o["engine"] = engine_.save_state();
  o["network"] = net_->save_state();
  json::Array tiles;
  for (const Tile& t : tiles_) {
    json::Object to;
    if (t.core) to["core"] = t.core->save_state();
    if (t.l1) to["l1"] = t.l1->save_state();
    to["l2"] = t.l2->save_state();
    to["last_instructions"] = json::Value(t.last_instructions);
    to["last_misses"] = common::ju64(t.last_misses);
    to["last_grant_mw"] =
        json::Value(static_cast<long long>(t.last_grant_mw));
    tiles.push_back(json::Value(std::move(to)));
  }
  o["tiles"] = json::Value(std::move(tiles));
  o["gm"] = gm_->save_state();
  o["next_epoch_start"] = common::ju64(next_epoch_start_);
  o["measure_start"] = common::ju64(measure_start_);
  json::Array instr;
  for (const double d : instr_snapshot_) instr.push_back(json::Value(d));
  o["instr_snapshot"] = json::Value(std::move(instr));
  o["infection_history_mark"] =
      common::ju64(static_cast<std::uint64_t>(infection_history_mark_));
  return json::Value(std::move(o));
}

void ManyCoreSystem::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  // Shape check BEFORE any sub-layer mutates: a checkpoint from a
  // different mesh must be rejected whole, not die mid-restore inside
  // the network with half this system overwritten.
  const json::Array& tiles = o.find("tiles")->as_array();
  if (tiles.size() != tiles_.size()) {
    throw std::invalid_argument(
        "ManyCoreSystem::load_state: tile count mismatch (checkpoint from a "
        "different configuration?)");
  }
  engine_.load_state(*o.find("engine"));
  net_->load_state(*o.find("network"));
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    Tile& t = tiles_[i];
    const json::Object& to = tiles[i].as_object();
    const bool has_core = to.contains("core");
    if (has_core != (t.core != nullptr) ||
        to.contains("l1") != (t.l1 != nullptr)) {
      throw std::invalid_argument(
          "ManyCoreSystem::load_state: core placement mismatch (checkpoint "
          "from a different thread mapping?)");
    }
    if (t.core) t.core->load_state(*to.find("core"));
    if (t.l1) t.l1->load_state(*to.find("l1"));
    t.l2->load_state(*to.find("l2"));
    t.last_instructions = to.find("last_instructions")->as_double();
    t.last_misses = common::pu64(*to.find("last_misses"));
    t.last_grant_mw =
        static_cast<std::uint32_t>(to.find("last_grant_mw")->as_int());
  }
  gm_->load_state(*o.find("gm"));
  next_epoch_start_ = common::pu64(*o.find("next_epoch_start"));
  measure_start_ = common::pu64(*o.find("measure_start"));
  const json::Array& instr = o.find("instr_snapshot")->as_array();
  instr_snapshot_.assign(tiles_.size(), 0.0);
  for (std::size_t i = 0; i < instr.size() && i < instr_snapshot_.size(); ++i) {
    instr_snapshot_[i] = instr[i].as_double();
  }
  infection_history_mark_ =
      static_cast<std::size_t>(common::pu64(*o.find("infection_history_mark")));
}

void ManyCoreSystem::reset_measurement() {
  measure_start_ = engine_.now();
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    instr_snapshot_[i] =
        tiles_[i].has_core() ? tiles_[i].core->instructions_retired() : 0.0;
  }
  infection_history_mark_ = gm_->history().size();
}

double ManyCoreSystem::app_throughput(AppId app) const {
  const double elapsed =
      static_cast<double>(engine_.now() - measure_start_);
  if (elapsed <= 0.0) return 0.0;
  double instr = 0.0;
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    const Tile& tile = tiles_[i];
    if (tile.has_core() && tile.core->app() == app) {
      instr += tile.core->instructions_retired() - instr_snapshot_[i];
    }
  }
  return instr / elapsed;
}

double ManyCoreSystem::measured_infection_rate() const {
  return gm_->mean_infection_rate(infection_history_mark_);
}

double ManyCoreSystem::core_sensitivity(NodeId node) const {
  const cpu::CoreModel* c = core(node);
  if (c == nullptr) return 0.0;
  // Def. 4, interpreted on per-second performance IPC(tau)*tau rather than
  // per-cycle IPC: a literal per-cycle reading would rank memory-bound
  // threads as the most sensitive (their IPC *falls* fastest with f),
  // inverting the paper's own statement that instruction-bound
  // applications are hit hardest (Sec. IV). EXPERIMENTS.md discusses this.
  double phi = 0.0;
  for (int lvl = 0; lvl + 1 < cfg_.freqs.num_levels(); ++lvl) {
    const double perf_lo = c->ipc_at_level(lvl) * cfg_.freqs.ghz(lvl);
    const double perf_hi =
        c->ipc_at_level(lvl + 1) * cfg_.freqs.ghz(lvl + 1);
    const double d_tau = cfg_.freqs.ghz(lvl) - cfg_.freqs.ghz(lvl + 1);
    phi += std::abs((perf_lo - perf_hi) / d_tau);
  }
  return phi;
}

double ManyCoreSystem::app_sensitivity(AppId app) const {
  double sum = 0.0;
  int count = 0;
  for (const Tile& tile : tiles_) {
    if (tile.has_core() && tile.core->app() == app) {
      sum += core_sensitivity(tile.node);
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / count;
}

}  // namespace htpb::system
