// One NoC node: router + NI (owned by the network), an L2 slice (every
// node), and -- on nodes that run a thread -- a core with its private L1.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "cpu/core_model.hpp"
#include "mem/l1_cache.hpp"
#include "mem/l2_bank.hpp"
#include "noc/packet.hpp"

namespace htpb::system {

struct Tile {
  NodeId node = kInvalidNode;
  std::unique_ptr<cpu::CoreModel> core;  // null on idle nodes
  std::unique_ptr<mem::L1Cache> l1;      // null on idle nodes
  std::unique_ptr<mem::L2Bank> l2;       // every node hosts an L2 slice

  // Epoch-boundary snapshots for the adaptive miss-rate estimate.
  double last_instructions = 0.0;
  std::uint64_t last_misses = 0;

  /// Payload of the most recent POWER_GRANT delivered to this tile. An
  /// adaptive attacker agent (core/campaign.cpp) reads its own cores'
  /// grant stream through this -- the one feedback signal the chip gives
  /// every core for free.
  std::uint32_t last_grant_mw = 0;

  [[nodiscard]] bool has_core() const noexcept { return core != nullptr; }
};

}  // namespace htpb::system
