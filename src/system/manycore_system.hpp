// The integrated many-core chip: mesh NoC, tiles (cores + caches), the
// global power manager and the epoch-based budgeting protocol. This is
// the substrate the attack experiments run on; it knows nothing about
// Trojans (those are injected from core/ via the router inspector hook).
#pragma once

#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/network.hpp"
#include "power/global_manager.hpp"
#include "sim/engine.hpp"
#include "system/system_config.hpp"
#include "system/tile.hpp"
#include "workload/application.hpp"

namespace htpb::system {

/// Global test hook: arms the in-place snapshot round trip performed by
/// ManyCoreSystem::run_epochs (see its comment). Off by default; the
/// scenario snapshot property test switches it on to exercise every
/// registered scenario kind through the save/load path.
void set_snapshot_self_test(bool on) noexcept;
[[nodiscard]] bool snapshot_self_test() noexcept;

class ManyCoreSystem : public sim::Tickable {
 public:
  /// Builds the chip and maps the applications' threads (the `apps`
  /// vector must already have its `cores` filled in by a mapper, or pass
  /// it through `workload::map_threads_round_robin` first).
  ManyCoreSystem(SystemConfig cfg, std::vector<workload::Application> apps);

  ManyCoreSystem(const ManyCoreSystem&) = delete;
  ManyCoreSystem& operator=(const ManyCoreSystem&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] noc::MeshNetwork& network() noexcept { return *net_; }
  [[nodiscard]] power::GlobalManager& gm() noexcept { return *gm_; }
  [[nodiscard]] const SystemConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] NodeId gm_node() const noexcept { return gm_node_; }
  [[nodiscard]] const MeshGeometry& geometry() const noexcept {
    return net_->geometry();
  }
  [[nodiscard]] const std::vector<workload::Application>& apps() const noexcept {
    return apps_;
  }
  [[nodiscard]] cpu::CoreModel* core(NodeId node) noexcept {
    return tiles_[node].core.get();
  }
  [[nodiscard]] const cpu::CoreModel* core(NodeId node) const noexcept {
    return tiles_[node].core.get();
  }
  [[nodiscard]] mem::L1Cache* l1(NodeId node) noexcept {
    return tiles_[node].l1.get();
  }
  [[nodiscard]] mem::L2Bank* l2(NodeId node) noexcept {
    return tiles_[node].l2.get();
  }
  [[nodiscard]] std::uint64_t total_budget_mw() const noexcept {
    return budget_mw_;
  }
  [[nodiscard]] std::uint32_t floor_mw() const noexcept { return floor_mw_; }

  /// Payload of the most recent POWER_GRANT delivered to `node` (0 before
  /// the first grant lands). The adaptive Trojan agent's feedback tap.
  [[nodiscard]] std::uint32_t last_grant_mw(NodeId node) const noexcept {
    return tiles_[node].last_grant_mw;
  }

  /// Ticks every core (registered with the engine after the network, so
  /// cores see this cycle's deliveries).
  void tick(Cycle now) override;

  /// Runs `epochs` budgeting epochs (the epoch driver self-schedules).
  /// When the snapshot self-test hook (set_snapshot_self_test) is armed
  /// and `epochs` >= 2, the run is interrupted at two interior cuts (one
  /// near an epoch boundary, one mid-epoch) for an in-place
  /// save -> dump -> parse -> load round trip; a correct snapshot layer
  /// makes this a no-op, which the scenario property test locks in.
  void run_epochs(int epochs);

  /// Checkpointing: engine clock + pending events, the full NoC, every
  /// tile (core/L1/L2 + grant bookkeeping), the global manager and the
  /// epoch/measurement drivers. Restore into a system built from the
  /// identical SystemConfig + mapped applications; wiring (handlers,
  /// inspectors, neighbour tables) is reconstructed, never serialized.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v);

  /// Marks the start of the measurement window: snapshots per-core
  /// instruction counters and the infection-rate history.
  void reset_measurement();

  /// Theta_k (paper Def. 1): the application's aggregate instructions per
  /// nanosecond over the measurement window.
  [[nodiscard]] double app_throughput(AppId app) const;

  /// Mean infection rate at the manager over the measurement window.
  [[nodiscard]] double measured_infection_rate() const;

  /// Phi_k (paper Def. 5): mean over the app's cores of the per-core
  /// frequency sensitivity phi (Def. 4), using each core's live IPC model.
  [[nodiscard]] double app_sensitivity(AppId app) const;

  /// phi(j, z) of Def. 4 for one core.
  [[nodiscard]] double core_sensitivity(NodeId node) const;

  /// The DVFS level the core would ask power for (largest useful level).
  [[nodiscard]] int desired_level(const cpu::CoreModel& core) const;

 private:
  void build_tiles();
  void dispatch(NodeId node, const noc::Packet& pkt);
  void schedule_next_epoch();
  void begin_epoch();
  void refresh_miss_rates();

  SystemConfig cfg_;  // snapshot-exempt: construction config, immutable
  sim::Engine engine_;
  std::unique_ptr<noc::MeshNetwork> net_;
  std::vector<workload::Application> apps_;  // snapshot-exempt: workload spec, fixed for the run
  std::vector<Tile> tiles_;
  std::unique_ptr<power::GlobalManager> gm_;
  NodeId gm_node_ = kInvalidNode;   // snapshot-exempt: derived from cfg_ at construction
  std::uint64_t budget_mw_ = 0;     // snapshot-exempt: derived from cfg_ at construction
  std::uint32_t floor_mw_ = 0;      // snapshot-exempt: derived from cfg_ at construction
  Cycle next_epoch_start_ = 0;

  // Measurement window state.
  Cycle measure_start_ = 0;
  std::vector<double> instr_snapshot_;
  std::size_t infection_history_mark_ = 0;
};

}  // namespace htpb::system
