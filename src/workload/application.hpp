// A running multi-threaded application: a benchmark profile plus a thread
// count, a role (attacker or victim) and, once mapped, the set of cores
// running its threads (the paper's C_k).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/benchmark_profile.hpp"

namespace htpb::workload {

enum class Role { kVictim, kAttacker };

struct Application {
  AppId id = kInvalidApp;
  BenchmarkProfile profile;
  int threads = 0;
  Role role = Role::kVictim;
  /// Cores running this application's threads (paper's C_k); filled in by
  /// the thread mapper.
  std::vector<NodeId> cores;

  [[nodiscard]] bool is_attacker() const noexcept {
    return role == Role::kAttacker;
  }
};

/// A benchmark combination from Table III.
struct Mix {
  std::string name;
  std::vector<std::string> attackers;
  std::vector<std::string> victims;

  [[nodiscard]] int app_count() const noexcept {
    return static_cast<int>(attackers.size() + victims.size());
  }
};

/// The four combinations of Table III (mix-1 .. mix-4).
[[nodiscard]] const std::vector<Mix>& standard_mixes();

/// Instantiates a mix: attackers first, then victims, each with
/// `threads_per_app` threads. AppIds are assigned in order.
[[nodiscard]] std::vector<Application> instantiate_mix(const Mix& mix,
                                                       int threads_per_app);

/// Maps application threads onto a chip with `node_count` cores.
/// Round-robin interleaving (app of node i = i % apps) keeps every
/// application geometrically spread across the die, so the infection rate
/// seen by each application is uniform -- the paper's Figs. 5-6 setting
/// (4 apps x 64 threads on 256 cores). Throws if the mix needs more cores
/// than exist.
void map_threads_round_robin(std::vector<Application>& apps, int node_count);

/// Block mapping: each application gets a contiguous band of node ids.
void map_threads_blocked(std::vector<Application>& apps, int node_count);

}  // namespace htpb::workload
