#include "workload/benchmark_profile.hpp"

#include <array>
#include <stdexcept>

namespace htpb::workload {

namespace {

// Working sets are per-thread private lines; shared regions are per
// application. The compute-bound group has small working sets (fits L2)
// and low access rates; the memory-bound group has large working sets
// (streams through L2, hitting the 200-cycle memory) and high rates.
const std::vector<BenchmarkProfile>& table() {
  // The apki values are NoC-bound (post-L1-filter) access rates: the
  // address stream operates at cache-line granularity, so spatial reuse
  // within a line is already folded in and these rates correspond to the
  // benchmarks' published L1-miss MPKIs, not raw load/store counts.
  static const std::vector<BenchmarkProfile> kTable = {
      // name, suite, cpi_base, apki, ws_lines, shared_lines, shared%, write%
      {"blackscholes", "PARSEC", 0.45, 0.6, 640, 512, 0.04, 0.18},
      {"swaptions", "PARSEC", 0.50, 0.8, 768, 512, 0.05, 0.20},
      {"freqmine", "PARSEC", 0.55, 1.2, 1536, 1024, 0.08, 0.22},
      {"fluidanimate", "PARSEC", 0.60, 2.0, 2048, 2048, 0.18, 0.25},
      {"vips", "PARSEC", 0.60, 2.5, 4096, 2048, 0.10, 0.28},
      {"ferret", "PARSEC", 0.70, 3.5, 8192, 4096, 0.15, 0.22},
      {"dedup", "PARSEC", 0.75, 4.5, 16384, 8192, 0.20, 0.30},
      {"streamcluster", "PARSEC", 0.80, 7.0, 32768, 8192, 0.28, 0.15},
      {"canneal", "PARSEC", 0.90, 10.0, 65536, 16384, 0.35, 0.30},
      {"barnes", "SPLASH-2", 0.65, 3.0, 12288, 6144, 0.30, 0.25},
      {"raytrace", "SPLASH-2", 0.85, 8.0, 49152, 12288, 0.22, 0.10},
  };
  return kTable;
}

}  // namespace

std::span<const BenchmarkProfile> benchmark_table() { return table(); }

const BenchmarkProfile& benchmark(std::string_view name) {
  for (const auto& profile : table()) {
    if (profile.name == name) return profile;
  }
  throw std::out_of_range("benchmark: unknown benchmark '" +
                          std::string(name) + "'");
}

std::optional<const BenchmarkProfile*> find_benchmark(std::string_view name) {
  for (const auto& profile : table()) {
    if (profile.name == name) return &profile;
  }
  return std::nullopt;
}

}  // namespace htpb::workload
