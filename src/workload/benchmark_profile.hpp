// Synthetic profiles of the PARSEC / SPLASH-2 benchmarks in Table II.
//
// We cannot execute the real binaries (no Alpha ISA toolchain or traces),
// so each benchmark is characterized by the parameters that matter to the
// attack study: its core-bound CPI, its NoC-bound access rate, its working
// set (which drives the L2 hit rate and hence memory latency), and its
// sharing/write behaviour (which drives coherence traffic). The values
// are chosen to match the standard qualitative characterization of these
// suites: blackscholes/swaptions/freqmine are compute-bound (high power
// sensitivity Phi, paper Def. 5), canneal/raytrace/streamcluster are
// memory-bound (low Phi). DESIGN.md section 3 documents this substitution.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace htpb::workload {

struct BenchmarkProfile {
  std::string name;
  /// Suite the benchmark belongs to ("PARSEC" or "SPLASH-2", Table II).
  std::string suite;
  /// Cycles per instruction excluding memory stalls.
  double cpi_base = 0.6;
  /// NoC-bound L1 accesses per kilo-instruction fed to the L1 (a
  /// subsampled stream; the L1 decides which of them miss).
  double apki = 40.0;
  /// Private working set in cache lines per thread.
  std::uint64_t working_set_lines = 4096;
  /// Lines in the application-wide shared region.
  std::uint64_t shared_lines = 2048;
  /// Fraction of accesses that target the shared region.
  double shared_fraction = 0.1;
  /// Fraction of accesses that are writes.
  double write_fraction = 0.2;
};

/// All Table II benchmarks (PARSEC: streamcluster, swaptions, ferret,
/// fluidanimate, blackscholes, freqmine, dedup, canneal, vips; SPLASH-2:
/// barnes, raytrace).
[[nodiscard]] std::span<const BenchmarkProfile> benchmark_table();

/// Lookup by name; throws std::out_of_range for unknown benchmarks.
[[nodiscard]] const BenchmarkProfile& benchmark(std::string_view name);

[[nodiscard]] std::optional<const BenchmarkProfile*> find_benchmark(
    std::string_view name);

}  // namespace htpb::workload
