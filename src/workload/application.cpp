#include "workload/application.hpp"

#include <stdexcept>

namespace htpb::workload {

const std::vector<Mix>& standard_mixes() {
  // Table III of the paper.
  static const std::vector<Mix> kMixes = {
      {"mix-1", {"barnes", "canneal"}, {"blackscholes", "raytrace"}},
      {"mix-2", {"freqmine", "swaptions"}, {"raytrace", "vips"}},
      {"mix-3", {"canneal"}, {"barnes", "vips", "dedup"}},
      {"mix-4", {"barnes", "streamcluster", "freqmine"}, {"raytrace"}},
  };
  return kMixes;
}

std::vector<Application> instantiate_mix(const Mix& mix, int threads_per_app) {
  if (threads_per_app <= 0) {
    throw std::invalid_argument("instantiate_mix: threads_per_app must be > 0");
  }
  std::vector<Application> apps;
  AppId next = 0;
  for (const auto& name : mix.attackers) {
    Application app;
    app.id = next++;
    app.profile = benchmark(name);
    app.threads = threads_per_app;
    app.role = Role::kAttacker;
    apps.push_back(std::move(app));
  }
  for (const auto& name : mix.victims) {
    Application app;
    app.id = next++;
    app.profile = benchmark(name);
    app.threads = threads_per_app;
    app.role = Role::kVictim;
    apps.push_back(std::move(app));
  }
  return apps;
}

namespace {
int total_threads(const std::vector<Application>& apps) {
  int total = 0;
  for (const auto& app : apps) total += app.threads;
  return total;
}
}  // namespace

void map_threads_round_robin(std::vector<Application>& apps, int node_count) {
  if (total_threads(apps) > node_count) {
    throw std::invalid_argument(
        "map_threads_round_robin: more threads than cores");
  }
  for (auto& app : apps) app.cores.clear();
  // Deal node ids like cards: node i goes to app i % apps until each
  // application has its thread count.
  std::size_t app_idx = 0;
  for (int node = 0; node < node_count; ++node) {
    // Find the next application that still needs a core.
    std::size_t tried = 0;
    while (tried < apps.size() &&
           static_cast<int>(apps[app_idx].cores.size()) >=
               apps[app_idx].threads) {
      app_idx = (app_idx + 1) % apps.size();
      ++tried;
    }
    if (tried == apps.size()) break;  // all applications fully mapped
    apps[app_idx].cores.push_back(static_cast<NodeId>(node));
    app_idx = (app_idx + 1) % apps.size();
  }
}

void map_threads_blocked(std::vector<Application>& apps, int node_count) {
  if (total_threads(apps) > node_count) {
    throw std::invalid_argument("map_threads_blocked: more threads than cores");
  }
  for (auto& app : apps) app.cores.clear();
  NodeId next = 0;
  for (auto& app : apps) {
    for (int t = 0; t < app.threads; ++t) {
      app.cores.push_back(next++);
    }
  }
}

}  // namespace htpb::workload
