#include "noc/packet.hpp"

#include <sstream>

namespace htpb::noc {

const char* to_string(PacketType t) noexcept {
  switch (t) {
    case PacketType::kGeneric: return "GENERIC";
    case PacketType::kPowerRequest: return "POWER_REQ";
    case PacketType::kPowerGrant: return "POWER_GRANT";
    case PacketType::kConfigCmd: return "CONFIG_CMD";
    case PacketType::kMemReadReq: return "MEM_READ";
    case PacketType::kMemWriteReq: return "MEM_WRITE";
    case PacketType::kMemReply: return "MEM_REPLY";
    case PacketType::kCohInvalidate: return "COH_INV";
    case PacketType::kCohAck: return "COH_ACK";
    case PacketType::kWriteback: return "WRITEBACK";
  }
  return "?";
}

std::string Packet::to_string() const {
  std::ostringstream os;
  os << noc::to_string(type) << " #" << id << " " << src << "->" << dst
     << " payload=" << payload << " flits=" << size_flits;
  if (tampered) os << " [TAMPERED from " << original_payload << "]";
  return os.str();
}

std::vector<Flit> make_flits(PacketPtr pkt) {
  const int n = pkt->size_flits < 1 ? 1 : pkt->size_flits;
  std::vector<Flit> flits;
  flits.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Flit f;
    f.pkt = pkt;
    f.index = static_cast<std::uint16_t>(i);
    f.is_head = (i == 0);
    f.is_tail = (i == n - 1);
    flits.push_back(std::move(f));
  }
  return flits;
}

}  // namespace htpb::noc
