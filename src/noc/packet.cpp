#include "noc/packet.hpp"

#include <sstream>

namespace htpb::noc {

const char* to_string(PacketType t) noexcept {
  switch (t) {
    case PacketType::kGeneric: return "GENERIC";
    case PacketType::kPowerRequest: return "POWER_REQ";
    case PacketType::kPowerGrant: return "POWER_GRANT";
    case PacketType::kConfigCmd: return "CONFIG_CMD";
    case PacketType::kMemReadReq: return "MEM_READ";
    case PacketType::kMemWriteReq: return "MEM_WRITE";
    case PacketType::kMemReply: return "MEM_REPLY";
    case PacketType::kCohInvalidate: return "COH_INV";
    case PacketType::kCohAck: return "COH_ACK";
    case PacketType::kWriteback: return "WRITEBACK";
  }
  return "?";
}

std::string Packet::to_string() const {
  std::ostringstream os;
  os << noc::to_string(type) << " #" << id << " " << src << "->" << dst
     << " payload=" << payload << " flits=" << size_flits;
  if (tampered) os << " [TAMPERED from " << original_payload << "]";
  return os.str();
}

void PacketPtr::dispose(Packet* p) noexcept {
  detail::PoolCore* core = p->ctrl.pool;
  if (core == nullptr) {
    delete p;
    return;
  }
  --core->live;
  if (core->alive) {
    core->free.push_back(p);
  } else {
    // The pool is gone; the core sticks around until the last straggler
    // (e.g. a packet captured in an engine event) frees it.
    delete p;
    if (core->live == 0) delete core;
  }
}

namespace {

/// Back to default-constructed state, minus the options capacity -- that
/// retained buffer is the point of recycling.
void reset_for_reuse(Packet& p) noexcept {
  p.id = 0;
  p.src = kInvalidNode;
  p.dst = kInvalidNode;
  p.type = PacketType::kGeneric;
  p.payload = 0;
  p.options.clear();
  p.size_flits = 1;
  p.tag = 0;
  p.src_app = kInvalidApp;
  p.birth = 0;
  p.delivered = 0;
  p.tampered = false;
  p.boosted = false;
  p.original_payload = 0;
}

}  // namespace

PacketPool::~PacketPool() {
  core_->alive = false;
  for (Packet* p : core_->free) delete p;
  core_->free.clear();
  if (core_->live == 0) delete core_;
}

PacketPtr PacketPool::allocate() {
  Packet* p;
  if (core_->free.empty()) {
    p = new Packet();
  } else {
    p = core_->free.back();
    core_->free.pop_back();
    reset_for_reuse(*p);
  }
  p->ctrl.pool = core_;
  p->ctrl.refs = 1;
  ++core_->live;
  return PacketPtr::adopt(p);
}

PacketPtr make_heap_packet() {
  auto* p = new Packet();
  p->ctrl.refs = 1;
  return PacketPtr::adopt(p);
}

std::vector<Flit> make_flits(PacketPtr pkt) {
  std::vector<Flit> flits;
  make_flits_into(pkt, flits);
  return flits;
}

void make_flits_into(const PacketPtr& pkt, std::vector<Flit>& out) {
  const int n = pkt->size_flits < 1 ? 1 : pkt->size_flits;
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Flit f;
    f.pkt = pkt;
    f.index = static_cast<std::uint16_t>(i);
    f.is_head = (i == 0);
    f.is_tail = (i == n - 1);
    out.push_back(std::move(f));
  }
}

}  // namespace htpb::noc
