#include "noc/packet.hpp"

#include <sstream>
#include <stdexcept>

#include "common/snapshot.hpp"

namespace htpb::noc {

const char* to_string(PacketType t) noexcept {
  switch (t) {
    case PacketType::kGeneric: return "GENERIC";
    case PacketType::kPowerRequest: return "POWER_REQ";
    case PacketType::kPowerGrant: return "POWER_GRANT";
    case PacketType::kConfigCmd: return "CONFIG_CMD";
    case PacketType::kMemReadReq: return "MEM_READ";
    case PacketType::kMemWriteReq: return "MEM_WRITE";
    case PacketType::kMemReply: return "MEM_REPLY";
    case PacketType::kCohInvalidate: return "COH_INV";
    case PacketType::kCohAck: return "COH_ACK";
    case PacketType::kWriteback: return "WRITEBACK";
  }
  return "?";
}

std::string Packet::to_string() const {
  std::ostringstream os;
  os << noc::to_string(type) << " #" << id << " " << src << "->" << dst
     << " payload=" << payload << " flits=" << size_flits;
  if (tampered) os << " [TAMPERED from " << original_payload << "]";
  return os.str();
}

void PacketPtr::dispose(Packet* p) noexcept {
  detail::PoolCore* core = p->ctrl.pool;
  if (core == nullptr) {
    delete p;
    return;
  }
  --core->live;
  if (core->alive) {
    // Swap-remove from the live table (O(1); order is not meaningful).
    auto& live = core->live_list;
    const std::uint32_t i = p->ctrl.live_index;
    live[i] = live.back();
    live[i]->ctrl.live_index = i;
    live.pop_back();
    core->free.push_back(p);
  } else {
    // The pool is gone; the core sticks around until the last straggler
    // (e.g. a packet captured in an engine event) frees it.
    delete p;
    if (core->live == 0) delete core;
  }
}

namespace {

/// Back to default-constructed state, minus the options capacity -- that
/// retained buffer is the point of recycling.
void reset_for_reuse(Packet& p) noexcept {
  p.id = 0;
  p.src = kInvalidNode;
  p.dst = kInvalidNode;
  p.type = PacketType::kGeneric;
  p.payload = 0;
  p.options.clear();
  p.size_flits = 1;
  p.tag = 0;
  p.src_app = kInvalidApp;
  p.birth = 0;
  p.delivered = 0;
  p.tampered = false;
  p.boosted = false;
  p.original_payload = 0;
}

}  // namespace

PacketPool::~PacketPool() {
  core_->alive = false;
  core_->live_list.clear();  // stragglers free themselves; drop the pointers
  for (Packet* p : core_->free) delete p;
  core_->free.clear();
  if (core_->live == 0) delete core_;
}

PacketPtr PacketPool::allocate() {
  Packet* p;
  if (core_->free.empty()) {
    p = new Packet();
  } else {
    p = core_->free.back();
    core_->free.pop_back();
    reset_for_reuse(*p);
  }
  p->ctrl.pool = core_;
  p->ctrl.refs = 1;
  p->ctrl.live_index = static_cast<std::uint32_t>(core_->live_list.size());
  core_->live_list.push_back(p);
  ++core_->live;
  return PacketPtr::adopt(p);
}

PacketPtr make_heap_packet() {
  auto* p = new Packet();
  p->ctrl.refs = 1;
  return PacketPtr::adopt(p);
}

std::vector<Flit> make_flits(PacketPtr pkt) {
  std::vector<Flit> flits;
  make_flits_into(pkt, flits);
  return flits;
}

json::Value packet_to_json(const Packet& p) {
  json::Object o;
  o["id"] = common::ju64(p.id);
  o["src"] = json::Value(static_cast<long long>(p.src));
  o["dst"] = json::Value(static_cast<long long>(p.dst));
  o["type"] =
      json::Value(static_cast<long long>(static_cast<std::uint32_t>(p.type)));
  o["payload"] = json::Value(static_cast<long long>(p.payload));
  json::Array opts;
  for (const std::uint32_t w : p.options) {
    opts.push_back(json::Value(static_cast<long long>(w)));
  }
  o["options"] = json::Value(std::move(opts));
  o["size_flits"] = json::Value(static_cast<long long>(p.size_flits));
  o["tag"] = common::ju64(p.tag);
  o["src_app"] = json::Value(static_cast<long long>(p.src_app));
  o["birth"] = common::ju64(p.birth);
  o["delivered"] = common::ju64(p.delivered);
  o["tampered"] = json::Value(p.tampered);
  o["boosted"] = json::Value(p.boosted);
  o["original_payload"] =
      json::Value(static_cast<long long>(p.original_payload));
  return json::Value(std::move(o));
}

void packet_from_json(Packet& p, const json::Value& v) {
  const json::Object& o = v.as_object();
  p.id = static_cast<PacketId>(common::pu64(*o.find("id")));
  p.src = static_cast<NodeId>(o.find("src")->as_int());
  p.dst = static_cast<NodeId>(o.find("dst")->as_int());
  p.type = static_cast<PacketType>(o.find("type")->as_int());
  p.payload = static_cast<std::uint32_t>(o.find("payload")->as_int());
  p.options.clear();
  for (const json::Value& w : o.find("options")->as_array()) {
    p.options.push_back(static_cast<std::uint32_t>(w.as_int()));
  }
  p.size_flits = static_cast<int>(o.find("size_flits")->as_int());
  p.tag = common::pu64(*o.find("tag"));
  p.src_app = static_cast<AppId>(o.find("src_app")->as_int());
  p.birth = common::pu64(*o.find("birth"));
  p.delivered = common::pu64(*o.find("delivered"));
  p.tampered = o.find("tampered")->as_bool();
  p.boosted = o.find("boosted")->as_bool();
  p.original_payload =
      static_cast<std::uint32_t>(o.find("original_payload")->as_int());
}

json::Value flit_to_json(const Flit& f) {
  json::Array a;
  a.push_back(common::ju64(f.pkt ? f.pkt->id : 0));
  a.push_back(json::Value(static_cast<long long>(f.index)));
  a.push_back(json::Value(static_cast<long long>(f.vc)));
  return json::Value(std::move(a));
}

Flit flit_from_json(const json::Value& v, const PacketResolver& resolve) {
  const json::Array& a = v.as_array();
  Flit f;
  f.pkt = resolve(static_cast<PacketId>(common::pu64(a.at(0))));
  if (f.pkt == nullptr) {
    throw std::runtime_error("flit_from_json: unresolved packet id");
  }
  f.index = static_cast<std::uint16_t>(a.at(1).as_int());
  f.vc = static_cast<std::int8_t>(a.at(2).as_int());
  const int n = f.pkt->size_flits < 1 ? 1 : f.pkt->size_flits;
  f.is_head = f.index == 0;
  f.is_tail = f.index == n - 1;
  return f;
}

void make_flits_into(const PacketPtr& pkt, std::vector<Flit>& out) {
  const int n = pkt->size_flits < 1 ? 1 : pkt->size_flits;
  out.clear();
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Flit f;
    f.pkt = pkt;
    f.index = static_cast<std::uint16_t>(i);
    f.is_head = (i == 0);
    f.is_tail = (i == n - 1);
    out.push_back(std::move(f));
  }
}

}  // namespace htpb::noc
