// Input-buffered virtual-channel wormhole router.
//
// Microarchitecture (Table I / Sec. III-D of the paper): 5 ports, 4 VCs per
// input port with 5-flit FIFOs, credit-based flow control, a 2-cycle router
// pipeline (buffer-write + route-compute/VC-allocate, then switch-allocate +
// switch-traverse) and 1-cycle links. The PacketInspector chain runs between
// the input buffer and route computation -- the attachment point of the
// paper's hardware Trojan (Fig. 2b).
//
// Hot-path layout: VC state lives in fixed-size inline arrays (no
// per-router heap graph), input FIFOs are bounded rings (flit_fifo.hpp),
// and each output port keeps the list of input VCs currently routed to it
// so switch allocation only examines real candidates instead of scanning
// all kNumPorts x vcs combinations -- while granting in exactly the same
// round-robin order as the full scan did.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"
#include "noc/config.hpp"
#include "noc/direction.hpp"
#include "noc/flit_fifo.hpp"
#include "noc/inspector.hpp"
#include "noc/packet.hpp"
#include "noc/routing.hpp"

namespace htpb::noc {

/// Per-router utilization counters -- what an on-chip traffic diagnostic
/// would see. The paper's false-data attack leaves every one of these
/// unchanged relative to a clean run (it rewrites payloads in flight),
/// which is why the comparison benches print them.
struct RouterStats {
  std::uint64_t flits_forwarded = 0;      ///< flits sent out any non-local port
  std::uint64_t packets_routed = 0;       ///< head flits that completed RC
  std::uint64_t power_requests_seen = 0;  ///< POWER_REQ heads inspected
  std::uint64_t flits_ejected = 0;        ///< flits delivered to the local NI
  std::uint64_t sa_conflict_stalls = 0;   ///< switch-allocation losses
  std::uint64_t va_stalls = 0;            ///< head flits waiting for an output VC
};

/// A flit leaving a router this cycle, to be applied by the network after
/// every router has ticked (two-phase update keeps evaluation
/// order-independent and deterministic).
struct LinkTransfer {
  NodeId from_router = kInvalidNode;
  Direction out_port = Direction::kLocal;
  Flit flit;
};

/// Buffer slot freed in `router`'s input `in_port`/`vc`; the network
/// forwards it upstream (neighbour router or local NI) as a credit.
struct CreditReturn {
  NodeId router = kInvalidNode;
  Direction in_port = Direction::kLocal;
  int vc = 0;
};

/// One mesh router. The network ticks every router's SA/ST stage, applies
/// the produced link transfers and credits, then ticks every RC/VA stage
/// -- a two-phase update, so the result is independent of router order.
class Router {
 public:
  Router(NodeId id, const MeshGeometry& geom, const NocConfig& cfg,
         const RoutingAlgorithm* routing);

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] Coord coord() const noexcept { return coord_; }

  /// Marks an output port as wired (edge routers leave mesh-boundary ports
  /// disconnected). Local is always connected.
  void set_port_connected(Direction p, bool connected);
  [[nodiscard]] bool port_connected(Direction p) const noexcept {
    return out_[port_index(p)].connected;
  }

  /// Accepts a flit into an input buffer; `arrival` is the cycle at which
  /// the flit has been fully written (becomes visible to the pipeline).
  void accept_flit(Direction in_port, const Flit& flit, Cycle arrival);

  /// Pipeline stage 2: switch allocation + traversal. At most one flit per
  /// output port and one per input port per cycle.
  void tick_sa_st(Cycle now, std::vector<LinkTransfer>& transfers,
                  std::vector<CreditReturn>& credits);

  /// Pipeline stage 1 (for newly arrived heads): inspection, route
  /// computation, VC allocation. Runs after SA within a tick so grants take
  /// effect the following cycle.
  void tick_rc_va(Cycle now);

  /// Credit bookkeeping for the downstream buffer behind output port `p`.
  void add_output_credit(Direction p, int vc) noexcept {
    ++out_[port_index(p)].vcs[static_cast<std::size_t>(vc)].credits;
  }
  [[nodiscard]] int output_credits(Direction p, int vc) const noexcept {
    return out_[port_index(p)].vcs[static_cast<std::size_t>(vc)].credits;
  }
  /// Sum of free credits over the VCs of a class (adaptive routing input).
  [[nodiscard]] int free_credits_for_class(Direction p, int vc_class) const noexcept;

  [[nodiscard]] int input_occupancy(Direction p, int vc) const noexcept {
    return in_[port_index(p)].vcs[static_cast<std::size_t>(vc)].fifo.size();
  }
  [[nodiscard]] std::uint64_t buffered_flits() const noexcept {
    return buffered_flits_;
  }

  /// Attaches a packet inspector between buffer-write and route compute
  /// (Fig. 2b) -- the hook the hardware Trojan implants through. Not
  /// owned; inspectors run in attachment order on whole packets.
  void add_inspector(PacketInspector* inspector) {
    inspectors_.push_back(inspector);
  }
  void clear_inspectors() noexcept { inspectors_.clear(); }
  [[nodiscard]] bool has_inspectors() const noexcept {
    return !inspectors_.empty();
  }

  [[nodiscard]] const RouterStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RouterStats{}; }

  /// Checkpointing: everything that changes while flits move -- input-VC
  /// ring buffers, routing/allocation registers, output credits,
  /// round-robin pointers, stats. Wiring (connected ports, the routing
  /// algorithm, inspectors) is construction state and is not captured.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v, const PacketResolver& resolve);

 private:
  struct BufferedFlit {
    Flit flit;
    Cycle arrival = 0;
    bool inspected = false;
  };

  struct InputVc {
    RingFifo<BufferedFlit, kMaxVcDepth> fifo;
    bool active = false;       // holds a routed packet
    Direction out_port = Direction::kLocal;
    int out_vc = -1;
    Cycle alloc_cycle = 0;
  };

  struct InputPort {
    std::array<InputVc, kMaxVcs> vcs;
    /// Input VCs whose front flit is a head awaiting route computation
    /// (inactive VC, non-empty FIFO). RC/VA only scans ports where this
    /// is non-zero; a head that loses VC allocation stays counted.
    int rc_pending = 0;
  };

  struct OutputVc {
    int credits = 0;
    bool allocated = false;
  };

  /// An input VC routed to an output port, pre-split so the SA loop does
  /// no divisions: `cand` is the round-robin code (in_port * vcs + vc).
  struct SaCandidate {
    std::uint8_t cand = 0;
    std::uint8_t in_port = 0;
    std::uint8_t in_vc = 0;
  };

  struct OutputPort {
    std::array<OutputVc, kMaxVcs> vcs;
    bool connected = false;
    int rr_candidate = 0;  // SA round-robin over (in_port, vc) pairs
    int rr_vc = 0;         // VA round-robin over output VCs
    int active_inputs = 0; // input VCs currently routed to this port
    /// Those input VCs; the SA stage orders them by round-robin distance
    /// instead of scanning all (in_port, vc) combinations. Unordered;
    /// first `active_inputs` entries are valid.
    std::array<SaCandidate, kNumPorts * kMaxVcs> routed{};
  };

  [[nodiscard]] InputVc& input_vc(Direction p, int vc) noexcept {
    return in_[port_index(p)].vcs[static_cast<std::size_t>(vc)];
  }

  void run_inspectors(Packet& pkt, Cycle now);

  NodeId id_;          // snapshot-exempt: construction wiring (router identity)
  MeshGeometry geom_;  // snapshot-exempt: construction config, immutable
  Coord coord_;        // snapshot-exempt: derived from id_ and geometry
  NocConfig cfg_;
  const RoutingAlgorithm* routing_;  // snapshot-exempt: non-owning wiring, re-attached by construction
  bool routing_uses_credits_ = false;  // snapshot-exempt: derived from the routing algorithm's capabilities
  std::array<InputPort, kNumPorts> in_;
  std::array<OutputPort, kNumPorts> out_;
  // snapshot-exempt: attached probes re-register themselves after restore
  std::vector<PacketInspector*> inspectors_;
  RouterStats stats_;
  std::uint64_t buffered_flits_ = 0;
  int rc_pending_total_ = 0;  // sum of InputPort::rc_pending
};

}  // namespace htpb::noc
