// Packet and flit formats.
//
// The paper's packet frame (Fig. 1) has a 16-bit source, 16-bit destination,
// 32-bit type word and 32-bit payload, plus an optional OPTIONS field. With
// Table I's 72-bit flits this gives: 1-flit meta packets (coherence/control
// without data), 2-flit command packets (power requests / Trojan
// configuration, which carry the type word and payload) and 5-flit data
// packets (cache-line transfers).
//
// Ownership: packets are shared by all of their flits through PacketPtr, an
// intrusive reference-counted handle. A simulation run is single-threaded
// by design (the two-phase router update; parallelism is across campaigns),
// so the count is a plain integer -- copying a flit costs one increment,
// not an atomic RMW like the former std::shared_ptr did. Packets normally
// come from a MeshNetwork's PacketPool and return to it when the last
// handle drops, so steady-state traffic allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace htpb::noc {

enum class PacketType : std::uint32_t {
  kGeneric = 0,
  /// Power budget request: payload = requested power in milliwatts (paper
  /// Fig. 1a, POWER_REQ).
  kPowerRequest = 1,
  /// Global manager's reply: payload = granted power in milliwatts.
  kPowerGrant = 2,
  /// Hardware-Trojan configuration command (paper Fig. 1b, CONFIG_CMD).
  /// The type word's low bits carry the activation signal; options carry
  /// the global manager id and the attacker agents (see core/trojan_config).
  kConfigCmd = 3,
  /// Cache read miss request (GetS).
  kMemReadReq = 4,
  /// Cache write/upgrade miss request (GetM).
  kMemWriteReq = 5,
  /// Data reply carrying a cache line.
  kMemReply = 6,
  /// Coherence invalidation from a directory to a sharer.
  kCohInvalidate = 7,
  /// Invalidation acknowledgement.
  kCohAck = 8,
  /// Dirty-line writeback to the directory / memory.
  kWriteback = 9,
};

[[nodiscard]] const char* to_string(PacketType t) noexcept;

/// Virtual channels are partitioned into two classes to break
/// request/reply protocol deadlock: class 0 carries requests and control
/// traffic, class 1 carries replies/acknowledgements.
[[nodiscard]] constexpr int vc_class_of(PacketType t) noexcept {
  switch (t) {
    case PacketType::kPowerGrant:
    case PacketType::kMemReply:
    case PacketType::kCohAck:
      return 1;
    default:
      return 0;
  }
}

struct Packet;

namespace detail {
/// Shared between a PacketPool and the packets it issued. Outlives the
/// pool while packets are still in flight (e.g. a delivery event captured
/// in the engine after the network was torn down), so a late release can
/// never touch freed pool memory.
struct PoolCore {
  std::vector<Packet*> free;
  /// Every packet currently held by handles, unordered (swap-remove on
  /// dispose; each packet stores its slot in ctrl.live_index). This is
  /// the checkpoint layer's live-packet table: a snapshot enumerates it,
  /// sorts by packet id, and writes every in-flight packet exactly once.
  std::vector<Packet*> live_list;
  std::size_t live = 0;
  bool alive = true;
};
}  // namespace detail

/// Intrusive-refcount bookkeeping inside a Packet. Copying a Packet value
/// clones the payload but never the identity, so the copy starts unowned.
struct PacketControl {
  std::uint32_t refs = 0;
  std::uint32_t live_index = 0;  ///< slot in the pool's live-packet table
  detail::PoolCore* pool = nullptr;

  PacketControl() noexcept = default;
  PacketControl(const PacketControl&) noexcept {}
  PacketControl& operator=(const PacketControl&) noexcept { return *this; }
};

struct Packet {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketType type = PacketType::kGeneric;
  /// 32-bit payload word (power request value for kPowerRequest).
  std::uint32_t payload = 0;
  /// Optional OPTIONS words (attacker list for kConfigCmd, address bits
  /// for memory traffic, ...).
  std::vector<std::uint32_t> options;
  /// Number of flits on the wire, set from packet type at send time.
  int size_flits = 1;
  /// Opaque correlation tag for the memory subsystem (MSHR matching).
  std::uint64_t tag = 0;
  /// Application that generated the packet (bookkeeping for metrics).
  AppId src_app = kInvalidApp;

  Cycle birth = 0;
  Cycle delivered = 0;

  /// Set by a hardware Trojan when it shrinks a victim's payload in flight.
  bool tampered = false;
  /// Set by a hardware Trojan when it inflates an accomplice's payload.
  bool boosted = false;
  std::uint32_t original_payload = 0;

  /// Managed by PacketPtr / PacketPool; not part of the packet's value.
  // json-exempt: pool refcount bookkeeping, reconstructed when the pool re-adopts a deserialized packet
  PacketControl ctrl;

  [[nodiscard]] std::string to_string() const;
};

/// Shared-ownership handle to a Packet (single-threaded refcount; see the
/// file comment). Drop-in for the former std::shared_ptr<Packet> uses.
class PacketPtr {
 public:
  PacketPtr() noexcept = default;
  PacketPtr(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)
  PacketPtr(const PacketPtr& o) noexcept : p_(o.p_) {
    if (p_ != nullptr) ++p_->ctrl.refs;
  }
  PacketPtr(PacketPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  PacketPtr& operator=(const PacketPtr& o) noexcept {
    if (this != &o) {
      Packet* keep = o.p_;
      if (keep != nullptr) ++keep->ctrl.refs;
      release();
      p_ = keep;
    }
    return *this;
  }
  PacketPtr& operator=(PacketPtr&& o) noexcept {
    if (this != &o) {
      release();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~PacketPtr() { release(); }

  /// Wraps a packet whose refcount already accounts for this handle.
  [[nodiscard]] static PacketPtr adopt(Packet* p) noexcept {
    PacketPtr h;
    h.p_ = p;
    return h;
  }

  void reset() noexcept { release(); }
  [[nodiscard]] Packet* get() const noexcept { return p_; }
  [[nodiscard]] Packet& operator*() const noexcept { return *p_; }
  [[nodiscard]] Packet* operator->() const noexcept { return p_; }
  explicit operator bool() const noexcept { return p_ != nullptr; }
  friend bool operator==(const PacketPtr& a, const PacketPtr& b) noexcept {
    return a.p_ == b.p_;
  }
  friend bool operator==(const PacketPtr& a, std::nullptr_t) noexcept {
    return a.p_ == nullptr;
  }

 private:
  void release() noexcept {
    Packet* p = p_;
    p_ = nullptr;
    if (p != nullptr && --p->ctrl.refs == 0) dispose(p);
  }
  static void dispose(Packet* p) noexcept;  // packet.cpp: pool / free

  Packet* p_ = nullptr;
};

/// Recycling arena for packets: `allocate` pops a free-listed packet (its
/// options vector keeps its capacity) or news one; the last PacketPtr
/// returns it here. One pool per MeshNetwork.
class PacketPool {
 public:
  PacketPool() : core_(new detail::PoolCore) {}
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  [[nodiscard]] PacketPtr allocate();

  /// Packets currently held by handles (diagnostics / leak tests).
  [[nodiscard]] std::size_t live() const noexcept { return core_->live; }
  /// Packets parked on the free list.
  [[nodiscard]] std::size_t pooled() const noexcept {
    return core_->free.size();
  }

  /// The live-packet table: every packet currently held by a handle, in
  /// no particular order (checkpoint writers sort by id). Valid only
  /// while the pool is alive.
  [[nodiscard]] const std::vector<Packet*>& live_packets() const noexcept {
    return core_->live_list;
  }

 private:
  detail::PoolCore* core_;
};

/// Standalone packet on the plain heap (tests, ad-hoc tools); freed by the
/// last handle like any other packet.
[[nodiscard]] PacketPtr make_heap_packet();

/// One flit of a packet. All flits of a packet share ownership of the
/// Packet object; only the head flit triggers route computation and
/// inspection, only the tail flit triggers delivery.
struct Flit {
  PacketPtr pkt;
  std::uint16_t index = 0;
  // json-exempt: derived from index and pkt->size_flits by flit_from_json
  bool is_head = false;
  // json-exempt: derived from index and pkt->size_flits by flit_from_json
  bool is_tail = false;
  /// VC assigned on the current link (rewritten hop by hop).
  std::int8_t vc = -1;
};

/// Splits a packet into its flit sequence.
[[nodiscard]] std::vector<Flit> make_flits(PacketPtr pkt);

/// `make_flits` into a caller-owned buffer (cleared first) so a hot caller
/// can reuse one vector's capacity for every packet it serializes.
void make_flits_into(const PacketPtr& pkt, std::vector<Flit>& out);

// ---------------------------------------------------------------------
// Checkpointing (ARCHITECTURE.md §11). A snapshot stores every live
// packet's value fields once (keyed by its stable id) and every flit as
// an {id, index, vc} reference; restore allocates fresh packets, builds
// an id -> handle map, and resolves flit references through it, so the
// shared-ownership graph (and thus the refcounts) re-emerges from the
// holders alone.
// ---------------------------------------------------------------------

/// Maps a saved packet id to the restored handle. Throws on unknown ids
/// (a corrupt snapshot).
using PacketResolver = std::function<PacketPtr(PacketId)>;

/// Value fields only (id through original_payload); ctrl is ownership
/// bookkeeping and never serialized.
[[nodiscard]] json::Value packet_to_json(const Packet& p);
void packet_from_json(Packet& p, const json::Value& v);

[[nodiscard]] json::Value flit_to_json(const Flit& f);
[[nodiscard]] Flit flit_from_json(const json::Value& v,
                                  const PacketResolver& resolve);

}  // namespace htpb::noc
