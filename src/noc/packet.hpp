// Packet and flit formats.
//
// The paper's packet frame (Fig. 1) has a 16-bit source, 16-bit destination,
// 32-bit type word and 32-bit payload, plus an optional OPTIONS field. With
// Table I's 72-bit flits this gives: 1-flit meta packets (coherence/control
// without data), 2-flit command packets (power requests / Trojan
// configuration, which carry the type word and payload) and 5-flit data
// packets (cache-line transfers).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace htpb::noc {

enum class PacketType : std::uint32_t {
  kGeneric = 0,
  /// Power budget request: payload = requested power in milliwatts (paper
  /// Fig. 1a, POWER_REQ).
  kPowerRequest = 1,
  /// Global manager's reply: payload = granted power in milliwatts.
  kPowerGrant = 2,
  /// Hardware-Trojan configuration command (paper Fig. 1b, CONFIG_CMD).
  /// The type word's low bits carry the activation signal; options carry
  /// the global manager id and the attacker agents (see core/trojan_config).
  kConfigCmd = 3,
  /// Cache read miss request (GetS).
  kMemReadReq = 4,
  /// Cache write/upgrade miss request (GetM).
  kMemWriteReq = 5,
  /// Data reply carrying a cache line.
  kMemReply = 6,
  /// Coherence invalidation from a directory to a sharer.
  kCohInvalidate = 7,
  /// Invalidation acknowledgement.
  kCohAck = 8,
  /// Dirty-line writeback to the directory / memory.
  kWriteback = 9,
};

[[nodiscard]] const char* to_string(PacketType t) noexcept;

/// Virtual channels are partitioned into two classes to break
/// request/reply protocol deadlock: class 0 carries requests and control
/// traffic, class 1 carries replies/acknowledgements.
[[nodiscard]] constexpr int vc_class_of(PacketType t) noexcept {
  switch (t) {
    case PacketType::kPowerGrant:
    case PacketType::kMemReply:
    case PacketType::kCohAck:
      return 1;
    default:
      return 0;
  }
}

struct Packet {
  PacketId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketType type = PacketType::kGeneric;
  /// 32-bit payload word (power request value for kPowerRequest).
  std::uint32_t payload = 0;
  /// Optional OPTIONS words (attacker list for kConfigCmd, address bits
  /// for memory traffic, ...).
  std::vector<std::uint32_t> options;
  /// Number of flits on the wire, set from packet type at send time.
  int size_flits = 1;
  /// Opaque correlation tag for the memory subsystem (MSHR matching).
  std::uint64_t tag = 0;
  /// Application that generated the packet (bookkeeping for metrics).
  AppId src_app = kInvalidApp;

  Cycle birth = 0;
  Cycle delivered = 0;

  /// Set by a hardware Trojan when it shrinks a victim's payload in flight.
  bool tampered = false;
  /// Set by a hardware Trojan when it inflates an accomplice's payload.
  bool boosted = false;
  std::uint32_t original_payload = 0;

  [[nodiscard]] std::string to_string() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/// One flit of a packet. All flits of a packet share ownership of the
/// Packet object; only the head flit triggers route computation and
/// inspection, only the tail flit triggers delivery.
struct Flit {
  PacketPtr pkt;
  std::uint16_t index = 0;
  bool is_head = false;
  bool is_tail = false;
  /// VC assigned on the current link (rewritten hop by hop).
  std::int8_t vc = -1;
};

/// Splits a packet into its flit sequence.
[[nodiscard]] std::vector<Flit> make_flits(PacketPtr pkt);

}  // namespace htpb::noc
