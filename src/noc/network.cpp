#include "noc/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::noc {

MeshNetwork::MeshNetwork(sim::Engine& engine, MeshGeometry geom, NocConfig cfg)
    : engine_(engine), geom_(geom), cfg_(cfg),
      routing_(make_routing(cfg.routing)) {
  const int n = geom_.node_count();
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    routers_.push_back(
        std::make_unique<Router>(id, geom_, cfg_, routing_.get()));
    nis_.push_back(std::make_unique<NetworkInterface>(id, cfg_));
  }
  // Wire up mesh connectivity and the neighbour table: a port is connected
  // iff the neighbour exists. Phases 4-5 then hop through the table
  // instead of recomputing coord_of/step/id_of per transfer.
  neighbour_.assign(static_cast<std::size_t>(n) * kNumPorts, -1);
  for (int i = 0; i < n; ++i) {
    const Coord c = geom_.coord_of(static_cast<NodeId>(i));
    for (const Direction d :
         {Direction::kNorth, Direction::kEast, Direction::kSouth,
          Direction::kWest}) {
      const Coord nb = step(c, d);
      const bool in_mesh = geom_.contains(nb);
      routers_[static_cast<std::size_t>(i)]->set_port_connected(d, in_mesh);
      if (in_mesh) {
        neighbour_[static_cast<std::size_t>(i) * kNumPorts + port_index(d)] =
            static_cast<std::int32_t>(geom_.id_of(nb));
      }
    }
  }
  router_active_.assign(static_cast<std::size_t>(n), 0);
  inject_active_.assign(static_cast<std::size_t>(n), 0);
  eject_active_.assign(static_cast<std::size_t>(n), 0);
  engine_.add_tickable(this);
  // Loopback deliveries ride the serializable event path so a snapshot
  // can capture them: the packet parks in pending_local_ and the event
  // descriptor carries (node, packet id).
  engine_.set_handler(
      sim::EventKind::kNocLocalDeliver, -1, [this](const sim::EventDesc& d) {
        const auto it = pending_local_.find(static_cast<PacketId>(d.a));
        assert(it != pending_local_.end() && "loopback packet vanished");
        PacketPtr pkt = std::move(it->second);
        pending_local_.erase(it);
        pkt->delivered = engine_.now();
        record_delivery(*pkt);
        nis_[static_cast<std::size_t>(d.node)]->deliver_local(*pkt);
      });
}

PacketPtr MeshNetwork::make_packet(NodeId src, NodeId dst, PacketType type,
                                   std::uint32_t payload) {
  if (!geom_.contains(src) || !geom_.contains(dst)) {
    throw std::out_of_range("make_packet: node id outside mesh");
  }
  PacketPtr pkt = pool_.allocate();
  pkt->id = next_packet_id_++;
  pkt->src = src;
  pkt->dst = dst;
  pkt->type = type;
  pkt->payload = payload;
  switch (type) {
    case PacketType::kMemReply:
    case PacketType::kWriteback:
    case PacketType::kGeneric:
      pkt->size_flits = cfg_.data_packet_flits;
      break;
    case PacketType::kPowerRequest:
    case PacketType::kPowerGrant:
    case PacketType::kConfigCmd:
      pkt->size_flits = cfg_.command_packet_flits;
      break;
    default:
      pkt->size_flits = cfg_.meta_packet_flits;
      break;
  }
  return pkt;
}

void MeshNetwork::send(PacketPtr pkt) {
  pkt->birth = engine_.now();
  ++stats_.packets_sent;
  if (pkt->src == pkt->dst) {
    // Loopback: the tile's NI short-circuits the mesh with one cycle of
    // latency (local delivery never enters a router).
    const sim::EventDesc desc{sim::EventKind::kNocLocalDeliver,
                              static_cast<std::int32_t>(pkt->src), pkt->id, 0};
    pending_local_.emplace(pkt->id, std::move(pkt));
    engine_.schedule_desc_in(1, desc);
    return;
  }
  const NodeId src = pkt->src;
  nis_[src]->enqueue(std::move(pkt));
  mark_inject_active(src);
}

void MeshNetwork::record_delivery(const Packet& pkt) {
  ++stats_.packets_delivered;
  const auto lat = static_cast<double>(pkt.delivered - pkt.birth);
  stats_.latency_all.add(lat);
  switch (pkt.type) {
    case PacketType::kPowerRequest:
      ++stats_.power_requests_delivered;
      if (pkt.tampered) ++stats_.tampered_power_requests_delivered;
      stats_.latency_power_req.add(lat);
      break;
    case PacketType::kMemReadReq:
    case PacketType::kMemWriteReq:
    case PacketType::kMemReply:
    case PacketType::kWriteback:
      stats_.latency_mem.add(lat);
      break;
    default:
      break;
  }
}

void MeshNetwork::tick(Cycle now) {
  // Every phase walks its active set in ascending node id -- the same
  // order the full 0..N-1 scans used -- so handler invocations, staged
  // transfers and therefore every floating-point stats accumulation
  // happen in the pre-active-set order, bit for bit.

  // Phase 0: drain ejections (handlers may enqueue replies this cycle).
  // The sets stay sorted across compactions; appends from last cycle sit
  // at the tail, so most cycles the is_sorted probe replaces the sort.
  if (!std::is_sorted(active_eject_.begin(), active_eject_.end())) {
    std::sort(active_eject_.begin(), active_eject_.end());
  }
  for (std::size_t k = 0; k < active_eject_.size(); ++k) {
    const NodeId i = active_eject_[k];
    freed_vcs_.clear();
    nis_[i]->tick_eject(now, freed_vcs_);
    for (const int vc : freed_vcs_) {
      routers_[i]->add_output_credit(Direction::kLocal, vc);
    }
  }
  std::erase_if(active_eject_, [this](NodeId i) {
    if (nis_[i]->eject_pending()) return false;
    eject_active_[i] = 0;
    return true;
  });

  // Phase 1: switch allocation / traversal in every active router, staging
  // link transfers and credit returns (applied after all routers
  // evaluated). Phase 2: route computation / VC allocation for newly
  // arrived heads. Later phases may append newly woken routers to the
  // list; those start participating next cycle, exactly like a freshly
  // arrived flit did under the full scan.
  transfers_.clear();
  credits_.clear();
  if (!std::is_sorted(active_routers_.begin(), active_routers_.end())) {
    std::sort(active_routers_.begin(), active_routers_.end());
  }
  const std::size_t n_active = active_routers_.size();
  for (std::size_t k = 0; k < n_active; ++k) {
    routers_[active_routers_[k]]->tick_sa_st(now, transfers_, credits_);
  }
  for (std::size_t k = 0; k < n_active; ++k) {
    routers_[active_routers_[k]]->tick_rc_va(now);
  }

  // Phase 3: NI injection (one flit per node per cycle). Includes NIs that
  // enqueued during phase 0 of this very cycle, as the full scan did.
  if (!std::is_sorted(active_inject_.begin(), active_inject_.end())) {
    std::sort(active_inject_.begin(), active_inject_.end());
  }
  for (std::size_t k = 0; k < active_inject_.size(); ++k) {
    const NodeId i = active_inject_[k];
    Flit flit;
    if (nis_[i]->tick_inject(now, flit)) {
      routers_[i]->accept_flit(Direction::kLocal, flit,
                               now + static_cast<Cycle>(cfg_.link_latency));
      mark_router_active(i);
    }
  }
  std::erase_if(active_inject_, [this](NodeId i) {
    if (nis_[i]->pending_injections() != 0) return false;
    inject_active_[i] = 0;
    return true;
  });

  // Phase 4: apply staged credits (visible next cycle).
  for (const CreditReturn& cr : credits_) {
    if (cr.in_port == Direction::kLocal) {
      nis_[cr.router]->return_credit(cr.vc);
    } else {
      const std::int32_t up =
          neighbour_[static_cast<std::size_t>(cr.router) * kNumPorts +
                     port_index(cr.in_port)];
      assert(up >= 0 && "credit return through a disconnected port");
      routers_[static_cast<std::size_t>(up)]->add_output_credit(
          opposite(cr.in_port), cr.vc);
    }
  }

  // Phase 5: apply staged link transfers (arrive next cycle).
  for (LinkTransfer& tr : transfers_) {
    const Cycle arrival = now + static_cast<Cycle>(cfg_.link_latency);
    if (tr.out_port == Direction::kLocal) {
      if (tr.flit.is_tail) {
        // Record delivery stats when the tail reaches the NI.
        tr.flit.pkt->delivered = arrival;
        record_delivery(*tr.flit.pkt);
      }
      nis_[tr.from_router]->eject(tr.flit, arrival);
      mark_eject_active(tr.from_router);
    } else {
      const std::int32_t next =
          neighbour_[static_cast<std::size_t>(tr.from_router) * kNumPorts +
                     port_index(tr.out_port)];
      assert(next >= 0 && "transfer through a disconnected port");
      routers_[static_cast<std::size_t>(next)]->accept_flit(
          opposite(tr.out_port), tr.flit, arrival);
      mark_router_active(static_cast<NodeId>(next));
    }
  }

  // Routers that went fully quiet leave the active set; anything that
  // received a flit in phases 3/5 has buffered flits and stays.
  std::erase_if(active_routers_, [this](NodeId i) {
    if (routers_[i]->buffered_flits() != 0) return false;
    router_active_[i] = 0;
    return true;
  });

  // The staged sets were consumed by phases 4/5; leave them empty so the
  // between-cycles invariant save_state checks actually holds at every
  // cycle boundary (clear() keeps capacity, so this costs nothing).
  transfers_.clear();
  credits_.clear();
}

bool MeshNetwork::idle() const noexcept {
  // Routers with buffered flits and NIs with pending injections are
  // always members of their active set (marked on accept/enqueue, removed
  // only once empty), so checking the sets equals the old full scans.
  for (const NodeId i : active_routers_) {
    if (routers_[i]->buffered_flits() != 0) return false;
  }
  for (const NodeId i : active_inject_) {
    if (nis_[i]->pending_injections() != 0) return false;
  }
  return true;
}

json::Value MeshNetwork::save_state() const {
  if (!transfers_.empty() || !credits_.empty()) {
    throw std::runtime_error(
        "MeshNetwork::save_state: staged transfers pending; snapshots are "
        "valid between cycles only");
  }
  json::Object o;

  std::vector<const Packet*> live(pool_.live_packets().begin(),
                                  pool_.live_packets().end());
  std::sort(live.begin(), live.end(),
            [](const Packet* a, const Packet* b) { return a->id < b->id; });
  json::Array packets;
  for (const Packet* p : live) packets.push_back(packet_to_json(*p));
  o["packets"] = json::Value(std::move(packets));
  o["next_packet_id"] = common::ju64(next_packet_id_);

  json::Array routers;
  for (const auto& r : routers_) routers.push_back(r->save_state());
  o["routers"] = json::Value(std::move(routers));
  json::Array nis;
  for (const auto& ni : nis_) nis.push_back(ni->save_state());
  o["nis"] = json::Value(std::move(nis));

  json::Array pending_local;
  for (const auto& [id, pkt] : pending_local_) {
    pending_local.push_back(common::ju64(id));
  }
  o["pending_local"] = json::Value(std::move(pending_local));

  const auto node_list = [](const std::vector<NodeId>& ids) {
    json::Array a;
    for (const NodeId i : ids) a.push_back(json::Value(static_cast<long long>(i)));
    return json::Value(std::move(a));
  };
  o["active_routers"] = node_list(active_routers_);
  o["active_inject"] = node_list(active_inject_);
  o["active_eject"] = node_list(active_eject_);

  json::Object stats;
  stats["packets_sent"] = common::ju64(stats_.packets_sent);
  stats["packets_delivered"] = common::ju64(stats_.packets_delivered);
  stats["power_requests_delivered"] =
      common::ju64(stats_.power_requests_delivered);
  stats["tampered_power_requests_delivered"] =
      common::ju64(stats_.tampered_power_requests_delivered);
  stats["latency_all"] = common::stat_to_json(stats_.latency_all);
  stats["latency_power_req"] = common::stat_to_json(stats_.latency_power_req);
  stats["latency_mem"] = common::stat_to_json(stats_.latency_mem);
  o["stats"] = json::Value(std::move(stats));
  return json::Value(std::move(o));
}

void MeshNetwork::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();

  // Fresh packets first: holders below resolve flit references through
  // this map, and the refcount graph re-emerges from the holders alone.
  // Old packets are released as each holder's load clears it.
  std::unordered_map<PacketId, PacketPtr> restored;
  for (const json::Value& pv : o.find("packets")->as_array()) {
    PacketPtr p = pool_.allocate();
    packet_from_json(*p, pv);
    const PacketId id = p->id;
    restored.emplace(id, std::move(p));
  }
  const PacketResolver resolve = [&restored](PacketId id) {
    const auto it = restored.find(id);
    if (it == restored.end()) {
      throw std::runtime_error("MeshNetwork::load_state: unknown packet id " +
                               std::to_string(id));
    }
    return it->second;
  };
  next_packet_id_ = static_cast<PacketId>(common::pu64(*o.find("next_packet_id")));

  pending_local_.clear();
  for (const json::Value& idv : o.find("pending_local")->as_array()) {
    const auto id = static_cast<PacketId>(common::pu64(idv));
    pending_local_.emplace(id, resolve(id));
  }

  const json::Array& routers = o.find("routers")->as_array();
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    routers_[i]->load_state(routers.at(i), resolve);
  }
  const json::Array& nis = o.find("nis")->as_array();
  for (std::size_t i = 0; i < nis_.size(); ++i) {
    nis_[i]->load_state(nis.at(i), resolve);
  }

  const auto load_set = [&](const char* key, std::vector<NodeId>& ids,
                            std::vector<std::uint8_t>& flags) {
    ids.clear();
    std::fill(flags.begin(), flags.end(), 0);
    for (const json::Value& iv : o.find(key)->as_array()) {
      const auto id = static_cast<NodeId>(iv.as_int());
      ids.push_back(id);
      flags[id] = 1;
    }
  };
  load_set("active_routers", active_routers_, router_active_);
  load_set("active_inject", active_inject_, inject_active_);
  load_set("active_eject", active_eject_, eject_active_);

  transfers_.clear();
  credits_.clear();
  freed_vcs_.clear();

  const json::Object& stats = o.find("stats")->as_object();
  stats_.packets_sent = common::pu64(*stats.find("packets_sent"));
  stats_.packets_delivered = common::pu64(*stats.find("packets_delivered"));
  stats_.power_requests_delivered =
      common::pu64(*stats.find("power_requests_delivered"));
  stats_.tampered_power_requests_delivered =
      common::pu64(*stats.find("tampered_power_requests_delivered"));
  common::stat_from_json(stats_.latency_all, *stats.find("latency_all"));
  common::stat_from_json(stats_.latency_power_req,
                         *stats.find("latency_power_req"));
  common::stat_from_json(stats_.latency_mem, *stats.find("latency_mem"));
}

RouterStats MeshNetwork::total_router_stats() const {
  RouterStats total;
  for (const auto& r : routers_) {
    const RouterStats& s = r->stats();
    total.flits_forwarded += s.flits_forwarded;
    total.packets_routed += s.packets_routed;
    total.power_requests_seen += s.power_requests_seen;
    total.flits_ejected += s.flits_ejected;
    total.sa_conflict_stalls += s.sa_conflict_stalls;
    total.va_stalls += s.va_stalls;
  }
  return total;
}

}  // namespace htpb::noc
