#include "noc/network.hpp"

#include <cassert>
#include <stdexcept>

namespace htpb::noc {

MeshNetwork::MeshNetwork(sim::Engine& engine, MeshGeometry geom, NocConfig cfg)
    : engine_(engine), geom_(geom), cfg_(cfg),
      routing_(make_routing(cfg.routing)) {
  const int n = geom_.node_count();
  routers_.reserve(static_cast<std::size_t>(n));
  nis_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(i);
    routers_.push_back(
        std::make_unique<Router>(id, geom_, cfg_, routing_.get()));
    nis_.push_back(std::make_unique<NetworkInterface>(id, cfg_));
  }
  // Wire up mesh connectivity: a port is connected iff the neighbour exists.
  for (int i = 0; i < n; ++i) {
    const Coord c = geom_.coord_of(static_cast<NodeId>(i));
    for (const Direction d :
         {Direction::kNorth, Direction::kEast, Direction::kSouth,
          Direction::kWest}) {
      routers_[static_cast<std::size_t>(i)]->set_port_connected(
          d, geom_.contains(step(c, d)));
    }
  }
  engine_.add_tickable(this);
}

PacketPtr MeshNetwork::make_packet(NodeId src, NodeId dst, PacketType type,
                                   std::uint32_t payload) {
  if (!geom_.contains(src) || !geom_.contains(dst)) {
    throw std::out_of_range("make_packet: node id outside mesh");
  }
  auto pkt = std::make_shared<Packet>();
  pkt->id = next_packet_id_++;
  pkt->src = src;
  pkt->dst = dst;
  pkt->type = type;
  pkt->payload = payload;
  switch (type) {
    case PacketType::kMemReply:
    case PacketType::kWriteback:
    case PacketType::kGeneric:
      pkt->size_flits = cfg_.data_packet_flits;
      break;
    case PacketType::kPowerRequest:
    case PacketType::kPowerGrant:
    case PacketType::kConfigCmd:
      pkt->size_flits = cfg_.command_packet_flits;
      break;
    default:
      pkt->size_flits = cfg_.meta_packet_flits;
      break;
  }
  return pkt;
}

void MeshNetwork::send(PacketPtr pkt) {
  pkt->birth = engine_.now();
  ++stats_.packets_sent;
  if (pkt->src == pkt->dst) {
    // Loopback: the tile's NI short-circuits the mesh with one cycle of
    // latency (local delivery never enters a router).
    NetworkInterface* ni = nis_[pkt->src].get();
    engine_.schedule_in(1, [this, ni, pkt] {
      pkt->delivered = engine_.now();
      record_delivery(*pkt);
      ni->deliver_local(*pkt);
    });
    return;
  }
  nis_[pkt->src]->enqueue(std::move(pkt));
}

void MeshNetwork::record_delivery(const Packet& pkt) {
  ++stats_.packets_delivered;
  const auto lat = static_cast<double>(pkt.delivered - pkt.birth);
  stats_.latency_all.add(lat);
  switch (pkt.type) {
    case PacketType::kPowerRequest:
      ++stats_.power_requests_delivered;
      if (pkt.tampered) ++stats_.tampered_power_requests_delivered;
      stats_.latency_power_req.add(lat);
      break;
    case PacketType::kMemReadReq:
    case PacketType::kMemWriteReq:
    case PacketType::kMemReply:
    case PacketType::kWriteback:
      stats_.latency_mem.add(lat);
      break;
    default:
      break;
  }
}

void MeshNetwork::tick(Cycle now) {
  // Phase 0: drain ejections (handlers may enqueue replies this cycle).
  for (std::size_t i = 0; i < nis_.size(); ++i) {
    freed_vcs_.clear();
    nis_[i]->tick_eject(now, freed_vcs_);
    for (const int vc : freed_vcs_) {
      routers_[i]->add_output_credit(Direction::kLocal, vc);
    }
  }

  // Phase 1: switch allocation / traversal in every router, staging link
  // transfers and credit returns (applied after all routers evaluated).
  transfers_.clear();
  credits_.clear();
  for (auto& r : routers_) r->tick_sa_st(now, transfers_, credits_);

  // Phase 2: route computation / VC allocation for newly arrived heads.
  for (auto& r : routers_) r->tick_rc_va(now);

  // Phase 3: NI injection (one flit per node per cycle).
  for (std::size_t i = 0; i < nis_.size(); ++i) {
    Flit flit;
    if (nis_[i]->tick_inject(now, flit)) {
      routers_[i]->accept_flit(
          Direction::kLocal, flit,
          now + static_cast<Cycle>(cfg_.link_latency));
    }
  }

  // Phase 4: apply staged credits (visible next cycle).
  for (const CreditReturn& cr : credits_) {
    if (cr.in_port == Direction::kLocal) {
      nis_[cr.router]->return_credit(cr.vc);
    } else {
      const Coord up = step(geom_.coord_of(cr.router), cr.in_port);
      routers_[geom_.id_of(up)]->add_output_credit(opposite(cr.in_port),
                                                   cr.vc);
    }
  }

  // Phase 5: apply staged link transfers (arrive next cycle).
  for (LinkTransfer& tr : transfers_) {
    const Cycle arrival = now + static_cast<Cycle>(cfg_.link_latency);
    if (tr.out_port == Direction::kLocal) {
      if (tr.flit.is_tail) {
        // Record delivery stats when the tail reaches the NI.
        tr.flit.pkt->delivered = arrival;
        record_delivery(*tr.flit.pkt);
      }
      nis_[tr.from_router]->eject(tr.flit, arrival);
    } else {
      const Coord next = step(geom_.coord_of(tr.from_router), tr.out_port);
      routers_[geom_.id_of(next)]->accept_flit(opposite(tr.out_port), tr.flit,
                                               arrival);
    }
  }
}

bool MeshNetwork::idle() const noexcept {
  for (const auto& r : routers_) {
    if (r->buffered_flits() != 0) return false;
  }
  for (const auto& ni : nis_) {
    if (ni->pending_injections() != 0) return false;
  }
  return true;
}

RouterStats MeshNetwork::total_router_stats() const {
  RouterStats total;
  for (const auto& r : routers_) {
    const RouterStats& s = r->stats();
    total.flits_forwarded += s.flits_forwarded;
    total.packets_routed += s.packets_routed;
    total.power_requests_seen += s.power_requests_seen;
    total.flits_ejected += s.flits_ejected;
    total.sa_conflict_stalls += s.sa_conflict_stalls;
    total.va_stalls += s.va_stalls;
  }
  return total;
}

}  // namespace htpb::noc
