#include "noc/routing.hpp"

#include <stdexcept>

namespace htpb::noc {

Direction XyRouting::select(const RouteQuery& q) const {
  if (q.dst.x > q.here.x) return Direction::kEast;
  if (q.dst.x < q.here.x) return Direction::kWest;
  if (q.dst.y > q.here.y) return Direction::kSouth;
  if (q.dst.y < q.here.y) return Direction::kNorth;
  return Direction::kLocal;
}

Direction WestFirstAdaptiveRouting::select(const RouteQuery& q) const {
  const int dx = q.dst.x - q.here.x;
  const int dy = q.dst.y - q.here.y;
  if (dx == 0 && dy == 0) return Direction::kLocal;
  // West-first: any westward component must be consumed first and is
  // non-adaptive (the turn model forbids turning into west).
  if (dx < 0) return Direction::kWest;
  if (dx == 0) return dy > 0 ? Direction::kSouth : Direction::kNorth;
  if (dy == 0) return Direction::kEast;
  // Both east and one of north/south are productive: adapt on credits.
  const Direction vertical = dy > 0 ? Direction::kSouth : Direction::kNorth;
  const int credits_east = q.free_credits[port_index(Direction::kEast)];
  const int credits_vert = q.free_credits[port_index(vertical)];
  return credits_east >= credits_vert ? Direction::kEast : vertical;
}

std::unique_ptr<RoutingAlgorithm> make_routing(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kXY:
      return std::make_unique<XyRouting>();
    case RoutingKind::kWestFirstAdaptive:
      return std::make_unique<WestFirstAdaptiveRouting>();
  }
  throw std::invalid_argument("make_routing: unknown RoutingKind");
}

bool xy_route_passes_through(Coord src, Coord dst, Coord via) {
  // XY: move along x at y == src.y, then along y at x == dst.x.
  const int xlo = src.x < dst.x ? src.x : dst.x;
  const int xhi = src.x < dst.x ? dst.x : src.x;
  if (via.y == src.y && via.x >= xlo && via.x <= xhi) return true;
  const int ylo = src.y < dst.y ? src.y : dst.y;
  const int yhi = src.y < dst.y ? dst.y : src.y;
  if (via.x == dst.x && via.y >= ylo && via.y <= yhi) return true;
  return false;
}

}  // namespace htpb::noc
