// Inspection hook between a router's input buffer and its routing
// computation stage -- exactly where the paper's hardware Trojan sits
// (Fig. 2b). The router calls the chain once per packet, on the head
// flit's first route-computation attempt. Inspectors may mutate the
// packet in place (false-data injection).
#pragma once

#include "common/types.hpp"
#include "noc/packet.hpp"

namespace htpb::noc {

class PacketInspector {
 public:
  virtual ~PacketInspector() = default;

  /// Called when `pkt`'s head flit enters route computation in router
  /// `router`. Mutating `payload` models in-flight tampering; honest
  /// routers have no inspectors.
  virtual void inspect(Packet& pkt, NodeId router, Cycle now) = 0;
};

}  // namespace htpb::noc
