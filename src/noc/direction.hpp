// Port directions of a 5-port 2D-mesh router.
#pragma once

#include <array>
#include <cstdint>

#include "common/geometry.hpp"

namespace htpb::noc {

enum class Direction : std::uint8_t {
  kLocal = 0,
  kNorth = 1,
  kEast = 2,
  kSouth = 3,
  kWest = 4,
};

inline constexpr int kNumPorts = 5;

[[nodiscard]] constexpr int port_index(Direction d) noexcept {
  return static_cast<int>(d);
}

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return Direction::kSouth;
    case Direction::kSouth: return Direction::kNorth;
    case Direction::kEast: return Direction::kWest;
    case Direction::kWest: return Direction::kEast;
    case Direction::kLocal: return Direction::kLocal;
  }
  return Direction::kLocal;
}

/// Coordinate displacement of one hop in the given direction.
/// North decreases y (row 0 is the top of the chip).
[[nodiscard]] constexpr Coord step(Coord c, Direction d) noexcept {
  switch (d) {
    case Direction::kNorth: return Coord{c.x, c.y - 1};
    case Direction::kSouth: return Coord{c.x, c.y + 1};
    case Direction::kEast: return Coord{c.x + 1, c.y};
    case Direction::kWest: return Coord{c.x - 1, c.y};
    case Direction::kLocal: return c;
  }
  return c;
}

[[nodiscard]] constexpr const char* to_string(Direction d) noexcept {
  switch (d) {
    case Direction::kLocal: return "L";
    case Direction::kNorth: return "N";
    case Direction::kEast: return "E";
    case Direction::kSouth: return "S";
    case Direction::kWest: return "W";
  }
  return "?";
}

inline constexpr std::array<Direction, kNumPorts> kAllPorts = {
    Direction::kLocal, Direction::kNorth, Direction::kEast, Direction::kSouth,
    Direction::kWest};

}  // namespace htpb::noc
