// Routing algorithms. The router asks the algorithm for an output port for
// each head flit; adaptive algorithms also see downstream credit
// availability per candidate port.
#pragma once

#include <array>
#include <memory>

#include "common/geometry.hpp"
#include "noc/config.hpp"
#include "noc/direction.hpp"

namespace htpb::noc {

struct RouteQuery {
  Coord here;
  Coord dst;
  /// Free downstream credits per output port for the packet's VC class
  /// (sum over the class's VCs); used by adaptive algorithms only.
  std::array<int, kNumPorts> free_credits{};
  int vc_class = 0;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;
  /// Returns the output port; kLocal when here == dst.
  [[nodiscard]] virtual Direction select(const RouteQuery& q) const = 0;
  [[nodiscard]] virtual const char* name() const noexcept = 0;
  /// True when select() reads RouteQuery::free_credits; deterministic
  /// algorithms return false so the router can skip gathering them.
  [[nodiscard]] virtual bool uses_credits() const noexcept { return false; }
};

/// Deterministic XY dimension-order routing: exhaust X first, then Y.
class XyRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] Direction select(const RouteQuery& q) const override;
  [[nodiscard]] const char* name() const noexcept override { return "XY"; }
};

/// West-first minimal adaptive routing (turn model): if the destination is
/// to the west, the packet must go fully west first (deterministic); all
/// other quadrants may adapt between the productive ports, picking the one
/// with more free credits (ties broken toward X to mimic XY).
class WestFirstAdaptiveRouting final : public RoutingAlgorithm {
 public:
  [[nodiscard]] Direction select(const RouteQuery& q) const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "WestFirstAdaptive";
  }
  [[nodiscard]] bool uses_credits() const noexcept override { return true; }
};

[[nodiscard]] std::unique_ptr<RoutingAlgorithm> make_routing(RoutingKind kind);

/// True iff the XY route from src to dst passes through `via` (inclusive
/// of endpoints). Used by the analytic infection-rate estimator.
[[nodiscard]] bool xy_route_passes_through(Coord src, Coord dst, Coord via);

}  // namespace htpb::noc
