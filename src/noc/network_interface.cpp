#include "noc/network_interface.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::noc {

NetworkInterface::NetworkInterface(NodeId id, const NocConfig& cfg)
    : id_(id), cfg_(cfg),
      credits_(static_cast<std::size_t>(cfg.vcs), cfg.vc_depth) {}

void NetworkInterface::enqueue(PacketPtr pkt) {
  const int cls = vc_class_of(pkt->type);
  auto& state = classes_[cls];
  state.queue.push_back(std::move(pkt));
  const std::size_t depth = pending_injections();
  stats_.inject_queue_peak = std::max<std::uint64_t>(stats_.inject_queue_peak, depth);
}

std::size_t NetworkInterface::pending_injections() const noexcept {
  std::size_t n = classes_[0].queue.size() + classes_[1].queue.size();
  for (const auto& cls : classes_) {
    if (!cls.flits.empty()) ++n;
  }
  return n;
}

bool NetworkInterface::try_inject_class(int cls, Flit& out) {
  ClassState& state = classes_[cls];
  if (state.flits.empty()) {
    if (state.queue.empty()) return false;
    // Start a new packet: pick a VC of this class round-robin. The NI may
    // keep one packet in flight per class; flits of one packet always use
    // one VC (wormhole).
    const int base = cfg_.class_base(cls);
    const int span = cfg_.vcs_per_class();
    state.vc = base + state.rr_vc % span;
    state.rr_vc = (state.rr_vc + 1) % span;
    make_flits_into(state.queue.front(), state.flits);
    state.queue.pop_front();
    state.cursor = 0;
    for (auto& f : state.flits) f.vc = static_cast<std::int8_t>(state.vc);
  }
  if (credits_[static_cast<std::size_t>(state.vc)] <= 0) return false;
  out = state.flits[state.cursor];
  --credits_[static_cast<std::size_t>(state.vc)];
  ++state.cursor;
  ++stats_.flits_injected;
  if (state.cursor == state.flits.size()) {
    ++stats_.packets_injected;
    state.flits.clear();
    state.cursor = 0;
    state.vc = -1;
  }
  return true;
}

bool NetworkInterface::tick_inject(Cycle /*now*/, Flit& out) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int cls = (rr_class_ + attempt) % 2;
    if (try_inject_class(cls, out)) {
      rr_class_ = (cls + 1) % 2;
      return true;
    }
  }
  return false;
}

void NetworkInterface::eject(const Flit& flit, Cycle arrival) {
  eject_queue_.push_back(EjectedFlit{flit, arrival});
}

void NetworkInterface::tick_eject(Cycle now, std::vector<int>& freed_vcs) {
  while (!eject_queue_.empty() && eject_queue_.front().arrival <= now) {
    EjectedFlit entry = std::move(eject_queue_.front());
    eject_queue_.pop_front();
    freed_vcs.push_back(entry.flit.vc);
    if (entry.flit.is_tail) {
      Packet& pkt = *entry.flit.pkt;
      pkt.delivered = now;
      ++stats_.packets_delivered;
      if (handler_) handler_(pkt);
    }
  }
}

void NetworkInterface::deliver_local(const Packet& pkt) {
  ++stats_.packets_delivered;
  if (handler_) handler_(pkt);
}

json::Value NetworkInterface::save_state() const {
  json::Object o;
  json::Array credits;
  for (const int c : credits_) {
    credits.push_back(json::Value(static_cast<long long>(c)));
  }
  o["credits"] = json::Value(std::move(credits));
  o["rr_class"] = json::Value(static_cast<long long>(rr_class_));
  json::Array classes;
  for (const ClassState& cls : classes_) {
    json::Object co;
    json::Array queue;
    for (std::size_t i = 0; i < cls.queue.size(); ++i) {
      queue.push_back(common::ju64(cls.queue.at(i)->id));
    }
    co["queue"] = json::Value(std::move(queue));
    json::Array flits;
    for (const Flit& f : cls.flits) flits.push_back(flit_to_json(f));
    co["flits"] = json::Value(std::move(flits));
    co["cursor"] = json::Value(static_cast<long long>(cls.cursor));
    co["vc"] = json::Value(static_cast<long long>(cls.vc));
    co["rr_vc"] = json::Value(static_cast<long long>(cls.rr_vc));
    classes.push_back(json::Value(std::move(co)));
  }
  o["classes"] = json::Value(std::move(classes));
  json::Array eject;
  for (std::size_t i = 0; i < eject_queue_.size(); ++i) {
    const EjectedFlit& e = eject_queue_.at(i);
    json::Array a;
    a.push_back(flit_to_json(e.flit));
    a.push_back(common::ju64(e.arrival));
    eject.push_back(json::Value(std::move(a)));
  }
  o["eject"] = json::Value(std::move(eject));
  json::Object stats;
  stats["packets_injected"] = common::ju64(stats_.packets_injected);
  stats["packets_delivered"] = common::ju64(stats_.packets_delivered);
  stats["flits_injected"] = common::ju64(stats_.flits_injected);
  stats["inject_queue_peak"] = common::ju64(stats_.inject_queue_peak);
  o["stats"] = json::Value(std::move(stats));
  return json::Value(std::move(o));
}

void NetworkInterface::load_state(const json::Value& v,
                                  const PacketResolver& resolve) {
  const json::Object& o = v.as_object();
  const json::Array& credits = o.find("credits")->as_array();
  credits_.assign(credits.size(), 0);
  for (std::size_t i = 0; i < credits.size(); ++i) {
    credits_[i] = static_cast<int>(credits[i].as_int());
  }
  rr_class_ = static_cast<int>(o.find("rr_class")->as_int());
  const json::Array& classes = o.find("classes")->as_array();
  for (int c = 0; c < 2; ++c) {
    ClassState& cls = classes_[c];
    const json::Object& co = classes.at(static_cast<std::size_t>(c)).as_object();
    cls.queue.clear();
    for (const json::Value& idv : co.find("queue")->as_array()) {
      cls.queue.push_back(resolve(static_cast<PacketId>(common::pu64(idv))));
    }
    cls.flits.clear();
    for (const json::Value& fv : co.find("flits")->as_array()) {
      cls.flits.push_back(flit_from_json(fv, resolve));
    }
    cls.cursor = static_cast<std::size_t>(co.find("cursor")->as_int());
    cls.vc = static_cast<int>(co.find("vc")->as_int());
    cls.rr_vc = static_cast<int>(co.find("rr_vc")->as_int());
  }
  eject_queue_.clear();
  for (const json::Value& ev : o.find("eject")->as_array()) {
    const json::Array& a = ev.as_array();
    EjectedFlit e;
    e.flit = flit_from_json(a.at(0), resolve);
    e.arrival = common::pu64(a.at(1));
    eject_queue_.push_back(std::move(e));
  }
  const json::Object& stats = o.find("stats")->as_object();
  stats_.packets_injected = common::pu64(*stats.find("packets_injected"));
  stats_.packets_delivered = common::pu64(*stats.find("packets_delivered"));
  stats_.flits_injected = common::pu64(*stats.find("flits_injected"));
  stats_.inject_queue_peak = common::pu64(*stats.find("inject_queue_peak"));
}

}  // namespace htpb::noc
