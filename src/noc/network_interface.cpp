#include "noc/network_interface.hpp"

#include <algorithm>
#include <cassert>

namespace htpb::noc {

NetworkInterface::NetworkInterface(NodeId id, const NocConfig& cfg)
    : id_(id), cfg_(cfg),
      credits_(static_cast<std::size_t>(cfg.vcs), cfg.vc_depth) {}

void NetworkInterface::enqueue(PacketPtr pkt) {
  const int cls = vc_class_of(pkt->type);
  auto& state = classes_[cls];
  state.queue.push_back(std::move(pkt));
  const std::size_t depth = pending_injections();
  stats_.inject_queue_peak = std::max<std::uint64_t>(stats_.inject_queue_peak, depth);
}

std::size_t NetworkInterface::pending_injections() const noexcept {
  std::size_t n = classes_[0].queue.size() + classes_[1].queue.size();
  for (const auto& cls : classes_) {
    if (!cls.flits.empty()) ++n;
  }
  return n;
}

bool NetworkInterface::try_inject_class(int cls, Flit& out) {
  ClassState& state = classes_[cls];
  if (state.flits.empty()) {
    if (state.queue.empty()) return false;
    // Start a new packet: pick a VC of this class round-robin. The NI may
    // keep one packet in flight per class; flits of one packet always use
    // one VC (wormhole).
    const int base = cfg_.class_base(cls);
    const int span = cfg_.vcs_per_class();
    state.vc = base + state.rr_vc % span;
    state.rr_vc = (state.rr_vc + 1) % span;
    make_flits_into(state.queue.front(), state.flits);
    state.queue.pop_front();
    state.cursor = 0;
    for (auto& f : state.flits) f.vc = static_cast<std::int8_t>(state.vc);
  }
  if (credits_[static_cast<std::size_t>(state.vc)] <= 0) return false;
  out = state.flits[state.cursor];
  --credits_[static_cast<std::size_t>(state.vc)];
  ++state.cursor;
  ++stats_.flits_injected;
  if (state.cursor == state.flits.size()) {
    ++stats_.packets_injected;
    state.flits.clear();
    state.cursor = 0;
    state.vc = -1;
  }
  return true;
}

bool NetworkInterface::tick_inject(Cycle /*now*/, Flit& out) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int cls = (rr_class_ + attempt) % 2;
    if (try_inject_class(cls, out)) {
      rr_class_ = (cls + 1) % 2;
      return true;
    }
  }
  return false;
}

void NetworkInterface::eject(const Flit& flit, Cycle arrival) {
  eject_queue_.push_back(EjectedFlit{flit, arrival});
}

void NetworkInterface::tick_eject(Cycle now, std::vector<int>& freed_vcs) {
  while (!eject_queue_.empty() && eject_queue_.front().arrival <= now) {
    EjectedFlit entry = std::move(eject_queue_.front());
    eject_queue_.pop_front();
    freed_vcs.push_back(entry.flit.vc);
    if (entry.flit.is_tail) {
      Packet& pkt = *entry.flit.pkt;
      pkt.delivered = now;
      ++stats_.packets_delivered;
      if (handler_) handler_(pkt);
    }
  }
}

void NetworkInterface::deliver_local(const Packet& pkt) {
  ++stats_.packets_delivered;
  if (handler_) handler_(pkt);
}

}  // namespace htpb::noc
