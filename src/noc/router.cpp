#include "noc/router.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::noc {

namespace {

json::Value router_stats_to_json(const RouterStats& s) {
  json::Object o;
  o["flits_forwarded"] = common::ju64(s.flits_forwarded);
  o["packets_routed"] = common::ju64(s.packets_routed);
  o["power_requests_seen"] = common::ju64(s.power_requests_seen);
  o["flits_ejected"] = common::ju64(s.flits_ejected);
  o["sa_conflict_stalls"] = common::ju64(s.sa_conflict_stalls);
  o["va_stalls"] = common::ju64(s.va_stalls);
  return json::Value(std::move(o));
}

RouterStats router_stats_from_json(const json::Value& v) {
  const json::Object& o = v.as_object();
  RouterStats s;
  s.flits_forwarded = common::pu64(*o.find("flits_forwarded"));
  s.packets_routed = common::pu64(*o.find("packets_routed"));
  s.power_requests_seen = common::pu64(*o.find("power_requests_seen"));
  s.flits_ejected = common::pu64(*o.find("flits_ejected"));
  s.sa_conflict_stalls = common::pu64(*o.find("sa_conflict_stalls"));
  s.va_stalls = common::pu64(*o.find("va_stalls"));
  return s;
}

}  // namespace

Router::Router(NodeId id, const MeshGeometry& geom, const NocConfig& cfg,
               const RoutingAlgorithm* routing)
    : id_(id), geom_(geom), coord_(geom.coord_of(id)), cfg_(cfg),
      routing_(routing),
      routing_uses_credits_(routing != nullptr && routing->uses_credits()) {
  if (cfg_.vcs < 2 || cfg_.vcs % 2 != 0) {
    throw std::invalid_argument("Router: vcs must be even and >= 2");
  }
  if (cfg_.vcs > kMaxVcs || cfg_.vc_depth > kMaxVcDepth) {
    throw std::invalid_argument(
        "Router: vcs/vc_depth exceed the inline-storage caps "
        "(kMaxVcs/kMaxVcDepth in noc/config.hpp)");
  }
  for (auto& port : out_) {
    for (int v = 0; v < cfg_.vcs; ++v) {
      port.vcs[static_cast<std::size_t>(v)].credits = cfg_.vc_depth;
    }
  }
  out_[port_index(Direction::kLocal)].connected = true;
}

void Router::set_port_connected(Direction p, bool connected) {
  out_[port_index(p)].connected = connected;
}

void Router::accept_flit(Direction in_port, const Flit& flit, Cycle arrival) {
  InputPort& iport = in_[port_index(in_port)];
  InputVc& ivc = iport.vcs[static_cast<std::size_t>(flit.vc)];
  assert(ivc.fifo.size() < cfg_.vc_depth &&
         "credit protocol violated: input buffer overflow");
  // A head landing at the front of an idle VC starts waiting for RC.
  if (!ivc.active && ivc.fifo.empty() && flit.is_head) {
    ++iport.rc_pending;
    ++rc_pending_total_;
  }
  ivc.fifo.push_back(BufferedFlit{flit, arrival, false});
  ++buffered_flits_;
}

int Router::free_credits_for_class(Direction p, int vc_class) const noexcept {
  const OutputPort& port = out_[port_index(p)];
  if (!port.connected) return -1;
  int sum = 0;
  const int base = cfg_.class_base(vc_class);
  for (int v = base; v < base + cfg_.vcs_per_class(); ++v) {
    sum += port.vcs[static_cast<std::size_t>(v)].credits;
  }
  return sum;
}

void Router::tick_sa_st(Cycle now, std::vector<LinkTransfer>& transfers,
                        std::vector<CreditReturn>& credits) {
  if (buffered_flits_ == 0) return;
  const int candidates = kNumPorts * cfg_.vcs;
  bool input_used[kNumPorts] = {false, false, false, false, false};

  for (int pi = 0; pi < kNumPorts; ++pi) {
    OutputPort& oport = out_[pi];
    if (!oport.connected || oport.active_inputs == 0) continue;
    const auto out_dir = static_cast<Direction>(pi);

    // Order the routed input VCs by circular distance from rr_candidate.
    // Evaluating them in that order is exactly the old full scan over all
    // (in_port, vc) combinations -- unrouted combinations had no effect --
    // so grants and conflict-stall counts stay bit-identical.
    const int n = oport.active_inputs;
    SaCandidate ord[kNumPorts * kMaxVcs];
    int ord_dist[kNumPorts * kMaxVcs];
    for (int i = 0; i < n; ++i) {
      const SaCandidate sc = oport.routed[static_cast<std::size_t>(i)];
      int dist = static_cast<int>(sc.cand) - oport.rr_candidate;
      if (dist < 0) dist += candidates;
      int j = i;
      while (j > 0 && ord_dist[j - 1] > dist) {
        ord[j] = ord[j - 1];
        ord_dist[j] = ord_dist[j - 1];
        --j;
      }
      ord[j] = sc;
      ord_dist[j] = dist;
    }

    for (int k = 0; k < n; ++k) {
      const SaCandidate sc = ord[k];
      const int in_pi = sc.in_port;
      const int in_vc = sc.in_vc;
      if (input_used[in_pi]) continue;
      InputVc& ivc = in_[in_pi].vcs[static_cast<std::size_t>(in_vc)];
      assert(ivc.active && ivc.out_port == out_dir);
      if (ivc.fifo.empty()) continue;

      const BufferedFlit& front = ivc.fifo.front();
      // The flit spends cfg_.router_latency cycles in this router before it
      // may traverse the switch.
      if (now < front.arrival + static_cast<Cycle>(cfg_.router_latency)) {
        continue;
      }
      OutputVc& ovc = oport.vcs[static_cast<std::size_t>(ivc.out_vc)];
      if (ovc.credits <= 0) {
        ++stats_.sa_conflict_stalls;
        continue;
      }

      // Grant: move the flit through the crossbar onto the link.
      Flit flit = front.flit;
      flit.vc = static_cast<std::int8_t>(ivc.out_vc);
      ivc.fifo.pop_front();
      --buffered_flits_;
      --ovc.credits;
      ++stats_.flits_forwarded;
      if (out_dir == Direction::kLocal) ++stats_.flits_ejected;

      transfers.push_back(LinkTransfer{id_, out_dir, std::move(flit)});
      credits.push_back(
          CreditReturn{id_, static_cast<Direction>(in_pi), in_vc});

      if (transfers.back().flit.is_tail) {
        ovc.allocated = false;
        ivc.active = false;
        ivc.out_vc = -1;
        // Swap-remove the candidate from the routed list.
        for (int i = 0; i < oport.active_inputs; ++i) {
          if (oport.routed[static_cast<std::size_t>(i)].cand == sc.cand) {
            oport.routed[static_cast<std::size_t>(i)] =
                oport.routed[static_cast<std::size_t>(oport.active_inputs - 1)];
            break;
          }
        }
        --oport.active_inputs;
        // The next packet's head (if queued behind the tail) now fronts an
        // idle VC and waits for RC.
        if (!ivc.fifo.empty() && ivc.fifo.front().flit.is_head) {
          ++in_[in_pi].rc_pending;
          ++rc_pending_total_;
        }
      }
      input_used[in_pi] = true;
      oport.rr_candidate = sc.cand + 1 == candidates ? 0 : sc.cand + 1;
      break;  // one flit per output port per cycle
    }
  }
}

json::Value Router::save_state() const {
  json::Object o;
  json::Array in_ports;
  for (int pi = 0; pi < kNumPorts; ++pi) {
    const InputPort& port = in_[static_cast<std::size_t>(pi)];
    json::Object po;
    json::Array vcs;
    for (int vi = 0; vi < cfg_.vcs; ++vi) {
      const InputVc& ivc = port.vcs[static_cast<std::size_t>(vi)];
      json::Object vo;
      json::Array fifo;
      for (int i = 0; i < ivc.fifo.size(); ++i) {
        const BufferedFlit& bf = ivc.fifo.at(i);
        json::Array e;
        e.push_back(flit_to_json(bf.flit));
        e.push_back(common::ju64(bf.arrival));
        e.push_back(json::Value(bf.inspected));
        fifo.push_back(json::Value(std::move(e)));
      }
      vo["fifo"] = json::Value(std::move(fifo));
      vo["active"] = json::Value(ivc.active);
      vo["out_port"] = json::Value(static_cast<long long>(ivc.out_port));
      vo["out_vc"] = json::Value(static_cast<long long>(ivc.out_vc));
      vo["alloc_cycle"] = common::ju64(ivc.alloc_cycle);
      vcs.push_back(json::Value(std::move(vo)));
    }
    po["vcs"] = json::Value(std::move(vcs));
    po["rc_pending"] = json::Value(static_cast<long long>(port.rc_pending));
    in_ports.push_back(json::Value(std::move(po)));
  }
  o["in"] = json::Value(std::move(in_ports));

  json::Array out_ports;
  for (int pi = 0; pi < kNumPorts; ++pi) {
    const OutputPort& port = out_[static_cast<std::size_t>(pi)];
    json::Object po;
    json::Array vcs;
    for (int vi = 0; vi < cfg_.vcs; ++vi) {
      const OutputVc& ovc = port.vcs[static_cast<std::size_t>(vi)];
      json::Array e;
      e.push_back(json::Value(static_cast<long long>(ovc.credits)));
      e.push_back(json::Value(ovc.allocated));
      vcs.push_back(json::Value(std::move(e)));
    }
    po["vcs"] = json::Value(std::move(vcs));
    po["rr_candidate"] = json::Value(static_cast<long long>(port.rr_candidate));
    po["rr_vc"] = json::Value(static_cast<long long>(port.rr_vc));
    json::Array routed;
    for (int i = 0; i < port.active_inputs; ++i) {
      const SaCandidate& sc = port.routed[static_cast<std::size_t>(i)];
      json::Array e;
      e.push_back(json::Value(static_cast<long long>(sc.cand)));
      e.push_back(json::Value(static_cast<long long>(sc.in_port)));
      e.push_back(json::Value(static_cast<long long>(sc.in_vc)));
      routed.push_back(json::Value(std::move(e)));
    }
    po["routed"] = json::Value(std::move(routed));
    out_ports.push_back(json::Value(std::move(po)));
  }
  o["out"] = json::Value(std::move(out_ports));
  o["stats"] = router_stats_to_json(stats_);
  return json::Value(std::move(o));
}

void Router::load_state(const json::Value& v, const PacketResolver& resolve) {
  const json::Object& o = v.as_object();
  buffered_flits_ = 0;
  rc_pending_total_ = 0;

  const json::Array& in_ports = o.find("in")->as_array();
  for (int pi = 0; pi < kNumPorts; ++pi) {
    InputPort& port = in_[static_cast<std::size_t>(pi)];
    const json::Object& po = in_ports.at(static_cast<std::size_t>(pi)).as_object();
    const json::Array& vcs = po.find("vcs")->as_array();
    for (int vi = 0; vi < cfg_.vcs; ++vi) {
      InputVc& ivc = port.vcs[static_cast<std::size_t>(vi)];
      const json::Object& vo = vcs.at(static_cast<std::size_t>(vi)).as_object();
      ivc.fifo.clear();
      for (const json::Value& ev : vo.find("fifo")->as_array()) {
        const json::Array& e = ev.as_array();
        BufferedFlit bf;
        bf.flit = flit_from_json(e.at(0), resolve);
        bf.arrival = common::pu64(e.at(1));
        bf.inspected = e.at(2).as_bool();
        ivc.fifo.push_back(std::move(bf));
        ++buffered_flits_;
      }
      ivc.active = vo.find("active")->as_bool();
      ivc.out_port = static_cast<Direction>(vo.find("out_port")->as_int());
      ivc.out_vc = static_cast<int>(vo.find("out_vc")->as_int());
      ivc.alloc_cycle = common::pu64(*vo.find("alloc_cycle"));
    }
    port.rc_pending = static_cast<int>(po.find("rc_pending")->as_int());
    rc_pending_total_ += port.rc_pending;
  }

  const json::Array& out_ports = o.find("out")->as_array();
  for (int pi = 0; pi < kNumPorts; ++pi) {
    OutputPort& port = out_[static_cast<std::size_t>(pi)];
    const json::Object& po =
        out_ports.at(static_cast<std::size_t>(pi)).as_object();
    const json::Array& vcs = po.find("vcs")->as_array();
    for (int vi = 0; vi < cfg_.vcs; ++vi) {
      OutputVc& ovc = port.vcs[static_cast<std::size_t>(vi)];
      const json::Array& e = vcs.at(static_cast<std::size_t>(vi)).as_array();
      ovc.credits = static_cast<int>(e.at(0).as_int());
      ovc.allocated = e.at(1).as_bool();
    }
    port.rr_candidate = static_cast<int>(po.find("rr_candidate")->as_int());
    port.rr_vc = static_cast<int>(po.find("rr_vc")->as_int());
    const json::Array& routed = po.find("routed")->as_array();
    port.active_inputs = static_cast<int>(routed.size());
    port.routed = {};
    for (std::size_t i = 0; i < routed.size(); ++i) {
      const json::Array& e = routed[i].as_array();
      port.routed[i] = SaCandidate{
          static_cast<std::uint8_t>(e.at(0).as_int()),
          static_cast<std::uint8_t>(e.at(1).as_int()),
          static_cast<std::uint8_t>(e.at(2).as_int())};
    }
  }
  stats_ = router_stats_from_json(*o.find("stats"));
}

void Router::run_inspectors(Packet& pkt, Cycle now) {
  for (PacketInspector* inspector : inspectors_) {
    inspector->inspect(pkt, id_, now);
  }
}

void Router::tick_rc_va(Cycle now) {
  // Only input VCs fronted by an unrouted head need RC/VA; their count is
  // tracked by accept_flit / tick_sa_st, so quiet routers and mid-packet
  // VCs cost nothing here.
  if (rc_pending_total_ == 0) return;
  for (int pi = 0; pi < kNumPorts; ++pi) {
    if (in_[pi].rc_pending == 0) continue;
    for (int vi = 0; vi < cfg_.vcs; ++vi) {
      InputVc& ivc = in_[pi].vcs[static_cast<std::size_t>(vi)];
      if (ivc.active || ivc.fifo.empty()) continue;
      BufferedFlit& front = ivc.fifo.front();
      if (!front.flit.is_head) continue;  // waiting for a stale tail: bug guard
      // One cycle of buffer write before the head enters RC.
      if (now < front.arrival + 1) continue;

      Packet& pkt = *front.flit.pkt;
      if (!front.inspected) {
        // Fig. 2b: the Trojan taps the path between the input buffer and
        // the routing-computation unit, so it sees the packet exactly once
        // per router, before the route is computed.
        run_inspectors(pkt, now);
        front.inspected = true;
        if (pkt.type == PacketType::kPowerRequest) {
          ++stats_.power_requests_seen;
        }
      }

      RouteQuery q;
      q.here = coord_;
      q.dst = geom_.coord_of(pkt.dst);
      q.vc_class = vc_class_of(pkt.type);
      if (routing_uses_credits_) {
        for (int p = 0; p < kNumPorts; ++p) {
          q.free_credits[p] =
              free_credits_for_class(static_cast<Direction>(p), q.vc_class);
        }
      }

      const Direction out_dir = routing_->select(q);
      OutputPort& oport = out_[port_index(out_dir)];
      assert(oport.connected && "routing selected a disconnected port");

      // VC allocation: round-robin over the free VCs of the packet's class.
      const int base = cfg_.class_base(q.vc_class);
      const int span = cfg_.vcs_per_class();
      int granted = -1;
      for (int k = 0; k < span; ++k) {
        int rel = oport.rr_vc + k;
        if (rel >= span) rel -= span;
        const int v = base + rel;
        if (!oport.vcs[static_cast<std::size_t>(v)].allocated) {
          granted = v;
          break;
        }
      }
      if (granted < 0) {
        ++stats_.va_stalls;
        continue;
      }
      oport.vcs[static_cast<std::size_t>(granted)].allocated = true;
      const int next_rr = granted - base + 1;
      oport.rr_vc = next_rr == span ? 0 : next_rr;
      oport.routed[static_cast<std::size_t>(oport.active_inputs)] =
          SaCandidate{static_cast<std::uint8_t>(pi * cfg_.vcs + vi),
                      static_cast<std::uint8_t>(pi),
                      static_cast<std::uint8_t>(vi)};
      ++oport.active_inputs;
      ivc.active = true;
      ivc.out_port = out_dir;
      ivc.out_vc = granted;
      ivc.alloc_cycle = now;
      ++stats_.packets_routed;
      --in_[pi].rc_pending;
      --rc_pending_total_;
    }
  }
}

}  // namespace htpb::noc
