// Router area/power reference numbers used by the paper's stealth argument
// (Sec. III-D): a 4-VC, 5-flit-FIFO router synthesized with DSENT under a
// 45nm TSMC library. We encode the reported constants; the derived ratios
// are computed, not hard-coded.
#pragma once

namespace htpb::noc {

struct RouterAreaPowerModel {
  /// Total router area in square micrometres (paper: 71814 um^2).
  double area_um2 = 71814.0;
  /// Total router power in microwatts (paper: 31881 uW).
  double power_uw = 31881.0;

  /// Aggregate over all routers of an n-node chip.
  [[nodiscard]] double chip_area_um2(int nodes) const noexcept {
    return area_um2 * nodes;
  }
  [[nodiscard]] double chip_power_uw(int nodes) const noexcept {
    return power_uw * nodes;
  }
};

}  // namespace htpb::noc
