// The 2D-mesh network: owns routers, links and network interfaces, and
// performs the deterministic two-phase per-cycle evaluation.
#pragma once

#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/config.hpp"
#include "noc/network_interface.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "sim/engine.hpp"

namespace htpb::noc {

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t power_requests_delivered = 0;
  std::uint64_t tampered_power_requests_delivered = 0;
  RunningStat latency_all;
  RunningStat latency_power_req;
  RunningStat latency_mem;

  void reset() { *this = NetworkStats{}; }
};

class MeshNetwork : public sim::Tickable {
 public:
  MeshNetwork(sim::Engine& engine, MeshGeometry geom, NocConfig cfg);

  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  [[nodiscard]] const MeshGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] const NocConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  /// Creates a packet with a fresh id and the wire size implied by `type`.
  [[nodiscard]] PacketPtr make_packet(NodeId src, NodeId dst, PacketType type,
                                      std::uint32_t payload = 0);

  /// Injects a packet from its source node's NI. Local (src == dst)
  /// packets are delivered after one cycle without touching the mesh.
  void send(PacketPtr pkt);

  void set_handler(NodeId node, DeliveryHandler handler) {
    nis_[node]->set_handler(std::move(handler));
  }

  [[nodiscard]] Router& router(NodeId id) noexcept { return *routers_[id]; }
  [[nodiscard]] const Router& router(NodeId id) const noexcept {
    return *routers_[id];
  }
  [[nodiscard]] NetworkInterface& ni(NodeId id) noexcept { return *nis_[id]; }

  void add_inspector(NodeId router_id, PacketInspector* inspector) {
    routers_[router_id]->add_inspector(inspector);
  }

  void tick(Cycle now) override;

  [[nodiscard]] NetworkStats& stats() noexcept { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }

  /// True when no flit is buffered or in flight anywhere and no injection
  /// is pending (used by drain-style tests).
  [[nodiscard]] bool idle() const noexcept;

  /// Aggregated router statistics.
  [[nodiscard]] RouterStats total_router_stats() const;

 private:
  void record_delivery(const Packet& pkt);

  sim::Engine& engine_;
  MeshGeometry geom_;
  NocConfig cfg_;
  std::unique_ptr<RoutingAlgorithm> routing_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<LinkTransfer> transfers_;
  std::vector<CreditReturn> credits_;
  std::vector<int> freed_vcs_;
  NetworkStats stats_;
  PacketId next_packet_id_ = 1;
};

}  // namespace htpb::noc
