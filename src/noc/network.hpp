// The 2D-mesh network: owns routers, links and network interfaces, and
// performs the deterministic two-phase per-cycle evaluation.
//
// Hot-path machinery (PR 2): the per-cycle phases iterate *active sets*
// (routers holding flits, NIs with pending injections/ejections) instead
// of scanning every node -- a quiescent mesh costs near-zero per cycle.
// The sets are kept sorted by node id at each use, so evaluation order,
// and with it every stat and delivery sequence, is bit-identical to the
// full scans (locked by tests/noc/golden_stats_test.cpp). Packets come
// from a recycling PacketPool, and link/credit hops use precomputed
// neighbour tables instead of re-deriving coordinates per transfer.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/geometry.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/config.hpp"
#include "noc/network_interface.hpp"
#include "noc/packet.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "sim/engine.hpp"

namespace htpb::noc {

struct NetworkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t power_requests_delivered = 0;
  std::uint64_t tampered_power_requests_delivered = 0;
  RunningStat latency_all;
  RunningStat latency_power_req;
  RunningStat latency_mem;

  void reset() { *this = NetworkStats{}; }
};

class MeshNetwork : public sim::Tickable {
 public:
  MeshNetwork(sim::Engine& engine, MeshGeometry geom, NocConfig cfg);

  MeshNetwork(const MeshNetwork&) = delete;
  MeshNetwork& operator=(const MeshNetwork&) = delete;

  [[nodiscard]] const MeshGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] const NocConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  /// Creates a packet with a fresh id and the wire size implied by `type`.
  /// Drawn from the network's recycling pool; the handle may outlive the
  /// network (stragglers fall back to plain frees).
  [[nodiscard]] PacketPtr make_packet(NodeId src, NodeId dst, PacketType type,
                                      std::uint32_t payload = 0);

  /// Injects a packet from its source node's NI. Local (src == dst)
  /// packets are delivered after one cycle without touching the mesh.
  void send(PacketPtr pkt);

  void set_handler(NodeId node, DeliveryHandler handler) {
    nis_[node]->set_handler(std::move(handler));
  }

  [[nodiscard]] Router& router(NodeId id) noexcept { return *routers_[id]; }
  [[nodiscard]] const Router& router(NodeId id) const noexcept {
    return *routers_[id];
  }
  [[nodiscard]] NetworkInterface& ni(NodeId id) noexcept { return *nis_[id]; }

  void add_inspector(NodeId router_id, PacketInspector* inspector) {
    routers_[router_id]->add_inspector(inspector);
  }

  void tick(Cycle now) override;

  [[nodiscard]] NetworkStats& stats() noexcept { return stats_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }

  /// True when no flit is buffered or in flight anywhere and no injection
  /// is pending (used by drain-style tests).
  [[nodiscard]] bool idle() const noexcept;

  /// Aggregated router statistics.
  [[nodiscard]] RouterStats total_router_stats() const;

  /// The packet pool (observability: live handles / free-list depth).
  [[nodiscard]] const PacketPool& packet_pool() const noexcept { return pool_; }

  /// Checkpointing: live packets (sorted by id), per-router and per-NI
  /// state, pending loopback deliveries, active sets and stats. Valid
  /// between cycles only -- save_state throws if the staged transfer or
  /// credit vectors are non-empty (they are drained within each tick).
  /// Wiring (neighbour tables, handlers, inspectors, port connectivity)
  /// is construction state and is not captured; load_state releases every
  /// currently held packet and rebuilds the ownership graph from the
  /// saved holders.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v);

 private:
  void record_delivery(const Packet& pkt);

  /// Active-set membership. Marking is idempotent; the lists are sorted
  /// by id at each use and compacted when a node goes quiet.
  void mark_router_active(NodeId id) {
    if (!router_active_[id]) {
      router_active_[id] = 1;
      active_routers_.push_back(id);
    }
  }
  void mark_inject_active(NodeId id) {
    if (!inject_active_[id]) {
      inject_active_[id] = 1;
      active_inject_.push_back(id);
    }
  }
  void mark_eject_active(NodeId id) {
    if (!eject_active_[id]) {
      eject_active_[id] = 1;
      active_eject_.push_back(id);
    }
  }

  sim::Engine& engine_;  // snapshot-exempt: non-owning wiring, re-attached by construction
  MeshGeometry geom_;    // snapshot-exempt: construction config, immutable
  NocConfig cfg_;        // snapshot-exempt: construction config, immutable
  PacketPool pool_;
  std::unique_ptr<RoutingAlgorithm> routing_;  // snapshot-exempt: stateless algorithm chosen by config
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  /// neighbour_[node * kNumPorts + port]: adjacent router id, -1 if edge.
  // snapshot-exempt: precomputed from the immutable mesh geometry
  std::vector<std::int32_t> neighbour_;
  std::vector<LinkTransfer> transfers_;
  std::vector<CreditReturn> credits_;
  std::vector<int> freed_vcs_;
  std::vector<NodeId> active_routers_;
  std::vector<NodeId> active_inject_;
  std::vector<NodeId> active_eject_;
  std::vector<std::uint8_t> router_active_;
  std::vector<std::uint8_t> inject_active_;
  std::vector<std::uint8_t> eject_active_;
  /// Loopback (src == dst) packets awaiting their kNocLocalDeliver event,
  /// keyed by packet id. std::map: save order must be deterministic.
  std::map<PacketId, PacketPtr> pending_local_;
  NetworkStats stats_;
  PacketId next_packet_id_ = 1;
};

}  // namespace htpb::noc
