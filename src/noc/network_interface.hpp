// Per-tile network interface: packetization, injection with credit
// tracking toward the router's local input port, and reassembly/delivery
// on ejection.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"
#include "noc/config.hpp"
#include "noc/flit_fifo.hpp"
#include "noc/packet.hpp"

namespace htpb::noc {

struct NiStats {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t inject_queue_peak = 0;
};

/// Called when a packet addressed to this node has fully arrived.
using DeliveryHandler = std::function<void(const Packet&)>;

class NetworkInterface {
 public:
  NetworkInterface(NodeId id, const NocConfig& cfg);

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  void set_handler(DeliveryHandler handler) { handler_ = std::move(handler); }

  /// Queues a packet for injection. The network sets id/birth/size before
  /// calling this.
  void enqueue(PacketPtr pkt);

  /// Stages at most one flit into the router's local input port per cycle
  /// (local port bandwidth), alternating between the two VC classes.
  /// Returns true and fills `out` when a flit was injected.
  bool tick_inject(Cycle now, Flit& out);

  /// Accepts an ejected flit from the router (arrives at `arrival`).
  void eject(const Flit& flit, Cycle arrival);

  /// Drains ejected flits that have arrived; delivers packets on tails.
  /// Freed buffer slots are reported as credits for the router's local
  /// output port through `freed_vcs`.
  void tick_eject(Cycle now, std::vector<int>& freed_vcs);

  /// Credit returned from the router's local input buffer.
  void return_credit(int vc) noexcept {
    ++credits_[static_cast<std::size_t>(vc)];
  }
  [[nodiscard]] int credits(int vc) const noexcept {
    return credits_[static_cast<std::size_t>(vc)];
  }

  /// Immediate local delivery for src == dst packets (no NoC traversal).
  void deliver_local(const Packet& pkt);

  [[nodiscard]] std::size_t pending_injections() const noexcept;
  /// True while ejected flits are waiting to be drained by tick_eject
  /// (drives the network's active-NI scheduling).
  [[nodiscard]] bool eject_pending() const noexcept {
    return !eject_queue_.empty();
  }
  [[nodiscard]] const NiStats& stats() const noexcept { return stats_; }

  /// Checkpointing: inject/eject queues (as packet-id references),
  /// credits, round-robin pointers, stats. The delivery handler is wiring
  /// and is not captured.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v, const PacketResolver& resolve);

 private:
  struct ClassState {
    DynRingFifo<PacketPtr> queue;
    std::vector<Flit> flits;    // flits of the in-flight packet (capacity
                                // reused across packets via make_flits_into)
    std::size_t cursor = 0;     // next flit to inject
    int vc = -1;                // VC assigned to the in-flight packet
    int rr_vc = 0;              // round-robin VC choice within the class
  };

  struct EjectedFlit {
    Flit flit;
    Cycle arrival;
  };

  bool try_inject_class(int cls, Flit& out);

  NodeId id_;      // snapshot-exempt: construction wiring (tile identity)
  NocConfig cfg_;  // snapshot-exempt: construction config, immutable
  DeliveryHandler handler_;  // snapshot-exempt: callback wiring, re-installed by construction
  std::vector<int> credits_;
  ClassState classes_[2];
  int rr_class_ = 0;
  DynRingFifo<EjectedFlit> eject_queue_;
  NiStats stats_;
};

}  // namespace htpb::noc
