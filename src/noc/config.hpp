// NoC configuration (Table I of the paper).
#pragma once

#include <cstdint>

namespace htpb::noc {

enum class RoutingKind {
  /// Deterministic dimension-order routing (Table I).
  kXY,
  /// West-first minimal adaptive routing (the paper's "adaptive routing"
  /// on the 16x16 mesh); deadlock-free by the turn model.
  kWestFirstAdaptive,
};

/// Hard caps backing the router's inline storage (flit_fifo.hpp): VC
/// buffers are fixed-capacity rings and VC state lives in fixed arrays,
/// so `vcs` / `vc_depth` must fit. Generous vs. Table I's 4 VCs x 5 flits.
inline constexpr int kMaxVcs = 8;
inline constexpr int kMaxVcDepth = 8;

struct NocConfig {
  /// Virtual channels per input port (Table I: 4); <= kMaxVcs.
  int vcs = 4;
  /// Buffer depth per VC in flits (Table I / Sec III-D: 5-flit FIFOs);
  /// <= kMaxVcDepth.
  int vc_depth = 5;
  /// Data packet size in flits (Table I: 5).
  int data_packet_flits = 5;
  /// Meta packet size in flits (Table I: 1).
  int meta_packet_flits = 1;
  /// Command packets (POWER_REQ / CONFIG_CMD): 4x32-bit frame in 72-bit
  /// flits => 2 flits.
  int command_packet_flits = 2;
  /// Router pipeline latency in cycles (Table I: 2).
  int router_latency = 2;
  /// Link traversal latency in cycles (Table I: 1).
  int link_latency = 1;
  RoutingKind routing = RoutingKind::kXY;

  [[nodiscard]] int vcs_per_class() const noexcept { return vcs / 2; }
  /// First VC of a class; class 0 -> [0, vcs/2), class 1 -> [vcs/2, vcs).
  [[nodiscard]] int class_base(int vc_class) const noexcept {
    return vc_class == 0 ? 0 : vcs / 2;
  }
};

}  // namespace htpb::noc
