// Fixed-capacity inline ring buffer for router input-VC FIFOs.
//
// Table I caps VC depth at a handful of flits, so a bounded ring with
// inline storage beats std::deque's chunked heap allocation on every axis
// that matters here: zero allocation, contiguous slots, trivially
// predictable head/tail arithmetic. Capacity is a compile-time power of
// two (masked wraparound); the credit protocol keeps occupancy <= vc_depth
// <= kCap, and push/pop assert it.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <utility>

namespace htpb::noc {

template <typename T, int kCap>
class RingFifo {
  static_assert(kCap > 0 && (kCap & (kCap - 1)) == 0,
                "RingFifo capacity must be a power of two");

 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == kCap; }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] static constexpr int capacity() noexcept { return kCap; }

  [[nodiscard]] T& front() noexcept {
    assert(!empty());
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const noexcept {
    assert(!empty());
    return slots_[head_];
  }

  void push_back(T&& v) noexcept {
    assert(!full());
    slots_[(head_ + size_) & kMask] = std::move(v);
    ++size_;
  }
  void push_back(const T& v) noexcept {
    assert(!full());
    slots_[(head_ + size_) & kMask] = v;
    ++size_;
  }

  /// Pops the front and resets the vacated slot, so a T holding shared
  /// resources (a flit's PacketPtr) releases them now, not at wraparound.
  void pop_front() noexcept {
    assert(!empty());
    slots_[head_] = T{};
    head_ = (head_ + 1) & kMask;
    --size_;
  }

  void clear() noexcept {
    while (!empty()) pop_front();
  }

 private:
  static constexpr unsigned kMask = static_cast<unsigned>(kCap - 1);

  std::array<T, kCap> slots_{};
  unsigned head_ = 0;
  int size_ = 0;
};

}  // namespace htpb::noc
