// Ring buffers for the NoC hot paths.
//
// RingFifo: fixed-capacity inline ring for router input-VC FIFOs. Table I
// caps VC depth at a handful of flits, so a bounded ring with inline
// storage beats std::deque's chunked heap allocation on every axis that
// matters here: zero allocation, contiguous slots, trivially predictable
// head/tail arithmetic. Capacity is a compile-time power of two (masked
// wraparound); the credit protocol keeps occupancy <= vc_depth <= kCap,
// and push/pop assert it.
//
// DynRingFifo: growable power-of-two ring for the NI inject/eject queues,
// whose occupancy is workload-dependent (a global-manager grant burst can
// enqueue one packet per node in a single cycle) and so cannot use a
// compile-time cap. Same contiguous-slot layout; doubles and unwraps when
// full. FIFO semantics are identical to std::deque's push_back/pop_front,
// so swapping it in cannot change simulation results.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

namespace htpb::noc {

template <typename T, int kCap>
class RingFifo {
  static_assert(kCap > 0 && (kCap & (kCap - 1)) == 0,
                "RingFifo capacity must be a power of two");

 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == kCap; }
  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] static constexpr int capacity() noexcept { return kCap; }

  [[nodiscard]] T& front() noexcept {
    assert(!empty());
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const noexcept {
    assert(!empty());
    return slots_[head_];
  }

  /// Element `i` counted from the front (checkpoint enumeration).
  [[nodiscard]] const T& at(int i) const noexcept {
    assert(i >= 0 && i < size_);
    return slots_[(head_ + static_cast<unsigned>(i)) & kMask];
  }

  void push_back(T&& v) noexcept {
    assert(!full());
    slots_[(head_ + size_) & kMask] = std::move(v);
    ++size_;
  }
  void push_back(const T& v) noexcept {
    assert(!full());
    slots_[(head_ + size_) & kMask] = v;
    ++size_;
  }

  /// Pops the front and resets the vacated slot, so a T holding shared
  /// resources (a flit's PacketPtr) releases them now, not at wraparound.
  void pop_front() noexcept {
    assert(!empty());
    slots_[head_] = T{};
    head_ = (head_ + 1) & kMask;
    --size_;
  }

  void clear() noexcept {
    while (!empty()) pop_front();
  }

 private:
  static constexpr unsigned kMask = static_cast<unsigned>(kCap - 1);

  std::array<T, kCap> slots_{};
  unsigned head_ = 0;
  int size_ = 0;
};

template <typename T>
class DynRingFifo {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] T& front() noexcept {
    assert(!empty());
    return slots_[head_];
  }
  [[nodiscard]] const T& front() const noexcept {
    assert(!empty());
    return slots_[head_];
  }

  /// Element `i` counted from the front (checkpoint enumeration).
  [[nodiscard]] const T& at(std::size_t i) const noexcept {
    assert(i < size_);
    return slots_[(head_ + i) & mask()];
  }

  void push_back(T v) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & mask()] = std::move(v);
    ++size_;
  }

  /// Pops the front and resets the vacated slot, so a T holding shared
  /// resources (a PacketPtr) releases them now, not at wraparound.
  void pop_front() noexcept {
    assert(!empty());
    slots_[head_] = T{};
    head_ = (head_ + 1) & mask();
    --size_;
  }

  void clear() noexcept {
    while (!empty()) pop_front();
  }

 private:
  [[nodiscard]] std::size_t mask() const noexcept { return slots_.size() - 1; }

  void grow() {
    const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask()]);
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace htpb::noc
