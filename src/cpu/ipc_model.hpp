// Analytical per-core IPC model.
//
// IPC(f) = 1 / (CPI_base + MPI * L_mem(f)) where L_mem(f) is the average
// memory round-trip expressed in *core* cycles: round_trip_ns * f_GHz.
// Compute-bound threads (small MPI) scale almost linearly with f (high
// power sensitivity, paper Def. 4); memory-bound threads saturate (low
// sensitivity). The round-trip is measured live from the simulated
// NoC + cache hierarchy, so congestion feeds back into IPC exactly as in
// an execution-driven simulator.
#pragma once

#include <algorithm>

namespace htpb::cpu {

class IpcModel {
 public:
  IpcModel() = default;
  /// cpi_base: cycles per instruction excluding memory stalls.
  /// mpi: L1 misses per instruction that travel over the NoC.
  IpcModel(double cpi_base, double mpi) : cpi_base_(cpi_base), mpi_(mpi) {}

  /// IPC at frequency `ghz` with the current memory-latency estimate.
  [[nodiscard]] double ipc(double ghz) const noexcept {
    const double mem_cycles = mem_latency_ns_ * ghz;
    return 1.0 / (cpi_base_ + mpi_ * mem_cycles);
  }

  /// Instructions retired per nanosecond at frequency `ghz`.
  [[nodiscard]] double throughput(double ghz) const noexcept {
    return ipc(ghz) * ghz;
  }

  /// Exponentially weighted update from an observed miss round trip (ns).
  void observe_latency(double round_trip_ns) noexcept {
    constexpr double kAlpha = 0.05;
    mem_latency_ns_ = (1.0 - kAlpha) * mem_latency_ns_ + kAlpha * round_trip_ns;
  }

  void set_mem_latency_ns(double ns) noexcept {
    mem_latency_ns_ = std::max(0.0, ns);
  }

  /// Smoothed update of the NoC-bound miss rate from measured L1 behaviour
  /// (the system recalibrates this every budgeting epoch, closing the loop
  /// between the cache simulation and the analytical IPC).
  void update_mpi(double measured_mpi) noexcept {
    constexpr double kAlpha = 0.3;
    if (measured_mpi >= 0.0) {
      mpi_ = (1.0 - kAlpha) * mpi_ + kAlpha * measured_mpi;
    }
  }
  void set_mpi(double mpi) noexcept { mpi_ = std::max(0.0, mpi); }
  [[nodiscard]] double mem_latency_ns() const noexcept {
    return mem_latency_ns_;
  }
  [[nodiscard]] double cpi_base() const noexcept { return cpi_base_; }
  [[nodiscard]] double mpi() const noexcept { return mpi_; }

 private:
  double cpi_base_ = 0.6;
  double mpi_ = 0.005;
  double mem_latency_ns_ = 40.0;  // bootstrap estimate; adapts online
};

}  // namespace htpb::cpu
