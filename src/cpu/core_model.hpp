// One tile's core: retires instructions continuously at IPC(f)*f and
// emits L1 accesses at the thread's miss rate. The memory side is wired
// up by the tile; the core only produces an address stream of "L1
// accesses to issue this cycle".
#pragma once

#include <cstdint>
#include <functional>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "cpu/frequency.hpp"
#include "cpu/ipc_model.hpp"

namespace htpb::cpu {

/// Callback the tile installs to service an L1 access request.
/// `write` distinguishes GetS/GetM traffic.
using MemAccessFn = std::function<void(std::uint64_t address, bool write)>;

class CoreModel {
 public:
  CoreModel(NodeId node, AppId app, IpcModel ipc, const FrequencyTable* freqs,
            std::uint64_t seed)
      : node_(node), app_(app), ipc_(ipc), freqs_(freqs), rng_(seed) {}

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] AppId app() const noexcept { return app_; }

  void set_mem_access_fn(MemAccessFn fn) { mem_access_ = std::move(fn); }

  /// Address-stream parameters (installed by the workload layer).
  void set_address_stream(std::uint64_t base, std::uint64_t lines,
                          std::uint64_t shared_base, std::uint64_t shared_lines,
                          double shared_fraction, double write_fraction,
                          double accesses_per_kilo_instr) {
    as_base_ = base;
    as_lines_ = lines ? lines : 1;
    as_shared_base_ = shared_base;
    as_shared_lines_ = shared_lines ? shared_lines : 1;
    shared_fraction_ = shared_fraction;
    write_fraction_ = write_fraction;
    apki_ = accesses_per_kilo_instr;
  }

  void set_level(int level) noexcept { level_ = level; }
  [[nodiscard]] int level() const noexcept { return level_; }
  [[nodiscard]] double ghz() const { return freqs_->ghz(level_); }

  /// Duty-cycle factor in (0, 1]: when the granted budget is below even
  /// the lowest V/F point, the core is clock-throttled proportionally
  /// (dark-silicon style sprint-and-rest). 1.0 = no throttling.
  void set_duty(double duty) noexcept {
    duty_ = duty < 0.05 ? 0.05 : (duty > 1.0 ? 1.0 : duty);
  }
  [[nodiscard]] double duty() const noexcept { return duty_; }

  /// IPC the core would achieve at DVFS level `lvl` with the current
  /// memory-latency estimate (the IPC(j, z, tau) of paper Def. 4).
  [[nodiscard]] double ipc_at_level(int lvl) const {
    return ipc_.ipc(freqs_->ghz(lvl));
  }
  [[nodiscard]] double current_ipc() const { return ipc_at_level(level_); }
  /// Instructions per nanosecond at the current level -- the per-core term
  /// IPC(j, k, f_j) * f_j of paper Def. 1.
  [[nodiscard]] double current_throughput() const {
    return ipc_.throughput(ghz());
  }

  IpcModel& ipc_model() noexcept { return ipc_; }
  [[nodiscard]] const IpcModel& ipc_model() const noexcept { return ipc_; }

  /// Advances the core by one NoC cycle (1 ns).
  void tick(Cycle now);

  [[nodiscard]] double instructions_retired() const noexcept {
    return instructions_;
  }
  void reset_instruction_count() noexcept { instructions_ = 0.0; }

  [[nodiscard]] std::uint64_t accesses_issued() const noexcept {
    return accesses_issued_;
  }

  /// Checkpointing: DVFS level, duty, retirement/access accumulators, the
  /// address-stream cursor, the RNG stream and the IPC model's adaptive
  /// latency estimate. Address-stream *parameters* are workload wiring and
  /// are re-installed by construction, not captured.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v);

 private:
  [[nodiscard]] std::uint64_t next_address();

  NodeId node_;  // snapshot-exempt: construction wiring (tile identity)
  AppId app_;    // snapshot-exempt: construction wiring (workload assignment)
  IpcModel ipc_;
  const FrequencyTable* freqs_;  // snapshot-exempt: shared immutable table, re-wired by construction
  Rng rng_;
  MemAccessFn mem_access_;  // snapshot-exempt: callback wiring, re-installed by construction

  int level_ = 0;
  double duty_ = 1.0;
  double instructions_ = 0.0;
  double access_accumulator_ = 0.0;
  std::uint64_t accesses_issued_ = 0;

  // Address stream: mostly-sequential walk over a private region with a
  // fraction of accesses to the application's shared region.
  std::uint64_t as_base_ = 0;         // snapshot-exempt: workload config, fixed for the run
  std::uint64_t as_lines_ = 1;        // snapshot-exempt: workload config, fixed for the run
  std::uint64_t as_shared_base_ = 0;  // snapshot-exempt: workload config, fixed for the run
  std::uint64_t as_shared_lines_ = 1; // snapshot-exempt: workload config, fixed for the run
  std::uint64_t as_cursor_ = 0;
  double shared_fraction_ = 0.1;  // snapshot-exempt: workload config, fixed for the run
  double write_fraction_ = 0.2;   // snapshot-exempt: workload config, fixed for the run
  // NoC-bound accesses per kilo-instruction
  double apki_ = 0.0;  // snapshot-exempt: workload config, fixed for the run
};

}  // namespace htpb::cpu
