#include "cpu/core_model.hpp"

namespace htpb::cpu {

void CoreModel::tick(Cycle /*now*/) {
  const double throughput = duty_ * ipc_.throughput(freqs_->ghz(level_));
  instructions_ += throughput;  // 1 cycle == 1 ns
  if (apki_ <= 0.0 || !mem_access_) return;
  access_accumulator_ += throughput * apki_ / 1000.0;
  // Issue all whole accesses accumulated this cycle (normally 0 or 1).
  while (access_accumulator_ >= 1.0) {
    access_accumulator_ -= 1.0;
    const bool write = rng_.chance(write_fraction_);
    mem_access_(next_address(), write);
    ++accesses_issued_;
  }
}

std::uint64_t CoreModel::next_address() {
  if (rng_.chance(shared_fraction_)) {
    // Shared-region access: uniform over the application's shared lines.
    return as_shared_base_ + rng_.below(as_shared_lines_);
  }
  // Private region: mostly-sequential walk with occasional random jumps,
  // giving a realistic mix of spatial locality and conflict misses.
  if (rng_.chance(0.15)) {
    as_cursor_ = rng_.below(as_lines_);
  } else {
    as_cursor_ = (as_cursor_ + 1) % as_lines_;
  }
  return as_base_ + as_cursor_;
}

}  // namespace htpb::cpu
