#include "cpu/core_model.hpp"

#include <array>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::cpu {

void CoreModel::tick(Cycle /*now*/) {
  const double throughput = duty_ * ipc_.throughput(freqs_->ghz(level_));
  instructions_ += throughput;  // 1 cycle == 1 ns
  if (apki_ <= 0.0 || !mem_access_) return;
  access_accumulator_ += throughput * apki_ / 1000.0;
  // Issue all whole accesses accumulated this cycle (normally 0 or 1).
  while (access_accumulator_ >= 1.0) {
    access_accumulator_ -= 1.0;
    const bool write = rng_.chance(write_fraction_);
    mem_access_(next_address(), write);
    ++accesses_issued_;
  }
}

std::uint64_t CoreModel::next_address() {
  if (rng_.chance(shared_fraction_)) {
    // Shared-region access: uniform over the application's shared lines.
    return as_shared_base_ + rng_.below(as_shared_lines_);
  }
  // Private region: mostly-sequential walk with occasional random jumps,
  // giving a realistic mix of spatial locality and conflict misses.
  if (rng_.chance(0.15)) {
    as_cursor_ = rng_.below(as_lines_);
  } else {
    as_cursor_ = (as_cursor_ + 1) % as_lines_;
  }
  return as_base_ + as_cursor_;
}

json::Value CoreModel::save_state() const {
  json::Object o;
  o["level"] = json::Value(static_cast<long long>(level_));
  o["duty"] = json::Value(duty_);
  o["instructions"] = json::Value(instructions_);
  o["access_accumulator"] = json::Value(access_accumulator_);
  o["accesses_issued"] = common::ju64(accesses_issued_);
  o["as_cursor"] = common::ju64(as_cursor_);
  json::Array rng;
  for (const std::uint64_t w : rng_.state()) rng.push_back(common::ju64(w));
  o["rng"] = json::Value(std::move(rng));
  o["mpi"] = json::Value(ipc_.mpi());
  o["mem_latency_ns"] = json::Value(ipc_.mem_latency_ns());
  return json::Value(std::move(o));
}

void CoreModel::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  level_ = static_cast<int>(o.find("level")->as_int());
  duty_ = o.find("duty")->as_double();
  instructions_ = o.find("instructions")->as_double();
  access_accumulator_ = o.find("access_accumulator")->as_double();
  accesses_issued_ = common::pu64(*o.find("accesses_issued"));
  as_cursor_ = common::pu64(*o.find("as_cursor"));
  const json::Array& rng = o.find("rng")->as_array();
  std::array<std::uint64_t, 4> st{};
  for (std::size_t i = 0; i < 4; ++i) st[i] = common::pu64(rng.at(i));
  rng_.set_state(st);
  ipc_.set_mpi(o.find("mpi")->as_double());
  ipc_.set_mem_latency_ns(o.find("mem_latency_ns")->as_double());
}

}  // namespace htpb::cpu
