// DVFS frequency/voltage operating points.
//
// Table I does not list the frequency ladder, so we use eight evenly
// spaced levels from 1.0 to 2.75 GHz with a linear voltage map -- the
// shape assumed by the paper's Definition 4 (a totally ordered ladder
// tau_1 < tau_2 < ... < tau_s).
#pragma once

#include <stdexcept>
#include <vector>

namespace htpb::cpu {

struct FreqLevel {
  double ghz = 1.0;
  double volts = 0.8;
};

class FrequencyTable {
 public:
  FrequencyTable() : FrequencyTable(default_levels()) {}

  explicit FrequencyTable(std::vector<FreqLevel> levels)
      : levels_(std::move(levels)) {
    if (levels_.size() < 2) {
      throw std::invalid_argument("FrequencyTable: need at least 2 levels");
    }
    for (std::size_t i = 1; i < levels_.size(); ++i) {
      if (levels_[i].ghz <= levels_[i - 1].ghz) {
        throw std::invalid_argument(
            "FrequencyTable: levels must be strictly increasing");
      }
    }
  }

  [[nodiscard]] int num_levels() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] const FreqLevel& level(int i) const {
    return levels_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int min_level() const noexcept { return 0; }
  [[nodiscard]] int max_level() const noexcept { return num_levels() - 1; }
  [[nodiscard]] double ghz(int i) const { return level(i).ghz; }
  [[nodiscard]] double volts(int i) const { return level(i).volts; }

  /// Default ladder: 8 levels spanning 0.6 - 2.75 GHz with a linear
  /// voltage map. The wide span matters for the attack study: a starved
  /// victim drops to 0.6 GHz while a boosted attacker reaches 2.75 GHz,
  /// giving the dynamic range the paper's Theta/Q excursions exhibit.
  [[nodiscard]] static std::vector<FreqLevel> default_levels() {
    std::vector<FreqLevel> levels;
    for (int i = 0; i < 8; ++i) {
      const double f = 0.60 + (2.75 - 0.60) / 7.0 * i;
      levels.push_back(FreqLevel{f, 0.65 + 0.14 * (f - 0.60)});
    }
    return levels;
  }

 private:
  std::vector<FreqLevel> levels_;
};

}  // namespace htpb::cpu
