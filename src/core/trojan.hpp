// The hardware Trojan of Sec. III: a handful of comparators and two
// registers sitting between a router's input buffer and its routing
// computation (Fig. 2). It latches CONFIG_CMD packets and, when active,
// rewrites the payload of POWER_REQ packets heading to the global manager
// whose source is not one of the attacker's agents.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "core/trojan_config.hpp"
#include "noc/inspector.hpp"

namespace htpb::core {

struct TrojanStats {
  std::uint64_t config_packets_seen = 0;
  std::uint64_t power_requests_seen = 0;
  std::uint64_t victim_requests_modified = 0;
  std::uint64_t attacker_requests_boosted = 0;
};

class HardwareTrojan final : public noc::PacketInspector {
 public:
  explicit HardwareTrojan(NodeId host_router) : host_(host_router) {}

  // -- PacketInspector -----------------------------------------------------
  void inspect(noc::Packet& pkt, NodeId router, Cycle now) override;

  // -- observability (test/bench side; real hardware exposes none of this)
  [[nodiscard]] NodeId host() const noexcept { return host_; }
  [[nodiscard]] bool configured() const noexcept {
    return gm_ != kInvalidNode;
  }
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] NodeId global_manager() const noexcept { return gm_; }
  [[nodiscard]] const std::vector<NodeId>& attacker_agents() const noexcept {
    return attackers_;
  }
  [[nodiscard]] const TrojanStats& stats() const noexcept { return stats_; }

  /// Checkpointing: the latched registers (manager id, agent ids,
  /// activation/mode state, scale factors) and the counters. The host
  /// router id is construction wiring; restore into a Trojan implanted at
  /// the same router.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v);

 private:
  [[nodiscard]] bool is_attacker(NodeId node) const noexcept {
    return std::find(attackers_.begin(), attackers_.end(), node) !=
           attackers_.end();
  }

  void latch_config(const noc::Packet& pkt);
  void tamper(noc::Packet& pkt);

  NodeId host_;  // snapshot-exempt: construction wiring -- restore implants at the same router
  // "Two registers" of Fig. 2a: the global manager id and the attacker
  // agent ids, plus the activation/mode state.
  NodeId gm_ = kInvalidNode;
  std::vector<NodeId> attackers_;
  bool active_ = false;
  bool attenuate_victims_ = true;
  bool boost_attackers_ = true;
  double victim_scale_ = 0.125;
  double attacker_boost_ = 4.0;
  TrojanStats stats_;
};

}  // namespace htpb::core
