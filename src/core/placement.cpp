#include "core/placement.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/metrics.hpp"

namespace htpb::core {

std::vector<NodeId> random_placement(const MeshGeometry& geom, int m, Rng& rng,
                                     NodeId exclude) {
  const int n = geom.node_count();
  if (m <= 0 || m >= n) {
    throw std::invalid_argument("random_placement: bad HT count");
  }
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(m));
  auto sample = rng.sample_without_replacement(static_cast<std::uint32_t>(n),
                                               static_cast<std::uint32_t>(m) + 1);
  for (const auto id : sample) {
    if (static_cast<NodeId>(id) == exclude) continue;
    nodes.push_back(static_cast<NodeId>(id));
    if (static_cast<int>(nodes.size()) == m) break;
  }
  return nodes;
}

std::vector<NodeId> clustered_placement(const MeshGeometry& geom, int m,
                                        Coord around, NodeId exclude) {
  const int n = geom.node_count();
  if (m <= 0 || m >= n) {
    throw std::invalid_argument("clustered_placement: bad HT count");
  }
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(m));
  for (const NodeId id : geom.nodes_by_distance(around)) {
    if (id == exclude) continue;
    nodes.push_back(id);
    if (static_cast<int>(nodes.size()) == m) break;
  }
  return nodes;
}

Placement describe_placement(const MeshGeometry& geom, NodeId global_manager,
                             std::vector<NodeId> nodes) {
  Placement p;
  const PlacementGeometry pg = placement_geometry(geom, global_manager, nodes);
  p.nodes = std::move(nodes);
  p.rho = pg.rho;
  p.eta = pg.eta;
  return p;
}

std::vector<Placement> candidate_placements(const MeshGeometry& geom,
                                            NodeId global_manager, int m,
                                            int count, Rng& rng) {
  std::vector<Placement> out;
  out.reserve(static_cast<std::size_t>(count));
  const int w = geom.width();
  const int h = geom.height();
  for (int k = 0; k < count; ++k) {
    // Sweep cluster centers over the die and spreads from tight clusters
    // to fully random scatters.
    const Coord center{static_cast<int>(rng.below(static_cast<std::uint64_t>(w))),
                       static_cast<int>(rng.below(static_cast<std::uint64_t>(h)))};
    const double spread = rng.uniform();  // 0 = tight cluster, 1 = uniform
    std::vector<NodeId> nodes;
    if (spread > 0.85) {
      nodes = random_placement(geom, m, rng, global_manager);
    } else {
      // Tight core of the cluster plus a randomized fringe whose radius
      // grows with `spread`.
      const auto order = geom.nodes_by_distance(center);
      const int fringe = 1 + static_cast<int>(
          spread * static_cast<double>(geom.node_count() - m - 1));
      std::vector<NodeId> pool;
      for (const NodeId id : order) {
        if (id == global_manager) continue;
        pool.push_back(id);
        if (static_cast<int>(pool.size()) >= m + fringe) break;
      }
      rng.shuffle(std::span<NodeId>(pool));
      nodes.assign(pool.begin(), pool.begin() + m);
    }
    out.push_back(describe_placement(geom, global_manager, std::move(nodes)));
  }
  return out;
}

}  // namespace htpb::core
