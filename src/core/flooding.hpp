// Baseline attack from the paper's related-work taxonomy (Sec. II-B,
// class 1): a flooding DoS Trojan that saturates a victim node -- here the
// global manager -- with junk packets. Implemented so the benches can
// contrast it with the paper's false-data attack on two axes:
//   damage   : how much victim performance it destroys, and
//   stealth  : how much *extra traffic* it injects (a flooding Trojan is
//              trivially visible to NoC utilization counters; the
//              false-data Trojan adds zero packets).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace htpb::core {

class FloodingAttacker final : public sim::Tickable {
 public:
  /// Injects `rate` junk packets per cycle (fractional rates accumulate)
  /// from `source` toward `target`.
  FloodingAttacker(noc::MeshNetwork* net, NodeId source, NodeId target,
                   double rate, std::uint64_t seed)
      : net_(net), source_(source), target_(target), rate_(rate), rng_(seed) {}

  void tick(Cycle now) override;

  void set_active(bool active) noexcept { active_ = active; }
  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t packets_injected() const noexcept {
    return injected_;
  }

 private:
  noc::MeshNetwork* net_;
  NodeId source_;
  NodeId target_;
  double rate_;
  Rng rng_;
  double accumulator_ = 0.0;
  bool active_ = true;
  std::uint64_t injected_ = 0;
};

}  // namespace htpb::core
