#include "core/run_dir.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/atomic_file.hpp"

namespace htpb::core {

namespace {

void mkdir_p(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return;
  throw std::runtime_error("RunDir: cannot create " + path + ": " +
                           std::strerror(errno));
}

[[nodiscard]] bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string fingerprint(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

RunDir::RunDir(std::string root) : root_(std::move(root)) {
  if (root_.empty()) {
    throw std::runtime_error("RunDir: empty root path");
  }
  while (root_.size() > 1 && root_.back() == '/') root_.pop_back();
}

void RunDir::ensure_layout() const {
  // mkdir -p for the root itself, one component at a time.
  for (std::size_t i = 1; i < root_.size(); ++i) {
    if (root_[i] == '/') mkdir_p(root_.substr(0, i));
  }
  mkdir_p(root_);
  for (const char* sub : {"cells", "results", "status", "logs", "quarantine"}) {
    mkdir_p(root_ + "/" + sub);
  }
}

std::string RunDir::manifest_path() const { return root_ + "/MANIFEST.json"; }

bool RunDir::has_manifest() const { return file_exists(manifest_path()); }

json::Value RunDir::load_manifest() const {
  return json::parse_file(manifest_path());
}

void RunDir::write_manifest(const json::Value& manifest) const {
  json::dump_file(manifest, manifest_path(), 2);
}

std::string RunDir::spec_path() const { return root_ + "/spec.json"; }

std::string RunDir::cell_spec_path(const std::string& id) const {
  return root_ + "/cells/" + id + ".json";
}

std::string RunDir::result_path(const std::string& id) const {
  return root_ + "/results/" + id + ".json";
}

std::string RunDir::status_path(const std::string& id) const {
  return root_ + "/status/" + id + ".json";
}

std::string RunDir::stdout_path(const std::string& id) const {
  return root_ + "/logs/" + id + ".stdout";
}

std::string RunDir::stderr_path(const std::string& id) const {
  return root_ + "/logs/" + id + ".stderr";
}

std::string RunDir::quarantine_path(const std::string& id, int attempt) const {
  return root_ + "/quarantine/" + id + ".attempt" + std::to_string(attempt) +
         ".json";
}

std::string RunDir::merged_path() const { return root_ + "/merged.json"; }

std::optional<CellStatus> RunDir::load_status(const std::string& id) const {
  const std::string path = status_path(id);
  if (!file_exists(path)) return std::nullopt;
  try {
    const json::Value v = json::parse_file(path);
    const json::Object& o = v.as_object();
    const json::Value* state = o.find("state");
    const json::Value* fp = o.find("fingerprint");
    const json::Value* attempts = o.find("attempts");
    if (state == nullptr || fp == nullptr || attempts == nullptr) {
      return std::nullopt;
    }
    CellStatus status;
    status.state = state->as_string();
    status.fingerprint = fp->as_string();
    status.attempts = static_cast<int>(attempts->as_int());
    if (const json::Value* r = o.find("fail_reason")) {
      status.fail_reason = r->as_string();
    }
    if (const json::Value* e = o.find("last_error")) {
      status.last_error = e->as_string();
    }
    if (status.state != "done" && status.state != "failed") return std::nullopt;
    return status;
  } catch (const std::exception&) {
    // A torn or stale status file is indistinguishable from "never ran";
    // the scheduler just re-runs the cell.
    return std::nullopt;
  }
}

void RunDir::write_status(const std::string& id,
                          const CellStatus& status) const {
  json::Object o;
  o["state"] = json::Value(status.state);
  o["fingerprint"] = json::Value(status.fingerprint);
  o["attempts"] = json::Value(static_cast<long long>(status.attempts));
  if (!status.fail_reason.empty()) {
    o["fail_reason"] = json::Value(status.fail_reason);
  }
  if (!status.last_error.empty()) {
    o["last_error"] = json::Value(status.last_error);
  }
  json::dump_file(json::Value(std::move(o)), status_path(id), 2);
}

void RunDir::quarantine_result(const std::string& id, int attempt) const {
  const std::string src = result_path(id);
  if (!file_exists(src)) return;
  const std::string dst = quarantine_path(id, attempt);
  if (::rename(src.c_str(), dst.c_str()) != 0) {
    throw std::runtime_error("RunDir: cannot quarantine " + src + ": " +
                             std::strerror(errno));
  }
}

}  // namespace htpb::core
