#include "core/defense_sweep.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "power/request_trace.hpp"

namespace htpb::core {

namespace {

/// Cores the detector watches, split by allegiance (rates are defined
/// over these populations).
struct MonitoredCores {
  int victims = 0;
  int attackers = 0;
  [[nodiscard]] int total() const noexcept { return victims + attackers; }
};

MonitoredCores count_cores(const AttackCampaign& campaign) {
  MonitoredCores mc;
  for (const auto& app : campaign.apps()) {
    (app.is_attacker() ? mc.attackers : mc.victims) +=
        static_cast<int>(app.cores.size());
  }
  return mc;
}

}  // namespace

DefenseSweep::DefenseSweep(DefenseSweepConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.detectors.empty()) {
    throw std::invalid_argument("DefenseSweep: no detector operating points");
  }
  if (cfg_.placements.empty()) {
    throw std::invalid_argument("DefenseSweep: no placements");
  }
}

std::vector<DefenseCurvePoint> DefenseSweep::run(
    const ParallelSweepRunner& runner) const {
  const std::size_t d_count = cfg_.detectors.size();
  const std::size_t p_count = cfg_.placements.size();

  // Detection arm, record-once/replay-many: detectors are observational,
  // so every operating point shares both the baseline and each
  // placement's dynamics. One master campaign (shared baseline), one
  // *recorded* simulation per placement, then every detector replays the
  // placement's request trace offline -- O(placements) simulations plus
  // O(placements x detectors) cheap replays, where the old arm
  // re-simulated every (detector, placement) cell. Replayed reports are
  // bit-identical to what an in-simulation detector would have filed
  // (the request_trace contract), so the curve is unchanged.
  CampaignConfig detect_cfg = cfg_.base;
  detect_cfg.detector.reset();
  detect_cfg.response.reset();
  AttackCampaign master(detect_cfg);
  master.prime_baseline();
  const MonitoredCores cores = count_cores(master);
  // Every arm built below evaluates the same scenario, so arms sharing a
  // warmup prefix (same placement; detectors/responses excluded from the
  // prefix) fork from one checkpoint instead of each re-simulating the
  // warmup -- one WarmupCache spans all masters. Guard arms change the
  // system config, which changes the prefix fingerprint, so they
  // naturally get their own checkpoints from the same cache.
  const auto warmup_cache = master.warmup_cache();

  const auto traced = runner.map(p_count, [&](std::size_t p) {
    AttackCampaign clone(master);
    return clone.run_traced(cfg_.placements[p]);
  });
  const auto replayed = runner.map(d_count * p_count, [&](std::size_t i) {
    // Mirror the in-sim engagement rule: no Trojans implanted, no report.
    if (cfg_.placements[i % p_count].empty()) {
      return std::optional<power::DetectorReport>{};
    }
    return std::optional{power::replay_detector(
        traced[i % p_count].trace, cfg_.detectors[i / p_count],
        cfg_.base.detector_factory)};
  });

  // Clean arm (false positives): Trojans implanted but dormant, so the
  // manager sees honest traffic -- identical dynamics for every operating
  // point. One dormant recording, replayed through the whole grid.
  std::vector<std::optional<power::DetectorReport>> clean;
  if (cfg_.measure_false_positives && !cfg_.placements.front().empty()) {
    CampaignConfig clean_cfg = cfg_.base;
    clean_cfg.detector.reset();
    clean_cfg.response.reset();
    clean_cfg.trojan.active = false;
    clean_cfg.toggle_period_epochs = 0;  // never wakes up
    AttackCampaign clean_campaign(clean_cfg);
    clean_campaign.adopt_warmup_cache(warmup_cache);
    const power::RequestTrace clean_trace =
        clean_campaign.record_trace(cfg_.placements.front());
    clean = runner.map(d_count, [&](std::size_t d) {
      return std::optional{power::replay_detector(
          clean_trace, cfg_.detectors[d], cfg_.base.detector_factory)};
    });
  } else if (cfg_.measure_false_positives) {
    clean.resize(d_count);  // no Trojans implanted -> no reports
  }

  // Guard arm: the GuardedBudgeter changes the dynamics (and therefore
  // the baseline), so each operating point primes its own master -- in
  // parallel -- before its placements fan out.
  std::vector<CampaignOutcome> guarded;
  if (cfg_.evaluate_guard) {
    const auto guard_masters =
        runner.map(d_count, [&](std::size_t d) {
          CampaignConfig guard_cfg = cfg_.base;
          guard_cfg.detector.reset();
          guard_cfg.response.reset();
          guard_cfg.system.guard_requests = true;
          guard_cfg.system.guard_config = cfg_.detectors[d];
          auto m = std::make_shared<AttackCampaign>(guard_cfg);
          m->adopt_warmup_cache(warmup_cache);
          m->prime_baseline();
          return m;
        });
    guarded = runner.map(d_count * p_count, [&](std::size_t i) {
      AttackCampaign clone(*guard_masters[i / p_count]);
      return clone.run(cfg_.placements[i % p_count]);
    });
  }

  // Response arm: closed-loop policies act on the grant stream, so --
  // like the guard, unlike passive detection -- each (detector, response)
  // pair changes the dynamics and gets its own primed master before its
  // placements fan out. The policy only engages on attacked runs, so the
  // baseline matches the plain arm's.
  const std::size_t r_count = cfg_.responses.size();
  std::vector<CampaignOutcome> responded;
  if (r_count > 0) {
    const auto response_masters =
        runner.map(d_count * r_count, [&](std::size_t i) {
          CampaignConfig response_cfg = cfg_.base;
          response_cfg.detector = cfg_.detectors[i / r_count];
          response_cfg.response = cfg_.response_base;
          response_cfg.response->kind = cfg_.responses[i % r_count];
          auto m = std::make_shared<AttackCampaign>(response_cfg);
          m->adopt_warmup_cache(warmup_cache);
          m->prime_baseline();
          return m;
        });
    responded = runner.map(d_count * r_count * p_count, [&](std::size_t i) {
      AttackCampaign clone(*response_masters[i / p_count]);
      return clone.run(cfg_.placements[i % p_count]);
    });
  }

  std::vector<DefenseCurvePoint> curve(d_count);
  for (std::size_t d = 0; d < d_count; ++d) {
    DefenseCurvePoint& pt = curve[d];
    pt.detector = cfg_.detectors[d];
    pt.cells.resize(p_count);
    double latency_sum = 0.0;
    int latency_n = 0;
    double q_sum = 0.0;
    int q_n = 0;
    for (std::size_t p = 0; p < p_count; ++p) {
      DefenseCell& cell = pt.cells[p];
      cell.detector_index = d;
      cell.placement_index = p;
      cell.outcome = traced[p].outcome;
      cell.outcome.detection = replayed[d * p_count + p];
      if (cell.outcome.detection.has_value()) {
        const power::DetectorReport& rep = *cell.outcome.detection;
        if (cores.victims > 0) {
          cell.victim_flag_rate =
              static_cast<double>(rep.flagged_low.size()) / cores.victims;
        }
        if (cores.attackers > 0) {
          cell.attacker_flag_rate =
              static_cast<double>(rep.flagged_high.size()) / cores.attackers;
        }
        if (cores.total() > 0) {
          // Distinct cores only: under duty-cycle swings one core can sit
          // in both flag lists, and summing the lists pushed this past 1.
          pt.detection_rate +=
              static_cast<double>(rep.unique_flagged()) / cores.total();
        }
        if (rep.first_flag_epoch >= 0) {
          latency_sum += rep.first_flag_epoch;
          ++latency_n;
        }
      }
      pt.victim_flag_rate += cell.victim_flag_rate;
      pt.attacker_flag_rate += cell.attacker_flag_rate;
      if (cell.outcome.q_valid) {
        q_sum += cell.outcome.q;
        ++q_n;
      }
    }
    const auto denom = static_cast<double>(p_count);
    pt.detection_rate /= denom;
    pt.victim_flag_rate /= denom;
    pt.attacker_flag_rate /= denom;
    if (latency_n > 0) pt.mean_detection_latency = latency_sum / latency_n;
    if (q_n > 0) pt.mean_q_plain = q_sum / q_n;

    if (cfg_.measure_false_positives && clean[d].has_value() &&
        cores.total() > 0) {
      const power::DetectorReport& rep = *clean[d];
      pt.false_positive_rate =
          static_cast<double>(rep.unique_flagged()) / cores.total();
    }
    if (cfg_.evaluate_guard) {
      double gq_sum = 0.0;
      int gq_n = 0;
      for (std::size_t p = 0; p < p_count; ++p) {
        const CampaignOutcome& g = guarded[d * p_count + p];
        if (g.q_valid) {
          gq_sum += g.q;
          ++gq_n;
        }
      }
      if (gq_n > 0) pt.mean_q_guarded = gq_sum / gq_n;
    }
    if (r_count > 0) {
      pt.responses.resize(r_count);
      for (std::size_t r = 0; r < r_count; ++r) {
        ResponseCurvePoint& rp = pt.responses[r];
        rp.kind = cfg_.responses[r];
        double rq_sum = 0.0;
        int rq_n = 0;
        double rec_sum = 0.0;
        int rec_n = 0;
        for (std::size_t p = 0; p < p_count; ++p) {
          const CampaignOutcome& o =
              responded[(d * r_count + r) * p_count + p];
          if (o.q_valid) {
            rq_sum += o.q;
            ++rq_n;
          }
          if (o.response.has_value()) {
            const ResponseOutcome& ro = *o.response;
            rp.mean_sanctioned += ro.sanctioned_cores.size();
            rp.mean_collateral += ro.collateral;
            rp.mean_victim_grant_recovery += ro.victim_grant_recovery;
            rp.mean_migrations += ro.migrations;
            if (ro.epochs_to_recovery >= 0) {
              rec_sum += ro.epochs_to_recovery;
              ++rec_n;
            }
          }
        }
        if (rq_n > 0) rp.mean_q = rq_sum / rq_n;
        rp.mean_sanctioned /= denom;
        rp.mean_collateral /= denom;
        rp.mean_victim_grant_recovery /= denom;
        rp.mean_migrations /= denom;
        if (rec_n > 0) rp.mean_epochs_to_recovery = rec_sum / rec_n;
      }
    }
  }
  return curve;
}

}  // namespace htpb::core
