// The paper's linear attack-effect model (Eq. 9):
//
//   Q(D,G) ~ a1*rho + a2*eta + a3*m
//            + sum_j b_j * Phi_victim_j + sum_k c_k * Phi_attacker_k + a0
//
// fitted by ordinary least squares over campaign samples, and used by the
// placement optimizer (Eq. 10-11) to predict Q for unseen placements.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace htpb::core {

struct AttackSample {
  double rho = 0.0;
  double eta = 0.0;
  int m = 0;
  /// Phi of each victim application (order fixed across samples).
  std::vector<double> phi_victims;
  /// Phi of each attacker application (order fixed across samples).
  std::vector<double> phi_attackers;
  /// Observed attack effect.
  double q = 0.0;
};

class AttackEffectModel {
 public:
  /// Fits the regression. All samples must agree on the victim/attacker
  /// counts (the model is per-mix, like the paper's). Requires at least
  /// as many samples as coefficients. Throws std::invalid_argument
  /// otherwise.
  void fit(std::span<const AttackSample> samples);

  [[nodiscard]] bool fitted() const noexcept { return !beta_.empty(); }

  /// Predicted Q for a sample's descriptors (its `q` field is ignored).
  [[nodiscard]] double predict(const AttackSample& s) const;

  /// In-sample coefficient of determination.
  [[nodiscard]] double r2() const noexcept { return r2_; }

  /// [a0, a1 (rho), a2 (eta), a3 (m), b_1..b_V, c_1..c_A].
  [[nodiscard]] const std::vector<double>& coefficients() const noexcept {
    return beta_;
  }
  [[nodiscard]] std::size_t victim_count() const noexcept { return victims_; }
  [[nodiscard]] std::size_t attacker_count() const noexcept {
    return attackers_;
  }

 private:
  [[nodiscard]] std::vector<double> features(const AttackSample& s) const;

  std::vector<double> beta_;
  std::size_t victims_ = 0;
  std::size_t attackers_ = 0;
  double r2_ = 0.0;
};

}  // namespace htpb::core
