#include "core/campaign.hpp"

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>

#include "core/infection.hpp"
#include "system/manycore_system.hpp"
#include "workload/benchmark_profile.hpp"

namespace htpb::core {

namespace {

/// See AttackCampaign::systems_simulated().
std::atomic<std::uint64_t> g_systems_simulated{0};

/// Uniform light workload for infection-only experiments: every core runs
/// one thread of the same moderately communicating benchmark.
workload::Mix uniform_mix() {
  workload::Mix mix;
  mix.name = "uniform";
  mix.victims = {"fluidanimate"};
  return mix;
}

}  // namespace

AttackCampaign::AttackCampaign(CampaignConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.system.validate();
  const workload::Mix mix = cfg_.mix.value_or(uniform_mix());
  const int nodes = cfg_.system.node_count();
  int threads = cfg_.threads_per_app;
  if (threads <= 0) {
    threads = nodes / mix.app_count();
    if (threads == 0) {
      throw std::invalid_argument("AttackCampaign: more apps than cores");
    }
  }
  apps_ = workload::instantiate_mix(mix, threads);
  workload::map_threads_round_robin(apps_, nodes);

  // Resolve the manager node the same way the system will, so that the
  // Trojan configuration and infection analytics agree with the substrate.
  const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
  gm_node_ = cfg_.system.gm_node.value_or(
      cfg_.system.gm_placement == system::GmPlacement::kCenter
          ? geom.id_of(geom.center())
          : geom.id_of(MeshGeometry::corner()));

  if (cfg_.attacker_agent.has_value()) {
    agent_node_ = *cfg_.attacker_agent;
  } else {
    agent_node_ = 0;
    for (const auto& app : apps_) {
      if (app.is_attacker() && !app.cores.empty()) {
        agent_node_ = app.cores.front();
        break;
      }
    }
  }
}

AttackCampaign::RunResult AttackCampaign::run_system(
    std::span<const NodeId> ht_nodes, power::RequestTrace* trace) {
  g_systems_simulated.fetch_add(1, std::memory_order_relaxed);
  system::ManyCoreSystem sys(cfg_.system, apps_);

  // The detector lives exactly as long as this run: constructed fresh
  // from the config (never shared across runs or placements), attached to
  // this run's manager, and reduced to a report before the system dies.
  std::unique_ptr<power::RequestAnomalyDetector> detector;
  if (cfg_.detector.has_value() && !ht_nodes.empty()) {
    detector = cfg_.detector_factory ? cfg_.detector_factory(*cfg_.detector)
                                     : power::make_detector(*cfg_.detector);
    sys.gm().attach_detector(detector.get());
  }
  if (trace != nullptr) {
    trace->epochs.clear();
    trace->node_count = cfg_.system.node_count();
    trace->epoch_cycles = cfg_.system.epoch_cycles;
    sys.gm().attach_recorder(trace);
  }

  // Duty-cycle toggle state. Owned by this frame -- alive across
  // sys.run_epochs below, gone with it -- NOT by the scheduled closures:
  // the old wiring stored the toggle in a shared_ptr<std::function> whose
  // closure captured that same shared_ptr by value, a reference cycle
  // that leaked one function + TrojanConfig per duty-cycled run.
  TrojanConfig toggle_state;
  std::function<void()> toggle_fn;

  // Implant the Trojans (fab-time insertion: present before power-on).
  std::vector<std::unique_ptr<HardwareTrojan>> trojans;
  trojans.reserve(ht_nodes.size());
  for (const NodeId node : ht_nodes) {
    auto ht = std::make_unique<HardwareTrojan>(node);
    sys.network().add_inspector(node, ht.get());
    trojans.push_back(std::move(ht));
  }

  // The attacker's agent broadcasts the configuration at power-on. A
  // unicast to every node covers every router under XY routing (the union
  // of the paths from one source to all destinations is the full mesh).
  if (!ht_nodes.empty()) {
    TrojanConfig tc = cfg_.trojan;
    tc.global_manager = gm_node_;
    tc.attacker_agents.clear();
    for (const auto& app : apps_) {
      if (!app.is_attacker()) continue;
      tc.attacker_agents.insert(tc.attacker_agents.end(), app.cores.begin(),
                                app.cores.end());
    }
    if (tc.attacker_agents.empty()) tc.attacker_agents.push_back(agent_node_);

    const auto broadcast = [&sys, this](const TrojanConfig& config) {
      for (NodeId n = 0; n < static_cast<NodeId>(cfg_.system.node_count());
           ++n) {
        auto pkt = sys.network().make_packet(agent_node_, n,
                                             noc::PacketType::kConfigCmd);
        encode_config(config, *pkt);
        sys.network().send(std::move(pkt));
      }
    };
    broadcast(tc);

    if (cfg_.toggle_period_epochs > 0) {
      // Periodic ON/OFF re-broadcasts (Sec. III-B duty-cycling). The
      // closure re-schedules the frame-owned toggle_fn by reference
      // (each engine event holds its own copy of the closure, never an
      // owning handle to itself); `broadcast` is captured by value
      // because it dies with this block.
      const Cycle period = static_cast<Cycle>(cfg_.toggle_period_epochs) *
                           cfg_.system.epoch_cycles;
      toggle_state = tc;
      toggle_fn = [&sys, broadcast, period, &state = toggle_state,
                   &self = toggle_fn]() {
        state.active = !state.active;
        broadcast(state);
        sys.engine().schedule_in(period, self);
      };
      sys.engine().schedule_in(period, toggle_fn);
    }
  }

  sys.run_epochs(cfg_.warmup_epochs);
  sys.reset_measurement();
  sys.run_epochs(cfg_.measure_epochs);

  RunResult result;
  result.theta.resize(apps_.size());
  result.phi.resize(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    result.theta[i] = sys.app_throughput(apps_[i].id);
    result.phi[i] = sys.app_sensitivity(apps_[i].id);
  }
  result.infection = sys.measured_infection_rate();
  for (const auto& ht : trojans) {
    const TrojanStats& s = ht->stats();
    result.trojan_totals.config_packets_seen += s.config_packets_seen;
    result.trojan_totals.power_requests_seen += s.power_requests_seen;
    result.trojan_totals.victim_requests_modified +=
        s.victim_requests_modified;
    result.trojan_totals.attacker_requests_boosted +=
        s.attacker_requests_boosted;
  }
  if (detector != nullptr) result.detection = detector->cumulative();
  return result;
}

void AttackCampaign::ensure_baseline() {
  if (baseline_ != nullptr) return;
  baseline_ = std::make_shared<const RunResult>(run_system({}));
}

const std::vector<double>& AttackCampaign::baseline_phi() {
  ensure_baseline();
  return baseline_->phi;
}

double AttackCampaign::run_infection_only(std::span<const NodeId> ht_nodes) {
  return run_system(ht_nodes).infection;
}

std::optional<power::DetectorReport> AttackCampaign::run_detection_only(
    std::span<const NodeId> ht_nodes) {
  return run_system(ht_nodes).detection;
}

power::RequestTrace AttackCampaign::record_trace(
    std::span<const NodeId> ht_nodes) {
  power::RequestTrace trace;
  (void)run_system(ht_nodes, &trace);
  return trace;
}

AttackCampaign::TracedRun AttackCampaign::run_traced(
    std::span<const NodeId> ht_nodes) {
  ensure_baseline();
  TracedRun traced;
  traced.outcome = reduce_outcome(run_system(ht_nodes, &traced.trace),
                                  ht_nodes);
  return traced;
}

CampaignOutcome AttackCampaign::run(std::span<const NodeId> ht_nodes) {
  ensure_baseline();
  return reduce_outcome(run_system(ht_nodes), ht_nodes);
}

std::uint64_t AttackCampaign::systems_simulated() noexcept {
  return g_systems_simulated.load(std::memory_order_relaxed);
}

CampaignOutcome AttackCampaign::reduce_outcome(
    const RunResult& attacked, std::span<const NodeId> ht_nodes) const {
  CampaignOutcome out;
  out.infection_measured = attacked.infection;
  out.trojan_totals = attacked.trojan_totals;
  out.detection = attacked.detection;

  const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
  if (!ht_nodes.empty()) {
    out.geometry = placement_geometry(geom, gm_node_, ht_nodes);
    // The infection rate is defined over victim requests (boosting the
    // accomplice's own packets is not an infection), so predict coverage
    // of the victim cores only.
    std::vector<NodeId> sources;
    for (const auto& app : apps_) {
      if (app.is_attacker()) continue;
      for (const NodeId c : app.cores) {
        if (c != gm_node_) sources.push_back(c);
      }
    }
    out.infection_predicted =
        InfectionAnalyzer(geom, gm_node_).predicted_rate(ht_nodes, sources);
  }

  std::vector<double> change_attackers;
  std::vector<double> change_victims;
  out.apps.resize(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    AppOutcome& ao = out.apps[i];
    ao.id = apps_[i].id;
    ao.name = apps_[i].profile.name;
    ao.attacker = apps_[i].is_attacker();
    ao.theta_baseline = baseline_->theta[i];
    ao.theta_attacked = attacked.theta[i];
    ao.change = performance_change(ao.theta_attacked, ao.theta_baseline);
    ao.phi = baseline_->phi[i];
    (ao.attacker ? change_attackers : change_victims).push_back(ao.change);
  }
  if (!change_attackers.empty() && !change_victims.empty()) {
    out.q_valid = true;
    out.q = attack_effect_q(change_attackers, change_victims);
  }
  return out;
}

}  // namespace htpb::core
