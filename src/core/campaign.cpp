#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/json.hpp"
#include "common/snapshot.hpp"
#include "core/infection.hpp"
#include "core/run_dir.hpp"
#include "sim/event_desc.hpp"
#include "system/manycore_system.hpp"
#include "workload/benchmark_profile.hpp"

namespace htpb::core {

namespace {

/// See AttackCampaign::systems_simulated(). The warmup-prefix scratch
/// runs (compute_warmup) are deliberately NOT counted here -- this
/// counter's contract is "chip lifetimes run through the standard leg
/// path" and the trace-replay tests assert exact deltas of it; scratch
/// warmups are accounted by warmup_epochs_simulated instead.
std::atomic<std::uint64_t> g_systems_simulated{0};

/// See AttackCampaign::warmup_epochs_simulated().
std::atomic<std::uint64_t> g_warmup_epochs_simulated{0};

/// The attacker agent's power-on broadcast: a unicast CONFIG_CMD to every
/// node covers every router under XY routing (the union of the paths from
/// one source to all destinations is the full mesh).
void broadcast_config(system::ManyCoreSystem& sys, NodeId agent_node,
                      const TrojanConfig& config) {
  for (NodeId n = 0; n < static_cast<NodeId>(sys.config().node_count());
       ++n) {
    auto pkt =
        sys.network().make_packet(agent_node, n, noc::PacketType::kConfigCmd);
    encode_config(config, *pkt);
    sys.network().send(std::move(pkt));
  }
}

json::Value trojan_config_to_json(const TrojanConfig& tc) {
  json::Object o;
  o["active"] = json::Value(tc.active);
  o["attenuate_victims"] = json::Value(tc.attenuate_victims);
  o["boost_attackers"] = json::Value(tc.boost_attackers);
  o["victim_scale"] = json::Value(tc.victim_scale);
  o["attacker_boost"] = json::Value(tc.attacker_boost);
  o["global_manager"] = json::Value(static_cast<long long>(tc.global_manager));
  json::Array agents;
  for (const NodeId n : tc.attacker_agents) {
    agents.push_back(json::Value(static_cast<long long>(n)));
  }
  o["attacker_agents"] = json::Value(std::move(agents));
  o["adapt_enabled"] = json::Value(tc.adapt.enabled);
  o["adapt_alpha"] = json::Value(tc.adapt.alpha);
  o["adapt_backoff_ratio"] = json::Value(tc.adapt.backoff_ratio);
  o["adapt_max_on_epochs"] =
      json::Value(static_cast<long long>(tc.adapt.max_on_epochs));
  o["adapt_hold_off_epochs"] =
      json::Value(static_cast<long long>(tc.adapt.hold_off_epochs));
  return json::Value(std::move(o));
}

TrojanConfig trojan_config_from_json(const json::Value& v) {
  const json::Object& o = v.as_object();
  TrojanConfig tc;
  tc.active = o.find("active")->as_bool();
  tc.attenuate_victims = o.find("attenuate_victims")->as_bool();
  tc.boost_attackers = o.find("boost_attackers")->as_bool();
  tc.victim_scale = o.find("victim_scale")->as_double();
  tc.attacker_boost = o.find("attacker_boost")->as_double();
  tc.global_manager = static_cast<NodeId>(o.find("global_manager")->as_int());
  tc.attacker_agents.clear();
  for (const json::Value& n : o.find("attacker_agents")->as_array()) {
    tc.attacker_agents.push_back(static_cast<NodeId>(n.as_int()));
  }
  tc.adapt.enabled = o.find("adapt_enabled")->as_bool();
  tc.adapt.alpha = o.find("adapt_alpha")->as_double();
  tc.adapt.backoff_ratio = o.find("adapt_backoff_ratio")->as_double();
  tc.adapt.max_on_epochs =
      static_cast<int>(o.find("adapt_max_on_epochs")->as_int());
  tc.adapt.hold_off_epochs =
      static_cast<int>(o.find("adapt_hold_off_epochs")->as_int());
  return tc;
}

json::Value trace_to_json(const power::RequestTrace& trace) {
  json::Object o;
  o["node_count"] = json::Value(static_cast<long long>(trace.node_count));
  o["epoch_cycles"] = common::ju64(trace.epoch_cycles);
  json::Array epochs;
  for (const power::TraceEpoch& ep : trace.epochs) {
    json::Object e;
    e["epoch_start"] = common::ju64(ep.epoch_start);
    e["allocate_cycle"] = common::ju64(ep.allocate_cycle);
    e["budget_mw"] = common::ju64(ep.budget_mw);
    json::Array reqs;
    for (const power::BudgetRequest& r : ep.requests) {
      json::Array a;
      a.push_back(json::Value(static_cast<long long>(r.node)));
      a.push_back(json::Value(static_cast<long long>(r.app)));
      a.push_back(json::Value(static_cast<long long>(r.request_mw)));
      reqs.push_back(json::Value(std::move(a)));
    }
    e["requests"] = json::Value(std::move(reqs));
    epochs.push_back(json::Value(std::move(e)));
  }
  o["epochs"] = json::Value(std::move(epochs));
  return json::Value(std::move(o));
}

power::RequestTrace trace_from_json(const json::Value& v) {
  const json::Object& o = v.as_object();
  power::RequestTrace trace;
  trace.node_count = static_cast<int>(o.find("node_count")->as_int());
  trace.epoch_cycles = common::pu64(*o.find("epoch_cycles"));
  for (const json::Value& ev : o.find("epochs")->as_array()) {
    const json::Object& e = ev.as_object();
    power::TraceEpoch ep;
    ep.epoch_start = common::pu64(*e.find("epoch_start"));
    ep.allocate_cycle = common::pu64(*e.find("allocate_cycle"));
    ep.budget_mw = common::pu64(*e.find("budget_mw"));
    for (const json::Value& rv : e.find("requests")->as_array()) {
      const json::Array& a = rv.as_array();
      power::BudgetRequest r;
      r.node = static_cast<NodeId>(a.at(0).as_int());
      r.app = static_cast<AppId>(a.at(1).as_int());
      r.request_mw = static_cast<std::uint32_t>(a.at(2).as_int());
      ep.requests.push_back(r);
    }
    trace.epochs.push_back(std::move(ep));
  }
  return trace;
}

json::Value detector_config_fingerprint_json(const power::DetectorConfig& d) {
  json::Object o;
  o["kind"] = json::Value(static_cast<long long>(d.kind));
  o["history_alpha"] = json::Value(d.history_alpha);
  o["low_ratio"] = json::Value(d.low_ratio);
  o["high_ratio"] = json::Value(d.high_ratio);
  o["warmup_epochs"] = json::Value(static_cast<long long>(d.warmup_epochs));
  o["confirm_epochs"] = json::Value(static_cast<long long>(d.confirm_epochs));
  return json::Value(std::move(o));
}

/// Canonical serialization of every SystemConfig field that can move the
/// simulated dynamics. The power model has no field accessors; its
/// observable effect -- milliwatts at every ladder level -- is a faithful
/// encoding (two levels already pin both parameters).
json::Value system_config_fingerprint_json(const system::SystemConfig& sc) {
  json::Object o;
  o["width"] = json::Value(static_cast<long long>(sc.width));
  o["height"] = json::Value(static_cast<long long>(sc.height));
  json::Object noc;
  noc["vcs"] = json::Value(static_cast<long long>(sc.noc.vcs));
  noc["vc_depth"] = json::Value(static_cast<long long>(sc.noc.vc_depth));
  noc["data_packet_flits"] =
      json::Value(static_cast<long long>(sc.noc.data_packet_flits));
  noc["meta_packet_flits"] =
      json::Value(static_cast<long long>(sc.noc.meta_packet_flits));
  noc["command_packet_flits"] =
      json::Value(static_cast<long long>(sc.noc.command_packet_flits));
  noc["router_latency"] =
      json::Value(static_cast<long long>(sc.noc.router_latency));
  noc["link_latency"] = json::Value(static_cast<long long>(sc.noc.link_latency));
  noc["routing"] = json::Value(static_cast<long long>(sc.noc.routing));
  o["noc"] = json::Value(std::move(noc));
  json::Object l1;
  l1["sets"] = common::ju64(sc.l1.sets);
  l1["ways"] = json::Value(static_cast<long long>(sc.l1.ways));
  l1["mshrs"] = json::Value(static_cast<long long>(sc.l1.mshrs));
  o["l1"] = json::Value(std::move(l1));
  json::Object l2;
  l2["sets"] = common::ju64(sc.l2.sets);
  l2["ways"] = json::Value(static_cast<long long>(sc.l2.ways));
  l2["mem_latency"] = common::ju64(sc.l2.mem_latency);
  o["l2"] = json::Value(std::move(l2));
  json::Array freqs;
  for (int i = 0; i < sc.freqs.num_levels(); ++i) {
    json::Array lvl;
    lvl.push_back(json::Value(sc.freqs.ghz(i)));
    lvl.push_back(json::Value(sc.freqs.volts(i)));
    lvl.push_back(json::Value(
        static_cast<long long>(sc.power_model.milliwatts_at(sc.freqs, i))));
    freqs.push_back(json::Value(std::move(lvl)));
  }
  o["freqs_power"] = json::Value(std::move(freqs));
  o["budgeter"] = json::Value(static_cast<long long>(sc.budgeter));
  o["guard_requests"] = json::Value(sc.guard_requests);
  o["guard_config"] = detector_config_fingerprint_json(sc.guard_config);
  o["budget_fraction"] = json::Value(sc.budget_fraction);
  o["epoch_cycles"] = common::ju64(sc.epoch_cycles);
  o["collect_window"] = common::ju64(sc.collect_window);
  o["first_epoch_cycle"] = common::ju64(sc.first_epoch_cycle);
  o["gm_placement"] = json::Value(static_cast<long long>(sc.gm_placement));
  o["gm_node"] = json::Value(
      static_cast<long long>(sc.gm_node.has_value() ? *sc.gm_node : -1));
  o["seed"] = common::ju64(sc.seed);
  return json::Value(std::move(o));
}

/// Uniform light workload for infection-only experiments: every core runs
/// one thread of the same moderately communicating benchmark.
workload::Mix uniform_mix() {
  workload::Mix mix;
  mix.name = "uniform";
  mix.victims = {"fluidanimate"};
  return mix;
}

}  // namespace

/// One leg's attack wiring, owned by the leg frame: the implanted Trojans
/// and the duty-cycle controller state the engine's kCampaignToggle /
/// kCampaignAdapt handlers mutate. The handlers close over this struct by
/// reference (wiring, never serialized); the *state* fields are what the
/// warmup checkpoint captures and restores.
struct AttackFrame {
  std::vector<std::unique_ptr<HardwareTrojan>> trojans;
  /// The resolved broadcast configuration (immutable after install).
  TrojanConfig tc;
  NodeId agent_node = 0;
  Cycle toggle_period = 0;  ///< >0 iff the periodic toggle is engaged

  // -- checkpointed controller state --------------------------------------
  TrojanConfig toggle_state;
  struct Adapt {
    bool active = true;
    int on_streak = 0;
    int hold = 0;
    double reference = 0.0;
    bool reference_valid = false;
  };
  Adapt adapt_state;
  /// Adaptation decisions taken by THIS frame (warmup included); the leg
  /// adds it into the run's running totals when it finishes.
  AdaptationOutcome adapt_totals;
  bool adapt_engaged = false;
};

/// Everything a forked run needs to resume at the end of warmup: the chip
/// snapshot, the Trojans' latched registers, the duty-cycle controller
/// state, and the warmup request stream (replayed through the arm's own
/// detector/response, which the checkpoint deliberately excludes).
struct WarmupCheckpoint {
  std::string fingerprint;
  json::Value system;
  std::vector<json::Value> trojans;  ///< aligned with the placement order
  TrojanConfig toggle_state;
  AttackFrame::Adapt adapt_state;
  AdaptationOutcome adapt_totals;
  power::RequestTrace trace;  ///< the warmup epochs, in order
};

namespace {

constexpr long long kWarmupCheckpointSchema = 1;

json::Value adapt_state_to_json(const AttackFrame::Adapt& a) {
  json::Object o;
  o["active"] = json::Value(a.active);
  o["on_streak"] = json::Value(static_cast<long long>(a.on_streak));
  o["hold"] = json::Value(static_cast<long long>(a.hold));
  o["reference"] = json::Value(a.reference);
  o["reference_valid"] = json::Value(a.reference_valid);
  return json::Value(std::move(o));
}

AttackFrame::Adapt adapt_state_from_json(const json::Value& v) {
  const json::Object& o = v.as_object();
  AttackFrame::Adapt a;
  a.active = o.find("active")->as_bool();
  a.on_streak = static_cast<int>(o.find("on_streak")->as_int());
  a.hold = static_cast<int>(o.find("hold")->as_int());
  a.reference = o.find("reference")->as_double();
  a.reference_valid = o.find("reference_valid")->as_bool();
  return a;
}

json::Value warmup_payload_to_json(const WarmupCheckpoint& ck) {
  json::Object o;
  o["system"] = ck.system;
  json::Array trojans;
  for (const json::Value& t : ck.trojans) trojans.push_back(t);
  o["trojans"] = json::Value(std::move(trojans));
  o["toggle_state"] = trojan_config_to_json(ck.toggle_state);
  o["adapt_state"] = adapt_state_to_json(ck.adapt_state);
  json::Object totals;
  totals["epochs_on"] =
      json::Value(static_cast<long long>(ck.adapt_totals.epochs_on));
  totals["epochs_off"] =
      json::Value(static_cast<long long>(ck.adapt_totals.epochs_off));
  totals["backoffs"] =
      json::Value(static_cast<long long>(ck.adapt_totals.backoffs));
  o["adapt_totals"] = json::Value(std::move(totals));
  o["trace"] = trace_to_json(ck.trace);
  return json::Value(std::move(o));
}

std::shared_ptr<const WarmupCheckpoint> warmup_payload_from_json(
    const json::Value& v, const std::string& fp) {
  const json::Object& o = v.as_object();
  auto ck = std::make_shared<WarmupCheckpoint>();
  ck->fingerprint = fp;
  ck->system = *o.find("system");
  for (const json::Value& t : o.find("trojans")->as_array()) {
    ck->trojans.push_back(t);
  }
  ck->toggle_state = trojan_config_from_json(*o.find("toggle_state"));
  ck->adapt_state = adapt_state_from_json(*o.find("adapt_state"));
  const json::Object& totals = o.find("adapt_totals")->as_object();
  ck->adapt_totals.epochs_on =
      static_cast<int>(totals.find("epochs_on")->as_int());
  ck->adapt_totals.epochs_off =
      static_cast<int>(totals.find("epochs_off")->as_int());
  ck->adapt_totals.backoffs =
      static_cast<int>(totals.find("backoffs")->as_int());
  ck->trace = trace_from_json(*o.find("trace"));
  return ck;
}

/// Loads a persisted checkpoint. Returns nullptr -- caller recomputes --
/// on ANY defect: unreadable file, unparseable JSON, schema or
/// fingerprint mismatch, or a payload whose checksum does not match (a
/// torn or hand-edited file must never be restored into a simulation).
std::shared_ptr<const WarmupCheckpoint> load_warmup_file(
    const std::string& path, const std::string& fp) {
  try {
    const json::Value v = json::parse(common::read_file(path));
    const json::Object& o = v.as_object();
    if (!o.contains("schema") ||
        o.find("schema")->as_int() != kWarmupCheckpointSchema) {
      return nullptr;
    }
    if (!o.contains("fingerprint") ||
        o.find("fingerprint")->as_string() != fp) {
      return nullptr;
    }
    if (!o.contains("checksum") || !o.contains("payload")) return nullptr;
    const json::Value& payload = *o.find("payload");
    if (o.find("checksum")->as_string() != fingerprint(json::dump(payload))) {
      return nullptr;
    }
    return warmup_payload_from_json(payload, fp);
  } catch (const std::exception&) {
    return nullptr;
  }
}

void save_warmup_file(const std::string& path, const WarmupCheckpoint& ck) {
  json::Object o;
  o["schema"] = json::Value(kWarmupCheckpointSchema);
  o["fingerprint"] = json::Value(ck.fingerprint);
  json::Value payload = warmup_payload_to_json(ck);
  o["checksum"] = json::Value(fingerprint(json::dump(payload)));
  o["payload"] = std::move(payload);
  common::atomic_write_file(path, json::dump(json::Value(std::move(o))));
}

}  // namespace

/// Compute-once store of warmup checkpoints keyed by prefix fingerprint.
/// The first caller for a fingerprint computes (publishing a future so
/// concurrent arms wait instead of duplicating the work); a failed
/// computation publishes nullptr, which callers treat as "simulate the
/// warmup yourself". Bounded: oldest completed entries are evicted first
/// (in-flight shared_ptrs keep evicted checkpoints alive).
class WarmupCache {
 public:
  using Checkpoint = std::shared_ptr<const WarmupCheckpoint>;
  static constexpr std::size_t kMaxEntries = 128;

  Checkpoint get_or_compute(const std::string& fp,
                            const std::function<Checkpoint()>& compute) {
    std::promise<Checkpoint> promise;
    std::shared_future<Checkpoint> fut;
    bool compute_here = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = entries_.find(fp);
      if (it != entries_.end()) {
        fut = it->second;
      } else {
        fut = promise.get_future().share();
        entries_.emplace(fp, fut);
        order_.push_back(fp);
        if (order_.size() > kMaxEntries) {
          entries_.erase(order_.front());
          order_.pop_front();
        }
        compute_here = true;
      }
    }
    if (compute_here) {
      try {
        promise.set_value(compute());
      } catch (const std::exception&) {
        promise.set_value(nullptr);  // waiters fall back, never wedge
      }
    }
    return fut.get();
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::shared_future<Checkpoint>> entries_;
  std::deque<std::string> order_;
};

AttackCampaign::AttackCampaign(CampaignConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.system.validate();
  if (cfg_.response.has_value() && !cfg_.detector.has_value()) {
    throw std::invalid_argument(
        "AttackCampaign: a response policy requires a detector to act on");
  }
  if (cfg_.trojan.adapt.enabled && cfg_.toggle_period_epochs > 0) {
    throw std::invalid_argument(
        "AttackCampaign: adaptation and toggle_period_epochs are rival "
        "duty-cycle controllers; enable one");
  }
  const workload::Mix mix = cfg_.mix.value_or(uniform_mix());
  const int nodes = cfg_.system.node_count();
  int threads = cfg_.threads_per_app;
  if (threads <= 0) {
    threads = nodes / mix.app_count();
    if (threads == 0) {
      throw std::invalid_argument("AttackCampaign: more apps than cores");
    }
  }
  apps_ = workload::instantiate_mix(mix, threads);
  workload::map_threads_round_robin(apps_, nodes);

  // Resolve the manager node the same way the system will, so that the
  // Trojan configuration and infection analytics agree with the substrate.
  const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
  gm_node_ = cfg_.system.gm_node.value_or(
      cfg_.system.gm_placement == system::GmPlacement::kCenter
          ? geom.id_of(geom.center())
          : geom.id_of(MeshGeometry::corner()));

  if (cfg_.attacker_agent.has_value()) {
    agent_node_ = *cfg_.attacker_agent;
  } else {
    agent_node_ = 0;
    for (const auto& app : apps_) {
      if (app.is_attacker() && !app.cores.empty()) {
        agent_node_ = app.cores.front();
        break;
      }
    }
  }
  warmup_cache_ = std::make_shared<WarmupCache>();
}

AttackCampaign::RunResult AttackCampaign::run_system(
    std::span<const NodeId> ht_nodes, power::RequestTrace* trace) {
  // The detector lives exactly as long as this run: constructed fresh
  // from the config (never shared across runs or placements) and reduced
  // to a report before the run ends. For a migrating run it spans BOTH
  // legs -- migration must not wipe the defender's accumulated evidence.
  std::unique_ptr<power::RequestAnomalyDetector> detector;
  if (cfg_.detector.has_value() && !ht_nodes.empty()) {
    detector = cfg_.detector_factory ? cfg_.detector_factory(*cfg_.detector)
                                     : power::make_detector(*cfg_.detector);
  }
  std::unique_ptr<power::ResponseEngine> response;
  if (cfg_.response.has_value() && detector != nullptr) {
    response = std::make_unique<power::ResponseEngine>(*cfg_.response);
    response->attach_detector(detector.get());
  }
  const bool migrate_mode =
      response != nullptr && response->kind() == power::ResponseKind::kMigrate;

  if (trace != nullptr) {
    trace->epochs.clear();
    trace->node_count = cfg_.system.node_count();
    trace->epoch_cycles = cfg_.system.epoch_cycles;
  }

  RunResult result;
  std::vector<double> instr(apps_.size(), 0.0);
  double infection_epoch_sum = 0.0;
  int measured_total = 0;
  AdaptationOutcome adapt_totals;
  bool adapt_engaged = false;

  // Does the cumulative report contain a verdict the configured trigger
  // listens to? (The migrate policy's "first confirmed flag".)
  const auto triggered = [this](const power::DetectorReport& report) {
    if (!cfg_.response.has_value()) return false;
    switch (cfg_.response->trigger) {
      case power::ResponseTrigger::kHigh: return !report.flagged_high.empty();
      case power::ResponseTrigger::kLow: return !report.flagged_low.empty();
      case power::ResponseTrigger::kBoth: return report.any();
    }
    return false;
  };

  // One simulated chip lifetime ("leg"): a non-migrating run is a single
  // full leg; a migrating run is a pre-migration leg cut short at the
  // triggering epoch boundary plus a remapped leg for the remaining
  // epochs. Returns the number of epochs actually measured.
  const auto run_leg = [&](const std::vector<workload::Application>& apps,
                           int measure_epochs, bool stop_on_flag) -> int {
    g_systems_simulated.fetch_add(1, std::memory_order_relaxed);
    system::ManyCoreSystem sys(cfg_.system, apps);
    if (detector != nullptr) sys.gm().attach_detector(detector.get());
    // Quarantine/throttle filter inside the manager; the migrate engine
    // never filters -- re-placement is this layer's move.
    if (response != nullptr && !migrate_mode) {
      sys.gm().attach_response(response.get());
    }

    // Implant the Trojans, broadcast the attacker's configuration and arm
    // the duty-cycle controllers. The frame owns every piece of attack
    // state for this leg; the engine handlers close over it by reference.
    AttackFrame frame;
    install_attack(sys, apps, ht_nodes, frame);

    // Warmup: fork from the shared prefix checkpoint when one is (or can
    // be made) available, otherwise simulate it cycle by cycle.
    bool forked = false;
    if (cfg_.warmup_fork && cfg_.warmup_epochs > 0) {
      const auto ckpt =
          obtain_warmup(warmup_fingerprint(apps, ht_nodes), apps, ht_nodes);
      if (ckpt != nullptr && ckpt->trojans.size() == frame.trojans.size()) {
        // Detectors are observational, so feeding the checkpoint's
        // recorded warmup request stream to this arm's fresh detector
        // reproduces, bit for bit, the state an in-simulation detector
        // would hold at the cut (the request_trace replay contract). The
        // response engine is stepped alongside; if it would have
        // sanctioned during warmup, the checkpoint's response-free
        // dynamics are invalid for this arm and it re-simulates in full.
        bool valid = true;
        for (const power::TraceEpoch& ep : ckpt->trace.epochs) {
          power::DetectorReport newly;
          if (detector != nullptr) newly = detector->observe_epoch(ep.requests);
          if (response != nullptr && !migrate_mode) {
            response->begin_epoch(newly);
            if (response->any_sanctioned()) {
              valid = false;
              break;
            }
            response->end_epoch();
          }
        }
        if (valid) {
          sys.load_state(ckpt->system);
          for (std::size_t i = 0; i < frame.trojans.size(); ++i) {
            frame.trojans[i]->load_state(ckpt->trojans[i]);
          }
          frame.toggle_state = ckpt->toggle_state;
          frame.adapt_state = ckpt->adapt_state;
          frame.adapt_totals = ckpt->adapt_totals;
          if (trace != nullptr) {
            trace->epochs.insert(trace->epochs.end(),
                                 ckpt->trace.epochs.begin(),
                                 ckpt->trace.epochs.end());
          }
          forked = true;
        } else {
          // The failed replay polluted the fresh detector and response;
          // rebuild both before simulating the warmup for real. (Only
          // single-leg policies land here: migrate never attaches the
          // response, so its replay cannot be invalidated.)
          detector = cfg_.detector_factory
                         ? cfg_.detector_factory(*cfg_.detector)
                         : power::make_detector(*cfg_.detector);
          sys.gm().attach_detector(detector.get());
          response = std::make_unique<power::ResponseEngine>(*cfg_.response);
          response->attach_detector(detector.get());
          sys.gm().attach_response(response.get());
        }
      }
    }
    if (trace != nullptr) sys.gm().attach_recorder(trace);
    if (!forked && cfg_.warmup_epochs > 0) {
      g_warmup_epochs_simulated.fetch_add(
          static_cast<std::uint64_t>(cfg_.warmup_epochs),
          std::memory_order_relaxed);
      sys.run_epochs(cfg_.warmup_epochs);
    }
    sys.reset_measurement();
    int measured = 0;
    if (stop_on_flag && detector != nullptr) {
      // Epoch-by-epoch is bit-identical to one run_epochs call (the
      // engine just advances cycles); it only adds the boundary checks.
      for (int e = 0; e < measure_epochs; ++e) {
        sys.run_epochs(1);
        ++measured;
        if (triggered(detector->cumulative())) break;
      }
    } else {
      sys.run_epochs(measure_epochs);
      measured = measure_epochs;
    }

    const double elapsed =
        static_cast<double>(measured) *
        static_cast<double>(cfg_.system.epoch_cycles);
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      instr[i] += sys.app_throughput(apps_[i].id) * elapsed;
    }
    if (result.phi.empty()) {
      result.phi.resize(apps_.size());
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        result.phi[i] = sys.app_sensitivity(apps_[i].id);
      }
    }
    infection_epoch_sum +=
        sys.measured_infection_rate() * static_cast<double>(measured);
    measured_total += measured;

    const auto& hist = sys.gm().history();
    const std::size_t first =
        hist.size() >= static_cast<std::size_t>(measured)
            ? hist.size() - static_cast<std::size_t>(measured)
            : 0;
    for (std::size_t i = first; i < hist.size(); ++i) {
      result.victim_grants.push_back(
          static_cast<double>(hist[i].victim_granted_mw));
    }

    for (const auto& ht : frame.trojans) {
      const TrojanStats& s = ht->stats();
      result.trojan_totals.config_packets_seen += s.config_packets_seen;
      result.trojan_totals.power_requests_seen += s.power_requests_seen;
      result.trojan_totals.victim_requests_modified +=
          s.victim_requests_modified;
      result.trojan_totals.attacker_requests_boosted +=
          s.attacker_requests_boosted;
    }
    if (frame.adapt_engaged) {
      adapt_engaged = true;
      adapt_totals.epochs_on += frame.adapt_totals.epochs_on;
      adapt_totals.epochs_off += frame.adapt_totals.epochs_off;
      adapt_totals.backoffs += frame.adapt_totals.backoffs;
    }
    return measured;
  };

  const int measured1 = run_leg(apps_, cfg_.measure_epochs, migrate_mode);

  if (migrate_mode && triggered(detector->cumulative())) {
    // Migration bookkeeping: the cores whose confirmed flags pulled the
    // trigger, stamped with the observed-epoch index of the boundary.
    power::ResponseStats stats;
    const power::DetectorReport& cum = detector->cumulative();
    const auto collect = [&stats](const std::vector<NodeId>& flagged) {
      for (const NodeId n : flagged) {
        if (std::find(stats.sanctioned_cores.begin(),
                      stats.sanctioned_cores.end(),
                      n) == stats.sanctioned_cores.end()) {
          stats.sanctioned_cores.push_back(n);
        }
      }
    };
    if (cfg_.response->trigger != power::ResponseTrigger::kLow) {
      collect(cum.flagged_high);
    }
    if (cfg_.response->trigger != power::ResponseTrigger::kHigh) {
      collect(cum.flagged_low);
    }
    stats.first_sanction_epoch = cfg_.warmup_epochs + measured1 - 1;
    result.response_stats = stats;

    if (measured1 < cfg_.measure_epochs) {
      // Re-place every application through the mesh's center mirror
      // (an involution, so the remap is collision-free) and resume for
      // the remaining epochs. Modeled as rebuild-and-resume at the
      // epoch boundary: caches and histories re-warm on the new
      // placement, the detector carries its evidence across.
      const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
      std::vector<workload::Application> migrated = apps_;
      for (auto& app : migrated) {
        for (NodeId& core : app.cores) {
          const Coord c = geom.coord_of(core);
          core = geom.id_of(Coord{geom.width() - 1 - c.x,
                                  geom.height() - 1 - c.y});
        }
      }
      result.migrations = 1;
      run_leg(migrated, cfg_.measure_epochs - measured1, false);
    }
  } else if (migrate_mode) {
    result.response_stats = power::ResponseStats{};
  } else if (response != nullptr) {
    result.response_stats = response->stats();
  }

  const double total_cycles =
      static_cast<double>(measured_total) *
      static_cast<double>(cfg_.system.epoch_cycles);
  result.theta.resize(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    result.theta[i] = total_cycles > 0.0 ? instr[i] / total_cycles : 0.0;
  }
  result.infection = measured_total > 0
                         ? infection_epoch_sum /
                               static_cast<double>(measured_total)
                         : 0.0;
  if (!result.victim_grants.empty()) {
    double sum = 0.0;
    for (const double v : result.victim_grants) sum += v;
    result.mean_victim_grant_mw =
        sum / static_cast<double>(result.victim_grants.size());
  }
  if (adapt_engaged) result.adaptation = adapt_totals;
  if (detector != nullptr) result.detection = detector->cumulative();
  return result;
}

void AttackCampaign::ensure_baseline() {
  if (baseline_ != nullptr) return;
  baseline_ = std::make_shared<const RunResult>(run_system({}));
}

const std::vector<double>& AttackCampaign::baseline_phi() {
  ensure_baseline();
  return baseline_->phi;
}

double AttackCampaign::run_infection_only(std::span<const NodeId> ht_nodes) {
  return run_system(ht_nodes).infection;
}

std::optional<power::DetectorReport> AttackCampaign::run_detection_only(
    std::span<const NodeId> ht_nodes) {
  return run_system(ht_nodes).detection;
}

power::RequestTrace AttackCampaign::record_trace(
    std::span<const NodeId> ht_nodes) {
  power::RequestTrace trace;
  (void)run_system(ht_nodes, &trace);
  return trace;
}

AttackCampaign::TracedRun AttackCampaign::run_traced(
    std::span<const NodeId> ht_nodes) {
  ensure_baseline();
  TracedRun traced;
  traced.outcome = reduce_outcome(run_system(ht_nodes, &traced.trace),
                                  ht_nodes);
  return traced;
}

CampaignOutcome AttackCampaign::run(std::span<const NodeId> ht_nodes) {
  ensure_baseline();
  return reduce_outcome(run_system(ht_nodes), ht_nodes);
}

std::uint64_t AttackCampaign::systems_simulated() noexcept {
  return g_systems_simulated.load(std::memory_order_relaxed);
}

std::uint64_t AttackCampaign::warmup_epochs_simulated() noexcept {
  return g_warmup_epochs_simulated.load(std::memory_order_relaxed);
}

void AttackCampaign::install_attack(
    system::ManyCoreSystem& sys,
    const std::vector<workload::Application>& apps,
    std::span<const NodeId> ht_nodes, AttackFrame& frame) const {
  // Implant the Trojans (fab-time insertion: present before power-on).
  frame.trojans.reserve(ht_nodes.size());
  for (const NodeId node : ht_nodes) {
    auto ht = std::make_unique<HardwareTrojan>(node);
    sys.network().add_inspector(node, ht.get());
    frame.trojans.push_back(std::move(ht));
  }
  if (ht_nodes.empty()) return;

  TrojanConfig tc = cfg_.trojan;
  tc.global_manager = gm_node_;
  tc.attacker_agents.clear();
  for (const auto& app : apps) {
    if (!app.is_attacker()) continue;
    tc.attacker_agents.insert(tc.attacker_agents.end(), app.cores.begin(),
                              app.cores.end());
  }
  // Derived from this leg's mapping so a migrated agent broadcasts from
  // its new core (leg 1 reproduces agent_node_ exactly).
  NodeId agent_node = agent_node_;
  if (!cfg_.attacker_agent.has_value() && !tc.attacker_agents.empty()) {
    agent_node = tc.attacker_agents.front();
  }
  if (tc.attacker_agents.empty()) tc.attacker_agents.push_back(agent_node);
  frame.tc = tc;
  frame.agent_node = agent_node;

  broadcast_config(sys, agent_node, tc);

  if (cfg_.toggle_period_epochs > 0) {
    // Periodic ON/OFF re-broadcasts (Sec. III-B duty-cycling), driven by
    // serializable kCampaignToggle events: the handler -- wiring, closed
    // over the frame -- flips the frame-owned state and re-schedules the
    // next descriptor, so a snapshot cut between toggles checkpoints the
    // pending event and the controller state, never a closure.
    frame.toggle_period = static_cast<Cycle>(cfg_.toggle_period_epochs) *
                          cfg_.system.epoch_cycles;
    frame.toggle_state = tc;
    sys.engine().set_handler(
        sim::EventKind::kCampaignToggle, -1,
        [&sys, &frame](const sim::EventDesc&) {
          frame.toggle_state.active = !frame.toggle_state.active;
          broadcast_config(sys, frame.agent_node, frame.toggle_state);
          sys.engine().schedule_desc_in(
              frame.toggle_period,
              sim::EventDesc{sim::EventKind::kCampaignToggle, -1, 0, 0});
        });
    sys.engine().schedule_desc_in(
        frame.toggle_period,
        sim::EventDesc{sim::EventKind::kCampaignToggle, -1, 0, 0});
  }

  if (tc.adapt.enabled) {
    // The closed loop's attacker half (TrojanAdaptation): one decision
    // per epoch, taken one cycle before the next epoch opens -- every
    // grant of the closing epoch has landed and the re-broadcast
    // deterministically precedes the next requests. Same serializable
    // descriptor pattern as the toggle.
    frame.adapt_engaged = true;
    frame.adapt_state.active = tc.active;
    const Cycle period = cfg_.system.epoch_cycles;
    sys.engine().set_handler(
        sim::EventKind::kCampaignAdapt, -1,
        [&sys, &frame, period](const sim::EventDesc&) {
          const TrojanConfig& tc = frame.tc;
          AttackFrame::Adapt& st = frame.adapt_state;
          AdaptationOutcome& totals = frame.adapt_totals;
          double sum = 0.0;
          for (const NodeId n : tc.attacker_agents) {
            sum += static_cast<double>(sys.last_grant_mw(n));
          }
          const double mean_grant =
              tc.attacker_agents.empty()
                  ? 0.0
                  : sum / static_cast<double>(tc.attacker_agents.size());
          if (st.active) {
            ++totals.epochs_on;
            ++st.on_streak;
            // A grant well below the hiding-time reference means a
            // sanction landed; back off longer than a voluntary rest.
            const bool sanctioned =
                st.reference_valid &&
                mean_grant < tc.adapt.backoff_ratio * st.reference;
            if (sanctioned || st.on_streak >= tc.adapt.max_on_epochs) {
              st.active = false;
              st.on_streak = 0;
              st.hold = sanctioned ? 2 * tc.adapt.hold_off_epochs
                                   : tc.adapt.hold_off_epochs;
              if (sanctioned) ++totals.backoffs;
              TrojanConfig off = tc;
              off.active = false;
              broadcast_config(sys, frame.agent_node, off);
            }
          } else {
            ++totals.epochs_off;
            st.reference = st.reference_valid
                               ? (1.0 - tc.adapt.alpha) * st.reference +
                                     tc.adapt.alpha * mean_grant
                               : mean_grant;
            st.reference_valid = true;
            if (--st.hold <= 0) {
              st.active = true;
              TrojanConfig on = tc;
              on.active = true;
              broadcast_config(sys, frame.agent_node, on);
            }
          }
          sys.engine().schedule_desc_in(
              period, sim::EventDesc{sim::EventKind::kCampaignAdapt, -1, 0, 0});
        });
    sys.engine().schedule_desc_in(
        cfg_.system.first_epoch_cycle + cfg_.system.epoch_cycles - 1,
        sim::EventDesc{sim::EventKind::kCampaignAdapt, -1, 0, 0});
  }
}

std::string AttackCampaign::warmup_fingerprint(
    const std::vector<workload::Application>& apps,
    std::span<const NodeId> ht_nodes) const {
  json::Object o;
  o["schema"] = json::Value(kWarmupCheckpointSchema);
  o["system"] = system_config_fingerprint_json(cfg_.system);
  json::Array japps;
  for (const auto& app : apps) {
    json::Object a;
    a["id"] = json::Value(static_cast<long long>(app.id));
    a["name"] = json::Value(app.profile.name);
    a["cpi_base"] = json::Value(app.profile.cpi_base);
    a["apki"] = json::Value(app.profile.apki);
    a["working_set_lines"] = common::ju64(app.profile.working_set_lines);
    a["shared_lines"] = common::ju64(app.profile.shared_lines);
    a["shared_fraction"] = json::Value(app.profile.shared_fraction);
    a["write_fraction"] = json::Value(app.profile.write_fraction);
    a["threads"] = json::Value(static_cast<long long>(app.threads));
    a["attacker"] = json::Value(app.is_attacker());
    json::Array cores;
    for (const NodeId c : app.cores) {
      cores.push_back(json::Value(static_cast<long long>(c)));
    }
    a["cores"] = json::Value(std::move(cores));
    japps.push_back(json::Value(std::move(a)));
  }
  o["apps"] = json::Value(std::move(japps));
  json::Array hts;
  for (const NodeId n : ht_nodes) {
    hts.push_back(json::Value(static_cast<long long>(n)));
  }
  o["ht_nodes"] = json::Value(std::move(hts));
  o["trojan"] = trojan_config_to_json(cfg_.trojan);
  o["warmup_epochs"] = json::Value(static_cast<long long>(cfg_.warmup_epochs));
  o["toggle_period_epochs"] =
      json::Value(static_cast<long long>(cfg_.toggle_period_epochs));
  o["attacker_agent"] = json::Value(static_cast<long long>(
      cfg_.attacker_agent.has_value() ? *cfg_.attacker_agent : -1));
  o["gm_node"] = json::Value(static_cast<long long>(gm_node_));
  return fingerprint(json::dump(json::Value(std::move(o))));
}

std::shared_ptr<const WarmupCheckpoint> AttackCampaign::obtain_warmup(
    const std::string& fp, const std::vector<workload::Application>& apps,
    std::span<const NodeId> ht_nodes) {
  if (warmup_cache_ == nullptr) return nullptr;
  return warmup_cache_->get_or_compute(fp, [&]() {
    const std::string path = cfg_.checkpoint_dir.empty()
                                 ? std::string()
                                 : cfg_.checkpoint_dir + "/warmup-" + fp +
                                       ".json";
    if (!path.empty()) {
      if (auto loaded = load_warmup_file(path, fp)) return loaded;
    }
    auto ck = compute_warmup(fp, apps, ht_nodes);
    if (!path.empty() && ck != nullptr) {
      // Persistence is an optimization; a read-only or missing directory
      // must not fail the run itself.
      try {
        save_warmup_file(path, *ck);
      } catch (const std::exception&) {
      }
    }
    return ck;
  });
}

std::shared_ptr<const WarmupCheckpoint> AttackCampaign::compute_warmup(
    const std::string& fp, const std::vector<workload::Application>& apps,
    std::span<const NodeId> ht_nodes) const {
  // The scratch run is exactly the prefix every sharing arm would have
  // simulated: same construction order, same implants, same broadcast,
  // same duty-cycle controllers. Detectors and responses are *absent* --
  // they are arm-specific; detectors are replayed from the recorded
  // request stream and a response that would have acted invalidates the
  // fork (checked by the arm).
  g_warmup_epochs_simulated.fetch_add(
      static_cast<std::uint64_t>(cfg_.warmup_epochs),
      std::memory_order_relaxed);
  auto ck = std::make_shared<WarmupCheckpoint>();
  ck->fingerprint = fp;
  system::ManyCoreSystem sys(cfg_.system, apps);
  ck->trace.node_count = cfg_.system.node_count();
  ck->trace.epoch_cycles = cfg_.system.epoch_cycles;
  sys.gm().attach_recorder(&ck->trace);
  AttackFrame frame;
  install_attack(sys, apps, ht_nodes, frame);
  sys.run_epochs(cfg_.warmup_epochs);
  ck->system = sys.save_state();
  ck->trojans.reserve(frame.trojans.size());
  for (const auto& ht : frame.trojans) ck->trojans.push_back(ht->save_state());
  ck->toggle_state = frame.toggle_state;
  ck->adapt_state = frame.adapt_state;
  ck->adapt_totals = frame.adapt_totals;
  return ck;
}

CampaignOutcome AttackCampaign::reduce_outcome(
    const RunResult& attacked, std::span<const NodeId> ht_nodes) const {
  CampaignOutcome out;
  out.infection_measured = attacked.infection;
  out.trojan_totals = attacked.trojan_totals;
  out.detection = attacked.detection;

  const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
  if (!ht_nodes.empty()) {
    out.geometry = placement_geometry(geom, gm_node_, ht_nodes);
    // The infection rate is defined over victim requests (boosting the
    // accomplice's own packets is not an infection), so predict coverage
    // of the victim cores only.
    std::vector<NodeId> sources;
    for (const auto& app : apps_) {
      if (app.is_attacker()) continue;
      for (const NodeId c : app.cores) {
        if (c != gm_node_) sources.push_back(c);
      }
    }
    out.infection_predicted =
        InfectionAnalyzer(geom, gm_node_).predicted_rate(ht_nodes, sources);
  }

  std::vector<double> change_attackers;
  std::vector<double> change_victims;
  out.apps.resize(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    AppOutcome& ao = out.apps[i];
    ao.id = apps_[i].id;
    ao.name = apps_[i].profile.name;
    ao.attacker = apps_[i].is_attacker();
    ao.theta_baseline = baseline_->theta[i];
    ao.theta_attacked = attacked.theta[i];
    ao.change = performance_change(ao.theta_attacked, ao.theta_baseline);
    ao.phi = baseline_->phi[i];
    (ao.attacker ? change_attackers : change_victims).push_back(ao.change);
  }
  if (!change_attackers.empty() && !change_victims.empty()) {
    out.q_valid = true;
    out.q = attack_effect_q(change_attackers, change_victims);
  }

  out.adaptation = attacked.adaptation;
  if (attacked.response_stats.has_value() && cfg_.response.has_value()) {
    const power::ResponseStats& stats = *attacked.response_stats;
    ResponseOutcome ro;
    ro.kind = cfg_.response->kind;
    ro.trigger = cfg_.response->trigger;
    ro.sanctioned_cores = stats.sanctioned_cores;
    ro.sanction_core_epochs = stats.sanction_core_epochs;
    ro.denied_requests = stats.denied_requests;
    ro.clamped_requests = stats.clamped_requests;
    ro.first_sanction_epoch = stats.first_sanction_epoch;
    ro.migrations = attacked.migrations;

    // Collateral: sanctioned cores that are not the attacker's.
    std::unordered_set<NodeId> attacker_cores;
    for (const auto& app : apps_) {
      if (!app.is_attacker()) continue;
      attacker_cores.insert(app.cores.begin(), app.cores.end());
    }
    for (const NodeId n : ro.sanctioned_cores) {
      if (attacker_cores.find(n) == attacker_cores.end()) ++ro.collateral;
    }

    // Recovery, measured against the un-attacked baseline's mean victim
    // grant: the fraction regained over the window, and the first
    // post-sanction measured epoch back above threshold x baseline.
    const double base = baseline_->mean_victim_grant_mw;
    if (base > 0.0 && !attacked.victim_grants.empty()) {
      ro.victim_grant_recovery = attacked.mean_victim_grant_mw / base;
      if (ro.first_sanction_epoch >= 0) {
        const int start =
            std::max(0, ro.first_sanction_epoch - cfg_.warmup_epochs);
        const double target = cfg_.response->recovery_threshold * base;
        for (std::size_t e = static_cast<std::size_t>(start);
             e < attacked.victim_grants.size(); ++e) {
          if (attacked.victim_grants[e] >= target) {
            ro.epochs_to_recovery = static_cast<int>(e) - start;
            break;
          }
        }
      }
    }
    out.response = std::move(ro);
  }
  return out;
}

}  // namespace htpb::core
