#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "core/infection.hpp"
#include "system/manycore_system.hpp"
#include "workload/benchmark_profile.hpp"

namespace htpb::core {

namespace {

/// See AttackCampaign::systems_simulated().
std::atomic<std::uint64_t> g_systems_simulated{0};

/// Uniform light workload for infection-only experiments: every core runs
/// one thread of the same moderately communicating benchmark.
workload::Mix uniform_mix() {
  workload::Mix mix;
  mix.name = "uniform";
  mix.victims = {"fluidanimate"};
  return mix;
}

}  // namespace

AttackCampaign::AttackCampaign(CampaignConfig cfg) : cfg_(std::move(cfg)) {
  cfg_.system.validate();
  if (cfg_.response.has_value() && !cfg_.detector.has_value()) {
    throw std::invalid_argument(
        "AttackCampaign: a response policy requires a detector to act on");
  }
  if (cfg_.trojan.adapt.enabled && cfg_.toggle_period_epochs > 0) {
    throw std::invalid_argument(
        "AttackCampaign: adaptation and toggle_period_epochs are rival "
        "duty-cycle controllers; enable one");
  }
  const workload::Mix mix = cfg_.mix.value_or(uniform_mix());
  const int nodes = cfg_.system.node_count();
  int threads = cfg_.threads_per_app;
  if (threads <= 0) {
    threads = nodes / mix.app_count();
    if (threads == 0) {
      throw std::invalid_argument("AttackCampaign: more apps than cores");
    }
  }
  apps_ = workload::instantiate_mix(mix, threads);
  workload::map_threads_round_robin(apps_, nodes);

  // Resolve the manager node the same way the system will, so that the
  // Trojan configuration and infection analytics agree with the substrate.
  const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
  gm_node_ = cfg_.system.gm_node.value_or(
      cfg_.system.gm_placement == system::GmPlacement::kCenter
          ? geom.id_of(geom.center())
          : geom.id_of(MeshGeometry::corner()));

  if (cfg_.attacker_agent.has_value()) {
    agent_node_ = *cfg_.attacker_agent;
  } else {
    agent_node_ = 0;
    for (const auto& app : apps_) {
      if (app.is_attacker() && !app.cores.empty()) {
        agent_node_ = app.cores.front();
        break;
      }
    }
  }
}

AttackCampaign::RunResult AttackCampaign::run_system(
    std::span<const NodeId> ht_nodes, power::RequestTrace* trace) {
  // The detector lives exactly as long as this run: constructed fresh
  // from the config (never shared across runs or placements) and reduced
  // to a report before the run ends. For a migrating run it spans BOTH
  // legs -- migration must not wipe the defender's accumulated evidence.
  std::unique_ptr<power::RequestAnomalyDetector> detector;
  if (cfg_.detector.has_value() && !ht_nodes.empty()) {
    detector = cfg_.detector_factory ? cfg_.detector_factory(*cfg_.detector)
                                     : power::make_detector(*cfg_.detector);
  }
  std::unique_ptr<power::ResponseEngine> response;
  if (cfg_.response.has_value() && detector != nullptr) {
    response = std::make_unique<power::ResponseEngine>(*cfg_.response);
    response->attach_detector(detector.get());
  }
  const bool migrate_mode =
      response != nullptr && response->kind() == power::ResponseKind::kMigrate;

  if (trace != nullptr) {
    trace->epochs.clear();
    trace->node_count = cfg_.system.node_count();
    trace->epoch_cycles = cfg_.system.epoch_cycles;
  }

  RunResult result;
  std::vector<double> instr(apps_.size(), 0.0);
  double infection_epoch_sum = 0.0;
  int measured_total = 0;
  AdaptationOutcome adapt_totals;
  bool adapt_engaged = false;

  // Does the cumulative report contain a verdict the configured trigger
  // listens to? (The migrate policy's "first confirmed flag".)
  const auto triggered = [this](const power::DetectorReport& report) {
    if (!cfg_.response.has_value()) return false;
    switch (cfg_.response->trigger) {
      case power::ResponseTrigger::kHigh: return !report.flagged_high.empty();
      case power::ResponseTrigger::kLow: return !report.flagged_low.empty();
      case power::ResponseTrigger::kBoth: return report.any();
    }
    return false;
  };

  // One simulated chip lifetime ("leg"): a non-migrating run is a single
  // full leg; a migrating run is a pre-migration leg cut short at the
  // triggering epoch boundary plus a remapped leg for the remaining
  // epochs. Returns the number of epochs actually measured.
  const auto run_leg = [&](const std::vector<workload::Application>& apps,
                           int measure_epochs, bool stop_on_flag) -> int {
    g_systems_simulated.fetch_add(1, std::memory_order_relaxed);
    system::ManyCoreSystem sys(cfg_.system, apps);
    if (detector != nullptr) sys.gm().attach_detector(detector.get());
    // Quarantine/throttle filter inside the manager; the migrate engine
    // never filters -- re-placement is this layer's move.
    if (response != nullptr && !migrate_mode) {
      sys.gm().attach_response(response.get());
    }
    if (trace != nullptr) sys.gm().attach_recorder(trace);

    // Duty-cycle toggle state. Owned by this frame -- alive across
    // sys.run_epochs below, gone with it -- NOT by the scheduled
    // closures: the old wiring stored the toggle in a
    // shared_ptr<std::function> whose closure captured that same
    // shared_ptr by value, a reference cycle that leaked one function +
    // TrojanConfig per duty-cycled run.
    TrojanConfig toggle_state;
    std::function<void()> toggle_fn;
    // Adaptive-agent state, same ownership pattern.
    struct AdaptState {
      bool active = true;
      int on_streak = 0;
      int hold = 0;
      double reference = 0.0;
      bool reference_valid = false;
    };
    AdaptState adapt_state;
    std::function<void()> adapt_fn;

    // Implant the Trojans (fab-time insertion: present before power-on).
    std::vector<std::unique_ptr<HardwareTrojan>> trojans;
    trojans.reserve(ht_nodes.size());
    for (const NodeId node : ht_nodes) {
      auto ht = std::make_unique<HardwareTrojan>(node);
      sys.network().add_inspector(node, ht.get());
      trojans.push_back(std::move(ht));
    }

    // The attacker's agent broadcasts the configuration at power-on. A
    // unicast to every node covers every router under XY routing (the
    // union of the paths from one source to all destinations is the full
    // mesh).
    if (!ht_nodes.empty()) {
      TrojanConfig tc = cfg_.trojan;
      tc.global_manager = gm_node_;
      tc.attacker_agents.clear();
      for (const auto& app : apps) {
        if (!app.is_attacker()) continue;
        tc.attacker_agents.insert(tc.attacker_agents.end(), app.cores.begin(),
                                  app.cores.end());
      }
      // Derived from this leg's mapping so a migrated agent broadcasts
      // from its new core (leg 1 reproduces agent_node_ exactly).
      NodeId agent_node = agent_node_;
      if (!cfg_.attacker_agent.has_value() && !tc.attacker_agents.empty()) {
        agent_node = tc.attacker_agents.front();
      }
      if (tc.attacker_agents.empty()) tc.attacker_agents.push_back(agent_node);

      const auto broadcast = [&sys, agent_node,
                              this](const TrojanConfig& config) {
        for (NodeId n = 0; n < static_cast<NodeId>(cfg_.system.node_count());
             ++n) {
          auto pkt = sys.network().make_packet(agent_node, n,
                                               noc::PacketType::kConfigCmd);
          encode_config(config, *pkt);
          sys.network().send(std::move(pkt));
        }
      };
      broadcast(tc);

      if (cfg_.toggle_period_epochs > 0) {
        // Periodic ON/OFF re-broadcasts (Sec. III-B duty-cycling). The
        // closure re-schedules the frame-owned toggle_fn by reference
        // (each engine event holds its own copy of the closure, never an
        // owning handle to itself); `broadcast` is captured by value
        // because it dies with this block.
        const Cycle period = static_cast<Cycle>(cfg_.toggle_period_epochs) *
                             cfg_.system.epoch_cycles;
        toggle_state = tc;
        toggle_fn = [&sys, broadcast, period, &state = toggle_state,
                     &self = toggle_fn]() {
          state.active = !state.active;
          broadcast(state);
          sys.engine().schedule_in(period, self);
        };
        sys.engine().schedule_in(period, toggle_fn);
      }

      if (tc.adapt.enabled) {
        // The closed loop's attacker half (TrojanAdaptation): one
        // decision per epoch, taken one cycle before the next epoch
        // opens -- every grant of the closing epoch has landed and the
        // re-broadcast deterministically precedes the next requests.
        adapt_engaged = true;
        adapt_state.active = tc.active;
        const Cycle period = cfg_.system.epoch_cycles;
        adapt_fn = [&sys, broadcast, tc, period, &st = adapt_state,
                    &totals = adapt_totals, &self = adapt_fn]() {
          double sum = 0.0;
          for (const NodeId n : tc.attacker_agents) {
            sum += static_cast<double>(sys.last_grant_mw(n));
          }
          const double mean_grant =
              tc.attacker_agents.empty()
                  ? 0.0
                  : sum / static_cast<double>(tc.attacker_agents.size());
          if (st.active) {
            ++totals.epochs_on;
            ++st.on_streak;
            // A grant well below the hiding-time reference means a
            // sanction landed; back off longer than a voluntary rest.
            const bool sanctioned =
                st.reference_valid &&
                mean_grant < tc.adapt.backoff_ratio * st.reference;
            if (sanctioned || st.on_streak >= tc.adapt.max_on_epochs) {
              st.active = false;
              st.on_streak = 0;
              st.hold = sanctioned ? 2 * tc.adapt.hold_off_epochs
                                   : tc.adapt.hold_off_epochs;
              if (sanctioned) ++totals.backoffs;
              TrojanConfig off = tc;
              off.active = false;
              broadcast(off);
            }
          } else {
            ++totals.epochs_off;
            st.reference = st.reference_valid
                               ? (1.0 - tc.adapt.alpha) * st.reference +
                                     tc.adapt.alpha * mean_grant
                               : mean_grant;
            st.reference_valid = true;
            if (--st.hold <= 0) {
              st.active = true;
              TrojanConfig on = tc;
              on.active = true;
              broadcast(on);
            }
          }
          sys.engine().schedule_in(period, self);
        };
        sys.engine().schedule_in(
            cfg_.system.first_epoch_cycle + cfg_.system.epoch_cycles - 1,
            adapt_fn);
      }
    }

    sys.run_epochs(cfg_.warmup_epochs);
    sys.reset_measurement();
    int measured = 0;
    if (stop_on_flag && detector != nullptr) {
      // Epoch-by-epoch is bit-identical to one run_epochs call (the
      // engine just advances cycles); it only adds the boundary checks.
      for (int e = 0; e < measure_epochs; ++e) {
        sys.run_epochs(1);
        ++measured;
        if (triggered(detector->cumulative())) break;
      }
    } else {
      sys.run_epochs(measure_epochs);
      measured = measure_epochs;
    }

    const double elapsed =
        static_cast<double>(measured) *
        static_cast<double>(cfg_.system.epoch_cycles);
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      instr[i] += sys.app_throughput(apps_[i].id) * elapsed;
    }
    if (result.phi.empty()) {
      result.phi.resize(apps_.size());
      for (std::size_t i = 0; i < apps_.size(); ++i) {
        result.phi[i] = sys.app_sensitivity(apps_[i].id);
      }
    }
    infection_epoch_sum +=
        sys.measured_infection_rate() * static_cast<double>(measured);
    measured_total += measured;

    const auto& hist = sys.gm().history();
    const std::size_t first =
        hist.size() >= static_cast<std::size_t>(measured)
            ? hist.size() - static_cast<std::size_t>(measured)
            : 0;
    for (std::size_t i = first; i < hist.size(); ++i) {
      result.victim_grants.push_back(
          static_cast<double>(hist[i].victim_granted_mw));
    }

    for (const auto& ht : trojans) {
      const TrojanStats& s = ht->stats();
      result.trojan_totals.config_packets_seen += s.config_packets_seen;
      result.trojan_totals.power_requests_seen += s.power_requests_seen;
      result.trojan_totals.victim_requests_modified +=
          s.victim_requests_modified;
      result.trojan_totals.attacker_requests_boosted +=
          s.attacker_requests_boosted;
    }
    return measured;
  };

  const int measured1 = run_leg(apps_, cfg_.measure_epochs, migrate_mode);

  if (migrate_mode && triggered(detector->cumulative())) {
    // Migration bookkeeping: the cores whose confirmed flags pulled the
    // trigger, stamped with the observed-epoch index of the boundary.
    power::ResponseStats stats;
    const power::DetectorReport& cum = detector->cumulative();
    const auto collect = [&stats](const std::vector<NodeId>& flagged) {
      for (const NodeId n : flagged) {
        if (std::find(stats.sanctioned_cores.begin(),
                      stats.sanctioned_cores.end(),
                      n) == stats.sanctioned_cores.end()) {
          stats.sanctioned_cores.push_back(n);
        }
      }
    };
    if (cfg_.response->trigger != power::ResponseTrigger::kLow) {
      collect(cum.flagged_high);
    }
    if (cfg_.response->trigger != power::ResponseTrigger::kHigh) {
      collect(cum.flagged_low);
    }
    stats.first_sanction_epoch = cfg_.warmup_epochs + measured1 - 1;
    result.response_stats = stats;

    if (measured1 < cfg_.measure_epochs) {
      // Re-place every application through the mesh's center mirror
      // (an involution, so the remap is collision-free) and resume for
      // the remaining epochs. Modeled as rebuild-and-resume at the
      // epoch boundary: caches and histories re-warm on the new
      // placement, the detector carries its evidence across.
      const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
      std::vector<workload::Application> migrated = apps_;
      for (auto& app : migrated) {
        for (NodeId& core : app.cores) {
          const Coord c = geom.coord_of(core);
          core = geom.id_of(Coord{geom.width() - 1 - c.x,
                                  geom.height() - 1 - c.y});
        }
      }
      result.migrations = 1;
      run_leg(migrated, cfg_.measure_epochs - measured1, false);
    }
  } else if (migrate_mode) {
    result.response_stats = power::ResponseStats{};
  } else if (response != nullptr) {
    result.response_stats = response->stats();
  }

  const double total_cycles =
      static_cast<double>(measured_total) *
      static_cast<double>(cfg_.system.epoch_cycles);
  result.theta.resize(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    result.theta[i] = total_cycles > 0.0 ? instr[i] / total_cycles : 0.0;
  }
  result.infection = measured_total > 0
                         ? infection_epoch_sum /
                               static_cast<double>(measured_total)
                         : 0.0;
  if (!result.victim_grants.empty()) {
    double sum = 0.0;
    for (const double v : result.victim_grants) sum += v;
    result.mean_victim_grant_mw =
        sum / static_cast<double>(result.victim_grants.size());
  }
  if (adapt_engaged) result.adaptation = adapt_totals;
  if (detector != nullptr) result.detection = detector->cumulative();
  return result;
}

void AttackCampaign::ensure_baseline() {
  if (baseline_ != nullptr) return;
  baseline_ = std::make_shared<const RunResult>(run_system({}));
}

const std::vector<double>& AttackCampaign::baseline_phi() {
  ensure_baseline();
  return baseline_->phi;
}

double AttackCampaign::run_infection_only(std::span<const NodeId> ht_nodes) {
  return run_system(ht_nodes).infection;
}

std::optional<power::DetectorReport> AttackCampaign::run_detection_only(
    std::span<const NodeId> ht_nodes) {
  return run_system(ht_nodes).detection;
}

power::RequestTrace AttackCampaign::record_trace(
    std::span<const NodeId> ht_nodes) {
  power::RequestTrace trace;
  (void)run_system(ht_nodes, &trace);
  return trace;
}

AttackCampaign::TracedRun AttackCampaign::run_traced(
    std::span<const NodeId> ht_nodes) {
  ensure_baseline();
  TracedRun traced;
  traced.outcome = reduce_outcome(run_system(ht_nodes, &traced.trace),
                                  ht_nodes);
  return traced;
}

CampaignOutcome AttackCampaign::run(std::span<const NodeId> ht_nodes) {
  ensure_baseline();
  return reduce_outcome(run_system(ht_nodes), ht_nodes);
}

std::uint64_t AttackCampaign::systems_simulated() noexcept {
  return g_systems_simulated.load(std::memory_order_relaxed);
}

CampaignOutcome AttackCampaign::reduce_outcome(
    const RunResult& attacked, std::span<const NodeId> ht_nodes) const {
  CampaignOutcome out;
  out.infection_measured = attacked.infection;
  out.trojan_totals = attacked.trojan_totals;
  out.detection = attacked.detection;

  const MeshGeometry geom(cfg_.system.width, cfg_.system.height);
  if (!ht_nodes.empty()) {
    out.geometry = placement_geometry(geom, gm_node_, ht_nodes);
    // The infection rate is defined over victim requests (boosting the
    // accomplice's own packets is not an infection), so predict coverage
    // of the victim cores only.
    std::vector<NodeId> sources;
    for (const auto& app : apps_) {
      if (app.is_attacker()) continue;
      for (const NodeId c : app.cores) {
        if (c != gm_node_) sources.push_back(c);
      }
    }
    out.infection_predicted =
        InfectionAnalyzer(geom, gm_node_).predicted_rate(ht_nodes, sources);
  }

  std::vector<double> change_attackers;
  std::vector<double> change_victims;
  out.apps.resize(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    AppOutcome& ao = out.apps[i];
    ao.id = apps_[i].id;
    ao.name = apps_[i].profile.name;
    ao.attacker = apps_[i].is_attacker();
    ao.theta_baseline = baseline_->theta[i];
    ao.theta_attacked = attacked.theta[i];
    ao.change = performance_change(ao.theta_attacked, ao.theta_baseline);
    ao.phi = baseline_->phi[i];
    (ao.attacker ? change_attackers : change_victims).push_back(ao.change);
  }
  if (!change_attackers.empty() && !change_victims.empty()) {
    out.q_valid = true;
    out.q = attack_effect_q(change_attackers, change_victims);
  }

  out.adaptation = attacked.adaptation;
  if (attacked.response_stats.has_value() && cfg_.response.has_value()) {
    const power::ResponseStats& stats = *attacked.response_stats;
    ResponseOutcome ro;
    ro.kind = cfg_.response->kind;
    ro.trigger = cfg_.response->trigger;
    ro.sanctioned_cores = stats.sanctioned_cores;
    ro.sanction_core_epochs = stats.sanction_core_epochs;
    ro.denied_requests = stats.denied_requests;
    ro.clamped_requests = stats.clamped_requests;
    ro.first_sanction_epoch = stats.first_sanction_epoch;
    ro.migrations = attacked.migrations;

    // Collateral: sanctioned cores that are not the attacker's.
    std::unordered_set<NodeId> attacker_cores;
    for (const auto& app : apps_) {
      if (!app.is_attacker()) continue;
      attacker_cores.insert(app.cores.begin(), app.cores.end());
    }
    for (const NodeId n : ro.sanctioned_cores) {
      if (attacker_cores.find(n) == attacker_cores.end()) ++ro.collateral;
    }

    // Recovery, measured against the un-attacked baseline's mean victim
    // grant: the fraction regained over the window, and the first
    // post-sanction measured epoch back above threshold x baseline.
    const double base = baseline_->mean_victim_grant_mw;
    if (base > 0.0 && !attacked.victim_grants.empty()) {
      ro.victim_grant_recovery = attacked.mean_victim_grant_mw / base;
      if (ro.first_sanction_epoch >= 0) {
        const int start =
            std::max(0, ro.first_sanction_epoch - cfg_.warmup_epochs);
        const double target = cfg_.response->recovery_threshold * base;
        for (std::size_t e = static_cast<std::size_t>(start);
             e < attacked.victim_grants.size(); ++e) {
          if (attacked.victim_grants[e] >= target) {
            ro.epochs_to_recovery = static_cast<int>(e) - start;
            break;
          }
        }
      }
    }
    out.response = std::move(ro);
  }
  return out;
}

}  // namespace htpb::core
