// Generation of hardware-Trojan placements: the three distributions of
// Fig. 4 (clustered near the chip center, uniformly random, clustered in
// one corner) plus diverse random candidates annotated with the paper's
// (rho, eta, m) descriptors for the attack-effect model and optimizer.
#pragma once

#include <span>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace htpb::core {

/// A candidate placement with its Def. 6-8 descriptors.
struct Placement {
  std::vector<NodeId> nodes;
  double rho = 0.0;
  double eta = 0.0;
  [[nodiscard]] int m() const noexcept { return static_cast<int>(nodes.size()); }
};

/// `m` HTs drawn uniformly at random (never on the excluded node, normally
/// the global manager -- an HT inside the manager's own router would be
/// trivially detected by its own traffic diagnostics).
[[nodiscard]] std::vector<NodeId> random_placement(const MeshGeometry& geom,
                                                   int m, Rng& rng,
                                                   NodeId exclude);

/// `m` HTs on the nodes closest to `around` (Fig. 4's "close to the
/// center" / "concentrated near one corner" arms).
[[nodiscard]] std::vector<NodeId> clustered_placement(const MeshGeometry& geom,
                                                      int m, Coord around,
                                                      NodeId exclude);

/// Annotates a node set with (rho, eta).
[[nodiscard]] Placement describe_placement(const MeshGeometry& geom,
                                           NodeId global_manager,
                                           std::vector<NodeId> nodes);

/// Generates `count` structurally diverse candidates of size `m`: cluster
/// centers swept over the mesh and spreads from tight to uniform, so the
/// candidates cover the (rho, eta) plane the optimizer searches
/// (Sec. IV-C: "exhaustively enumerate all possible values" of the three
/// metrics -- we enumerate the reachable descriptor space).
[[nodiscard]] std::vector<Placement> candidate_placements(
    const MeshGeometry& geom, NodeId global_manager, int m, int count,
    Rng& rng);

}  // namespace htpb::core
