#include "core/trojan_config.hpp"

#include <algorithm>
#include <cmath>

namespace htpb::core {

void encode_config(const TrojanConfig& cfg, noc::Packet& pkt) {
  pkt.type = noc::PacketType::kConfigCmd;
  std::uint32_t payload = 0;
  if (cfg.active) payload |= 1U;
  if (cfg.attenuate_victims) payload |= 2U;
  if (cfg.boost_attackers) payload |= 4U;
  const auto scale_pct = static_cast<std::uint32_t>(std::clamp(
      std::lround(cfg.victim_scale * 100.0), 0L, 255L));
  const auto boost_pct = static_cast<std::uint32_t>(std::clamp(
      std::lround(cfg.attacker_boost * 100.0), 0L, 65535L));
  payload |= scale_pct << 8;
  payload |= boost_pct << 16;
  pkt.payload = payload;
  pkt.options.clear();
  pkt.options.push_back(cfg.global_manager);
  for (const NodeId a : cfg.attacker_agents) pkt.options.push_back(a);
}

std::optional<TrojanConfig> decode_config(const noc::Packet& pkt) {
  if (pkt.type != noc::PacketType::kConfigCmd) return std::nullopt;
  if (pkt.options.empty()) return std::nullopt;
  TrojanConfig cfg;
  cfg.active = (pkt.payload & 1U) != 0;
  cfg.attenuate_victims = (pkt.payload & 2U) != 0;
  cfg.boost_attackers = (pkt.payload & 4U) != 0;
  cfg.victim_scale = static_cast<double>((pkt.payload >> 8) & 0xFFU) / 100.0;
  cfg.attacker_boost = static_cast<double>(pkt.payload >> 16) / 100.0;
  cfg.global_manager = pkt.options[0];
  cfg.attacker_agents.assign(pkt.options.begin() + 1, pkt.options.end());
  return cfg;
}

}  // namespace htpb::core
