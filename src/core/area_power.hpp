// Stealth accounting (paper Sec. III-D): area and power of the Trojan
// circuit versus one router and versus the whole chip's NoC. The absolute
// constants are the paper's Synopsys DC / DSENT 45nm-TSMC synthesis
// results; every ratio is derived, not hard-coded, so the bench
// regenerating the Sec. III-D "table" exercises real arithmetic.
#pragma once

#include "noc/router_power.hpp"

namespace htpb::core {

struct HtAreaPowerModel {
  /// One Trojan: 12.1716 um^2 and 0.55018 uW (paper Sec. III-D).
  double ht_area_um2 = 12.1716;
  double ht_power_uw = 0.55018;
  noc::RouterAreaPowerModel router;

  [[nodiscard]] double total_area_um2(int hts) const noexcept {
    return ht_area_um2 * hts;
  }
  [[nodiscard]] double total_power_uw(int hts) const noexcept {
    return ht_power_uw * hts;
  }

  /// HT area as a fraction of a single router (paper: ~0.017%).
  [[nodiscard]] double area_fraction_of_router() const noexcept {
    return ht_area_um2 / router.area_um2;
  }
  /// HT power as a fraction of a single router (paper: ~0.0017%).
  [[nodiscard]] double power_fraction_of_router() const noexcept {
    return ht_power_uw / router.power_uw;
  }

  /// `hts` Trojans as a fraction of all routers of an `nodes`-node chip
  /// (paper: 60 HTs on 512 nodes -> ~0.002% area, ~0.0002% power).
  [[nodiscard]] double area_fraction_of_chip(int hts, int nodes) const noexcept {
    return total_area_um2(hts) / router.chip_area_um2(nodes);
  }
  [[nodiscard]] double power_fraction_of_chip(int hts, int nodes) const noexcept {
    return total_power_uw(hts) / router.chip_power_uw(nodes);
  }
};

}  // namespace htpb::core
