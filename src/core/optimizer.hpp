// The attack-effect maximization problem (paper Eq. 10-11):
//
//   max_{rho, eta, m} Q(D, G)   subject to   m <= M_HT
//
// solved, as the paper suggests, by enumeration: candidate placements
// covering the reachable (rho, eta) space are generated for every m up to
// the budget, scored with the fitted linear model, and the best one is
// returned.
#pragma once

#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/attack_model.hpp"
#include "core/placement.hpp"

namespace htpb::core {

class ParallelSweepRunner;

struct OptimizerResult {
  Placement placement;
  double predicted_q = 0.0;
};

class PlacementOptimizer {
 public:
  /// `phi_victims` / `phi_attackers` are the mix's sensitivities (constant
  /// across placements; they enter the model's prediction as-is).
  PlacementOptimizer(const MeshGeometry& geom, NodeId global_manager,
                     const AttackEffectModel* model,
                     std::vector<double> phi_victims,
                     std::vector<double> phi_attackers)
      : geom_(geom), gm_(global_manager), model_(model),
        phi_victims_(std::move(phi_victims)),
        phi_attackers_(std::move(phi_attackers)) {}

  /// Enumerates `candidates_per_m` placements for each m in [1, max_hts]
  /// and returns the placement with the highest predicted Q. Runs on
  /// `runner`'s thread pool; see optimize_top_k for the determinism
  /// contract.
  [[nodiscard]] OptimizerResult optimize(
      int max_hts, int candidates_per_m, std::uint64_t seed,
      const ParallelSweepRunner& runner) const;

  /// Same enumeration, returning the `k` best-scoring placements in
  /// descending predicted-Q order. The linear model (Eq. 9) is only an
  /// approximation, so a careful attacker validates the short list in
  /// simulation before committing fab resources.
  ///
  /// The per-m candidate batches are fanned across `runner`'s thread
  /// pool, each drawing from its own
  /// `ParallelSweepRunner::stream_rng(seed, m - 1)` stream, so the result
  /// is bit-identical at any thread count. (The old serial Rng& overload
  /// drew from one sequential stream and is retired; every caller goes
  /// through the runner now.)
  [[nodiscard]] std::vector<OptimizerResult> optimize_top_k(
      int max_hts, int candidates_per_m, int k, std::uint64_t seed,
      const ParallelSweepRunner& runner) const;

  /// Scores one placement with the model.
  [[nodiscard]] double score(const Placement& p) const;

 private:
  MeshGeometry geom_;
  NodeId gm_;
  const AttackEffectModel* model_;
  std::vector<double> phi_victims_;
  std::vector<double> phi_attackers_;
};

}  // namespace htpb::core
