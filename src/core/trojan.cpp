#include "core/trojan.hpp"

#include <utility>

#include "common/snapshot.hpp"

namespace htpb::core {

void HardwareTrojan::inspect(noc::Packet& pkt, NodeId /*router*/,
                             Cycle /*now*/) {
  // Comparator 1 (Fig. 2a): CONFIG_CMD? -> latch the configuration.
  if (pkt.type == noc::PacketType::kConfigCmd) {
    latch_config(pkt);
    return;
  }
  if (!active_) return;  // dormant Trojans forward everything untouched
  // Comparators 2+3: POWER_REQ destined for the global manager, whose
  // source is not one of the attacker's agents?
  if (pkt.type != noc::PacketType::kPowerRequest) return;
  ++stats_.power_requests_seen;
  if (pkt.dst != gm_) return;
  tamper(pkt);
}

void HardwareTrojan::latch_config(const noc::Packet& pkt) {
  const auto cfg = decode_config(pkt);
  if (!cfg.has_value()) return;  // malformed frame: ignore, never wedge
  ++stats_.config_packets_seen;
  gm_ = cfg->global_manager;
  attackers_ = cfg->attacker_agents;
  active_ = cfg->active;
  attenuate_victims_ = cfg->attenuate_victims;
  boost_attackers_ = cfg->boost_attackers;
  if (cfg->victim_scale > 0.0 && cfg->victim_scale <= 1.0) {
    victim_scale_ = cfg->victim_scale;
  }
  if (cfg->attacker_boost >= 1.0) attacker_boost_ = cfg->attacker_boost;
}

void HardwareTrojan::tamper(noc::Packet& pkt) {
  if (is_attacker(pkt.src)) {
    if (!boost_attackers_) return;
    // Raise the accomplice's request. Saturating multiply; a request
    // boosted by an earlier Trojan on the path is left alone (the payload
    // already carries the inflated value). Not flagged as "infected":
    // the infection-rate metric counts victims whose requests were
    // altered against their will.
    if (pkt.boosted || pkt.payload == 0) return;
    const double boosted = pkt.payload * attacker_boost_;
    pkt.original_payload = pkt.payload;
    pkt.payload = boosted > 4.0e9 ? 0xFFFFFFFFU
                                  : static_cast<std::uint32_t>(boosted);
    pkt.boosted = true;
    ++stats_.attacker_requests_boosted;
    return;
  }
  if (!attenuate_victims_) return;
  if (pkt.tampered) return;  // an upstream Trojan already shrank it
  pkt.original_payload = pkt.payload;
  auto scaled = static_cast<std::uint32_t>(pkt.payload * victim_scale_);
  if (scaled == 0 && pkt.payload != 0) scaled = 1;
  pkt.payload = scaled;
  pkt.tampered = true;
  ++stats_.victim_requests_modified;
}

json::Value HardwareTrojan::save_state() const {
  json::Object o;
  o["gm"] = json::Value(static_cast<long long>(gm_));
  json::Array agents;
  for (const NodeId n : attackers_) {
    agents.push_back(json::Value(static_cast<long long>(n)));
  }
  o["attackers"] = json::Value(std::move(agents));
  o["active"] = json::Value(active_);
  o["attenuate_victims"] = json::Value(attenuate_victims_);
  o["boost_attackers"] = json::Value(boost_attackers_);
  o["victim_scale"] = json::Value(victim_scale_);
  o["attacker_boost"] = json::Value(attacker_boost_);
  o["config_packets_seen"] = common::ju64(stats_.config_packets_seen);
  o["power_requests_seen"] = common::ju64(stats_.power_requests_seen);
  o["victim_requests_modified"] =
      common::ju64(stats_.victim_requests_modified);
  o["attacker_requests_boosted"] =
      common::ju64(stats_.attacker_requests_boosted);
  return json::Value(std::move(o));
}

void HardwareTrojan::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  gm_ = static_cast<NodeId>(o.find("gm")->as_int());
  attackers_.clear();
  for (const json::Value& n : o.find("attackers")->as_array()) {
    attackers_.push_back(static_cast<NodeId>(n.as_int()));
  }
  active_ = o.find("active")->as_bool();
  attenuate_victims_ = o.find("attenuate_victims")->as_bool();
  boost_attackers_ = o.find("boost_attackers")->as_bool();
  victim_scale_ = o.find("victim_scale")->as_double();
  attacker_boost_ = o.find("attacker_boost")->as_double();
  stats_.config_packets_seen = common::pu64(*o.find("config_packets_seen"));
  stats_.power_requests_seen = common::pu64(*o.find("power_requests_seen"));
  stats_.victim_requests_modified =
      common::pu64(*o.find("victim_requests_modified"));
  stats_.attacker_requests_boosted =
      common::pu64(*o.find("attacker_requests_boosted"));
}

}  // namespace htpb::core
