// Analytic infection-rate estimation.
//
// With Table I's deterministic XY routing the set of routers a POWER_REQ
// from source s to the manager g traverses is a closed form, so the
// infection rate -- the fraction of requests that cross at least one
// Trojaned router -- can be computed exactly. The estimator is validated
// against the full simulator in tests, and is also inverted: given a
// target infection rate, a greedy cover search yields a placement
// achieving it (used to sweep the x-axis of Figs. 5-6).
#pragma once

#include <span>
#include <vector>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace htpb::core {

class InfectionAnalyzer {
 public:
  InfectionAnalyzer(const MeshGeometry& geom, NodeId global_manager);

  [[nodiscard]] NodeId global_manager() const noexcept { return gm_; }

  /// True iff an XY-routed packet from `src` to the manager traverses the
  /// router at `via` (endpoints included: a Trojan in the source's or
  /// manager's router also sees the packet).
  [[nodiscard]] bool route_covers(NodeId src, NodeId via) const;

  /// Fraction of `sources` whose request crosses >= 1 HT.
  [[nodiscard]] double predicted_rate(std::span<const NodeId> hts,
                                      std::span<const NodeId> sources) const;

  /// Same, with every node except the manager as a source (each core sends
  /// exactly one request per epoch, so sources are equally weighted).
  [[nodiscard]] double predicted_rate(std::span<const NodeId> hts) const;

  /// Nodes covered (as sources) by a single HT at `via`.
  [[nodiscard]] int coverage_of(NodeId via) const;

  /// Greedy max-cover placement: repeatedly adds the node (never the
  /// manager) with the largest marginal source coverage until the
  /// predicted rate reaches `target` or `max_hts` Trojans are placed.
  /// Ties are broken deterministically from `rng`. The final rate can
  /// overshoot the target by at most one node's coverage.
  [[nodiscard]] std::vector<NodeId> placement_for_target(double target,
                                                         int max_hts,
                                                         Rng& rng) const;

 private:
  MeshGeometry geom_;
  NodeId gm_;
};

}  // namespace htpb::core
