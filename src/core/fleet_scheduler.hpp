// Crash-isolated campaign execution over a RunDir.
//
// The scheduler takes an explicit cell list (id + spec text), runs each
// cell as a subprocess via a caller-supplied worker command, and drives
// the retry/timeout state machine:
//
//           +--------- retry (backoff) ----------+
//           v                                    |
//   run --> crash / timeout / corrupt-output ----+--> failed (attempts
//    |                                                exhausted)
//    +--> clean exit + parseable artifact --> done
//    +--> nonzero exit --> failed (fail fast: a worker that *reports*
//         an error is deterministic; retrying cannot help)
//
// Timeouts escalate SIGTERM -> SIGKILL (common::run_subprocess). Corrupt
// artifacts are quarantined before the retry so they can never shadow a
// later good result. Statuses and the manifest are written atomically,
// which is what makes a run directory resumable after kill -9: every
// cell is either durably done or re-run from scratch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/run_dir.hpp"

namespace htpb::core {

/// One unit of isolated work: the spec text is written to
/// cells/<id>.json and handed to the worker command verbatim.
struct FleetCell {
  std::string id;
  std::string spec_text;
};

struct FleetConfig {
  std::string run_dir;
  int shards = 2;        ///< concurrent worker subprocesses
  int max_attempts = 3;  ///< per cell, counting the first try
  double timeout_seconds = 0.0;  ///< 0 = no per-cell timeout
  double term_grace_seconds = 2.0;
  double backoff_base_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  std::uint64_t backoff_seed = 1;  ///< jitter is deterministic per (seed, cell, attempt)
  bool resume = true;  ///< false = ignore existing statuses, re-run everything

  /// Builds the worker argv for one cell. The scheduler sets
  /// HTPB_FLEET_CELL / HTPB_FLEET_ATTEMPT in the child environment and
  /// redirects the child's stdout/stderr to the run dir's logs/.
  std::function<std::vector<std::string>(const std::string& spec_path,
                                         const std::string& result_path)>
      worker_command;

  /// Optional progress sink; called under a mutex, one line per event.
  std::function<void(const std::string&)> log;
};

struct FleetCellOutcome {
  std::string id;
  bool done = false;
  bool resumed = false;  ///< skipped: prior run already completed it
  int attempts = 0;      ///< attempts made THIS invocation (0 if resumed)
  std::string fail_reason;
  std::string last_error;
};

struct FleetReport {
  std::vector<FleetCellOutcome> cells;
  int done = 0;
  int resumed = 0;
  int failed = 0;
  int attempts = 0;  ///< total subprocess launches this invocation
};

class FleetScheduler {
 public:
  explicit FleetScheduler(FleetConfig config);

  /// Executes the campaign. `spec_fingerprint` identifies the campaign
  /// spec; resuming into a run dir whose manifest carries a different
  /// fingerprint throws (use a fresh directory per spec). Cell outcomes
  /// are returned in the order of `cells` regardless of shard timing.
  FleetReport run(const std::string& scenario_name,
                  const std::string& spec_fingerprint,
                  const std::vector<FleetCell>& cells);

  [[nodiscard]] const RunDir& run_dir() const { return run_dir_; }

 private:
  FleetConfig config_;
  RunDir run_dir_;
};

}  // namespace htpb::core
