// A resumable on-disk run directory for fleet campaigns.
//
// Layout under the root:
//
//   MANIFEST.json            -- {schema, tool, scenario, spec_fingerprint,
//                               cells: [{id, fingerprint}]}
//   spec.json                -- the resolved ScenarioSpec the campaign ran
//   cells/<id>.json          -- per-cell scenario spec handed to the worker
//   results/<id>.json        -- worker artifact (written by the worker)
//   status/<id>.json         -- scheduler verdict: done/failed, attempts, ...
//   logs/<id>.stdout|stderr  -- captured worker streams (last attempt)
//   quarantine/<id>.attemptK.json -- corrupt artifacts, moved aside
//   merged.json              -- the merged campaign tree
//
// Everything the scheduler writes goes through common::atomic_write_file,
// so a crash mid-write never leaves a half-written status or manifest: on
// re-invocation a cell either has a valid "done" status (skipped) or it
// does not (re-run). Worker artifacts are NOT trusted to be atomic --
// resume re-parses them before honoring a "done" status.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace htpb::core {

/// FNV-1a 64-bit of `text`, as 16 lowercase hex digits. Used to
/// fingerprint specs so a run directory refuses to resume a different
/// campaign and a stale cell result is never mistaken for a current one.
[[nodiscard]] std::string fingerprint(std::string_view text);

/// Scheduler verdict for one cell, persisted as status/<id>.json.
struct CellStatus {
  std::string state;        ///< "done" or "failed"
  std::string fingerprint;  ///< fingerprint of the cell's spec text
  int attempts = 0;
  std::string fail_reason;  ///< "" | "crash" | "timeout" | "error" | "corrupt-output"
  std::string last_error;   ///< stderr tail of the last failed attempt
};

class RunDir {
 public:
  explicit RunDir(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Creates the root and the cells/results/status/logs/quarantine
  /// subdirectories (mkdir -p semantics; existing directories are fine).
  void ensure_layout() const;

  [[nodiscard]] std::string manifest_path() const;
  [[nodiscard]] bool has_manifest() const;
  [[nodiscard]] json::Value load_manifest() const;
  void write_manifest(const json::Value& manifest) const;

  [[nodiscard]] std::string spec_path() const;
  [[nodiscard]] std::string cell_spec_path(const std::string& id) const;
  [[nodiscard]] std::string result_path(const std::string& id) const;
  [[nodiscard]] std::string status_path(const std::string& id) const;
  [[nodiscard]] std::string stdout_path(const std::string& id) const;
  [[nodiscard]] std::string stderr_path(const std::string& id) const;
  [[nodiscard]] std::string quarantine_path(const std::string& id,
                                            int attempt) const;
  [[nodiscard]] std::string merged_path() const;

  /// nullopt if the status file is absent, unparseable, or missing keys:
  /// an interrupted status write simply re-runs the cell.
  [[nodiscard]] std::optional<CellStatus> load_status(const std::string& id) const;
  void write_status(const std::string& id, const CellStatus& status) const;

  /// Moves results/<id>.json to quarantine/<id>.attempt<k>.json so a
  /// corrupt artifact is preserved for inspection but can never be
  /// mistaken for a good result. Missing source is a no-op.
  void quarantine_result(const std::string& id, int attempt) const;

 private:
  std::string root_;
};

}  // namespace htpb::core
