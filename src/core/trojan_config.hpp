// Wire format of the attacker's CONFIG_CMD packet (paper Fig. 1b).
//
// The paper packs the global-manager id and the activation signal into the
// 32-bit type word. Our Packet keeps the type enum clean, so the same
// information rides in the payload word and the OPTIONS field:
//   payload bits:  0     activation signal (1 = attack on)
//                  1     attenuate-victims mode enable
//                  2     boost-attackers mode enable
//                  8-15  victim scale, percent (payload' = payload * s/100)
//                  16-31 attacker boost, percent (payload' = payload * b/100)
//   options[0]   : global manager node id
//   options[1..] : attacker agent node ids
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "noc/packet.hpp"

namespace htpb::core {

struct TrojanConfig {
  bool active = true;
  bool attenuate_victims = true;
  bool boost_attackers = true;
  /// Victim requests are multiplied by this (0 < scale <= 1).
  double victim_scale = 0.125;
  /// Attacker requests are multiplied by this (>= 1).
  double attacker_boost = 4.0;
  NodeId global_manager = kInvalidNode;
  std::vector<NodeId> attacker_agents;
};

/// Encodes the configuration into payload + options of a CONFIG_CMD packet.
void encode_config(const TrojanConfig& cfg, noc::Packet& pkt);

/// Decodes a CONFIG_CMD packet. Returns std::nullopt for malformed frames
/// (wrong type, missing options) -- a hardware Trojan must never wedge on
/// garbage, it just ignores it.
[[nodiscard]] std::optional<TrojanConfig> decode_config(const noc::Packet& pkt);

}  // namespace htpb::core
