// Wire format of the attacker's CONFIG_CMD packet (paper Fig. 1b).
//
// The paper packs the global-manager id and the activation signal into the
// 32-bit type word. Our Packet keeps the type enum clean, so the same
// information rides in the payload word and the OPTIONS field:
//   payload bits:  0     activation signal (1 = attack on)
//                  1     attenuate-victims mode enable
//                  2     boost-attackers mode enable
//                  8-15  victim scale, percent (payload' = payload * s/100)
//                  16-31 attacker boost, percent (payload' = payload * b/100)
//   options[0]   : global manager node id
//   options[1..] : attacker agent node ids
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "noc/packet.hpp"

namespace htpb::core {

/// Software-side duty-cycle adaptation of the attacker agent (an
/// extension of the paper's Sec. III-B activation control, closing the
/// loop against a responding defender). The agent watches its own cores'
/// POWER_GRANT stream: while OFF it learns an EWMA reference of the
/// grants an honest-looking core receives; while ON it compares the live
/// grant against that reference and backs off -- toggling the Trojans OFF
/// via CONFIG_CMD -- when grants shrink (a sanction landed) or when the
/// ON-streak would reach a streak-confirmed detector's threshold. These
/// knobs live in the agent, not on the wire: encode_config/decode_config
/// carry only the activation state the agent decides on.
struct TrojanAdaptation {
  bool enabled = false;
  /// EWMA smoothing of the OFF-epoch grant reference.
  double alpha = 0.5;
  /// Back off when an ON-epoch grant drops below ratio x reference.
  double backoff_ratio = 0.7;
  /// Voluntary OFF after this many consecutive ON epochs (staying under a
  /// detector's confirm_epochs evades streak confirmation).
  int max_on_epochs = 1;
  /// OFF epochs held after a voluntary backoff; doubled after a detected
  /// sanction.
  int hold_off_epochs = 1;
};

struct TrojanConfig {
  bool active = true;
  bool attenuate_victims = true;
  bool boost_attackers = true;
  /// Victim requests are multiplied by this (0 < scale <= 1).
  double victim_scale = 0.125;
  /// Attacker requests are multiplied by this (>= 1).
  double attacker_boost = 4.0;
  NodeId global_manager = kInvalidNode;
  std::vector<NodeId> attacker_agents;
  TrojanAdaptation adapt;
};

/// Encodes the configuration into payload + options of a CONFIG_CMD packet.
void encode_config(const TrojanConfig& cfg, noc::Packet& pkt);

/// Decodes a CONFIG_CMD packet. Returns std::nullopt for malformed frames
/// (wrong type, missing options) -- a hardware Trojan must never wedge on
/// garbage, it just ignores it.
[[nodiscard]] std::optional<TrojanConfig> decode_config(const noc::Packet& pkt);

}  // namespace htpb::core
