#include "core/flooding.hpp"

namespace htpb::core {

void FloodingAttacker::tick(Cycle /*now*/) {
  if (!active_) return;
  accumulator_ += rate_;
  while (accumulator_ >= 1.0) {
    accumulator_ -= 1.0;
    // Junk data packets (5 flits) with randomized payloads; destination
    // varies slightly around the target so the hotspot covers its links.
    auto pkt = net_->make_packet(source_, target_, noc::PacketType::kGeneric,
                                 static_cast<std::uint32_t>(rng_()));
    net_->send(std::move(pkt));
    ++injected_;
  }
}

}  // namespace htpb::core
