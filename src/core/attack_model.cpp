#include "core/attack_model.hpp"

#include <stdexcept>

#include "common/matrix.hpp"

namespace htpb::core {

std::vector<double> AttackEffectModel::features(const AttackSample& s) const {
  std::vector<double> x;
  x.reserve(4 + victims_ + attackers_);
  x.push_back(1.0);  // a0
  x.push_back(s.rho);
  x.push_back(s.eta);
  x.push_back(static_cast<double>(s.m));
  for (const double phi : s.phi_victims) x.push_back(phi);
  for (const double phi : s.phi_attackers) x.push_back(phi);
  return x;
}

void AttackEffectModel::fit(std::span<const AttackSample> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("AttackEffectModel::fit: no samples");
  }
  victims_ = samples.front().phi_victims.size();
  attackers_ = samples.front().phi_attackers.size();
  for (const AttackSample& s : samples) {
    if (s.phi_victims.size() != victims_ ||
        s.phi_attackers.size() != attackers_) {
      throw std::invalid_argument(
          "AttackEffectModel::fit: inconsistent victim/attacker counts");
    }
  }
  const std::size_t p = 4 + victims_ + attackers_;
  if (samples.size() < p) {
    throw std::invalid_argument(
        "AttackEffectModel::fit: fewer samples than coefficients");
  }
  Matrix x(samples.size(), p);
  std::vector<double> y(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto row = features(samples[i]);
    for (std::size_t j = 0; j < p; ++j) x(i, j) = row[j];
    y[i] = samples[i].q;
  }
  // The Phi columns are constant within one mix (each application's
  // sensitivity does not vary across placements), so the normal equations
  // are rank-deficient without regularization; a small ridge keeps the
  // solve well-posed while leaving the informative coefficients intact.
  beta_ = least_squares(x, y, 1e-6);

  std::vector<double> predicted(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    predicted[i] = predict(samples[i]);
  }
  r2_ = r_squared(predicted, y);
}

double AttackEffectModel::predict(const AttackSample& s) const {
  if (!fitted()) {
    throw std::logic_error("AttackEffectModel::predict: model not fitted");
  }
  if (s.phi_victims.size() != victims_ ||
      s.phi_attackers.size() != attackers_) {
    throw std::invalid_argument(
        "AttackEffectModel::predict: victim/attacker count mismatch");
  }
  const auto x = features(s);
  double q = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) q += beta_[j] * x[j];
  return q;
}

}  // namespace htpb::core
