#include "core/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/parallel_sweep.hpp"

namespace htpb::core {

namespace {

void check_args(int max_hts, int k) {
  if (max_hts < 1) {
    throw std::invalid_argument("PlacementOptimizer: max_hts must be >= 1");
  }
  if (k < 1) {
    throw std::invalid_argument("PlacementOptimizer: k must be >= 1");
  }
}

std::vector<OptimizerResult> take_top_k(std::vector<OptimizerResult> all,
                                        int k) {
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(k),
                                          all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const auto& a, const auto& b) {
                      return a.predicted_q > b.predicted_q;
                    });
  all.resize(take);
  return all;
}

}  // namespace

double PlacementOptimizer::score(const Placement& p) const {
  AttackSample s;
  s.rho = p.rho;
  s.eta = p.eta;
  s.m = p.m();
  s.phi_victims = phi_victims_;
  s.phi_attackers = phi_attackers_;
  return model_->predict(s);
}

OptimizerResult PlacementOptimizer::optimize(
    int max_hts, int candidates_per_m, std::uint64_t seed,
    const ParallelSweepRunner& runner) const {
  return optimize_top_k(max_hts, candidates_per_m, 1, seed, runner).front();
}

std::vector<OptimizerResult> PlacementOptimizer::optimize_top_k(
    int max_hts, int candidates_per_m, int k, std::uint64_t seed,
    const ParallelSweepRunner& runner) const {
  check_args(max_hts, k);
  // One task per m; each task owns the (seed, m-1) stream, so candidate
  // generation is identical no matter how the pool schedules the tasks.
  auto per_m = runner.map_streams(
      static_cast<std::size_t>(max_hts), seed,
      [&](std::size_t idx, Rng& rng) {
        const int m = static_cast<int>(idx) + 1;
        std::vector<OptimizerResult> local;
        auto candidates =
            candidate_placements(geom_, gm_, m, candidates_per_m, rng);
        local.reserve(candidates.size());
        for (auto& cand : candidates) {
          OptimizerResult r;
          r.predicted_q = score(cand);
          r.placement = std::move(cand);
          local.push_back(std::move(r));
        }
        return local;
      });
  std::vector<OptimizerResult> all;
  for (auto& batch : per_m) {
    for (auto& r : batch) all.push_back(std::move(r));
  }
  return take_top_k(std::move(all), k);
}

}  // namespace htpb::core
