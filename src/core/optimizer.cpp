#include "core/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace htpb::core {

double PlacementOptimizer::score(const Placement& p) const {
  AttackSample s;
  s.rho = p.rho;
  s.eta = p.eta;
  s.m = p.m();
  s.phi_victims = phi_victims_;
  s.phi_attackers = phi_attackers_;
  return model_->predict(s);
}

OptimizerResult PlacementOptimizer::optimize(int max_hts,
                                             int candidates_per_m,
                                             Rng& rng) const {
  return optimize_top_k(max_hts, candidates_per_m, 1, rng).front();
}

std::vector<OptimizerResult> PlacementOptimizer::optimize_top_k(
    int max_hts, int candidates_per_m, int k, Rng& rng) const {
  if (max_hts < 1) {
    throw std::invalid_argument("PlacementOptimizer: max_hts must be >= 1");
  }
  if (k < 1) {
    throw std::invalid_argument("PlacementOptimizer: k must be >= 1");
  }
  std::vector<OptimizerResult> all;
  for (int m = 1; m <= max_hts; ++m) {
    auto candidates = candidate_placements(geom_, gm_, m, candidates_per_m, rng);
    for (auto& cand : candidates) {
      OptimizerResult r;
      r.predicted_q = score(cand);
      r.placement = std::move(cand);
      all.push_back(std::move(r));
    }
  }
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(k),
                                          all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const auto& a, const auto& b) {
                      return a.predicted_q > b.predicted_q;
                    });
  all.resize(take);
  return all;
}

}  // namespace htpb::core
