#include "core/parallel_sweep.hpp"

#include <cstdlib>

namespace htpb::core {

ParallelSweepRunner::ParallelSweepRunner(int threads)
    : threads_(threads > 0 ? threads : default_threads()) {}

int ParallelSweepRunner::default_threads() {
  if (const char* env = std::getenv("HTPB_THREADS")) {
    // Clamp, as documented: a set-but-unusable value (0, negative,
    // non-numeric, overflowing) means a serial run, not silent fallback
    // to all cores. strtol saturates instead of the UB atoi has.
    const long n = std::strtol(env, nullptr, 10);
    return static_cast<int>(std::clamp(n, 1L, 4096L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

Rng ParallelSweepRunner::stream_rng(std::uint64_t seed, std::size_t index) {
  // SplitMix64 of the index, folded into the base seed. The Rng
  // constructor runs SplitMix64 again over the combined value, so nearby
  // indices still yield well-separated xoshiro states.
  return Rng(seed ^ splitmix64(static_cast<std::uint64_t>(index) +
                               0x9E3779B97F4A7C15ULL));
}

std::vector<CampaignOutcome> ParallelSweepRunner::run_placements(
    const CampaignConfig& cfg, std::span<const Placement> placements) const {
  AttackCampaign master(cfg);
  return run_placements(master, placements);
}

std::vector<CampaignOutcome> ParallelSweepRunner::run_placements(
    AttackCampaign& master, std::span<const Placement> placements) const {
  std::vector<std::vector<NodeId>> node_sets;
  node_sets.reserve(placements.size());
  for (const Placement& p : placements) node_sets.push_back(p.nodes);
  return run_node_sets(master, node_sets);
}

std::vector<CampaignOutcome> ParallelSweepRunner::run_node_sets(
    const CampaignConfig& cfg,
    std::span<const std::vector<NodeId>> node_sets) const {
  AttackCampaign master(cfg);
  return run_node_sets(master, node_sets);
}

std::vector<CampaignOutcome> ParallelSweepRunner::run_node_sets(
    AttackCampaign& master,
    std::span<const std::vector<NodeId>> node_sets) const {
  master.prime_baseline();
  return map(node_sets.size(), [&](std::size_t i) {
    AttackCampaign clone(master);
    return clone.run(node_sets[i]);
  });
}

}  // namespace htpb::core
