// The paper's quantitative definitions (Sec. IV):
//   Def. 1  theta_k    -- application performance (sum of IPC * f)
//   Def. 2  Theta_k    -- performance change theta/Lambda
//   Def. 3  Q(D,G)     -- attack effect
//   Def. 4  phi(j, z)  -- per-core sensitivity      (system::core_sensitivity)
//   Def. 5  Phi_k      -- per-app sensitivity       (system::app_sensitivity)
//   Def. 6  omega      -- HT virtual center          (common::virtual_center)
//   Def. 7  rho        -- GM <-> virtual-center distance (common::center_distance)
//   Def. 8  eta        -- HT placement density       (common::placement_density)
#pragma once

#include <span>
#include <vector>

#include "common/geometry.hpp"
#include "common/types.hpp"

namespace htpb::core {

/// Def. 2: Theta = theta_with_HTs / theta_without. Returns 1 when the
/// baseline is zero (an idle application is unaffected by definition).
[[nodiscard]] double performance_change(double theta_attacked,
                                        double theta_baseline);

/// Def. 3: Q = (V * sum(Theta_attackers)) / (A * sum(Theta_victims)).
/// V = |victims|, A = |attackers|. Throws std::invalid_argument when
/// either set is empty (Q is undefined for infection-only experiments).
[[nodiscard]] double attack_effect_q(std::span<const double> theta_change_attackers,
                                     std::span<const double> theta_change_victims);

/// Defs. 6-8 packaged for a placement on a concrete mesh.
struct PlacementGeometry {
  PointF omega;  ///< Def. 6
  double rho;    ///< Def. 7
  double eta;    ///< Def. 8
  int m;         ///< number of malicious nodes
};

[[nodiscard]] PlacementGeometry placement_geometry(const MeshGeometry& geom,
                                                   NodeId global_manager,
                                                   std::span<const NodeId> hts);

}  // namespace htpb::core
