#include "core/metrics.hpp"

#include <stdexcept>

namespace htpb::core {

double performance_change(double theta_attacked, double theta_baseline) {
  if (theta_baseline <= 0.0) return 1.0;
  return theta_attacked / theta_baseline;
}

double attack_effect_q(std::span<const double> theta_change_attackers,
                       std::span<const double> theta_change_victims) {
  if (theta_change_attackers.empty() || theta_change_victims.empty()) {
    throw std::invalid_argument(
        "attack_effect_q: needs at least one attacker and one victim");
  }
  const auto a = static_cast<double>(theta_change_attackers.size());
  const auto v = static_cast<double>(theta_change_victims.size());
  double sum_a = 0.0;
  for (const double x : theta_change_attackers) sum_a += x;
  double sum_v = 0.0;
  for (const double x : theta_change_victims) sum_v += x;
  if (sum_v <= 0.0) {
    throw std::invalid_argument("attack_effect_q: victim change sum not positive");
  }
  return (v * sum_a) / (a * sum_v);
}

PlacementGeometry placement_geometry(const MeshGeometry& geom,
                                     NodeId global_manager,
                                     std::span<const NodeId> hts) {
  std::vector<Coord> coords;
  coords.reserve(hts.size());
  for (const NodeId n : hts) coords.push_back(geom.coord_of(n));
  PlacementGeometry pg;
  pg.omega = virtual_center(coords);
  pg.rho = center_distance(geom.coord_of(global_manager), coords);
  pg.eta = placement_density(coords);
  pg.m = static_cast<int>(hts.size());
  return pg;
}

}  // namespace htpb::core
