#include "core/infection.hpp"

#include <algorithm>
#include <limits>

#include "noc/routing.hpp"

namespace htpb::core {

InfectionAnalyzer::InfectionAnalyzer(const MeshGeometry& geom,
                                     NodeId global_manager)
    : geom_(geom), gm_(global_manager) {}

bool InfectionAnalyzer::route_covers(NodeId src, NodeId via) const {
  return noc::xy_route_passes_through(geom_.coord_of(src), geom_.coord_of(gm_),
                                      geom_.coord_of(via));
}

double InfectionAnalyzer::predicted_rate(std::span<const NodeId> hts,
                                         std::span<const NodeId> sources) const {
  if (sources.empty()) return 0.0;
  int covered = 0;
  for (const NodeId src : sources) {
    for (const NodeId ht : hts) {
      if (route_covers(src, ht)) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(sources.size());
}

double InfectionAnalyzer::predicted_rate(std::span<const NodeId> hts) const {
  std::vector<NodeId> sources;
  sources.reserve(static_cast<std::size_t>(geom_.node_count()) - 1);
  for (NodeId n = 0; n < static_cast<NodeId>(geom_.node_count()); ++n) {
    if (n != gm_) sources.push_back(n);
  }
  return predicted_rate(hts, sources);
}

int InfectionAnalyzer::coverage_of(NodeId via) const {
  int covered = 0;
  for (NodeId n = 0; n < static_cast<NodeId>(geom_.node_count()); ++n) {
    if (n != gm_ && route_covers(n, via)) ++covered;
  }
  return covered;
}

std::vector<NodeId> InfectionAnalyzer::placement_for_target(double target,
                                                            int max_hts,
                                                            Rng& rng) const {
  const auto n = static_cast<NodeId>(geom_.node_count());
  std::vector<NodeId> sources;
  for (NodeId s = 0; s < n; ++s) {
    if (s != gm_) sources.push_back(s);
  }
  std::vector<bool> covered(n, false);
  std::vector<NodeId> candidates;
  for (NodeId c = 0; c < n; ++c) {
    if (c != gm_) candidates.push_back(c);
  }
  rng.shuffle(std::span<NodeId>(candidates));  // deterministic tie-breaks

  std::vector<NodeId> placement;
  int covered_count = 0;
  const double total = static_cast<double>(sources.size());
  while (static_cast<int>(placement.size()) < max_hts &&
         static_cast<double>(covered_count) / total < target) {
    // Marginal sources still needed to hit the target exactly.
    const int needed = static_cast<int>(target * total + 0.999) - covered_count;
    // Prefer the candidate with the largest marginal gain that does not
    // overshoot `needed`; if every positive gain overshoots, take the
    // smallest positive one. This converges on the target from below and
    // lands within one node's coverage of it.
    NodeId best = kInvalidNode;
    int best_gain = -1;
    NodeId fallback = kInvalidNode;
    int fallback_gain = std::numeric_limits<int>::max();
    for (const NodeId c : candidates) {
      if (std::find(placement.begin(), placement.end(), c) != placement.end()) {
        continue;
      }
      int gain = 0;
      for (const NodeId s : sources) {
        if (!covered[s] && route_covers(s, c)) ++gain;
      }
      if (gain <= 0) continue;
      if (gain <= needed && gain > best_gain) {
        best_gain = gain;
        best = c;
      }
      if (gain < fallback_gain) {
        fallback_gain = gain;
        fallback = c;
      }
    }
    if (best == kInvalidNode) best = fallback;
    if (best == kInvalidNode) break;
    placement.push_back(best);
    for (const NodeId s : sources) {
      if (route_covers(s, best)) {
        if (!covered[s]) ++covered_count;
        covered[s] = true;
      }
    }
  }
  return placement;
}

}  // namespace htpb::core
