#include "core/fleet_scheduler.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/rng.hpp"
#include "common/subprocess.hpp"

namespace htpb::core {

namespace {

constexpr int kManifestSchema = 1;
constexpr std::size_t kStderrTailBytes = 2000;

[[nodiscard]] std::string stderr_tail(const std::string& path) {
  std::string text;
  try {
    text = common::read_file(path);
  } catch (const std::exception&) {
    return "";
  }
  if (text.size() > kStderrTailBytes) {
    text.erase(0, text.size() - kStderrTailBytes);
  }
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

/// Bounded exponential backoff with deterministic jitter: the wait before
/// retry k of `cell_id` is a pure function of (seed, cell, k), so a
/// faulted campaign replays with identical timing structure.
[[nodiscard]] double backoff_seconds(const FleetConfig& config,
                                     const std::string& cell_id, int attempt) {
  double base = config.backoff_base_seconds;
  for (int i = 1; i < attempt && base < config.backoff_max_seconds; ++i) {
    base *= 2.0;
  }
  base = std::min(base, config.backoff_max_seconds);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : cell_id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  Rng rng(splitmix64(config.backoff_seed ^ h) +
          static_cast<std::uint64_t>(attempt));
  return base * (0.5 + rng.uniform());
}

[[nodiscard]] json::Value make_manifest(const std::string& scenario_name,
                                        const std::string& spec_fingerprint,
                                        const std::vector<FleetCell>& cells) {
  json::Array cell_array;
  cell_array.reserve(cells.size());
  for (const FleetCell& cell : cells) {
    json::Object o;
    o["id"] = json::Value(cell.id);
    o["fingerprint"] = json::Value(fingerprint(cell.spec_text));
    cell_array.push_back(json::Value(std::move(o)));
  }
  json::Object manifest;
  manifest["schema"] = json::Value(kManifestSchema);
  manifest["tool"] = json::Value("htpb_fleet");
  manifest["scenario"] = json::Value(scenario_name);
  manifest["spec_fingerprint"] = json::Value(spec_fingerprint);
  manifest["cells"] = json::Value(std::move(cell_array));
  return json::Value(std::move(manifest));
}

}  // namespace

FleetScheduler::FleetScheduler(FleetConfig config)
    : config_(std::move(config)), run_dir_(config_.run_dir) {
  if (config_.shards < 1) {
    throw std::runtime_error("FleetScheduler: shards must be >= 1");
  }
  if (config_.max_attempts < 1) {
    throw std::runtime_error("FleetScheduler: max_attempts must be >= 1");
  }
  if (!config_.worker_command) {
    throw std::runtime_error("FleetScheduler: worker_command is required");
  }
}

FleetReport FleetScheduler::run(const std::string& scenario_name,
                                const std::string& spec_fingerprint,
                                const std::vector<FleetCell>& cells) {
  run_dir_.ensure_layout();

  if (config_.resume && run_dir_.has_manifest()) {
    const json::Value manifest = run_dir_.load_manifest();
    const json::Value* fp = manifest.as_object().find("spec_fingerprint");
    if (fp == nullptr || fp->as_string() != spec_fingerprint) {
      throw std::runtime_error(
          "FleetScheduler: run dir " + run_dir_.root() +
          " holds a different spec (fingerprint " +
          (fp != nullptr ? fp->as_string() : "<missing>") + " vs " +
          spec_fingerprint + "); use a fresh directory");
    }
  }
  run_dir_.write_manifest(make_manifest(scenario_name, spec_fingerprint, cells));

  std::mutex log_mutex;
  const auto log = [&](const std::string& line) {
    if (!config_.log) return;
    const std::lock_guard<std::mutex> lock(log_mutex);
    config_.log(line);
  };

  FleetReport report;
  report.cells.resize(cells.size());

  std::atomic<std::size_t> next_cell{0};
  const auto worker_loop = [&]() {
    for (;;) {
      const std::size_t i = next_cell.fetch_add(1);
      if (i >= cells.size()) return;
      const FleetCell& cell = cells[i];
      FleetCellOutcome& outcome = report.cells[i];
      outcome.id = cell.id;

      const std::string cell_fp = fingerprint(cell.spec_text);
      const std::string result_path = run_dir_.result_path(cell.id);

      if (config_.resume) {
        const auto prior = run_dir_.load_status(cell.id);
        if (prior && prior->state == "done" && prior->fingerprint == cell_fp) {
          // Honor "done" only if the artifact still parses: workers do
          // not write atomically, so a kill mid-run can leave a done
          // status from a PREVIOUS attempt next to a torn file.
          bool artifact_ok = false;
          try {
            (void)json::parse_file(result_path);
            artifact_ok = true;
          } catch (const std::exception&) {
          }
          if (artifact_ok) {
            outcome.done = true;
            outcome.resumed = true;
            log("cell " + cell.id + ": resumed (already done)");
            continue;
          }
        }
      }

      common::atomic_write_file(run_dir_.cell_spec_path(cell.id),
                                cell.spec_text);

      CellStatus status;
      status.fingerprint = cell_fp;
      for (int attempt = 1; attempt <= config_.max_attempts; ++attempt) {
        outcome.attempts = attempt;
        status.attempts = attempt;
        // A stale artifact from an earlier attempt must never be
        // mistaken for this attempt's output.
        ::unlink(result_path.c_str());

        common::SubprocessOptions opts;
        opts.env = {{"HTPB_FLEET_CELL", cell.id},
                    {"HTPB_FLEET_ATTEMPT", std::to_string(attempt)}};
        opts.stdout_path = run_dir_.stdout_path(cell.id);
        opts.stderr_path = run_dir_.stderr_path(cell.id);
        opts.timeout_seconds = config_.timeout_seconds;
        opts.term_grace_seconds = config_.term_grace_seconds;

        const std::vector<std::string> argv =
            config_.worker_command(run_dir_.cell_spec_path(cell.id),
                                   result_path);
        const common::SubprocessResult r = common::run_subprocess(argv, opts);

        bool retryable = false;
        if (r.timed_out) {
          outcome.fail_reason = "timeout";
          outcome.last_error = "killed after " +
                               std::to_string(config_.timeout_seconds) +
                               "s wall clock";
          retryable = true;
        } else if (r.signaled) {
          outcome.fail_reason = "crash";
          outcome.last_error = "terminated by signal " +
                               std::to_string(r.term_signal) + "; stderr: " +
                               stderr_tail(run_dir_.stderr_path(cell.id));
          retryable = true;
        } else if (r.exit_code != 0) {
          // A clean nonzero exit is the worker deterministically
          // reporting a bad input; retrying replays the same failure.
          outcome.fail_reason = "error";
          outcome.last_error = "exit code " + std::to_string(r.exit_code) +
                               "; stderr: " +
                               stderr_tail(run_dir_.stderr_path(cell.id));
          retryable = false;
        } else {
          try {
            (void)json::parse_file(result_path);
            outcome.done = true;
            outcome.fail_reason.clear();
            outcome.last_error.clear();
          } catch (const std::exception& e) {
            outcome.fail_reason = "corrupt-output";
            outcome.last_error = e.what();
            run_dir_.quarantine_result(cell.id, attempt);
            retryable = true;
          }
        }

        if (outcome.done) {
          status.state = "done";
          status.fail_reason.clear();
          status.last_error.clear();
          run_dir_.write_status(cell.id, status);
          log("cell " + cell.id + ": done (attempt " +
              std::to_string(attempt) + ")");
          break;
        }

        log("cell " + cell.id + ": " + outcome.fail_reason + " (attempt " +
            std::to_string(attempt) + "/" +
            std::to_string(config_.max_attempts) + ")");
        if (!retryable || attempt == config_.max_attempts) {
          status.state = "failed";
          status.fail_reason = outcome.fail_reason;
          status.last_error = outcome.last_error;
          run_dir_.write_status(cell.id, status);
          break;
        }
        const double wait = backoff_seconds(config_, cell.id, attempt);
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
      }
    }
  };

  const int shard_count =
      static_cast<int>(std::min<std::size_t>(config_.shards, cells.size()));
  std::vector<std::thread> shards;
  shards.reserve(shard_count);
  for (int i = 0; i < shard_count; ++i) shards.emplace_back(worker_loop);
  for (std::thread& t : shards) t.join();

  for (const FleetCellOutcome& outcome : report.cells) {
    if (outcome.resumed) {
      ++report.resumed;
      ++report.done;
    } else if (outcome.done) {
      ++report.done;
    } else {
      ++report.failed;
    }
    report.attempts += outcome.attempts;
  }
  return report;
}

}  // namespace htpb::core
