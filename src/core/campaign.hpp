// Experiment campaign runner: builds the chip, injects Trojans through
// the router-inspector hook, broadcasts the attacker's configuration
// packets, runs warmup + measurement epochs, and reduces the raw
// simulator output to the paper's metrics (infection rate, Theta per
// application, Q). The baseline (Trojan-free) run is cached so placement
// sweeps pay for it once.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/metrics.hpp"
#include "core/trojan.hpp"
#include "core/trojan_config.hpp"
#include "power/defense.hpp"
#include "power/request_trace.hpp"
#include "power/response.hpp"
#include "system/system_config.hpp"
#include "workload/application.hpp"

namespace htpb::system {
class ManyCoreSystem;
}  // namespace htpb::system

namespace htpb::core {

struct CampaignConfig {
  system::SystemConfig system;
  /// Benchmark combination (Table III). An empty mix means an
  /// infection-rate-only experiment: every core runs a light uniform
  /// workload and no Q is computed (Figs. 3-4).
  std::optional<workload::Mix> mix;
  /// Threads per application; 0 = divide all cores evenly.
  int threads_per_app = 0;
  /// Trojan behaviour written into the attacker's CONFIG_CMD broadcast
  /// (global_manager / attacker_agents are filled in automatically).
  TrojanConfig trojan;
  int warmup_epochs = 2;
  int measure_epochs = 5;
  /// Node that broadcasts the configuration; default: the attacker
  /// application's first core (or node 0 when there is none).
  std::optional<NodeId> attacker_agent;
  /// Duty-cycled activation (Sec. III-B: "a series of configuration
  /// packets can be sent with activation signals alternated to be ON and
  /// OFF"): every `toggle_period_epochs` epochs the agent re-broadcasts
  /// the configuration with the activation signal flipped. 0 = static.
  int toggle_period_epochs = 0;
  /// Optional manager-side intrusion detection policy. When set, every
  /// *attacked* run constructs its own fresh detector from this config
  /// (the baseline is by definition clean), attaches it to the run's
  /// global manager, and surfaces the cumulative DetectorReport in
  /// CampaignOutcome::detection. Per-run instantiation is what makes
  /// defense sweeps parallelizable and placement-order independent: no
  /// EWMA history or flags ever leak from one placement into the next.
  std::optional<power::DetectorConfig> detector;
  /// Pluggable detector constructor for future detector types; empty =
  /// power::make_detector (the request-anomaly detector).
  power::DetectorFactory detector_factory;
  /// Closed-loop response policy (power/response.hpp) acting on the
  /// detector's per-epoch verdicts. Requires `detector`; engaged under
  /// the same rule (attacked runs only). Quarantine and throttle filter
  /// the manager's allocation; migrate re-places every application
  /// through the mesh's center mirror at the first confirmed flag's epoch
  /// boundary (modeled as a rebuild-and-resume, see run_system).
  std::optional<power::ResponseConfig> response;
  /// Warmup-prefix forking: runs that share a warmup prefix (same system,
  /// workload mapping, placement and Trojan behaviour -- detectors and
  /// responses excluded, they are replayed/checked separately) simulate
  /// the warmup ONCE, snapshot the chip, and every subsequent run restores
  /// from the checkpoint instead of re-simulating -- O(1) warmup per
  /// shared prefix instead of O(arms). Bit-identical to the non-forking
  /// path by the snapshot layer's round-trip guarantee; a run whose
  /// response policy would have sanctioned during warmup falls back to a
  /// full simulation (the checkpoint's dynamics would have differed).
  bool warmup_fork = true;
  /// When non-empty, warmup checkpoints are persisted to
  /// `<checkpoint_dir>/warmup-<fingerprint>.json` (atomic writes) and
  /// reused across processes. Corrupt or mismatched files are recomputed,
  /// never trusted.
  std::string checkpoint_dir;
};

struct AppOutcome {
  AppId id = kInvalidApp;
  std::string name;
  bool attacker = false;
  double theta_baseline = 0.0;  ///< Lambda_k (Def. 2 denominator)
  double theta_attacked = 0.0;  ///< theta_k with HTs
  double change = 1.0;          ///< Theta_k (Def. 2)
  double phi = 0.0;             ///< Phi_k (Def. 5), from the baseline run
};

/// What the closed loop bought (and cost) the defender, reduced from the
/// run's ResponseStats plus app attribution and the cached baseline.
struct ResponseOutcome {
  power::ResponseKind kind = power::ResponseKind::kQuarantine;
  power::ResponseTrigger trigger = power::ResponseTrigger::kHigh;
  /// Distinct sanctioned cores, first-sanction order (for kMigrate: the
  /// cores whose flags triggered the migration).
  std::vector<NodeId> sanctioned_cores;
  /// Sanctioned cores that belong to non-attacker applications --
  /// false-positive collateral, the policy punished a victim.
  int collateral = 0;
  std::uint64_t sanction_core_epochs = 0;
  std::uint64_t denied_requests = 0;
  std::uint64_t clamped_requests = 0;
  /// 0-based observed-epoch index (warmup included) of the first
  /// sanction / migration trigger, -1 when the loop never engaged.
  int first_sanction_epoch = -1;
  /// Measured epochs from the first sanction until the victims' granted
  /// power re-crossed recovery_threshold x the baseline mean; -1 when it
  /// never recovered (or the loop never engaged).
  int epochs_to_recovery = -1;
  /// Mean victims' granted power over the measurement window, as a
  /// fraction of the un-attacked baseline (1.0 = full recovery).
  double victim_grant_recovery = 0.0;
  int migrations = 0;

  friend bool operator==(const ResponseOutcome&,
                         const ResponseOutcome&) = default;
};

/// The adaptive attacker agent's self-accounting (TrojanAdaptation).
struct AdaptationOutcome {
  int epochs_on = 0;    ///< decision epochs spent attacking
  int epochs_off = 0;   ///< decision epochs spent hiding
  int backoffs = 0;     ///< sanctions detected via the grant stream

  /// Mean duty cycle the agent settled on.
  [[nodiscard]] double duty() const noexcept {
    const int total = epochs_on + epochs_off;
    return total == 0 ? 0.0
                      : static_cast<double>(epochs_on) /
                            static_cast<double>(total);
  }

  friend bool operator==(const AdaptationOutcome&,
                         const AdaptationOutcome&) = default;
};

struct CampaignOutcome {
  double infection_measured = 0.0;
  double infection_predicted = 0.0;
  bool q_valid = false;
  double q = 0.0;  ///< Def. 3; valid only when q_valid
  PlacementGeometry geometry{};  ///< rho/eta/m of the placement (m = 0: none)
  std::vector<AppOutcome> apps;
  TrojanStats trojan_totals;
  /// The attacked run's detection outcome; engaged iff the campaign has a
  /// detector configured and the run implanted at least one Trojan node.
  std::optional<power::DetectorReport> detection;
  /// Closed-loop response outcome; engaged iff the campaign has a
  /// response configured (which requires a detector) and the run
  /// implanted at least one Trojan node.
  std::optional<ResponseOutcome> response;
  /// Adaptive-agent accounting; engaged iff trojan.adapt.enabled and the
  /// run implanted at least one Trojan node.
  std::optional<AdaptationOutcome> adaptation;
};

/// Process-internal warmup-checkpoint store (one per campaign family;
/// clones share it through the campaign's shared_ptr). Defined in
/// campaign.cpp; compute-once under concurrency via shared_future.
class WarmupCache;
struct WarmupCheckpoint;
struct AttackFrame;

class AttackCampaign {
 public:
  explicit AttackCampaign(CampaignConfig cfg);

  [[nodiscard]] const std::vector<workload::Application>& apps() const noexcept {
    return apps_;
  }
  [[nodiscard]] const CampaignConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] NodeId gm_node() const noexcept { return gm_node_; }

  /// Full outcome for one placement (runs / reuses the cached baseline).
  [[nodiscard]] CampaignOutcome run(std::span<const NodeId> ht_nodes);

  /// Infection rate only -- skips the baseline (Figs. 3-4).
  [[nodiscard]] double run_infection_only(std::span<const NodeId> ht_nodes);

  /// Detection outcome only -- skips the baseline. Used by defense
  /// sweeps' false-positive arms (dormant Trojans, clean traffic), where
  /// Q is irrelevant and the baseline would be wasted work. Engaged iff
  /// a detector is configured and `ht_nodes` is non-empty.
  [[nodiscard]] std::optional<power::DetectorReport> run_detection_only(
      std::span<const NodeId> ht_nodes);

  /// One attacked simulation, its per-epoch request stream captured.
  /// Replaying `trace` through any DetectorConfig (power/request_trace.hpp)
  /// reproduces, bit for bit, the report an in-simulation detector with
  /// that config would have filed for this placement -- detectors are
  /// observational, so one recording serves every operating point.
  struct TracedRun {
    /// Same as run()'s outcome -- detection engaged under the same rule
    /// (a configured detector and a non-empty placement); recording never
    /// perturbs the run, in-sim detection included.
    CampaignOutcome outcome;
    power::RequestTrace trace;
  };

  /// Full outcome for one placement plus the recorded request trace
  /// (runs / reuses the cached baseline). This is the record-once half of
  /// DefenseSweep's record-once/replay-many detection arm.
  [[nodiscard]] TracedRun run_traced(std::span<const NodeId> ht_nodes);

  /// Request trace only -- skips the baseline and the metric reduction.
  /// Cheapest way to feed a detector grid (e.g. the clean false-positive
  /// arm records one dormant-Trojan trace and replays every detector).
  [[nodiscard]] power::RequestTrace record_trace(
      std::span<const NodeId> ht_nodes);

  /// Baseline per-app sensitivities Phi (computed with the baseline run).
  [[nodiscard]] const std::vector<double>& baseline_phi();

  /// Runs (or reuses) the Trojan-free baseline now. Campaigns are
  /// copyable; priming before cloning one per sweep worker means every
  /// clone *shares* the immutable cached baseline (shared_ptr, no
  /// per-clone copy of the theta/phi vectors -- ParallelSweepRunner
  /// clones one campaign per task, so this keeps clones O(1) in the
  /// baseline size).
  void prime_baseline() { ensure_baseline(); }

  /// Swaps the detection policy of subsequent runs. Detectors are purely
  /// observational, so the cached baseline stays valid -- defense sweeps
  /// clone one primed campaign and vary the detector per clone without
  /// re-running the baseline.
  void set_detector(std::optional<power::DetectorConfig> detector) {
    cfg_.detector = std::move(detector);
  }

  /// Process-wide count of full ManyCoreSystem simulations run by any
  /// campaign (baselines included). Monotonic, thread-safe. The trace
  /// record/replay tests assert on deltas of this counter that a defense
  /// sweep's detection arm simulates O(placements) times, independent of
  /// the detector-grid size.
  [[nodiscard]] static std::uint64_t systems_simulated() noexcept;

  /// Process-wide count of warmup epochs actually simulated cycle by
  /// cycle (forked runs restore a checkpoint and add nothing here).
  /// Monotonic, thread-safe; the warmup-fork tests assert on deltas that
  /// a sweep's arms share one warmup per prefix instead of re-simulating
  /// it per arm.
  [[nodiscard]] static std::uint64_t warmup_epochs_simulated() noexcept;

  /// The campaign's warmup-checkpoint store. Clones made by copy share it
  /// automatically; sweep layers that build *separate* masters over the
  /// same scenario hand one master's cache to the others so every arm
  /// sharing a warmup prefix forks from one checkpoint.
  [[nodiscard]] std::shared_ptr<WarmupCache> warmup_cache() const noexcept {
    return warmup_cache_;
  }
  void adopt_warmup_cache(std::shared_ptr<WarmupCache> cache) noexcept {
    if (cache != nullptr) warmup_cache_ = std::move(cache);
  }

 private:
  struct RunResult {
    std::vector<double> theta;  // per app
    std::vector<double> phi;    // per app
    double infection = 0.0;
    TrojanStats trojan_totals;
    std::optional<power::DetectorReport> detection;
    /// Victims' granted power per measured epoch (recovery trajectory)
    /// and its mean (the baseline's mean is the recovery reference).
    std::vector<double> victim_grants;
    double mean_victim_grant_mw = 0.0;
    std::optional<power::ResponseStats> response_stats;
    std::optional<AdaptationOutcome> adaptation;
    int migrations = 0;
  };

  /// Runs one simulation; when `trace` is non-null the GM records its
  /// per-epoch request stream into it (recording never perturbs the run).
  RunResult run_system(std::span<const NodeId> ht_nodes,
                       power::RequestTrace* trace = nullptr);
  /// Reduces an attacked RunResult against the cached baseline.
  [[nodiscard]] CampaignOutcome reduce_outcome(
      const RunResult& attacked, std::span<const NodeId> ht_nodes) const;
  void ensure_baseline();

  /// Implants the Trojans into `sys`, broadcasts the attacker's
  /// configuration and arms the duty-cycle controllers (serializable
  /// kCampaignToggle / kCampaignAdapt events whose handlers close over
  /// `frame`). Shared by the leg path and the warmup scratch run, which
  /// is what makes the scratch prefix bit-identical to a live one.
  void install_attack(system::ManyCoreSystem& sys,
                      const std::vector<workload::Application>& apps,
                      std::span<const NodeId> ht_nodes,
                      AttackFrame& frame) const;
  /// Canonical fingerprint of a leg's warmup prefix: system config, the
  /// mapped applications, the placement and the Trojan/duty-cycle
  /// behaviour. Detector, response and measure_epochs are deliberately
  /// excluded -- they do not move the (response-free) warmup dynamics.
  [[nodiscard]] std::string warmup_fingerprint(
      const std::vector<workload::Application>& apps,
      std::span<const NodeId> ht_nodes) const;
  /// Cache lookup (disk-backed when checkpoint_dir is set) with
  /// compute-on-miss; nullptr means "simulate the warmup yourself".
  [[nodiscard]] std::shared_ptr<const WarmupCheckpoint> obtain_warmup(
      const std::string& fp, const std::vector<workload::Application>& apps,
      std::span<const NodeId> ht_nodes);
  /// Runs the warmup prefix once on a scratch system and snapshots it.
  [[nodiscard]] std::shared_ptr<const WarmupCheckpoint> compute_warmup(
      const std::string& fp, const std::vector<workload::Application>& apps,
      std::span<const NodeId> ht_nodes) const;

  CampaignConfig cfg_;
  std::vector<workload::Application> apps_;
  NodeId gm_node_ = kInvalidNode;
  NodeId agent_node_ = 0;
  std::shared_ptr<const RunResult> baseline_;  // set once; shared by clones
  std::shared_ptr<WarmupCache> warmup_cache_;  // shared by clones
};

}  // namespace htpb::core
