// Defense-evaluation sweeps: detector operating points x Trojan
// placements, reduced to the curves a defender actually reads off:
//
//   - detection rate      fraction of Trojan-affected cores flagged
//                         (distinct cores -- a core in both flag lists
//                         counts once),
//   - false-positive rate flags raised on clean traffic,
//   - detection latency   epochs from power-on to the first confirmed flag,
//   - Q under guard       residual attack effect when the GuardedBudgeter
//                         clamps requests at the same operating point.
//
// This is the ROC-style surface the paper's conclusion asks for on top of
// the Figs. 3-6 pipeline: sweep the trust band from tight to loose and
// watch detection buy false positives (and the guard trade Q for fidelity
// to honest workload phase changes).
//
// Cost shape (record-once/replay-many): detectors never perturb the
// dynamics, so the detection arm runs ONE recorded simulation per
// placement (power::RequestTrace) and replays the trace through every
// operating point offline; the clean arm records one dormant-Trojan
// trace and replays the grid. Simulation count is O(placements) + 1,
// independent of the detector-grid size -- only the guard arm, which
// genuinely changes the dynamics, still simulates per operating point.
// Replayed reports are bit-identical to in-simulation detection, the
// sweep is bit-identical at 1 and N threads, and each cell's report is
// the same whether the cell is evaluated alone or inside a batch
// (tests/core/defense_sweep_test.cpp and trace_replay_test.cpp lock all
// three).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "core/campaign.hpp"
#include "core/parallel_sweep.hpp"
#include "power/defense.hpp"
#include "power/response.hpp"

namespace htpb::core {

struct DefenseSweepConfig {
  /// The attack scenario under evaluation. `base.detector` is overwritten
  /// per operating point; leave it unset.
  CampaignConfig base;
  /// Detector operating points to sweep (e.g. the trust band widened step
  /// by step). Must be non-empty.
  std::vector<power::DetectorConfig> detectors;
  /// Trojan placements to evaluate each operating point against. Must be
  /// non-empty.
  std::vector<std::vector<NodeId>> placements;
  /// Also run a GuardedBudgeter arm per operating point (same trust band
  /// as the detector) and report the residual attack effect Q.
  bool evaluate_guard = true;
  /// Also run a clean arm per operating point (Trojans implanted but kept
  /// dormant, so traffic is honest) and report false positives.
  bool measure_false_positives = true;
  /// Closed-loop response axis: for each response kind listed, every
  /// (detector, placement) cell re-runs with that policy engaged
  /// (power/response.hpp) and reports the recovery/collateral tradeoff.
  /// Responses perturb the dynamics, so -- unlike the detection arm --
  /// every cell is a fresh simulation: O(detectors x responses x
  /// placements) systems. Empty (the default) = axis off, and the sweep's
  /// simulation count stays the trace-replay-test-locked O(placements).
  std::vector<power::ResponseKind> responses;
  /// Trigger/sanction/recovery parameters shared by every response arm
  /// (the kind comes from `responses`).
  power::ResponseConfig response_base;
};

/// One (detector, placement) evaluation.
struct DefenseCell {
  std::size_t detector_index = 0;
  std::size_t placement_index = 0;
  /// Full campaign outcome; `outcome.detection` is this cell's report.
  CampaignOutcome outcome;
  double victim_flag_rate = 0.0;    ///< flagged_low / victim cores
  double attacker_flag_rate = 0.0;  ///< flagged_high / attacker cores
};

/// One response policy's aggregate at one detector operating point
/// (means over placements).
struct ResponseCurvePoint {
  power::ResponseKind kind = power::ResponseKind::kQuarantine;
  /// Mean residual Q with the policy engaged (compare mean_q_plain).
  double mean_q = 0.0;
  double mean_sanctioned = 0.0;
  double mean_collateral = 0.0;
  double mean_victim_grant_recovery = 0.0;
  /// Mean over the cells that recovered; -1 when none did.
  double mean_epochs_to_recovery = -1.0;
  double mean_migrations = 0.0;
};

/// The reduced curve point for one detector operating point.
struct DefenseCurvePoint {
  power::DetectorConfig detector;
  /// Mean over placements of (flags / monitored cores).
  double detection_rate = 0.0;
  double victim_flag_rate = 0.0;
  double attacker_flag_rate = 0.0;
  /// Clean-traffic flags / monitored cores (0 when the arm is disabled).
  double false_positive_rate = 0.0;
  /// Mean epochs to the first confirmed flag over the cells that detected
  /// anything; -1 when no cell ever flagged.
  double mean_detection_latency = -1.0;
  /// Mean Q over placements without mitigation (detector is passive, so
  /// this equals the undefended attack effect).
  double mean_q_plain = 0.0;
  /// Mean Q with the GuardedBudgeter clamping at this operating point
  /// (0 when the guard arm is disabled).
  double mean_q_guarded = 0.0;
  std::vector<DefenseCell> cells;  ///< per placement, in placement order
  /// Per response kind, in DefenseSweepConfig::responses order (empty
  /// when the response axis is off).
  std::vector<ResponseCurvePoint> responses;
};

class DefenseSweep {
 public:
  explicit DefenseSweep(DefenseSweepConfig cfg);

  /// Runs every arm through `runner`'s pool and reduces per operating
  /// point. Deterministic: bit-identical results for any thread count.
  [[nodiscard]] std::vector<DefenseCurvePoint> run(
      const ParallelSweepRunner& runner) const;

 private:
  DefenseSweepConfig cfg_;
};

}  // namespace htpb::core
