// Deterministic fan-out of independent experiment evaluations across a
// std::thread pool. Every task is addressed by its index: results land in
// index order and any randomness comes from a per-index Rng stream derived
// from (seed, index) alone, never from the worker that happened to pick the
// task up -- so a sweep returns bit-identical results at 1 and N threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/campaign.hpp"
#include "core/placement.hpp"

namespace htpb::core {

class ParallelSweepRunner {
 public:
  /// `threads` <= 0 selects `default_threads()`.
  explicit ParallelSweepRunner(int threads = 0);

  [[nodiscard]] int threads() const noexcept { return threads_; }

  /// HTPB_THREADS if set (clamped to >= 1), else the hardware concurrency.
  [[nodiscard]] static int default_threads();

  /// Independent Rng stream for task `index` of a sweep seeded with `seed`.
  /// Depends only on the two arguments, so a task draws the same numbers no
  /// matter which worker runs it or how many workers exist.
  [[nodiscard]] static Rng stream_rng(std::uint64_t seed, std::size_t index);

  /// Evaluates `fn(index)` for every index in [0, count) across the pool
  /// and returns the results in index order. `fn` must not depend on
  /// shared mutable state; the result type must be default-constructible.
  /// If any task throws, the first exception is rethrown after the pool
  /// drains.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>>;

  /// `map` with a per-task Rng stream: evaluates `fn(index, rng)` where
  /// `rng` is `stream_rng(seed, index)`.
  template <typename Fn>
  auto map_streams(std::size_t count, std::uint64_t seed, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng&>>;

  /// Full campaign outcome for every placement, fanned across the pool.
  /// The Trojan-free baseline is run once on a master campaign and shared
  /// by every worker's clone. Detector-equipped (defense) sweeps go
  /// through the same pool: each attacked run owns a fresh detector built
  /// from `cfg.detector`, so outcomes -- detection reports included --
  /// are bit-identical at 1 and N threads.
  [[nodiscard]] std::vector<CampaignOutcome> run_placements(
      const CampaignConfig& cfg, std::span<const Placement> placements) const;

  /// Same, cloning from a caller-owned campaign instead of building one
  /// per call: `master` is primed (its baseline runs now if it has not
  /// already), so consecutive sweeps over the same campaign pay for the
  /// baseline once.
  [[nodiscard]] std::vector<CampaignOutcome> run_placements(
      AttackCampaign& master, std::span<const Placement> placements) const;

  /// Same, for raw HT node sets (e.g. random-placement trials).
  [[nodiscard]] std::vector<CampaignOutcome> run_node_sets(
      const CampaignConfig& cfg,
      std::span<const std::vector<NodeId>> node_sets) const;

  [[nodiscard]] std::vector<CampaignOutcome> run_node_sets(
      AttackCampaign& master,
      std::span<const std::vector<NodeId>> node_sets) const;

 private:
  int threads_ = 1;
};

template <typename Fn>
auto ParallelSweepRunner::map(std::size_t count, Fn&& fn) const
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  // std::vector<bool> packs results into shared bytes, so concurrent
  // per-index writes would race; return int/char instead.
  static_assert(!std::is_same_v<R, bool>,
                "ParallelSweepRunner::map cannot return bool");
  std::vector<R> results(count);
  const auto workers =
      static_cast<int>(std::min<std::size_t>(count,
                                             static_cast<std::size_t>(threads_)));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  const auto work = [&]() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
  return results;
}

template <typename Fn>
auto ParallelSweepRunner::map_streams(std::size_t count, std::uint64_t seed,
                                      Fn&& fn) const
    -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng&>> {
  return map(count, [&](std::size_t i) {
    Rng rng = stream_rng(seed, i);
    return fn(i, rng);
  });
}

}  // namespace htpb::core
