// Request-trace record/replay: the bridge between one cycle-level
// simulation and arbitrarily many detector evaluations.
//
// Detectors (power/defense.hpp) are purely observational -- they watch the
// per-epoch BudgetRequest vectors the global manager collected, and never
// perturb the dynamics. A detector's verdict is therefore a pure function
// of that request stream. Recording the stream once per placement and
// replaying it through every detector operating point decouples defense
// sweeps from the detector-grid size: O(placements) full simulations plus
// O(placements x detectors) cheap replays, instead of O(placements x
// detectors) simulations.
//
// Lifecycle and immutability contract:
//  - GlobalManager::attach_recorder() appends one TraceEpoch per epoch at
//    the exact point the in-simulation detector would observe it (window
//    close, before allocation), with the exact vector the detector would
//    see. Empty epochs are recorded too: a detector's epoch counter must
//    advance identically in replay.
//  - AttackCampaign::record_trace() / run_traced() own the recording run;
//    the returned trace is a value and is never mutated afterwards --
//    every consumer takes `const RequestTrace&`.
//  - replay_detector() feeds the trace through a fresh detector and
//    returns its cumulative report. For any DetectorConfig/DetectorFactory
//    the replayed report is bit-identical to the report an in-simulation
//    detector attached to the recording run would have produced
//    (tests/core/trace_replay_test.cpp locks this equivalence).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "power/budgeter.hpp"
#include "power/defense.hpp"

namespace htpb::power {

/// One budgeting epoch as the global manager saw it: the raw requests
/// collected before allocation, plus the epoch's timing/budget metadata.
struct TraceEpoch {
  /// Cycle the manager opened the collection window.
  Cycle epoch_start = 0;
  /// Cycle the window closed (allocate_and_reply ran).
  Cycle allocate_cycle = 0;
  /// Chip budget in force for this epoch.
  std::uint64_t budget_mw = 0;
  /// Exactly the vector fed to the in-simulation detector and budgeter --
  /// possibly tampered in flight; that is the point.
  std::vector<BudgetRequest> requests;

  friend bool operator==(const TraceEpoch&, const TraceEpoch&) = default;
};

/// A full run's request stream plus the system metadata a replay consumer
/// needs to interpret it. Written once by the recording run, read-only
/// afterwards.
struct RequestTrace {
  std::vector<TraceEpoch> epochs;
  /// Mesh size of the recording system (context for rate denominators).
  int node_count = 0;
  /// Epoch length of the recording system.
  Cycle epoch_cycles = 0;

  [[nodiscard]] std::size_t size() const noexcept { return epochs.size(); }
  [[nodiscard]] bool empty() const noexcept { return epochs.empty(); }

  /// Versioned binary persistence (the ROADMAP's "iterate on detectors
  /// without re-simulating at all"): save() writes a little-endian,
  /// magic-tagged file; load() accepts exactly that format and throws
  /// std::runtime_error on a bad magic, an unsupported version or a
  /// truncated body. load(save(x)) == x field for field, so a replayed
  /// report off a loaded trace is bit-identical to one off the recording
  /// run (tests/core/trace_replay_test.cpp locks the round trip).
  /// Surfaced on the CLI as `htpb_run --record-trace / --replay-trace`.
  void save(const std::string& path) const;
  [[nodiscard]] static RequestTrace load(const std::string& path);

  friend bool operator==(const RequestTrace&, const RequestTrace&) = default;
};

/// Replays `trace` through a fresh detector built from `cfg` (via
/// `factory` when provided, `make_detector` otherwise) and returns the
/// cumulative report -- bit-identical to the in-simulation report of the
/// recording run. Pure function of (trace, cfg, factory); no simulation.
[[nodiscard]] DetectorReport replay_detector(const RequestTrace& trace,
                                             const DetectorConfig& cfg,
                                             const DetectorFactory& factory = {});

}  // namespace htpb::power
