#include "power/request_trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <type_traits>

namespace htpb::power {

DetectorReport replay_detector(const RequestTrace& trace,
                               const DetectorConfig& cfg,
                               const DetectorFactory& factory) {
  const std::unique_ptr<RequestAnomalyDetector> detector =
      factory ? factory(cfg) : make_detector(cfg);
  for (const TraceEpoch& epoch : trace.epochs) {
    (void)detector->observe_epoch(epoch.requests);
  }
  return detector->cumulative();
}

// ------------------------------------------------------ disk persistence
//
// Layout (all integers little-endian, no padding):
//   magic     8 bytes  "HTPBTRC\n"
//   version   u32      kTraceFormatVersion
//   node_count  u32
//   epoch_cycles u64
//   epoch_count  u64
//   per epoch:
//     epoch_start u64, allocate_cycle u64, budget_mw u64, requests u64
//     per request: node u32, app u32, request_mw u32
//
// Bump kTraceFormatVersion whenever TraceEpoch/BudgetRequest grow a
// field; load() rejects every version it was not written for instead of
// misreading old bytes.

namespace {

constexpr char kTraceMagic[8] = {'H', 'T', 'P', 'B', 'T', 'R', 'C', '\n'};
constexpr std::uint32_t kTraceFormatVersion = 1;

template <typename T>
void write_le(std::ofstream& out, T value) {
  static_assert(std::is_unsigned_v<T>);
  char bytes[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  out.write(bytes, sizeof(T));
}

template <typename T>
T read_le(std::ifstream& in, const std::string& path) {
  static_assert(std::is_unsigned_v<T>);
  char bytes[sizeof(T)];
  if (!in.read(bytes, sizeof(T))) {
    throw std::runtime_error("RequestTrace::load: " + path +
                             " is truncated");
  }
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<unsigned char>(bytes[i]))
             << (8 * i);
  }
  return value;
}

}  // namespace

void RequestTrace::save(const std::string& path) const {
  errno = 0;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("RequestTrace::save: cannot write " + path +
                             ": " + std::strerror(errno));
  }
  out.write(kTraceMagic, sizeof kTraceMagic);
  write_le<std::uint32_t>(out, kTraceFormatVersion);
  write_le<std::uint32_t>(out, static_cast<std::uint32_t>(node_count));
  write_le<std::uint64_t>(out, epoch_cycles);
  write_le<std::uint64_t>(out, epochs.size());
  for (const TraceEpoch& epoch : epochs) {
    write_le<std::uint64_t>(out, epoch.epoch_start);
    write_le<std::uint64_t>(out, epoch.allocate_cycle);
    write_le<std::uint64_t>(out, epoch.budget_mw);
    write_le<std::uint64_t>(out, epoch.requests.size());
    for (const BudgetRequest& req : epoch.requests) {
      write_le<std::uint32_t>(out, req.node);
      write_le<std::uint32_t>(out, req.app);
      write_le<std::uint32_t>(out, req.request_mw);
    }
  }
  if (!out) {
    throw std::runtime_error("RequestTrace::save: write failed for " + path);
  }
}

RequestTrace RequestTrace::load(const std::string& path) {
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Name the path AND the OS reason: a typo'd trace path must read as
    // "No such file", not as a bare parse failure downstream.
    throw std::runtime_error("RequestTrace::load: cannot open " + path +
                             ": " + std::strerror(errno));
  }
  char magic[sizeof kTraceMagic];
  if (!in.read(magic, sizeof magic) ||
      std::memcmp(magic, kTraceMagic, sizeof magic) != 0) {
    throw std::runtime_error("RequestTrace::load: " + path +
                             " is not a request-trace file (bad magic)");
  }
  const auto version = read_le<std::uint32_t>(in, path);
  if (version != kTraceFormatVersion) {
    throw std::runtime_error(
        "RequestTrace::load: " + path + " has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kTraceFormatVersion));
  }
  RequestTrace trace;
  trace.node_count = static_cast<int>(read_le<std::uint32_t>(in, path));
  trace.epoch_cycles = read_le<std::uint64_t>(in, path);
  const auto epoch_count = read_le<std::uint64_t>(in, path);
  // Cap the pre-allocations: a corrupt count must fail on the truncated
  // read below, not on a multi-gigabyte reserve.
  constexpr std::uint64_t kReserveCap = 1 << 20;
  trace.epochs.reserve(std::min(epoch_count, kReserveCap));
  for (std::uint64_t e = 0; e < epoch_count; ++e) {
    TraceEpoch epoch;
    epoch.epoch_start = read_le<std::uint64_t>(in, path);
    epoch.allocate_cycle = read_le<std::uint64_t>(in, path);
    epoch.budget_mw = read_le<std::uint64_t>(in, path);
    const auto request_count = read_le<std::uint64_t>(in, path);
    epoch.requests.reserve(std::min(request_count, kReserveCap));
    for (std::uint64_t r = 0; r < request_count; ++r) {
      BudgetRequest req;
      req.node = read_le<std::uint32_t>(in, path);
      req.app = read_le<std::uint32_t>(in, path);
      req.request_mw = read_le<std::uint32_t>(in, path);
      epoch.requests.push_back(req);
    }
    trace.epochs.push_back(std::move(epoch));
  }
  // A well-formed file ends exactly at the last request.
  if (in.peek() != std::ifstream::traits_type::eof()) {
    throw std::runtime_error("RequestTrace::load: " + path +
                             " has trailing bytes after the last epoch");
  }
  return trace;
}

}  // namespace htpb::power
