#include "power/request_trace.hpp"

namespace htpb::power {

DetectorReport replay_detector(const RequestTrace& trace,
                               const DetectorConfig& cfg,
                               const DetectorFactory& factory) {
  const std::unique_ptr<RequestAnomalyDetector> detector =
      factory ? factory(cfg) : make_detector(cfg);
  for (const TraceEpoch& epoch : trace.epochs) {
    (void)detector->observe_epoch(epoch.requests);
  }
  return detector->cumulative();
}

}  // namespace htpb::power
