#include "power/defense.hpp"

#include <algorithm>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::power {

namespace {

json::Value flags_to_json(int low_streak, int high_streak, bool reported_low,
                          bool reported_high) {
  json::Array a;
  a.push_back(json::Value(static_cast<long long>(low_streak)));
  a.push_back(json::Value(static_cast<long long>(high_streak)));
  a.push_back(json::Value(reported_low));
  a.push_back(json::Value(reported_high));
  return json::Value(std::move(a));
}

/// Sorted key list of an unordered node-keyed map (deterministic dumps).
template <typename Map>
std::vector<NodeId> sorted_nodes(const Map& m) {
  std::vector<NodeId> nodes;
  nodes.reserve(m.size());
  for (const auto& [node, value] : m) nodes.push_back(node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace

json::Value detector_report_to_json(const DetectorReport& r) {
  json::Object o;
  json::Array low;
  for (const NodeId n : r.flagged_low) {
    low.push_back(json::Value(static_cast<long long>(n)));
  }
  o["flagged_low"] = json::Value(std::move(low));
  json::Array high;
  for (const NodeId n : r.flagged_high) {
    high.push_back(json::Value(static_cast<long long>(n)));
  }
  o["flagged_high"] = json::Value(std::move(high));
  o["observations"] = common::ju64(r.observations);
  o["epochs_observed"] = common::ju64(r.epochs_observed);
  o["first_flag_epoch"] =
      json::Value(static_cast<long long>(r.first_flag_epoch));
  return json::Value(std::move(o));
}

DetectorReport detector_report_from_json(const json::Value& v) {
  const json::Object& o = v.as_object();
  DetectorReport r;
  for (const json::Value& n : o.find("flagged_low")->as_array()) {
    r.flagged_low.push_back(static_cast<NodeId>(n.as_int()));
  }
  for (const json::Value& n : o.find("flagged_high")->as_array()) {
    r.flagged_high.push_back(static_cast<NodeId>(n.as_int()));
  }
  r.observations = common::pu64(*o.find("observations"));
  r.epochs_observed = common::pu64(*o.find("epochs_observed"));
  r.first_flag_epoch = static_cast<int>(o.find("first_flag_epoch")->as_int());
  return r;
}

std::size_t DetectorReport::unique_flagged() const {
  std::vector<NodeId> all;
  all.reserve(flagged_low.size() + flagged_high.size());
  all.insert(all.end(), flagged_low.begin(), flagged_low.end());
  all.insert(all.end(), flagged_high.begin(), flagged_high.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all.size();
}

void RequestAnomalyDetector::update_flags(FlagState& fs, NodeId node,
                                          bool low, bool high,
                                          DetectorReport& newly) {
  // Keeps a re-armed core (see rearm()) from landing in the cumulative
  // list twice on re-confirmation; rates divide by these list sizes.
  const auto once = [](std::vector<NodeId>& list, NodeId n) {
    if (std::find(list.begin(), list.end(), n) == list.end())
      list.push_back(n);
  };
  fs.low_streak = low ? fs.low_streak + 1 : 0;
  fs.high_streak = high ? fs.high_streak + 1 : 0;
  if (fs.low_streak >= cfg_.confirm_epochs && !fs.reported_low) {
    fs.reported_low = true;
    newly.flagged_low.push_back(node);
    once(cumulative_.flagged_low, node);
  }
  if (fs.high_streak >= cfg_.confirm_epochs && !fs.reported_high) {
    fs.reported_high = true;
    newly.flagged_high.push_back(node);
    once(cumulative_.flagged_high, node);
  }
}

void RequestAnomalyDetector::close_epoch(int epoch, DetectorReport& newly) {
  if (newly.any()) {
    newly.first_flag_epoch = epoch;
    if (cumulative_.first_flag_epoch < 0) {
      cumulative_.first_flag_epoch = epoch;
    }
  }
}

DetectorReport RequestAnomalyDetector::observe_epoch(
    std::span<const BudgetRequest> requests) {
  const int epoch = static_cast<int>(cumulative_.epochs_observed);
  ++cumulative_.epochs_observed;
  DetectorReport newly;
  newly.epochs_observed = 1;
  for (const BudgetRequest& req : requests) {
    PerCore& pc = state_[req.node];
    ++cumulative_.observations;
    ++newly.observations;
    const double value = static_cast<double>(req.request_mw);
    // Armed only after warmup_epochs positive samples (and at least one,
    // so a band reference exists); see the arming contract in the header.
    if (pc.samples_seen >= cfg_.warmup_epochs && pc.samples_seen > 0) {
      const bool low = value < cfg_.low_ratio * pc.history;
      const bool high = value > cfg_.high_ratio * pc.history;
      update_flags(pc.flags, req.node, low, high, newly);
      // Anomalous samples do not poison the trusted history.
      if (!low && !high) {
        pc.history =
            (1.0 - cfg_.history_alpha) * pc.history + cfg_.history_alpha * value;
      }
    } else if (value > 0.0) {
      pc.history = pc.samples_seen == 0
                       ? value
                       : (1.0 - cfg_.history_alpha) * pc.history +
                             cfg_.history_alpha * value;
      ++pc.samples_seen;
    }
  }
  close_epoch(epoch, newly);
  return newly;
}

void RequestAnomalyDetector::reset() {
  state_.clear();
  cumulative_ = DetectorReport{};
}

void RequestAnomalyDetector::rearm(NodeId node) {
  const auto it = state_.find(node);
  if (it != state_.end()) it->second.flags = FlagState{};
}

std::size_t RequestAnomalyDetector::unarmed_cores() const {
  std::size_t n = 0;
  // htpb-lint: allow(unordered-iter) order-insensitive count over all entries
  for (const auto& [node, pc] : state_) {
    if (pc.samples_seen < cfg_.warmup_epochs || pc.samples_seen == 0) ++n;
  }
  return n;
}

DetectorReport CohortMedianDetector::observe_epoch(
    std::span<const BudgetRequest> requests) {
  const int epoch = static_cast<int>(cumulative_.epochs_observed);
  ++cumulative_.epochs_observed;
  DetectorReport newly;
  newly.epochs_observed = 1;
  cumulative_.observations += requests.size();
  newly.observations = requests.size();

  // The reference: this epoch's median over the positive requests.
  std::vector<std::uint32_t> values;
  values.reserve(requests.size());
  for (const BudgetRequest& req : requests) {
    if (req.request_mw > 0) values.push_back(req.request_mw);
  }
  if (values.size() < kMinCohort) {
    close_epoch(epoch, newly);
    return newly;  // too thin a cohort to judge anyone by
  }
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double median = static_cast<double>(values[mid]);
  if (values.size() % 2 == 0) {
    // Lower middle: the largest element below the nth.
    const auto lower =
        *std::max_element(values.begin(), values.begin() + mid);
    median = (median + static_cast<double>(lower)) / 2.0;
  }

  for (const BudgetRequest& req : requests) {
    // Zero-valued (idle) samples are not cohort members and are never
    // judged: with no per-core history there is nothing to say an idle
    // core is anomalous. (Different from an ARMED self-history core,
    // where a collapse to zero against the core's own past is exactly
    // the attenuation signature and is flagged.)
    if (req.request_mw == 0) continue;
    const double value = static_cast<double>(req.request_mw);
    const bool low = value < cfg_.low_ratio * median;
    const bool high = value > cfg_.high_ratio * median;
    update_flags(state_[req.node], req.node, low, high, newly);
  }
  close_epoch(epoch, newly);
  return newly;
}

void CohortMedianDetector::reset() {
  state_.clear();
  cumulative_ = DetectorReport{};
}

void CohortMedianDetector::rearm(NodeId node) {
  const auto it = state_.find(node);
  if (it != state_.end()) it->second = FlagState{};
}

std::unique_ptr<RequestAnomalyDetector> make_detector(
    const DetectorConfig& cfg) {
  switch (cfg.kind) {
    case DetectorKind::kCohortMedian:
      return std::make_unique<CohortMedianDetector>(cfg);
    case DetectorKind::kSelfEwma:
      break;
  }
  return std::make_unique<RequestAnomalyDetector>(cfg);
}

std::vector<BudgetGrant> GuardedBudgeter::allocate(
    std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
    std::uint32_t floor_mw) const {
  std::vector<BudgetRequest> clamped(requests.begin(), requests.end());
  for (BudgetRequest& req : clamped) {
    double& hist = history_[req.node];
    int& seen = samples_[req.node];
    const double value = static_cast<double>(req.request_mw);
    // Same arming contract as the detector: judge (here: clamp) only
    // after warmup_epochs positive samples; zeros neither arm nor decay.
    if (seen >= cfg_.warmup_epochs && seen > 0) {
      const double lo = cfg_.low_ratio * hist;
      const double hi = cfg_.high_ratio * hist;
      const double used = std::clamp(value, lo, hi);
      req.request_mw = static_cast<std::uint32_t>(used);
      // Track the clamped (trusted) value, not the raw one.
      hist = (1.0 - cfg_.history_alpha) * hist + cfg_.history_alpha * used;
    } else if (value > 0.0) {
      hist = seen == 0 ? value
                       : (1.0 - cfg_.history_alpha) * hist +
                             cfg_.history_alpha * value;
      ++seen;
    }
  }
  return inner_->allocate(clamped, budget_mw, floor_mw);
}

void GuardedBudgeter::reset() {
  history_.clear();
  samples_.clear();
}

json::Value RequestAnomalyDetector::save_state() const {
  json::Object o;
  o["cumulative"] = detector_report_to_json(cumulative_);
  json::Array state;
  for (const NodeId node : sorted_nodes(state_)) {
    const PerCore& pc = state_.at(node);
    json::Array a;
    a.push_back(json::Value(static_cast<long long>(node)));
    a.push_back(json::Value(pc.history));
    a.push_back(json::Value(static_cast<long long>(pc.samples_seen)));
    a.push_back(flags_to_json(pc.flags.low_streak, pc.flags.high_streak,
                              pc.flags.reported_low, pc.flags.reported_high));
    state.push_back(json::Value(std::move(a)));
  }
  o["state"] = json::Value(std::move(state));
  return json::Value(std::move(o));
}

void RequestAnomalyDetector::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  cumulative_ = detector_report_from_json(*o.find("cumulative"));
  state_.clear();
  for (const json::Value& sv : o.find("state")->as_array()) {
    const json::Array& a = sv.as_array();
    PerCore pc;
    pc.history = a.at(1).as_double();
    pc.samples_seen = static_cast<int>(a.at(2).as_int());
    const json::Array& f = a.at(3).as_array();
    pc.flags.low_streak = static_cast<int>(f.at(0).as_int());
    pc.flags.high_streak = static_cast<int>(f.at(1).as_int());
    pc.flags.reported_low = f.at(2).as_bool();
    pc.flags.reported_high = f.at(3).as_bool();
    state_.emplace(static_cast<NodeId>(a.at(0).as_int()), pc);
  }
}

json::Value CohortMedianDetector::save_state() const {
  json::Object o;
  o["cumulative"] = detector_report_to_json(cumulative_);
  json::Array state;
  for (const NodeId node : sorted_nodes(state_)) {
    const FlagState& fs = state_.at(node);
    json::Array a;
    a.push_back(json::Value(static_cast<long long>(node)));
    a.push_back(flags_to_json(fs.low_streak, fs.high_streak, fs.reported_low,
                              fs.reported_high));
    state.push_back(json::Value(std::move(a)));
  }
  o["state"] = json::Value(std::move(state));
  return json::Value(std::move(o));
}

void CohortMedianDetector::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  cumulative_ = detector_report_from_json(*o.find("cumulative"));
  state_.clear();
  for (const json::Value& sv : o.find("state")->as_array()) {
    const json::Array& a = sv.as_array();
    FlagState fs;
    const json::Array& f = a.at(1).as_array();
    fs.low_streak = static_cast<int>(f.at(0).as_int());
    fs.high_streak = static_cast<int>(f.at(1).as_int());
    fs.reported_low = f.at(2).as_bool();
    fs.reported_high = f.at(3).as_bool();
    state_.emplace(static_cast<NodeId>(a.at(0).as_int()), fs);
  }
}

json::Value GuardedBudgeter::save_state() const {
  json::Object o;
  json::Array state;
  for (const NodeId node : sorted_nodes(history_)) {
    json::Array a;
    a.push_back(json::Value(static_cast<long long>(node)));
    a.push_back(json::Value(history_.at(node)));
    const auto it = samples_.find(node);
    a.push_back(json::Value(
        static_cast<long long>(it == samples_.end() ? 0 : it->second)));
    state.push_back(json::Value(std::move(a)));
  }
  o["state"] = json::Value(std::move(state));
  return json::Value(std::move(o));
}

void GuardedBudgeter::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  history_.clear();
  samples_.clear();
  for (const json::Value& sv : o.find("state")->as_array()) {
    const json::Array& a = sv.as_array();
    const auto node = static_cast<NodeId>(a.at(0).as_int());
    history_[node] = a.at(1).as_double();
    samples_[node] = static_cast<int>(a.at(2).as_int());
  }
}

}  // namespace htpb::power
