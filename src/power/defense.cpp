#include "power/defense.hpp"

#include <algorithm>

namespace htpb::power {

DetectorReport RequestAnomalyDetector::observe_epoch(
    std::span<const BudgetRequest> requests) {
  const int epoch = static_cast<int>(cumulative_.epochs_observed);
  ++cumulative_.epochs_observed;
  DetectorReport newly;
  newly.epochs_observed = 1;
  for (const BudgetRequest& req : requests) {
    PerCore& pc = state_[req.node];
    ++cumulative_.observations;
    ++newly.observations;
    const double value = static_cast<double>(req.request_mw);
    if (pc.epochs_seen >= cfg_.warmup_epochs && pc.history > 0.0) {
      const bool low = value < cfg_.low_ratio * pc.history;
      const bool high = value > cfg_.high_ratio * pc.history;
      pc.low_streak = low ? pc.low_streak + 1 : 0;
      pc.high_streak = high ? pc.high_streak + 1 : 0;
      if (pc.low_streak >= cfg_.confirm_epochs && !pc.reported_low) {
        pc.reported_low = true;
        newly.flagged_low.push_back(req.node);
        cumulative_.flagged_low.push_back(req.node);
      }
      if (pc.high_streak >= cfg_.confirm_epochs && !pc.reported_high) {
        pc.reported_high = true;
        newly.flagged_high.push_back(req.node);
        cumulative_.flagged_high.push_back(req.node);
      }
      // Anomalous samples do not poison the trusted history.
      if (!low && !high) {
        pc.history =
            (1.0 - cfg_.history_alpha) * pc.history + cfg_.history_alpha * value;
      }
    } else {
      pc.history = pc.history == 0.0
                       ? value
                       : (1.0 - cfg_.history_alpha) * pc.history +
                             cfg_.history_alpha * value;
    }
    ++pc.epochs_seen;
  }
  if (newly.any()) {
    newly.first_flag_epoch = epoch;
    if (cumulative_.first_flag_epoch < 0) {
      cumulative_.first_flag_epoch = epoch;
    }
  }
  return newly;
}

void RequestAnomalyDetector::reset() {
  state_.clear();
  cumulative_ = DetectorReport{};
}

std::unique_ptr<RequestAnomalyDetector> make_detector(
    const DetectorConfig& cfg) {
  return std::make_unique<RequestAnomalyDetector>(cfg);
}

std::vector<BudgetGrant> GuardedBudgeter::allocate(
    std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
    std::uint32_t floor_mw) const {
  std::vector<BudgetRequest> clamped(requests.begin(), requests.end());
  for (BudgetRequest& req : clamped) {
    double& hist = history_[req.node];
    int& seen = epochs_[req.node];
    const double value = static_cast<double>(req.request_mw);
    if (seen >= cfg_.warmup_epochs && hist > 0.0) {
      const double lo = cfg_.low_ratio * hist;
      const double hi = cfg_.high_ratio * hist;
      const double used = std::clamp(value, lo, hi);
      req.request_mw = static_cast<std::uint32_t>(used);
      // Track the clamped (trusted) value, not the raw one.
      hist = (1.0 - cfg_.history_alpha) * hist + cfg_.history_alpha * used;
    } else {
      hist = hist == 0.0 ? value
                         : (1.0 - cfg_.history_alpha) * hist +
                               cfg_.history_alpha * value;
    }
    ++seen;
  }
  return inner_->allocate(clamped, budget_mw, floor_mw);
}

void GuardedBudgeter::reset() {
  history_.clear();
  epochs_.clear();
}

}  // namespace htpb::power
