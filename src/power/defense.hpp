// Defender-side counterparts to the attack -- the "more research on
// detection and protection" the paper's conclusion calls for.
//
// Two mechanisms, both deployable at the global manager (the one place
// the false data converges):
//
//  1. RequestAnomalyDetector -- per-core exponentially weighted history of
//     request values. A request that collapses far below its own history
//     (victim attenuation) or explodes far above it (accomplice boost) is
//     flagged. The Trojan cannot evade this without reducing its
//     modification factor, which proportionally weakens the attack.
//
//  2. GuardedBudgeter -- a mitigation wrapper around any Budgeter: each
//     core's effective request is clamped into a trust band around its
//     history before allocation, so even unflagged tampering moves the
//     allocation by at most the band width per epoch.
//
// Ownership: both components are stateful per chip lifetime. Experiment
// code must instantiate one per simulated run (campaigns do this from
// DetectorConfig, see core/campaign.hpp) -- sharing one instance across
// runs contaminates every report after the first with the previous run's
// EWMA history and cumulative flags. `reset()` exists for callers that
// pool instances, but fresh construction per run is the intended pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "power/budgeter.hpp"

namespace htpb::power {

struct DetectorConfig {
  /// Smoothing of the per-core request history.
  double history_alpha = 0.25;
  /// Flag when request < low_ratio * history (victim attenuation).
  double low_ratio = 0.45;
  /// Flag when request > high_ratio * history (accomplice boost).
  double high_ratio = 2.2;
  /// Epochs of history required before flagging (cold-start guard).
  int warmup_epochs = 2;
  /// Consecutive anomalous epochs before a core is reported.
  int confirm_epochs = 2;

  friend bool operator==(const DetectorConfig&,
                         const DetectorConfig&) = default;
};

struct DetectorReport {
  std::vector<NodeId> flagged_low;   ///< suspected starved victims
  std::vector<NodeId> flagged_high;  ///< suspected boosted accomplices
  /// Individual request samples fed to the detector.
  std::uint64_t observations = 0;
  /// Epochs the detector has watched (observe_epoch calls).
  std::uint64_t epochs_observed = 0;
  /// Detection latency: 0-based epoch index of the first confirmed flag,
  /// or -1 when nothing was ever flagged.
  int first_flag_epoch = -1;

  [[nodiscard]] bool any() const noexcept {
    return !flagged_low.empty() || !flagged_high.empty();
  }

  friend bool operator==(const DetectorReport&,
                         const DetectorReport&) = default;
};

class RequestAnomalyDetector {
 public:
  explicit RequestAnomalyDetector(DetectorConfig cfg = {}) : cfg_(cfg) {}
  virtual ~RequestAnomalyDetector() = default;

  /// Feeds one epoch of requests (as received by the manager); returns
  /// the cores newly confirmed anomalous this epoch.
  virtual DetectorReport observe_epoch(std::span<const BudgetRequest> requests);

  /// Forgets all history, flags and epoch counters; the configuration is
  /// kept. After reset() the detector is indistinguishable from a freshly
  /// constructed one.
  virtual void reset();

  /// All cores confirmed anomalous so far.
  [[nodiscard]] const DetectorReport& cumulative() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] double history_of(NodeId node) const {
    const auto it = state_.find(node);
    return it == state_.end() ? 0.0 : it->second.history;
  }

 private:
  struct PerCore {
    double history = 0.0;
    int epochs_seen = 0;
    int low_streak = 0;
    int high_streak = 0;
    bool reported_low = false;
    bool reported_high = false;
  };

  DetectorConfig cfg_;
  std::unordered_map<NodeId, PerCore> state_;
  DetectorReport cumulative_;
};

/// Factory signature for manager-side detectors: campaigns construct one
/// fresh instance per attacked run from the campaign's DetectorConfig.
/// Future detector types (traffic-anomaly, telemetry cross-check, ...)
/// plug in by overriding observe_epoch/reset and supplying a factory.
using DetectorFactory =
    std::function<std::unique_ptr<RequestAnomalyDetector>(
        const DetectorConfig&)>;

/// The default factory: a plain RequestAnomalyDetector.
[[nodiscard]] std::unique_ptr<RequestAnomalyDetector> make_detector(
    const DetectorConfig& cfg);

/// Mitigation: clamp every request into [low_ratio, high_ratio] x its own
/// history before handing it to the wrapped policy. Tampered values still
/// shift the allocation, but only by the band width -- the attack's
/// leverage collapses from ~10x to the band ratio.
class GuardedBudgeter final : public Budgeter {
 public:
  GuardedBudgeter(std::unique_ptr<Budgeter> inner,
                  DetectorConfig cfg = {})
      : inner_(std::move(inner)), cfg_(cfg) {}

  [[nodiscard]] std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const override;

  /// Forgets the per-core trust history. Like the detector, the guard is
  /// per-chip-lifetime state: it is constructed per ManyCoreSystem (so
  /// baseline and attacked runs never share a history), and reset() backs
  /// that contract for any caller that keeps one alive across runs.
  void reset();

  [[nodiscard]] const char* name() const noexcept override {
    return "guarded";
  }

 private:
  std::unique_ptr<Budgeter> inner_;
  DetectorConfig cfg_;
  // Allocation history evolves across calls; allocate() is logically const
  // for the Budgeter interface but the guard's memory must persist.
  mutable std::unordered_map<NodeId, double> history_;
  mutable std::unordered_map<NodeId, int> epochs_;
};

}  // namespace htpb::power
