// Defender-side counterparts to the attack -- the "more research on
// detection and protection" the paper's conclusion calls for.
//
// Detection mechanisms, all deployable at the global manager (the one
// place the false data converges), all purely observational (they never
// perturb the dynamics -- which is what makes request-trace record/replay
// sound, see power/request_trace.hpp):
//
//  1. RequestAnomalyDetector (DetectorKind::kSelfEwma) -- per-core
//     exponentially weighted history of request values. A request that
//     collapses far below its own history (victim attenuation) or
//     explodes far above it (accomplice boost) is flagged. The Trojan
//     cannot evade this without reducing its modification factor, which
//     proportionally weakens the attack. Blind spot: a core whose very
//     first samples are already tampered anchors its history to the
//     attacked level and is never flagged (attack-from-epoch-0).
//
//  2. CohortMedianDetector (DetectorKind::kCohortMedian) -- cross-checks
//     each core against the same epoch's population median instead of the
//     core's own past. Needs no warmup history, so it catches
//     attack-from-epoch-0 streams that defeat the self-history EWMA; the
//     price is false positives on genuinely heterogeneous workloads.
//
//  3. GuardedBudgeter -- a mitigation wrapper around any Budgeter: each
//     core's effective request is clamped into a trust band around its
//     history before allocation, so even unflagged tampering moves the
//     allocation by at most the band width per epoch.
//
// Ownership: all components are stateful per chip lifetime. Experiment
// code must instantiate one per simulated run (campaigns do this from
// DetectorConfig, see core/campaign.hpp) -- sharing one instance across
// runs contaminates every report after the first with the previous run's
// history and cumulative flags. `reset()` exists for callers that pool
// instances, but fresh construction per run is the intended pattern.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "power/budgeter.hpp"

namespace htpb::power {

/// Detector families behind `make_detector` (the "detector zoo"; see the
/// table in docs/ARCHITECTURE.md §6). Part of DetectorConfig so sweep
/// axes can mix families and trust bands freely.
enum class DetectorKind : std::uint8_t {
  kSelfEwma,      ///< per-core EWMA self-history (RequestAnomalyDetector)
  kCohortMedian,  ///< per-epoch population median (CohortMedianDetector)
};

struct DetectorConfig {
  /// Which detector family `make_detector` builds.
  DetectorKind kind = DetectorKind::kSelfEwma;
  /// Smoothing of the per-core request history (kSelfEwma only).
  double history_alpha = 0.25;
  /// Flag when request < low_ratio * reference (victim attenuation).
  /// The reference is the core's own history (kSelfEwma) or the epoch
  /// median (kCohortMedian).
  double low_ratio = 0.45;
  /// Flag when request > high_ratio * reference (accomplice boost).
  double high_ratio = 2.2;
  /// kSelfEwma: positive samples of history required before a core is
  /// judged (cold-start guard). kCohortMedian needs no history and
  /// ignores this (that is the point of a cross-sectional reference).
  int warmup_epochs = 2;
  /// Consecutive anomalous epochs before a core is reported.
  int confirm_epochs = 2;

  friend bool operator==(const DetectorConfig&,
                         const DetectorConfig&) = default;
};

struct DetectorReport {
  std::vector<NodeId> flagged_low;   ///< suspected starved victims
  std::vector<NodeId> flagged_high;  ///< suspected boosted accomplices
  /// Individual request samples fed to the detector.
  std::uint64_t observations = 0;
  /// Epochs the detector has watched (observe_epoch calls).
  std::uint64_t epochs_observed = 0;
  /// Detection latency: 0-based epoch index of the first confirmed flag,
  /// or -1 when nothing was ever flagged.
  int first_flag_epoch = -1;

  [[nodiscard]] bool any() const noexcept {
    return !flagged_low.empty() || !flagged_high.empty();
  }

  /// |flagged_low UNION flagged_high|: the number of distinct cores
  /// flagged. Under duty-cycle swings one core can land in both lists;
  /// rate reductions must divide this, not the summed list sizes, or the
  /// "fraction of cores flagged" exceeds 1.
  [[nodiscard]] std::size_t unique_flagged() const;

  friend bool operator==(const DetectorReport&,
                         const DetectorReport&) = default;
};

/// Checkpoint helpers for DetectorReport (see common/snapshot.hpp for the
/// u64-as-string convention).
[[nodiscard]] json::Value detector_report_to_json(const DetectorReport& r);
[[nodiscard]] DetectorReport detector_report_from_json(const json::Value& v);

/// Self-history detector (DetectorKind::kSelfEwma) and the base class of
/// every manager-side detector.
///
/// Arming contract (per core): a core is judged only after
/// `warmup_epochs` *positive* samples have seeded its history (and at
/// least one, so a band reference exists). Zero-valued samples neither
/// advance warmup nor decay the history -- an idle core stays in warmup
/// rather than silently draining its trust band toward zero. In
/// particular a core that idles through the global warmup and wakes late
/// gets the same seeded warmup as everyone else instead of having its
/// first live sample -- possibly already Trojan-attenuated -- trusted
/// verbatim with no anomaly check. Once a core IS armed, every sample is
/// judged -- including zeros: a collapse to zero against the core's own
/// past is exactly the attenuation signature. (A stream attacked from
/// its very first sample still anchors the band to the attacked level;
/// no self-history scheme can tell, which is what CohortMedianDetector
/// is for.) Cores still in warmup are not silent: `unarmed_cores()`
/// counts them for the defender.
class RequestAnomalyDetector {
 public:
  explicit RequestAnomalyDetector(DetectorConfig cfg = {}) : cfg_(cfg) {}
  virtual ~RequestAnomalyDetector() = default;

  /// Feeds one epoch of requests (as received by the manager); returns
  /// the cores newly confirmed anomalous this epoch.
  virtual DetectorReport observe_epoch(std::span<const BudgetRequest> requests);

  /// Forgets all history, flags and epoch counters; the configuration is
  /// kept. After reset() the detector is indistinguishable from a freshly
  /// constructed one.
  virtual void reset();

  /// Re-arms one core's report-once flags (and streaks) so it can be
  /// confirmed anomalous again. The core's history and warmup state are
  /// kept -- the detector still knows what "normal" looks like for it.
  /// Used by the response layer (power/response.hpp) when a sanction
  /// expires; a core already flagged in the cumulative report is not
  /// double-listed on re-confirmation.
  virtual void rearm(NodeId node);

  /// Cores observed but not yet armed (still inside their per-core
  /// warmup). Always-idle cores live here forever -- visible to the
  /// defender instead of silently unmonitored. Cross-sectional detectors
  /// (cohort) arm immediately and return 0.
  [[nodiscard]] virtual std::size_t unarmed_cores() const;

  /// All cores confirmed anomalous so far.
  [[nodiscard]] const DetectorReport& cumulative() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] double history_of(NodeId node) const {
    const auto it = state_.find(node);
    return it == state_.end() ? 0.0 : it->second.history;
  }

  /// Checkpointing: per-core histories/streaks (sorted by node) and the
  /// cumulative report. The configuration is construction state and is
  /// not captured; load into a detector built from the same config.
  [[nodiscard]] virtual json::Value save_state() const;
  virtual void load_state(const json::Value& v);

 protected:
  /// Shared bookkeeping for subclasses: streak/report-once flag logic
  /// writing into `cumulative_` and the per-epoch `newly` report.
  struct FlagState {
    int low_streak = 0;
    int high_streak = 0;
    bool reported_low = false;
    bool reported_high = false;
  };
  void update_flags(FlagState& fs, NodeId node, bool low, bool high,
                    DetectorReport& newly);
  /// Stamps first_flag_epoch on `newly` and the cumulative report.
  void close_epoch(int epoch, DetectorReport& newly);

  DetectorConfig cfg_;  // snapshot-exempt: construction config, immutable
  DetectorReport cumulative_;

 private:
  struct PerCore {
    double history = 0.0;
    /// Positive samples absorbed so far; the arming gate compares this
    /// against warmup_epochs (see the class comment).
    int samples_seen = 0;
    FlagState flags;
  };

  std::unordered_map<NodeId, PerCore> state_;
};

/// Cross-sectional detector (DetectorKind::kCohortMedian): flags a core
/// whose request sits outside [low_ratio, high_ratio] x the epoch median
/// of all positive requests for `confirm_epochs` consecutive epochs.
/// Because the reference is this epoch's population -- not the core's
/// past -- it needs no warmup and catches streams tampered from the very
/// first sample (attack-from-epoch-0), where the self-history EWMA is
/// blind by construction. Limitations: a minority view (epochs with fewer
/// than kMinCohort positive samples are skipped), and honest workload
/// heterogeneity wider than the band reads as anomalous -- the
/// false-positive arm of the ROC sweep prices that in.
class CohortMedianDetector final : public RequestAnomalyDetector {
 public:
  explicit CohortMedianDetector(DetectorConfig cfg)
      : RequestAnomalyDetector(cfg) {}

  /// Below this many positive samples a median is too thin to judge by;
  /// the epoch is observed (counters advance) but nobody is flagged.
  static constexpr std::size_t kMinCohort = 4;

  DetectorReport observe_epoch(
      std::span<const BudgetRequest> requests) override;
  void reset() override;
  void rearm(NodeId node) override;
  /// Cohort judgment needs no per-core warmup.
  [[nodiscard]] std::size_t unarmed_cores() const override { return 0; }

  [[nodiscard]] json::Value save_state() const override;
  void load_state(const json::Value& v) override;

 private:
  std::unordered_map<NodeId, FlagState> state_;
};

/// Factory signature for manager-side detectors: campaigns construct one
/// fresh instance per attacked run from the campaign's DetectorConfig,
/// and trace replays (power/request_trace.hpp) one per replay. Exotic
/// detector types plug in by overriding observe_epoch/reset and
/// supplying a factory; the stock zoo is reachable without a factory via
/// DetectorConfig::kind.
using DetectorFactory =
    std::function<std::unique_ptr<RequestAnomalyDetector>(
        const DetectorConfig&)>;

/// The default factory: dispatches on cfg.kind over the stock detectors.
[[nodiscard]] std::unique_ptr<RequestAnomalyDetector> make_detector(
    const DetectorConfig& cfg);

/// Mitigation: clamp every request into [low_ratio, high_ratio] x its own
/// history before handing it to the wrapped policy. Tampered values still
/// shift the allocation, but only by the band width -- the attack's
/// leverage collapses from ~10x to the band ratio. Arming follows the
/// same positive-samples contract as RequestAnomalyDetector: zero-valued
/// requests neither advance a core's warmup nor decay its trust history.
class GuardedBudgeter final : public Budgeter {
 public:
  GuardedBudgeter(std::unique_ptr<Budgeter> inner,
                  DetectorConfig cfg = {})
      : inner_(std::move(inner)), cfg_(cfg) {}

  [[nodiscard]] std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const override;

  /// Forgets the per-core trust history. Like the detector, the guard is
  /// per-chip-lifetime state: it is constructed per ManyCoreSystem (so
  /// baseline and attacked runs never share a history), and reset() backs
  /// that contract for any caller that keeps one alive across runs.
  void reset();

  [[nodiscard]] const char* name() const noexcept override {
    return "guarded";
  }

  /// Checkpointing: the per-core trust band (sorted by node). The guard's
  /// history drives allocation, so it is part of the system snapshot.
  [[nodiscard]] json::Value save_state() const override;
  void load_state(const json::Value& v) override;

 private:
  // snapshot-exempt: wrapped policy is stateless config, re-created by construction
  std::unique_ptr<Budgeter> inner_;
  DetectorConfig cfg_;  // snapshot-exempt: construction config, immutable
  // Allocation history evolves across calls; allocate() is logically const
  // for the Budgeter interface but the guard's memory must persist.
  mutable std::unordered_map<NodeId, double> history_;
  mutable std::unordered_map<NodeId, int> samples_;
};

}  // namespace htpb::power
