#include "power/budgeter.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace htpb::power {

namespace {

/// Gives everyone min(floor, request) first and returns the remaining
/// budget; grants is sized and zeroed. Shared preamble of all policies.
std::uint64_t apply_floor(std::span<const BudgetRequest> requests,
                          std::uint64_t budget_mw, std::uint32_t floor_mw,
                          std::vector<BudgetGrant>& grants) {
  grants.resize(requests.size());
  std::uint64_t used = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    grants[i].node = requests[i].node;
    const std::uint32_t base = std::min(floor_mw, requests[i].request_mw);
    grants[i].grant_mw = base;
    used += base;
  }
  if (used > budget_mw) {
    // Budget cannot even cover the floors: scale floors down evenly.
    const double scale = static_cast<double>(budget_mw) / static_cast<double>(used);
    std::uint64_t total = 0;
    for (auto& g : grants) {
      g.grant_mw = static_cast<std::uint32_t>(g.grant_mw * scale);
      total += g.grant_mw;
    }
    return budget_mw - total;
  }
  return budget_mw - used;
}

[[nodiscard]] std::uint32_t headroom(const BudgetRequest& req,
                                     const BudgetGrant& grant) noexcept {
  return req.request_mw > grant.grant_mw ? req.request_mw - grant.grant_mw : 0;
}

}  // namespace

std::vector<BudgetGrant> UniformBudgeter::allocate(
    std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
    std::uint32_t floor_mw) const {
  std::vector<BudgetGrant> grants;
  std::uint64_t remaining = apply_floor(requests, budget_mw, floor_mw, grants);
  // Repeated equal division among still-unsatisfied cores; a few rounds
  // converge because each round either exhausts the budget or satisfies
  // at least one core.
  while (remaining > 0) {
    std::size_t unsatisfied = 0;
    for (std::size_t i = 0; i < grants.size(); ++i) {
      if (headroom(requests[i], grants[i]) > 0) ++unsatisfied;
    }
    if (unsatisfied == 0) break;
    const std::uint64_t share = remaining / unsatisfied;
    if (share == 0) break;
    std::uint64_t given = 0;
    for (std::size_t i = 0; i < grants.size(); ++i) {
      const std::uint32_t room = headroom(requests[i], grants[i]);
      if (room == 0) continue;
      const auto add = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(share, room));
      grants[i].grant_mw += add;
      given += add;
    }
    if (given == 0) break;
    remaining -= given;
  }
  return grants;
}

std::vector<BudgetGrant> GreedyBudgeter::allocate(
    std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
    std::uint32_t floor_mw) const {
  std::vector<BudgetGrant> grants;
  std::uint64_t remaining = apply_floor(requests, budget_mw, floor_mw, grants);
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].request_mw < requests[b].request_mw;
  });
  for (const std::size_t i : order) {
    const std::uint32_t room = headroom(requests[i], grants[i]);
    const auto add = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(room, remaining));
    grants[i].grant_mw += add;
    remaining -= add;
    if (remaining == 0) break;
  }
  return grants;
}

std::vector<BudgetGrant> ProportionalBudgeter::allocate(
    std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
    std::uint32_t floor_mw) const {
  std::vector<BudgetGrant> grants;
  const std::uint64_t remaining =
      apply_floor(requests, budget_mw, floor_mw, grants);
  std::uint64_t total_headroom = 0;
  for (std::size_t i = 0; i < grants.size(); ++i) {
    total_headroom += headroom(requests[i], grants[i]);
  }
  if (total_headroom == 0 || remaining == 0) return grants;
  const double scale = std::min(
      1.0, static_cast<double>(remaining) / static_cast<double>(total_headroom));
  for (std::size_t i = 0; i < grants.size(); ++i) {
    const std::uint32_t room = headroom(requests[i], grants[i]);
    grants[i].grant_mw += static_cast<std::uint32_t>(room * scale);
  }
  return grants;
}

std::vector<BudgetGrant> DpBudgeter::allocate(
    std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
    std::uint32_t floor_mw) const {
  std::vector<BudgetGrant> grants;
  std::uint64_t remaining = apply_floor(requests, budget_mw, floor_mw, grants);
  if (requests.empty() || remaining == 0) return grants;

  // Utility u_i(g) = sqrt(g / request): concave, so repeatedly granting the
  // quantum with the best marginal utility is an optimal solution of the
  // discretized problem (equivalent to the DP of [9] but O(B log n)).
  const auto marginal = [&](std::size_t i) {
    const double req = std::max<std::uint32_t>(requests[i].request_mw, 1);
    const double g = grants[i].grant_mw;
    const double next = std::min<double>(g + quantum_mw_, requests[i].request_mw);
    return (std::sqrt(next / req) - std::sqrt(g / req));
  };

  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (headroom(requests[i], grants[i]) > 0) heap.emplace(marginal(i), i);
  }
  while (remaining >= 1 && !heap.empty()) {
    const auto [gain, i] = heap.top();
    heap.pop();
    const std::uint32_t room = headroom(requests[i], grants[i]);
    if (room == 0) continue;
    const auto add = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        std::min<std::uint64_t>(quantum_mw_, room), remaining));
    grants[i].grant_mw += add;
    remaining -= add;
    if (headroom(requests[i], grants[i]) > 0) heap.emplace(marginal(i), i);
  }
  return grants;
}

std::vector<BudgetGrant> MarketBudgeter::allocate(
    std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
    std::uint32_t floor_mw) const {
  std::vector<BudgetGrant> grants;
  std::uint64_t remaining = apply_floor(requests, budget_mw, floor_mw, grants);
  if (requests.empty() || remaining == 0) return grants;

  // Equal endowment of the remaining pool; cores that need less sell their
  // surplus back, and the pool is re-auctioned proportionally to unmet
  // demand until it is exhausted (or everyone is satisfied).
  const std::uint64_t endowment = remaining / requests.size();
  std::uint64_t pool = remaining % requests.size();
  std::uint64_t unmet_total = 0;
  for (std::size_t i = 0; i < grants.size(); ++i) {
    const std::uint32_t room = headroom(requests[i], grants[i]);
    const auto take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(endowment, room));
    grants[i].grant_mw += take;
    pool += endowment - take;
    unmet_total += headroom(requests[i], grants[i]);
  }
  if (unmet_total == 0 || pool == 0) return grants;
  const double scale = std::min(
      1.0, static_cast<double>(pool) / static_cast<double>(unmet_total));
  for (std::size_t i = 0; i < grants.size(); ++i) {
    const std::uint32_t room = headroom(requests[i], grants[i]);
    grants[i].grant_mw += static_cast<std::uint32_t>(room * scale);
  }
  return grants;
}

std::unique_ptr<Budgeter> make_budgeter(BudgeterKind kind) {
  switch (kind) {
    case BudgeterKind::kUniform: return std::make_unique<UniformBudgeter>();
    case BudgeterKind::kGreedy: return std::make_unique<GreedyBudgeter>();
    case BudgeterKind::kProportional:
      return std::make_unique<ProportionalBudgeter>();
    case BudgeterKind::kDynamicProgramming:
      return std::make_unique<DpBudgeter>();
    case BudgeterKind::kMarket: return std::make_unique<MarketBudgeter>();
  }
  throw std::invalid_argument("make_budgeter: unknown kind");
}

const char* to_string(BudgeterKind kind) noexcept {
  switch (kind) {
    case BudgeterKind::kUniform: return "uniform";
    case BudgeterKind::kGreedy: return "greedy";
    case BudgeterKind::kProportional: return "proportional";
    case BudgeterKind::kDynamicProgramming: return "dp";
    case BudgeterKind::kMarket: return "market";
  }
  return "?";
}

}  // namespace htpb::power
