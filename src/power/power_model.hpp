// Core power model: P(level) = P_leak(V) + C_eff * V^2 * f.
//
// All budgeting traffic quantizes power to integer milliwatts, because the
// paper's POWER_REQ payload is a 32-bit field (Fig. 1a).
#pragma once

#include <cstdint>

#include "cpu/frequency.hpp"

namespace htpb::power {

class CorePowerModel {
 public:
  CorePowerModel() = default;
  CorePowerModel(double leak_w_per_volt, double ceff_nf)
      : leak_w_per_volt_(leak_w_per_volt), ceff_nf_(ceff_nf) {}

  /// Power in watts at a voltage/frequency operating point.
  [[nodiscard]] double watts(const cpu::FreqLevel& lvl) const noexcept {
    const double dynamic = ceff_nf_ * lvl.volts * lvl.volts * lvl.ghz;
    const double leakage = leak_w_per_volt_ * lvl.volts;
    return dynamic + leakage;
  }

  [[nodiscard]] std::uint32_t milliwatts(const cpu::FreqLevel& lvl) const noexcept {
    return static_cast<std::uint32_t>(watts(lvl) * 1000.0 + 0.5);
  }

  /// Power at DVFS level `i` of `table`.
  [[nodiscard]] std::uint32_t milliwatts_at(const cpu::FrequencyTable& table,
                                            int i) const {
    return milliwatts(table.level(i));
  }

  /// Highest level whose power fits within `budget_mw`; returns
  /// `table.min_level()` if even the lowest level does not fit (a core is
  /// never powered off by the budgeting scheme).
  [[nodiscard]] int max_level_within(const cpu::FrequencyTable& table,
                                     std::uint32_t budget_mw) const {
    int best = table.min_level();
    for (int i = table.min_level(); i <= table.max_level(); ++i) {
      if (milliwatts_at(table, i) <= budget_mw) best = i;
    }
    return best;
  }

 private:
  // Defaults give roughly 0.9 W at (1.0 GHz, 0.70 V) and 3.2 W at
  // (2.75 GHz, 0.98 V) -- a plausible many-core tile power range.
  double leak_w_per_volt_ = 0.55;
  double ceff_nf_ = 1.05;
};

}  // namespace htpb::power
