// Power-budgeting algorithms run by the global manager.
//
// The paper stresses the attack works "irrespective of the power budgeting
// algorithms [8], [9]" the manager runs. We therefore implement five
// allocators spanning the design space the paper cites: uniform, greedy
// heuristic [8], proportional sharing, dynamic programming [9] and
// market-based redistribution [6]. All of them decide purely from the
// requested values -- which is exactly the vulnerability the Trojan
// exploits.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace htpb::power {

/// One core's POWER_REQ as it reached the manager. The manager cannot
/// distinguish an honest request from one rewritten in flight by an
/// in-router Trojan -- that asymmetry is the paper's attack surface.
struct BudgetRequest {
  NodeId node = kInvalidNode;
  AppId app = kInvalidApp;
  /// Requested power in milliwatts (the POWER_REQ payload as received --
  /// possibly tampered).
  std::uint32_t request_mw = 0;

  // Request traces (power/request_trace.hpp) compare recorded epochs.
  friend bool operator==(const BudgetRequest&, const BudgetRequest&) = default;
};

/// The manager's answer, sent back as a POWER_GRANT: the power cap the
/// core must run under until the next epoch.
struct BudgetGrant {
  NodeId node = kInvalidNode;
  std::uint32_t grant_mw = 0;
};

/// Selector for `make_budgeter`; one value per allocator family cited in
/// the header comment above.
enum class BudgeterKind {
  kUniform,
  kGreedy,
  kProportional,
  kDynamicProgramming,
  kMarket,
};

/// Interface of a power-budgeting algorithm. Implementations are
/// stateless and epoch-free: the global manager calls `allocate` once per
/// epoch with the requests it collected, applies the grants, and forgets.
class Budgeter {
 public:
  virtual ~Budgeter() = default;

  /// Splits `budget_mw` among the requests. Implementations guarantee:
  ///  - sum(grants) <= budget_mw,
  ///  - grant_i <= request_i (a core never receives more than it asked),
  ///  - every requester receives at least min(floor_mw, request_i), where
  ///    floor_mw is the chip's per-core minimum operating power, provided
  ///    the budget suffices for all floors.
  [[nodiscard]] virtual std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const = 0;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Checkpointing: the stock allocators are stateless and return null /
  /// ignore loads; stateful wrappers (GuardedBudgeter) override both.
  [[nodiscard]] virtual json::Value save_state() const { return json::Value(); }
  virtual void load_state(const json::Value& /*v*/) {}
};

/// Equal shares, capped at the request; leftovers redistributed.
class UniformBudgeter final : public Budgeter {
 public:
  [[nodiscard]] std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const override;
  [[nodiscard]] const char* name() const noexcept override { return "uniform"; }
};

/// Greedy heuristic in the spirit of SmartCap [8]: satisfy the smallest
/// outstanding demands first (maximizes the number of fully satisfied
/// cores under a cap).
class GreedyBudgeter final : public Budgeter {
 public:
  [[nodiscard]] std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const override;
  [[nodiscard]] const char* name() const noexcept override { return "greedy"; }
};

/// Grants proportional to the requested amount above the floor.
class ProportionalBudgeter final : public Budgeter {
 public:
  [[nodiscard]] std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const override;
  [[nodiscard]] const char* name() const noexcept override {
    return "proportional";
  }
};

/// Fine-grained DP allocation [9]: discretizes the budget and maximizes a
/// concave utility sum(sqrt(grant_i / request_i)) so extra power has
/// diminishing returns, via incremental (greedy-on-concave == optimal)
/// marginal allocation.
class DpBudgeter final : public Budgeter {
 public:
  explicit DpBudgeter(std::uint32_t quantum_mw = 50)
      : quantum_mw_(quantum_mw) {}
  [[nodiscard]] std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const override;
  [[nodiscard]] const char* name() const noexcept override { return "dp"; }

 private:
  std::uint32_t quantum_mw_;
};

/// Market/elasticity style [6]: everyone starts from an equal endowment;
/// cores demanding less than their endowment sell the surplus, which is
/// redistributed proportionally to unmet demand.
class MarketBudgeter final : public Budgeter {
 public:
  [[nodiscard]] std::vector<BudgetGrant> allocate(
      std::span<const BudgetRequest> requests, std::uint64_t budget_mw,
      std::uint32_t floor_mw) const override;
  [[nodiscard]] const char* name() const noexcept override { return "market"; }
};

/// Factory over every allocator above (the ablation bench sweeps it).
[[nodiscard]] std::unique_ptr<Budgeter> make_budgeter(BudgeterKind kind);
/// Stable short name for reports and bench tables (matches `name()`).
[[nodiscard]] const char* to_string(BudgeterKind kind) noexcept;

}  // namespace htpb::power
