#include "power/response.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace htpb::power {

const char* to_string(ResponseKind kind) {
  switch (kind) {
    case ResponseKind::kQuarantine: return "quarantine";
    case ResponseKind::kThrottle: return "throttle";
    case ResponseKind::kMigrate: return "migrate";
  }
  return "?";
}

ResponseKind response_kind_from_string(std::string_view s) {
  for (const auto kind : {ResponseKind::kQuarantine, ResponseKind::kThrottle,
                          ResponseKind::kMigrate}) {
    if (s == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown response kind \"" + std::string(s) +
                              "\" (quarantine, throttle, migrate)");
}

const char* to_string(ResponseTrigger trigger) {
  switch (trigger) {
    case ResponseTrigger::kHigh: return "high";
    case ResponseTrigger::kLow: return "low";
    case ResponseTrigger::kBoth: return "both";
  }
  return "?";
}

ResponseTrigger response_trigger_from_string(std::string_view s) {
  for (const auto trigger : {ResponseTrigger::kHigh, ResponseTrigger::kLow,
                             ResponseTrigger::kBoth}) {
    if (s == to_string(trigger)) return trigger;
  }
  throw std::invalid_argument("unknown response trigger \"" + std::string(s) +
                              "\" (high, low, both)");
}

void ResponseEngine::begin_epoch(const DetectorReport& newly) {
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second <= 0) {
      if (detector_ != nullptr) detector_->rearm(it->first);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  if (cfg_.trigger != ResponseTrigger::kLow) {
    for (const NodeId node : newly.flagged_high) sanction(node);
  }
  if (cfg_.trigger != ResponseTrigger::kHigh) {
    for (const NodeId node : newly.flagged_low) sanction(node);
  }
}

void ResponseEngine::sanction(NodeId node) {
  if (std::find(stats_.sanctioned_cores.begin(), stats_.sanctioned_cores.end(),
                node) == stats_.sanctioned_cores.end()) {
    stats_.sanctioned_cores.push_back(node);
  }
  if (stats_.first_sanction_epoch < 0) stats_.first_sanction_epoch = epoch_;
  active_[node] = cfg_.sanction_epochs;
}

void ResponseEngine::end_epoch() {
  for (auto& [node, remaining] : active_) {
    --remaining;
    ++stats_.sanction_core_epochs;
  }
  ++epoch_;
}

}  // namespace htpb::power
