#include "power/response.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::power {

const char* to_string(ResponseKind kind) {
  switch (kind) {
    case ResponseKind::kQuarantine: return "quarantine";
    case ResponseKind::kThrottle: return "throttle";
    case ResponseKind::kMigrate: return "migrate";
  }
  return "?";
}

ResponseKind response_kind_from_string(std::string_view s) {
  for (const auto kind : {ResponseKind::kQuarantine, ResponseKind::kThrottle,
                          ResponseKind::kMigrate}) {
    if (s == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown response kind \"" + std::string(s) +
                              "\" (quarantine, throttle, migrate)");
}

const char* to_string(ResponseTrigger trigger) {
  switch (trigger) {
    case ResponseTrigger::kHigh: return "high";
    case ResponseTrigger::kLow: return "low";
    case ResponseTrigger::kBoth: return "both";
  }
  return "?";
}

ResponseTrigger response_trigger_from_string(std::string_view s) {
  for (const auto trigger : {ResponseTrigger::kHigh, ResponseTrigger::kLow,
                             ResponseTrigger::kBoth}) {
    if (s == to_string(trigger)) return trigger;
  }
  throw std::invalid_argument("unknown response trigger \"" + std::string(s) +
                              "\" (high, low, both)");
}

void ResponseEngine::begin_epoch(const DetectorReport& newly) {
  for (auto it = active_.begin(); it != active_.end();) {
    if (it->second <= 0) {
      if (detector_ != nullptr) detector_->rearm(it->first);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  if (cfg_.trigger != ResponseTrigger::kLow) {
    for (const NodeId node : newly.flagged_high) sanction(node);
  }
  if (cfg_.trigger != ResponseTrigger::kHigh) {
    for (const NodeId node : newly.flagged_low) sanction(node);
  }
}

void ResponseEngine::sanction(NodeId node) {
  if (std::find(stats_.sanctioned_cores.begin(), stats_.sanctioned_cores.end(),
                node) == stats_.sanctioned_cores.end()) {
    stats_.sanctioned_cores.push_back(node);
  }
  if (stats_.first_sanction_epoch < 0) stats_.first_sanction_epoch = epoch_;
  active_[node] = cfg_.sanction_epochs;
}

void ResponseEngine::end_epoch() {
  for (auto& [node, remaining] : active_) {
    --remaining;
    ++stats_.sanction_core_epochs;
  }
  ++epoch_;
}

json::Value ResponseEngine::save_state() const {
  json::Object o;
  json::Array active;
  for (const auto& [node, remaining] : active_) {
    json::Array a;
    a.push_back(json::Value(static_cast<long long>(node)));
    a.push_back(json::Value(static_cast<long long>(remaining)));
    active.push_back(json::Value(std::move(a)));
  }
  o["active"] = json::Value(std::move(active));
  json::Array cores;
  for (const NodeId n : stats_.sanctioned_cores) {
    cores.push_back(json::Value(static_cast<long long>(n)));
  }
  o["sanctioned_cores"] = json::Value(std::move(cores));
  o["sanction_core_epochs"] = common::ju64(stats_.sanction_core_epochs);
  o["denied_requests"] = common::ju64(stats_.denied_requests);
  o["clamped_requests"] = common::ju64(stats_.clamped_requests);
  o["first_sanction_epoch"] =
      json::Value(static_cast<long long>(stats_.first_sanction_epoch));
  o["epoch"] = json::Value(static_cast<long long>(epoch_));
  return json::Value(std::move(o));
}

void ResponseEngine::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  active_.clear();
  for (const json::Value& av : o.find("active")->as_array()) {
    const json::Array& a = av.as_array();
    active_[static_cast<NodeId>(a.at(0).as_int())] =
        static_cast<int>(a.at(1).as_int());
  }
  stats_ = ResponseStats{};
  for (const json::Value& n : o.find("sanctioned_cores")->as_array()) {
    stats_.sanctioned_cores.push_back(static_cast<NodeId>(n.as_int()));
  }
  stats_.sanction_core_epochs = common::pu64(*o.find("sanction_core_epochs"));
  stats_.denied_requests = common::pu64(*o.find("denied_requests"));
  stats_.clamped_requests = common::pu64(*o.find("clamped_requests"));
  stats_.first_sanction_epoch =
      static_cast<int>(o.find("first_sanction_epoch")->as_int());
  epoch_ = static_cast<int>(o.find("epoch")->as_int());
}

}  // namespace htpb::power
