// The global manager: the designated core that solicits power requests,
// runs the budgeting algorithm over whatever request values arrive (it has
// no way of knowing they were tampered with in flight -- the paper's core
// vulnerability), and replies with POWER_GRANT packets.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/snapshot.hpp"
#include "common/types.hpp"
#include "noc/network.hpp"
#include "power/budgeter.hpp"
#include "power/defense.hpp"
#include "power/request_trace.hpp"
#include "power/response.hpp"

namespace htpb::power {

/// Per-epoch accounting kept by the manager (also the measurement point
/// for the paper's infection rate).
struct EpochRecord {
  Cycle epoch_start = 0;
  /// Cycle the collection window closed (allocate_and_reply ran).
  Cycle allocate_cycle = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t tampered_received = 0;
  /// Requests from victim (non-attacker) applications -- the population
  /// over which the paper's infection rate is defined. Boosted attacker
  /// requests are modifications the attacker *wants*, not infections.
  std::uint64_t victim_requests = 0;
  std::uint64_t budget_mw = 0;
  std::uint64_t granted_mw = 0;
  /// Power granted to victim (non-attacker) applications this epoch --
  /// the quantity a response policy tries to restore (zero when no
  /// attacker lookup is attached).
  std::uint64_t victim_granted_mw = 0;

  [[nodiscard]] double infection_rate() const noexcept {
    return victim_requests == 0
               ? 0.0
               : static_cast<double>(tampered_received) /
                     static_cast<double>(victim_requests);
  }

  friend bool operator==(const EpochRecord&, const EpochRecord&) = default;
};

/// Checkpoint helpers for EpochRecord (u64s as decimal strings; see
/// common/snapshot.hpp).
inline json::Value epoch_record_to_json(const EpochRecord& r) {
  json::Array a;
  a.push_back(common::ju64(r.epoch_start));
  a.push_back(common::ju64(r.allocate_cycle));
  a.push_back(common::ju64(r.requests_received));
  a.push_back(common::ju64(r.tampered_received));
  a.push_back(common::ju64(r.victim_requests));
  a.push_back(common::ju64(r.budget_mw));
  a.push_back(common::ju64(r.granted_mw));
  a.push_back(common::ju64(r.victim_granted_mw));
  return json::Value(std::move(a));
}

inline EpochRecord epoch_record_from_json(const json::Value& v) {
  const json::Array& a = v.as_array();
  EpochRecord r;
  r.epoch_start = common::pu64(a.at(0));
  r.allocate_cycle = common::pu64(a.at(1));
  r.requests_received = common::pu64(a.at(2));
  r.tampered_received = common::pu64(a.at(3));
  r.victim_requests = common::pu64(a.at(4));
  r.budget_mw = common::pu64(a.at(5));
  r.granted_mw = common::pu64(a.at(6));
  r.victim_granted_mw = common::pu64(a.at(7));
  return r;
}

class GlobalManager {
 public:
  GlobalManager(NodeId node, noc::MeshNetwork* net,
                std::unique_ptr<Budgeter> budgeter, std::uint64_t budget_mw,
                std::uint32_t floor_mw)
      : node_(node), net_(net), budgeter_(std::move(budgeter)),
        budget_mw_(budget_mw), floor_mw_(floor_mw) {}

  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::uint64_t budget_mw() const noexcept { return budget_mw_; }
  void set_budget_mw(std::uint64_t b) noexcept { budget_mw_ = b; }

  /// Opens a new collection window.
  void begin_epoch(Cycle now) {
    pending_.clear();
    victim_nodes_.clear();
    current_ = EpochRecord{};
    current_.epoch_start = now;
    current_.budget_mw = budget_mw_;
    collecting_ = true;
  }

  /// Measurement-only hook: tells the epoch accounting which applications
  /// are the attacker's (a real manager cannot know this -- that is the
  /// point of the attack; the flag only feeds the infection metric).
  void set_attacker_lookup(std::function<bool(AppId)> is_attacker) {
    is_attacker_ = std::move(is_attacker);
  }

  /// Handles an arriving POWER_REQ packet. Requests arriving outside the
  /// collection window are dropped (stragglers from the previous epoch).
  void on_power_request(const noc::Packet& pkt) {
    if (!collecting_ || pkt.type != noc::PacketType::kPowerRequest) return;
    pending_.push_back(BudgetRequest{pkt.src, pkt.src_app, pkt.payload});
    ++current_.requests_received;
    const bool attacker = is_attacker_ && is_attacker_(pkt.src_app);
    if (!attacker) {
      ++current_.victim_requests;
      if (is_attacker_) victim_nodes_.insert(pkt.src);
    }
    if (pkt.tampered) ++current_.tampered_received;
  }

  /// Optional intrusion detector fed with every epoch's raw requests
  /// before allocation (see power/defense.hpp). Not owned: the campaign
  /// that built this system owns one detector per run and keeps it alive
  /// for the manager's lifetime (never shared across runs).
  void attach_detector(RequestAnomalyDetector* detector) noexcept {
    detector_ = detector;
  }

  /// Optional request-trace recorder: appends one TraceEpoch per epoch
  /// with exactly the request vector an attached detector would observe
  /// (empty epochs included), so an offline replay is bit-identical to
  /// in-simulation detection. Not owned; like the detector, the caller
  /// keeps the trace alive for the manager's lifetime. Recording is
  /// purely observational -- it never perturbs collection or allocation.
  void attach_recorder(RequestTrace* trace) noexcept { recorder_ = trace; }

  /// Optional closed-loop response engine (power/response.hpp), fed the
  /// per-epoch newly-confirmed detector verdicts and allowed to filter
  /// the allocation (quarantine/throttle). Not owned; requires an
  /// attached detector to ever sanction anything. The detector and the
  /// recorder always observe the RAW request vector first -- responses
  /// never perturb what gets detected or recorded this epoch.
  void attach_response(ResponseEngine* response) noexcept {
    response_ = response;
  }

  /// Closes the window, runs the allocator and sends one POWER_GRANT per
  /// requester. `now` is the closing cycle, kept as epoch metadata (and
  /// in the trace, when recording). Returns the closed epoch's record.
  EpochRecord allocate_and_reply(Cycle now) {
    collecting_ = false;
    current_.allocate_cycle = now;
    if (recorder_ != nullptr) {
      recorder_->epochs.push_back(
          TraceEpoch{current_.epoch_start, now, budget_mw_, pending_});
    }
    DetectorReport newly;
    if (detector_ != nullptr) newly = detector_->observe_epoch(pending_);
    std::vector<BudgetRequest> requests = pending_;
    if (response_ != nullptr) {
      response_->begin_epoch(newly);
      if (response_->any_sanctioned()) {
        switch (response_->kind()) {
          case ResponseKind::kQuarantine: {
            std::vector<BudgetRequest> kept;
            kept.reserve(requests.size());
            for (const BudgetRequest& r : requests) {
              if (response_->sanctioned(r.node)) {
                response_->count_denied();
                // Explicit 0 mW grant: the core stalls instead of
                // coasting on its previous epoch's grant.
                auto pkt = net_->make_packet(
                    node_, r.node, noc::PacketType::kPowerGrant, 0);
                net_->send(std::move(pkt));
              } else {
                kept.push_back(r);
              }
            }
            requests = std::move(kept);
            break;
          }
          case ResponseKind::kThrottle:
            for (BudgetRequest& r : requests) {
              if (response_->sanctioned(r.node) && r.request_mw > floor_mw_) {
                r.request_mw = floor_mw_;
                response_->count_clamped();
              }
            }
            break;
          case ResponseKind::kMigrate:
            // Verdicts recorded; re-placement happens a layer up.
            break;
        }
      }
    }
    const auto grants = budgeter_->allocate(requests, budget_mw_, floor_mw_);
    const bool throttling =
        response_ != nullptr && response_->kind() == ResponseKind::kThrottle;
    for (const BudgetGrant& g : grants) {
      std::uint32_t grant_mw = g.grant_mw;
      if (throttling && response_->sanctioned(g.node) &&
          grant_mw > floor_mw_) {
        grant_mw = floor_mw_;
      }
      current_.granted_mw += grant_mw;
      if (victim_nodes_.find(g.node) != victim_nodes_.end()) {
        current_.victim_granted_mw += grant_mw;
      }
      auto pkt = net_->make_packet(node_, g.node,
                                   noc::PacketType::kPowerGrant, grant_mw);
      net_->send(std::move(pkt));
    }
    if (response_ != nullptr) response_->end_epoch();
    history_.push_back(current_);
    return current_;
  }

  [[nodiscard]] const std::vector<EpochRecord>& history() const noexcept {
    return history_;
  }
  [[nodiscard]] const Budgeter& budgeter() const noexcept { return *budgeter_; }

  /// Checkpointing: the collection window (pending requests in arrival
  /// order, victim set, current record), epoch history, budget and the
  /// budgeter's own state (GuardedBudgeter trust bands). The attached
  /// detector/recorder/response pointers are wiring and are not captured;
  /// their state is owned and checkpointed by the campaign layer.
  [[nodiscard]] json::Value save_state() const {
    json::Object o;
    o["budget_mw"] = common::ju64(budget_mw_);
    o["collecting"] = json::Value(collecting_);
    json::Array pending;
    for (const BudgetRequest& r : pending_) {
      json::Array a;
      a.push_back(json::Value(static_cast<long long>(r.node)));
      a.push_back(json::Value(static_cast<long long>(r.app)));
      a.push_back(json::Value(static_cast<long long>(r.request_mw)));
      pending.push_back(json::Value(std::move(a)));
    }
    o["pending"] = json::Value(std::move(pending));
    std::vector<NodeId> victims(victim_nodes_.begin(), victim_nodes_.end());
    std::sort(victims.begin(), victims.end());
    json::Array victim_nodes;
    for (const NodeId n : victims) {
      victim_nodes.push_back(json::Value(static_cast<long long>(n)));
    }
    o["victim_nodes"] = json::Value(std::move(victim_nodes));
    o["current"] = epoch_record_to_json(current_);
    json::Array history;
    for (const EpochRecord& r : history_) {
      history.push_back(epoch_record_to_json(r));
    }
    o["history"] = json::Value(std::move(history));
    o["budgeter"] = budgeter_->save_state();
    return json::Value(std::move(o));
  }

  void load_state(const json::Value& v) {
    const json::Object& o = v.as_object();
    budget_mw_ = common::pu64(*o.find("budget_mw"));
    collecting_ = o.find("collecting")->as_bool();
    pending_.clear();
    for (const json::Value& rv : o.find("pending")->as_array()) {
      const json::Array& a = rv.as_array();
      pending_.push_back(BudgetRequest{
          static_cast<NodeId>(a.at(0).as_int()),
          static_cast<AppId>(a.at(1).as_int()),
          static_cast<std::uint32_t>(a.at(2).as_int())});
    }
    victim_nodes_.clear();
    for (const json::Value& n : o.find("victim_nodes")->as_array()) {
      victim_nodes_.insert(static_cast<NodeId>(n.as_int()));
    }
    current_ = epoch_record_from_json(*o.find("current"));
    history_.clear();
    for (const json::Value& rv : o.find("history")->as_array()) {
      history_.push_back(epoch_record_from_json(rv));
    }
    budgeter_->load_state(*o.find("budgeter"));
  }

  /// Mean infection rate over the recorded epochs, skipping `warmup`.
  [[nodiscard]] double mean_infection_rate(std::size_t warmup = 0) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = warmup; i < history_.size(); ++i) {
      sum += history_[i].infection_rate();
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

 private:
  NodeId node_;           // snapshot-exempt: construction wiring (manager tile)
  noc::MeshNetwork* net_;  // snapshot-exempt: non-owning wiring, re-attached by construction
  std::unique_ptr<Budgeter> budgeter_;
  std::uint64_t budget_mw_;
  std::uint32_t floor_mw_;  // snapshot-exempt: construction config, immutable
  std::function<bool(AppId)> is_attacker_;  // snapshot-exempt: callback wiring, re-installed by construction
  RequestAnomalyDetector* detector_ = nullptr;  // snapshot-exempt: non-owning; the detector snapshots itself
  RequestTrace* recorder_ = nullptr;   // snapshot-exempt: non-owning attached recorder
  ResponseEngine* response_ = nullptr;  // snapshot-exempt: non-owning; the response engine snapshots itself
  bool collecting_ = false;
  std::vector<BudgetRequest> pending_;
  /// Requesters of victim applications this epoch (victim_granted_mw
  /// attribution; only populated when an attacker lookup is attached).
  std::unordered_set<NodeId> victim_nodes_;
  EpochRecord current_;
  std::vector<EpochRecord> history_;
};

}  // namespace htpb::power
