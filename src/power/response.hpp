// Closed-loop response policies: what the global manager DOES once a
// detector (power/defense.hpp) confirms a core anomalous.
//
// Detection alone never changes a single grant; the paper's defense story
// ends there. The ResponseEngine closes the loop at the one point all
// false data converges -- the manager's allocation step -- with three
// policies:
//
//  - kQuarantine: a sanctioned core's request is dropped from the
//    allocation entirely and it receives an explicit 0 mW grant (full
//    stall) for `sanction_epochs` epochs. Maximum Q recovery, maximum
//    collateral when the flag was false.
//  - kThrottle: a sanctioned core's request is clamped to the chip's
//    per-core floor before allocation (freeing the budget the boosted
//    request would have captured) and its grant is clamped to the floor
//    after allocation. The core keeps running at the idle floor.
//  - kMigrate: the engine only records verdicts; the campaign layer
//    (core/campaign.hpp) re-places the victim workload at the next epoch
//    boundary. Allocation is never filtered.
//
// Sanctions act on per-epoch *newly confirmed* detector verdicts, always
// at epoch boundaries (inside GlobalManager::allocate_and_reply), and
// expire after `sanction_epochs` epochs. On expiry the detector is
// re-armed for the released core (RequestAnomalyDetector::rearm), so a
// core that resumes anomalous behaviour is re-confirmed and re-sanctioned
// -- the loop keeps looping.
//
// Ordering contract: the detector and any trace recorder observe the RAW
// request vector before the engine filters anything. Responses perturb
// the dynamics (grants change -> future requests change), so unlike
// detection they are NOT replayable from a recorded trace; every response
// arm of a sweep re-simulates.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "power/defense.hpp"

namespace htpb::power {

/// Response policy families; see the header comment for semantics.
enum class ResponseKind : std::uint8_t {
  kQuarantine,  ///< deny sanctioned cores' requests (0 mW grant)
  kThrottle,    ///< clamp sanctioned cores' requests & grants to the floor
  kMigrate,     ///< record verdicts; the campaign re-places the victims
};

[[nodiscard]] const char* to_string(ResponseKind kind);
[[nodiscard]] ResponseKind response_kind_from_string(std::string_view s);

/// Which detector verdict list triggers a sanction. Boosted accomplices
/// land in flagged_high; starved victims land in flagged_low. Sanctioning
/// flagged_low cores punishes the attack's *victims* -- deliberate
/// collateral a defender may still accept to starve the attack of its
/// redistributed budget.
enum class ResponseTrigger : std::uint8_t {
  kHigh,  ///< sanction flagged_high only (default)
  kLow,   ///< sanction flagged_low only
  kBoth,  ///< sanction every confirmed core
};

[[nodiscard]] const char* to_string(ResponseTrigger trigger);
[[nodiscard]] ResponseTrigger response_trigger_from_string(std::string_view s);

struct ResponseConfig {
  ResponseKind kind = ResponseKind::kQuarantine;
  ResponseTrigger trigger = ResponseTrigger::kHigh;
  /// Epochs a sanction stays in force before it expires and the detector
  /// is re-armed for the core.
  int sanction_epochs = 3;
  /// Campaign-layer recovery criterion: the victims' mean granted power,
  /// as a fraction of the un-attacked baseline, at which the attack
  /// counts as neutralised (ResponseOutcome::epochs_to_recovery).
  double recovery_threshold = 0.9;

  friend bool operator==(const ResponseConfig&,
                         const ResponseConfig&) = default;
};

/// Raw per-run counters the engine accumulates; the campaign layer
/// reduces them (plus app attribution) into a ResponseOutcome.
struct ResponseStats {
  /// Distinct sanctioned cores, in first-sanction order.
  std::vector<NodeId> sanctioned_cores;
  /// Sum over epochs of |active sanctions| (core-epochs of sanction).
  std::uint64_t sanction_core_epochs = 0;
  /// Requests dropped from allocation (kQuarantine).
  std::uint64_t denied_requests = 0;
  /// Requests or grants clamped to the floor (kThrottle).
  std::uint64_t clamped_requests = 0;
  /// 0-based epoch (since the engine started watching) of the first
  /// sanction, or -1 when nothing was ever sanctioned.
  int first_sanction_epoch = -1;

  friend bool operator==(const ResponseStats&, const ResponseStats&) = default;
};

/// Per-run sanction bookkeeping, driven by GlobalManager once per epoch.
/// Same ownership contract as the detector: one engine per simulated run,
/// attached non-owning, never shared across runs.
class ResponseEngine {
 public:
  explicit ResponseEngine(ResponseConfig cfg) : cfg_(cfg) {}

  /// The detector to re-arm when a sanction expires (not owned; may be
  /// null, in which case released cores stay report-once).
  void attach_detector(RequestAnomalyDetector* detector) noexcept {
    detector_ = detector;
  }

  /// Epoch-boundary step 1 (before allocation): release expired
  /// sanctions (re-arming the detector for each released core), then
  /// ingest this epoch's newly confirmed verdicts per the trigger.
  void begin_epoch(const DetectorReport& newly);

  /// Epoch-boundary step 2 (after allocation): age every active sanction
  /// by one epoch and advance the epoch counter.
  void end_epoch();

  [[nodiscard]] bool sanctioned(NodeId node) const {
    return active_.find(node) != active_.end();
  }
  [[nodiscard]] bool any_sanctioned() const noexcept {
    return !active_.empty();
  }
  [[nodiscard]] ResponseKind kind() const noexcept { return cfg_.kind; }
  [[nodiscard]] const ResponseConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const ResponseStats& stats() const noexcept { return stats_; }

  /// Counter hooks for the manager's filtering path.
  void count_denied() noexcept { ++stats_.denied_requests; }
  void count_clamped() noexcept { ++stats_.clamped_requests; }

  /// Checkpointing: active sanctions, stats and the epoch counter. The
  /// configuration and the detector pointer are construction wiring.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v);

 private:
  void sanction(NodeId node);

  ResponseConfig cfg_;  // snapshot-exempt: construction config, immutable
  RequestAnomalyDetector* detector_ = nullptr;  // snapshot-exempt: non-owning wiring, re-attached by construction
  /// node -> remaining sanction epochs. std::map: iteration order must be
  /// deterministic (release/re-arm order feeds detector state).
  std::map<NodeId, int> active_;
  ResponseStats stats_;
  int epoch_ = 0;
};

}  // namespace htpb::power
