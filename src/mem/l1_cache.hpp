// Private per-core L1 cache with MSHRs. Misses and upgrades travel over
// the NoC to the line's home L2 bank; observed round trips feed the
// core's IPC model.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.hpp"
#include "cpu/core_model.hpp"
#include "mem/cache.hpp"
#include "mem/coherence.hpp"
#include "noc/network.hpp"

namespace htpb::mem {

struct L1Config {
  /// Table I: 16 KB two-way with 32 B lines => 256 sets.
  std::size_t sets = 256;
  int ways = 2;
  int mshrs = 8;
};

struct L1Stats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t mshr_coalesced = 0;
  std::uint64_t mshr_full_drops = 0;
  std::uint64_t replies = 0;
};

class L1Cache {
 public:
  L1Cache(NodeId node, const L1Config& cfg, noc::MeshNetwork* net,
          cpu::CoreModel* core)
      : node_(node), cfg_(cfg), net_(net), core_(core),
        cache_(cfg.sets, cfg.ways) {}

  /// Core-side access (called from the core's address stream).
  void access(std::uint64_t line_addr, bool write);

  /// Network-side input: kMemReply and kCohInvalidate.
  void on_packet(const noc::Packet& pkt);

  [[nodiscard]] const L1Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] MesiState state_of(std::uint64_t line_addr) const {
    const auto* line = cache_.peek(line_addr);
    return line ? line->data.state : MesiState::kInvalid;
  }
  [[nodiscard]] std::size_t outstanding_misses() const noexcept {
    return mshrs_.size();
  }

  /// Checkpointing: cache lines (slot order), LRU clock, MSHRs (sorted by
  /// address) and stats. The network/core wiring is not captured.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v);

 private:
  struct LineData {
    MesiState state = MesiState::kInvalid;
    std::uint32_t gen = 0;  // directory generation of this copy
  };

  struct Mshr {
    bool write = false;
    Cycle issued = 0;
    /// Highest generation of any invalidation that arrived while the fill
    /// was in flight; if it covers the reply's generation the freshly
    /// installed line is dropped immediately (the invalidation logically
    /// follows the grant but overtook it on the unordered NoC).
    bool inval_pending = false;
    std::uint32_t inval_gen = 0;
  };

  void send_request(std::uint64_t line_addr, bool write);
  void handle_reply(const noc::Packet& pkt);
  void handle_invalidate(const noc::Packet& pkt);

  NodeId node_;   // snapshot-exempt: construction wiring (tile identity)
  L1Config cfg_;  // snapshot-exempt: construction config, immutable
  noc::MeshNetwork* net_;   // snapshot-exempt: non-owning wiring, re-attached by construction
  cpu::CoreModel* core_;    // snapshot-exempt: non-owning wiring, re-attached by construction
  SetAssocCache<LineData> cache_;
  std::unordered_map<std::uint64_t, Mshr> mshrs_;
  L1Stats stats_;
};

}  // namespace htpb::mem
