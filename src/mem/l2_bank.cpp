#include "mem/l2_bank.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::mem {

namespace {
void add_sharer(std::vector<NodeId>& sharers, NodeId n) {
  if (std::find(sharers.begin(), sharers.end(), n) == sharers.end()) {
    sharers.push_back(n);
  }
}
void remove_sharer(std::vector<NodeId>& sharers, NodeId n) {
  sharers.erase(std::remove(sharers.begin(), sharers.end(), n), sharers.end());
}
}  // namespace

void L2Bank::on_packet(const noc::Packet& pkt) {
  switch (pkt.type) {
    case noc::PacketType::kMemReadReq:
      ++stats_.gets;
      handle_request(pkt.tag, Request{pkt.src, false, pkt.src_app});
      break;
    case noc::PacketType::kMemWriteReq:
      ++stats_.getm;
      handle_request(pkt.tag, Request{pkt.src, true, pkt.src_app});
      break;
    case noc::PacketType::kWriteback: {
      const auto it = busy_.find(pkt.tag);
      if (it != busy_.end() && it->second.acks_needed > 0) {
        on_ack(pkt.tag);  // recall answered with data
      } else {
        handle_eviction_writeback(pkt);
      }
      break;
    }
    case noc::PacketType::kCohAck:
      on_ack(pkt.tag);
      break;
    default:
      break;
  }
}

void L2Bank::handle_request(std::uint64_t addr, const Request& req) {
  const auto it = busy_.find(addr);
  if (it != busy_.end()) {
    it->second.waiting.push_back(req);
    return;
  }
  start_request(addr, req);
}

void L2Bank::start_request(std::uint64_t addr, const Request& req) {
  auto* line = cache_.find(addr);
  if (line == nullptr) {
    // L2 miss: fetch from main memory (fixed-latency event; DESIGN.md
    // documents this substitution for dedicated memory-controller nodes).
    ++stats_.memory_fetches;
    Txn txn;
    txn.current = req;
    txn.fetching = true;
    busy_.emplace(addr, std::move(txn));
    engine_->schedule_desc_in(
        cfg_.mem_latency,
        sim::EventDesc{sim::EventKind::kMemFetchDone,
                       static_cast<std::int32_t>(node_), addr, 0});
    return;
  }
  ++stats_.hits;
  serve_from_directory(addr, *line, req);
}

void L2Bank::serve_from_directory(std::uint64_t addr,
                                  SetAssocCache<DirEntry>::Line& line,
                                  const Request& req) {
  DirEntry& dir = line.data;
  if (dir.state == DirState::kModified && dir.owner != req.requester &&
      dir.owner != kInvalidNode) {
    // Dirty at another core: recall the line first.
    ++stats_.recalls;
    Txn txn;
    txn.current = req;
    txn.acks_needed = 1;
    busy_.emplace(addr, std::move(txn));
    send_invalidate(dir.owner, addr, dir.gen);
    dir.owner = kInvalidNode;
    dir.state = DirState::kShared;
    dir.sharers.clear();
    return;
  }
  if (!req.write) {
    add_sharer(dir.sharers, req.requester);
    if (dir.state == DirState::kModified && dir.owner == req.requester) {
      // Owner re-reading its own dirty line.
      send_reply(req, addr, /*exclusive=*/true, dir.gen);
      return;
    }
    dir.state = DirState::kShared;
    send_reply(req, addr, /*exclusive=*/false, dir.gen);
    return;
  }
  // GetM: invalidate all other sharers, then grant ownership.
  std::vector<NodeId> to_invalidate;
  for (const NodeId s : dir.sharers) {
    if (s != req.requester) to_invalidate.push_back(s);
  }
  if (to_invalidate.empty()) {
    dir.state = DirState::kModified;
    dir.owner = req.requester;
    dir.sharers.clear();
    dir.sharers.push_back(req.requester);
    ++dir.gen;  // new write epoch
    send_reply(req, addr, /*exclusive=*/true, dir.gen);
    return;
  }
  Txn txn;
  txn.current = req;
  txn.acks_needed = static_cast<int>(to_invalidate.size());
  busy_.emplace(addr, std::move(txn));
  for (const NodeId s : to_invalidate) send_invalidate(s, addr, dir.gen);
  dir.sharers.clear();
}

void L2Bank::on_fetch_done(std::uint64_t addr) {
  const auto it = busy_.find(addr);
  assert(it != busy_.end() && it->second.fetching);
  it->second.fetching = false;

  // Install the line; victims with live L1 copies get fire-and-forget
  // invalidations (their acks, if any, find no transaction and are
  // dropped -- a documented simplification).
  SetAssocCache<DirEntry>::Line evicted;
  bool did_evict = false;
  auto& line = cache_.allocate(addr, &evicted, &did_evict,
                               [this](const SetAssocCache<DirEntry>::Line& l) {
                                 return !busy_.contains(l.addr);
                               });
  if (did_evict) {
    ++stats_.eviction_writebacks;
    for (const NodeId s : evicted.data.sharers) {
      ++stats_.invalidations_sent;
      send_invalidate(s, evicted.addr, evicted.data.gen);
    }
  }
  line.data = DirEntry{};
  serve_busy_line_current(addr, line);
}

void L2Bank::on_ack(std::uint64_t addr) {
  const auto it = busy_.find(addr);
  if (it == busy_.end()) return;  // stale ack from a fire-and-forget inv
  Txn& txn = it->second;
  if (txn.acks_needed == 0) return;
  if (--txn.acks_needed > 0) return;
  auto* line = cache_.find(addr);
  if (line == nullptr) {
    // The line was evicted while the transaction was in flight (possible
    // only via the fire-and-forget path); restart through memory.
    const Request req = txn.current;
    auto waiting = std::move(txn.waiting);
    busy_.erase(it);
    start_request(addr, req);
    auto again = busy_.find(addr);
    if (again != busy_.end()) {
      for (auto& w : waiting) again->second.waiting.push_back(w);
    } else {
      for (auto& w : waiting) handle_request(addr, w);
    }
    return;
  }
  serve_busy_line_current(addr, *line);
}

void L2Bank::handle_eviction_writeback(const noc::Packet& pkt) {
  auto* line = cache_.find(pkt.tag);
  if (line == nullptr) return;  // line already evicted from L2
  DirEntry& dir = line->data;
  if (dir.state == DirState::kModified && dir.owner == pkt.src) {
    dir.state = DirState::kShared;
    dir.owner = kInvalidNode;
  }
  remove_sharer(dir.sharers, pkt.src);
}

void L2Bank::serve_busy_line_current(std::uint64_t addr,
                                     SetAssocCache<DirEntry>::Line& line) {
  const auto it = busy_.find(addr);
  assert(it != busy_.end());
  const Request req = it->second.current;
  auto waiting = std::move(it->second.waiting);
  busy_.erase(it);
  serve_from_directory(addr, line, req);
  // serve_from_directory may have opened a follow-up transaction (e.g. a
  // GetM that still needs invalidation acks); park the waiters behind it,
  // otherwise replay them in arrival order.
  const auto again = busy_.find(addr);
  if (again != busy_.end()) {
    for (auto& w : waiting) again->second.waiting.push_back(w);
  } else {
    for (auto& w : waiting) handle_request(addr, w);
  }
}

void L2Bank::send_reply(const Request& req, std::uint64_t addr,
                        bool exclusive, std::uint32_t gen) {
  ++stats_.replies_sent;
  auto pkt = net_->make_packet(node_, req.requester,
                               noc::PacketType::kMemReply,
                               reply_payload(exclusive, gen));
  pkt->tag = addr;
  pkt->src_app = req.app;
  net_->send(std::move(pkt));
}

void L2Bank::send_invalidate(NodeId target, std::uint64_t addr,
                             std::uint32_t gen) {
  auto pkt = net_->make_packet(node_, target, noc::PacketType::kCohInvalidate,
                               gen);
  pkt->tag = addr;
  net_->send(std::move(pkt));
}

json::Value L2Bank::request_to_json(const Request& r) {
  json::Array a;
  a.push_back(json::Value(static_cast<long long>(r.requester)));
  a.push_back(json::Value(r.write));
  a.push_back(json::Value(static_cast<long long>(r.app)));
  return json::Value(std::move(a));
}

L2Bank::Request L2Bank::request_from_json(const json::Value& v) {
  const json::Array& a = v.as_array();
  Request r;
  r.requester = static_cast<NodeId>(a.at(0).as_int());
  r.write = a.at(1).as_bool();
  r.app = static_cast<AppId>(a.at(2).as_int());
  return r;
}

json::Value L2Bank::save_state() const {
  json::Object o;
  json::Array lines;
  for (std::size_t i = 0; i < cache_.capacity_lines(); ++i) {
    const auto& line = cache_.line_at(i);
    if (!line.valid) continue;
    json::Object lo;
    lo["slot"] = common::ju64(i);
    lo["addr"] = common::ju64(line.addr);
    lo["lru"] = common::ju64(line.lru);
    lo["state"] = json::Value(static_cast<long long>(
        static_cast<std::uint8_t>(line.data.state)));
    lo["owner"] = json::Value(static_cast<long long>(line.data.owner));
    json::Array sharers;
    for (const NodeId s : line.data.sharers) {
      sharers.push_back(json::Value(static_cast<long long>(s)));
    }
    lo["sharers"] = json::Value(std::move(sharers));
    lo["gen"] = json::Value(static_cast<long long>(line.data.gen));
    lines.push_back(json::Value(std::move(lo)));
  }
  o["lines"] = json::Value(std::move(lines));
  o["clock"] = common::ju64(cache_.lru_clock());
  std::vector<std::uint64_t> addrs;
  addrs.reserve(busy_.size());
  // htpb-lint: allow(unordered-iter) keys are collected then sorted before use
  for (const auto& [addr, txn] : busy_) addrs.push_back(addr);
  std::sort(addrs.begin(), addrs.end());
  json::Array busy;
  for (const std::uint64_t addr : addrs) {
    const Txn& txn = busy_.at(addr);
    json::Object to;
    to["addr"] = common::ju64(addr);
    to["current"] = request_to_json(txn.current);
    to["acks_needed"] = json::Value(static_cast<long long>(txn.acks_needed));
    to["fetching"] = json::Value(txn.fetching);
    json::Array waiting;
    for (const Request& w : txn.waiting) waiting.push_back(request_to_json(w));
    to["waiting"] = json::Value(std::move(waiting));
    busy.push_back(json::Value(std::move(to)));
  }
  o["busy"] = json::Value(std::move(busy));
  json::Object stats;
  stats["gets"] = common::ju64(stats_.gets);
  stats["getm"] = common::ju64(stats_.getm);
  stats["hits"] = common::ju64(stats_.hits);
  stats["memory_fetches"] = common::ju64(stats_.memory_fetches);
  stats["recalls"] = common::ju64(stats_.recalls);
  stats["invalidations_sent"] = common::ju64(stats_.invalidations_sent);
  stats["eviction_writebacks"] = common::ju64(stats_.eviction_writebacks);
  stats["replies_sent"] = common::ju64(stats_.replies_sent);
  o["stats"] = json::Value(std::move(stats));
  return json::Value(std::move(o));
}

void L2Bank::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  for (std::size_t i = 0; i < cache_.capacity_lines(); ++i) {
    cache_.line_at(i) = SetAssocCache<DirEntry>::Line{};
  }
  for (const json::Value& lv : o.find("lines")->as_array()) {
    const json::Object& lo = lv.as_object();
    auto& line = cache_.line_at(
        static_cast<std::size_t>(common::pu64(*lo.find("slot"))));
    line.addr = common::pu64(*lo.find("addr"));
    line.valid = true;
    line.lru = common::pu64(*lo.find("lru"));
    line.data.state = static_cast<DirState>(lo.find("state")->as_int());
    line.data.owner = static_cast<NodeId>(lo.find("owner")->as_int());
    line.data.sharers.clear();
    for (const json::Value& sv : lo.find("sharers")->as_array()) {
      line.data.sharers.push_back(static_cast<NodeId>(sv.as_int()));
    }
    line.data.gen = static_cast<std::uint32_t>(lo.find("gen")->as_int());
  }
  cache_.set_lru_clock(common::pu64(*o.find("clock")));
  busy_.clear();
  for (const json::Value& tv : o.find("busy")->as_array()) {
    const json::Object& to = tv.as_object();
    Txn txn;
    txn.current = request_from_json(*to.find("current"));
    txn.acks_needed = static_cast<int>(to.find("acks_needed")->as_int());
    txn.fetching = to.find("fetching")->as_bool();
    for (const json::Value& wv : to.find("waiting")->as_array()) {
      txn.waiting.push_back(request_from_json(wv));
    }
    busy_.emplace(common::pu64(*to.find("addr")), std::move(txn));
  }
  const json::Object& stats = o.find("stats")->as_object();
  stats_.gets = common::pu64(*stats.find("gets"));
  stats_.getm = common::pu64(*stats.find("getm"));
  stats_.hits = common::pu64(*stats.find("hits"));
  stats_.memory_fetches = common::pu64(*stats.find("memory_fetches"));
  stats_.recalls = common::pu64(*stats.find("recalls"));
  stats_.invalidations_sent = common::pu64(*stats.find("invalidations_sent"));
  stats_.eviction_writebacks = common::pu64(*stats.find("eviction_writebacks"));
  stats_.replies_sent = common::pu64(*stats.find("replies_sent"));
}

}  // namespace htpb::mem
