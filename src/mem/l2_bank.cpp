#include "mem/l2_bank.hpp"

#include <algorithm>
#include <cassert>

namespace htpb::mem {

namespace {
void add_sharer(std::vector<NodeId>& sharers, NodeId n) {
  if (std::find(sharers.begin(), sharers.end(), n) == sharers.end()) {
    sharers.push_back(n);
  }
}
void remove_sharer(std::vector<NodeId>& sharers, NodeId n) {
  sharers.erase(std::remove(sharers.begin(), sharers.end(), n), sharers.end());
}
}  // namespace

void L2Bank::on_packet(const noc::Packet& pkt) {
  switch (pkt.type) {
    case noc::PacketType::kMemReadReq:
      ++stats_.gets;
      handle_request(pkt.tag, Request{pkt.src, false, pkt.src_app});
      break;
    case noc::PacketType::kMemWriteReq:
      ++stats_.getm;
      handle_request(pkt.tag, Request{pkt.src, true, pkt.src_app});
      break;
    case noc::PacketType::kWriteback: {
      const auto it = busy_.find(pkt.tag);
      if (it != busy_.end() && it->second.acks_needed > 0) {
        on_ack(pkt.tag);  // recall answered with data
      } else {
        handle_eviction_writeback(pkt);
      }
      break;
    }
    case noc::PacketType::kCohAck:
      on_ack(pkt.tag);
      break;
    default:
      break;
  }
}

void L2Bank::handle_request(std::uint64_t addr, const Request& req) {
  const auto it = busy_.find(addr);
  if (it != busy_.end()) {
    it->second.waiting.push_back(req);
    return;
  }
  start_request(addr, req);
}

void L2Bank::start_request(std::uint64_t addr, const Request& req) {
  auto* line = cache_.find(addr);
  if (line == nullptr) {
    // L2 miss: fetch from main memory (fixed-latency event; DESIGN.md
    // documents this substitution for dedicated memory-controller nodes).
    ++stats_.memory_fetches;
    Txn txn;
    txn.current = req;
    txn.fetching = true;
    busy_.emplace(addr, std::move(txn));
    engine_->schedule_in(cfg_.mem_latency, [this, addr] { on_fetch_done(addr); });
    return;
  }
  ++stats_.hits;
  serve_from_directory(addr, *line, req);
}

void L2Bank::serve_from_directory(std::uint64_t addr,
                                  SetAssocCache<DirEntry>::Line& line,
                                  const Request& req) {
  DirEntry& dir = line.data;
  if (dir.state == DirState::kModified && dir.owner != req.requester &&
      dir.owner != kInvalidNode) {
    // Dirty at another core: recall the line first.
    ++stats_.recalls;
    Txn txn;
    txn.current = req;
    txn.acks_needed = 1;
    busy_.emplace(addr, std::move(txn));
    send_invalidate(dir.owner, addr, dir.gen);
    dir.owner = kInvalidNode;
    dir.state = DirState::kShared;
    dir.sharers.clear();
    return;
  }
  if (!req.write) {
    add_sharer(dir.sharers, req.requester);
    if (dir.state == DirState::kModified && dir.owner == req.requester) {
      // Owner re-reading its own dirty line.
      send_reply(req, addr, /*exclusive=*/true, dir.gen);
      return;
    }
    dir.state = DirState::kShared;
    send_reply(req, addr, /*exclusive=*/false, dir.gen);
    return;
  }
  // GetM: invalidate all other sharers, then grant ownership.
  std::vector<NodeId> to_invalidate;
  for (const NodeId s : dir.sharers) {
    if (s != req.requester) to_invalidate.push_back(s);
  }
  if (to_invalidate.empty()) {
    dir.state = DirState::kModified;
    dir.owner = req.requester;
    dir.sharers.clear();
    dir.sharers.push_back(req.requester);
    ++dir.gen;  // new write epoch
    send_reply(req, addr, /*exclusive=*/true, dir.gen);
    return;
  }
  Txn txn;
  txn.current = req;
  txn.acks_needed = static_cast<int>(to_invalidate.size());
  busy_.emplace(addr, std::move(txn));
  for (const NodeId s : to_invalidate) send_invalidate(s, addr, dir.gen);
  dir.sharers.clear();
}

void L2Bank::on_fetch_done(std::uint64_t addr) {
  const auto it = busy_.find(addr);
  assert(it != busy_.end() && it->second.fetching);
  it->second.fetching = false;

  // Install the line; victims with live L1 copies get fire-and-forget
  // invalidations (their acks, if any, find no transaction and are
  // dropped -- a documented simplification).
  SetAssocCache<DirEntry>::Line evicted;
  bool did_evict = false;
  auto& line = cache_.allocate(addr, &evicted, &did_evict,
                               [this](const SetAssocCache<DirEntry>::Line& l) {
                                 return !busy_.contains(l.addr);
                               });
  if (did_evict) {
    ++stats_.eviction_writebacks;
    for (const NodeId s : evicted.data.sharers) {
      ++stats_.invalidations_sent;
      send_invalidate(s, evicted.addr, evicted.data.gen);
    }
  }
  line.data = DirEntry{};
  serve_busy_line_current(addr, line);
}

void L2Bank::on_ack(std::uint64_t addr) {
  const auto it = busy_.find(addr);
  if (it == busy_.end()) return;  // stale ack from a fire-and-forget inv
  Txn& txn = it->second;
  if (txn.acks_needed == 0) return;
  if (--txn.acks_needed > 0) return;
  auto* line = cache_.find(addr);
  if (line == nullptr) {
    // The line was evicted while the transaction was in flight (possible
    // only via the fire-and-forget path); restart through memory.
    const Request req = txn.current;
    auto waiting = std::move(txn.waiting);
    busy_.erase(it);
    start_request(addr, req);
    auto again = busy_.find(addr);
    if (again != busy_.end()) {
      for (auto& w : waiting) again->second.waiting.push_back(w);
    } else {
      for (auto& w : waiting) handle_request(addr, w);
    }
    return;
  }
  serve_busy_line_current(addr, *line);
}

void L2Bank::handle_eviction_writeback(const noc::Packet& pkt) {
  auto* line = cache_.find(pkt.tag);
  if (line == nullptr) return;  // line already evicted from L2
  DirEntry& dir = line->data;
  if (dir.state == DirState::kModified && dir.owner == pkt.src) {
    dir.state = DirState::kShared;
    dir.owner = kInvalidNode;
  }
  remove_sharer(dir.sharers, pkt.src);
}

void L2Bank::serve_busy_line_current(std::uint64_t addr,
                                     SetAssocCache<DirEntry>::Line& line) {
  const auto it = busy_.find(addr);
  assert(it != busy_.end());
  const Request req = it->second.current;
  auto waiting = std::move(it->second.waiting);
  busy_.erase(it);
  serve_from_directory(addr, line, req);
  // serve_from_directory may have opened a follow-up transaction (e.g. a
  // GetM that still needs invalidation acks); park the waiters behind it,
  // otherwise replay them in arrival order.
  const auto again = busy_.find(addr);
  if (again != busy_.end()) {
    for (auto& w : waiting) again->second.waiting.push_back(w);
  } else {
    for (auto& w : waiting) handle_request(addr, w);
  }
}

void L2Bank::send_reply(const Request& req, std::uint64_t addr,
                        bool exclusive, std::uint32_t gen) {
  ++stats_.replies_sent;
  auto pkt = net_->make_packet(node_, req.requester,
                               noc::PacketType::kMemReply,
                               reply_payload(exclusive, gen));
  pkt->tag = addr;
  pkt->src_app = req.app;
  net_->send(std::move(pkt));
}

void L2Bank::send_invalidate(NodeId target, std::uint64_t addr,
                             std::uint32_t gen) {
  auto pkt = net_->make_packet(node_, target, noc::PacketType::kCohInvalidate,
                               gen);
  pkt->tag = addr;
  net_->send(std::move(pkt));
}

}  // namespace htpb::mem
