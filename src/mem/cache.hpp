// Generic set-associative cache with LRU replacement, parameterized on the
// per-line metadata. Addresses are cache-line identifiers (the coherence
// unit); byte offsets never appear in the simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace htpb::mem {

template <typename LineData>
class SetAssocCache {
 public:
  struct Line {
    std::uint64_t addr = 0;
    bool valid = false;
    std::uint64_t lru = 0;
    LineData data{};
  };

  SetAssocCache(std::size_t sets, int ways)
      : sets_(sets), ways_(ways),
        lines_(sets * static_cast<std::size_t>(ways)) {
    if (sets == 0 || (sets & (sets - 1)) != 0) {
      throw std::invalid_argument("SetAssocCache: sets must be a power of 2");
    }
    if (ways <= 0) throw std::invalid_argument("SetAssocCache: ways must be > 0");
  }

  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] int ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t capacity_lines() const noexcept {
    return lines_.size();
  }

  /// Finds a line and touches its LRU stamp. Returns nullptr on miss.
  [[nodiscard]] Line* find(std::uint64_t addr) {
    const std::size_t base = set_base(addr);
    for (int w = 0; w < ways_; ++w) {
      Line& line = lines_[base + static_cast<std::size_t>(w)];
      if (line.valid && line.addr == addr) {
        line.lru = ++clock_;
        return &line;
      }
    }
    return nullptr;
  }

  /// Peeks without updating LRU (for statistics and assertions).
  [[nodiscard]] const Line* peek(std::uint64_t addr) const {
    const std::size_t base = set_base(addr);
    for (int w = 0; w < ways_; ++w) {
      const Line& line = lines_[base + static_cast<std::size_t>(w)];
      if (line.valid && line.addr == addr) return &line;
    }
    return nullptr;
  }

  /// Allocates a line for `addr`, evicting the LRU way if necessary.
  /// `evictable` filters victim candidates (e.g. skip lines with an active
  /// coherence transaction); if no candidate passes, the overall LRU way is
  /// evicted anyway. If an eviction happens, the victim is copied to
  /// `evicted` and true is returned through `did_evict`.
  Line& allocate(std::uint64_t addr, Line* evicted, bool* did_evict,
                 const std::function<bool(const Line&)>& evictable = {}) {
    if (did_evict) *did_evict = false;
    const std::size_t base = set_base(addr);
    // Prefer an existing or invalid slot.
    for (int w = 0; w < ways_; ++w) {
      Line& line = lines_[base + static_cast<std::size_t>(w)];
      if (line.valid && line.addr == addr) {
        line.lru = ++clock_;
        return line;
      }
    }
    for (int w = 0; w < ways_; ++w) {
      Line& line = lines_[base + static_cast<std::size_t>(w)];
      if (!line.valid) {
        line = Line{};
        line.addr = addr;
        line.valid = true;
        line.lru = ++clock_;
        return line;
      }
    }
    // Evict: LRU among candidates passing the filter, else global LRU.
    Line* victim = nullptr;
    for (int pass = 0; pass < 2 && victim == nullptr; ++pass) {
      for (int w = 0; w < ways_; ++w) {
        Line& line = lines_[base + static_cast<std::size_t>(w)];
        if (pass == 0 && evictable && !evictable(line)) continue;
        if (victim == nullptr || line.lru < victim->lru) victim = &line;
      }
    }
    if (evicted) *evicted = *victim;
    if (did_evict) *did_evict = true;
    *victim = Line{};
    victim->addr = addr;
    victim->valid = true;
    victim->lru = ++clock_;
    return *victim;
  }

  /// Drops a line if present. Returns true when something was removed.
  bool invalidate(std::uint64_t addr) {
    const std::size_t base = set_base(addr);
    for (int w = 0; w < ways_; ++w) {
      Line& line = lines_[base + static_cast<std::size_t>(w)];
      if (line.valid && line.addr == addr) {
        line = Line{};
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::size_t occupancy() const noexcept {
    std::size_t n = 0;
    for (const Line& line : lines_) {
      if (line.valid) ++n;
    }
    return n;
  }

  /// Checkpointing: raw slot access in storage order plus the LRU clock.
  /// A restored cache must reproduce identical victim choices, so slot
  /// positions and lru stamps are captured verbatim.
  [[nodiscard]] const Line& line_at(std::size_t i) const { return lines_[i]; }
  [[nodiscard]] Line& line_at(std::size_t i) { return lines_[i]; }
  [[nodiscard]] std::uint64_t lru_clock() const noexcept { return clock_; }
  void set_lru_clock(std::uint64_t c) noexcept { clock_ = c; }

 private:
  [[nodiscard]] std::size_t set_base(std::uint64_t addr) const noexcept {
    return static_cast<std::size_t>(addr & (sets_ - 1)) *
           static_cast<std::size_t>(ways_);
  }

  std::size_t sets_;
  int ways_;
  std::vector<Line> lines_;
  std::uint64_t clock_ = 0;
};

}  // namespace htpb::mem
