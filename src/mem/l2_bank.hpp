// Distributed shared L2: one bank (slice) per node, with an inline MESI
// directory. Serves GetS/GetM from L1s, recalls dirty lines, invalidates
// sharers on ownership transfers, and models main-memory fills with a
// fixed latency (Table I: 200 cycles).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/coherence.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"

namespace htpb::mem {

struct L2Config {
  /// Table I: 64 KB slice per node with 64 B lines => 1024 lines; 8-way.
  std::size_t sets = 128;
  int ways = 8;
  /// Main-memory access latency in cycles (Table I: 200).
  Cycle mem_latency = 200;
};

struct L2Stats {
  std::uint64_t gets = 0;
  std::uint64_t getm = 0;
  std::uint64_t hits = 0;
  std::uint64_t memory_fetches = 0;
  std::uint64_t recalls = 0;
  std::uint64_t invalidations_sent = 0;
  std::uint64_t eviction_writebacks = 0;
  std::uint64_t replies_sent = 0;
};

class L2Bank {
 public:
  L2Bank(NodeId node, const L2Config& cfg, noc::MeshNetwork* net,
         sim::Engine* engine)
      : node_(node), cfg_(cfg), net_(net), engine_(engine),
        cache_(cfg.sets, cfg.ways) {
    // Memory-fetch completions are scheduled as event descriptors so a
    // checkpoint can capture them; the bank answers for its own node.
    engine_->set_handler(
        sim::EventKind::kMemFetchDone, static_cast<std::int32_t>(node_),
        [this](const sim::EventDesc& d) { on_fetch_done(d.a); });
  }

  /// Network-side input: kMemReadReq, kMemWriteReq, kWriteback, kCohAck.
  void on_packet(const noc::Packet& pkt);

  [[nodiscard]] const L2Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] std::size_t busy_lines() const noexcept { return busy_.size(); }

  /// Checkpointing: directory lines (slot order), LRU clock, busy
  /// transactions (sorted by address) and stats. Pending fetch-done events
  /// live in the engine's queue, not here.
  [[nodiscard]] json::Value save_state() const;
  void load_state(const json::Value& v);

 private:
  enum class DirState : std::uint8_t { kShared, kModified };

  struct DirEntry {
    DirState state = DirState::kShared;
    NodeId owner = kInvalidNode;
    std::vector<NodeId> sharers;
    /// Generation counter, bumped on every exclusive grant; stamped into
    /// replies and invalidations so L1s can order them (see coherence.hpp).
    std::uint32_t gen = 0;
  };

  struct Request {
    NodeId requester = kInvalidNode;
    bool write = false;
    AppId app = kInvalidApp;
  };

  /// Per-line coherence transaction (recall or invalidation round, or an
  /// outstanding memory fetch). Requests arriving for a busy line queue up.
  struct Txn {
    Request current;
    int acks_needed = 0;
    bool fetching = false;
    std::deque<Request> waiting;
  };

  void handle_request(std::uint64_t addr, const Request& req);
  void start_request(std::uint64_t addr, const Request& req);
  void serve_from_directory(std::uint64_t addr,
                            SetAssocCache<DirEntry>::Line& line,
                            const Request& req);
  void on_fetch_done(std::uint64_t addr);
  void on_ack(std::uint64_t addr);
  void handle_eviction_writeback(const noc::Packet& pkt);
  /// Pops the busy transaction's current request, re-serves it against the
  /// (now up-to-date) directory line, and drains the waiting queue.
  void serve_busy_line_current(std::uint64_t addr,
                               SetAssocCache<DirEntry>::Line& line);
  static json::Value request_to_json(const Request& r);
  static Request request_from_json(const json::Value& v);
  void send_reply(const Request& req, std::uint64_t addr, bool exclusive,
                  std::uint32_t gen);
  void send_invalidate(NodeId target, std::uint64_t addr,
                       std::uint32_t gen);

  NodeId node_;   // snapshot-exempt: construction wiring (tile identity)
  L2Config cfg_;  // snapshot-exempt: construction config, immutable
  noc::MeshNetwork* net_;  // snapshot-exempt: non-owning wiring, re-attached by construction
  sim::Engine* engine_;    // snapshot-exempt: non-owning wiring, re-attached by construction
  SetAssocCache<DirEntry> cache_;
  std::unordered_map<std::uint64_t, Txn> busy_;
  L2Stats stats_;
};

}  // namespace htpb::mem
