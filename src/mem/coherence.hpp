// Shared definitions of the MESI-lite protocol spoken between L1 caches
// and the distributed L2 directory banks.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace htpb::mem {

/// L1-side line states (MESI).
enum class MesiState : std::uint8_t {
  kInvalid = 0,
  kShared = 1,
  kExclusive = 2,
  kModified = 3,
};

/// Grant codes carried in the low byte of kMemReply payloads; the upper
/// 24 bits carry the line's directory generation number.
inline constexpr std::uint32_t kGrantShared = 1;
inline constexpr std::uint32_t kGrantExclusive = 2;

/// The NoC delivers the two VC classes (requests vs replies) unordered, so
/// an invalidation can overtake the data reply it logically follows. The
/// directory therefore stamps every reply and invalidation with the
/// line's generation -- a counter bumped on each exclusive grant -- and
/// the L1 applies an invalidation only against line copies of the same or
/// older generation (and poisons an in-flight fill whose generation the
/// invalidation already covers).
[[nodiscard]] constexpr std::uint32_t reply_payload(bool exclusive,
                                                    std::uint32_t gen) noexcept {
  return (exclusive ? kGrantExclusive : kGrantShared) | (gen << 8);
}
[[nodiscard]] constexpr std::uint32_t reply_grant(std::uint32_t payload) noexcept {
  return payload & 0xFFU;
}
[[nodiscard]] constexpr std::uint32_t reply_gen(std::uint32_t payload) noexcept {
  return payload >> 8;
}

/// The coherence home (L2 bank) of a line: low-order interleaving across
/// all nodes, as in Table I's "64 KB slice/node" shared L2.
[[nodiscard]] constexpr NodeId home_of(std::uint64_t line_addr,
                                       int node_count) noexcept {
  return static_cast<NodeId>(line_addr % static_cast<std::uint64_t>(node_count));
}

}  // namespace htpb::mem
