#include "mem/l1_cache.hpp"

namespace htpb::mem {

void L1Cache::access(std::uint64_t line_addr, bool write) {
  if (mshrs_.contains(line_addr)) {
    ++stats_.mshr_coalesced;
    return;
  }
  auto* line = cache_.find(line_addr);
  if (line != nullptr) {
    const MesiState st = line->data.state;
    if (!write || st == MesiState::kModified || st == MesiState::kExclusive) {
      ++stats_.hits;
      if (write) line->data.state = MesiState::kModified;
      return;
    }
    // Write hit on a Shared line: upgrade (GetM) required.
    ++stats_.upgrades;
    send_request(line_addr, /*write=*/true);
    return;
  }
  ++stats_.misses;
  send_request(line_addr, write);
}

void L1Cache::send_request(std::uint64_t line_addr, bool write) {
  if (static_cast<int>(mshrs_.size()) >= cfg_.mshrs) {
    ++stats_.mshr_full_drops;
    return;
  }
  const NodeId home = home_of(line_addr, net_->geometry().node_count());
  auto pkt = net_->make_packet(node_, home,
                               write ? noc::PacketType::kMemWriteReq
                                     : noc::PacketType::kMemReadReq);
  pkt->tag = line_addr;
  pkt->src_app = core_ != nullptr ? core_->app() : kInvalidApp;
  mshrs_[line_addr] = Mshr{write, net_->engine().now(), false, 0};
  net_->send(std::move(pkt));
}

void L1Cache::on_packet(const noc::Packet& pkt) {
  switch (pkt.type) {
    case noc::PacketType::kMemReply:
      handle_reply(pkt);
      break;
    case noc::PacketType::kCohInvalidate:
      handle_invalidate(pkt);
      break;
    default:
      break;
  }
}

void L1Cache::handle_reply(const noc::Packet& pkt) {
  ++stats_.replies;
  const std::uint64_t addr = pkt.tag;
  const std::uint32_t gen = reply_gen(pkt.payload);
  bool poisoned = false;
  const auto it = mshrs_.find(addr);
  if (it != mshrs_.end()) {
    const double round_trip_ns =
        static_cast<double>(net_->engine().now() - it->second.issued);
    if (core_ != nullptr) core_->ipc_model().observe_latency(round_trip_ns);
    poisoned = it->second.inval_pending && it->second.inval_gen >= gen;
    mshrs_.erase(it);
  }
  if (poisoned) {
    // An invalidation that logically follows this grant already arrived;
    // the copy is dead on arrival (it was acked when the inv landed).
    cache_.invalidate(addr);
    return;
  }
  // Install the granted line, evicting the LRU victim if needed.
  SetAssocCache<LineData>::Line evicted;
  bool did_evict = false;
  auto& line = cache_.allocate(addr, &evicted, &did_evict);
  line.data.state = reply_grant(pkt.payload) == kGrantExclusive
                        ? MesiState::kModified
                        : MesiState::kShared;
  line.data.gen = gen;
  if (did_evict && evicted.data.state == MesiState::kModified) {
    // Dirty victim: write back to its home bank (5-flit data packet).
    ++stats_.writebacks;
    const NodeId home = home_of(evicted.addr, net_->geometry().node_count());
    auto wb = net_->make_packet(node_, home, noc::PacketType::kWriteback);
    wb->tag = evicted.addr;
    wb->src_app = core_ != nullptr ? core_->app() : kInvalidApp;
    net_->send(std::move(wb));
  }
}

void L1Cache::handle_invalidate(const noc::Packet& pkt) {
  ++stats_.invalidations;
  const std::uint64_t addr = pkt.tag;
  const std::uint32_t inv_gen = pkt.payload;

  // Record against an in-flight fill: if the grant being filled is of the
  // same or older generation, it must not survive installation.
  const auto mshr = mshrs_.find(addr);
  if (mshr != mshrs_.end()) {
    mshr->second.inval_pending = true;
    if (inv_gen > mshr->second.inval_gen) mshr->second.inval_gen = inv_gen;
  }

  const auto* line = cache_.peek(addr);
  bool dirty = false;
  if (line != nullptr && inv_gen >= line->data.gen) {
    dirty = line->data.state == MesiState::kModified;
    cache_.invalidate(addr);
  }
  // Dirty lines answer the recall with a data writeback; clean, stale or
  // absent copies answer with a 1-flit ack. Either satisfies the home.
  const NodeId home = pkt.src;
  auto reply = net_->make_packet(
      node_, home,
      dirty ? noc::PacketType::kWriteback : noc::PacketType::kCohAck);
  reply->tag = addr;
  reply->src_app = core_ != nullptr ? core_->app() : kInvalidApp;
  if (dirty) ++stats_.writebacks;
  net_->send(std::move(reply));
}

}  // namespace htpb::mem
