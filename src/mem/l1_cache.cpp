#include "mem/l1_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::mem {

void L1Cache::access(std::uint64_t line_addr, bool write) {
  if (mshrs_.contains(line_addr)) {
    ++stats_.mshr_coalesced;
    return;
  }
  auto* line = cache_.find(line_addr);
  if (line != nullptr) {
    const MesiState st = line->data.state;
    if (!write || st == MesiState::kModified || st == MesiState::kExclusive) {
      ++stats_.hits;
      if (write) line->data.state = MesiState::kModified;
      return;
    }
    // Write hit on a Shared line: upgrade (GetM) required.
    ++stats_.upgrades;
    send_request(line_addr, /*write=*/true);
    return;
  }
  ++stats_.misses;
  send_request(line_addr, write);
}

void L1Cache::send_request(std::uint64_t line_addr, bool write) {
  if (static_cast<int>(mshrs_.size()) >= cfg_.mshrs) {
    ++stats_.mshr_full_drops;
    return;
  }
  const NodeId home = home_of(line_addr, net_->geometry().node_count());
  auto pkt = net_->make_packet(node_, home,
                               write ? noc::PacketType::kMemWriteReq
                                     : noc::PacketType::kMemReadReq);
  pkt->tag = line_addr;
  pkt->src_app = core_ != nullptr ? core_->app() : kInvalidApp;
  mshrs_[line_addr] = Mshr{write, net_->engine().now(), false, 0};
  net_->send(std::move(pkt));
}

void L1Cache::on_packet(const noc::Packet& pkt) {
  switch (pkt.type) {
    case noc::PacketType::kMemReply:
      handle_reply(pkt);
      break;
    case noc::PacketType::kCohInvalidate:
      handle_invalidate(pkt);
      break;
    default:
      break;
  }
}

void L1Cache::handle_reply(const noc::Packet& pkt) {
  ++stats_.replies;
  const std::uint64_t addr = pkt.tag;
  const std::uint32_t gen = reply_gen(pkt.payload);
  bool poisoned = false;
  const auto it = mshrs_.find(addr);
  if (it != mshrs_.end()) {
    const double round_trip_ns =
        static_cast<double>(net_->engine().now() - it->second.issued);
    if (core_ != nullptr) core_->ipc_model().observe_latency(round_trip_ns);
    poisoned = it->second.inval_pending && it->second.inval_gen >= gen;
    mshrs_.erase(it);
  }
  if (poisoned) {
    // An invalidation that logically follows this grant already arrived;
    // the copy is dead on arrival (it was acked when the inv landed).
    cache_.invalidate(addr);
    return;
  }
  // Install the granted line, evicting the LRU victim if needed.
  SetAssocCache<LineData>::Line evicted;
  bool did_evict = false;
  auto& line = cache_.allocate(addr, &evicted, &did_evict);
  line.data.state = reply_grant(pkt.payload) == kGrantExclusive
                        ? MesiState::kModified
                        : MesiState::kShared;
  line.data.gen = gen;
  if (did_evict && evicted.data.state == MesiState::kModified) {
    // Dirty victim: write back to its home bank (5-flit data packet).
    ++stats_.writebacks;
    const NodeId home = home_of(evicted.addr, net_->geometry().node_count());
    auto wb = net_->make_packet(node_, home, noc::PacketType::kWriteback);
    wb->tag = evicted.addr;
    wb->src_app = core_ != nullptr ? core_->app() : kInvalidApp;
    net_->send(std::move(wb));
  }
}

void L1Cache::handle_invalidate(const noc::Packet& pkt) {
  ++stats_.invalidations;
  const std::uint64_t addr = pkt.tag;
  const std::uint32_t inv_gen = pkt.payload;

  // Record against an in-flight fill: if the grant being filled is of the
  // same or older generation, it must not survive installation.
  const auto mshr = mshrs_.find(addr);
  if (mshr != mshrs_.end()) {
    mshr->second.inval_pending = true;
    if (inv_gen > mshr->second.inval_gen) mshr->second.inval_gen = inv_gen;
  }

  const auto* line = cache_.peek(addr);
  bool dirty = false;
  if (line != nullptr && inv_gen >= line->data.gen) {
    dirty = line->data.state == MesiState::kModified;
    cache_.invalidate(addr);
  }
  // Dirty lines answer the recall with a data writeback; clean, stale or
  // absent copies answer with a 1-flit ack. Either satisfies the home.
  const NodeId home = pkt.src;
  auto reply = net_->make_packet(
      node_, home,
      dirty ? noc::PacketType::kWriteback : noc::PacketType::kCohAck);
  reply->tag = addr;
  reply->src_app = core_ != nullptr ? core_->app() : kInvalidApp;
  if (dirty) ++stats_.writebacks;
  net_->send(std::move(reply));
}

json::Value L1Cache::save_state() const {
  json::Object o;
  json::Array lines;
  for (std::size_t i = 0; i < cache_.capacity_lines(); ++i) {
    const auto& line = cache_.line_at(i);
    if (!line.valid) continue;
    json::Array a;
    a.push_back(common::ju64(i));
    a.push_back(common::ju64(line.addr));
    a.push_back(common::ju64(line.lru));
    a.push_back(json::Value(static_cast<long long>(
        static_cast<std::uint8_t>(line.data.state))));
    a.push_back(json::Value(static_cast<long long>(line.data.gen)));
    lines.push_back(json::Value(std::move(a)));
  }
  o["lines"] = json::Value(std::move(lines));
  o["clock"] = common::ju64(cache_.lru_clock());
  std::vector<std::uint64_t> addrs;
  addrs.reserve(mshrs_.size());
  // htpb-lint: allow(unordered-iter) keys are collected then sorted before use
  for (const auto& [addr, mshr] : mshrs_) addrs.push_back(addr);
  std::sort(addrs.begin(), addrs.end());
  json::Array mshrs;
  for (const std::uint64_t addr : addrs) {
    const Mshr& m = mshrs_.at(addr);
    json::Array a;
    a.push_back(common::ju64(addr));
    a.push_back(json::Value(m.write));
    a.push_back(common::ju64(m.issued));
    a.push_back(json::Value(m.inval_pending));
    a.push_back(json::Value(static_cast<long long>(m.inval_gen)));
    mshrs.push_back(json::Value(std::move(a)));
  }
  o["mshrs"] = json::Value(std::move(mshrs));
  json::Object stats;
  stats["hits"] = common::ju64(stats_.hits);
  stats["misses"] = common::ju64(stats_.misses);
  stats["upgrades"] = common::ju64(stats_.upgrades);
  stats["writebacks"] = common::ju64(stats_.writebacks);
  stats["invalidations"] = common::ju64(stats_.invalidations);
  stats["mshr_coalesced"] = common::ju64(stats_.mshr_coalesced);
  stats["mshr_full_drops"] = common::ju64(stats_.mshr_full_drops);
  stats["replies"] = common::ju64(stats_.replies);
  o["stats"] = json::Value(std::move(stats));
  return json::Value(std::move(o));
}

void L1Cache::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  for (std::size_t i = 0; i < cache_.capacity_lines(); ++i) {
    cache_.line_at(i) = SetAssocCache<LineData>::Line{};
  }
  for (const json::Value& lv : o.find("lines")->as_array()) {
    const json::Array& a = lv.as_array();
    auto& line = cache_.line_at(static_cast<std::size_t>(common::pu64(a.at(0))));
    line.addr = common::pu64(a.at(1));
    line.valid = true;
    line.lru = common::pu64(a.at(2));
    line.data.state = static_cast<MesiState>(a.at(3).as_int());
    line.data.gen = static_cast<std::uint32_t>(a.at(4).as_int());
  }
  cache_.set_lru_clock(common::pu64(*o.find("clock")));
  mshrs_.clear();
  for (const json::Value& mv : o.find("mshrs")->as_array()) {
    const json::Array& a = mv.as_array();
    Mshr m;
    m.write = a.at(1).as_bool();
    m.issued = common::pu64(a.at(2));
    m.inval_pending = a.at(3).as_bool();
    m.inval_gen = static_cast<std::uint32_t>(a.at(4).as_int());
    mshrs_.emplace(common::pu64(a.at(0)), m);
  }
  const json::Object& stats = o.find("stats")->as_object();
  stats_.hits = common::pu64(*stats.find("hits"));
  stats_.misses = common::pu64(*stats.find("misses"));
  stats_.upgrades = common::pu64(*stats.find("upgrades"));
  stats_.writebacks = common::pu64(*stats.find("writebacks"));
  stats_.invalidations = common::pu64(*stats.find("invalidations"));
  stats_.mshr_coalesced = common::pu64(*stats.find("mshr_coalesced"));
  stats_.mshr_full_drops = common::pu64(*stats.find("mshr_full_drops"));
  stats_.replies = common::pu64(*stats.find("replies"));
}

}  // namespace htpb::mem
