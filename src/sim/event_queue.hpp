// Deterministic discrete-event queue: events at equal timestamps fire in
// insertion (FIFO) order so simulations are bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace htpb::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  void schedule(Cycle when, EventFn fn);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] Cycle next_time() const noexcept {
    return heap_.empty() ? kCycleMax : heap_.top().when;
  }

  /// Pops and runs the earliest event. Precondition: !empty().
  void run_next();

  /// Runs all events with timestamp == t. Returns number executed.
  std::size_t run_all_at(Cycle t);

  void clear();

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace htpb::sim
