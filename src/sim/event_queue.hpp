// Deterministic discrete-event queue: events at equal timestamps fire in
// insertion (FIFO) order so simulations are bit-reproducible. The (when,
// seq) pair is a total order -- the tie-break is part of the public
// contract (tests/sim/event_queue_test.cpp asserts it), not an accident
// of heap layout.
//
// For checkpointing, events can carry an EventDesc (sim/event_desc.hpp).
// pending() enumerates the queue in firing order; a snapshot stores the
// descriptors and a restore re-schedules them in that order, which
// assigns fresh monotone sequence numbers and therefore reproduces the
// exact firing order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sim/event_desc.hpp"

namespace htpb::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// One pending event, as seen by a checkpoint: firing time plus the
  /// serializable descriptor (nullopt for closure-only events).
  struct PendingEvent {
    Cycle when = 0;
    std::optional<EventDesc> desc;
  };

  void schedule(Cycle when, EventFn fn);

  /// Schedules a descriptor-carrying event. `fn` performs the action
  /// (typically a bound Engine::dispatch); `desc` is what a snapshot
  /// writes out.
  void schedule_desc(Cycle when, const EventDesc& desc, EventFn fn);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] Cycle next_time() const noexcept {
    return heap_.empty() ? kCycleMax : heap_.front().when;
  }

  /// Pops and runs the earliest event. Precondition: !empty().
  void run_next();

  /// Runs all events with timestamp == t. Returns number executed.
  std::size_t run_all_at(Cycle t);

  void clear();

  /// Every pending event in firing order -- (when, seq) ascending.
  /// Closure-only events appear with desc == nullopt; a snapshot caller
  /// treats those as an error (the component forgot to use a descriptor).
  [[nodiscard]] std::vector<PendingEvent> pending() const;

 private:
  struct Event {
    Cycle when;
    std::uint64_t seq;
    EventFn fn;
    std::optional<EventDesc> desc;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void push(Event ev);

  /// Min-heap on (when, seq) via std::push_heap/pop_heap. A raw vector
  /// (rather than std::priority_queue) so pending() can enumerate it.
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace htpb::sim
