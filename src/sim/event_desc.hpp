// Serializable event descriptors: the bridge between the event queue and
// checkpointing. A closure cannot be written to disk, so every event that
// can be pending at a snapshot point is scheduled as an EventDesc -- a
// (kind, node, payload) tuple -- and the owning component registers a
// handler for its (kind, node) with the engine. Dispatch resolves the
// handler at execution time, so a restored queue fires into the handlers
// of the restored (or freshly constructed) components.
#pragma once

#include <cstdint>

namespace htpb::sim {

/// Stable numeric tags: snapshots store them as integers, so values must
/// never be reused or renumbered.
enum class EventKind : std::uint32_t {
  kSystemEpochStart = 1,  ///< ManyCoreSystem epoch boundary
  kSystemAllocate = 2,    ///< GlobalManager allocate_and_reply
  kMemFetchDone = 3,      ///< L2Bank memory fetch completion; a = line addr
  kNocLocalDeliver = 4,   ///< MeshNetwork self-send delivery; a = packet id
  kCampaignToggle = 5,    ///< AttackCampaign duty-cycle Trojan toggle
  kCampaignAdapt = 6,     ///< AttackCampaign adaptive-attacker epoch step
};

struct EventDesc {
  EventKind kind{};
  std::int32_t node = -1;  ///< target node, or -1 for a system-wide event
  std::uint64_t a = 0;     ///< kind-specific payload (line address, packet id)
  std::uint64_t b = 0;

  friend bool operator==(const EventDesc&, const EventDesc&) = default;
};

}  // namespace htpb::sim
