#include "sim/event_queue.hpp"

#include <utility>

namespace htpb::sim {

void EventQueue::schedule(Cycle when, EventFn fn) {
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

void EventQueue::run_next() {
  // priority_queue::top() is const; move the callable out via const_cast,
  // which is safe because we pop immediately and never reuse the slot.
  EventFn fn = std::move(const_cast<Event&>(heap_.top()).fn);
  heap_.pop();
  fn();
}

std::size_t EventQueue::run_all_at(Cycle t) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.top().when <= t) {
    run_next();
    ++n;
  }
  return n;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace htpb::sim
