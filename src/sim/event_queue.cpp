#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace htpb::sim {

void EventQueue::push(Event ev) {
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule(Cycle when, EventFn fn) {
  push(Event{when, next_seq_++, std::move(fn), std::nullopt});
}

void EventQueue::schedule_desc(Cycle when, const EventDesc& desc, EventFn fn) {
  push(Event{when, next_seq_++, std::move(fn), desc});
}

void EventQueue::run_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  EventFn fn = std::move(heap_.back().fn);
  heap_.pop_back();
  fn();
}

std::size_t EventQueue::run_all_at(Cycle t) {
  std::size_t n = 0;
  while (!heap_.empty() && heap_.front().when <= t) {
    run_next();
    ++n;
  }
  return n;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

std::vector<EventQueue::PendingEvent> EventQueue::pending() const {
  std::vector<const Event*> ordered;
  ordered.reserve(heap_.size());
  for (const Event& ev : heap_) ordered.push_back(&ev);
  std::sort(ordered.begin(), ordered.end(),
            [](const Event* a, const Event* b) {
              if (a->when != b->when) return a->when < b->when;
              return a->seq < b->seq;
            });
  std::vector<PendingEvent> out;
  out.reserve(ordered.size());
  for (const Event* ev : ordered) out.push_back({ev->when, ev->desc});
  return out;
}

}  // namespace htpb::sim
