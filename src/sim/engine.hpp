// Hybrid simulation engine: clocked components (routers, cores) register
// as Tickables and are ticked every cycle; sparse future work (memory
// latencies, epoch timers) goes through the event queue.
//
// Checkpointing: components schedule serializable events (EventDesc) and
// register a handler per (kind, node); save_state() captures the clock
// and the pending descriptors, load_state() restores them against the
// handlers currently registered. Closure events (schedule_in/at with a
// bare lambda) still work for throwaway drivers but make the engine
// unsnapshottable -- save_state() throws if one is pending.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace htpb::sim {

/// A component evaluated once per simulated cycle, in registration order.
/// Registration order is part of the deterministic contract: the mesh
/// registers routers in node-id order, then network interfaces, then cores.
class Tickable {
 public:
  virtual ~Tickable() = default;
  virtual void tick(Cycle now) = 0;
};

/// Owns simulated time. Each cycle first drains the events due at the
/// current time, then ticks every registered component; nothing else
/// advances the clock, so a run is a pure function of the initial state
/// and the schedule (the determinism the sweep runner and the paper's
/// reproducibility claims rest on).
class Engine {
 public:
  using EventHandler = std::function<void(const EventDesc&)>;

  /// Current simulated cycle (the cycle being executed during a tick).
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Registers a clocked component. Not owned; caller keeps it alive for
  /// the engine's lifetime.
  void add_tickable(Tickable* t) { tickables_.push_back(t); }

  /// Schedules `fn` to run `delay` cycles from now (0 = end of this cycle).
  void schedule_in(Cycle delay, EventFn fn) {
    events_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute cycle `when`; times already in the past
  /// are clamped to the current cycle (the event still runs, late).
  void schedule_at(Cycle when, EventFn fn) {
    events_.schedule(when < now_ ? now_ : when, std::move(fn));
  }

  /// Registers the handler fired for descriptor events matching `kind`
  /// and `node` (node -1 registers a kind-wide wildcard, matched when no
  /// exact (kind, node) entry exists). Re-registering replaces.
  void set_handler(EventKind kind, std::int32_t node, EventHandler fn);

  /// Schedules a serializable event. Requires a matching handler at
  /// *execution* time, not at scheduling time.
  void schedule_desc_in(Cycle delay, const EventDesc& desc) {
    schedule_desc_at(now_ + delay, desc);
  }
  void schedule_desc_at(Cycle when, const EventDesc& desc);

  /// Resolves and fires the handler for `desc`; throws std::runtime_error
  /// when none is registered (a wiring bug, not a data error).
  void dispatch(const EventDesc& desc);

  /// Advances the simulation by `cycles` cycles. Each cycle: run all events
  /// due at the current time, then tick every registered component.
  void run_cycles(Cycle cycles);

  /// Advances until `when` (inclusive of events at `when`).
  void run_until(Cycle when);

  /// Events scheduled but not yet executed (observability / test hook).
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

  /// {"now": u64-string, "events": [[when, kind, node, a, b], ...]} with
  /// events in firing order. Throws if a closure-only event is pending.
  [[nodiscard]] json::Value save_state() const;

  /// Restores the clock and re-schedules the saved descriptor events (in
  /// saved order, so the same-cycle FIFO tie-break is preserved) against
  /// the currently registered handlers. Tickables and handlers are wiring
  /// and are untouched.
  void load_state(const json::Value& v);

 private:
  void step_one_cycle();

  [[nodiscard]] static std::uint64_t handler_key(EventKind kind,
                                                 std::int32_t node) noexcept {
    return (static_cast<std::uint64_t>(kind) << 32) |
           static_cast<std::uint32_t>(node);
  }

  Cycle now_ = 0;
  EventQueue events_;
  std::vector<Tickable*> tickables_;  // snapshot-exempt: components re-register on construction
  std::map<std::uint64_t, EventHandler> handlers_;  // snapshot-exempt: callback wiring, re-installed by construction
};

}  // namespace htpb::sim
