// Hybrid simulation engine: clocked components (routers, cores) register
// as Tickables and are ticked every cycle; sparse future work (memory
// latencies, epoch timers) goes through the event queue.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace htpb::sim {

/// A component evaluated once per simulated cycle, in registration order.
/// Registration order is part of the deterministic contract: the mesh
/// registers routers in node-id order, then network interfaces, then cores.
class Tickable {
 public:
  virtual ~Tickable() = default;
  virtual void tick(Cycle now) = 0;
};

/// Owns simulated time. Each cycle first drains the events due at the
/// current time, then ticks every registered component; nothing else
/// advances the clock, so a run is a pure function of the initial state
/// and the schedule (the determinism the sweep runner and the paper's
/// reproducibility claims rest on).
class Engine {
 public:
  /// Current simulated cycle (the cycle being executed during a tick).
  [[nodiscard]] Cycle now() const noexcept { return now_; }

  /// Registers a clocked component. Not owned; caller keeps it alive for
  /// the engine's lifetime.
  void add_tickable(Tickable* t) { tickables_.push_back(t); }

  /// Schedules `fn` to run `delay` cycles from now (0 = end of this cycle).
  void schedule_in(Cycle delay, EventFn fn) {
    events_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute cycle `when`; times already in the past
  /// are clamped to the current cycle (the event still runs, late).
  void schedule_at(Cycle when, EventFn fn) {
    events_.schedule(when < now_ ? now_ : when, std::move(fn));
  }

  /// Advances the simulation by `cycles` cycles. Each cycle: run all events
  /// due at the current time, then tick every registered component.
  void run_cycles(Cycle cycles);

  /// Advances until `when` (inclusive of events at `when`).
  void run_until(Cycle when);

  /// Events scheduled but not yet executed (observability / test hook).
  [[nodiscard]] std::size_t pending_events() const noexcept {
    return events_.size();
  }

 private:
  void step_one_cycle();

  Cycle now_ = 0;
  EventQueue events_;
  std::vector<Tickable*> tickables_;
};

}  // namespace htpb::sim
