#include "sim/engine.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/snapshot.hpp"

namespace htpb::sim {

void Engine::step_one_cycle() {
  // Most cycles have no due events; skip the queue's pop/compare loop
  // entirely unless the earliest event is due now.
  if (events_.next_time() <= now_) events_.run_all_at(now_);
  for (Tickable* t : tickables_) t->tick(now_);
  ++now_;
}

void Engine::run_cycles(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step_one_cycle();
}

void Engine::run_until(Cycle when) {
  while (now_ <= when) step_one_cycle();
}

void Engine::set_handler(EventKind kind, std::int32_t node, EventHandler fn) {
  handlers_[handler_key(kind, node)] = std::move(fn);
}

void Engine::schedule_desc_at(Cycle when, const EventDesc& desc) {
  events_.schedule_desc(when < now_ ? now_ : when, desc,
                        [this, desc] { dispatch(desc); });
}

void Engine::dispatch(const EventDesc& desc) {
  auto it = handlers_.find(handler_key(desc.kind, desc.node));
  if (it == handlers_.end() && desc.node != -1) {
    it = handlers_.find(handler_key(desc.kind, -1));
  }
  if (it == handlers_.end()) {
    throw std::runtime_error(
        "Engine::dispatch: no handler for event kind " +
        std::to_string(static_cast<std::uint32_t>(desc.kind)) + " node " +
        std::to_string(desc.node));
  }
  it->second(desc);
}

json::Value Engine::save_state() const {
  json::Array events;
  for (const EventQueue::PendingEvent& ev : events_.pending()) {
    if (!ev.desc.has_value()) {
      throw std::runtime_error(
          "Engine::save_state: a pending event has no descriptor; "
          "closure events cannot be checkpointed");
    }
    json::Array e;
    e.push_back(common::ju64(ev.when));
    e.push_back(json::Value(
        static_cast<long long>(static_cast<std::uint32_t>(ev.desc->kind))));
    e.push_back(json::Value(static_cast<long long>(ev.desc->node)));
    e.push_back(common::ju64(ev.desc->a));
    e.push_back(common::ju64(ev.desc->b));
    events.push_back(json::Value(std::move(e)));
  }
  json::Object o;
  o["now"] = common::ju64(now_);
  o["events"] = json::Value(std::move(events));
  return json::Value(std::move(o));
}

void Engine::load_state(const json::Value& v) {
  const json::Object& o = v.as_object();
  events_.clear();
  now_ = common::pu64(*o.find("now"));
  for (const json::Value& ev : o.find("events")->as_array()) {
    const json::Array& e = ev.as_array();
    EventDesc desc;
    desc.kind = static_cast<EventKind>(
        static_cast<std::uint32_t>(e.at(1).as_int()));
    desc.node = static_cast<std::int32_t>(e.at(2).as_int());
    desc.a = common::pu64(e.at(3));
    desc.b = common::pu64(e.at(4));
    schedule_desc_at(common::pu64(e.at(0)), desc);
  }
}

}  // namespace htpb::sim
